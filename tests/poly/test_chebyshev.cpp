#include "poly/chebyshev.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"

namespace mpqls::poly {
namespace {

TEST(Chebyshev, TkMatchesTrigDefinition) {
  for (int k : {0, 1, 2, 5, 17}) {
    for (double x : {-1.0, -0.7, 0.0, 0.3, 1.0}) {
      EXPECT_NEAR(chebyshev_t(k, x), std::cos(k * std::acos(x)), 1e-12) << k << " " << x;
    }
  }
}

TEST(Chebyshev, TkOutsideUnitInterval) {
  // T_2(x) = 2x^2 - 1 everywhere.
  EXPECT_NEAR(chebyshev_t(2, 1.5), 2 * 1.5 * 1.5 - 1, 1e-12);
  EXPECT_NEAR(chebyshev_t(3, -1.2), 4 * std::pow(-1.2, 3) - 3 * -1.2, 1e-12);
}

TEST(Chebyshev, ClenshawMatchesDirectSum) {
  ChebSeries p({0.5, -0.25, 0.125, 0.0625, -1.5});
  for (double x : {-0.9, -0.3, 0.0, 0.4, 0.99}) {
    double direct = 0.0;
    for (int k = 0; k <= p.degree(); ++k) direct += p.coeffs()[k] * chebyshev_t(k, x);
    EXPECT_NEAR(p.evaluate(x), direct, 1e-14) << x;
  }
}

TEST(Chebyshev, InterpolationReproducesAnalyticFunction) {
  const auto p = cheb_interpolate([](double x) { return std::exp(x); }, 20);
  for (double x : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
    EXPECT_NEAR(p.evaluate(x), std::exp(x), 1e-13) << x;
  }
}

TEST(Chebyshev, InterpolationExactForPolynomials) {
  // f = T_3: interpolation at degree >= 3 returns exactly e_3.
  const auto p = cheb_interpolate([](double x) { return chebyshev_t(3, x); }, 8);
  for (int k = 0; k <= 8; ++k) {
    EXPECT_NEAR(p.coeffs()[k], k == 3 ? 1.0 : 0.0, 1e-14) << k;
  }
}

TEST(Chebyshev, CoefficientsOfAnalyticFunctionDecayGeometrically) {
  const auto p = cheb_interpolate([](double x) { return 1.0 / (2.0 + x); }, 40);
  EXPECT_LT(std::fabs(p.coeffs()[30]), 1e-12);
  EXPECT_GT(std::fabs(p.coeffs()[2]), 1e-3);
}

TEST(Chebyshev, ParityDetection) {
  EXPECT_EQ(ChebSeries({0.0, 1.0, 0.0, -0.5}).parity(), Parity::kOdd);
  EXPECT_EQ(ChebSeries({1.0, 0.0, 0.5}).parity(), Parity::kEven);
  EXPECT_EQ(ChebSeries({1.0, 1.0}).parity(), Parity::kNone);
}

TEST(Chebyshev, ParityProjectionZeroesWrongTerms) {
  const auto p = ChebSeries({1.0, 2.0, 3.0, 4.0}).parity_projected(Parity::kOdd);
  EXPECT_EQ(p.coeffs()[0], 0.0);
  EXPECT_EQ(p.coeffs()[1], 2.0);
  EXPECT_EQ(p.coeffs()[2], 0.0);
  EXPECT_EQ(p.coeffs()[3], 4.0);
}

TEST(Chebyshev, TruncationDropsTail) {
  const auto p = ChebSeries({1.0, 0.5, 1e-15, 1e-16}).truncated(1e-12);
  EXPECT_EQ(p.degree(), 1);
}

TEST(Chebyshev, ProductIdentity) {
  // T_2 * T_3 = (T_5 + T_1) / 2.
  ChebSeries t2({0, 0, 1}), t3({0, 0, 0, 1});
  const auto prod = t2 * t3;
  ASSERT_EQ(prod.degree(), 5);
  EXPECT_NEAR(prod.coeffs()[1], 0.5, 1e-15);
  EXPECT_NEAR(prod.coeffs()[5], 0.5, 1e-15);
  EXPECT_NEAR(prod.coeffs()[0], 0.0, 1e-15);
  EXPECT_NEAR(prod.coeffs()[3], 0.0, 1e-15);
}

TEST(Chebyshev, ProductMatchesPointwise) {
  ChebSeries a({0.3, -0.2, 0.7});
  ChebSeries b({0.0, 1.1, 0.0, -0.4});
  const auto prod = a * b;
  for (double x : {-0.8, -0.1, 0.5, 0.95}) {
    EXPECT_NEAR(prod.evaluate(x), a.evaluate(x) * b.evaluate(x), 1e-13) << x;
  }
}

TEST(Chebyshev, ArithmeticAndScaling) {
  ChebSeries a({1.0, 2.0});
  ChebSeries b({0.5, -1.0, 3.0});
  const auto sum = a + b;
  const auto diff = a - b;
  EXPECT_NEAR(sum.evaluate(0.3), a.evaluate(0.3) + b.evaluate(0.3), 1e-14);
  EXPECT_NEAR(diff.evaluate(0.3), a.evaluate(0.3) - b.evaluate(0.3), 1e-14);
  EXPECT_NEAR(a.scaled(2.0).evaluate(0.7), 2.0 * a.evaluate(0.7), 1e-14);
}

TEST(Chebyshev, MaxAbsOnInterval) {
  ChebSeries t3({0, 0, 0, 1});
  EXPECT_NEAR(t3.max_abs_on(-1.0, 1.0), 1.0, 1e-6);
  EXPECT_NEAR(t3.max_abs_on(0.9, 1.0), 1.0, 1e-9);
}

}  // namespace
}  // namespace mpqls::poly
