#include "poly/inverse_poly.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/special.hpp"

namespace mpqls::poly {
namespace {

TEST(InversePoly, BParameterFormula) {
  // b = ceil(kappa^2 log(kappa/eps)).
  EXPECT_EQ(inverse_b_parameter(10.0, 1e-3), static_cast<std::uint64_t>(
                                                 std::ceil(100.0 * std::log(1e4))));
  EXPECT_GE(inverse_b_parameter(2.0, 0.5), 1u);
}

TEST(InversePoly, SmoothTargetApproachesInverse) {
  const double kappa = 10.0;
  const std::uint64_t b = inverse_b_parameter(kappa, 1e-6);
  for (double x : {0.1, 0.3, 0.7, 1.0}) {  // x >= 1/kappa
    EXPECT_NEAR(smooth_inverse_target(x, b) * x, 1.0, 1e-6) << x;
  }
  // Near zero the smoothing kills the singularity: f(0) finite and 0.
  EXPECT_EQ(smooth_inverse_target(0.0, b), 0.0);
  EXPECT_TRUE(std::isfinite(smooth_inverse_target(1e-6, b)));
}

TEST(InversePoly, SmoothTargetIsOdd) {
  const std::uint64_t b = 100;
  for (double x : {0.05, 0.3, 0.9}) {
    EXPECT_NEAR(smooth_inverse_target(-x, b), -smooth_inverse_target(x, b), 1e-14);
  }
}

TEST(InversePoly, AnalyticExpansionIsExactForSmallB) {
  // Identity check for Eq. (4): f_{eps,kappa}(x) = (1-(1-x^2)^b)/x is a
  // polynomial of degree 2b-1 whose full Chebyshev expansion has
  // coefficient 4 (-1)^j P[X >= b+j+1] on T_{2j+1}. Build the FULL
  // expansion (j = 0..b-1) and compare against the closed form.
  for (const std::uint64_t b : {3u, 6u, 11u}) {
    std::vector<double> coeffs(2 * b, 0.0);
    for (std::uint64_t j = 0; j < b; ++j) {
      const double tail = binomial_tail_half(2 * b, static_cast<std::int64_t>(b + j + 1));
      coeffs[2 * j + 1] = 4.0 * ((j % 2 == 0) ? tail : -tail);
    }
    const ChebSeries full{std::move(coeffs)};
    for (double x = -1.0; x <= 1.0; x += 0.05) {
      EXPECT_NEAR(full.evaluate(x), smooth_inverse_target(x, b), 1e-12)
          << "b=" << b << " x=" << x;
    }
  }
}

TEST(InversePoly, AnalyticMeetsRequestedAccuracy) {
  for (double kappa : {2.0, 5.0, 10.0}) {
    const double eps = 1e-4;
    const auto p = inverse_poly_analytic(kappa, eps);
    EXPECT_LE(p.achieved_error, eps) << "kappa=" << kappa;
    EXPECT_EQ(p.series.parity(), Parity::kOdd);
  }
}

TEST(InversePoly, InterpolatedMatchesAnalyticValues) {
  const double kappa = 8.0, eps = 1e-5;
  const auto pa = inverse_poly_analytic(kappa, eps);
  const auto pi = inverse_poly_interpolated(kappa, eps);
  for (double x : {0.125, 0.3, 0.6, 1.0}) {
    EXPECT_NEAR(pa.series.evaluate(x), pi.series.evaluate(x), 5.0 * eps / kappa) << x;
  }
  EXPECT_LE(pi.achieved_error, eps);
  // Adaptive truncation should not exceed the analytic bound's degree.
  EXPECT_LE(pi.series.degree(), pa.series.degree());
}

TEST(InversePoly, DegreeGrowsWithKappaAndAccuracy) {
  const auto p1 = inverse_poly_interpolated(5.0, 1e-2);
  const auto p2 = inverse_poly_interpolated(20.0, 1e-2);
  const auto p3 = inverse_poly_interpolated(5.0, 1e-8);
  EXPECT_LT(p1.series.degree(), p2.series.degree());
  EXPECT_LT(p1.series.degree(), p3.series.degree());
}

TEST(InversePoly, ValueAtDomainEdgeIsHalfOverKappaX) {
  const double kappa = 10.0;
  const auto p = inverse_poly_interpolated(kappa, 1e-6);
  // At x = 1/kappa the target is 1/2; at x = 1 it is 1/(2 kappa).
  EXPECT_NEAR(p.series.evaluate(1.0 / kappa), 0.5, 1e-4);
  EXPECT_NEAR(p.series.evaluate(1.0), 1.0 / (2.0 * kappa), 1e-5);
}

TEST(InversePoly, MaxAbsReportsBumpBelowDomain) {
  // The unwindowed inverse polynomial exceeds 1/2 inside (0, 1/kappa) —
  // exactly the constraint violation the rectangle window fixes.
  const auto p = inverse_poly_interpolated(20.0, 1e-6);
  EXPECT_GT(p.max_abs, 0.5);
}

TEST(RectWindow, ShapeIsCorrect) {
  const double gap = 0.1;
  const auto w = rect_window(gap, 1e-6);
  EXPECT_EQ(w.parity(), Parity::kEven);
  EXPECT_NEAR(w.evaluate(0.0), 0.0, 1e-5);
  EXPECT_NEAR(w.evaluate(gap / 4), 0.0, 1e-4);
  EXPECT_NEAR(w.evaluate(gap), 1.0, 1e-4);
  EXPECT_NEAR(w.evaluate(0.5), 1.0, 1e-5);
  EXPECT_NEAR(w.evaluate(1.0), 1.0, 1e-5);
}

TEST(RectWindow, WindowedInverseIsBounded) {
  const double kappa = 20.0;
  const auto p = inverse_poly_interpolated(kappa, 1e-6);
  const auto w = rect_window(1.0 / kappa, 1e-6);
  const auto windowed = p.series * w;
  // Bounded by ~1/2 plus a small transition bump — well inside the QSVT
  // requirement |P| <= 1 (the unwindowed series exceeds it, see above).
  EXPECT_LT(windowed.max_abs_on(-1.0, 1.0), 0.7);
  // And it still matches the inverse on the domain.
  EXPECT_NEAR(windowed.evaluate(0.5), 1.0 / (2.0 * kappa * 0.5), 1e-4);
}

class InversePolyAccuracySweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(InversePolyAccuracySweep, InterpolatedMeetsEps) {
  const auto [kappa, eps] = GetParam();
  const auto p = inverse_poly_interpolated(kappa, eps);
  EXPECT_LE(p.achieved_error, eps) << "kappa=" << kappa << " eps=" << eps;
  EXPECT_EQ(p.series.parity(), Parity::kOdd);
}

INSTANTIATE_TEST_SUITE_P(KappaEps, InversePolyAccuracySweep,
                         ::testing::Combine(::testing::Values(2.0, 10.0, 50.0),
                                            ::testing::Values(1e-2, 1e-4, 1e-6)));

}  // namespace
}  // namespace mpqls::poly
