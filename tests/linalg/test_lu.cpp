#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/random_matrix.hpp"

namespace mpqls::linalg {
namespace {

TEST(Lu, SolvesKnownSystem) {
  Matrix<double> A{{4, 3}, {6, 3}};
  Vector<double> b{10, 12};
  const auto x = lu_solve(A, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix<double> A{{0, 1}, {1, 0}};
  Vector<double> b{2, 3};
  const auto x = lu_solve(A, b);
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Lu, DetectsSingular) {
  Matrix<double> A{{1, 2}, {2, 4}};
  const auto f = lu_factor(A);
  EXPECT_TRUE(f.singular);
}

TEST(Lu, RandomResidualSmall) {
  Xoshiro256 rng(123);
  for (std::size_t n : {4u, 16u, 64u}) {
    const auto A = random_with_cond(rng, n, 50.0);
    const auto b = random_unit_vector(rng, n);
    const auto x = lu_solve(A, b);
    EXPECT_LT(nrm2(residual(A, x, b)), 1e-12) << "n=" << n;
  }
}

TEST(Lu, FactorizationReuseMatchesOneShot) {
  Xoshiro256 rng(9);
  const auto A = random_with_cond(rng, 8, 10.0);
  const auto f = lu_factor(A);
  const auto b1 = random_unit_vector(rng, 8);
  const auto b2 = random_unit_vector(rng, 8);
  EXPECT_EQ(lu_solve(f, b1), lu_solve(A, b1));
  EXPECT_LT(nrm2(residual(A, lu_solve(f, b2), b2)), 1e-13);
}

TEST(Lu, InverseTimesMatrixIsIdentity) {
  Xoshiro256 rng(77);
  const auto A = random_with_cond(rng, 8, 5.0);
  const auto Ainv = lu_inverse(A);
  EXPECT_LT(max_abs_diff(gemm(A, Ainv), Matrix<double>::identity(8)), 1e-12);
}

TEST(Lu, SinglePrecisionResidualMatchesPrecision) {
  Xoshiro256 rng(5);
  const auto A = random_with_cond(rng, 16, 10.0);
  const auto b = random_unit_vector(rng, 16);
  const auto Af = convert_matrix<float>(A);
  const auto bf = convert_vector<float>(b);
  const auto xf = lu_solve(Af, bf);
  // Residual should be at the single-precision roundoff scale, far above
  // double roundoff.
  const double res = nrm2(residual(A, convert_vector<double>(xf), b));
  EXPECT_LT(res, 1e-4);
  EXPECT_GT(res, 1e-9);
}

}  // namespace
}  // namespace mpqls::linalg
