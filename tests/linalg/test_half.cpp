#include "linalg/half.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mpqls::linalg {
namespace {

TEST(Half, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(float(half(static_cast<float>(i))), static_cast<float>(i)) << i;
  }
}

TEST(Half, RoundTripPowersOfTwo) {
  for (int e = -14; e <= 15; ++e) {
    const float v = std::ldexp(1.0f, e);
    EXPECT_EQ(float(half(v)), v) << "2^" << e;
  }
}

TEST(Half, EpsilonIsCorrect) {
  const half one(1.0f);
  const half eps = std::numeric_limits<half>::epsilon();
  EXPECT_GT(float(one + eps), 1.0f);
  // Half of epsilon rounds back to 1 (round to nearest even).
  EXPECT_EQ(float(one + half(float(eps) / 2.0f)), 1.0f);
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(std::isinf(float(half(1.0e6f))));
  EXPECT_TRUE(std::isinf(float(half(-1.0e6f))));
  EXPECT_EQ(float(std::numeric_limits<half>::max()), 65504.0f);
  EXPECT_EQ(float(half(65504.0f)), 65504.0f);
  EXPECT_TRUE(std::isinf(float(half(65536.0f))));
}

TEST(Half, SubnormalsRepresented) {
  const float smallest_subnormal = std::ldexp(1.0f, -24);
  EXPECT_EQ(float(half(smallest_subnormal)), smallest_subnormal);
  // Below half the smallest subnormal: flush to zero.
  EXPECT_EQ(float(half(std::ldexp(1.0f, -26))), 0.0f);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1 and 1+2^-10: ties to even -> 1.
  EXPECT_EQ(float(half(1.0f + std::ldexp(1.0f, -11))), 1.0f);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: ties to even -> 1+2^-9.
  EXPECT_EQ(float(half(1.0f + 3.0f * std::ldexp(1.0f, -11))), 1.0f + std::ldexp(1.0f, -9));
}

TEST(Half, ArithmeticRoundsPerOperation) {
  const half a(1.0f), b(std::numeric_limits<half>::epsilon());
  // (1 + eps/2) in half arithmetic: the float sum rounds back to 1 in half.
  const half c = a + half(float(b) * 0.5f);
  EXPECT_EQ(float(c), 1.0f);
}

TEST(Half, NegationFlipsSignBit) {
  const half a(2.5f);
  EXPECT_EQ(float(-a), -2.5f);
  EXPECT_EQ((-a).bits(), a.bits() ^ 0x8000u);
}

TEST(Half, NanPropagates) {
  const half n = std::numeric_limits<half>::quiet_NaN();
  EXPECT_TRUE(std::isnan(float(n)));
  EXPECT_TRUE(std::isnan(float(n + half(1.0f))));
}

TEST(Half, ComparisonOperators) {
  EXPECT_LT(half(1.0f), half(2.0f));
  EXPECT_GT(half(-1.0f), half(-2.0f));
  EXPECT_EQ(half(0.0f), half(-0.0f));  // +0 == -0
}

TEST(Half, ExhaustiveRoundTripThroughFloat) {
  // Every finite half bit pattern must survive half -> float -> half.
  for (std::uint32_t b = 0; b < 0x10000u; ++b) {
    const half h = half::from_bits(static_cast<std::uint16_t>(b));
    const float f = float(h);
    if (std::isnan(f)) continue;
    EXPECT_EQ(half(f).bits(), h.bits()) << "bits=" << b;
  }
}

}  // namespace
}  // namespace mpqls::linalg
