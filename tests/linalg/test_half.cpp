#include "linalg/half.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mpqls::linalg {
namespace {

TEST(Half, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(float(half(static_cast<float>(i))), static_cast<float>(i)) << i;
  }
}

TEST(Half, RoundTripPowersOfTwo) {
  for (int e = -14; e <= 15; ++e) {
    const float v = std::ldexp(1.0f, e);
    EXPECT_EQ(float(half(v)), v) << "2^" << e;
  }
}

TEST(Half, EpsilonIsCorrect) {
  const half one(1.0f);
  const half eps = std::numeric_limits<half>::epsilon();
  EXPECT_GT(float(one + eps), 1.0f);
  // Half of epsilon rounds back to 1 (round to nearest even).
  EXPECT_EQ(float(one + half(float(eps) / 2.0f)), 1.0f);
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(std::isinf(float(half(1.0e6f))));
  EXPECT_TRUE(std::isinf(float(half(-1.0e6f))));
  EXPECT_EQ(float(std::numeric_limits<half>::max()), 65504.0f);
  EXPECT_EQ(float(half(65504.0f)), 65504.0f);
  EXPECT_TRUE(std::isinf(float(half(65536.0f))));
}

TEST(Half, SubnormalsRepresented) {
  const float smallest_subnormal = std::ldexp(1.0f, -24);
  EXPECT_EQ(float(half(smallest_subnormal)), smallest_subnormal);
  // Below half the smallest subnormal: flush to zero.
  EXPECT_EQ(float(half(std::ldexp(1.0f, -26))), 0.0f);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1 and 1+2^-10: ties to even -> 1.
  EXPECT_EQ(float(half(1.0f + std::ldexp(1.0f, -11))), 1.0f);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: ties to even -> 1+2^-9.
  EXPECT_EQ(float(half(1.0f + 3.0f * std::ldexp(1.0f, -11))), 1.0f + std::ldexp(1.0f, -9));
}

TEST(Half, ArithmeticRoundsPerOperation) {
  const half a(1.0f), b(std::numeric_limits<half>::epsilon());
  // (1 + eps/2) in half arithmetic: the float sum rounds back to 1 in half.
  const half c = a + half(float(b) * 0.5f);
  EXPECT_EQ(float(c), 1.0f);
}

TEST(Half, NegationFlipsSignBit) {
  const half a(2.5f);
  EXPECT_EQ(float(-a), -2.5f);
  EXPECT_EQ((-a).bits(), a.bits() ^ 0x8000u);
}

TEST(Half, NanPropagates) {
  const half n = std::numeric_limits<half>::quiet_NaN();
  EXPECT_TRUE(std::isnan(float(n)));
  EXPECT_TRUE(std::isnan(float(n + half(1.0f))));
}

TEST(Half, ComparisonOperators) {
  EXPECT_LT(half(1.0f), half(2.0f));
  EXPECT_GT(half(-1.0f), half(-2.0f));
  EXPECT_EQ(half(0.0f), half(-0.0f));  // +0 == -0
}

TEST(Half, InfinityPropagates) {
  const half inf = std::numeric_limits<half>::infinity();
  EXPECT_TRUE(std::isinf(float(inf)));
  EXPECT_TRUE(std::isinf(float(inf + half(1.0f))));
  EXPECT_TRUE(std::isinf(float(-inf)));
  EXPECT_LT(float(-inf), 0.0f);
  // inf - inf is the canonical NaN-producing case.
  EXPECT_TRUE(std::isnan(float(inf - inf)));
  // Division by zero in the float detour must come back as infinity.
  EXPECT_TRUE(std::isinf(float(half(1.0f) / half(0.0f))));
}

TEST(Half, DoubleConversionsRoundTrip) {
  // Construction from double must round exactly like construction from
  // the float the double narrows to, and the double read-back must equal
  // the float read-back widened.
  for (std::uint32_t b = 0; b < 0x10000u; ++b) {
    const half h = half::from_bits(static_cast<std::uint16_t>(b));
    const double d = double(h);
    if (std::isnan(d)) continue;
    EXPECT_EQ(d, static_cast<double>(float(h))) << "bits=" << b;
    EXPECT_EQ(half(d).bits(), h.bits()) << "bits=" << b;
  }
  // A double halfway between two halves ties to even exactly like float.
  EXPECT_EQ(float(half(1.0 + std::ldexp(1.0, -11))), 1.0f);
}

TEST(Half, NegativeZeroKeepsItsSign) {
  const half nz(-0.0f);
  EXPECT_EQ(nz.bits(), 0x8000u);
  EXPECT_EQ(half(0.0f).bits(), 0x0000u);
  EXPECT_TRUE(std::signbit(float(nz)));
  EXPECT_EQ(nz, half(0.0f));  // compares equal nonetheless
}

TEST(Half, SubnormalTiesRoundToEven) {
  // Halfway between the smallest subnormal (2^-24) and zero: ties to
  // even -> 0.
  EXPECT_EQ(half(std::ldexp(1.0f, -25)).bits(), 0x0000u);
  // Halfway between the first (2^-24) and second (2^-23) subnormal:
  // ties to even -> 2 ulps (even mantissa).
  EXPECT_EQ(half(3.0f * std::ldexp(1.0f, -25)).bits(), 0x0002u);
  // Just above the tie must round up to the nearest subnormal.
  EXPECT_EQ(half(std::nextafterf(std::ldexp(1.0f, -25), 1.0f)).bits(), 0x0001u);
}

#if defined(__FLT16_MAX__)
// The execution engine stores amplitudes as _Float16 when the compiler
// provides it (qsim::exec::f16); this software class is the fallback and
// the reference for tests. The two must agree bit-for-bit in both
// directions, or the panel kernels' results would depend on which one the
// build picked.
TEST(Half, MatchesHardwareFloat16Exhaustively) {
  for (std::uint32_t b = 0; b < 0x10000u; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    _Float16 hw;
    __builtin_memcpy(&hw, &bits, 2);
    const float via_hw = static_cast<float>(hw);
    const float via_sw = float(half::from_bits(bits));
    if (std::isnan(via_hw) || std::isnan(via_sw)) {
      EXPECT_TRUE(std::isnan(via_hw) && std::isnan(via_sw)) << "bits=" << b;
      continue;
    }
    EXPECT_EQ(via_sw, via_hw) << "bits=" << b;

    // Narrowing the widened value must also agree (covers the rounding
    // paths: these are all exact, so this checks the normal/subnormal
    // classification more than the ties).
    const _Float16 narrowed = static_cast<_Float16>(via_hw);
    std::uint16_t hw_bits;
    __builtin_memcpy(&hw_bits, &narrowed, 2);
    EXPECT_EQ(half(via_sw).bits(), hw_bits) << "bits=" << b;
  }
}

TEST(Half, MatchesHardwareFloat16Rounding) {
  // Inexact narrowings: sweep floats that fall between half values, with
  // ties, overflow and underflow represented.
  const float cases[] = {1.0f + std::ldexp(1.0f, -11),          // tie -> even
                         1.0f + 3.0f * std::ldexp(1.0f, -11),   // tie -> even (up)
                         1.0f + std::ldexp(1.0f, -12),          // below tie -> down
                         65519.9f,                              // rounds to max
                         65520.0f,                              // ties to inf
                         1.0e6f,                                // overflow
                         std::ldexp(1.0f, -25),                 // subnormal tie
                         std::ldexp(1.0f, -26),                 // underflow to 0
                         -2.718281828f, 3.14159265f, 0.1f, -0.3f};
  for (const float f : cases) {
    const _Float16 hw = static_cast<_Float16>(f);
    std::uint16_t hw_bits;
    __builtin_memcpy(&hw_bits, &hw, 2);
    EXPECT_EQ(half(f).bits(), hw_bits) << "f=" << f;
  }
}
#endif  // __FLT16_MAX__

TEST(Half, ExhaustiveRoundTripThroughFloat) {
  // Every finite half bit pattern must survive half -> float -> half.
  for (std::uint32_t b = 0; b < 0x10000u; ++b) {
    const half h = half::from_bits(static_cast<std::uint16_t>(b));
    const float f = float(h);
    if (std::isnan(f)) continue;
    EXPECT_EQ(half(f).bits(), h.bits()) << "bits=" << b;
  }
}

}  // namespace
}  // namespace mpqls::linalg
