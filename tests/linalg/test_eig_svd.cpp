#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/jacobi_eig.hpp"
#include "linalg/jacobi_svd.hpp"
#include "linalg/random_matrix.hpp"

namespace mpqls::linalg {
namespace {

TEST(JacobiEig, DiagonalMatrixIsFixedPoint) {
  Matrix<double> A{{3, 0}, {0, 1}};
  const auto e = jacobi_eigensymmetric(A);
  EXPECT_NEAR(e.values[0], 1.0, 1e-14);
  EXPECT_NEAR(e.values[1], 3.0, 1e-14);
}

TEST(JacobiEig, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  Matrix<double> A{{2, 1}, {1, 2}};
  const auto e = jacobi_eigensymmetric(A);
  EXPECT_NEAR(e.values[0], 1.0, 1e-13);
  EXPECT_NEAR(e.values[1], 3.0, 1e-13);
}

TEST(JacobiEig, ReconstructsMatrix) {
  Xoshiro256 rng(8);
  const auto G = random_gaussian(rng, 8, 8);
  Matrix<double> A(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) A(i, j) = 0.5 * (G(i, j) + G(j, i));
  }
  const auto e = jacobi_eigensymmetric(A);
  // A == V diag(w) V^T
  Matrix<double> VD(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) VD(i, j) = e.vectors(i, j) * e.values[j];
  }
  EXPECT_LT(max_abs_diff(gemm(VD, transpose(e.vectors)), A), 1e-11);
}

TEST(JacobiEig, PoissonSpectrumMatchesAnalytic) {
  const std::size_t N = 16;
  const auto A = dirichlet_laplacian(N);
  const auto e = jacobi_eigensymmetric(A);
  for (std::size_t k = 0; k < N; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos((k + 1) * M_PI / static_cast<double>(N + 1));
    EXPECT_NEAR(e.values[k], expected, 1e-12) << "k=" << k;
  }
}

TEST(JacobiSvd, ReconstructsMatrix) {
  Xoshiro256 rng(10);
  const auto A = random_gaussian(rng, 9, 6);
  const auto s = jacobi_svd(A);
  Matrix<double> US(9, 6);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 6; ++j) US(i, j) = s.U(i, j) * s.sigma[j];
  }
  EXPECT_LT(max_abs_diff(gemm(US, transpose(s.V)), A), 1e-12);
}

TEST(JacobiSvd, OrthonormalFactors) {
  Xoshiro256 rng(11);
  const auto A = random_gaussian(rng, 8, 8);
  const auto s = jacobi_svd(A);
  EXPECT_LT(max_abs_diff(gemm(transpose(s.U), s.U), Matrix<double>::identity(8)), 1e-12);
  EXPECT_LT(max_abs_diff(gemm(transpose(s.V), s.V), Matrix<double>::identity(8)), 1e-12);
}

TEST(JacobiSvd, SingularValuesSortedNonnegative) {
  Xoshiro256 rng(12);
  const auto A = random_gaussian(rng, 10, 10);
  const auto s = jacobi_svd(A);
  for (std::size_t i = 0; i + 1 < s.sigma.size(); ++i) {
    EXPECT_GE(s.sigma[i], s.sigma[i + 1]);
  }
  EXPECT_GE(s.sigma.back(), 0.0);
}

TEST(JacobiSvd, RecoversPrescribedConditionNumber) {
  Xoshiro256 rng(13);
  for (double kappa : {2.0, 10.0, 100.0, 1e4}) {
    const auto A = random_with_cond(rng, 16, kappa);
    EXPECT_NEAR(cond2(A) / kappa, 1.0, 1e-8) << "kappa=" << kappa;
    EXPECT_NEAR(norm2(A), 1.0, 1e-10);
  }
}

TEST(JacobiSvd, HighRelativeAccuracyOnTinySigma) {
  // diag(1, 1e-12): one-sided Jacobi must resolve sigma_min accurately.
  Matrix<double> A{{1.0, 0.0}, {0.0, 1e-12}};
  const auto s = jacobi_svd(A);
  EXPECT_NEAR(s.sigma[1] / 1e-12, 1.0, 1e-10);
}

}  // namespace
}  // namespace mpqls::linalg
