#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/random_matrix.hpp"

namespace mpqls::linalg {
namespace {

TEST(Qr, ReconstructsMatrix) {
  Xoshiro256 rng(3);
  const auto A = random_gaussian(rng, 6, 4);
  auto f = qr_factor(A);
  const auto Q = qr_q(f);
  // Build R from the factorization and check A = Q R.
  Matrix<double> R(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i; j < 4; ++j) R(i, j) = f.qr(i, j);
  }
  EXPECT_LT(max_abs_diff(gemm(Q, R), A), 1e-12);
}

TEST(Qr, QHasOrthonormalColumns) {
  Xoshiro256 rng(4);
  const auto A = random_gaussian(rng, 10, 7);
  const auto Q = qr_q(qr_factor(A));
  const auto QtQ = gemm(transpose(Q), Q);
  EXPECT_LT(max_abs_diff(QtQ, Matrix<double>::identity(7)), 1e-12);
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  Xoshiro256 rng(5);
  const auto A = random_gaussian(rng, 12, 5);
  Vector<double> b(12);
  for (auto& v : b) v = rng.normal();
  const auto x = qr_solve_ls(A, b);
  // Normal equations: A^T(Ax - b) = 0.
  const auto g = matvec_transposed(A, subtract(matvec(A, x), b));
  EXPECT_LT(nrm2(g), 1e-11);
}

TEST(Qr, SquareSolveMatchesLu) {
  Xoshiro256 rng(6);
  const auto A = random_with_cond(rng, 8, 20.0);
  const auto b = random_unit_vector(rng, 8);
  const auto x_qr = qr_solve_ls(A, b);
  EXPECT_LT(nrm2(residual(A, x_qr, b)), 1e-12);
}

}  // namespace
}  // namespace mpqls::linalg
