#include "linalg/random_matrix.hpp"

#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "linalg/jacobi_svd.hpp"

namespace mpqls::linalg {
namespace {

TEST(RandomMatrix, HaarOrthogonalIsOrthogonal) {
  Xoshiro256 rng(21);
  for (std::size_t n : {2u, 8u, 16u}) {
    const auto Q = haar_orthogonal(rng, n);
    EXPECT_LT(max_abs_diff(gemm(transpose(Q), Q), Matrix<double>::identity(n)), 1e-12);
  }
}

TEST(RandomMatrix, SpacingModesHitKappa) {
  Xoshiro256 rng(22);
  for (auto spacing :
       {SigmaSpacing::kLogarithmic, SigmaSpacing::kLinear, SigmaSpacing::kClustered}) {
    const auto A = random_with_cond(rng, 16, 100.0, spacing);
    EXPECT_NEAR(cond2(A), 100.0, 1e-6);
  }
}

TEST(RandomMatrix, UnitVectorHasUnitNorm) {
  Xoshiro256 rng(23);
  const auto b = random_unit_vector(rng, 32);
  EXPECT_NEAR(nrm2(b), 1.0, 1e-14);
}

TEST(RandomMatrix, Poisson1dStructure) {
  const auto A = poisson1d(8);
  const double inv_h2 = 81.0;  // h = 1/9
  EXPECT_NEAR(A(0, 0), 2.0 * inv_h2, 1e-12);
  EXPECT_NEAR(A(0, 1), -inv_h2, 1e-12);
  EXPECT_NEAR(A(3, 4), -inv_h2, 1e-12);
  EXPECT_NEAR(A(4, 3), -inv_h2, 1e-12);
  EXPECT_NEAR(A(0, 2), 0.0, 1e-12);
}

TEST(RandomMatrix, DirichletLaplacianCondMatchesFormula) {
  for (std::size_t N : {8u, 16u, 32u}) {
    const auto A = dirichlet_laplacian(N);
    EXPECT_NEAR(cond2(A) / dirichlet_laplacian_cond(N), 1.0, 1e-8) << N;
  }
}

TEST(RandomMatrix, CondGrowsQuadraticallyWithSize) {
  // Paper Section III-C4: kappa = O(N^2) for the Poisson matrix.
  const double c16 = dirichlet_laplacian_cond(16);
  const double c32 = dirichlet_laplacian_cond(32);
  EXPECT_NEAR(c32 / c16, 4.0, 0.5);
}

TEST(RandomMatrix, SeedsReproduce) {
  Xoshiro256 rng1(99), rng2(99);
  const auto A1 = random_with_cond(rng1, 8, 10.0);
  const auto A2 = random_with_cond(rng2, 8, 10.0);
  EXPECT_EQ(A1, A2);
}

}  // namespace
}  // namespace mpqls::linalg
