#include "linalg/iterative_refinement.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "linalg/dd128.hpp"
#include "linalg/half.hpp"
#include "linalg/random_matrix.hpp"

namespace mpqls::linalg {
namespace {

TEST(ClassicalIr, SingleToDoubleReachesDoubleAccuracy) {
  Xoshiro256 rng(31);
  const auto A = random_with_cond(rng, 16, 100.0);
  const auto b = random_unit_vector(rng, 16);
  ClassicalIrOptions opts;
  opts.target_scaled_residual = 1e-14;
  const auto r = classical_iterative_refinement<double, float>(A, b, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.scaled_residuals.back(), 1e-14);
  // Must take at least one refinement step: a single-precision solve cannot
  // reach 1e-14 alone.
  EXPECT_GE(r.iterations, 1);
}

TEST(ClassicalIr, HalfToDoubleConvergesForWellConditioned) {
  Xoshiro256 rng(32);
  const auto A = random_with_cond(rng, 8, 5.0);
  const auto b = random_unit_vector(rng, 8);
  ClassicalIrOptions opts;
  opts.target_scaled_residual = 1e-12;
  opts.max_iterations = 60;
  const auto r = classical_iterative_refinement<double, half>(A, b, opts);
  EXPECT_TRUE(r.converged);
}

TEST(ClassicalIr, ResidualContractsGeometrically) {
  Xoshiro256 rng(33);
  const auto A = random_with_cond(rng, 16, 10.0);
  const auto b = random_unit_vector(rng, 16);
  ClassicalIrOptions opts;
  opts.target_scaled_residual = 1e-15;
  const auto r = classical_iterative_refinement<double, float>(A, b, opts);
  // Each iteration should contract the residual by roughly u_l * kappa;
  // we only assert monotone decrease by at least 10x until near the floor.
  for (std::size_t i = 0; i + 1 < r.scaled_residuals.size(); ++i) {
    if (r.scaled_residuals[i + 1] > 1e-14) {
      EXPECT_LT(r.scaled_residuals[i + 1], r.scaled_residuals[i] / 10.0) << "step " << i;
    }
  }
}

TEST(ClassicalIr, ThreePrecisionResidualInDd) {
  Xoshiro256 rng(34);
  const auto A = random_with_cond(rng, 8, 10.0);
  const auto b = random_unit_vector(rng, 8);
  ClassicalIrOptions opts;
  opts.target_scaled_residual = 1e-15;
  const auto r = classical_iterative_refinement<double, float, dd128>(A, b, opts);
  EXPECT_TRUE(r.converged);
}

TEST(ClassicalIr, FirstSolveAlreadyAccurateStopsImmediately) {
  Xoshiro256 rng(35);
  const auto A = random_with_cond(rng, 8, 2.0);
  const auto b = random_unit_vector(rng, 8);
  ClassicalIrOptions opts;
  opts.target_scaled_residual = 1e-4;  // well within single-precision reach
  const auto r = classical_iterative_refinement<double, float>(A, b, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

// Property sweep: convergence across condition numbers and seeds for the
// float -> double configuration (u_l*kappa << 1 in all cases here).
class ClassicalIrSweep : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(ClassicalIrSweep, Converges) {
  const auto [kappa, seed] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  const auto A = random_with_cond(rng, 16, kappa);
  const auto b = random_unit_vector(rng, 16);
  ClassicalIrOptions opts;
  opts.target_scaled_residual = 1e-13;
  const auto r = classical_iterative_refinement<double, float>(A, b, opts);
  EXPECT_TRUE(r.converged) << "kappa=" << kappa << " seed=" << seed;
  EXPECT_LE(r.scaled_residuals.back(), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(KappaSeeds, ClassicalIrSweep,
                         ::testing::Combine(::testing::Values(2.0, 10.0, 100.0, 1000.0),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace mpqls::linalg
