#include "linalg/dd128.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mpqls::linalg {
namespace {

TEST(Dd128, AdditionIsExactForSplitValues) {
  // 1 + 2^-80 is not representable in double but is in dd128.
  const dd128 a(1.0);
  const dd128 b(std::ldexp(1.0, -80));
  const dd128 s = a + b;
  EXPECT_EQ(s.hi(), 1.0);
  EXPECT_EQ(s.lo(), std::ldexp(1.0, -80));
  EXPECT_EQ(((s - a) - b).hi(), 0.0);
}

TEST(Dd128, MultiplicationCapturesRoundoff) {
  // (1 + 2^-30)^2 = 1 + 2^-29 + 2^-60: the 2^-60 term is lost in double.
  const dd128 x(1.0 + std::ldexp(1.0, -30));
  const dd128 p = x * x;
  const dd128 expected = dd128(1.0) + dd128(std::ldexp(1.0, -29)) + dd128(std::ldexp(1.0, -60));
  EXPECT_EQ((p - expected).hi(), 0.0);
}

TEST(Dd128, DivisionRoundTrip) {
  const dd128 a(3.0), b(7.0);
  const dd128 q = a / b;
  const dd128 r = q * b - a;
  EXPECT_LT(std::fabs(r.hi()), 1e-30);
}

TEST(Dd128, SqrtAccuracy) {
  const dd128 two(2.0);
  const dd128 s = sqrt(two);
  const dd128 err = s * s - two;
  EXPECT_LT(std::fabs(err.hi()), 1e-30);
}

TEST(Dd128, SqrtOfSquareIsIdentity) {
  for (double v : {0.25, 1.0, 9.0, 1e10, 1e-10}) {
    const dd128 x(v);
    const dd128 r = sqrt(x * x);
    EXPECT_LT(std::fabs((r - x).hi()), 1e-26 * v) << v;
  }
}

TEST(Dd128, ComparisonUsesBothLimbs) {
  const dd128 a(1.0, 1e-20);
  const dd128 b(1.0, 2e-20);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_GT(b, a);
}

TEST(Dd128, AbsoluteValue) {
  EXPECT_EQ(abs(dd128(-3.0)).hi(), 3.0);
  EXPECT_EQ(abs(dd128(3.0)).hi(), 3.0);
  // Sign decided by the low limb when hi == 0.
  EXPECT_GT(abs(dd128(0.0, -1e-40)).lo(), 0.0);
}

TEST(Dd128, HarmonicSumBeatsDouble) {
  // Summing 1e6 terms of 1/k: dd should match a Kahan-compensated
  // reference far better than naive double summation error bounds.
  dd128 s(0.0);
  double naive = 0.0;
  for (int k = 1; k <= 1000000; ++k) {
    s += dd128(1.0) / dd128(static_cast<double>(k));
    naive += 1.0 / static_cast<double>(k);
  }
  // Known value of H_1e6 to 20 digits.
  const double h1e6 = 14.392726722865723631;
  EXPECT_NEAR(s.hi(), h1e6, 1e-13);
  EXPECT_NEAR(naive, h1e6, 1e-10);  // double is OK too, but dd is bit-accurate
  EXPECT_LT(std::fabs(s.hi() - h1e6), std::fabs(naive - h1e6) + 1e-15);
}

TEST(Dd128, EpsilonOrderOfMagnitude) {
  const dd128 one(1.0);
  const dd128 eps = std::numeric_limits<dd128>::epsilon();
  EXPECT_GT((one + eps), one);
  EXPECT_LT(eps.hi(), 1e-31);
}

}  // namespace
}  // namespace mpqls::linalg
