#include "linalg/blas.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "linalg/flops.hpp"
#include "linalg/half.hpp"
#include "linalg/matrix.hpp"

namespace mpqls::linalg {
namespace {

TEST(Blas, DotRealAndComplex) {
  Vector<double> x{1, 2, 3}, y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);

  using C = std::complex<double>;
  Vector<C> cx{{0, 1}, {1, 0}};
  Vector<C> cy{{0, 1}, {2, 0}};
  const C d = dot(cx, cy);  // conj(i)*i + 1*2 = 1 + 2
  EXPECT_DOUBLE_EQ(d.real(), 3.0);
  EXPECT_DOUBLE_EQ(d.imag(), 0.0);
}

TEST(Blas, AxpyAndScal) {
  Vector<double> x{1, 1, 1}, y{1, 2, 3};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (Vector<double>{3, 4, 5}));
  scal(0.5, y);
  EXPECT_EQ(y, (Vector<double>{1.5, 2, 2.5}));
}

TEST(Blas, Nrm2AgreesWithDefinition) {
  Vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
}

TEST(Blas, Nrm2HalfDoesNotOverflow) {
  // Naive sum of squares would exceed the half max (65504).
  Vector<half> x(100, half(300.0f));
  EXPECT_NEAR(nrm2(x), 3000.0, 5.0);
}

TEST(Blas, MatvecAndTransposed) {
  Matrix<double> A{{1, 2}, {3, 4}, {5, 6}};
  Vector<double> x{1, 1};
  EXPECT_EQ(matvec(A, x), (Vector<double>{3, 7, 11}));
  Vector<double> y{1, 1, 1};
  EXPECT_EQ(matvec_transposed(A, y), (Vector<double>{9, 12}));
}

TEST(Blas, MatvecTransposedConjugates) {
  using C = std::complex<double>;
  Matrix<C> A(1, 1);
  A(0, 0) = C(0, 1);
  Vector<C> x{C(1, 0)};
  const auto y = matvec_transposed(A, x);
  EXPECT_DOUBLE_EQ(y[0].imag(), -1.0);  // A^H
}

TEST(Blas, GemmSmallKnown) {
  Matrix<double> A{{1, 2}, {3, 4}};
  Matrix<double> B{{5, 6}, {7, 8}};
  const auto C = gemm(A, B);
  EXPECT_DOUBLE_EQ(C(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(C(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(C(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(C(1, 1), 50.0);
}

TEST(Blas, GemmIdentityIsNoop) {
  Matrix<double> A{{1, 2}, {3, 4}};
  EXPECT_EQ(gemm(A, Matrix<double>::identity(2)), A);
  EXPECT_EQ(gemm(Matrix<double>::identity(2), A), A);
}

TEST(Blas, TransposeIsConjugateForComplex) {
  using C = std::complex<double>;
  Matrix<C> A(2, 2);
  A(0, 1) = C(1, 2);
  const auto At = transpose(A);
  EXPECT_EQ(At(1, 0), C(1, -2));
}

TEST(Blas, ResidualKernel) {
  Matrix<double> A{{2, 0}, {0, 2}};
  Vector<double> x{1, 1}, b{3, 3};
  EXPECT_EQ(residual(A, x, b), (Vector<double>{1, 1}));
}

TEST(Blas, PrecisionConversionRoundsEntries) {
  Matrix<double> A(1, 1);
  A(0, 0) = 1.0 + 1e-5;  // not representable in half
  const auto Ah = convert_matrix<half>(A);
  EXPECT_EQ(float(Ah(0, 0)), 1.0f);
}

TEST(FlopLedger, CountsInsideScopeOnly) {
  Vector<double> x(10, 1.0), y(10, 1.0);
  std::uint64_t counted = 0;
  {
    FlopScope scope;
    (void)dot(x, y);
    counted = scope.count();
  }
  EXPECT_EQ(counted, 20u);
  // Outside any scope counting is inert (no crash, nothing recorded).
  (void)dot(x, y);
}

TEST(FlopLedger, NestedScopesAccumulateOutward) {
  Vector<double> x(8, 1.0), y(8, 1.0);
  FlopScope outer;
  {
    FlopScope inner;
    (void)dot(x, y);
    EXPECT_EQ(inner.count(), 16u);
  }
  (void)dot(x, y);
  EXPECT_EQ(outer.count(), 32u);
}

}  // namespace
}  // namespace mpqls::linalg
