#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/gmres.hpp"
#include "linalg/half.hpp"
#include "linalg/jacobi_svd.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/sparse.hpp"

namespace mpqls::linalg {
namespace {

TEST(Gmres, SolvesRandomSystem) {
  Xoshiro256 rng(11);
  const auto A = random_with_cond(rng, 24, 50.0);
  const auto b = random_unit_vector(rng, 24);
  const auto res = gmres_solve(A, b);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(nrm2(residual(A, res.x, b)), 1e-10);
}

TEST(Gmres, RestartStillConverges) {
  // Restarted GMRES is only guaranteed to make progress when the field of
  // values stays away from the origin; use A = I + contraction (all
  // eigenvalues near 1) — unpreconditioned GMRES(8) can genuinely
  // stagnate on arbitrary nonsymmetric spectra.
  Xoshiro256 rng(12);
  auto G = random_gaussian(rng, 32, 32);
  const double g_norm = norm2(G);
  Matrix<double> A = Matrix<double>::identity(32);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) A(i, j) += 0.45 * G(i, j) / g_norm;
  }
  const auto b = random_unit_vector(rng, 32);
  GmresOptions opts;
  opts.restart = 8;  // force several restarts
  opts.max_iterations = 400;
  const auto res = gmres_solve(A, b, opts);
  EXPECT_TRUE(res.converged) << res.relative_residual;
  EXPECT_GT(res.iterations, 8);  // at least one restart actually happened
}

TEST(Gmres, PreconditionerAccelerates) {
  Xoshiro256 rng(13);
  const auto A = random_with_cond(rng, 32, 1000.0);
  const auto b = random_unit_vector(rng, 32);
  GmresOptions opts;
  opts.restart = 10;
  opts.max_iterations = 300;
  const auto plain = gmres_solve(A, b, opts);

  const auto lu = lu_factor(convert_matrix<float>(A));
  const std::function<Vector<double>(const Vector<double>&)> minv =
      [&lu](const Vector<double>& v) {
        return convert_vector<double>(lu_solve(lu, convert_vector<float>(v)));
      };
  const auto pre = gmres_solve(A, b, opts, &minv);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, std::max(plain.iterations / 2, 3));
}

TEST(GmresIr, ExtendsHalfPrecisionBeyondPlainIr) {
  // kappa where fp16 LU-based plain refinement struggles (u_l*kappa ~ 1):
  // GMRES-IR still converges because GMRES only needs the LU factors as a
  // preconditioner.
  Xoshiro256 rng(14);
  const auto A = random_with_cond(rng, 24, 1500.0);
  const auto b = random_unit_vector(rng, 24);
  const auto res = gmres_iterative_refinement<half>(A, b, 1e-12);
  EXPECT_TRUE(res.converged) << res.scaled_residuals.back();
}

TEST(GmresIr, FloatFactorsConvergeFast) {
  Xoshiro256 rng(15);
  const auto A = random_with_cond(rng, 16, 100.0);
  const auto b = random_unit_vector(rng, 16);
  const auto res = gmres_iterative_refinement<float>(A, b, 1e-13);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.refinement_iterations, 4);
}

TEST(Csr, RoundTripFromDense) {
  Xoshiro256 rng(16);
  auto A = random_gaussian(rng, 6, 6);
  A(2, 3) = 0.0;
  A(5, 0) = 0.0;
  const auto csr = CsrMatrix::from_dense(A);
  EXPECT_LT(max_abs_diff(csr.to_dense(), A), 1e-15);
  EXPECT_EQ(csr.nonzeros(), 34u);
}

TEST(Csr, MatvecMatchesDense) {
  Xoshiro256 rng(17);
  const auto A = random_gaussian(rng, 12, 12);
  const auto csr = CsrMatrix::from_dense(A);
  const auto x = random_unit_vector(rng, 12);
  const auto y_dense = matvec(A, x);
  const auto y_csr = csr.multiply(x);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(y_csr[i], y_dense[i], 1e-13);
}

TEST(Csr, Laplacian1dMatchesDenseBuilder) {
  const auto sparse = CsrMatrix::dirichlet_laplacian(16);
  const auto dense = dirichlet_laplacian(16);
  EXPECT_LT(max_abs_diff(sparse.to_dense(), dense), 1e-15);
  EXPECT_EQ(sparse.nonzeros(), 3u * 16u - 2u);
}

TEST(Csr, Laplacian2dStructure) {
  const auto A = CsrMatrix::dirichlet_laplacian_2d(3, 3).to_dense();
  EXPECT_DOUBLE_EQ(A(4, 4), 4.0);   // center point
  EXPECT_DOUBLE_EQ(A(4, 1), -1.0);  // north
  EXPECT_DOUBLE_EQ(A(4, 3), -1.0);  // west
  EXPECT_DOUBLE_EQ(A(4, 5), -1.0);  // east
  EXPECT_DOUBLE_EQ(A(4, 7), -1.0);  // south
  EXPECT_DOUBLE_EQ(A(0, 8), 0.0);   // no wraparound
}

TEST(Cg, SolvesPoisson1d) {
  const std::size_t n = 64;
  const auto A = CsrMatrix::dirichlet_laplacian(n);
  Vector<double> b(n, 1.0);
  const auto res = cg_solve(A, b);
  EXPECT_TRUE(res.converged);
  const auto r = subtract(b, A.multiply(res.x));
  EXPECT_LT(nrm2(r), 1e-9);
  // CG on the 1-D Laplacian converges in at most n steps (exactly, in
  // exact arithmetic).
  EXPECT_LE(res.iterations, static_cast<int>(n));
}

TEST(Cg, SolvesPoisson2d) {
  const auto A = CsrMatrix::dirichlet_laplacian_2d(12, 12);
  Vector<double> b(144, 1.0);
  const auto res = cg_solve(A, b);
  EXPECT_TRUE(res.converged);
}

}  // namespace
}  // namespace mpqls::linalg
