#include "resources/tcount.hpp"

#include <gtest/gtest.h>

#include "blockenc/arith/adders.hpp"
#include "blockenc/tridiagonal.hpp"
#include "qsim/circuit.hpp"

namespace mpqls::resources {
namespace {

TEST(TCount, CliffordGatesAreFree) {
  qsim::Circuit c(3);
  c.h(0).s(1).cx(0, 1).x(2).z(0).swap(1, 2).sdg(2);
  const auto tc = circuit_tcount(c);
  EXPECT_EQ(tc.t_gates, 0u);
}

TEST(TCount, PlainTGateCostsOne) {
  qsim::Circuit c(1);
  c.t(0).tdg(0);
  EXPECT_EQ(circuit_tcount(c).t_gates, 2u);
}

TEST(TCount, ToffoliCostsSeven) {
  qsim::Circuit c(3);
  c.ccx(0, 1, 2);
  EXPECT_EQ(circuit_tcount(c).t_gates, 7u);
}

TEST(TCount, McxModelsOrdered) {
  // Conditionally-clean ancillae [24] beat the clean-ancilla ladder.
  for (std::uint32_t k = 3; k <= 10; ++k) {
    EXPECT_LT(tcount_mcx(k, McxModel::kConditionallyClean),
              tcount_mcx(k, McxModel::kCleanAncilla))
        << k;
  }
  // Both agree on the Toffoli.
  EXPECT_EQ(tcount_mcx(2, McxModel::kConditionallyClean),
            tcount_mcx(2, McxModel::kCleanAncilla));
}

TEST(TCount, RotationSynthesisScalesLogarithmically) {
  const auto t10 = tcount_rotation(1e-10);
  const auto t5 = tcount_rotation(1e-5);
  EXPECT_GT(t10, t5);
  EXPECT_LT(t10, 2 * t5);  // logarithmic, not polynomial
  EXPECT_NEAR(static_cast<double>(tcount_rotation(1e-10)), 3.02 * 33.2 + 9.2, 3.0);
}

TEST(TCount, RotationsCountedThroughOptions) {
  qsim::Circuit c(2);
  c.ry(0, 0.3).rz(1, -0.2).cry(0, 1, 0.5);
  TCountOptions opts;
  const auto tc = circuit_tcount(c, opts);
  EXPECT_EQ(tc.rotation_gates, 3u);
  const auto rot = tcount_rotation(opts.rotation_synthesis_eps);
  // Two plain rotations + one controlled rotation (2 rot + 2 CX).
  EXPECT_EQ(tc.t_gates, 2 * rot + 2 * rot + 0u);
}

TEST(TCount, OracleGatesFlaggedNotGuessed) {
  qsim::Circuit c(2);
  c.unitary({0, 1}, linalg::Matrix<qsim::c64>::identity(4));
  const auto tc = circuit_tcount(c);
  EXPECT_EQ(tc.oracle_gates, 1u);
  EXPECT_EQ(tc.t_gates, 0u);
}

TEST(TCount, CarryAdderCostGrowsLinearly) {
  // Carry-chain increment: 2(n-2) Toffolis -> T count linear in n.
  auto cost = [](std::uint32_t n) {
    qsim::Circuit c(2 * n);
    std::vector<std::uint32_t> q(n), a(n - 2);
    for (std::uint32_t i = 0; i < n; ++i) q[i] = i;
    for (std::uint32_t i = 0; i + 2 < n; ++i) a[i] = n + i;
    blockenc::append_increment_carry(c, q, a);
    return circuit_tcount(c).t_gates;
  };
  const auto c4 = cost(4), c8 = cost(8), c16 = cost(16);
  EXPECT_LE(c8, 3 * c4);
  EXPECT_LE(c16, 3 * c8);
  EXPECT_GT(c8, c4);
  EXPECT_EQ(c16, 7u * 2u * 14u);  // 2(n-2) Toffolis at 7T
}

TEST(TCount, CascadeAdderCostGrowsQuadratically) {
  // The ancilla-free MCX cascade pays ~n^2: this is exactly the gap the
  // carry construction (and the paper's reference [34]) closes.
  auto cost = [](std::uint32_t n) {
    qsim::Circuit c(n);
    std::vector<std::uint32_t> q(n);
    for (std::uint32_t i = 0; i < n; ++i) q[i] = i;
    blockenc::append_increment(c, q);
    return circuit_tcount(c).t_gates;
  };
  const auto c8 = cost(8), c16 = cost(16);
  EXPECT_GT(c16, 3 * c8);  // clearly super-linear
}

TEST(TCount, TridiagonalEncodingIsPolylogInN) {
  // The paper's Table II: the BE cost should scale ~n (log N), not N.
  const auto t3 = circuit_tcount(blockenc::tridiagonal_block_encoding(3).circuit).t_gates;
  const auto t6 = circuit_tcount(blockenc::tridiagonal_block_encoding(6).circuit).t_gates;
  EXPECT_GT(t3, 0u);
  EXPECT_LT(t6, 3 * t3);  // doubling n far less than doubles the T count
}

}  // namespace
}  // namespace mpqls::resources
