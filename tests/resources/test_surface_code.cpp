#include "resources/surface_code.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace mpqls::resources {
namespace {

TEST(SurfaceCode, MeetsFailureBudget) {
  const auto est = surface_code_estimate(1'000'000, 10, 1e-2);
  EXPECT_GT(est.code_distance, 0u);
  EXPECT_LE(est.logical_failure_probability, 1e-2);
  EXPECT_GT(est.physical_qubits, 0u);
  EXPECT_GT(est.runtime_seconds, 0.0);
}

TEST(SurfaceCode, DistanceGrowsWithWorkload) {
  const auto small = surface_code_estimate(1'000, 5, 1e-2);
  const auto large = surface_code_estimate(1'000'000'000, 5, 1e-2);
  EXPECT_GT(large.code_distance, small.code_distance);
}

TEST(SurfaceCode, DistanceGrowsWithTighterBudget) {
  const auto loose = surface_code_estimate(1'000'000, 5, 1e-1);
  const auto tight = surface_code_estimate(1'000'000, 5, 1e-6);
  EXPECT_GT(tight.code_distance, loose.code_distance);
}

TEST(SurfaceCode, BetterHardwareShrinksDistance) {
  SurfaceCodeAssumptions good;
  good.physical_error_rate = 1e-4;
  const auto std_est = surface_code_estimate(1'000'000, 5, 1e-2);
  const auto good_est = surface_code_estimate(1'000'000, 5, 1e-2, good);
  EXPECT_LT(good_est.code_distance, std_est.code_distance);
  EXPECT_LT(good_est.physical_qubits, std_est.physical_qubits);
}

TEST(SurfaceCode, MoreFactoriesShortenRuntime) {
  SurfaceCodeAssumptions few;
  few.factories = 1;
  SurfaceCodeAssumptions many;
  many.factories = 8;
  const auto slow = surface_code_estimate(1'000'000, 5, 1e-2, few);
  const auto fast = surface_code_estimate(1'000'000, 5, 1e-2, many);
  EXPECT_GT(slow.runtime_seconds, fast.runtime_seconds);
}

TEST(SurfaceCode, RejectsAboveThresholdHardware) {
  SurfaceCodeAssumptions bad;
  bad.physical_error_rate = 0.5;
  EXPECT_THROW(surface_code_estimate(1000, 1, 1e-2, bad), contract_violation);
}

}  // namespace
}  // namespace mpqls::resources
