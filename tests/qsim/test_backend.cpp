// Execution-backend tests: registry contract (built-ins, lookup, default),
// and reference-vs-blocked parity. The blocked backend remaps ops into
// tile index space and replays them through the same shared kernels, so
// its results must match the reference backend to floating-point noise on
// every precision tier, for scalar registers and ragged-width panels, for
// programs narrower than the register, and across the barrier path (ops
// too wide for any tile).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "qsim/circuit.hpp"
#include "qsim/exec/backend/backend.hpp"
#include "qsim/exec/compile.hpp"
#include "qsim/exec/panel.hpp"
#include "qsim/exec/program.hpp"
#include "qsim/statevector.hpp"

namespace {

using namespace mpqls;
using c64 = qsim::c64;
namespace exec = qsim::exec;

// Tiny tiles so blocking engages at unit-test register sizes (the default
// 128 KiB budget would pass small registers through untouched).
exec::BlockedBackendOptions tiny_tiles() {
  exec::BlockedBackendOptions opt;
  opt.tile_bytes = std::size_t{1} << 10;
  opt.max_high_bits = 2;
  opt.min_run_ops = 2;
  return opt;
}

linalg::Matrix<c64> random_unitary(Xoshiro256& rng, std::size_t dim) {
  linalg::Matrix<c64> m(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) m(i, j) = c64(rng.normal(), rng.normal());
  }
  for (std::size_t c = 0; c < dim; ++c) {
    for (std::size_t p = 0; p < c; ++p) {
      c64 overlap{};
      for (std::size_t r = 0; r < dim; ++r) overlap += std::conj(m(r, p)) * m(r, c);
      for (std::size_t r = 0; r < dim; ++r) m(r, c) -= overlap * m(r, p);
    }
    double nrm = 0.0;
    for (std::size_t r = 0; r < dim; ++r) nrm += std::norm(m(r, c));
    nrm = std::sqrt(nrm);
    for (std::size_t r = 0; r < dim; ++r) m(r, c) /= nrm;
  }
  return m;
}

std::vector<std::uint32_t> pick_qubits(Xoshiro256& rng, std::uint32_t n, std::size_t count,
                                       std::uint64_t& used) {
  std::vector<std::uint32_t> out;
  while (out.size() < count) {
    const auto q = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (used & (std::uint64_t{1} << q)) continue;
    used |= std::uint64_t{1} << q;
    out.push_back(q);
  }
  return out;
}

// Gate soup biased toward the QSVT shape (many controlled 1q ops, some
// dense/diagonal payloads, occasional wide unitaries that must take the
// blocked backend's barrier path).
qsim::Circuit random_circuit(Xoshiro256& rng, std::uint32_t n, std::size_t gates,
                             bool with_wide_ops) {
  qsim::Circuit c(n);
  const qsim::GateKind rot[] = {qsim::GateKind::kRx, qsim::GateKind::kRy, qsim::GateKind::kRz,
                                qsim::GateKind::kPhase};
  for (std::size_t i = 0; i < gates; ++i) {
    qsim::Gate g;
    std::uint64_t used = 0;
    const auto kind_pick = rng.uniform_index(with_wide_ops ? 5 : 4);
    switch (kind_pick) {
      case 0:
        g.kind = qsim::GateKind::kH;
        g.targets = pick_qubits(rng, n, 1, used);
        break;
      case 1:
        g.kind = rot[rng.uniform_index(4)];
        g.param = rng.uniform(-3.0, 3.0);
        g.targets = pick_qubits(rng, n, 1, used);
        break;
      case 2: {
        const std::size_t k = 1 + rng.uniform_index(std::min<std::uint32_t>(2, n));
        g.kind = qsim::GateKind::kUnitary;
        g.targets = pick_qubits(rng, n, k, used);
        g.matrix =
            std::make_shared<const linalg::Matrix<c64>>(random_unitary(rng, std::size_t{1} << k));
        break;
      }
      case 3: {
        const std::size_t k = 1 + rng.uniform_index(std::min<std::uint32_t>(2, n));
        g.kind = qsim::GateKind::kDiagonal;
        g.targets = pick_qubits(rng, n, k, used);
        std::vector<c64> d(std::size_t{1} << k);
        for (auto& v : d) v = std::exp(c64(0, rng.uniform(-3.0, 3.0)));
        g.diagonal = std::make_shared<const std::vector<c64>>(std::move(d));
        break;
      }
      default: {
        // Wider than the tiny-tile high-bit budget: exercises barriers.
        const std::size_t k = std::min<std::uint32_t>(4, n);
        g.kind = qsim::GateKind::kUnitary;
        g.targets = pick_qubits(rng, n, k, used);
        g.matrix =
            std::make_shared<const linalg::Matrix<c64>>(random_unitary(rng, std::size_t{1} << k));
        break;
      }
    }
    const std::size_t n_ctrl = rng.uniform_index(std::min<std::uint64_t>(
        3, n - static_cast<std::uint32_t>(g.targets.size()) + 1));
    for (std::size_t k = 0; k < n_ctrl; ++k) {
      const auto q = pick_qubits(rng, n, 1, used)[0];
      if (rng.uniform() < 0.5) {
        g.controls.push_back(q);
      } else {
        g.neg_controls.push_back(q);
      }
    }
    c.push(std::move(g));
  }
  return c;
}

template <typename T>
void randomize(qsim::Statevector<T>& sv, Xoshiro256& rng) {
  for (std::size_t i = 0; i < sv.dim(); ++i) {
    sv[i] = std::complex<T>(static_cast<T>(rng.uniform(-1.0, 1.0)),
                            static_cast<T>(rng.uniform(-1.0, 1.0)));
  }
  sv.normalize();
}

template <typename T>
void randomize(exec::StatePanel<T>& panel, Xoshiro256& rng) {
  for (std::size_t i = 0; i < panel.dim(); ++i) {
    for (std::size_t l = 0; l < panel.lanes(); ++l) {
      panel.set_amp(i, l, {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
    }
  }
}

template <typename T>
double max_abs_diff(const qsim::Statevector<T>& a, const qsim::Statevector<T>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    worst = std::max(worst, std::abs(std::complex<double>(a[i].real(), a[i].imag()) -
                                     std::complex<double>(b[i].real(), b[i].imag())));
  }
  return worst;
}

template <typename T>
double max_abs_diff(const exec::StatePanel<T>& a, const exec::StatePanel<T>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    for (std::size_t l = 0; l < a.lanes(); ++l) {
      worst = std::max(worst, std::abs(a.amp(i, l) - b.amp(i, l)));
    }
  }
  return worst;
}

TEST(BackendRegistry, BuiltinsRegisteredAndDiscoverable) {
  auto& reg = exec::backend_registry();
  const auto names = reg.names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_NE(std::find(names.begin(), names.end(), "reference"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "blocked"), names.end());

  const exec::ExecBackend* ref = exec::find_backend("reference");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->capabilities().name, "reference");
  EXPECT_EQ(ref->capabilities().max_qubits, 30u);
  EXPECT_EQ(ref->capabilities().precisions,
            (std::vector<std::string>{"half", "single", "double"}));
  const auto& widths = ref->capabilities().panel_widths;
  for (std::uint32_t w : {1u, 2u, 4u, 8u, 16u, 0u}) {
    EXPECT_NE(std::find(widths.begin(), widths.end(), w), widths.end());
  }

  EXPECT_EQ(exec::find_backend("no-such-backend"), nullptr);
  EXPECT_EQ(exec::default_backend().capabilities().name,
            std::string(exec::kDefaultBackendName));
  EXPECT_EQ(reg.list().size(), names.size());
}

TEST(BackendRegistry, HandlesAreIndependentAndWorkspaceReported) {
  const exec::ExecBackend* blocked = exec::find_backend("blocked");
  ASSERT_NE(blocked, nullptr);
  auto h1 = blocked->create_handle();
  auto h2 = blocked->create_handle();
  ASSERT_NE(h1, nullptr);
  ASSERT_NE(h2, nullptr);
  EXPECT_NE(h1.get(), h2.get());
  EXPECT_GT(blocked->workspace_bytes(20), 0u);
  EXPECT_GT(exec::default_backend().workspace_bytes(20), 0u);
}

/// MPQLS_BLOCKED_* overrides must parse strictly: a malformed or
/// out-of-range value keeps the compiled-in default (with a stderr
/// warning), it never produces a degenerate tile geometry. tile_bytes is
/// observable through workspace_bytes() == 2 * tile_bytes.
TEST(BackendRegistry, EnvTuningRejectsGarbageAndKeepsDefaults) {
  exec::BlockedBackendOptions defaults;
  const auto tile_bytes_of = [] {
    return exec::make_blocked_backend()->workspace_bytes(20) / 2;
  };

  ::setenv("MPQLS_BLOCKED_TILE_BYTES", "65536", 1);
  EXPECT_EQ(tile_bytes_of(), 65536u);

  const char* bad[] = {"banana", "64k", "", "-4096", "1e6", "12 ", "999999999999999999999"};
  for (const char* value : bad) {
    ::setenv("MPQLS_BLOCKED_TILE_BYTES", value, 1);
    EXPECT_EQ(tile_bytes_of(), defaults.tile_bytes) << "value \"" << value << "\"";
  }
  // Out of range (below the 1 KiB floor / above the 4 GiB ceiling).
  ::setenv("MPQLS_BLOCKED_TILE_BYTES", "512", 1);
  EXPECT_EQ(tile_bytes_of(), defaults.tile_bytes);
  ::setenv("MPQLS_BLOCKED_TILE_BYTES", "8589934592", 1);
  EXPECT_EQ(tile_bytes_of(), defaults.tile_bytes);
  ::unsetenv("MPQLS_BLOCKED_TILE_BYTES");

  // The other two knobs share the parser; spot-check their ranges by
  // replay parity (a rejected value must leave a working backend).
  ::setenv("MPQLS_BLOCKED_MAX_HIGH_BITS", "nope", 1);
  ::setenv("MPQLS_BLOCKED_MIN_RUN_OPS", "0", 1);
  auto backend = exec::make_blocked_backend(tiny_tiles());
  ::unsetenv("MPQLS_BLOCKED_MAX_HIGH_BITS");
  ::unsetenv("MPQLS_BLOCKED_MIN_RUN_OPS");
  ASSERT_NE(backend, nullptr);
  EXPECT_GT(backend->workspace_bytes(10), 0u);
}

template <typename T>
void scalar_parity(std::uint32_t width, std::size_t gates, double tol, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto circuit = random_circuit(rng, width, gates, /*with_wide_ops=*/true);
  const auto program = exec::compile<T>(circuit);

  qsim::Statevector<T> ref_sv(width);
  randomize(ref_sv, rng);
  qsim::Statevector<T> blk_sv = ref_sv;

  const exec::ExecBackend& ref = exec::default_backend();
  auto ref_handle = ref.create_handle();
  ref.apply_program(*ref_handle, program, ref_sv);

  auto blocked = exec::make_blocked_backend(tiny_tiles());
  auto blk_handle = blocked->create_handle();
  blocked->apply_program(*blk_handle, program, blk_sv);

  EXPECT_LT(max_abs_diff(ref_sv, blk_sv), tol) << "width=" << width;
}

TEST(BackendParity, ScalarDouble) {
  for (std::uint32_t width : {6u, 9u, 11u}) scalar_parity<double>(width, 120, 1e-12, 7 + width);
}

TEST(BackendParity, ScalarFloat) {
  for (std::uint32_t width : {6u, 9u, 11u}) scalar_parity<float>(width, 120, 1e-4, 11 + width);
}

TEST(BackendParity, RegistryBlockedPassthroughOnSmallRegisters) {
  // The registry's default-tuned blocked backend passes small registers
  // through: still must match reference exactly.
  Xoshiro256 rng(99);
  const auto circuit = random_circuit(rng, 6, 80, true);
  const auto program = exec::compile<double>(circuit);
  qsim::Statevector<double> a(6), b(6);
  randomize(a, rng);
  b = a;
  auto ref_handle = exec::default_backend().create_handle();
  exec::default_backend().apply_program(*ref_handle, program, a);
  const exec::ExecBackend* blocked = exec::find_backend("blocked");
  auto h = blocked->create_handle();
  blocked->apply_program(*h, program, b);
  EXPECT_LT(max_abs_diff(a, b), 1e-13);
}

TEST(BackendParity, ProgramNarrowerThanRegister) {
  Xoshiro256 rng(123);
  const auto circuit = random_circuit(rng, 6, 60, false);
  const auto program = exec::compile<double>(circuit);
  qsim::Statevector<double> a(10), b(10);
  randomize(a, rng);
  b = a;
  auto ref_handle = exec::default_backend().create_handle();
  exec::default_backend().apply_program(*ref_handle, program, a);
  auto blocked = exec::make_blocked_backend(tiny_tiles());
  auto h = blocked->create_handle();
  blocked->apply_program(*h, program, b);
  EXPECT_LT(max_abs_diff(a, b), 1e-12);
}

template <typename T>
void panel_parity(std::uint32_t width, std::size_t lanes, double tol, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto circuit = random_circuit(rng, width, 100, /*with_wide_ops=*/true);
  const auto ir = exec::lower_and_fuse(circuit);
  const auto program = exec::specialize<T>(ir);

  exec::StatePanel<T> ref_panel(width, lanes);
  randomize(ref_panel, rng);
  exec::StatePanel<T> blk_panel = ref_panel;

  auto ref_handle = exec::default_backend().create_handle();
  exec::default_backend().apply_program_panel(*ref_handle, program, ref_panel);

  auto blocked = exec::make_blocked_backend(tiny_tiles());
  auto blk_handle = blocked->create_handle();
  blocked->apply_program_panel(*blk_handle, program, blk_panel);

  EXPECT_LT(max_abs_diff(ref_panel, blk_panel), tol)
      << "width=" << width << " lanes=" << lanes;
}

TEST(BackendParity, PanelDoubleAcrossWidths) {
  for (std::size_t lanes : {1u, 2u, 4u, 8u, 16u}) panel_parity<double>(9, lanes, 1e-12, lanes);
}

TEST(BackendParity, PanelFloatRaggedWidths) {
  // Ragged lane counts take the generic runtime-width kernels.
  for (std::size_t lanes : {3u, 5u, 7u}) panel_parity<float>(9, lanes, 1e-4, 31 + lanes);
}

TEST(BackendParity, PanelHalfTier) {
  // f16 storage rounds identically through both backends (same kernels,
  // same order), so the agreement gate can stay far below the ~2^-11
  // storage quantum.
  for (std::size_t lanes : {1u, 4u, 8u}) panel_parity<exec::f16>(8, lanes, 2e-3, 57 + lanes);
}

TEST(BackendParity, PlanCacheIsStablePerProgram) {
  // Two replays through one handle must agree with a fresh handle's replay
  // (plan caching must not mutate results).
  Xoshiro256 rng(4242);
  const auto circuit = random_circuit(rng, 10, 150, true);
  const auto program = exec::compile<double>(circuit);
  auto blocked = exec::make_blocked_backend(tiny_tiles());
  auto warm = blocked->create_handle();
  qsim::Statevector<double> first(10);
  randomize(first, rng);
  qsim::Statevector<double> second = first;

  blocked->apply_program(*warm, program, first);   // builds the plan
  auto fresh = blocked->create_handle();
  blocked->apply_program(*fresh, program, second);
  EXPECT_EQ(max_abs_diff(first, second), 0.0);

  // And a second replay through the cached plan stays deterministic.
  qsim::Statevector<double> third(10);
  qsim::Statevector<double> fourth(10);
  for (std::size_t i = 0; i < third.dim(); ++i) fourth[i] = third[i];
  blocked->apply_program(*warm, program, third);
  blocked->apply_program(*fresh, program, fourth);
  EXPECT_EQ(max_abs_diff(third, fourth), 0.0);
}

}  // namespace
