#include "qsim/synth/amplitude_estimation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qsim/circuit.hpp"

namespace mpqls::qsim {
namespace {

TEST(AmplitudeEstimation, SingleQubitRotationAmplitude) {
  // V = RY(theta): P(q0 = 0) = cos^2(theta/2). Pick a value exactly
  // representable on the phase grid so QPE is sharp.
  const std::uint32_t m = 5;
  const double grid_theta = M_PI * 3.0 / 32.0;          // Grover angle on the grid
  const double a = std::sin(grid_theta) * std::sin(grid_theta);
  const double ry_angle = 2.0 * std::asin(std::sqrt(a));
  Circuit v(1);
  v.ry(0, ry_angle);
  // Marked subspace = q0 at |1>... our API marks zeros, so estimate the
  // probability of q0 = 0 instead: a0 = 1 - a, whose Grover angle is also
  // on the grid (theta0 = pi/2 - grid_theta = 13 pi/32).
  const auto res = estimate_amplitude(v, {0}, m);
  EXPECT_NEAR(res.exact, 1.0 - a, 1e-12);
  EXPECT_NEAR(res.estimate, res.exact, 1e-9);
  EXPECT_EQ(res.grover_calls, (1u << m) - 1u);
}

TEST(AmplitudeEstimation, OffGridValueWithinResolution) {
  Circuit v(1);
  v.ry(0, 0.9);  // arbitrary amplitude
  const std::uint32_t m = 7;
  const auto res = estimate_amplitude(v, {0}, m);
  // Canonical AE error bound: |a_hat - a| <= 2 pi sqrt(a(1-a))/2^m + pi^2/4^m.
  const double bound = 2.0 * M_PI * std::sqrt(res.exact * (1 - res.exact)) / (1 << m) +
                       M_PI * M_PI / static_cast<double>(1 << (2 * m));
  EXPECT_NEAR(res.estimate, res.exact, 2.0 * bound);
}

TEST(AmplitudeEstimation, TwoQubitEntangledMark) {
  // V = H(0) CX(0,1): P(q0 = q1 = 0) = 1/2 exactly -> Grover angle pi/4,
  // exactly on every grid with m >= 2.
  Circuit v(2);
  v.h(0).cx(0, 1);
  const auto res = estimate_amplitude(v, {0, 1}, 4);
  EXPECT_NEAR(res.exact, 0.5, 1e-12);
  EXPECT_NEAR(res.estimate, 0.5, 1e-9);
}

TEST(AmplitudeEstimation, ErrorWithinCanonicalBoundAcrossClockSizes) {
  // |a_hat - a| <= 2 pi sqrt(a(1-a))/2^m + pi^2/4^m (Brassard et al.,
  // Thm 12) for every clock size. (Strict monotonicity in m is not
  // guaranteed pointwise — the grid can get lucky — so assert the bound.)
  Circuit v(1);
  v.ry(0, 1.234);
  for (std::uint32_t m : {4u, 6u, 9u}) {
    const auto res = estimate_amplitude(v, {0}, m);
    const double M = static_cast<double>(1u << m);
    const double bound =
        2.0 * M_PI * std::sqrt(res.exact * (1 - res.exact)) / M + M_PI * M_PI / (M * M);
    EXPECT_LE(std::fabs(res.estimate - res.exact), bound) << "m=" << m;
  }
}

TEST(AmplitudeEstimation, CallCountScalesAsOneOverEps) {
  // The headline: to halve the error you double the Grover calls — versus
  // quadrupling the shots under direct sampling (Table I's 1/eps^2 term).
  Circuit v(1);
  v.ry(0, 0.7);
  const auto r5 = estimate_amplitude(v, {0}, 5);
  const auto r6 = estimate_amplitude(v, {0}, 6);
  EXPECT_EQ(r6.grover_calls, 2 * r5.grover_calls + 1);
}

}  // namespace
}  // namespace mpqls::qsim
