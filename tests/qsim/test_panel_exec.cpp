// Panel execution vs the scalar executor: replaying one compiled program
// over a StatePanel must reproduce, lane by lane, what Executor<T> does to
// the same initial states — for randomized circuits hitting every kernel
// (1q, dense, diagonal, global phase, controls and negative controls), in
// float and double, for ragged lane counts that are not powers of two,
// and for the panel-wide reductions (norms, postselection) against their
// Statevector counterparts.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "qsim/circuit.hpp"
#include "qsim/exec/compile.hpp"
#include "qsim/exec/executor.hpp"
#include "qsim/exec/panel.hpp"
#include "qsim/exec/panel_executor.hpp"
#include "qsim/statevector.hpp"

namespace {

using namespace mpqls;
using c64 = qsim::c64;

// Pick `count` distinct qubits from [0, n), excluding `used` bits.
std::vector<std::uint32_t> pick_qubits(Xoshiro256& rng, std::uint32_t n, std::size_t count,
                                       std::uint64_t& used) {
  std::vector<std::uint32_t> out;
  while (out.size() < count) {
    const auto q = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (used & (std::uint64_t{1} << q)) continue;
    used |= std::uint64_t{1} << q;
    out.push_back(q);
  }
  return out;
}

// Random unitary: Gram-Schmidt on a complex Gaussian matrix.
linalg::Matrix<c64> random_unitary(Xoshiro256& rng, std::size_t dim) {
  linalg::Matrix<c64> m(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) m(i, j) = c64(rng.normal(), rng.normal());
  }
  for (std::size_t c = 0; c < dim; ++c) {
    for (std::size_t p = 0; p < c; ++p) {
      c64 overlap{};
      for (std::size_t r = 0; r < dim; ++r) overlap += std::conj(m(r, p)) * m(r, c);
      for (std::size_t r = 0; r < dim; ++r) m(r, c) -= overlap * m(r, p);
    }
    double nrm = 0.0;
    for (std::size_t r = 0; r < dim; ++r) nrm += std::norm(m(r, c));
    nrm = std::sqrt(nrm);
    for (std::size_t r = 0; r < dim; ++r) m(r, c) /= nrm;
  }
  return m;
}

// Gate soup hitting every compiled kernel, with random (negative)
// controls — the panel kernels share the executor's index enumeration,
// so control handling is what this must not get wrong.
qsim::Circuit random_circuit(Xoshiro256& rng, std::uint32_t n, std::size_t gates) {
  qsim::Circuit c(n);
  for (std::size_t i = 0; i < gates; ++i) {
    qsim::Gate g;
    g.adjoint = rng.uniform() < 0.3;
    std::uint64_t used = 0;
    switch (rng.uniform_index(5)) {
      case 0:
        g.kind = qsim::GateKind::kH;
        g.targets = pick_qubits(rng, n, 1, used);
        break;
      case 1:
        g.kind = qsim::GateKind::kRy;
        g.param = rng.uniform(-3.0, 3.0);
        g.targets = pick_qubits(rng, n, 1, used);
        break;
      case 2:
        g.kind = qsim::GateKind::kGlobalPhase;
        g.param = rng.uniform(-3.0, 3.0);
        break;
      case 3: {
        const std::size_t k = 1 + rng.uniform_index(std::min<std::uint32_t>(3, n));
        g.kind = qsim::GateKind::kUnitary;
        g.targets = pick_qubits(rng, n, k, used);
        g.matrix = std::make_shared<const linalg::Matrix<c64>>(
            random_unitary(rng, std::size_t{1} << k));
        break;
      }
      default: {
        const std::size_t k = 1 + rng.uniform_index(std::min<std::uint32_t>(2, n));
        g.kind = qsim::GateKind::kDiagonal;
        g.targets = pick_qubits(rng, n, k, used);
        std::vector<c64> d(std::size_t{1} << k);
        for (auto& v : d) v = std::exp(c64(0, rng.uniform(-3.0, 3.0)));
        g.diagonal = std::make_shared<const std::vector<c64>>(std::move(d));
        break;
      }
    }
    const std::uint64_t free_qubits =
        g.kind == qsim::GateKind::kGlobalPhase
            ? 0
            : n - static_cast<std::uint32_t>(g.targets.size());
    const std::size_t n_ctrl = rng.uniform_index(std::min<std::uint64_t>(3, free_qubits + 1));
    for (std::size_t k = 0; k < n_ctrl; ++k) {
      const auto q = pick_qubits(rng, n, 1, used)[0];
      if (rng.uniform() < 0.5) {
        g.controls.push_back(q);
      } else {
        g.neg_controls.push_back(q);
      }
    }
    c.push(std::move(g));
  }
  return c;
}

// A random normalized complex state of 2^n amplitudes.
std::vector<std::complex<double>> random_state(Xoshiro256& rng, std::uint32_t n) {
  std::vector<std::complex<double>> amps(std::size_t{1} << n);
  double nrm = 0.0;
  for (auto& a : amps) {
    a = {rng.normal(), rng.normal()};
    nrm += std::norm(a);
  }
  nrm = std::sqrt(nrm);
  for (auto& a : amps) a /= nrm;
  return amps;
}

// Run `circuit` compiled over `lanes` random states, once per lane via
// the scalar executor and once as a panel; return the worst per-lane
// per-amplitude deviation.
template <typename T>
double panel_vs_sequential(Xoshiro256& rng, const qsim::Circuit& circuit, std::uint32_t width,
                           std::size_t lanes) {
  const auto program = qsim::exec::compile<T>(circuit);

  std::vector<std::vector<std::complex<double>>> states;
  for (std::size_t l = 0; l < lanes; ++l) states.push_back(random_state(rng, width));

  qsim::exec::StatePanel<T> panel(width, lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    for (std::size_t i = 0; i < states[l].size(); ++i) panel.set_amp(i, l, states[l][i]);
  }
  qsim::exec::PanelExecutor<T>().run(program, panel);

  double worst = 0.0;
  const qsim::exec::Executor<T> executor;
  for (std::size_t l = 0; l < lanes; ++l) {
    auto sv = qsim::Statevector<T>::from_amplitudes(width, states[l]);
    executor.run(program, sv);
    for (std::size_t i = 0; i < sv.dim(); ++i) {
      const auto got = panel.amp(i, l);
      worst = std::max(worst, std::abs(got - std::complex<double>(sv[i].real(), sv[i].imag())));
    }
  }
  return worst;
}

TEST(PanelExec, MatchesSequentialExecutorDouble) {
  Xoshiro256 rng(71);
  for (int trial = 0; trial < 25; ++trial) {
    const auto n = static_cast<std::uint32_t>(1 + rng.uniform_index(6));
    const auto c = random_circuit(rng, n, 35);
    const std::size_t lanes = 1 + rng.uniform_index(9);
    EXPECT_LT(panel_vs_sequential<double>(rng, c, n, lanes), 1e-11)
        << "trial " << trial << " n=" << n << " lanes=" << lanes;
  }
}

TEST(PanelExec, MatchesSequentialExecutorFloat) {
  Xoshiro256 rng(72);
  for (int trial = 0; trial < 25; ++trial) {
    const auto n = static_cast<std::uint32_t>(1 + rng.uniform_index(6));
    const auto c = random_circuit(rng, n, 35);
    const std::size_t lanes = 1 + rng.uniform_index(9);
    EXPECT_LT(panel_vs_sequential<float>(rng, c, n, lanes), 1e-3)
        << "trial " << trial << " n=" << n << " lanes=" << lanes;
  }
}

TEST(PanelExec, RaggedLaneCounts) {
  // Lane counts that are not powers of two (the tail panel of a ragged
  // batch) must be exact too — the lane loop has no padding assumption.
  Xoshiro256 rng(73);
  const auto c = random_circuit(rng, 5, 40);
  for (const std::size_t lanes : {1u, 3u, 5u, 7u, 11u}) {
    EXPECT_LT(panel_vs_sequential<double>(rng, c, 5, lanes), 1e-11) << "lanes=" << lanes;
  }
}

TEST(PanelExec, ProgramNarrowerThanPanelRegister) {
  Xoshiro256 rng(74);
  const auto c = random_circuit(rng, 3, 25);
  EXPECT_LT(panel_vs_sequential<double>(rng, c, /*width=*/6, /*lanes=*/4), 1e-11);
}

TEST(PanelExec, LoadLaneRealEmbedsTheVector) {
  qsim::exec::StatePanel<double> panel(3, 3);
  const std::vector<double> v = {0.5, -0.5, 0.5, -0.5};  // length 4 < dim 8
  panel.load_lane_real(1, v);
  for (std::size_t i = 0; i < panel.dim(); ++i) {
    const auto a = panel.amp(i, 1);
    EXPECT_EQ(a.real(), i < v.size() ? v[i] : 0.0);
    EXPECT_EQ(a.imag(), 0.0);
  }
  // Other lanes stay |0…0>.
  EXPECT_EQ(panel.amp(0, 0).real(), 1.0);
  EXPECT_EQ(panel.amp(0, 2).real(), 1.0);
}

TEST(PanelExec, ReductionsMatchStatevector) {
  Xoshiro256 rng(75);
  const std::uint32_t n = 5;
  const std::size_t lanes = 6;
  std::vector<std::vector<std::complex<double>>> states;
  for (std::size_t l = 0; l < lanes; ++l) states.push_back(random_state(rng, n));
  // Scale lanes differently so per-lane norms are distinguishable.
  for (std::size_t l = 0; l < lanes; ++l) {
    for (auto& a : states[l]) a *= 1.0 + 0.25 * static_cast<double>(l);
  }

  qsim::exec::StatePanel<double> panel(n, lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    for (std::size_t i = 0; i < states[l].size(); ++i) panel.set_amp(i, l, states[l][i]);
  }

  const auto norms = panel.lane_norms();
  const std::vector<std::uint32_t> zeros = {1, 3};
  const auto p_zero = panel.probability_all_zero(zeros);
  for (std::size_t l = 0; l < lanes; ++l) {
    const auto sv = qsim::Statevector<double>::from_amplitudes(n, states[l]);
    EXPECT_NEAR(norms[l], sv.norm(), 1e-13) << "lane " << l;
    EXPECT_NEAR(p_zero[l], sv.probability_all_zero(zeros), 1e-13) << "lane " << l;
  }
}

TEST(PanelExec, PostselectMatchesScalarFlipPath) {
  // The scalar solve path X-flips the "must be one" qubit and then
  // postselects everything to zero; the panel projects on zeros+ones
  // directly. Same projector: probabilities and surviving amplitudes
  // must agree.
  Xoshiro256 rng(76);
  const std::uint32_t n = 5;
  const std::size_t lanes = 4;
  const std::vector<std::uint32_t> zeros = {2, 4};
  const std::uint32_t one_qubit = 3;

  std::vector<std::vector<std::complex<double>>> states;
  for (std::size_t l = 0; l < lanes; ++l) states.push_back(random_state(rng, n));

  qsim::exec::StatePanel<double> panel(n, lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    for (std::size_t i = 0; i < states[l].size(); ++i) panel.set_amp(i, l, states[l][i]);
  }
  const auto probs = panel.postselect(zeros, {one_qubit});

  const std::uint64_t one_bit = std::uint64_t{1} << one_qubit;
  for (std::size_t l = 0; l < lanes; ++l) {
    auto sv = qsim::Statevector<double>::from_amplitudes(n, states[l]);
    qsim::Circuit flip(n);
    flip.x(one_qubit);
    sv.apply(flip);
    auto all_zeros = zeros;
    all_zeros.push_back(one_qubit);
    const double p = sv.postselect_zero(all_zeros);
    EXPECT_NEAR(probs[l], p, 1e-13) << "lane " << l;
    for (std::size_t i = 0; i < sv.dim(); ++i) {
      if ((i & one_bit) != 0) continue;  // scalar survivors live at one_bit = 0 post-flip
      const auto got = panel.amp(i | one_bit, l);
      const auto want = std::complex<double>(sv[i].real(), sv[i].imag());
      EXPECT_NEAR(std::abs(got - want), 0.0, 1e-12) << "lane " << l << " index " << i;
    }
  }
}

}  // namespace
