// Distributed statevector execution vs single-node panel replay: the
// exchange plan's classification and scheduling (exact-diagonal demotion,
// X-conjugation elimination, naive vs scheduled round counts), and W-shard
// replay through LocalPeerGroup reproducing a one-lane StatePanel replay
// of the same compiled program — exactly, in double and float, including
// the QSVT-shaped stream whose closing H fuses into a dense op with two
// partition-qubit targets.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <exception>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "qsim/circuit.hpp"
#include "qsim/exec/compile.hpp"
#include "qsim/exec/dist/dist_executor.hpp"
#include "qsim/exec/dist/dist_state.hpp"
#include "qsim/exec/dist/exchange_plan.hpp"
#include "qsim/exec/dist/peer_channel.hpp"
#include "qsim/exec/panel.hpp"
#include "qsim/exec/panel_executor.hpp"

namespace {

using namespace mpqls;
using namespace mpqls::qsim::exec;
using c64 = qsim::c64;

// The build_qsvt_circuit shape (H on the top "realpart" qubit, d rounds of
// block-encoding + phase gadget, closing H + global phase) with a random
// dense stand-in for the block encoding: data {0,1}, BE ancilla 2, signal
// 3, realpart 4.
qsim::Circuit qsvt_shaped_circuit(Xoshiro256& rng, std::size_t d) {
  qsim::Circuit c(5);
  linalg::Matrix<c64> be(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) be(i, j) = c64(rng.normal(), rng.normal());
  }
  // Orthonormalize columns (Gram-Schmidt) so the stand-in is unitary.
  for (std::size_t col = 0; col < 8; ++col) {
    for (std::size_t p = 0; p < col; ++p) {
      c64 overlap{};
      for (std::size_t r = 0; r < 8; ++r) overlap += std::conj(be(r, p)) * be(r, col);
      for (std::size_t r = 0; r < 8; ++r) be(r, col) -= overlap * be(r, p);
    }
    double nrm = 0.0;
    for (std::size_t r = 0; r < 8; ++r) nrm += std::norm(be(r, col));
    nrm = std::sqrt(nrm);
    for (std::size_t r = 0; r < 8; ++r) be(r, col) /= nrm;
  }

  c.h(4);
  for (std::size_t k = 0; k < d; ++k) {
    c.unitary({0, 1, 2}, be);
    const double phi = 0.3 + 0.1 * static_cast<double>(k);
    qsim::Gate cpix;
    cpix.kind = qsim::GateKind::kX;
    cpix.targets = {3};
    cpix.neg_controls = {2};
    c.push(cpix);
    c.rz(3, 2.0 * phi);
    c.crz(4, 3, -4.0 * phi);
    c.push(cpix);
  }
  c.h(4);
  c.global_phase(-M_PI / 2.0);
  return c;
}

std::vector<std::complex<double>> random_state(Xoshiro256& rng, std::uint32_t n) {
  std::vector<std::complex<double>> amps(std::size_t{1} << n);
  double nrm = 0.0;
  for (auto& a : amps) {
    a = {rng.normal(), rng.normal()};
    nrm += std::norm(a);
  }
  nrm = std::sqrt(nrm);
  for (auto& a : amps) a /= nrm;
  return amps;
}

// Gate soup over every kernel kind with random controls (the same recipe
// the panel-exec tests use), so classification sees high/low targets and
// masks in every combination.
qsim::Circuit random_circuit(Xoshiro256& rng, std::uint32_t n, std::size_t gates) {
  qsim::Circuit c(n);
  for (std::size_t i = 0; i < gates; ++i) {
    qsim::Gate g;
    g.adjoint = rng.uniform() < 0.3;
    std::uint64_t used = 0;
    auto pick = [&](std::size_t count) {
      std::vector<std::uint32_t> out;
      while (out.size() < count) {
        const auto q = static_cast<std::uint32_t>(rng.uniform_index(n));
        if (used & (std::uint64_t{1} << q)) continue;
        used |= std::uint64_t{1} << q;
        out.push_back(q);
      }
      return out;
    };
    switch (rng.uniform_index(5)) {
      case 0:
        g.kind = qsim::GateKind::kH;
        g.targets = pick(1);
        break;
      case 1:
        g.kind = qsim::GateKind::kRz;
        g.param = rng.uniform(-3.0, 3.0);
        g.targets = pick(1);
        break;
      case 2:
        g.kind = qsim::GateKind::kGlobalPhase;
        g.param = rng.uniform(-3.0, 3.0);
        break;
      case 3: {
        const std::size_t k = 1 + rng.uniform_index(2);
        g.kind = qsim::GateKind::kDiagonal;
        g.targets = pick(k);
        std::vector<c64> d(std::size_t{1} << k);
        for (auto& v : d) v = std::exp(c64(0, rng.uniform(-3.0, 3.0)));
        g.diagonal = std::make_shared<const std::vector<c64>>(std::move(d));
        break;
      }
      default:
        g.kind = qsim::GateKind::kX;
        g.targets = pick(1);
        break;
    }
    if (g.kind != qsim::GateKind::kGlobalPhase) {
      const std::size_t n_ctrl = rng.uniform_index(3);
      for (std::size_t k = 0; k < n_ctrl && used != (std::uint64_t{1} << n) - 1; ++k) {
        const auto q = pick(1)[0];
        if (rng.uniform() < 0.5) {
          g.controls.push_back(q);
        } else {
          g.neg_controls.push_back(q);
        }
      }
    }
    c.push(std::move(g));
  }
  return c;
}

// Replay `ir` on W shards (threads over a LocalPeerGroup) and on a
// one-lane StatePanel, from the same initial state. With tol == 0 every
// global amplitude must match exactly — guaranteed whenever the plan's
// scheduling passes changed no op's kernel class (demoted_diagonal and
// conjugated_ops both zero; see exchange_plan.hpp). When a rewrite fires
// the values are equal but the multiply routes through a different kernel
// whose FMA contraction may differ in the last ulp, so those replays
// compare against a tight tolerance instead.
template <typename T>
void expect_dist_matches_panel(const FusedIr& ir, std::uint32_t world_log2,
                               const std::vector<std::complex<double>>& init, double tol = 0.0,
                               const dist::PlanOptions& popts = {}) {
  const std::uint32_t n = ir.num_qubits;
  const auto plan = dist::build_exchange_plan(ir, world_log2, popts);
  const std::uint32_t world = 1u << world_log2;

  StatePanel<T> panel(n, 1);
  for (std::size_t i = 0; i < init.size(); ++i) panel.set_amp(i, 0, init[i]);
  PanelExecutor<T>().run(specialize<T>(ir), panel);

  dist::LocalPeerGroup group(world);
  std::vector<dist::DistState<T>> shards;
  shards.reserve(world);
  for (std::uint32_t r = 0; r < world; ++r) {
    shards.emplace_back(n, world_log2, r);
    auto& st = shards.back();
    const std::uint64_t base = st.base_index();
    for (std::size_t i = 0; i < st.dim(); ++i) {
      st.re()[i] = static_cast<T>(init[base + i].real());
      st.im()[i] = static_cast<T>(init[base + i].imag());
    }
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(world);
  for (std::uint32_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      try {
        const auto rp = dist::specialize_rank<T>(plan, r);
        auto channel = group.channel(r);
        std::uint64_t seq = 0;
        dist::run_rank_program<T>(rp, shards[r], *channel, seq);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t r = 0; r < world; ++r) {
    if (errors[r]) std::rethrow_exception(errors[r]);
  }

  for (std::uint64_t g = 0; g < (std::uint64_t{1} << n); ++g) {
    const auto got = shards[g >> plan.local_qubits].amp_global(g);
    const auto want = panel.amp(g, 0);
    if (tol == 0.0) {
      EXPECT_EQ(got.real(), want.real()) << "amp " << g << " W=" << world;
      EXPECT_EQ(got.imag(), want.imag()) << "amp " << g << " W=" << world;
    } else {
      EXPECT_NEAR(std::abs(got - want), 0.0, tol) << "amp " << g << " W=" << world;
    }
  }
}

TEST(ExchangePlan, ClassifiesDiagonalsLocalAndCountsRounds) {
  qsim::Circuit c(4);
  c.h(3);                       // high target -> 1 exchange round
  c.rz(3, 0.7);                 // diagonal payload on high target -> demoted, local
  c.crz(3, 0, 0.3);             // high control, low target -> local
  c.diagonal_gate({1, 3}, {1.0, 1.0, 1.0, c64(0, 1)});  // diagonal high target -> local
  c.x(0);                       // purely local
  const auto ir = lower_and_fuse(c, {.fuse = false});
  const auto plan = dist::build_exchange_plan(ir, /*world_log2=*/1);
  EXPECT_EQ(plan.stats.scheduled_rounds, 1u);
  // Naive pays one round per high-qubit reference: h, rz, crz, diagonal.
  EXPECT_EQ(plan.stats.naive_rounds, 4u);
  EXPECT_EQ(plan.stats.demoted_diagonal, 1u);
  std::size_t exchanges = 0;
  for (const auto& p : plan.ops) exchanges += p.exchange ? 1 : 0;
  EXPECT_EQ(exchanges, 1u);
}

TEST(ExchangePlan, XConjugationEliminatesGadgetExchanges) {
  // The unfused QSVT stream: every gadget is CPiX · Rz · CRz · CPiX with
  // the signal qubit on the partition side (W=4 puts qubits 3 and 4
  // high). The pass must cancel both CPiX exchanges of every gadget,
  // leaving only the two H(realpart) rounds.
  Xoshiro256 rng(17);
  const std::size_t d = 6;
  const auto c = qsvt_shaped_circuit(rng, d);
  const auto ir = lower_and_fuse(c, {.fuse = false});

  const auto naive = dist::build_exchange_plan(ir, 2, {.schedule = false});
  const auto sched = dist::build_exchange_plan(ir, 2);
  EXPECT_EQ(sched.stats.scheduled_rounds, 2u);
  EXPECT_EQ(sched.stats.eliminated_exchanges, 2 * d);
  EXPECT_GE(sched.stats.naive_rounds, 5 * d);
  EXPECT_EQ(naive.stats.naive_rounds, sched.stats.naive_rounds);
  // The naive schedule really pays per gadget (2 CPiX exchanges each).
  EXPECT_GE(naive.stats.scheduled_rounds, 2 * d + 2);
  EXPECT_LT(sched.stats.scheduled_rounds, naive.stats.scheduled_rounds);
}

TEST(ExchangePlan, DefaultFusedQsvtIsExchangeLight) {
  // Default fusion folds each gadget into an exactly-diagonal window
  // (local via payload slicing); only the opening H and the closing
  // window (H fused into a dense op with two partition targets) exchange.
  Xoshiro256 rng(18);
  const auto c = qsvt_shaped_circuit(rng, 6);
  const auto ir = lower_and_fuse(c);
  const auto plan = dist::build_exchange_plan(ir, 2);
  EXPECT_LE(plan.stats.scheduled_rounds, 3u);
  EXPECT_LT(plan.stats.scheduled_rounds, plan.stats.naive_rounds);
}

TEST(DistExec, QsvtShapedReplayMatchesPanelExactly) {
  Xoshiro256 rng(21);
  const auto c = qsvt_shaped_circuit(rng, 4);
  const auto init = random_state(rng, 5);
  {
    // The production path: default fusion emits the gadgets as kDiagonal
    // windows, no scheduling rewrite fires, replay is bit-identical.
    const auto ir = lower_and_fuse(c);
    EXPECT_EQ(dist::build_exchange_plan(ir, 2).stats.demoted_diagonal, 0u);
    expect_dist_matches_panel<double>(ir, 1, init);
    expect_dist_matches_panel<double>(ir, 2, init);
    expect_dist_matches_panel<float>(ir, 2, init);
  }
  {
    // Unfused at W=4 the X-conjugation pass rewrites the gadget interiors
    // into diagonal-kernel ops: equal values, possibly differing FMA
    // contraction — compare to a tight tolerance. W=2 leaves the gadgets
    // local and untouched, so it stays exact.
    const auto ir = lower_and_fuse(c, {.fuse = false});
    expect_dist_matches_panel<double>(ir, 1, init);
    expect_dist_matches_panel<double>(ir, 2, init, 1e-13);
    expect_dist_matches_panel<float>(ir, 2, init, 1e-5);
  }
}

TEST(DistExec, NaiveScheduleReplaysCorrectlyToo) {
  // The round-count comparison is only honest if the naive plan is
  // executable: same parity requirement without the scheduling passes.
  Xoshiro256 rng(22);
  const auto c = qsvt_shaped_circuit(rng, 3);
  const auto ir = lower_and_fuse(c, {.fuse = false});
  const auto init = random_state(rng, 5);
  expect_dist_matches_panel<double>(ir, 2, init, 0.0, {.schedule = false});
}

TEST(DistExec, RandomCircuitsMatchPanelExactly) {
  Xoshiro256 rng(23);
  for (int trial = 0; trial < 12; ++trial) {
    const auto n = static_cast<std::uint32_t>(3 + rng.uniform_index(4));  // 3..6
    const auto circ = random_circuit(rng, n, 30);
    const auto ir = lower_and_fuse(circ);
    const auto init = random_state(rng, n);
    // Exact whenever the scheduling passes changed no kernel class;
    // otherwise equal values through a different kernel — ulp tolerance.
    auto tol_for = [&](std::uint32_t wl) {
      const auto stats = dist::build_exchange_plan(ir, wl).stats;
      return (stats.demoted_diagonal == 0 && stats.conjugated_ops == 0) ? 0.0 : 1e-13;
    };
    expect_dist_matches_panel<double>(ir, 1, init, tol_for(1));
    if (n >= 4) expect_dist_matches_panel<double>(ir, 2, init, tol_for(2));
  }
}

TEST(DistExec, HalfTierReplayMatchesPanel) {
  Xoshiro256 rng(24);
  const auto c = qsvt_shaped_circuit(rng, 3);
  const auto ir = lower_and_fuse(c);
  const auto init = random_state(rng, 5);
  expect_dist_matches_panel<f16>(ir, 2, init);
}

TEST(DistExec, MetricsCountRoundsAndBytes) {
  Xoshiro256 rng(25);
  const auto c = qsvt_shaped_circuit(rng, 4);
  const auto ir = lower_and_fuse(c, {.fuse = false});
  const auto plan = dist::build_exchange_plan(ir, 2);
  const auto init = random_state(rng, 5);

  dist::LocalPeerGroup group(4);
  std::vector<dist::DistState<double>> shards;
  for (std::uint32_t r = 0; r < 4; ++r) {
    shards.emplace_back(5, 2, r);
    const std::uint64_t base = shards[r].base_index();
    for (std::size_t i = 0; i < shards[r].dim(); ++i) {
      shards[r].re()[i] = init[base + i].real();
      shards[r].im()[i] = init[base + i].imag();
    }
  }
  std::vector<dist::DistRunMetrics> metrics(4);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      const auto rp = dist::specialize_rank<double>(plan, r);
      auto channel = group.channel(r);
      std::uint64_t seq = 0;
      dist::run_rank_program<double>(rp, shards[r], *channel, seq, &metrics[r]);
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(metrics[r].exchange_rounds, plan.stats.scheduled_rounds) << "rank " << r;
    // Each pairwise round of an h=1 exchange ships both planes of the
    // 2^3-amplitude shard once.
    EXPECT_GE(metrics[r].bytes_moved, plan.stats.scheduled_rounds * 2 * 8 * sizeof(double));
  }
}

TEST(DistState, ReductionsMatchPanel) {
  Xoshiro256 rng(26);
  const std::uint32_t n = 5;
  const auto init = random_state(rng, n);
  StatePanel<double> panel(n, 1);
  for (std::size_t i = 0; i < init.size(); ++i) panel.set_amp(i, 0, init[i]);

  std::vector<dist::DistState<double>> shards;
  for (std::uint32_t r = 0; r < 4; ++r) {
    shards.emplace_back(n, 2, r);
    const std::uint64_t base = shards[r].base_index();
    for (std::size_t i = 0; i < shards[r].dim(); ++i) {
      shards[r].re()[i] = init[base + i].real();
      shards[r].im()[i] = init[base + i].imag();
    }
  }

  const std::vector<std::uint32_t> zeros = {2, 3};
  const std::vector<std::uint32_t> ones = {4};
  const auto p_panel = panel.probability_match(zeros, ones)[0];
  double p_dist = 0.0;
  for (const auto& s : shards) p_dist += s.probability_match_partial(zeros, ones);
  EXPECT_NEAR(p_dist, p_panel, 1e-15);

  const auto norms = panel.lane_norms();
  double nsq = 0.0;
  for (const auto& s : shards) nsq += s.norm_squared_partial();
  EXPECT_NEAR(std::sqrt(nsq), norms[0], 1e-13);

  // postselect_scale with the global probability mirrors panel.postselect.
  panel.postselect(zeros, ones);
  for (auto& s : shards) s.postselect_scale(zeros, ones, p_dist);
  for (std::uint64_t g = 0; g < (std::uint64_t{1} << n); ++g) {
    const auto got = shards[g >> 3].amp_global(g);
    const auto want = panel.amp(g, 0);
    EXPECT_NEAR(std::abs(got - want), 0.0, 1e-15) << "amp " << g;
  }
}

TEST(LocalPeerGroup, AllreduceSumIsRankInvariant) {
  dist::LocalPeerGroup group(4);
  std::vector<std::vector<double>> data(4);
  for (std::uint32_t r = 0; r < 4; ++r) {
    data[r] = {0.1 * (r + 1), -0.25 * (r + 1), 1e-9 * (r + 1)};
  }
  std::vector<double> expect_sum(3, 0.0);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      auto channel = group.channel(r);
      std::uint64_t seq = 0;
      dist::allreduce_sum(*channel, r, 2, seq, data[r].data(), data[r].size());
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t r = 1; r < 4; ++r) {
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(data[r][i], data[0][i]) << "rank " << r << " slot " << i;
    }
  }
  (void)expect_sum;
}

}  // namespace
