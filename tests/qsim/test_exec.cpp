// Fusion-correctness tests for the execution engine: randomized circuits
// (controls, negative controls, adjoints, diagonal and dense multi-qubit
// payloads, global phases, swaps) executed through compile+Executor must
// agree with gate-by-gate interpretation within precision tolerance, in
// both float and double.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "qsim/circuit.hpp"
#include "qsim/exec/compile.hpp"
#include "qsim/exec/executor.hpp"
#include "qsim/statevector.hpp"

namespace {

using namespace mpqls;
using c64 = qsim::c64;

// Random unitary: Gram-Schmidt on a complex Gaussian matrix.
linalg::Matrix<c64> random_unitary(Xoshiro256& rng, std::size_t dim) {
  linalg::Matrix<c64> m(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) m(i, j) = c64(rng.normal(), rng.normal());
  }
  for (std::size_t c = 0; c < dim; ++c) {
    for (std::size_t p = 0; p < c; ++p) {
      c64 overlap{};
      for (std::size_t r = 0; r < dim; ++r) overlap += std::conj(m(r, p)) * m(r, c);
      for (std::size_t r = 0; r < dim; ++r) m(r, c) -= overlap * m(r, p);
    }
    double nrm = 0.0;
    for (std::size_t r = 0; r < dim; ++r) nrm += std::norm(m(r, c));
    nrm = std::sqrt(nrm);
    for (std::size_t r = 0; r < dim; ++r) m(r, c) /= nrm;
  }
  return m;
}

// Pick `count` distinct qubits from [0, n), excluding `used` bits.
std::vector<std::uint32_t> pick_qubits(Xoshiro256& rng, std::uint32_t n, std::size_t count,
                                       std::uint64_t& used) {
  std::vector<std::uint32_t> out;
  while (out.size() < count) {
    const auto q = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (used & (std::uint64_t{1} << q)) continue;
    used |= std::uint64_t{1} << q;
    out.push_back(q);
  }
  return out;
}

// A random gate soup hitting every lowering path: named 1q gates,
// rotations, phases, global phases, swaps, dense unitaries, diagonals —
// each with random adjoint flags and random positive/negative controls.
qsim::Circuit random_circuit(Xoshiro256& rng, std::uint32_t n, std::size_t gates) {
  qsim::Circuit c(n);
  const qsim::GateKind named[] = {qsim::GateKind::kX,  qsim::GateKind::kY, qsim::GateKind::kZ,
                                  qsim::GateKind::kH,  qsim::GateKind::kS, qsim::GateKind::kSdg,
                                  qsim::GateKind::kT,  qsim::GateKind::kTdg};
  const qsim::GateKind rot[] = {qsim::GateKind::kRx, qsim::GateKind::kRy, qsim::GateKind::kRz,
                                qsim::GateKind::kPhase};
  for (std::size_t i = 0; i < gates; ++i) {
    qsim::Gate g;
    g.adjoint = rng.uniform() < 0.3;
    std::uint64_t used = 0;
    const auto kind_pick = rng.uniform_index(6);
    switch (kind_pick) {
      case 0:
        g.kind = named[rng.uniform_index(8)];
        g.targets = pick_qubits(rng, n, 1, used);
        break;
      case 1:
        g.kind = rot[rng.uniform_index(4)];
        g.param = rng.uniform(-3.0, 3.0);
        g.targets = pick_qubits(rng, n, 1, used);
        break;
      case 2:
        g.kind = qsim::GateKind::kGlobalPhase;
        g.param = rng.uniform(-3.0, 3.0);
        break;
      case 3: {
        if (n < 2) continue;
        g.kind = qsim::GateKind::kSwap;
        g.targets = pick_qubits(rng, n, 2, used);
        break;
      }
      case 4: {
        const std::size_t k = 1 + rng.uniform_index(std::min<std::uint32_t>(3, n));
        g.kind = qsim::GateKind::kUnitary;
        g.targets = pick_qubits(rng, n, k, used);
        g.matrix = std::make_shared<const linalg::Matrix<c64>>(
            random_unitary(rng, std::size_t{1} << k));
        break;
      }
      default: {
        const std::size_t k = 1 + rng.uniform_index(std::min<std::uint32_t>(2, n));
        g.kind = qsim::GateKind::kDiagonal;
        g.targets = pick_qubits(rng, n, k, used);
        std::vector<c64> d(std::size_t{1} << k);
        for (auto& v : d) v = std::exp(c64(0, rng.uniform(-3.0, 3.0)));
        g.diagonal = std::make_shared<const std::vector<c64>>(std::move(d));
        break;
      }
    }
    // Random controls on whatever qubits remain. Global phases stay
    // uncontrolled here: the interpreter ignores controls on kGlobalPhase
    // (Circuit::controlled rewrites them to phase gates before they reach
    // it), so a raw controlled global phase has no interpreter reference.
    // The compiler's lowering of that shape is covered by
    // ControlledGlobalPhaseLowering below.
    const std::uint64_t free_qubits =
        g.kind == qsim::GateKind::kGlobalPhase
            ? 0
            : n - static_cast<std::uint32_t>(g.targets.size());
    const std::size_t n_ctrl = rng.uniform_index(std::min<std::uint64_t>(3, free_qubits + 1));
    for (std::size_t k = 0; k < n_ctrl; ++k) {
      const auto q = pick_qubits(rng, n, 1, used)[0];
      if (rng.uniform() < 0.5) {
        g.controls.push_back(q);
      } else {
        g.neg_controls.push_back(q);
      }
    }
    c.push(std::move(g));
  }
  return c;
}

// Spread amplitude over every basis state so controlled branches are all
// exercised, then compare compiled vs interpreted execution.
template <typename T>
double compiled_vs_interpreted(const qsim::Circuit& c, std::uint32_t width,
                               const qsim::exec::CompileOptions& options) {
  qsim::Statevector<T> interpreted(width);
  qsim::Circuit spread(width);
  for (std::uint32_t q = 0; q < width; ++q) spread.h(q).rz(q, 0.37 * (q + 1));
  interpreted.apply(spread);
  qsim::Statevector<T> compiled = interpreted;

  interpreted.apply(c);
  qsim::exec::Executor<T>().run(qsim::exec::compile<T>(c, options), compiled);

  double worst = 0.0;
  for (std::size_t i = 0; i < interpreted.dim(); ++i) {
    worst = std::max(worst, std::abs(std::complex<double>(
                                compiled[i].real() - interpreted[i].real(),
                                compiled[i].imag() - interpreted[i].imag())));
  }
  return worst;
}

TEST(Exec, RandomizedFusionEquivalenceDouble) {
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    const auto n = static_cast<std::uint32_t>(1 + rng.uniform_index(6));
    const auto c = random_circuit(rng, n, 40);
    EXPECT_LT(compiled_vs_interpreted<double>(c, n, {}), 1e-11)
        << "trial " << trial << " n=" << n;
  }
}

TEST(Exec, RandomizedFusionEquivalenceFloat) {
  Xoshiro256 rng(43);
  for (int trial = 0; trial < 60; ++trial) {
    const auto n = static_cast<std::uint32_t>(1 + rng.uniform_index(6));
    const auto c = random_circuit(rng, n, 40);
    EXPECT_LT(compiled_vs_interpreted<float>(c, n, {}), 1e-3)
        << "trial " << trial << " n=" << n;
  }
}

TEST(Exec, RandomizedEquivalenceWithoutFusion) {
  // fuse=false exercises the specialized kernels alone (one op per gate).
  Xoshiro256 rng(44);
  qsim::exec::CompileOptions options;
  options.fuse = false;
  for (int trial = 0; trial < 30; ++trial) {
    const auto n = static_cast<std::uint32_t>(1 + rng.uniform_index(6));
    const auto c = random_circuit(rng, n, 30);
    EXPECT_LT(compiled_vs_interpreted<double>(c, n, options), 1e-11) << "trial " << trial;
  }
}

TEST(Exec, WiderFusionWindows) {
  Xoshiro256 rng(45);
  qsim::exec::CompileOptions options;
  options.max_fuse_qubits = 5;
  for (int trial = 0; trial < 20; ++trial) {
    const auto c = random_circuit(rng, 6, 40);
    EXPECT_LT(compiled_vs_interpreted<double>(c, 6, options), 1e-11) << "trial " << trial;
  }
}

TEST(Exec, ProgramNarrowerThanRegister) {
  Xoshiro256 rng(46);
  const auto c = random_circuit(rng, 3, 25);
  EXPECT_LT(compiled_vs_interpreted<double>(c, /*width=*/6, {}), 1e-11);
}

TEST(Exec, SingleQubitRunFusesToOneOp) {
  qsim::Circuit c(2);
  c.h(0).t(0).rz(0, 0.3).s(0).x(0);
  const auto ir = qsim::exec::lower_and_fuse(c);
  ASSERT_EQ(ir.ops.size(), 1u);
  EXPECT_EQ(ir.stats.source_gates, 5u);
  EXPECT_EQ(ir.stats.fused_gates, 4u);
  EXPECT_EQ(ir.stats.depth, 1u);
}

TEST(Exec, FusionRespectsWindowLimit) {
  Xoshiro256 rng(47);
  qsim::exec::CompileOptions options;
  options.max_fuse_qubits = 2;
  const auto c = random_circuit(rng, 6, 60);
  const auto ir = qsim::exec::lower_and_fuse(c, options);
  EXPECT_LE(ir.stats.max_fused_span, 2u);
  EXPECT_EQ(ir.stats.source_gates, c.size());
  EXPECT_EQ(ir.stats.ops, ir.ops.size());
}

TEST(Exec, CompileStampsTelemetry) {
  qsim::Circuit c(3);
  for (int i = 0; i < 10; ++i) c.h(0).cx(0, 1).rz(2, 0.1 * i);
  const auto program = qsim::exec::compile<double>(c);
  EXPECT_EQ(program.stats.source_gates, 30u);
  EXPECT_GT(program.stats.ops, 0u);
  EXPECT_LT(program.stats.ops, 30u);  // fusion must actually fuse here
  EXPECT_GE(program.stats.compile_seconds, 0.0);
  EXPECT_GT(program.stats.depth, 0u);
}

TEST(Exec, ControlledGlobalPhaseLowering) {
  // e^{i theta} on the subspace where q0=1, q2=0. The interpreter cannot
  // run this raw gate (it ignores controls on kGlobalPhase), so compare
  // the compiled execution against the explicit phase-gate equivalent.
  qsim::Gate g;
  g.kind = qsim::GateKind::kGlobalPhase;
  g.param = 0.7;
  g.controls = {0};
  g.neg_controls = {2};
  qsim::Circuit c(3);
  c.push(g);

  qsim::Gate ref;
  ref.kind = qsim::GateKind::kPhase;
  ref.param = 0.7;
  ref.targets = {0};
  ref.neg_controls = {2};
  qsim::Circuit c_ref(3);
  c_ref.push(ref);

  qsim::Circuit spread(3);
  for (std::uint32_t q = 0; q < 3; ++q) spread.h(q);
  qsim::Statevector<double> interpreted(3);
  interpreted.apply(spread);
  qsim::Statevector<double> compiled = interpreted;
  interpreted.apply(c_ref);
  qsim::exec::Executor<double>().run(qsim::exec::compile<double>(c), compiled);
  for (std::size_t i = 0; i < interpreted.dim(); ++i) {
    EXPECT_NEAR(compiled[i].real(), interpreted[i].real(), 1e-14);
    EXPECT_NEAR(compiled[i].imag(), interpreted[i].imag(), 1e-14);
  }
}

TEST(Exec, PostCompileMeasurementMatchesInterpreter) {
  // End-to-end: compiled execution followed by the (OpenMP-reduced)
  // measurement queries agrees with the interpreter path.
  Xoshiro256 rng(48);
  const auto c = random_circuit(rng, 5, 30);
  qsim::Statevector<double> a(5), b(5);
  a.apply(c);
  qsim::exec::Executor<double>().run(qsim::exec::compile<double>(c), b);
  EXPECT_NEAR(a.norm(), b.norm(), 1e-12);
  EXPECT_NEAR(a.probability(2, 1), b.probability(2, 1), 1e-12);
  EXPECT_NEAR(a.probability_all_zero({0, 3}), b.probability_all_zero({0, 3}), 1e-12);
  const auto pa = a.probabilities();
  const auto pb = b.probabilities();
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_NEAR(pa[i], pb[i], 1e-12);
}

}  // namespace
