#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "linalg/blas.hpp"
#include "qsim/circuit.hpp"
#include "qsim/statevector.hpp"

namespace mpqls::qsim {
namespace {

using linalg::Matrix;

double unitary_diff(const Matrix<c64>& A, const Matrix<c64>& B) {
  return linalg::max_abs_diff(A, B);
}

TEST(Gates, PauliXFlips) {
  Statevector<double> sv(1);
  sv.apply(Circuit(1).x(0));
  EXPECT_NEAR(std::abs(sv[1]), 1.0, 1e-15);
  EXPECT_NEAR(std::abs(sv[0]), 0.0, 1e-15);
}

TEST(Gates, HadamardCreatesUniform) {
  Statevector<double> sv(1);
  sv.apply(Circuit(1).h(0));
  EXPECT_NEAR(sv[0].real(), 1.0 / std::sqrt(2.0), 1e-15);
  EXPECT_NEAR(sv[1].real(), 1.0 / std::sqrt(2.0), 1e-15);
}

TEST(Gates, NamedGatesMatchTheirMatrices) {
  // Every named 1q gate applied via the simulator must equal its dense
  // matrix applied by hand.
  const double theta = 0.7345;
  std::vector<Gate> gates;
  for (auto kind : {GateKind::kX, GateKind::kY, GateKind::kZ, GateKind::kH, GateKind::kS,
                    GateKind::kSdg, GateKind::kT, GateKind::kTdg, GateKind::kRx,
                    GateKind::kRy, GateKind::kRz, GateKind::kPhase}) {
    Gate g;
    g.kind = kind;
    g.targets = {0};
    g.param = theta;
    gates.push_back(g);
  }
  for (const auto& g : gates) {
    Circuit c(1);
    c.push(g);
    const auto U = circuit_unitary(c);
    const auto M = gate_matrix_1q(g.kind, g.param, false);
    EXPECT_LT(unitary_diff(U, M), 1e-15) << static_cast<int>(g.kind);
  }
}

TEST(Gates, SGateSquaredIsZ) {
  Circuit c(1);
  c.s(0).s(0);
  EXPECT_LT(unitary_diff(circuit_unitary(c), gate_matrix_1q(GateKind::kZ, 0, false)), 1e-15);
}

TEST(Gates, TGateFourthPowerIsZ) {
  Circuit c(1);
  c.t(0).t(0).t(0).t(0);
  EXPECT_LT(unitary_diff(circuit_unitary(c), gate_matrix_1q(GateKind::kZ, 0, false)), 1e-14);
}

TEST(Gates, CnotTruthTable) {
  Circuit c(2);
  c.cx(0, 1);
  const auto U = circuit_unitary(c);
  // |00> -> |00>, |01> -> |11>, |10> -> |10>, |11> -> |01>
  // (qubit 0 = control = LSB of the index).
  Matrix<c64> expected(4, 4);
  expected(0, 0) = 1;
  expected(3, 1) = 1;
  expected(2, 2) = 1;
  expected(1, 3) = 1;
  EXPECT_LT(unitary_diff(U, expected), 1e-15);
}

TEST(Gates, NegativeControlFiresOnZero) {
  Gate g;
  g.kind = GateKind::kX;
  g.targets = {1};
  g.neg_controls = {0};
  Circuit c(2);
  c.push(g);
  const auto U = circuit_unitary(c);
  // |00> -> |10>, |10> -> |00>, |01> -> |01>, |11> -> |11>.
  EXPECT_NEAR(std::abs(U(2, 0)), 1.0, 1e-15);
  EXPECT_NEAR(std::abs(U(0, 2)), 1.0, 1e-15);
  EXPECT_NEAR(std::abs(U(1, 1)), 1.0, 1e-15);
  EXPECT_NEAR(std::abs(U(3, 3)), 1.0, 1e-15);
}

TEST(Gates, SwapExchangesQubits) {
  Statevector<double> sv(2);
  sv.apply(Circuit(2).x(0));   // |01> (qubit0 = 1)
  sv.apply(Circuit(2).swap(0, 1));
  EXPECT_NEAR(std::abs(sv[2]), 1.0, 1e-15);  // now qubit1 = 1
}

TEST(Gates, ToffoliOnlyFiresWhenBothControlsSet) {
  Circuit c(3);
  c.ccx(0, 1, 2);
  const auto U = circuit_unitary(c);
  for (std::size_t j = 0; j < 8; ++j) {
    const std::size_t expected_out = ((j & 3) == 3) ? (j ^ 4) : j;
    EXPECT_NEAR(std::abs(U(expected_out, j)), 1.0, 1e-15) << j;
  }
}

TEST(Gates, GlobalPhaseMultipliesAll) {
  Statevector<double> sv(2);
  sv.apply(Circuit(2).h(0).global_phase(M_PI / 3));
  const c64 expected = std::exp(c64(0, M_PI / 3)) / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sv[0] - expected), 0.0, 1e-15);
}

TEST(Gates, DiagonalGateAppliesEntries) {
  Circuit c(2);
  c.h(0).h(1);
  c.diagonal_gate({0, 1}, {1.0, -1.0, c64(0, 1), c64(0, -1)});
  Statevector<double> sv(2);
  sv.apply(c);
  EXPECT_NEAR(std::abs(sv[1] - c64(-0.5, 0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(sv[2] - c64(0, 0.5)), 0.0, 1e-15);
}

TEST(Gates, DenseUnitaryMatchesDirectApplication) {
  // Random 2-qubit unitary from a known circuit, applied as a payload.
  Circuit gen(2);
  gen.h(0).ry(1, 0.3).cx(0, 1).rz(0, 1.1);
  const auto U = circuit_unitary(gen);

  Circuit c(3);
  c.h(2);  // spectator entangling check
  c.unitary({0, 1}, U);
  Statevector<double> sv1(3);
  sv1.apply(c);

  Circuit ref(3);
  ref.h(2);
  ref.append(gen);
  Statevector<double> sv2(3);
  sv2.apply(ref);

  for (std::size_t i = 0; i < sv1.dim(); ++i) {
    EXPECT_NEAR(std::abs(sv1[i] - sv2[i]), 0.0, 1e-14) << i;
  }
}

TEST(Gates, DenseUnitaryOnNonAdjacentTargets) {
  // Payload on qubits {2, 0}: targets[0]=2 is the least significant payload
  // bit. Verify against manual permutation.
  Circuit gen(2);
  gen.h(0).cx(0, 1);
  const auto U = circuit_unitary(gen);
  Circuit c(3);
  c.unitary({2, 0}, U);
  const auto full = circuit_unitary(c);
  // Basis |q2 q1 q0> = |001> (idx 1): payload index has bit0 = q2 = 0,
  // bit1 = q0 = 1 -> payload input |10>.
  // Check unitarity and one explicit column:
  Statevector<double> sv(3);
  sv[0] = 0;
  sv[1] = 1;  // q0 = 1
  sv.apply(c);
  // Payload input |q1 q0> = |10>; H on payload-q0 gives (|10> + |11>)/sqrt2;
  // CX(q0 -> q1) maps |11> to |01>. Back through bit0 -> qubit2 and
  // bit1 -> qubit0: |10> -> index 1, |01> -> index 4.
  EXPECT_NEAR(std::abs(sv[1]), 1.0 / std::sqrt(2.0), 1e-14);
  EXPECT_NEAR(std::abs(sv[4]), 1.0 / std::sqrt(2.0), 1e-14);
  (void)full;
}

TEST(Gates, EveryCircuitIsUnitary) {
  Circuit c(3);
  c.h(0).cx(0, 1).ry(2, 0.8).ccx(0, 1, 2).t(1).swap(0, 2).rz(1, -0.4);
  const auto U = circuit_unitary(c);
  const auto UhU = linalg::gemm(linalg::transpose(U), U);
  EXPECT_LT(unitary_diff(UhU, Matrix<c64>::identity(8)), 1e-14);
}

}  // namespace
}  // namespace mpqls::qsim
