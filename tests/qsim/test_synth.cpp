#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "qsim/statevector.hpp"
#include "qsim/synth/qft.hpp"
#include "qsim/synth/ucr.hpp"

namespace mpqls::qsim {
namespace {

using linalg::Matrix;

Matrix<c64> expected_ucry(const std::vector<double>& angles, std::size_t k) {
  // Block-diagonal over control value x: RY(angles[x]) on the target.
  // Register layout: controls = qubits 0..k-1, target = qubit k.
  const std::size_t dim = std::size_t{1} << (k + 1);
  Matrix<c64> U(dim, dim);
  for (std::size_t x = 0; x < (std::size_t{1} << k); ++x) {
    const double c = std::cos(angles[x] / 2.0), s = std::sin(angles[x] / 2.0);
    const std::size_t i0 = x;                        // target 0
    const std::size_t i1 = x | (std::size_t{1} << k);  // target 1
    U(i0, i0) = c;
    U(i0, i1) = -s;
    U(i1, i0) = s;
    U(i1, i1) = c;
  }
  return U;
}

TEST(Ucr, SingleControlMatchesBlockDiagonal) {
  std::vector<double> angles{0.3, -1.1};
  Circuit c(2);
  append_ucry(c, {0}, 1, angles);
  EXPECT_LT(linalg::max_abs_diff(circuit_unitary(c), expected_ucry(angles, 1)), 1e-14);
}

TEST(Ucr, ThreeControlsMatchBlockDiagonal) {
  Xoshiro256 rng(42);
  std::vector<double> angles(8);
  for (auto& a : angles) a = rng.uniform(-M_PI, M_PI);
  Circuit c(4);
  append_ucry(c, {0, 1, 2}, 3, angles);
  EXPECT_LT(linalg::max_abs_diff(circuit_unitary(c), expected_ucry(angles, 3)), 1e-13);
}

TEST(Ucr, ZeroControlsIsPlainRotation) {
  Circuit c(1);
  append_ucry(c, {}, 0, {0.9});
  EXPECT_LT(linalg::max_abs_diff(circuit_unitary(c), gate_matrix_1q(GateKind::kRy, 0.9, false)),
            1e-15);
}

TEST(Ucr, GateCountIsTwoPowK) {
  Circuit c(4);
  append_ucry(c, {0, 1, 2}, 3, std::vector<double>(8, 0.1));
  const auto counts = c.counts();
  EXPECT_EQ(counts.by_kind.at(GateKind::kRy), 8u);
  EXPECT_EQ(counts.by_kind.at(GateKind::kX), 8u);  // CNOTs
}

TEST(Ucr, UcrzMatchesDiagonal) {
  Xoshiro256 rng(43);
  std::vector<double> angles(4);
  for (auto& a : angles) a = rng.uniform(-M_PI, M_PI);
  Circuit c(3);
  append_ucrz(c, {0, 1}, 2, angles);
  const auto U = circuit_unitary(c);
  // Expected: diag over x: RZ(angles[x]) = diag(e^{-i a/2}, e^{+i a/2}).
  for (std::size_t x = 0; x < 4; ++x) {
    EXPECT_NEAR(std::abs(U(x, x) - std::exp(c64(0, -angles[x] / 2))), 0.0, 1e-13);
    EXPECT_NEAR(std::abs(U(x | 4, x | 4) - std::exp(c64(0, angles[x] / 2))), 0.0, 1e-13);
  }
}

TEST(Qft, MatchesDftMatrix) {
  const std::size_t m = 3;
  Circuit c(m);
  append_qft(c, {0, 1, 2});
  const auto U = circuit_unitary(c);
  const std::size_t dim = 8;
  const double inv = 1.0 / std::sqrt(static_cast<double>(dim));
  for (std::size_t j = 0; j < dim; ++j) {
    for (std::size_t k = 0; k < dim; ++k) {
      const c64 expected = inv * std::exp(c64(0, 2.0 * M_PI * static_cast<double>(j * k) / dim));
      EXPECT_NEAR(std::abs(U(k, j) - expected), 0.0, 1e-13) << j << "," << k;
    }
  }
}

TEST(Qft, InverseUndoesQft) {
  Circuit c(4);
  append_qft(c, {0, 1, 2, 3});
  append_iqft(c, {0, 1, 2, 3});
  EXPECT_LT(linalg::max_abs_diff(circuit_unitary(c), Matrix<c64>::identity(16)), 1e-13);
}

TEST(Qft, PeriodicStateGivesSharpPeak) {
  // QFT of the uniform superposition is |0>.
  Circuit c(3);
  c.h(0).h(1).h(2);
  append_qft(c, {0, 1, 2});
  Statevector<double> sv(3);
  sv.apply(c);
  EXPECT_NEAR(std::abs(sv[0]), 1.0, 1e-13);
}

}  // namespace
}  // namespace mpqls::qsim
