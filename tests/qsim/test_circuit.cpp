#include "qsim/circuit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "qsim/statevector.hpp"

namespace mpqls::qsim {
namespace {

using linalg::Matrix;

TEST(Circuit, DaggerInvertsCircuit) {
  Circuit c(3);
  c.h(0).t(1).cx(0, 1).ry(2, 0.9).s(2).ccx(0, 1, 2).rz(0, -1.3).global_phase(0.4);
  Circuit id(3);
  id.append(c).append(c.dagger());
  const auto U = circuit_unitary(id);
  EXPECT_LT(linalg::max_abs_diff(U, Matrix<c64>::identity(8)), 1e-14);
}

TEST(Circuit, DaggerOfDaggerIsOriginal) {
  Circuit c(2);
  c.t(0).sdg(1).rx(0, 0.3);
  const auto U1 = circuit_unitary(c);
  const auto U2 = circuit_unitary(c.dagger().dagger());
  EXPECT_LT(linalg::max_abs_diff(U1, U2), 1e-15);
}

TEST(Circuit, ControlledSubcircuitEqualsControlledUnitary) {
  Circuit sub(1);
  sub.h(0).t(0);
  const auto Usub = circuit_unitary(sub);

  Circuit c(2);
  c.append(sub.controlled({1}), {0, 1});
  const auto U = circuit_unitary(c);

  // Expected: |x0>|0>c -> unchanged; |x1>|1>c -> (U x)|1>.
  Matrix<c64> expected = Matrix<c64>::identity(4);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      expected(2 + i, 2 + j) = Usub(i, j);
      if (i == j) {
        expected(2 + i, 2 + j) = Usub(i, j);
      } else {
        expected(2 + i, 2 + j) = Usub(i, j);
      }
    }
  }
  expected(2, 2) = Usub(0, 0);
  expected(3, 3) = Usub(1, 1);
  expected(2, 3) = Usub(0, 1);
  expected(3, 2) = Usub(1, 0);
  EXPECT_LT(linalg::max_abs_diff(U, expected), 1e-15);
}

TEST(Circuit, ControlledGlobalPhaseBecomesPhaseGate) {
  Circuit sub(1);
  sub.global_phase(0.77);
  Circuit c(2);
  c.append(sub.controlled({1}), {0, 1});
  const auto U = circuit_unitary(c);
  Matrix<c64> expected = Matrix<c64>::identity(4);
  expected(2, 2) = std::exp(c64(0, 0.77));
  expected(3, 3) = std::exp(c64(0, 0.77));
  EXPECT_LT(linalg::max_abs_diff(U, expected), 1e-15);
}

TEST(Circuit, NegControlledSubcircuitFiresOnZero) {
  Circuit sub(1);
  sub.x(0);
  Circuit c(2);
  c.append(sub.controlled({}, {1}), {0, 1});
  const auto U = circuit_unitary(c);
  // Fires when qubit1 = 0: |00> <-> |01>.
  EXPECT_NEAR(std::abs(U(1, 0)), 1.0, 1e-15);
  EXPECT_NEAR(std::abs(U(2, 2)), 1.0, 1e-15);
}

TEST(Circuit, AppendWithQubitMap) {
  Circuit sub(2);
  sub.cx(0, 1);
  Circuit c(3);
  c.append(sub, {2, 0});  // control on qubit 2, target qubit 0
  const auto U = circuit_unitary(c);
  Statevector<double> sv(3);
  sv[0] = 0;
  sv[4] = 1;  // qubit2 = 1
  sv.apply(c);
  EXPECT_NEAR(std::abs(sv[5]), 1.0, 1e-15);  // qubit0 flipped
}

TEST(Circuit, RejectsOutOfRangeQubit) {
  Circuit c(2);
  EXPECT_THROW(c.x(2), contract_violation);
  EXPECT_THROW(c.cx(0, 5), contract_violation);
}

TEST(Circuit, RejectsDuplicateQubits) {
  Circuit c(2);
  EXPECT_THROW(c.cx(1, 1), contract_violation);
}

TEST(Circuit, CountsTrackGates) {
  Circuit c(3);
  c.h(0).cx(0, 1).ccx(0, 1, 2).mcx({0, 1}, 2).rz(1, 0.5).t(2);
  const auto counts = c.counts();
  EXPECT_EQ(counts.total, 6u);
  EXPECT_EQ(counts.by_kind.at(GateKind::kH), 1u);
  EXPECT_EQ(counts.by_kind.at(GateKind::kX), 3u);  // cx + 2 mcx
  EXPECT_EQ(counts.rotations, 1u);
  EXPECT_EQ(counts.mcx_by_controls.at(1), 1u);
  EXPECT_EQ(counts.mcx_by_controls.at(2), 2u);
}

TEST(Circuit, DepthAccountsForParallelism) {
  Circuit c(4);
  c.h(0).h(1).h(2).h(3);  // one layer
  EXPECT_EQ(c.depth(), 1u);
  c.cx(0, 1).cx(2, 3);  // second layer
  EXPECT_EQ(c.depth(), 2u);
  c.cx(1, 2);  // third layer
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, UnitaryPayloadDimensionChecked) {
  Circuit c(2);
  EXPECT_THROW(c.unitary({0, 1}, Matrix<c64>::identity(2)), contract_violation);
}

}  // namespace
}  // namespace mpqls::qsim
