#include "qsim/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "qsim/circuit.hpp"
#include "qsim/statevector.hpp"

namespace mpqls::qsim {
namespace {

TEST(Noise, ZeroNoiseMatchesCleanApplication) {
  Circuit c(2);
  c.h(0).cx(0, 1).ry(1, 0.3);
  Statevector<double> clean(2), noisy(2);
  clean.apply(c);
  Xoshiro256 rng(1);
  apply_noisy(noisy, c, NoiseModel{}, rng);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(clean[i] - noisy[i]), 0.0, 1e-15);
  }
}

TEST(Noise, AmplitudeDampingDecaysExcitedState) {
  // |1> through k identity-ish gates with damping gamma: survival
  // probability (1-gamma)^k on average.
  const double gamma = 0.1;
  const int k = 10, trials = 4000;
  Xoshiro256 rng(2);
  double p1_sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    Statevector<double> sv(1);
    Circuit prep(1);
    prep.x(0);
    sv.apply(prep);
    Circuit idle(1);
    for (int g = 0; g < k; ++g) idle.rz(0, 0.0);
    NoiseModel model;
    model.damping_per_gate = gamma;
    apply_noisy(sv, idle, model, rng);
    p1_sum += sv.probability(0, 1);
  }
  const double expected = std::pow(1.0 - gamma, k);
  EXPECT_NEAR(p1_sum / trials, expected, 0.03);
}

TEST(Noise, DepolarizingShrinksBlochVector) {
  // <Z> of |0> after k noisy identity gates: contracts by (1 - 4p/3)^k on
  // average under single-qubit depolarizing with Pauli probability p.
  const double p = 0.05;
  const int k = 8, trials = 6000;
  Xoshiro256 rng(3);
  double z_sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    Statevector<double> sv(1);
    Circuit idle(1);
    for (int g = 0; g < k; ++g) idle.rz(0, 0.0);
    NoiseModel model;
    model.depolarizing_per_gate = p;
    apply_noisy(sv, idle, model, rng);
    z_sum += sv.probability(0, 0) - sv.probability(0, 1);
  }
  const double expected = std::pow(1.0 - 4.0 * p / 3.0, k);
  EXPECT_NEAR(z_sum / trials, expected, 0.04);
}

TEST(Noise, StateStaysNormalized) {
  Circuit c(3);
  for (int r = 0; r < 20; ++r) c.h(r % 3).cx(r % 3, (r + 1) % 3);
  NoiseModel model;
  model.depolarizing_per_gate = 0.02;
  model.damping_per_gate = 0.02;
  Xoshiro256 rng(4);
  Statevector<double> sv(3);
  apply_noisy(sv, c, model, rng);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

}  // namespace
}  // namespace mpqls::qsim
