#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "qsim/circuit.hpp"
#include "qsim/statevector.hpp"

namespace mpqls::qsim {
namespace {

TEST(Measurement, ProbabilitiesSumToOne) {
  Circuit c(3);
  c.h(0).cx(0, 1).ry(2, 1.234);
  Statevector<double> sv(3);
  sv.apply(c);
  const auto p = sv.probabilities();
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-14);
}

TEST(Measurement, BellStateMarginals) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  Statevector<double> sv(2);
  sv.apply(c);
  EXPECT_NEAR(sv.probability(0, 0), 0.5, 1e-14);
  EXPECT_NEAR(sv.probability(0, 1), 0.5, 1e-14);
  EXPECT_NEAR(sv.probability(1, 1), 0.5, 1e-14);
}

TEST(Measurement, PostselectZeroProjects) {
  Circuit c(2);
  c.h(0).cx(0, 1);  // (|00> + |11>)/sqrt2
  Statevector<double> sv(2);
  sv.apply(c);
  const double p = sv.postselect_zero({1});
  EXPECT_NEAR(p, 0.5, 1e-14);
  EXPECT_NEAR(std::abs(sv[0]), 1.0, 1e-14);
  EXPECT_NEAR(std::abs(sv[3]), 0.0, 1e-14);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-14);
}

TEST(Measurement, PostselectZeroProbabilityThrows) {
  Statevector<double> sv(1);
  sv.apply(Circuit(1).x(0));
  EXPECT_THROW(sv.postselect_zero({0}), contract_violation);
}

TEST(Measurement, ProbabilityAllZeroMatchesManual) {
  Circuit c(3);
  c.h(0).h(1).h(2);
  Statevector<double> sv(3);
  sv.apply(c);
  EXPECT_NEAR(sv.probability_all_zero({0, 1, 2}), 1.0 / 8.0, 1e-14);
  EXPECT_NEAR(sv.probability_all_zero({1}), 0.5, 1e-14);
}

TEST(Measurement, SamplingMatchesDistribution) {
  Circuit c(2);
  c.ry(0, 2.0 * std::asin(std::sqrt(0.3)));  // P(q0=1) = 0.3
  Statevector<double> sv(2);
  sv.apply(c);
  Xoshiro256 rng(77);
  const int shots = 100000;
  int ones = 0;
  for (int s = 0; s < shots; ++s) ones += (sv.sample(rng) & 1);
  EXPECT_NEAR(static_cast<double>(ones) / shots, 0.3, 0.01);
}

TEST(Measurement, MultiShotSamplingMatchesSequentialDraws) {
  // The CDF-based multi-shot path must draw the same outcomes as repeated
  // single-shot sampling from an identical generator state.
  Circuit c(4);
  c.h(0).cx(0, 1).ry(2, 0.9).ry(3, 2.1).cx(2, 3);
  Statevector<double> sv(4);
  sv.apply(c);
  Xoshiro256 rng_multi(123), rng_single(123);
  const auto multi = sv.sample(rng_multi, 500);
  ASSERT_EQ(multi.size(), 500u);
  for (std::size_t s = 0; s < multi.size(); ++s) {
    EXPECT_EQ(multi[s], sv.sample(rng_single)) << "shot " << s;
  }
}

TEST(Measurement, MultiShotSamplingMatchesDistribution) {
  Circuit c(2);
  c.ry(0, 2.0 * std::asin(std::sqrt(0.3)));  // P(q0=1) = 0.3
  Statevector<double> sv(2);
  sv.apply(c);
  Xoshiro256 rng(78);
  const auto outcomes = sv.sample(rng, 100000);
  int ones = 0;
  for (auto o : outcomes) ones += static_cast<int>(o & 1);
  EXPECT_NEAR(static_cast<double>(ones) / static_cast<double>(outcomes.size()), 0.3, 0.01);
}

TEST(Measurement, InnerProductOrthogonalStates) {
  Statevector<double> a(1), b(1);
  b.apply(Circuit(1).x(0));
  EXPECT_NEAR(std::abs(a.inner(b)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(a.inner(a)), 1.0, 1e-15);
}

TEST(Measurement, FloatBackendAgreesWithDouble) {
  Circuit c(4);
  c.h(0).cx(0, 1).ry(2, 0.7).ccx(0, 2, 3).rz(1, -0.2).swap(1, 3);
  Statevector<double> svd(4);
  Statevector<float> svf(4);
  svd.apply(c);
  svf.apply(c);
  for (std::size_t i = 0; i < svd.dim(); ++i) {
    EXPECT_NEAR(svd[i].real(), static_cast<double>(svf[i].real()), 1e-6);
    EXPECT_NEAR(svd[i].imag(), static_cast<double>(svf[i].imag()), 1e-6);
  }
}

TEST(Measurement, FloatBackendAccumulatesMoreError) {
  // A long random-ish circuit: float error should exceed double error but
  // stay around 1e-5 — this is the "hardware low precision" axis.
  Circuit c(3);
  for (int rep = 0; rep < 200; ++rep) {
    c.ry(rep % 3, 0.1 + 0.01 * rep).cx(rep % 3, (rep + 1) % 3).rz((rep + 2) % 3, -0.05);
  }
  Statevector<double> svd(3);
  Statevector<float> svf(3);
  svd.apply(c);
  svf.apply(c);
  double max_err = 0.0;
  for (std::size_t i = 0; i < svd.dim(); ++i) {
    max_err = std::max(max_err, std::abs(std::complex<double>(svd[i].real(), svd[i].imag()) -
                                         std::complex<double>(svf[i].real(), svf[i].imag())));
  }
  EXPECT_GT(max_err, 1e-9);  // visibly above double roundoff
  EXPECT_LT(max_err, 1e-3);  // but still a valid low-precision simulation
}

}  // namespace
}  // namespace mpqls::qsim
