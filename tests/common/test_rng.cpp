#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mpqls {
namespace {

TEST(Xoshiro256, DeterministicForFixedSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    mn = std::fmin(mn, u);
    mx = std::fmax(mx, u);
    sum += u;
  }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 5e-3);
}

TEST(Xoshiro256, UniformIndexUnbiased) {
  Xoshiro256 rng(11);
  std::vector<int> hist(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++hist[rng.uniform_index(7)];
  for (int c : hist) EXPECT_NEAR(static_cast<double>(c), n / 7.0, 5.0 * std::sqrt(n / 7.0));
}

TEST(Xoshiro256, NormalMomentsMatch) {
  Xoshiro256 rng(13);
  const int n = 400000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 1e-2);
  EXPECT_NEAR(sumsq / n, 1.0, 2e-2);
}

TEST(Xoshiro256, ReseedResetsStream) {
  Xoshiro256 rng(5);
  const auto x0 = rng();
  rng.reseed(5);
  EXPECT_EQ(rng(), x0);
}

}  // namespace
}  // namespace mpqls
