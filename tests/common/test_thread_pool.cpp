// ThreadPool contract tests: destruction drains every queued task (the
// service relies on this — accepted jobs must finish through a shutdown),
// a throwing task lands its exception in the submitter's future without
// taking the worker down, and concurrent submitters racing the destructor
// never lose an already-enqueued task. The whole file is meaningful under
// TSan/ASan: the races it provokes are exactly the ones the sanitizer leg
// exists to catch.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mpqls {
namespace {

using namespace std::chrono_literals;

TEST(ThreadPool, RunsSubmittedWorkAndReturnsValues) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructionRunsEveryQueuedTask) {
  // One worker, many queued tasks, destroy while the queue is deep: every
  // task must still execute (shutdown drains, it does not discard).
  std::atomic<int> ran{0};
  std::promise<void> release;
  auto gate = release.get_future().share();
  {
    ThreadPool pool(1);
    pool.submit([gate] { gate.wait(); });
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    release.set_value();  // unblock, then the destructor joins
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, TaskExceptionLandsInTheFutureNotTheWorker) {
  ThreadPool pool(1);
  auto boom = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The worker that ran the throwing task is still alive and serving.
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, ConcurrentSubmittersLoseNothingAcrossShutdown) {
  // Several submitter threads race each other (and then the destructor).
  // Every submit that returned must eventually run: count executions and
  // require them to match the number of successful submits exactly.
  std::atomic<int> ran{0};
  std::atomic<int> submitted{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 128; ++i) {
          pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
          submitted.fetch_add(1, std::memory_order_relaxed);
          if (i % 32 == 0) std::this_thread::sleep_for(1ms);
        }
      });
    }
    for (auto& s : submitters) s.join();
    // Destructor runs here with the queue likely still non-empty.
  }
  EXPECT_EQ(ran.load(), submitted.load());
  EXPECT_EQ(submitted.load(), 4 * 128);
}

}  // namespace
}  // namespace mpqls
