// Unit tests for the request-tracing primitives (common/trace.hpp):
// trace-id minting/parsing, the lock-free span buffer's publish protocol
// (including overflow accounting and reader/writer races), the ScopedSpan
// RAII guard, and the K-worst flight recorder.
#include "common/trace.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace mpqls::trace {
namespace {

TEST(TraceId, HexRoundTripsThroughParse) {
  const TraceId id = mint_trace_id();
  EXPECT_FALSE(id.zero());
  const std::string hex = id.hex();
  EXPECT_EQ(hex.size(), 32u);
  TraceId parsed;
  ASSERT_TRUE(TraceId::parse(hex, parsed));
  EXPECT_EQ(parsed, id);
}

TEST(TraceId, MintedIdsAreUnique) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(mint_trace_id().hex());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(TraceId, ParseRejectsMalformedInput) {
  TraceId out{1, 1};
  EXPECT_FALSE(TraceId::parse("", out));
  EXPECT_TRUE(out.zero());  // rejection resets the output
  EXPECT_FALSE(TraceId::parse("abc", out));
  EXPECT_FALSE(TraceId::parse(std::string(31, 'a'), out));
  EXPECT_FALSE(TraceId::parse(std::string(33, 'a'), out));
  EXPECT_FALSE(TraceId::parse("g" + std::string(31, 'a'), out));
  EXPECT_FALSE(TraceId::parse(std::string(16, 'a') + " " + std::string(15, 'a'), out));
}

TEST(TraceId, ParseAcceptsLeadingZeros) {
  TraceId out;
  ASSERT_TRUE(TraceId::parse("0000000000000000000000000000000a", out));
  EXPECT_EQ(out.hi, 0u);
  EXPECT_EQ(out.lo, 0xAu);
}

TEST(Trace, SpansPublishWithParentageAndAttrs) {
  Trace trace(mint_trace_id());
  const auto root = trace.begin_span("run");
  ASSERT_NE(root, 0u);
  const auto child = trace.begin_span("prepare", root);
  trace.end_span(child, "cache=hit");
  trace.end_span(root);

  const auto spans = trace.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "run");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_FALSE(spans[0].running);
  EXPECT_EQ(spans[1].name, "prepare");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].attrs, "cache=hit");
}

TEST(Trace, RunningSpanReportsLiveDuration) {
  Trace trace(mint_trace_id());
  const auto id = trace.begin_span("run");
  const auto spans = trace.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].running);
  trace.end_span(id);
  EXPECT_FALSE(trace.snapshot()[0].running);
}

TEST(Trace, OverflowCountsDroppedInsteadOfRecording) {
  Trace trace(mint_trace_id(), /*capacity=*/2);
  EXPECT_NE(trace.begin_span("a"), 0u);
  EXPECT_NE(trace.begin_span("b"), 0u);
  EXPECT_EQ(trace.begin_span("c"), 0u);
  EXPECT_EQ(trace.begin_span("d"), 0u);
  EXPECT_EQ(trace.dropped(), 2u);
  trace.end_span(0, "ignored=1");  // dropped-span end is a no-op
  EXPECT_EQ(trace.snapshot().size(), 2u);
}

TEST(Trace, ConcurrentWritersAndReadersStayConsistent) {
  Trace trace(mint_trace_id(), /*capacity=*/4096);
  constexpr int kWriters = 4;
  constexpr int kSpansPerWriter = 512;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&trace, w] {
      for (int i = 0; i < kSpansPerWriter; ++i) {
        const auto id = trace.begin_span("w" + std::to_string(w));
        trace.end_span(id, "i=" + std::to_string(i));
      }
    });
  }
  // A racing reader: every snapshot must be internally consistent (no
  // torn names/attrs — TSan/ASan would flag them) whatever the writers
  // are doing.
  threads.emplace_back([&trace] {
    for (int i = 0; i < 100; ++i) {
      for (const auto& span : trace.snapshot()) {
        ASSERT_FALSE(span.name.empty());
        ASSERT_NE(span.id, 0u);
      }
    }
  });
  for (auto& t : threads) t.join();

  const auto spans = trace.snapshot();
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kWriters * kSpansPerWriter));
  EXPECT_EQ(trace.dropped(), 0u);
  for (const auto& span : spans) EXPECT_FALSE(span.running);
}

TEST(ScopedSpan, RecordsAttrsOnScopeExit) {
  auto trace = make_trace();
  {
    ScopedSpan span(trace, "replay");
    span.attr("tier", "half");
    span.attr("lanes", std::uint64_t{8});
  }
  const auto spans = trace->snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].attrs, "tier=half,lanes=8");
}

TEST(ScopedSpan, NullContextIsInert) {
  ScopedSpan span(nullptr, "nothing");
  EXPECT_FALSE(static_cast<bool>(span));
  span.attr("k", "v");  // must not crash
  span.finish();
  ScopedSpan defaulted;
  EXPECT_FALSE(static_cast<bool>(defaulted));
}

TEST(ScopedSpan, FinishIsIdempotent) {
  auto trace = make_trace();
  ScopedSpan span(trace, "once");
  span.finish();
  span.finish();  // second finish (and the destructor) must not re-end
  EXPECT_EQ(trace->snapshot().size(), 1u);
}

TEST(ScopedSpan, MacroCompilesAndRecords) {
  auto trace = make_trace();
  {
    MPQLS_TRACE_SPAN(span, trace, "macro_span");
    span.attr("k", "v");
  }
  ASSERT_EQ(trace->snapshot().size(), 1u);
  EXPECT_EQ(trace->snapshot()[0].name, "macro_span");
}

TEST(FlightRecorder, KeepsKWorstByTotalLatency) {
  FlightRecorder recorder(/*capacity=*/3);
  for (const double total : {0.5, 2.0, 0.1, 3.0, 1.0}) {
    FlightRecord rec;
    rec.job_id = "job-" + std::to_string(total);
    rec.total_seconds = total;
    recorder.record(std::move(rec));
  }
  const auto worst = recorder.snapshot();
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_DOUBLE_EQ(worst[0].total_seconds, 3.0);
  EXPECT_DOUBLE_EQ(worst[1].total_seconds, 2.0);
  EXPECT_DOUBLE_EQ(worst[2].total_seconds, 1.0);
}

TEST(FlightRecorder, ZeroCapacityDisablesRecording) {
  FlightRecorder recorder(0);
  FlightRecord rec;
  rec.total_seconds = 1.0;
  recorder.record(std::move(rec));
  EXPECT_TRUE(recorder.snapshot().empty());
}

}  // namespace
}  // namespace mpqls::trace
