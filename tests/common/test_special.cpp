#include "common/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpqls {
namespace {

TEST(LogBinomial, SmallValuesExact) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial(10, 5)), 252.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(20, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial(20, 20)), 1.0, 1e-12);
}

TEST(LogBinomial, LargeValuesFinite) {
  const double lb = log_binomial(2'000'000, 1'000'000);
  EXPECT_TRUE(std::isfinite(lb));
  // C(2m, m) ~ 4^m / sqrt(pi m): check against the Stirling estimate.
  const double m = 1'000'000.0;
  EXPECT_NEAR(lb, 2.0 * m * std::log(2.0) - 0.5 * std::log(M_PI * m), 1e-3);
}

TEST(IncompleteBeta, Endpoints) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.9}) EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-14);
}

TEST(IncompleteBeta, SymmetryIdentity) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.2, 0.4, 0.6, 0.8}) {
    EXPECT_NEAR(incomplete_beta(3.5, 2.25, x), 1.0 - incomplete_beta(2.25, 3.5, 1.0 - x), 1e-13);
  }
}

TEST(IncompleteBeta, KnownValue) {
  // I_{1/2}(2,2) = integral ratio = 0.5 by symmetry.
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-14);
}

double direct_binomial_tail(int n, int k) {
  // Exact tail by direct summation (only viable for small n).
  long double total = 0.0L;
  for (int i = k; i <= n; ++i) {
    long double c = 1.0L;
    for (int j = 0; j < i; ++j) c = c * (n - j) / (j + 1);
    total += c;
  }
  return static_cast<double>(total * std::pow(0.5L, n));
}

TEST(BinomialTailHalf, MatchesDirectSummation) {
  for (int n : {4, 10, 17, 30}) {
    for (int k = 0; k <= n; k += 3) {
      EXPECT_NEAR(binomial_tail_half(n, k), direct_binomial_tail(n, k), 1e-12)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialTailHalf, EdgeCases) {
  EXPECT_DOUBLE_EQ(binomial_tail_half(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail_half(10, -3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail_half(10, 11), 0.0);
  EXPECT_NEAR(binomial_tail_half(1, 1), 0.5, 1e-15);
}

TEST(BinomialTailHalf, LargeNStable) {
  // For large n the tail at k = n/2 + c*sqrt(n)/2 approaches the normal
  // tail Phi(-c). Check c = 2: Phi(-2) ~ 0.02275.
  const std::uint64_t n = 1'000'000;
  const std::int64_t k = static_cast<std::int64_t>(n / 2 + std::llround(2.0 * 0.5 * std::sqrt(n)));
  EXPECT_NEAR(binomial_tail_half(n, k), 0.02275, 5e-4);
}

TEST(BinomialTailHalf, MonotoneInK) {
  double prev = 1.0;
  for (int k = 0; k <= 50; ++k) {
    const double t = binomial_tail_half(50, k);
    EXPECT_LE(t, prev + 1e-15);
    prev = t;
  }
}

}  // namespace
}  // namespace mpqls
