#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/contracts.hpp"

namespace mpqls {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"eps_l", "iters"});
  t.add_row({"1e-2", "5"});
  t.add_row({"1e-4", "3"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("eps_l"), std::string::npos);
  EXPECT_NE(s.find("1e-4"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(TextTable, RejectsRaggedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), contract_violation);
}

TEST(Fmt, Scientific) {
  EXPECT_EQ(fmt_sci(1.2345e-5, 2), "1.23e-05");
  EXPECT_EQ(fmt_sci(0.0, 1), "0.0e+00");
}

TEST(Fmt, Fixed) { EXPECT_EQ(fmt_fix(3.14159, 2), "3.14"); }

TEST(Fmt, IntegerThousands) {
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(999), "999");
  EXPECT_EQ(fmt_int(1000), "1,000");
  EXPECT_EQ(fmt_int(1234567), "1,234,567");
}

}  // namespace
}  // namespace mpqls
