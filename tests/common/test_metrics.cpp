// Unit tests for the Prometheus exposition writer (common/metrics.hpp):
// the canonical `le` bound formatting (the satellite fix — exponent
// renderings like "1e-05" must be stable and identical at every emit
// site), histogram bucket/cumulative semantics, and the one-preamble-
// per-family contract across stage-labelled series.
#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace mpqls {
namespace {

TEST(FormatLe, CanonicalRenderings) {
  // Shortest-round-trip to_chars: sub-1 bounds keep their exponent form,
  // integral bounds drop the fraction, +Inf uses the exposition spelling.
  EXPECT_EQ(format_le(1e-5), "1e-05");
  EXPECT_EQ(format_le(3e-5), "3e-05");
  EXPECT_EQ(format_le(1e-4), "1e-04");  // shortest form wins over "0.0001"
  EXPECT_EQ(format_le(1e-3), "0.001");
  EXPECT_EQ(format_le(0.03), "0.03");
  EXPECT_EQ(format_le(0.1), "0.1");
  EXPECT_EQ(format_le(1.0), "1");
  EXPECT_EQ(format_le(3.0), "3");
  EXPECT_EQ(format_le(30.0), "30");
  EXPECT_EQ(format_le(std::numeric_limits<double>::infinity()), "+Inf");
}

TEST(FormatLe, EveryHistogramBoundIsUniqueAndStable) {
  // Two bounds rendering to the same string would silently merge buckets.
  std::string last;
  for (const double bound : Histogram::kBounds) {
    const std::string rendered = format_le(bound);
    EXPECT_NE(rendered, last);
    EXPECT_EQ(rendered, format_le(bound));  // deterministic
    last = rendered;
  }
}

TEST(Histogram, ObservationsLandInTheRightBucket) {
  Histogram h;
  h.observe(0.0);      // below the first bound -> bucket 0 (le 1e-5)
  h.observe(1e-5);     // exactly on a bound is inclusive
  h.observe(2e-5);     // bucket 1 (le 3e-5)
  h.observe(0.5);      // le 1.0
  h.observe(100.0);    // above every bound -> +Inf overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);  // kBounds[10] == 1.0
  EXPECT_EQ(h.bucket_count(Histogram::kBounds.size()), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 100.50003, 1e-9);
}

TEST(MetricsWriter, HistogramRendersCumulativeBucketsSumAndCount) {
  Histogram h;
  h.observe(2e-5);   // le 3e-5 and every later bucket
  h.observe(0.5);    // le 1.0 onward
  h.observe(100.0);  // +Inf only

  MetricsWriter m;
  m.histogram("mpqls_latency_seconds", "Per-stage latency.", h, {{"stage", "queue"}});
  const std::string& text = m.str();

  EXPECT_NE(text.find("# HELP mpqls_latency_seconds Per-stage latency.\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mpqls_latency_seconds histogram\n"), std::string::npos);
  // Cumulative: the first bucket is empty, 3e-5 holds 1, 1.0 holds 2,
  // +Inf holds all 3 and equals _count.
  EXPECT_NE(text.find("mpqls_latency_seconds_bucket{stage=\"queue\",le=\"1e-05\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("mpqls_latency_seconds_bucket{stage=\"queue\",le=\"3e-05\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mpqls_latency_seconds_bucket{stage=\"queue\",le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("mpqls_latency_seconds_bucket{stage=\"queue\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("mpqls_latency_seconds_count{stage=\"queue\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("mpqls_latency_seconds_sum{stage=\"queue\"} 100.50002\n"),
            std::string::npos);
}

TEST(MetricsWriter, StageSeriesOfOneFamilyShareOnePreamble) {
  Histogram a, b;
  a.observe(0.5);
  b.observe(0.5);

  MetricsWriter m;
  m.histogram("mpqls_latency_seconds", "Per-stage latency.", a, {{"stage", "queue"}});
  m.histogram("mpqls_latency_seconds", "Per-stage latency.", b, {{"stage", "solve"}});
  const std::string& text = m.str();

  // Exactly one HELP and one TYPE line despite two labelled series —
  // Prometheus rejects duplicated metadata within one exposition.
  std::size_t help_count = 0;
  for (std::size_t pos = 0;
       (pos = text.find("# HELP mpqls_latency_seconds", pos)) != std::string::npos; ++pos) {
    ++help_count;
  }
  EXPECT_EQ(help_count, 1u);
  EXPECT_NE(text.find("{stage=\"queue\",le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(text.find("{stage=\"solve\",le=\"+Inf\"}"), std::string::npos);
}

TEST(MetricsWriter, EmptyHistogramStillRendersEveryBucket) {
  Histogram h;
  MetricsWriter m;
  m.histogram("empty_hist", "Nothing observed.", h);
  const std::string& text = m.str();
  // One line per bound, plus +Inf, _sum and _count — scrapers expect the
  // full shape even before the first observation.
  EXPECT_NE(text.find("empty_hist_bucket{le=\"+Inf\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("empty_hist_sum 0\n"), std::string::npos);
  EXPECT_NE(text.find("empty_hist_count 0\n"), std::string::npos);
  for (const double bound : Histogram::kBounds) {
    EXPECT_NE(text.find("empty_hist_bucket{le=\"" + format_le(bound) + "\"} 0\n"),
              std::string::npos)
        << "missing bucket for le=" << format_le(bound);
  }
}

}  // namespace
}  // namespace mpqls
