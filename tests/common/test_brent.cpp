#include "common/brent.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

#include <cmath>

namespace mpqls {
namespace {

TEST(BrentMinimize, Quadratic) {
  const auto r = brent_minimize([](double x) { return (x - 1.25) * (x - 1.25) + 3.0; }, -10, 10);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.25, 1e-9);
  EXPECT_NEAR(r.fx, 3.0, 1e-12);
}

TEST(BrentMinimize, AsymmetricNonSmooth) {
  const auto r = brent_minimize([](double x) { return std::fabs(x - 0.3) + 0.1 * x * x; }, -5, 5);
  EXPECT_NEAR(r.x, 0.3, 1e-6);
}

TEST(BrentMinimize, BoundaryMinimum) {
  // Monotone decreasing on the interval: minimum at the right edge.
  const auto r = brent_minimize([](double x) { return -x; }, 0.0, 2.0);
  EXPECT_NEAR(r.x, 2.0, 1e-6);
}

TEST(BrentMinimize, CosineWell) {
  const auto r = brent_minimize([](double x) { return std::cos(x); }, 2.0, 5.0);
  EXPECT_NEAR(r.x, M_PI, 1e-8);
  EXPECT_NEAR(r.fx, -1.0, 1e-12);
}

TEST(BrentRoot, Linear) {
  const auto r = brent_root([](double x) { return 2.0 * x - 3.0; }, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.5, 1e-12);
}

TEST(BrentRoot, TranscendentalKnownRoot) {
  const auto r = brent_root([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-10);
}

TEST(BrentRoot, SteepFunction) {
  const auto r = brent_root([](double x) { return std::exp(x) - 1e6; }, 0.0, 20.0);
  EXPECT_NEAR(r.x, std::log(1e6), 1e-9);
}

TEST(BrentRoot, RequiresBracketing) {
  EXPECT_THROW(brent_root([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               contract_violation);
}

}  // namespace
}  // namespace mpqls
