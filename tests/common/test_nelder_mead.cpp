#include "common/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpqls {
namespace {

TEST(NelderMead, Quadratic) {
  auto f = [](const std::vector<double>& x) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      s += (i + 1.0) * d * d;
    }
    return s;
  };
  const auto r = nelder_mead_minimize(f, std::vector<double>(4, 5.0));
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(r.x[i], static_cast<double>(i), 1e-4);
}

TEST(NelderMead, Rosenbrock) {
  auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.max_evaluations = 50000;
  const auto r = nelder_mead_minimize(f, {-1.2, 1.0}, opts);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, PeriodicCost) {
  // Cost shaped like a variational-circuit landscape.
  auto f = [](const std::vector<double>& x) {
    double s = 2.0;
    for (double v : x) s -= std::cos(v - 0.3);
    return s;
  };
  const auto r = nelder_mead_minimize(f, {2.0, -2.0});
  EXPECT_LT(r.fx, 1e-6);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  int evals = 0;
  auto f = [&evals](const std::vector<double>& x) {
    ++evals;
    return x[0] * x[0];
  };
  NelderMeadOptions opts;
  opts.max_evaluations = 50;
  const auto r = nelder_mead_minimize(f, {100.0}, opts);
  EXPECT_LE(evals, 60);  // small slack for the final shrink step
  EXPECT_LE(r.evaluations, 60);
}

}  // namespace
}  // namespace mpqls
