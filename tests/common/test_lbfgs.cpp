#include "common/lbfgs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mpqls {
namespace {

TEST(Lbfgs, ConvexQuadratic) {
  // f(x) = sum_i i * (x_i - i)^2
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    double v = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double w = static_cast<double>(i + 1);
      const double d = x[i] - w;
      v += w * d * d;
      g[i] = 2.0 * w * d;
    }
    return v;
  };
  const auto r = lbfgs_minimize(f, std::vector<double>(8, 0.0));
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < r.x.size(); ++i) EXPECT_NEAR(r.x[i], i + 1.0, 1e-7);
}

TEST(Lbfgs, Rosenbrock2D) {
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    g[0] = -2.0 * a - 400.0 * x[0] * b;
    g[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  };
  LbfgsOptions opts;
  opts.max_iterations = 2000;
  opts.gradient_tolerance = 1e-10;
  const auto r = lbfgs_minimize(f, {-1.2, 1.0}, opts);
  EXPECT_NEAR(r.x[0], 1.0, 1e-5);
  EXPECT_NEAR(r.x[1], 1.0, 1e-5);
}

TEST(Lbfgs, TrigObjective) {
  // Smooth non-quadratic bowl: f = sum (sin(x_i) - 0.5)^2 near x_i = pi/6.
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    double v = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = std::sin(x[i]) - 0.5;
      v += d * d;
      g[i] = 2.0 * d * std::cos(x[i]);
    }
    return v;
  };
  const auto r = lbfgs_minimize(f, std::vector<double>(5, 0.3));
  EXPECT_LT(r.fx, 1e-16);
}

TEST(Lbfgs, AlreadyAtMinimum) {
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    g[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  const auto r = lbfgs_minimize(f, {0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

}  // namespace
}  // namespace mpqls
