// The cache key must separate everything preparation depends on: matrix
// content and every QsvtOptions field. A collision between requests that
// differ in any of those would silently serve a context prepared for the
// wrong accuracy/backend.
#include "service/fingerprint.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/random_matrix.hpp"

namespace mpqls::service {
namespace {

TEST(Fingerprint, DeterministicForEqualInputs) {
  Xoshiro256 rng(1);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  qsvt::QsvtOptions opts;
  EXPECT_EQ(fingerprint(A, opts), fingerprint(A, opts));
}

TEST(Fingerprint, MatrixContentChangesHash) {
  Xoshiro256 rng(2);
  auto A = linalg::random_with_cond(rng, 8, 5.0);
  const qsvt::QsvtOptions opts;
  const auto base = fingerprint(A, opts);
  A(3, 4) += 1e-12;
  const auto perturbed = fingerprint(A, opts);
  EXPECT_NE(base.matrix_hash, perturbed.matrix_hash);
  EXPECT_EQ(base.options_hash, perturbed.options_hash);
}

TEST(Fingerprint, MatrixShapeChangesHash) {
  const linalg::Matrix<double> row_vec(1, 4, 1.0);
  const linalg::Matrix<double> col_vec(4, 1, 1.0);
  EXPECT_NE(hash_matrix(row_vec), hash_matrix(col_vec));
}

TEST(Fingerprint, EveryOptionFieldSeparates) {
  const qsvt::QsvtOptions base;
  auto differs = [&](qsvt::QsvtOptions changed) {
    return hash_options(changed) != hash_options(base);
  };

  qsvt::QsvtOptions o = base;
  o.backend = qsvt::Backend::kMatrixFunction;
  EXPECT_TRUE(differs(o));

  o = base;
  o.precision = qsvt::QpuPrecision::kSingle;
  EXPECT_TRUE(differs(o));

  o = base;
  o.poly_method = qsvt::PolyMethod::kAnalytic;
  EXPECT_TRUE(differs(o));

  o = base;
  o.encoding = qsvt::EncodingKind::kLcuPauli;
  EXPECT_TRUE(differs(o));

  o = base;
  o.eps_l = base.eps_l * 0.5;
  EXPECT_TRUE(differs(o));

  o = base;
  o.kappa = 42.0;
  EXPECT_TRUE(differs(o));

  o = base;
  o.kappa_margin = 1.25;
  EXPECT_TRUE(differs(o));

  o = base;
  o.shots = 1000;
  EXPECT_TRUE(differs(o));

  o = base;
  o.seed = base.seed + 1;
  EXPECT_TRUE(differs(o));

  o = base;
  o.noise.depolarizing_per_gate = 1e-4;
  EXPECT_TRUE(differs(o));

  o = base;
  o.noise.damping_per_gate = 1e-4;
  EXPECT_TRUE(differs(o));

  o = base;
  o.qsp_options.tolerance = 1e-9;
  EXPECT_TRUE(differs(o));
}

TEST(Fingerprint, NegativeZeroMatchesPositiveZero) {
  linalg::Matrix<double> A(2, 2);
  linalg::Matrix<double> B(2, 2);
  A(0, 0) = 0.0;
  B(0, 0) = -0.0;
  EXPECT_EQ(hash_matrix(A), hash_matrix(B));
}

TEST(Fingerprint, ToStringIsStable) {
  const Fingerprint fp{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  EXPECT_EQ(to_string(fp), "mtx:0123456789abcdef/opt:fedcba9876543210");
}

}  // namespace
}  // namespace mpqls::service
