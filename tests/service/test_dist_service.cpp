// Distributed shard-group jobs through the service front door: W
// SolverService instances (one per rank, LocalPeerGroup transport
// injected via ServiceOptions::shard_channel) solve the same request
// concurrently and must return identical reports on every rank, agree
// bitwise across world sizes, and match the single-node service within
// the one-lane rounding tolerance. Also the memory-wall contract: a
// qubit-capped service rejects a too-wide single-node job but admits the
// same job as a member of a large enough shard group, and the dist
// telemetry (result fields + Stats::dist) is populated.
#include "service/solver_service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "linalg/random_matrix.hpp"
#include "qsim/exec/dist/peer_channel.hpp"

namespace mpqls::service {
namespace {

namespace dist = qsim::exec::dist;

SolveRequest dist_request(std::size_t n, std::size_t n_rhs, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  SolveRequest req;
  req.id = "dist";
  req.A = linalg::random_with_cond(rng, n, 10.0);
  for (std::size_t k = 0; k < n_rhs; ++k) {
    req.rhs.push_back(linalg::random_unit_vector(rng, n));
  }
  req.options.eps = 1e-10;
  req.options.qsvt.eps_l = 1e-2;
  req.options.qsvt.backend = qsvt::Backend::kGateLevel;
  return req;
}

ServiceOptions rank_options(std::shared_ptr<dist::LocalPeerGroup> group,
                            std::size_t qubit_cap = 0) {
  ServiceOptions o;
  o.cache_capacity = 2;
  o.solve_threads = 1;
  o.job_threads = 1;
  o.panel_width = 1;
  o.max_statevector_qubits = qubit_cap;
  o.shard_channel = [group = std::move(group)](const ShardSpec& shard) {
    return group->channel(shard.rank);
  };
  return o;
}

/// Solve `base` as a W-rank shard group (one service per rank, threads in
/// lockstep over a LocalPeerGroup); returns every rank's result.
std::vector<SolveResult> solve_group(const SolveRequest& base, std::uint32_t world,
                                     std::size_t qubit_cap = 0) {
  auto group = std::make_shared<dist::LocalPeerGroup>(world);
  std::vector<std::unique_ptr<SolverService>> services;
  for (std::uint32_t r = 0; r < world; ++r) {
    services.push_back(std::make_unique<SolverService>(rank_options(group, qubit_cap)));
  }
  std::vector<SolveResult> results(world);
  std::vector<std::exception_ptr> errors(world);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      SolveRequest req = base;
      req.shard.group = 0xD157ull + world;
      req.shard.rank = r;
      req.shard.world = world;
      req.shard.peers.assign(world, "local");
      try {
        results[r] = services[r]->solve(req);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

void expect_results_identical(const SolveResult& a, const SolveResult& b, const char* what) {
  ASSERT_EQ(a.solves.size(), b.solves.size()) << what;
  for (std::size_t k = 0; k < a.solves.size(); ++k) {
    const auto& ra = a.solves[k].report;
    const auto& rb = b.solves[k].report;
    EXPECT_EQ(ra.iterations, rb.iterations) << what << " rhs " << k;
    EXPECT_EQ(ra.converged, rb.converged) << what << " rhs " << k;
    ASSERT_EQ(ra.x.size(), rb.x.size()) << what << " rhs " << k;
    for (std::size_t i = 0; i < ra.x.size(); ++i) {
      EXPECT_EQ(ra.x[i], rb.x[i]) << what << " rhs " << k << " component " << i;
    }
    EXPECT_EQ(ra.scaled_residuals, rb.scaled_residuals) << what << " rhs " << k;
  }
}

TEST(DistService, ShardGroupsMatchSingleNodeAcrossWorldSizes) {
  const auto base = dist_request(8, 2, 42);
  SolverService single(
      {.cache_capacity = 2, .solve_threads = 1, .job_threads = 1, .panel_width = 1});
  const auto want = single.solve(base);
  ASSERT_TRUE(want.all_converged);
  EXPECT_EQ(want.shard_world, 0u);  // single-node results carry no dist block

  const auto two = solve_group(base, 2);
  const auto four = solve_group(base, 4);

  // Lockstep: every rank of a group renders the identical result.
  for (std::uint32_t r = 1; r < 2; ++r) {
    expect_results_identical(two[0], two[r], "W=2 rank vs rank");
  }
  for (std::uint32_t r = 1; r < 4; ++r) {
    expect_results_identical(four[0], four[r], "W=4 rank vs rank");
  }
  // Both world sizes reduce to the same one-lane replay arithmetic.
  expect_results_identical(two[0], four[0], "W=2 vs W=4");

  // And the single-node service agrees within the one-lane rounding.
  ASSERT_EQ(two[0].solves.size(), want.solves.size());
  EXPECT_TRUE(two[0].all_converged);
  for (std::size_t k = 0; k < want.solves.size(); ++k) {
    const auto& got = two[0].solves[k].report;
    const auto& ref = want.solves[k].report;
    EXPECT_EQ(got.converged, ref.converged) << "rhs " << k;
    ASSERT_EQ(got.x.size(), ref.x.size());
    for (std::size_t i = 0; i < ref.x.size(); ++i) {
      EXPECT_NEAR(got.x[i], ref.x[i], 1e-9) << "rhs " << k << " component " << i;
    }
  }

  // Per-rank dist telemetry landed in the results.
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(four[r].shard_rank, r);
    EXPECT_EQ(four[r].shard_world, 4u);
    EXPECT_GT(four[r].dist_exchange_rounds, 0u);
    EXPECT_GT(four[r].dist_bytes_moved, 0u);
    EXPECT_LE(four[r].dist_plan_scheduled_rounds, four[r].dist_plan_naive_rounds);
  }
}

TEST(DistService, QubitCapRejectsSingleNodeButAdmitsShardGroup) {
  // n = 16 embeds as ceil_log2(16) + 3 = 7 circuit qubits. Capped at 5,
  // the single node must refuse (2^7 amplitudes would breach the wall);
  // a W = 4 group stores 7 - 2 = 5 qubits per rank and sails through.
  const auto base = dist_request(16, 1, 43);

  SolverService capped({.cache_capacity = 2,
                        .solve_threads = 1,
                        .job_threads = 1,
                        .panel_width = 1,
                        .max_statevector_qubits = 5});
  EXPECT_THROW(capped.solve(base), contract_violation);

  const auto results = solve_group(base, 4, /*qubit_cap=*/5);
  for (const auto& r : results) {
    EXPECT_TRUE(r.all_converged);
    EXPECT_EQ(r.shard_world, 4u);
  }

  // Sanity on the solution the capped group produced.
  SolverService single(
      {.cache_capacity = 2, .solve_threads = 1, .job_threads = 1, .panel_width = 1});
  const auto want = single.solve(base);
  for (std::size_t i = 0; i < want.solves[0].report.x.size(); ++i) {
    EXPECT_NEAR(results[0].solves[0].report.x[i], want.solves[0].report.x[i], 1e-9);
  }
}

TEST(DistService, DistJobsRequireATransportAndAccumulateStats) {
  // No shard_channel configured: the distributed job is refused with the
  // transport contract message, not a hang.
  SolverService bare(
      {.cache_capacity = 2, .solve_threads = 1, .job_threads = 1, .panel_width = 1});
  auto req = dist_request(8, 1, 44);
  req.shard.group = 1;
  req.shard.rank = 0;
  req.shard.world = 2;
  req.shard.peers.assign(2, "local");
  EXPECT_THROW(bare.solve(req), contract_violation);

  // With a transport, Stats::dist accumulates what the session measured.
  const auto base = dist_request(8, 1, 45);
  auto group = std::make_shared<dist::LocalPeerGroup>(2);
  std::vector<std::unique_ptr<SolverService>> services;
  for (std::uint32_t r = 0; r < 2; ++r) {
    services.push_back(std::make_unique<SolverService>(rank_options(group)));
  }
  std::vector<std::exception_ptr> errors(2);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      SolveRequest rr = base;
      rr.shard.group = 2;
      rr.shard.rank = r;
      rr.shard.world = 2;
      rr.shard.peers.assign(2, "local");
      try {
        (void)services[r]->solve(rr);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  for (std::uint32_t r = 0; r < 2; ++r) {
    const auto stats = services[r]->stats().dist;
    EXPECT_EQ(stats.jobs, 1u) << "rank " << r;
    EXPECT_GT(stats.solves, 0u) << "rank " << r;
    EXPECT_GT(stats.exchange_rounds, 0u) << "rank " << r;
    EXPECT_GT(stats.bytes_moved, 0u) << "rank " << r;
    EXPECT_LE(stats.plan_scheduled_rounds, stats.plan_naive_rounds) << "rank " << r;
  }
}

}  // namespace
}  // namespace mpqls::service
