// Context-cache behaviour: hit/miss accounting, LRU eviction order,
// single-preparation under concurrent demand, and no caching of failed
// preparations.
#include "service/context_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "linalg/random_matrix.hpp"

namespace mpqls::service {
namespace {

qsvt::QsvtOptions fast_options() {
  qsvt::QsvtOptions o;
  o.backend = qsvt::Backend::kMatrixFunction;  // no QSP phases: cheap prepares
  o.eps_l = 1e-2;
  return o;
}

TEST(ContextCache, MissThenHit) {
  Xoshiro256 rng(11);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  ContextCache cache(4);

  bool hit = true;
  const auto first = cache.get_or_prepare(A, fast_options(), &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get_or_prepare(A, fast_options(), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // literally the same context

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ContextCache, DifferingOptionsMissSeparately) {
  Xoshiro256 rng(12);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  ContextCache cache(4);

  auto opts_a = fast_options();
  auto opts_b = fast_options();
  opts_b.eps_l = 1e-3;

  const auto ctx_a = cache.get_or_prepare(A, opts_a);
  const auto ctx_b = cache.get_or_prepare(A, opts_b);
  EXPECT_NE(ctx_a.get(), ctx_b.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(ContextCache, LruEvictionDropsLeastRecentlyUsed) {
  Xoshiro256 rng(13);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  const auto B = linalg::random_with_cond(rng, 8, 5.0);
  const auto C = linalg::random_with_cond(rng, 8, 5.0);
  const auto opts = fast_options();
  ContextCache cache(2);

  cache.get_or_prepare(A, opts);
  cache.get_or_prepare(B, opts);
  cache.get_or_prepare(A, opts);  // touch A: B becomes LRU
  cache.get_or_prepare(C, opts);  // evicts B

  EXPECT_TRUE(cache.contains(fingerprint(A, opts)));
  EXPECT_FALSE(cache.contains(fingerprint(B, opts)));
  EXPECT_TRUE(cache.contains(fingerprint(C, opts)));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);

  // B was evicted, so it re-prepares (a fresh miss, not an error).
  bool hit = true;
  cache.get_or_prepare(B, opts, &hit);
  EXPECT_FALSE(hit);
}

TEST(ContextCache, ConcurrentRequestsPrepareOnce) {
  Xoshiro256 rng(14);
  const auto A = linalg::random_with_cond(rng, 16, 10.0);
  const auto opts = fast_options();
  ContextCache cache(4);

  constexpr int kThreads = 8;
  std::vector<ContextCache::ContextPtr> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = cache.get_or_prepare(A, opts); });
  }
  for (auto& th : threads) th.join();

  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(results[0].get(), results[t].get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);  // exactly one thread prepared
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ContextCache, FailedPreparationIsNotCached) {
  linalg::Matrix<double> singular(4, 4);  // all zeros
  ContextCache cache(4);
  EXPECT_THROW(cache.get_or_prepare(singular, fast_options()), contract_violation);
  EXPECT_EQ(cache.stats().size, 0u);
  // The poisoned entry was dropped: the next request retries (and fails
  // again) instead of replaying a stale exception forever.
  EXPECT_THROW(cache.get_or_prepare(singular, fast_options()), contract_violation);
  EXPECT_EQ(cache.stats().misses, 2u);
}

// Many threads hammering a tiny cache across several keys: eviction churn
// and in-flight dedup running at once. Asserts the accounting invariants
// (every request is a hit or a miss; a single-key stampede prepares
// exactly once) and actually *uses* every returned context, so a
// use-after-evict would crash here under ASan — the memory-safety gate
// the CI sanitizer job runs.
TEST(ContextCache, ConcurrentHammeringWithTinyCapacity) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 24;
  constexpr std::size_t kKeys = 3;

  Xoshiro256 rng(16);
  std::vector<linalg::Matrix<double>> matrices;
  for (std::size_t k = 0; k < kKeys; ++k) {
    matrices.push_back(linalg::random_with_cond(rng, 8, 4.0 + static_cast<double>(k)));
  }
  const auto opts = fast_options();
  ContextCache cache(1);  // every distinct-key access evicts something

  std::atomic<int> start_gate{0};
  std::atomic<std::uint64_t> uses{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ++start_gate;
      while (start_gate.load() < kThreads) {}  // align the stampede
      Xoshiro256 local(static_cast<std::uint64_t>(t) + 100);
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t key = (static_cast<std::size_t>(t) + static_cast<std::size_t>(i)) % kKeys;
        const auto ctx = cache.get_or_prepare(matrices[key], opts);
        // Use the held context after potential eviction by other threads:
        // a freed context would fault under ASan right here.
        const auto b = linalg::random_unit_vector(local, 8);
        const auto outcome = qsvt::qsvt_solve_direction(*ctx, b);
        if (outcome.success_probability > 0.0) ++uses;
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto stats = cache.stats();
  constexpr std::uint64_t kTotal = static_cast<std::uint64_t>(kThreads) * kItersPerThread;
  EXPECT_EQ(uses.load(), kTotal);  // every context was valid and usable
  EXPECT_EQ(stats.hits + stats.misses, kTotal);
  EXPECT_GE(stats.misses, kKeys);  // each key prepared at least once
  EXPECT_GT(stats.evictions, 0u);  // capacity 1 with 3 keys must churn
  EXPECT_LE(stats.size, 1u);
  // Re-preparation only ever follows an eviction: misses beyond the first
  // per key are bounded by the eviction count (no gratuitous
  // double-preparation while an entry is resident or in flight).
  EXPECT_LE(stats.misses, stats.evictions + kKeys);

  // Cold stampede on a never-seen key: exactly one preparation, everyone
  // else joins in flight or hits.
  const auto fresh = linalg::random_with_cond(rng, 8, 9.0);
  const auto before = cache.stats();
  std::vector<std::thread> stampede;
  for (int t = 0; t < kThreads; ++t) {
    stampede.emplace_back([&] { cache.get_or_prepare(fresh, opts); });
  }
  for (auto& th : stampede) th.join();
  const auto after = cache.stats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ContextCache, EvictedContextStaysUsableWhileHeld) {
  Xoshiro256 rng(15);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  const auto B = linalg::random_with_cond(rng, 8, 5.0);
  const auto opts = fast_options();
  ContextCache cache(1);

  const auto held = cache.get_or_prepare(A, opts);
  cache.get_or_prepare(B, opts);  // evicts A's entry
  EXPECT_FALSE(cache.contains(fingerprint(A, opts)));
  // shared_ptr ownership keeps the context alive and fully usable.
  const auto b = linalg::random_unit_vector(rng, 8);
  const auto outcome = qsvt::qsvt_solve_direction(*held, b);
  EXPECT_GT(outcome.success_probability, 0.0);
}

}  // namespace
}  // namespace mpqls::service
