// The JSON layer: parser/writer fundamentals, lossless SolveResult round
// trips (doubles survive dump -> parse bitwise), and scenario-based
// request construction for the job API.
#include "service/json_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "common/contracts.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "linalg/random_matrix.hpp"
#include "service/solver_service.hpp"

namespace mpqls::service {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
  const auto j = Json::parse(R"({"a": 1.5, "b": [true, false, null], "s": "x\ny", "n": -3e2})");
  EXPECT_DOUBLE_EQ(j.at("a").as_number(), 1.5);
  EXPECT_TRUE(j.at("b").as_array()[0].as_bool());
  EXPECT_FALSE(j.at("b").as_array()[1].as_bool());
  EXPECT_TRUE(j.at("b").as_array()[2].is_null());
  EXPECT_EQ(j.at("s").as_string(), "x\ny");
  EXPECT_DOUBLE_EQ(j.at("n").as_number(), -300.0);
}

TEST(Json, StringEscapesRoundTrip) {
  Json j = Json::object();
  j["s"] = std::string("quote\" slash\\ tab\t newline\n ctrl\x01 end");
  const auto parsed = Json::parse(j.dump());
  EXPECT_EQ(parsed.at("s").as_string(), j.at("s").as_string());
}

TEST(Json, UnicodeEscapeDecodesToUtf8) {
  const auto j = Json::parse(R"("éA")");
  EXPECT_EQ(j.as_string(), "\xC3\xA9"  "A");
}

TEST(Json, DoublesRoundTripBitwise) {
  const double values[] = {1.0 / 3.0, 1e-300, 1e300,  M_PI,
                           -0.0,      5e-324, 1.0 + 1e-15};
  for (double v : values) {
    Json j = Json::array();
    j.push_back(v);
    const auto back = Json::parse(j.dump()).as_array()[0].as_number();
    EXPECT_EQ(std::signbit(back), std::signbit(v));
    EXPECT_EQ(back, v) << "value " << v;
  }
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW(Json::parse("12 34"), JsonParseError);
  EXPECT_THROW(Json::parse(R"("\q")"), JsonParseError);
  EXPECT_THROW(Json::parse("nul"), JsonParseError);
  EXPECT_THROW(Json::parse(""), JsonParseError);
  EXPECT_THROW(Json::parse(R"({"a" 1})"), JsonParseError);
  EXPECT_THROW(Json::parse(R"("unterminated)"), JsonParseError);
  EXPECT_THROW(Json::parse(R"("\u12g4")"), JsonParseError);
  EXPECT_THROW(Json::parse("1.2.3"), JsonParseError);
}

// Every rejection carries the byte offset where the parser gave up — the
// daemon echoes it in 400 responses so clients can locate the defect.
TEST(Json, ParseErrorsCarryThePosition) {
  const auto position_of = [](std::string_view text) -> std::size_t {
    try {
      Json::parse(text);
    } catch (const JsonParseError& e) {
      EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
      return e.position();
    }
    ADD_FAILURE() << "no JsonParseError for: " << text;
    return static_cast<std::size_t>(-1);
  };

  // Trailing garbage: position points at the first extra character.
  EXPECT_EQ(position_of("{} x"), 3u);
  EXPECT_EQ(position_of("[1, 2] [3]"), 7u);
  // Malformed syntax: position points at (or just past) the defect.
  EXPECT_EQ(position_of(R"({"a": 1 "b": 2})"), 8u);  // missing comma
  EXPECT_EQ(position_of("[1, ]"), 4u);               // dangling comma
  EXPECT_EQ(position_of("12e"), 0u);                 // bad number (token start)
  EXPECT_EQ(position_of("{"), 1u);                   // truncated document
}

TEST(Json, NestingDepthIsCapped) {
  // One over the cap of 256 throws; exactly at the cap parses.
  const std::string deep_open(257, '[');
  EXPECT_THROW(Json::parse(deep_open), JsonParseError);

  std::string balanced(255, '[');
  balanced += "1";
  balanced.append(255, ']');
  EXPECT_NO_THROW(Json::parse(balanced));

  try {
    Json::parse(std::string(400, '['));
    FAIL() << "depth cap not enforced";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.position(), 256u);  // the bracket that crossed the limit
  }
}

TEST(Json, PrettyAndCompactDumpsParseIdentically) {
  const auto j = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": {}})");
  EXPECT_EQ(Json::parse(j.dump(2)).dump(), j.dump());
}

TEST(JsonIo, SolveResultRoundTripsLosslessly) {
  Xoshiro256 rng(900);
  SolveRequest req;
  req.id = "roundtrip";
  req.A = linalg::random_with_cond(rng, 8, 10.0);
  req.rhs.push_back(linalg::random_unit_vector(rng, 8));
  req.rhs.push_back(linalg::random_unit_vector(rng, 8));
  req.options.eps = 1e-10;
  req.options.qsvt.eps_l = 1e-2;

  SolverService service({.cache_capacity = 2, .solve_threads = 2, .job_threads = 1});
  const auto result = service.solve(req);

  const auto text = to_json(result).dump(2);
  const auto back = result_from_json(Json::parse(text));

  EXPECT_EQ(back.id, result.id);
  EXPECT_EQ(back.fp, result.fp);
  EXPECT_EQ(back.cache_hit, result.cache_hit);
  EXPECT_EQ(back.prepare_seconds, result.prepare_seconds);
  EXPECT_EQ(back.total_seconds, result.total_seconds);
  EXPECT_EQ(back.all_converged, result.all_converged);
  ASSERT_EQ(back.solves.size(), result.solves.size());
  for (std::size_t k = 0; k < result.solves.size(); ++k) {
    const auto& want = result.solves[k].report;
    const auto& got = back.solves[k].report;
    EXPECT_EQ(back.solves[k].solve_seconds, result.solves[k].solve_seconds);
    EXPECT_EQ(got.converged, want.converged);
    EXPECT_EQ(got.iterations, want.iterations);
    EXPECT_EQ(got.kappa, want.kappa);
    EXPECT_EQ(got.eps_l_effective, want.eps_l_effective);
    EXPECT_EQ(got.poly_degree, want.poly_degree);
    EXPECT_EQ(got.poly_scale, want.poly_scale);
    EXPECT_EQ(got.theoretical_iteration_bound, want.theoretical_iteration_bound);
    EXPECT_EQ(got.total_be_calls, want.total_be_calls);
    EXPECT_EQ(got.tier_solves, want.tier_solves);
    EXPECT_EQ(got.tier_iterations, want.tier_iterations);
    EXPECT_EQ(got.precision_switches, want.precision_switches);
    EXPECT_EQ(got.dd128_verified, want.dd128_verified);
    EXPECT_EQ(got.dd128_final_residual, want.dd128_final_residual);
    ASSERT_EQ(got.x.size(), want.x.size());
    for (std::size_t i = 0; i < want.x.size(); ++i) EXPECT_EQ(got.x[i], want.x[i]);
    ASSERT_EQ(got.scaled_residuals.size(), want.scaled_residuals.size());
    for (std::size_t i = 0; i < want.scaled_residuals.size(); ++i) {
      EXPECT_EQ(got.scaled_residuals[i], want.scaled_residuals[i]);
    }
    ASSERT_EQ(got.solves.size(), want.solves.size());
    for (std::size_t i = 0; i < want.solves.size(); ++i) {
      EXPECT_EQ(got.solves[i].mu, want.solves[i].mu);
      EXPECT_EQ(got.solves[i].success_probability, want.solves[i].success_probability);
      EXPECT_EQ(got.solves[i].be_calls, want.solves[i].be_calls);
      EXPECT_EQ(got.solves[i].circuit_gates, want.solves[i].circuit_gates);
    }
    ASSERT_EQ(got.comm.events().size(), want.comm.events().size());
    for (std::size_t i = 0; i < want.comm.events().size(); ++i) {
      EXPECT_EQ(got.comm.events()[i].payload, want.comm.events()[i].payload);
      EXPECT_EQ(got.comm.events()[i].bytes, want.comm.events()[i].bytes);
      EXPECT_EQ(got.comm.events()[i].iteration, want.comm.events()[i].iteration);
      EXPECT_EQ(static_cast<int>(got.comm.events()[i].direction),
                static_cast<int>(want.comm.events()[i].direction));
    }
  }
}

TEST(JsonIo, RequestRoundTripsThroughDenseForm) {
  Xoshiro256 rng(901);
  SolveRequest req;
  req.id = "dense-rt";
  req.A = linalg::random_with_cond(rng, 4, 3.0);
  req.rhs.push_back(linalg::random_unit_vector(rng, 4));
  req.options.qsvt.backend = qsvt::Backend::kMatrixFunction;
  req.options.qsvt.eps_l = 5e-3;
  req.options.qsvt.shots = 4096;
  req.options.qsvt.qsp_options.tolerance = 1e-14;
  req.options.qsvt.qsp_options.enable_lbfgs = false;
  req.options.residual_precision = solver::ResidualPrecision::kDoubleDouble;

  const auto back = request_from_json(Json::parse(to_json(req).dump()));
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.A, req.A);  // bitwise matrix equality
  ASSERT_EQ(back.rhs.size(), 1u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(back.rhs[0][i], req.rhs[0][i]);
  EXPECT_EQ(back.options.qsvt.backend, req.options.qsvt.backend);
  EXPECT_EQ(back.options.qsvt.eps_l, req.options.qsvt.eps_l);
  EXPECT_EQ(back.options.qsvt.shots, req.options.qsvt.shots);
  EXPECT_EQ(back.options.qsvt.qsp_options.tolerance, req.options.qsvt.qsp_options.tolerance);
  EXPECT_EQ(back.options.qsvt.qsp_options.enable_lbfgs,
            req.options.qsvt.qsp_options.enable_lbfgs);
  EXPECT_EQ(back.options.residual_precision, req.options.residual_precision);
  // The fingerprint must survive the round trip too — qsp knobs are hashed.
  EXPECT_EQ(hash_options(back.options.qsvt), hash_options(req.options.qsvt));
}

TEST(JsonIo, AdaptivePrecisionKnobsRoundTrip) {
  Xoshiro256 rng(902);
  SolveRequest req;
  req.id = "adaptive-rt";
  req.A = linalg::random_with_cond(rng, 4, 3.0);
  req.rhs.push_back(linalg::random_unit_vector(rng, 4));
  req.options.qsvt.precision = qsvt::QpuPrecision::kAdaptive;
  req.options.escalation.stall_ratio = 0.25;
  req.options.escalation.half_floor = 5e-3;
  req.options.escalation.single_floor = 2e-11;

  const auto text = to_json(req).dump(2);
  // The knob travels by name, not enum value.
  EXPECT_NE(text.find("\"precision\": \"adaptive\""), std::string::npos);
  const auto back = request_from_json(Json::parse(text));
  EXPECT_EQ(back.options.qsvt.precision, qsvt::QpuPrecision::kAdaptive);
  EXPECT_EQ(back.options.escalation.stall_ratio, req.options.escalation.stall_ratio);
  EXPECT_EQ(back.options.escalation.half_floor, req.options.escalation.half_floor);
  EXPECT_EQ(back.options.escalation.single_floor, req.options.escalation.single_floor);

  // The half tier travels by name too.
  req.options.qsvt.precision = qsvt::QpuPrecision::kHalf;
  const auto half_back = request_from_json(Json::parse(to_json(req).dump()));
  EXPECT_EQ(half_back.options.qsvt.precision, qsvt::QpuPrecision::kHalf);

  // A request predating the escalation block keeps the defaults.
  const auto legacy = request_from_json(Json::parse(R"({
    "id": "legacy",
    "matrix": {"scenario": "tridiagonal", "n": 4},
    "rhs": {"kind": "point", "index": 0},
    "options": {"eps": 1e-9, "qsvt": {"precision": "adaptive"}}
  })"));
  const solver::EscalationPolicy defaults;
  EXPECT_EQ(legacy.options.escalation.stall_ratio, defaults.stall_ratio);
  EXPECT_EQ(legacy.options.escalation.half_floor, defaults.half_floor);
  EXPECT_EQ(legacy.options.escalation.single_floor, defaults.single_floor);
}

TEST(JsonIo, ScenarioGeneratorsMatchLibrary) {
  const auto poisson = request_from_json(Json::parse(R"({
    "id": "p1", "matrix": {"scenario": "poisson1d", "n": 8},
    "rhs": {"kind": "point", "index": 3}})"));
  EXPECT_EQ(poisson.A, linalg::poisson1d(8));
  ASSERT_EQ(poisson.rhs.size(), 1u);
  EXPECT_EQ(poisson.rhs[0][3], 1.0);

  const auto tridiag = request_from_json(Json::parse(R"({
    "id": "t1", "matrix": {"scenario": "tridiagonal", "n": 8},
    "rhs": {"kind": "random", "count": 3, "seed": 5}})"));
  EXPECT_EQ(tridiag.A, linalg::dirichlet_laplacian(8));
  EXPECT_EQ(tridiag.rhs.size(), 3u);

  const auto random = request_from_json(Json::parse(R"({
    "id": "r1", "matrix": {"scenario": "random", "n": 8, "kappa": 12.0, "seed": 9},
    "rhs": {"kind": "random", "count": 1}})"));
  Xoshiro256 rng(9);
  EXPECT_EQ(random.A, linalg::random_with_cond(rng, 8, 12.0));

  EXPECT_THROW(request_from_json(Json::parse(
                   R"({"matrix": {"scenario": "nope"}, "rhs": {"kind": "point", "index": 0}})")),
               contract_violation);
}

// Scenario sizes come from untrusted network bodies: a few bytes of JSON
// must not be able to demand an enormous dense allocation or an unbounded
// fan-out of right-hand sides.
TEST(JsonIo, RejectsOversizedScenarioRequests) {
  EXPECT_THROW(request_from_json(Json::parse(
                   R"({"matrix": {"scenario": "poisson1d", "n": 200000},
                       "rhs": {"kind": "point", "index": 0}})")),
               contract_violation);
  EXPECT_THROW(request_from_json(Json::parse(
                   R"({"matrix": {"scenario": "random", "n": 1000000, "kappa": 2.0},
                       "rhs": {"kind": "point", "index": 0}})")),
               contract_violation);
  EXPECT_THROW(request_from_json(Json::parse(
                   R"({"matrix": {"scenario": "poisson2d", "nx": 100000, "ny": 100000},
                       "rhs": {"kind": "point", "index": 0}})")),
               contract_violation);
  EXPECT_THROW(request_from_json(Json::parse(
                   R"({"matrix": {"scenario": "poisson1d", "n": 0},
                       "rhs": {"kind": "point", "index": 0}})")),
               contract_violation);
  EXPECT_THROW(request_from_json(Json::parse(
                   R"({"matrix": {"scenario": "poisson1d", "n": 8},
                       "rhs": {"kind": "random", "count": 1000000, "seed": 1}})")),
               contract_violation);
}

// Schema-drift tripwire for the checked-in example workload: every job in
// examples/jobs/mixed.json must survive parse -> typed request ->
// serialize -> parse -> serialize with identical dumps. If a field is
// renamed or dropped in json_io, this fails in CTest instead of at daemon
// runtime when a client submits the documented example.
TEST(JsonIo, MixedJobsFileRoundTripsExactly) {
  const std::string path = std::string(MPQLS_SOURCE_DIR) + "/examples/jobs/mixed.json";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();

  const Json doc = Json::parse(buffer.str());
  const auto& jobs = doc.at("jobs").as_array();
  ASSERT_GE(jobs.size(), 8u);
  for (const auto& job_json : jobs) {
    const SolveRequest first = request_from_json(job_json);
    const Json dumped = to_json(first);            // normalizes to dense form
    const SolveRequest second = request_from_json(dumped);
    const Json dumped_again = to_json(second);
    EXPECT_EQ(dumped.dump(), dumped_again.dump()) << "job " << first.id;
    EXPECT_EQ(first.A, second.A);
    EXPECT_EQ(hash_options(first.options.qsvt), hash_options(second.options.qsvt));
  }
}

TEST(JsonIo, JobFileParsesAllJobs) {
  const auto jobs = jobs_from_json(Json::parse(R"({"jobs": [
    {"id": "a", "matrix": {"scenario": "poisson1d", "n": 4},
     "rhs": {"kind": "point", "index": 0}},
    {"id": "b", "matrix": {"scenario": "random", "n": 4, "kappa": 5.0, "seed": 2},
     "rhs": {"kind": "random", "count": 2, "seed": 3},
     "options": {"eps": 1e-8, "qsvt": {"backend": "matrix", "eps_l": 0.005}}}
  ]})"));
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, "a");
  EXPECT_EQ(jobs[1].options.eps, 1e-8);
  EXPECT_EQ(jobs[1].options.qsvt.backend, qsvt::Backend::kMatrixFunction);
  EXPECT_EQ(jobs[1].options.qsvt.eps_l, 0.005);
}

}  // namespace
}  // namespace mpqls::service
