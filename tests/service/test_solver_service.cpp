// SolverService end to end: batch solves share one prepared context and
// (on the scalar per-RHS path) reproduce the single-solve path bitwise;
// panelized jobs match the scalar path within kernel rounding and fall
// back for scalar-only workloads; concurrent scheduling does not perturb
// results under a fixed seed; the cache spans jobs; async submit works.
// (Bitwise holds at a fixed OpenMP thread count: registers of >= 2^15
// amplitudes reduce norms/probabilities in parallel, and the summation
// order follows the thread count — see qsim/statevector.hpp.)
#include "service/solver_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/random_matrix.hpp"

namespace mpqls::service {
namespace {

solver::QsvtIrOptions ir_options(qsvt::Backend backend = qsvt::Backend::kGateLevel) {
  solver::QsvtIrOptions o;
  o.eps = 1e-10;
  o.qsvt.eps_l = 1e-2;
  o.qsvt.backend = backend;
  return o;
}

SolveRequest make_request(std::string id, std::size_t n, std::size_t n_rhs,
                          std::uint64_t seed,
                          qsvt::Backend backend = qsvt::Backend::kGateLevel) {
  Xoshiro256 rng(seed);
  SolveRequest req;
  req.id = std::move(id);
  req.A = linalg::random_with_cond(rng, n, 10.0);
  for (std::size_t k = 0; k < n_rhs; ++k) {
    req.rhs.push_back(linalg::random_unit_vector(rng, n));
  }
  req.options = ir_options(backend);
  return req;
}

TEST(SolverService, BatchMatchesSequentialBitwise) {
  const auto req = make_request("batch-vs-seq", 8, 3, 100);

  // Sequential reference: one prepared context, solves in order.
  const auto ctx = qsvt::prepare_qsvt_solver(req.A, req.options.qsvt);
  std::vector<solver::QsvtIrReport> reference;
  for (const auto& b : req.rhs) reference.push_back(solver::solve_qsvt_ir(ctx, b, req.options));

  // panel_width 1 pins the scalar per-RHS path: this test asserts that
  // concurrent scheduling alone never perturbs results. Panel execution
  // has its own parity test below (tolerance — the lane-vectorized
  // kernels round differently).
  SolverService service(
      {.cache_capacity = 4, .solve_threads = 4, .job_threads = 1, .panel_width = 1});
  const auto result = service.solve(req);

  ASSERT_EQ(result.solves.size(), reference.size());
  EXPECT_TRUE(result.all_converged);
  for (std::size_t k = 0; k < reference.size(); ++k) {
    const auto& got = result.solves[k].report;
    const auto& want = reference[k];
    EXPECT_EQ(got.iterations, want.iterations);
    ASSERT_EQ(got.x.size(), want.x.size());
    for (std::size_t i = 0; i < want.x.size(); ++i) {
      EXPECT_EQ(got.x[i], want.x[i]) << "rhs " << k << " component " << i;
    }
    ASSERT_EQ(got.scaled_residuals.size(), want.scaled_residuals.size());
    for (std::size_t i = 0; i < want.scaled_residuals.size(); ++i) {
      EXPECT_EQ(got.scaled_residuals[i], want.scaled_residuals[i]);
    }
  }
}

TEST(SolverService, PanelizedJobMatchesScalarPath) {
  // 5 right-hand sides at panel width 4: one full panel plus a singleton
  // tail (which falls back to the scalar path), so this also covers the
  // ragged-batch grouping.
  const auto req = make_request("panel-vs-scalar", 8, 5, 500);

  SolverService scalar(
      {.cache_capacity = 2, .solve_threads = 2, .job_threads = 1, .panel_width = 1});
  SolverService panel(
      {.cache_capacity = 2, .solve_threads = 2, .job_threads = 1, .panel_width = 4});
  const auto want = scalar.solve(req);
  const auto got = panel.solve(req);

  EXPECT_EQ(want.panels_executed, 0u);
  EXPECT_GE(got.panels_executed, 1u);  // the 4-lane group, one sweep per round
  EXPECT_GE(got.panel_lanes, 4u);
  EXPECT_EQ(panel.stats().panels_executed, got.panels_executed);
  EXPECT_EQ(panel.stats().panel_lanes_total, got.panel_lanes);

  ASSERT_EQ(got.solves.size(), want.solves.size());
  EXPECT_EQ(got.all_converged, want.all_converged);
  EXPECT_TRUE(got.all_converged);
  for (std::size_t k = 0; k < want.solves.size(); ++k) {
    const auto& g = got.solves[k].report;
    const auto& w = want.solves[k].report;
    EXPECT_EQ(g.iterations, w.iterations) << "rhs " << k;
    EXPECT_EQ(g.converged, w.converged) << "rhs " << k;
    ASSERT_EQ(g.x.size(), w.x.size());
    for (std::size_t i = 0; i < w.x.size(); ++i) {
      // The lane-vectorized kernels perform the scalar path's arithmetic
      // per lane but round through different instruction sequences.
      EXPECT_NEAR(g.x[i], w.x[i], 1e-9) << "rhs " << k << " component " << i;
    }
    EXPECT_EQ(g.solves.size(), w.solves.size()) << "rhs " << k;
    EXPECT_EQ(g.total_be_calls, w.total_be_calls) << "rhs " << k;
  }
}

TEST(SolverService, PanelFallsBackForScalarOnlyWorkloads) {
  SolverService service(
      {.cache_capacity = 4, .solve_threads = 2, .job_threads = 1, .panel_width = 4});

  // Singleton job: nothing to batch.
  const auto single = service.solve(make_request("single", 8, 1, 600));
  EXPECT_EQ(single.panels_executed, 0u);

  // Matrix-function backend: no compiled program to replay.
  const auto matrix =
      service.solve(make_request("matrix", 8, 3, 700, qsvt::Backend::kMatrixFunction));
  EXPECT_EQ(matrix.panels_executed, 0u);

  // Shot-seeded readout: the scalar path keeps historical RNG consumption.
  auto shots = make_request("shots", 8, 3, 800);
  shots.options.eps = 1e-2;
  shots.options.max_iterations = 8;
  shots.options.qsvt.shots = 200000;
  const auto shot_result = service.solve(shots);
  EXPECT_EQ(shot_result.panels_executed, 0u);

  // Noise trajectories need per-gate injection.
  auto noisy = make_request("noisy", 8, 2, 900);
  noisy.options.eps = 1e-2;
  noisy.options.max_iterations = 4;
  noisy.options.qsvt.noise.depolarizing_per_gate = 1e-6;
  const auto noisy_result = service.solve(noisy);
  EXPECT_EQ(noisy_result.panels_executed, 0u);

  EXPECT_EQ(service.stats().panels_executed, 0u);
}

TEST(SolverService, ConcurrentBatchIsDeterministic) {
  const auto req = make_request("determinism", 8, 6, 200);
  SolverService a({.cache_capacity = 2, .solve_threads = 4, .job_threads = 1});
  SolverService b({.cache_capacity = 2, .solve_threads = 1, .job_threads = 1});

  const auto r1 = a.solve(req);
  const auto r2 = b.solve(req);  // single worker = fully sequential schedule

  ASSERT_EQ(r1.solves.size(), r2.solves.size());
  for (std::size_t k = 0; k < r1.solves.size(); ++k) {
    const auto& x1 = r1.solves[k].report.x;
    const auto& x2 = r2.solves[k].report.x;
    ASSERT_EQ(x1.size(), x2.size());
    for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_EQ(x1[i], x2[i]);
  }
}

TEST(SolverService, SolutionsAreCorrectPerRhs) {
  const auto req = make_request("correctness", 8, 4, 300);
  SolverService service({.cache_capacity = 2, .solve_threads = 4, .job_threads = 1});
  const auto result = service.solve(req);
  ASSERT_TRUE(result.all_converged);
  for (std::size_t k = 0; k < req.rhs.size(); ++k) {
    const auto x_lu = linalg::lu_solve(req.A, req.rhs[k]);
    double err = 0.0;
    for (std::size_t i = 0; i < x_lu.size(); ++i) {
      err = std::max(err, std::abs(result.solves[k].report.x[i] - x_lu[i]));
    }
    EXPECT_LT(err, 1e-8) << "rhs " << k;
  }
}

TEST(SolverService, CacheSpansJobs) {
  const auto req = make_request("cache-1", 8, 1, 400, qsvt::Backend::kMatrixFunction);
  auto req2 = req;
  req2.id = "cache-2";

  SolverService service({.cache_capacity = 2, .solve_threads = 2, .job_threads = 1});
  const auto first = service.solve(req);
  const auto second = service.solve(req2);

  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.fp, second.fp);
  const auto cache = service.cache_stats();
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.hits, 1u);

  // Same matrix, different refinement target: the context is reusable
  // (same qsvt options), so it still hits.
  auto req3 = req;
  req3.id = "cache-3";
  req3.options.eps = 1e-6;
  const auto third = service.solve(req3);
  EXPECT_TRUE(third.cache_hit);

  // Different eps_l changes the fingerprint: miss.
  auto req4 = req;
  req4.id = "cache-4";
  req4.options.qsvt.eps_l = 1e-3;
  const auto fourth = service.solve(req4);
  EXPECT_FALSE(fourth.cache_hit);
}

TEST(SolverService, SubmitRunsJobsAsynchronously) {
  SolverService service({.cache_capacity = 4, .solve_threads = 2, .job_threads = 2});
  std::vector<std::future<SolveResult>> futures;
  for (int j = 0; j < 3; ++j) {
    futures.push_back(service.submit(
        make_request("async-" + std::to_string(j), 8, 2, 500 + j,
                     qsvt::Backend::kMatrixFunction)));
  }
  for (auto& f : futures) {
    const auto result = f.get();
    EXPECT_TRUE(result.all_converged) << result.id;
    EXPECT_EQ(result.solves.size(), 2u);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs, 3u);
  EXPECT_EQ(stats.rhs_solved, 6u);
}

TEST(SolverService, TelemetryIsPopulated) {
  const auto req = make_request("telemetry", 8, 2, 600);
  SolverService service({.cache_capacity = 2, .solve_threads = 2, .job_threads = 1});
  const auto result = service.solve(req);

  EXPECT_EQ(result.id, "telemetry");
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GE(result.prepare_seconds, 0.0);
  for (const auto& s : result.solves) {
    EXPECT_GT(s.solve_seconds, 0.0);
    EXPECT_GT(s.report.total_be_calls, 0u);
    // Per-job comm log: setup transfers plus one pair per iteration.
    const auto comm = hybrid::summarize(s.report.comm);
    EXPECT_GT(comm.setup_bytes, 0u);
    EXPECT_GT(comm.cpu_to_qpu_bytes, comm.qpu_to_cpu_bytes);
    EXPECT_EQ(comm.events, s.report.comm.events().size());
  }
}

TEST(SolverService, AdaptivePrecisionJobEndToEnd) {
  // The adaptive schedule reached through the service front door (as a
  // JSON submit would configure it): panelized lockstep batch, per-tier
  // telemetry in every report, and the per-precision counters accumulated
  // into the service stats the daemon exports as mpqls_precision_*.
  auto req = make_request("adaptive", 16, 4, 601);
  req.options.qsvt.precision = qsvt::QpuPrecision::kAdaptive;
  SolverService service({.cache_capacity = 2, .solve_threads = 2, .job_threads = 1,
                         .panel_width = 4});
  const auto result = service.solve(req);

  EXPECT_TRUE(result.all_converged);
  EXPECT_GE(result.panels_executed, 1u);  // adaptive jobs still panelize
  std::uint64_t half = 0, single = 0, dbl = 0, switches = 0;
  for (const auto& s : result.solves) {
    const auto& rep = s.report;
    EXPECT_LE(rep.scaled_residuals.back(), req.options.eps);
    EXPECT_TRUE(rep.dd128_verified);
    EXPECT_GE(rep.precision_switches, 1u);
    half += rep.tier_solves[solver::kTierHalf];
    single += rep.tier_solves[solver::kTierSingle];
    dbl += rep.tier_solves[solver::kTierDouble];
    switches += rep.precision_switches;
  }
  EXPECT_GT(half, 0u);    // the schedule started low
  EXPECT_GT(single, 0u);  // and escalated through single

  const auto stats = service.stats();
  EXPECT_EQ(stats.tier_solves_total[solver::kTierHalf], half);
  EXPECT_EQ(stats.tier_solves_total[solver::kTierSingle], single);
  EXPECT_EQ(stats.tier_solves_total[solver::kTierDouble], dbl);
  EXPECT_EQ(stats.precision_switches_total, switches);

  // Fixed-precision jobs land entirely in their tier.
  auto fixed = make_request("fixed", 16, 2, 602);
  (void)service.solve(fixed);
  const auto after = service.stats();
  EXPECT_EQ(after.tier_solves_total[solver::kTierHalf], half);  // unchanged
  EXPECT_GT(after.tier_solves_total[solver::kTierDouble], dbl);
}

TEST(SolverService, RejectsEmptyRequest) {
  SolverService service({.cache_capacity = 2, .solve_threads = 1, .job_threads = 1});
  SolveRequest req;
  req.A = linalg::Matrix<double>::identity(4);
  EXPECT_THROW(service.solve(req), contract_violation);
}

TEST(SolverService, JobRegistryLifecycleMatchesSynchronousSolve) {
  const auto req = make_request("registry", 8, 2, 700, qsvt::Backend::kMatrixFunction);
  SolverService service({.cache_capacity = 2, .solve_threads = 2, .job_threads = 1});

  const auto job_id = service.submit_job(req);
  ASSERT_TRUE(job_id.has_value());

  // Poll to terminal through the same snapshot API the daemon serves.
  std::optional<JobStatus> status;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    status = service.job_status(*job_id);
    ASSERT_TRUE(status.has_value());
    if (status->state == JobState::kDone || status->state == JobState::kFailed) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "job never finished";
    std::this_thread::yield();
  }
  ASSERT_EQ(status->state, JobState::kDone);
  ASSERT_NE(status->result, nullptr);
  EXPECT_TRUE(status->error.empty());
  EXPECT_GE(status->queue_seconds, 0.0);
  EXPECT_GT(status->run_seconds, 0.0);

  // Same request through the synchronous path: bitwise-identical x.
  SolverService reference({.cache_capacity = 2, .solve_threads = 1, .job_threads = 1});
  const auto want = reference.solve(req);
  ASSERT_EQ(status->result->solves.size(), want.solves.size());
  for (std::size_t k = 0; k < want.solves.size(); ++k) {
    const auto& got_x = status->result->solves[k].report.x;
    const auto& want_x = want.solves[k].report.x;
    ASSERT_EQ(got_x.size(), want_x.size());
    for (std::size_t i = 0; i < want_x.size(); ++i) EXPECT_EQ(got_x[i], want_x[i]);
  }

  const auto queue = service.queue_stats();
  EXPECT_EQ(queue.accepted, 1u);
  EXPECT_EQ(queue.done, 1u);
  EXPECT_EQ(queue.queued + queue.running, 0u);
  EXPECT_TRUE(service.wait_idle(std::chrono::milliseconds(100)));
  EXPECT_FALSE(service.job_status("job-999").has_value());
}

TEST(SolverService, AdmissionControlRejectsBeyondBound) {
  SolverService service({.cache_capacity = 2,
                         .solve_threads = 1,
                         .job_threads = 1,
                         .max_pending_jobs = 2});
  // Occupy the single job worker so accepted jobs stay queued.
  std::promise<void> release;
  auto blocker = service.run_on_job_pool([gate = release.get_future().share()] { gate.wait(); });

  const auto req = make_request("bounded", 8, 1, 800, qsvt::Backend::kMatrixFunction);
  const auto id1 = service.submit_job(req);
  const auto id2 = service.submit_job(req);
  ASSERT_TRUE(id1 && id2);
  EXPECT_NE(*id1, *id2);

  const auto rejected = service.submit_job(req);
  EXPECT_FALSE(rejected.has_value());  // bound reached: backpressure, not growth
  EXPECT_EQ(service.queue_stats().rejected, 1u);
  EXPECT_EQ(service.queue_stats().queued, 2u);

  release.set_value();
  blocker.get();
  ASSERT_TRUE(service.wait_idle(std::chrono::milliseconds(60000)));
  EXPECT_EQ(service.queue_stats().done, 2u);

  // Capacity is back: the retry is admitted.
  EXPECT_TRUE(service.submit_job(req).has_value());
  EXPECT_TRUE(service.wait_idle(std::chrono::milliseconds(60000)));
}

TEST(SolverService, FailedJobCarriesTheErrorString) {
  SolverService service({.cache_capacity = 2, .solve_threads = 1, .job_threads = 1});
  SolveRequest req;
  req.id = "singular";
  req.A = linalg::Matrix<double>(4, 4);  // all zeros: preparation throws
  req.rhs.push_back(linalg::Vector<double>(4, 1.0));
  req.options.qsvt.backend = qsvt::Backend::kMatrixFunction;

  const auto job_id = service.submit_job(req);
  ASSERT_TRUE(job_id.has_value());
  ASSERT_TRUE(service.wait_idle(std::chrono::milliseconds(60000)));

  const auto status = service.job_status(*job_id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_FALSE(status->error.empty());
  EXPECT_EQ(status->result, nullptr);
  EXPECT_EQ(service.queue_stats().failed, 1u);
}

TEST(SolverService, TerminalRecordsArePrunedOldestFirst) {
  SolverService service({.cache_capacity = 2,
                         .solve_threads = 1,
                         .job_threads = 1,
                         .max_pending_jobs = 0,  // unbounded admission
                         .retained_jobs = 2});
  const auto req = make_request("prune", 8, 1, 900, qsvt::Backend::kMatrixFunction);
  std::vector<std::string> ids;
  for (int j = 0; j < 4; ++j) ids.push_back(service.submit_job(req).value());
  ASSERT_TRUE(service.wait_idle(std::chrono::milliseconds(60000)));

  // Only the 2 newest terminal records survive; older polls see "gone".
  EXPECT_FALSE(service.job_status(ids[0]).has_value());
  EXPECT_FALSE(service.job_status(ids[1]).has_value());
  EXPECT_TRUE(service.job_status(ids[2]).has_value());
  EXPECT_TRUE(service.job_status(ids[3]).has_value());
}

TEST(SolverService, CancelQueuedJobSkipsTheWorkAndSettlesAccounting) {
  SolverService service({.cache_capacity = 2, .solve_threads = 1, .job_threads = 1});
  std::promise<void> release;
  auto blocker = service.run_on_job_pool([gate = release.get_future().share()] { gate.wait(); });

  const auto req = make_request("cancel-me", 8, 1, 900, qsvt::Backend::kMatrixFunction);
  const auto id = service.submit_job(req);
  ASSERT_TRUE(id.has_value());

  EXPECT_EQ(service.cancel_job(*id), CancelOutcome::kCancelled);
  EXPECT_EQ(service.cancel_job(*id), CancelOutcome::kNotCancellable);  // already terminal
  EXPECT_EQ(service.cancel_job("job-999999"), CancelOutcome::kNotFound);

  // The cancellation alone makes the registry idle — capacity freed
  // without the worker ever touching the job.
  EXPECT_TRUE(service.wait_idle(std::chrono::milliseconds(0)));
  release.set_value();
  blocker.get();

  const auto status = service.job_status(*id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kCancelled);
  EXPECT_EQ(status->result, nullptr);
  const auto stats = service.queue_stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.done, 0u);
  EXPECT_EQ(service.stats().jobs, 0u) << "a cancelled job must never run";
}

TEST(SolverService, CancelRunningOrDoneJobIsRefused) {
  SolverService service({.cache_capacity = 2, .solve_threads = 1, .job_threads = 1});
  // The deferred-construction hook runs on the job worker, so blocking in
  // it holds the job deterministically in kRunning.
  std::promise<void> started;
  std::promise<void> release;
  auto gate = release.get_future().share();
  const auto id = service.submit_job(std::function<SolveRequest()>([&started, gate] {
    started.set_value();
    gate.wait();
    return make_request("run-then-done", 8, 1, 901, qsvt::Backend::kMatrixFunction);
  }));
  ASSERT_TRUE(id.has_value());
  started.get_future().wait();

  EXPECT_EQ(service.job_status(*id)->state, JobState::kRunning);
  EXPECT_EQ(service.cancel_job(*id), CancelOutcome::kNotCancellable) << "running is too late";

  release.set_value();
  ASSERT_TRUE(service.wait_idle(std::chrono::milliseconds(60000)));
  EXPECT_EQ(service.cancel_job(*id), CancelOutcome::kNotCancellable) << "done is too late";
  EXPECT_EQ(service.job_status(*id)->state, JobState::kDone);
}

TEST(SolverService, ListJobsIsNewestFirstAndBounded) {
  SolverService service({.cache_capacity = 2, .solve_threads = 1, .job_threads = 1});
  const auto req = make_request("list", 8, 1, 902, qsvt::Backend::kMatrixFunction);
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(*service.submit_job(req));
  ASSERT_TRUE(service.wait_idle(std::chrono::milliseconds(60000)));

  const auto all = service.list_jobs(100);
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(all[i].job_id, ids[3 - i]) << "newest first";
    EXPECT_EQ(all[i].state, JobState::kDone);
  }

  const auto bounded = service.list_jobs(2);
  ASSERT_EQ(bounded.size(), 2u);
  EXPECT_EQ(bounded[0].job_id, ids[3]);
  EXPECT_EQ(bounded[1].job_id, ids[2]);
  EXPECT_TRUE(service.list_jobs(0).empty());
}

}  // namespace
}  // namespace mpqls::service
