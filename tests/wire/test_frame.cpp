// Binary wire codec tests: primitive round trips, frame-header validation
// (magic/version/tag/reserved/length), truncation at EVERY byte offset of
// a real request frame, request/result/matrix codec round trips, and
// field-for-field parity with the JSON codec — the invariant that lets
// the daemon accept either encoding on the same route.
#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "hybrid/comm.hpp"
#include "linalg/random_matrix.hpp"
#include "service/fingerprint.hpp"
#include "service/json_io.hpp"
#include "service/limits.hpp"
#include "wire/frame.hpp"

namespace mpqls::wire {
namespace {

// --- fixtures --------------------------------------------------------------

service::SolveRequest sample_request(std::size_t n = 6, std::size_t n_rhs = 3) {
  Xoshiro256 rng(11);
  service::SolveRequest req;
  req.id = "wire-roundtrip";
  req.A = linalg::random_with_cond(rng, n, 8.0);
  for (std::size_t k = 0; k < n_rhs; ++k) req.rhs.push_back(linalg::random_unit_vector(rng, n));
  // Non-default values in every options field the codec serializes, so a
  // field the decoder skipped or misordered cannot round-trip by luck.
  auto& o = req.options;
  o.eps = 3e-7;
  o.max_iterations = 123;
  o.use_brent = true;
  o.residual_precision = static_cast<solver::ResidualPrecision>(1);
  o.qsvt.backend = qsvt::Backend::kGateLevel;
  o.qsvt.precision = qsvt::QpuPrecision::kAdaptive;  // highest wire value (3)
  o.qsvt.poly_method = static_cast<qsvt::PolyMethod>(1);
  o.qsvt.encoding = static_cast<qsvt::EncodingKind>(1);
  o.qsvt.eps_l = 7e-3;
  o.qsvt.kappa = 42.5;
  o.qsvt.kappa_margin = 1.25;
  o.qsvt.shots = 100000;
  o.qsvt.seed = 99;
  o.qsvt.noise.depolarizing_per_gate = 1e-6;
  o.qsvt.noise.damping_per_gate = 2e-6;
  o.qsvt.qsp_options.max_fpi_iterations = 77;
  o.qsvt.qsp_options.max_newton_iterations = 33;
  o.qsvt.qsp_options.max_lbfgs_iterations = 11;
  o.qsvt.qsp_options.tolerance = 5e-13;
  o.qsvt.qsp_options.lbfgs_threshold = 0.75;
  o.qsvt.qsp_options.enable_newton = false;
  o.qsvt.qsp_options.enable_lbfgs = true;
  o.escalation.stall_ratio = 0.375;
  o.escalation.half_floor = 4e-3;
  o.escalation.single_floor = 6e-11;
  // Nonzero client trace id: the wire-v3 trailing field rides every
  // round trip below, and the JSON parity check carries it too.
  req.trace_id = trace::TraceId{0x0123456789ABCDEFull, 0x0FEDCBA987654321ull};
  return req;
}

service::SolveResult sample_result() {
  service::SolveResult result;
  result.id = "result-roundtrip";
  result.fp.matrix_hash = 0x1122334455667788ull;
  result.fp.options_hash = 0x99AABBCCDDEEFF00ull;
  result.cache_hit = true;
  result.all_converged = true;
  result.prepare_seconds = 0.125;
  result.total_seconds = 0.5;
  result.panels_executed = 3;
  result.panel_lanes = 17;
  for (int k = 0; k < 2; ++k) {
    service::RhsResult s;
    s.solve_seconds = 0.01 * (k + 1);
    auto& rep = s.report;
    rep.x = linalg::Vector<double>{1.0, -2.0, 3.5 + k};
    rep.scaled_residuals = {1e-1, 1e-4, 1e-9};
    rep.iterations = 3;
    rep.converged = true;
    rep.kappa = 12.0;
    rep.eps_l_requested = 1e-2;
    rep.eps_l_effective = 8e-3;
    rep.poly_degree = 41;
    rep.poly_scale = 0.9;
    rep.theoretical_iteration_bound = 64;
    rep.total_be_calls = 123 + k;
    rep.program_source_gates = 1000;
    rep.program_ops = 900;
    rep.program_depth = 500;
    rep.program_compile_seconds = 0.002;
    rep.tier_solves = {2, 3, 1};
    rep.tier_iterations = {1, 3, 1};
    rep.precision_switches = 2 + static_cast<std::uint64_t>(k);
    rep.dd128_verified = (k == 0);
    rep.dd128_final_residual = 3e-13;
    for (int i = 0; i < 3; ++i) {
      solver::SolveTelemetry t;
      t.mu = 0.5 + i;
      t.success_probability = 0.25 * (i + 1);
      t.be_calls = 10 + i;
      t.circuit_gates = 100 + i;
      rep.solves.push_back(t);
    }
    rep.comm.record(hybrid::Direction::kCpuToQpu, "phases", 256, 0);
    rep.comm.record(hybrid::Direction::kQpuToCpu, "solution", 4096, 1);
    result.solves.push_back(std::move(s));
  }
  return result;
}

void expect_options_eq(const solver::QsvtIrOptions& a, const solver::QsvtIrOptions& b) {
  EXPECT_EQ(a.eps, b.eps);
  EXPECT_EQ(a.max_iterations, b.max_iterations);
  EXPECT_EQ(a.use_brent, b.use_brent);
  EXPECT_EQ(a.residual_precision, b.residual_precision);
  EXPECT_EQ(a.qsvt.backend, b.qsvt.backend);
  EXPECT_EQ(a.qsvt.precision, b.qsvt.precision);
  EXPECT_EQ(a.qsvt.poly_method, b.qsvt.poly_method);
  EXPECT_EQ(a.qsvt.encoding, b.qsvt.encoding);
  EXPECT_EQ(a.qsvt.eps_l, b.qsvt.eps_l);
  EXPECT_EQ(a.qsvt.kappa, b.qsvt.kappa);
  EXPECT_EQ(a.qsvt.kappa_margin, b.qsvt.kappa_margin);
  EXPECT_EQ(a.qsvt.shots, b.qsvt.shots);
  EXPECT_EQ(a.qsvt.seed, b.qsvt.seed);
  EXPECT_EQ(a.qsvt.noise.depolarizing_per_gate, b.qsvt.noise.depolarizing_per_gate);
  EXPECT_EQ(a.qsvt.noise.damping_per_gate, b.qsvt.noise.damping_per_gate);
  EXPECT_EQ(a.qsvt.qsp_options.max_fpi_iterations, b.qsvt.qsp_options.max_fpi_iterations);
  EXPECT_EQ(a.qsvt.qsp_options.max_newton_iterations, b.qsvt.qsp_options.max_newton_iterations);
  EXPECT_EQ(a.qsvt.qsp_options.max_lbfgs_iterations, b.qsvt.qsp_options.max_lbfgs_iterations);
  EXPECT_EQ(a.qsvt.qsp_options.tolerance, b.qsvt.qsp_options.tolerance);
  EXPECT_EQ(a.qsvt.qsp_options.lbfgs_threshold, b.qsvt.qsp_options.lbfgs_threshold);
  EXPECT_EQ(a.qsvt.qsp_options.enable_newton, b.qsvt.qsp_options.enable_newton);
  EXPECT_EQ(a.qsvt.qsp_options.enable_lbfgs, b.qsvt.qsp_options.enable_lbfgs);
  EXPECT_EQ(a.escalation.stall_ratio, b.escalation.stall_ratio);
  EXPECT_EQ(a.escalation.half_floor, b.escalation.half_floor);
  EXPECT_EQ(a.escalation.single_floor, b.escalation.single_floor);
}

void expect_request_eq(const service::SolveRequest& a, const service::SolveRequest& b) {
  EXPECT_EQ(a.id, b.id);
  ASSERT_EQ(a.matrix().rows(), b.matrix().rows());
  ASSERT_EQ(a.matrix().cols(), b.matrix().cols());
  for (std::size_t i = 0; i < a.matrix().rows(); ++i) {
    for (std::size_t c = 0; c < a.matrix().cols(); ++c) {
      EXPECT_EQ(a.matrix()(i, c), b.matrix()(i, c)) << "A(" << i << "," << c << ")";
    }
  }
  ASSERT_EQ(a.rhs.size(), b.rhs.size());
  for (std::size_t k = 0; k < a.rhs.size(); ++k) {
    ASSERT_EQ(a.rhs[k].size(), b.rhs[k].size());
    for (std::size_t i = 0; i < a.rhs[k].size(); ++i) EXPECT_EQ(a.rhs[k][i], b.rhs[k][i]);
  }
  expect_options_eq(a.options, b.options);
  EXPECT_EQ(a.trace_id, b.trace_id);
}

void expect_result_eq(const service::SolveResult& a, const service::SolveResult& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.fp.matrix_hash, b.fp.matrix_hash);
  EXPECT_EQ(a.fp.options_hash, b.fp.options_hash);
  EXPECT_EQ(a.cache_hit, b.cache_hit);
  EXPECT_EQ(a.all_converged, b.all_converged);
  EXPECT_EQ(a.prepare_seconds, b.prepare_seconds);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.panels_executed, b.panels_executed);
  EXPECT_EQ(a.panel_lanes, b.panel_lanes);
  ASSERT_EQ(a.solves.size(), b.solves.size());
  for (std::size_t k = 0; k < a.solves.size(); ++k) {
    const auto& ra = a.solves[k].report;
    const auto& rb = b.solves[k].report;
    EXPECT_EQ(a.solves[k].solve_seconds, b.solves[k].solve_seconds);
    ASSERT_EQ(ra.x.size(), rb.x.size());
    for (std::size_t i = 0; i < ra.x.size(); ++i) EXPECT_EQ(ra.x[i], rb.x[i]);
    EXPECT_EQ(ra.scaled_residuals, rb.scaled_residuals);
    EXPECT_EQ(ra.iterations, rb.iterations);
    EXPECT_EQ(ra.converged, rb.converged);
    EXPECT_EQ(ra.kappa, rb.kappa);
    EXPECT_EQ(ra.eps_l_requested, rb.eps_l_requested);
    EXPECT_EQ(ra.eps_l_effective, rb.eps_l_effective);
    EXPECT_EQ(ra.poly_degree, rb.poly_degree);
    EXPECT_EQ(ra.poly_scale, rb.poly_scale);
    EXPECT_EQ(ra.theoretical_iteration_bound, rb.theoretical_iteration_bound);
    EXPECT_EQ(ra.total_be_calls, rb.total_be_calls);
    EXPECT_EQ(ra.program_source_gates, rb.program_source_gates);
    EXPECT_EQ(ra.program_ops, rb.program_ops);
    EXPECT_EQ(ra.program_depth, rb.program_depth);
    EXPECT_EQ(ra.program_compile_seconds, rb.program_compile_seconds);
    EXPECT_EQ(ra.tier_solves, rb.tier_solves);
    EXPECT_EQ(ra.tier_iterations, rb.tier_iterations);
    EXPECT_EQ(ra.precision_switches, rb.precision_switches);
    EXPECT_EQ(ra.dd128_verified, rb.dd128_verified);
    EXPECT_EQ(ra.dd128_final_residual, rb.dd128_final_residual);
    ASSERT_EQ(ra.solves.size(), rb.solves.size());
    for (std::size_t i = 0; i < ra.solves.size(); ++i) {
      EXPECT_EQ(ra.solves[i].mu, rb.solves[i].mu);
      EXPECT_EQ(ra.solves[i].success_probability, rb.solves[i].success_probability);
      EXPECT_EQ(ra.solves[i].be_calls, rb.solves[i].be_calls);
      EXPECT_EQ(ra.solves[i].circuit_gates, rb.solves[i].circuit_gates);
    }
    ASSERT_EQ(ra.comm.events().size(), rb.comm.events().size());
    for (std::size_t i = 0; i < ra.comm.events().size(); ++i) {
      EXPECT_EQ(ra.comm.events()[i].direction, rb.comm.events()[i].direction);
      EXPECT_EQ(ra.comm.events()[i].payload, rb.comm.events()[i].payload);
      EXPECT_EQ(ra.comm.events()[i].bytes, rb.comm.events()[i].bytes);
      EXPECT_EQ(ra.comm.events()[i].iteration, rb.comm.events()[i].iteration);
    }
  }
}

// --- primitives ------------------------------------------------------------

TEST(WirePrimitives, IntegersStringsAndArraysRoundTrip) {
  WireWriter w;
  const std::vector<double> doubles = {0.0, -1.5, 1e300, -1e-300};
  w.u8(0xAB).u16(0xCDEF).u32(0xDEADBEEF).u64(0x0123456789ABCDEFull).i64(-42).f64(-0.125);
  w.str("hello");
  w.str("");
  w.f64_array(doubles.data(), doubles.size());

  const std::string buf = w.take();  // WireReader holds a view, not a copy
  WireReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), -0.125);
  EXPECT_EQ(r.str(16), "hello");
  EXPECT_EQ(r.str(16), "");
  std::vector<double> back;
  r.f64_array(back, 16);
  EXPECT_EQ(back, doubles);
  EXPECT_NO_THROW(r.expect_done());
}

TEST(WirePrimitives, ReadsAreBoundsCheckedAndCapped) {
  {
    WireReader r(std::string_view("\x01", 1));
    EXPECT_NO_THROW(r.u8());
    EXPECT_THROW(r.u8(), WireError);
  }
  {
    // Declared string length beyond the cap dies at the check, before any
    // allocation or copy.
    WireWriter w;
    w.str("abcdef");
    const std::string buf = w.take();
    WireReader r(buf);
    EXPECT_THROW(r.str(3), WireError);
  }
  {
    // Declared array count beyond the remaining bytes.
    WireWriter w;
    w.u64(1000);  // promises 1000 doubles, delivers none
    const std::string buf = w.take();
    WireReader r(buf);
    std::vector<double> out;
    EXPECT_THROW(r.f64_array(out, 2000), WireError);
  }
  {
    WireReader r(std::string_view("xy", 2));
    r.u8();
    EXPECT_THROW(r.expect_done(), WireError);  // trailing byte
  }
}

// --- frame header ----------------------------------------------------------

TEST(WireFrame, SealAndOpenRoundTrip) {
  const std::string frame = seal_frame(FrameTag::kMatrix, "payload!");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 8);
  const FrameView view = open_frame(frame);
  EXPECT_EQ(view.tag, FrameTag::kMatrix);
  EXPECT_EQ(view.payload, "payload!");
  EXPECT_EQ(peek_tag(frame), FrameTag::kMatrix);
}

TEST(WireFrame, HeaderViolationsThrowWithOffsets) {
  const std::string good = seal_frame(FrameTag::kSolveRequest, "x");

  // Truncated header: every prefix shorter than 16 bytes.
  for (std::size_t len = 0; len < kFrameHeaderBytes; ++len) {
    EXPECT_THROW(open_frame(good.substr(0, len)), WireError) << "prefix " << len;
  }

  auto corrupted = [&good](std::size_t at, char value) {
    std::string bad = good;
    bad[at] = value;
    return bad;
  };
  EXPECT_THROW(open_frame(corrupted(0, 'X')), WireError);   // magic
  EXPECT_THROW(open_frame(corrupted(4, 9)), WireError);     // version
  EXPECT_THROW(open_frame(corrupted(5, 0)), WireError);     // tag zero
  EXPECT_THROW(open_frame(corrupted(5, 5)), WireError);     // tag unknown
  EXPECT_THROW(open_frame(corrupted(5, '\xFF')), WireError);
  EXPECT_THROW(open_frame(corrupted(6, 1)), WireError);     // reserved

  // Declared/actual length disagreement, both directions.
  EXPECT_THROW(open_frame(good.substr(0, good.size() - 1)), WireError);
  EXPECT_THROW(open_frame(good + "z"), WireError);

  // A zero-length payload is never legal.
  EXPECT_THROW(open_frame(seal_frame(FrameTag::kSolveRequest, "")), WireError);

  // The offset in the error is machine-usable.
  try {
    open_frame(corrupted(5, 5));
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_EQ(e.offset(), 5u);
    EXPECT_NE(std::string(e.what()).find("unknown frame tag"), std::string::npos);
  }
}

TEST(WireFrame, ContentTypeMatching) {
  EXPECT_TRUE(is_frame_content_type("application/x-mpqls-frame"));
  EXPECT_TRUE(is_frame_content_type("Application/X-MPQLS-Frame"));
  EXPECT_TRUE(is_frame_content_type("  application/x-mpqls-frame  "));
  EXPECT_TRUE(is_frame_content_type("application/x-mpqls-frame; v=1"));
  EXPECT_FALSE(is_frame_content_type("application/json"));
  EXPECT_FALSE(is_frame_content_type("application/x-mpqls-frame2"));
  EXPECT_FALSE(is_frame_content_type(""));
}

// --- request codec ---------------------------------------------------------

TEST(WireRequest, InlineMatrixRoundTripsAndMatchesJsonCodec) {
  const auto req = sample_request();
  const std::string frame = encode_request(req);
  const auto decoded = decode_request(frame);
  expect_request_eq(req, decoded);
  EXPECT_EQ(decoded.matrix_ref, 0u);

  // Parity: the JSON round trip of the same request decodes identically.
  const auto via_json = service::request_from_json(service::to_json(req));
  expect_request_eq(decoded, via_json);

  // Admission peeks agree with the payload.
  EXPECT_EQ(peek_request_matrix_ref(frame), std::nullopt);
  EXPECT_EQ(request_affinity_key(frame), service::hash_matrix(req.A));
}

TEST(WireRequest, ByRefFormResolvesThroughTheCallback) {
  auto req = sample_request();
  const auto stored = std::make_shared<const linalg::Matrix<double>>(req.A);
  req.matrix_ref = service::hash_matrix(*stored);
  const std::string frame = encode_request(req);
  EXPECT_LT(frame.size(), 1024u);  // the matrix did not travel

  // Unresolved decode: ref preserved, no matrix, RHS mutually consistent.
  const auto unresolved = decode_request(frame);
  EXPECT_EQ(unresolved.matrix_ref, req.matrix_ref);
  EXPECT_EQ(unresolved.matrix().rows(), 0u);
  ASSERT_EQ(unresolved.rhs.size(), req.rhs.size());

  // Resolved decode: the store entry is shared, not copied.
  std::uint64_t asked = 0;
  const auto resolved = decode_request(frame, [&](std::uint64_t ref) {
    asked = ref;
    return stored;
  });
  EXPECT_EQ(asked, req.matrix_ref);
  EXPECT_EQ(resolved.shared_A.get(), stored.get());
  expect_request_eq(resolved, sample_request());

  // A resolver miss surfaces as an error, not a zero-dim solve.
  EXPECT_THROW(decode_request(frame, [](std::uint64_t) {
    return std::shared_ptr<const linalg::Matrix<double>>();
  }), std::exception);

  // Peeks route by the ref itself.
  EXPECT_EQ(peek_request_matrix_ref(frame), req.matrix_ref);
  EXPECT_EQ(request_affinity_key(frame), req.matrix_ref);
}

TEST(WireRequest, TruncationAtEveryOffsetThrowsWireError) {
  const std::string frame = encode_request(sample_request(4, 2));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    // Re-seal the prefix payload under a correct header so the test digs
    // past the header's declared-length check into the payload decoders.
    EXPECT_THROW(decode_request(frame.substr(0, len)), WireError) << "prefix " << len;
    if (len > kFrameHeaderBytes) {
      const std::string resealed =
          seal_frame(FrameTag::kSolveRequest,
                     std::string(frame.substr(kFrameHeaderBytes, len - kFrameHeaderBytes)));
      EXPECT_THROW(decode_request(resealed), WireError) << "resealed " << len;
    }
  }
  // Trailing garbage after a complete payload is rejected too.
  const std::string padded = seal_frame(
      FrameTag::kSolveRequest, std::string(frame.substr(kFrameHeaderBytes)) + "tail");
  EXPECT_THROW(decode_request(padded), WireError);
}

TEST(WireRequest, PayloadCapsAreEnforced) {
  // Zero right-hand sides.
  {
    auto req = sample_request(4, 1);
    std::string frame = encode_request(req);
    // The rhs count u32 sits vector + trace-trailer bytes from the end:
    // count(4) + u64 len(8) + 4 doubles(32) + v3 trace id(16) = 60.
    const std::size_t count_at = frame.size() - 60;
    std::memset(frame.data() + count_at, 0, 4);
    // Re-seal with the payload truncated after the count so lengths agree.
    const std::string payload(frame.substr(kFrameHeaderBytes, count_at + 4 - kFrameHeaderBytes));
    EXPECT_THROW(decode_request(seal_frame(FrameTag::kSolveRequest, payload)), WireError);
  }
  // A matrix dimension over the service cap.
  {
    WireWriter w;
    w.str("big");
    w.u8(0);  // inline matrix
    w.u32(static_cast<std::uint32_t>(service::kMaxDimension + 1)).u32(4);
    w.u64(0);
    EXPECT_THROW(decode_request(seal_frame(FrameTag::kSolveRequest, w.take())), WireError);
  }
  // Mismatched rhs dimensions.
  {
    auto req = sample_request(4, 2);
    req.rhs[1] = linalg::Vector<double>{1.0, 2.0, 3.0};  // 3 != 4
    EXPECT_THROW(decode_request(encode_request(req)), WireError);
  }
}

// --- wire v3 trace field ---------------------------------------------------

TEST(WireTrace, PeekAgreesWithFullDecode) {
  const auto req = sample_request(4, 2);
  const std::string frame = encode_request(req);
  EXPECT_EQ(peek_request_trace(frame), req.trace_id);
  EXPECT_EQ(decode_request(frame).trace_id, req.trace_id);

  // A request without a client trace id still carries the (zero) field on
  // the wire — both reads report it as absent.
  auto plain_req = req;
  plain_req.trace_id = trace::TraceId{};
  const std::string plain = encode_request(plain_req);
  EXPECT_EQ(plain.size(), frame.size());  // the field is fixed-width
  EXPECT_TRUE(peek_request_trace(plain).zero());
  EXPECT_TRUE(decode_request(plain).trace_id.zero());

  // The peek refuses non-request frames instead of misreading bytes.
  EXPECT_THROW(peek_request_trace(encode_matrix(linalg::Matrix<double>(2, 2))), WireError);
}

TEST(WireTrace, V2FramesDecodeWithZeroTraceId) {
  const auto req = sample_request(4, 2);
  const std::string v3 = encode_request(req);

  // Rebuild the frame a v2 sender would have produced: same payload minus
  // the 16-byte trailer, version byte (offset 4) stamped 2.
  const std::string bare_payload(
      v3.substr(kFrameHeaderBytes, v3.size() - kFrameHeaderBytes - 16));
  std::string v2 = seal_frame(FrameTag::kSolveRequest, bare_payload);
  v2[4] = 2;
  const auto decoded = decode_request(v2);
  EXPECT_TRUE(decoded.trace_id.zero());
  EXPECT_EQ(decoded.id, req.id);
  ASSERT_EQ(decoded.rhs.size(), req.rhs.size());
  expect_options_eq(decoded.options, req.options);
  EXPECT_TRUE(peek_request_trace(v2).zero());

  // A frame stamped v3 but missing the trailer is truncated, not legacy.
  EXPECT_THROW(decode_request(seal_frame(FrameTag::kSolveRequest, bare_payload)), WireError);

  // Versions outside [kWireMinVersion, kWireVersion] are refused outright:
  // v1 predates the format, v4 would mean fields we cannot know about.
  std::string v1 = v2;
  v1[4] = 1;
  EXPECT_THROW(decode_request(v1), WireError);
  std::string v4 = v3;
  v4[4] = 4;
  EXPECT_THROW(decode_request(v4), WireError);
}

// --- result codec ----------------------------------------------------------

TEST(WireResult, RoundTripsAndMatchesJsonCodec) {
  const auto result = sample_result();
  const auto decoded = decode_result(encode_result(result));
  expect_result_eq(result, decoded);

  const auto via_json = service::result_from_json(service::to_json(result));
  expect_result_eq(decoded, via_json);
}

TEST(WireResult, TruncationThrowsNotCrashes) {
  const std::string frame = encode_result(sample_result());
  const std::string payload(frame.substr(kFrameHeaderBytes));
  for (std::size_t len = 0; len < payload.size(); len += 7) {
    const std::string resealed = seal_frame(FrameTag::kSolveResult, payload.substr(0, len));
    EXPECT_THROW(decode_result(resealed), WireError) << "resealed " << len;
  }
  // Wrong tag for the decoder.
  EXPECT_THROW(decode_result(encode_matrix(linalg::Matrix<double>(2, 2))), WireError);
}

// --- shard exchange codec --------------------------------------------------

TEST(WireShardExchange, RoundTripsOpaquePayload) {
  // The payload is raw amplitude bytes — opaque to the codec, including
  // embedded NULs and non-UTF8 bytes.
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  const std::string frame = encode_shard_exchange(0xDEADBEEFCAFEF00Dull, 3, 41, payload);
  EXPECT_EQ(peek_tag(frame), FrameTag::kShardExchange);

  const ShardExchange ex = decode_shard_exchange(frame);
  EXPECT_EQ(ex.group, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(ex.from, 3u);
  EXPECT_EQ(ex.seq, 41u);
  EXPECT_EQ(ex.payload, payload);

  // An empty block is legal (a rank can own zero amplitudes of a slice).
  const ShardExchange empty = decode_shard_exchange(encode_shard_exchange(1, 0, 0, ""));
  EXPECT_TRUE(empty.payload.empty());
}

TEST(WireShardExchange, LengthLiesAndTruncationThrow) {
  const std::string frame = encode_shard_exchange(7, 1, 2, "abcdefgh");
  const std::string payload(frame.substr(kFrameHeaderBytes));

  // Truncating the payload at every offset dies in the decoder, not later.
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::string resealed =
        seal_frame(FrameTag::kShardExchange, payload.substr(0, len));
    EXPECT_THROW(decode_shard_exchange(resealed), WireError) << "resealed " << len;
  }
  // Trailing garbage makes the declared length disagree with the frame.
  EXPECT_THROW(
      decode_shard_exchange(seal_frame(FrameTag::kShardExchange, payload + "z")),
      WireError);
  // Wrong tag for the decoder.
  EXPECT_THROW(decode_shard_exchange(encode_matrix(linalg::Matrix<double>(2, 2))), WireError);
}

// --- matrix codec ----------------------------------------------------------

TEST(WireMatrix, RoundTripAndStreamedHash) {
  Xoshiro256 rng(5);
  const auto A = linalg::random_with_cond(rng, 9, 4.0);
  const std::string frame = encode_matrix(A);
  const auto B = decode_matrix(frame);
  ASSERT_EQ(B.rows(), A.rows());
  ASSERT_EQ(B.cols(), A.cols());
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (std::size_t c = 0; c < A.cols(); ++c) EXPECT_EQ(A(i, c), B(i, c));
  }
  // The streamed hash equals the decoded-matrix hash — the invariant the
  // coordinator relies on to route uploads without materializing them.
  EXPECT_EQ(hash_matrix_frame(frame), service::hash_matrix(A));

  // Element-count lies are caught before any allocation.
  WireWriter w;
  w.u32(3).u32(3).u64(4);
  EXPECT_THROW(decode_matrix(seal_frame(FrameTag::kMatrix, w.take())), WireError);
}

}  // namespace
}  // namespace mpqls::wire
