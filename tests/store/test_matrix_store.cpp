// Content-addressed matrix store tests: content addressing + idempotent
// uploads, hit/miss/eviction accounting, LRU order under byte pressure
// (the capacity floor guarantees one max-dimension matrix always fits, so
// eviction tests use wide 1xN matrices to cross the floor cheaply), and a
// multithreaded hammer proving an evicted entry stays valid for holders —
// the shared_ptr ownership rule that lets the daemon resolve a ref at
// admission and solve it after an arbitrary queue delay.
#include "store/matrix_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "service/fingerprint.hpp"
#include "service/limits.hpp"

namespace mpqls::store {
namespace {

/// A 1 x n matrix whose content (and therefore hash) is keyed by `tag`.
linalg::Matrix<double> wide_matrix(std::size_t n, double tag) {
  linalg::Matrix<double> A(1, n);
  for (std::size_t c = 0; c < n; ++c) A(0, c) = tag + static_cast<double>(c);
  return A;
}

// The floor the constructor clamps to: one kMaxDimension^2 matrix.
constexpr std::size_t kFloorBytes =
    service::kMaxDimension * service::kMaxDimension * sizeof(double);

TEST(MatrixStore, ContentAddressingAndIdempotentPut) {
  MatrixStore store(1u << 30);
  const auto A = wide_matrix(64, 1.0);
  const std::uint64_t expected = service::hash_matrix(A);

  EXPECT_EQ(store.put(A), expected);
  EXPECT_EQ(store.put(A), expected);  // re-upload: recency only
  const auto s = store.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.puts, 2u);
  EXPECT_EQ(s.bytes, 64 * sizeof(double));
  EXPECT_TRUE(store.contains(expected));

  // Different content, different address.
  EXPECT_NE(store.put(wide_matrix(64, 2.0)), expected);
  EXPECT_EQ(store.stats().entries, 2u);
}

TEST(MatrixStore, GetCountsHitsAndMissesContainsStaysNeutral) {
  MatrixStore store(1u << 30);
  const auto ref = store.put(wide_matrix(8, 3.0));

  EXPECT_EQ(store.get(0xDEAD), nullptr);
  ASSERT_NE(store.get(ref), nullptr);
  EXPECT_TRUE(store.contains(ref));
  EXPECT_FALSE(store.contains(0xDEAD));

  const auto s = store.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);  // contains() did not count
}

TEST(MatrixStore, EvictsLeastRecentlyReferencedOverCapacity) {
  MatrixStore store(0);  // clamps to the floor
  ASSERT_EQ(store.stats().capacity_bytes, kFloorBytes);

  // Three uploads of ~40% capacity each: the third pushes bytes over and
  // must evict exactly the least recently referenced entry.
  const std::size_t n = (kFloorBytes / sizeof(double)) * 2 / 5;
  const auto a = store.put(wide_matrix(n, 1.0));
  const auto b = store.put(wide_matrix(n, 2.0));
  ASSERT_NE(store.get(a), nullptr);  // refresh a: b is now LRU
  const auto c = store.put(wide_matrix(n, 3.0));

  EXPECT_TRUE(store.contains(a));
  EXPECT_FALSE(store.contains(b));
  EXPECT_TRUE(store.contains(c));
  const auto s = store.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, s.capacity_bytes);
}

TEST(MatrixStore, OversizedUploadStaysUntilSomethingNewerArrives) {
  MatrixStore store(0);
  // Over capacity on its own — still admitted and resident (evicting the
  // only entry in the same call would make large uploads useless).
  const std::size_t n = kFloorBytes / sizeof(double) + 16;
  const auto big = store.put(wide_matrix(n, 9.0));
  EXPECT_TRUE(store.contains(big));
  EXPECT_EQ(store.stats().evictions, 0u);

  // The next upload displaces it.
  const auto small = store.put(wide_matrix(64, 10.0));
  EXPECT_FALSE(store.contains(big));
  EXPECT_TRUE(store.contains(small));
}

TEST(MatrixStore, EvictionNeverInvalidatesAHeldEntry) {
  MatrixStore store(0);
  const std::size_t n = (kFloorBytes / sizeof(double)) / 2 + 1024;

  const auto ref = store.put(wide_matrix(n, 1.0));
  MatrixStore::MatrixPtr held = store.get(ref);
  ASSERT_NE(held, nullptr);

  // Push the held entry out.
  store.put(wide_matrix(n, 2.0));
  store.put(wide_matrix(n, 3.0));
  EXPECT_FALSE(store.contains(ref));
  EXPECT_GE(store.stats().evictions, 1u);

  // The holder's view is untouched — same content, fully readable.
  ASSERT_EQ(held->cols(), n);
  EXPECT_EQ((*held)(0, 0), 1.0);
  EXPECT_EQ((*held)(0, n - 1), 1.0 + static_cast<double>(n - 1));
}

TEST(MatrixStore, ConcurrentPutGetHammerUnderConstantEviction) {
  MatrixStore store(0);
  // Nine distinct matrices at 1/8 capacity each: the working set exceeds
  // the budget by one entry, so eviction churns for the whole run while
  // every thread reads through pointers it resolved before the churn.
  const std::size_t n = (kFloorBytes / sizeof(double)) / 8;
  constexpr int kMatrices = 9;
  std::vector<linalg::Matrix<double>> sources;
  std::vector<std::uint64_t> refs;
  for (int k = 0; k < kMatrices; ++k) {
    sources.push_back(wide_matrix(n, 100.0 * (k + 1)));
    refs.push_back(service::hash_matrix(sources.back()));
  }

  std::atomic<bool> corrupted{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 24; ++iter) {
        const int k = (t + iter) % kMatrices;
        store.put(refs[k], linalg::Matrix<double>(sources[k]));
        MatrixStore::MatrixPtr got = store.get(refs[k]);
        if (!got) continue;  // raced with an eviction: a legal miss
        // Spot-check content at both ends while other threads evict.
        if ((*got)(0, 0) != 100.0 * (k + 1) ||
            (*got)(0, n - 1) != 100.0 * (k + 1) + static_cast<double>(n - 1)) {
          corrupted.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_FALSE(corrupted.load());
  const auto s = store.stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_LE(s.entries, static_cast<std::size_t>(kMatrices));
  // Accounting stayed consistent through the churn.
  EXPECT_LE(s.bytes, s.capacity_bytes + n * sizeof(double));
}

TEST(MatrixStore, ClearDropsEverything) {
  MatrixStore store(1u << 30);
  store.put(wide_matrix(32, 1.0));
  store.put(wide_matrix(32, 2.0));
  store.clear();
  const auto s = store.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
}

TEST(MatrixRefMissTest, CarriesTheRefAndAHexMessage) {
  const MatrixRefMiss miss(0xABCDEF0123456789ull);
  EXPECT_EQ(miss.ref(), 0xABCDEF0123456789ull);
  EXPECT_NE(std::string(miss.what()).find(service::u64_hex(0xABCDEF0123456789ull)),
            std::string::npos);
}

}  // namespace
}  // namespace mpqls::store
