#include <gtest/gtest.h>

#include <cmath>

#include "blockenc/arith/adders.hpp"
#include "blockenc/dense_embedding.hpp"
#include "blockenc/fable.hpp"
#include "blockenc/lcu.hpp"
#include "blockenc/tridiagonal.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/jacobi_svd.hpp"
#include "linalg/random_matrix.hpp"
#include "qsim/statevector.hpp"

namespace mpqls::blockenc {
namespace {

using linalg::Matrix;

double block_error(const BlockEncoding& be, const Matrix<double>& A) {
  const auto block = encoded_block(be);
  double worst = 0.0;
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (std::size_t j = 0; j < A.cols(); ++j) {
      worst = std::fmax(worst, std::abs(block(i, j) - std::complex<double>(A(i, j))));
    }
  }
  return worst;
}

void expect_unitary(const BlockEncoding& be) {
  const auto U = qsim::circuit_unitary(be.circuit);
  const auto UhU = linalg::gemm(linalg::transpose(U), U);
  EXPECT_LT(linalg::max_abs_diff(UhU, Matrix<qsim::c64>::identity(U.rows())), 1e-11);
}

TEST(DenseEmbedding, EncodesRandomMatrix) {
  Xoshiro256 rng(1);
  const auto A = linalg::random_with_cond(rng, 8, 10.0);
  const auto be = dense_embedding(A);
  EXPECT_EQ(be.n_anc, 1u);
  EXPECT_NEAR(be.alpha, 1.0, 1e-9);  // ||A||_2 = 1 by construction
  EXPECT_LT(block_error(be, A), 1e-10);
  expect_unitary(be);
}

TEST(DenseEmbedding, RespectsCustomAlpha) {
  Xoshiro256 rng(2);
  const auto A = linalg::random_with_cond(rng, 4, 5.0);
  const auto be = dense_embedding(A, 3.0);
  EXPECT_DOUBLE_EQ(be.alpha, 3.0);
  EXPECT_LT(block_error(be, A), 1e-10);
  expect_unitary(be);
}

TEST(DenseEmbedding, NonSymmetricMatrix) {
  Matrix<double> A{{0.1, 0.7, 0.0, 0.0},
                   {-0.3, 0.2, 0.1, 0.0},
                   {0.0, 0.4, -0.2, 0.3},
                   {0.2, 0.0, 0.0, 0.5}};
  const auto be = dense_embedding(A);
  EXPECT_LT(block_error(be, A), 1e-10);
  expect_unitary(be);
}

TEST(PauliDecompose, ExactReconstruction) {
  Xoshiro256 rng(3);
  const auto A = linalg::random_gaussian(rng, 8, 8);
  const auto terms = tree_pauli_decompose(A);
  const auto R = pauli_reconstruct(terms, 3);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(R(i, j).real(), A(i, j), 1e-12);
      EXPECT_NEAR(R(i, j).imag(), 0.0, 1e-12);
    }
  }
}

TEST(PauliDecompose, KnownSingleTerms) {
  // X on qubit 0 of 2 qubits: matrix I (x) X (label "IX").
  const auto IX = pauli_matrix(PauliString{{'X', 'I'}});
  const auto terms = tree_pauli_decompose(IX);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0].string.label(), "IX");
  EXPECT_NEAR(std::abs(terms[0].coefficient - 1.0), 0.0, 1e-14);
}

TEST(PauliDecompose, PruningDropsSparseStructure) {
  // Diagonal matrix: only I/Z strings survive. For the linear ramp
  // diag(1..8) the Walsh-Hadamard spectrum has exactly the constant and
  // the three single-bit masks, i.e. 4 terms — the X/Y subtrees (and the
  // zero Z-coefficients) are pruned away exactly.
  Matrix<double> A(8, 8);
  for (std::size_t i = 0; i < 8; ++i) A(i, i) = static_cast<double>(i + 1);
  const auto terms = tree_pauli_decompose(A);
  EXPECT_EQ(terms.size(), 4u);
  for (const auto& t : terms) {
    for (char c : t.string.ops) EXPECT_TRUE(c == 'I' || c == 'Z');
    EXPECT_LE(t.string.weight(), 1u);
  }
}

TEST(PauliDecompose, ToleranceReducesTermCount) {
  Xoshiro256 rng(4);
  auto A = linalg::random_gaussian(rng, 8, 8);
  // One dominant entry, everything else small.
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) A(i, j) *= 1e-4;
  }
  A(0, 0) = 1.0;
  const auto exact = tree_pauli_decompose(A);
  const auto pruned = tree_pauli_decompose(A, 1e-2);
  EXPECT_LT(pruned.size(), exact.size());
}

TEST(LcuPauli, EncodesSmallMatrix) {
  Xoshiro256 rng(5);
  Matrix<double> A = linalg::random_gaussian(rng, 4, 4);
  // Normalize to spectral norm <= 1 for a sane alpha.
  const double nrm = linalg::norm2(A);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) A(i, j) /= nrm;
  }
  const auto be = lcu_block_encoding(A);
  EXPECT_EQ(be.method, "lcu-pauli");
  EXPECT_LT(block_error(be, A), 1e-10);
  expect_unitary(be);
  // alpha = sum |c_j| >= ||A||_2 = 1.
  EXPECT_GE(be.alpha, 1.0 - 1e-9);
}

TEST(LcuPauli, SingleTermIdentity) {
  std::vector<PauliTerm> terms;
  terms.push_back({PauliString{{'I', 'I'}}, 0.5});
  const auto be = lcu_block_encoding(terms, 2);
  Matrix<double> expected = Matrix<double>::identity(4);
  for (std::size_t i = 0; i < 4; ++i) expected(i, i) = 0.5;
  EXPECT_LT(block_error(be, expected), 1e-12);
}

TEST(LcuPauli, NegativeAndImaginaryCoefficients) {
  // A = 0.4 X - 0.3 Z on one qubit.
  std::vector<PauliTerm> terms;
  terms.push_back({PauliString{{'X'}}, 0.4});
  terms.push_back({PauliString{{'Z'}}, -0.3});
  const auto be = lcu_block_encoding(terms, 1);
  Matrix<double> expected{{-0.3, 0.4}, {0.4, 0.3}};
  EXPECT_LT(block_error(be, expected), 1e-12);

  // Purely imaginary coefficient on Y gives a real matrix contribution.
  std::vector<PauliTerm> terms2;
  terms2.push_back({PauliString{{'Y'}}, std::complex<double>(0, 0.5)});
  const auto be2 = lcu_block_encoding(terms2, 1);
  Matrix<double> expected2{{0, 0.5}, {-0.5, 0}};
  EXPECT_LT(block_error(be2, expected2), 1e-12);
}

TEST(Fable, ExactEncodingAtZeroThreshold) {
  Xoshiro256 rng(6);
  Matrix<double> A(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) A(i, j) = rng.uniform(-1.0, 1.0);
  }
  const auto enc = fable_block_encoding(A);
  EXPECT_DOUBLE_EQ(enc.be.alpha, 4.0);
  EXPECT_LT(block_error(enc.be, A), 1e-10);
  expect_unitary(enc.be);
  EXPECT_EQ(enc.rotations_kept, enc.rotations_total);
}

TEST(Fable, ThresholdPrunesAndBoundsError) {
  Xoshiro256 rng(7);
  Matrix<double> A(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) A(i, j) = (i == j) ? 0.9 : rng.uniform(-0.02, 0.02);
  }
  const auto exact = fable_block_encoding(A, 0.0);
  const auto pruned = fable_block_encoding(A, 0.05);
  EXPECT_LT(pruned.rotations_kept, exact.rotations_kept / 2);
  // Error stays modest: threshold * N is the crude FABLE bound.
  EXPECT_LT(block_error(pruned.be, A), 0.05 * 8);
}

TEST(Adders, IncrementPermutesBasisStates) {
  for (std::uint32_t n : {1u, 2u, 3u, 5u}) {
    qsim::Circuit c(n);
    std::vector<std::uint32_t> q(n);
    for (std::uint32_t i = 0; i < n; ++i) q[i] = i;
    append_increment(c, q);
    const auto U = qsim::circuit_unitary(c);
    const std::size_t N = std::size_t{1} << n;
    for (std::size_t j = 0; j < N; ++j) {
      EXPECT_NEAR(std::abs(U((j + 1) % N, j)), 1.0, 1e-14) << "n=" << n << " j=" << j;
    }
  }
}

TEST(Adders, CarryIncrementMatchesCascade) {
  for (std::uint32_t n : {3u, 4u, 5u}) {
    const std::uint32_t n_carry = n - 2;
    qsim::Circuit c(n + n_carry);
    std::vector<std::uint32_t> q(n), a(n_carry);
    for (std::uint32_t i = 0; i < n; ++i) q[i] = i;
    for (std::uint32_t i = 0; i < n_carry; ++i) a[i] = n + i;
    append_increment_carry(c, q, a);
    const auto U = qsim::circuit_unitary(c);
    const std::size_t N = std::size_t{1} << n;
    // On the ancilla-zero subspace: |j, 0> -> |j+1 mod N, 0>.
    for (std::size_t j = 0; j < N; ++j) {
      EXPECT_NEAR(std::abs(U((j + 1) % N, j)), 1.0, 1e-13) << "n=" << n << " j=" << j;
    }
  }
}

TEST(Adders, DecrementInvertsIncrement) {
  const std::uint32_t n = 4, n_carry = 2;
  qsim::Circuit c(n + n_carry);
  std::vector<std::uint32_t> q(n), a(n_carry);
  for (std::uint32_t i = 0; i < n; ++i) q[i] = i;
  for (std::uint32_t i = 0; i < n_carry; ++i) a[i] = n + i;
  append_increment_carry(c, q, a);
  append_decrement_carry(c, q, a);
  const auto U = qsim::circuit_unitary(c);
  EXPECT_LT(linalg::max_abs_diff(U, Matrix<qsim::c64>::identity(64)), 1e-13);
}

TEST(Tridiagonal, EncodesDirichletLaplacian) {
  for (std::uint32_t n : {2u, 3u, 4u}) {
    const auto be = tridiagonal_block_encoding(n);
    EXPECT_DOUBLE_EQ(be.alpha, 5.0);
    const auto T = linalg::dirichlet_laplacian(std::size_t{1} << n);
    EXPECT_LT(block_error(be, T), 1e-11) << "n=" << n;
  }
}

TEST(Tridiagonal, CircuitIsUnitary) {
  const auto be = tridiagonal_block_encoding(2);
  expect_unitary(be);
}

TEST(Tridiagonal, GateCountScalesLinearly) {
  // The ripple adders dominate: gate count should grow ~linearly in n,
  // not with the 4^n of generic dense encodings.
  const auto c3 = tridiagonal_block_encoding(3).circuit.counts().total;
  const auto c6 = tridiagonal_block_encoding(6).circuit.counts().total;
  EXPECT_LT(c6, 3 * c3);
}

}  // namespace
}  // namespace mpqls::blockenc
