#include "vqls/vqls.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/random_matrix.hpp"

namespace mpqls::vqls {
namespace {

double direction_error(const linalg::Vector<double>& got, const linalg::Vector<double>& want) {
  linalg::Vector<double> w = want;
  const double n = linalg::nrm2(w);
  for (auto& v : w) v /= n;
  double plus = 0.0, minus = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    plus = std::fmax(plus, std::fabs(got[i] - w[i]));
    minus = std::fmax(minus, std::fabs(got[i] + w[i]));
  }
  return std::fmin(plus, minus);
}

TEST(Vqls, SolvesTwoQubitSystem) {
  Xoshiro256 rng(5);
  const auto A = linalg::random_with_cond(rng, 4, 3.0);
  const auto b = linalg::random_unit_vector(rng, 4);
  VqlsOptions opts;
  opts.layers = 3;
  opts.restarts = 4;
  const auto res = vqls_solve(A, b, opts);
  EXPECT_LT(res.cost, 1e-6) << "cost did not vanish";
  const auto x_true = linalg::lu_solve(A, b);
  EXPECT_LT(direction_error(res.direction, x_true), 5e-3);
}

TEST(Vqls, DenormalizationRecoversMagnitude) {
  Xoshiro256 rng(6);
  const auto A = linalg::random_with_cond(rng, 4, 2.0);
  const auto b = linalg::random_unit_vector(rng, 4);
  const auto res = vqls_solve(A, b);
  // Residual of the de-normalized solution is small when the cost is.
  const double omega = linalg::nrm2(linalg::residual(A, res.x, b)) / linalg::nrm2(b);
  EXPECT_LT(omega, 20.0 * std::sqrt(res.cost) + 1e-6);
}

TEST(Vqls, CostDecreasesWithDepth) {
  // An expressive-enough ansatz reaches lower cost than a depth-0 one on a
  // generic system.
  Xoshiro256 rng(7);
  const auto A = linalg::random_with_cond(rng, 4, 5.0);
  const auto b = linalg::random_unit_vector(rng, 4);
  VqlsOptions shallow;
  shallow.layers = 0;
  shallow.restarts = 2;
  VqlsOptions deep;
  deep.layers = 3;
  deep.restarts = 2;
  const auto r0 = vqls_solve(A, b, shallow);
  const auto r3 = vqls_solve(A, b, deep);
  EXPECT_LE(r3.cost, r0.cost + 1e-9);
}

TEST(Vqls, ParameterCountMatchesAnsatz) {
  Xoshiro256 rng(8);
  const auto A = linalg::random_with_cond(rng, 8, 2.0);
  const auto b = linalg::random_unit_vector(rng, 8);
  VqlsOptions opts;
  opts.layers = 2;
  opts.restarts = 1;
  opts.max_evaluations = 200;  // don't solve, just probe metadata
  const auto res = vqls_solve(A, b, opts);
  EXPECT_EQ(res.parameters, (2 + 1) * 3);
  EXPECT_GT(res.evaluations, 0);
}

TEST(Vqls, RejectsBadInput) {
  linalg::Matrix<double> A(3, 3);
  linalg::Vector<double> b(3, 1.0);
  EXPECT_THROW(vqls_solve(A, b), contract_violation);
}

}  // namespace
}  // namespace mpqls::vqls
