#include "stateprep/kp_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "qsim/statevector.hpp"

namespace mpqls::stateprep {
namespace {

void expect_prepares(const std::vector<double>& v, double tol = 1e-12) {
  const auto sp = kp_state_preparation(v);
  qsim::Statevector<double> sv(sp.circuit.num_qubits());
  sv.apply(sp.circuit);
  // Normalize the reference.
  double nv = 0.0;
  for (double x : v) nv += x * x;
  nv = std::sqrt(nv);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(sv[i].real(), v[i] / nv, tol) << "i=" << i;
    EXPECT_NEAR(sv[i].imag(), 0.0, tol) << "i=" << i;
  }
}

TEST(KpTree, PreparesUniformVector) { expect_prepares({1, 1, 1, 1}); }

TEST(KpTree, PreparesBasisState) { expect_prepares({0, 0, 1, 0}); }

TEST(KpTree, PreparesUnnormalizedInput) { expect_prepares({3, 4, 0, 0}); }

TEST(KpTree, HandlesNegativeAmplitudes) {
  expect_prepares({0.5, -0.5, 0.5, -0.5});
  expect_prepares({-1, 2, -3, 4});
  expect_prepares({-1, -1, -1, -1});
}

TEST(KpTree, HandlesZeroBlocks) {
  expect_prepares({0, 0, 0, 0, 1, 2, -1, 0.5});
}

TEST(KpTree, RandomVectorsAcrossSizes) {
  Xoshiro256 rng(55);
  for (std::size_t len : {2u, 4u, 8u, 16u, 32u, 64u}) {
    std::vector<double> v(len);
    for (auto& x : v) x = rng.normal();
    expect_prepares(v, 1e-11);
  }
}

TEST(KpTree, SingleAmplitudeIsTrivial) {
  const auto sp = kp_state_preparation({2.0});
  EXPECT_EQ(sp.circuit.size(), 0u);
}

TEST(KpTree, RejectsZeroVector) {
  EXPECT_THROW(kp_state_preparation({0.0, 0.0}), contract_violation);
}

TEST(KpTree, RejectsNonPowerOfTwo) {
  EXPECT_THROW(kp_state_preparation({1.0, 2.0, 3.0}), contract_violation);
}

TEST(KpTree, ClassicalCostIsLinear) {
  // O(N) tree: the flop count for N amplitudes should scale ~linearly.
  std::vector<double> v64(64, 1.0), v256(256, 1.0);
  const auto s64 = kp_state_preparation(v64);
  const auto s256 = kp_state_preparation(v256);
  EXPECT_LT(static_cast<double>(s256.classical_flops) / s64.classical_flops, 6.0);
  EXPECT_GT(static_cast<double>(s256.classical_flops) / s64.classical_flops, 3.0);
}

TEST(KpTree, RotationCountIsNMinusOne) {
  // Levels emit 1 + 2 + ... + N/2 = N-1 rotations.
  const auto sp = kp_state_preparation(std::vector<double>(16, 0.25));
  EXPECT_EQ(sp.rotation_count, 15u);
}

}  // namespace
}  // namespace mpqls::stateprep
