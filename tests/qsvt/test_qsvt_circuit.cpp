// The make-or-break test of the whole pipeline: the QSVT circuit built
// from Wx-convention QSP phases must reproduce the QSP response exactly on
// a block-encoded diagonal matrix (whose singular values we control).
#include "qsvt/qsvt_circuit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "blockenc/dense_embedding.hpp"
#include "common/rng.hpp"
#include "poly/chebyshev.hpp"
#include "qsim/statevector.hpp"
#include "qsp/symmetric_qsp.hpp"

namespace mpqls::qsvt {
namespace {

// Amplitude <r=1, s=0, anc=0, data=i | C | r=0, s=0, anc=0, data=j>: the
// encoded polynomial block.
std::complex<double> block_entry(const QsvtCircuit& qc, std::size_t i, std::size_t j) {
  qsim::Statevector<double> sv(qc.circuit.num_qubits());
  sv[0] = 0.0;
  sv[j] = 1.0;
  sv.apply(qc.circuit);
  const std::size_t out_index = i | (std::size_t{1} << qc.realpart_qubit);
  const auto a = sv[out_index];
  return {a.real(), a.imag()};
}

TEST(QsvtCircuit, DiagonalBlockMatchesQspResponseOddDegrees) {
  const std::vector<double> xs = {0.15, 0.7};
  linalg::Matrix<double> A(2, 2);
  A(0, 0) = xs[0];
  A(1, 1) = xs[1];
  const auto be = blockenc::dense_embedding(A, 1.0);

  Xoshiro256 rng(11);
  for (int d : {1, 3, 5, 9}) {
    std::vector<double> phases(d + 1);
    for (int j = 0; j <= d / 2; ++j) phases[j] = phases[d - j] = rng.uniform(-0.3, 0.3);
    const auto qc = build_qsvt_circuit(be, phases);
    EXPECT_EQ(qc.be_calls, static_cast<std::uint64_t>(d));
    for (std::size_t k = 0; k < 2; ++k) {
      const auto entry = block_entry(qc, k, k);
      const double expected = qsp::qsp_response(phases, xs[k]);
      EXPECT_NEAR(entry.real(), expected, 1e-12) << "d=" << d << " x=" << xs[k];
      EXPECT_NEAR(entry.imag(), 0.0, 1e-12) << "d=" << d << " x=" << xs[k];
    }
    // Off-diagonal entries of a diagonal encoding stay zero.
    EXPECT_NEAR(std::abs(block_entry(qc, 0, 1)), 0.0, 1e-12);
  }
}

TEST(QsvtCircuit, DiagonalBlockMatchesQspResponseEvenDegrees) {
  const std::vector<double> xs = {0.3, 0.85};
  linalg::Matrix<double> A(2, 2);
  A(0, 0) = xs[0];
  A(1, 1) = xs[1];
  const auto be = blockenc::dense_embedding(A, 1.0);

  Xoshiro256 rng(12);
  for (int d : {2, 4, 8}) {
    std::vector<double> phases(d + 1);
    for (int j = 0; j <= d / 2; ++j) phases[j] = phases[d - j] = rng.uniform(-0.25, 0.25);
    const auto qc = build_qsvt_circuit(be, phases);
    for (std::size_t k = 0; k < 2; ++k) {
      const auto entry = block_entry(qc, k, k);
      EXPECT_NEAR(entry.real(), qsp::qsp_response(phases, xs[k]), 1e-12)
          << "d=" << d << " x=" << xs[k];
    }
  }
}

TEST(QsvtCircuit, ImplementsSolvedPolynomialTarget) {
  // End-to-end: target polynomial -> phases -> circuit block == target.
  poly::ChebSeries target({0.0, 0.45, 0.0, -0.3, 0.0, 0.15});
  const auto sol = qsp::solve_symmetric_qsp(target);
  ASSERT_TRUE(sol.converged);

  const std::vector<double> xs = {0.2, 0.6};
  linalg::Matrix<double> A(2, 2);
  A(0, 0) = xs[0];
  A(1, 1) = xs[1];
  const auto be = blockenc::dense_embedding(A, 1.0);
  const auto qc = build_qsvt_circuit(be, sol.phases);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(block_entry(qc, k, k).real(), target.evaluate(xs[k]), 1e-9);
  }
}

TEST(QsvtCircuit, NonDiagonalMatrixGetsSingularValueTransform) {
  // For a symmetric PSD matrix A = Q diag(s) Q^T, the QSVT block must be
  // Q P(s) Q^T.
  linalg::Matrix<double> A{{0.5, 0.2}, {0.2, 0.4}};
  const auto be = blockenc::dense_embedding(A, 1.0);
  poly::ChebSeries target({0.0, 0.5, 0.0, 0.2});
  const auto sol = qsp::solve_symmetric_qsp(target);
  ASSERT_TRUE(sol.converged);
  const auto qc = build_qsvt_circuit(be, sol.phases);

  // Reference via eigen-decomposition of the 2x2.
  const double tr = 0.9, det = 0.5 * 0.4 - 0.04;
  const double disc = std::sqrt(tr * tr / 4.0 - det);
  const double l1 = tr / 2 + disc, l2 = tr / 2 - disc;
  // Eigenvectors.
  auto evec = [&](double l) {
    double vx = 0.2, vy = l - 0.5;
    const double n = std::hypot(vx, vy);
    return std::pair<double, double>{vx / n, vy / n};
  };
  const auto [v1x, v1y] = evec(l1);
  const auto [v2x, v2y] = evec(l2);
  const double p1 = target.evaluate(l1), p2 = target.evaluate(l2);
  const double expected00 = p1 * v1x * v1x + p2 * v2x * v2x;
  const double expected10 = p1 * v1y * v1x + p2 * v2y * v2x;
  EXPECT_NEAR(block_entry(qc, 0, 0).real(), expected00, 1e-9);
  EXPECT_NEAR(block_entry(qc, 1, 0).real(), expected10, 1e-9);
}

TEST(QsvtCircuit, PhaseConversionShapes) {
  const auto conv = qsvt_phases_from_qsp({0.1, 0.2, 0.3, 0.4});
  EXPECT_EQ(conv.phi.size(), 3u);
  EXPECT_NEAR(conv.phi[0], 0.1 + 0.4 + M_PI, 1e-15);
  EXPECT_NEAR(conv.phi[1], 0.2 - M_PI / 2, 1e-15);
  EXPECT_NEAR(conv.phi[2], 0.3 - M_PI / 2, 1e-15);
}

// Property sweep: the circuit block equals the QSP response for every
// degree, odd and even, with fresh random symmetric phases.
class QsvtCircuitDegreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(QsvtCircuitDegreeSweep, BlockMatchesResponse) {
  const int d = GetParam();
  const std::vector<double> xs = {0.25, 0.65};
  linalg::Matrix<double> A(2, 2);
  A(0, 0) = xs[0];
  A(1, 1) = xs[1];
  const auto be = blockenc::dense_embedding(A, 1.0);
  Xoshiro256 rng(100 + static_cast<std::uint64_t>(d));
  std::vector<double> phases(d + 1);
  for (int j = 0; j <= d / 2; ++j) phases[j] = phases[d - j] = rng.uniform(-0.3, 0.3);
  const auto qc = build_qsvt_circuit(be, phases);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(block_entry(qc, k, k).real(), qsp::qsp_response(phases, xs[k]), 1e-11)
        << "d=" << d << " x=" << xs[k];
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, QsvtCircuitDegreeSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 7, 11, 16, 25, 40));

TEST(QsvtCircuit, SignalAndAncillaReturnToZeroOnBlock) {
  // The amplitude mass outside {anc=0, s=0} union the r-splitting must be
  // unitary-consistent: total norm preserved.
  linalg::Matrix<double> A{{0.6, 0.0}, {0.0, 0.3}};
  const auto be = blockenc::dense_embedding(A, 1.0);
  std::vector<double> phases = {M_PI / 4, 0.0, 0.0, M_PI / 4};  // T_3
  const auto qc = build_qsvt_circuit(be, phases);
  qsim::Statevector<double> sv(qc.circuit.num_qubits());
  sv.apply(qc.circuit);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-13);
}

}  // namespace
}  // namespace mpqls::qsvt
