#include "qsvt/solve.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/random_matrix.hpp"
#include "qsim/exec/compile.hpp"
#include "qsim/exec/executor.hpp"
#include "qsim/statevector.hpp"
#include "qsvt/denormalize.hpp"
#include "stateprep/kp_tree.hpp"

namespace mpqls::qsvt {
namespace {

double direction_error(const linalg::Vector<double>& got, const linalg::Vector<double>& want) {
  // Directions are defined up to sign.
  linalg::Vector<double> w = want;
  const double n = linalg::nrm2(w);
  for (auto& v : w) v /= n;
  double plus = 0.0, minus = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    plus = std::fmax(plus, std::fabs(got[i] - w[i]));
    minus = std::fmax(minus, std::fabs(got[i] + w[i]));
  }
  return std::fmin(plus, minus);
}

TEST(QsvtSolve, MatrixBackendMatchesTrueSolutionDirection) {
  Xoshiro256 rng(21);
  const auto A = linalg::random_with_cond(rng, 8, 10.0);
  const auto b = linalg::random_unit_vector(rng, 8);
  QsvtOptions opts;
  opts.backend = Backend::kMatrixFunction;
  opts.eps_l = 1e-6;
  const auto ctx = prepare_qsvt_solver(A, opts);
  const auto out = qsvt_solve_direction(ctx, b);
  const auto x_true = linalg::lu_solve(A, b);
  EXPECT_LT(direction_error(out.direction, x_true), 1e-5);
  EXPECT_GT(out.success_probability, 0.0);
  EXPECT_GT(out.be_calls, 10u);
}

TEST(QsvtSolve, GateBackendMatchesMatrixBackend) {
  Xoshiro256 rng(22);
  const auto A = linalg::random_with_cond(rng, 4, 5.0);
  const auto b = linalg::random_unit_vector(rng, 4);

  QsvtOptions gate_opts;
  gate_opts.backend = Backend::kGateLevel;
  gate_opts.eps_l = 1e-4;
  const auto gate_ctx = prepare_qsvt_solver(A, gate_opts);
  const auto gate = qsvt_solve_direction(gate_ctx, b);

  QsvtOptions mat_opts = gate_opts;
  mat_opts.backend = Backend::kMatrixFunction;
  const auto mat_ctx = prepare_qsvt_solver(A, mat_opts);
  const auto mat = qsvt_solve_direction(mat_ctx, b);

  EXPECT_LT(direction_error(gate.direction, mat.direction), 1e-8);
  EXPECT_EQ(gate.be_calls, mat.be_calls);
}

TEST(QsvtSolve, GateBackendSolvesToEpsL) {
  Xoshiro256 rng(23);
  const auto A = linalg::random_with_cond(rng, 8, 10.0);
  const auto b = linalg::random_unit_vector(rng, 8);
  QsvtOptions opts;
  opts.backend = Backend::kGateLevel;
  opts.eps_l = 1e-3;
  const auto ctx = prepare_qsvt_solver(A, opts);
  EXPECT_LE(ctx.eps_l_effective, 1e-3 * 1.5);
  const auto out = qsvt_solve_direction(ctx, b);
  const auto x_true = linalg::lu_solve(A, b);
  EXPECT_LT(direction_error(out.direction, x_true), 3e-3);
}

TEST(QsvtSolve, SinglePrecisionBackendIsNoisierButClose) {
  Xoshiro256 rng(24);
  const auto A = linalg::random_with_cond(rng, 4, 5.0);
  const auto b = linalg::random_unit_vector(rng, 4);
  QsvtOptions opts;
  opts.backend = Backend::kGateLevel;
  opts.precision = QpuPrecision::kSingle;
  opts.eps_l = 1e-3;
  const auto ctx = prepare_qsvt_solver(A, opts);
  const auto out = qsvt_solve_direction(ctx, b);
  const auto x_true = linalg::lu_solve(A, b);
  // Single precision adds roundoff well below eps_l here.
  EXPECT_LT(direction_error(out.direction, x_true), 5e-3);
}

TEST(QsvtSolve, ShotNoiseScalesAsInverseSqrt) {
  Xoshiro256 rng(25);
  const auto A = linalg::random_with_cond(rng, 4, 3.0);
  const auto b = linalg::random_unit_vector(rng, 4);
  QsvtOptions opts;
  opts.backend = Backend::kMatrixFunction;
  opts.eps_l = 1e-8;
  const auto exact_ctx = prepare_qsvt_solver(A, opts);
  const auto exact = qsvt_solve_direction(exact_ctx, b);

  double err_small = 0.0, err_large = 0.0;
  for (std::uint64_t shots : {1000ull, 100000ull}) {
    QsvtOptions noisy = opts;
    noisy.shots = shots;
    noisy.seed = 99;
    const auto ctx = prepare_qsvt_solver(A, noisy);
    const auto out = qsvt_solve_direction(ctx, b);
    const double err = direction_error(out.direction, exact.direction);
    (shots == 1000 ? err_small : err_large) = err;
  }
  EXPECT_GT(err_small, err_large);
  EXPECT_LT(err_large, 0.02);
}

TEST(QsvtSolve, AnalyticPolynomialBackendAgrees) {
  Xoshiro256 rng(26);
  const auto A = linalg::random_with_cond(rng, 4, 4.0);
  const auto b = linalg::random_unit_vector(rng, 4);
  QsvtOptions opts;
  opts.backend = Backend::kMatrixFunction;
  opts.poly_method = PolyMethod::kAnalytic;
  opts.eps_l = 1e-5;
  const auto ctx = prepare_qsvt_solver(A, opts);
  const auto out = qsvt_solve_direction(ctx, b);
  const auto x_true = linalg::lu_solve(A, b);
  EXPECT_LT(direction_error(out.direction, x_true), 1e-4);
}

TEST(QsvtSolve, LcuEncodingMatchesDenseEncoding) {
  // Gate-level solve through the LCU-Pauli encoding must agree with the
  // dense-embedding solve: same polynomial pipeline, different circuit.
  Xoshiro256 rng(30);
  const auto A = linalg::random_with_cond(rng, 4, 4.0);
  const auto b = linalg::random_unit_vector(rng, 4);

  QsvtOptions dense_opts;
  dense_opts.backend = Backend::kGateLevel;
  dense_opts.eps_l = 1e-3;
  const auto dense_ctx = prepare_qsvt_solver(A, dense_opts);
  const auto dense = qsvt_solve_direction(dense_ctx, b);

  QsvtOptions lcu_opts = dense_opts;
  lcu_opts.encoding = EncodingKind::kLcuPauli;
  const auto lcu_ctx = prepare_qsvt_solver(A, lcu_opts);
  const auto lcu = qsvt_solve_direction(lcu_ctx, b);

  // The LCU's larger alpha inflates kappa_be, so its polynomial is deeper.
  EXPECT_GT(lcu_ctx.kappa_effective, dense_ctx.kappa_effective);
  EXPECT_LT(direction_error(lcu.direction, dense.direction), 1e-5);
  const auto x_true = linalg::lu_solve(A, b);
  EXPECT_LT(direction_error(lcu.direction, x_true), 5e-3);
}

TEST(QsvtSolve, TridiagonalEncodingSolvesPoisson) {
  // Fully gate-native pipeline: banded LCU encoding with carry adders,
  // projector gadgets over its 4+carry ancillas, KP state preparation.
  const auto T = linalg::dirichlet_laplacian(8);
  linalg::Vector<double> b(8);
  for (std::size_t j = 0; j < 8; ++j) b[j] = std::sin(M_PI * (j + 1) / 9.0);

  QsvtOptions opts;
  opts.backend = Backend::kGateLevel;
  opts.encoding = EncodingKind::kTridiagonal;
  opts.eps_l = 5e-2;
  const auto ctx = prepare_qsvt_solver(T, opts);
  EXPECT_EQ(ctx.be.method, "tridiagonal-lcu");
  // kappa_be = alpha/sigma_min = 5/lambda_min > kappa(T).
  EXPECT_GT(ctx.kappa_effective, linalg::dirichlet_laplacian_cond(8));
  const auto out = qsvt_solve_direction(ctx, b);
  const auto x_true = linalg::lu_solve(T, b);
  EXPECT_LT(direction_error(out.direction, x_true), 0.1);
}

TEST(QsvtSolve, TridiagonalEncodingRejectsOtherMatrices) {
  Xoshiro256 rng(33);
  const auto A = linalg::random_with_cond(rng, 8, 3.0);
  QsvtOptions opts;
  opts.encoding = EncodingKind::kTridiagonal;
  EXPECT_THROW(prepare_qsvt_solver(A, opts), contract_violation);
}

TEST(QsvtSolve, DirectStatePrepMatchesPreparationCircuit) {
  // The clean gate-level path embeds rhs_unit directly into the register;
  // the KP-tree circuit applied to |0…0> must produce the same state, so
  // the two pipelines must agree. This reference re-runs the old per-solve
  // round trip (synthesize SP(b), compile it, replay) explicitly.
  Xoshiro256 rng(34);
  const auto A = linalg::random_with_cond(rng, 8, 6.0);
  auto b = linalg::random_unit_vector(rng, 8);  // random signs included
  QsvtOptions opts;
  opts.backend = Backend::kGateLevel;
  opts.eps_l = 1e-3;
  const auto ctx = prepare_qsvt_solver(A, opts);
  const auto direct = qsvt_solve_direction(ctx, b);

  linalg::Vector<double> unit = b;
  const double nb = linalg::nrm2(unit);
  for (auto& v : unit) v /= nb;
  const auto sp = stateprep::kp_state_preparation(unit);
  const QsvtCircuit& qc = *ctx.circuit;
  qsim::Statevector<double> sv(qc.circuit.num_qubits());
  const qsim::exec::Executor<double> executor;
  executor.run(qsim::exec::compile<double>(sp.circuit), sv);
  executor.run(ctx.programs->get<double>(), sv);
  qsim::Circuit flip(qc.circuit.num_qubits());
  flip.x(qc.realpart_qubit);
  sv.apply(flip);
  auto zeros = qc.zero_postselect();
  zeros.push_back(qc.realpart_qubit);
  sv.postselect_zero(zeros);
  linalg::Vector<double> want(b.size());
  for (std::size_t i = 0; i < want.size(); ++i) want[i] = sv[i].real();
  const double nw = linalg::nrm2(want);
  for (auto& v : want) v /= nw;

  ASSERT_EQ(direct.direction.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(direct.direction[i], want[i], 1e-10) << "component " << i;
  }
  // Telemetry still counts the SP gates the QPU would run: the context's
  // per-matrix constant equals the real circuit's size.
  EXPECT_EQ(ctx.sp_circuit_gates, sp.circuit.size());
  EXPECT_EQ(direct.circuit_gates, qc.circuit.size() + sp.circuit.size());
}

TEST(QsvtSolve, PanelBatchMatchesScalarDirections) {
  Xoshiro256 rng(35);
  const auto A = linalg::random_with_cond(rng, 8, 6.0);
  std::vector<linalg::Vector<double>> rhs;
  for (int k = 0; k < 5; ++k) rhs.push_back(linalg::random_unit_vector(rng, 8));
  QsvtOptions opts;
  opts.backend = Backend::kGateLevel;
  opts.eps_l = 1e-3;
  const auto ctx = prepare_qsvt_solver(A, opts);

  PanelExecStats stats;
  const auto batch =
      qsvt_solve_directions(ctx, std::span<const linalg::Vector<double>>(rhs), &stats);
  EXPECT_EQ(stats.panels, 1u);
  EXPECT_EQ(stats.lanes, 5u);
  ASSERT_EQ(batch.size(), rhs.size());
  for (std::size_t k = 0; k < rhs.size(); ++k) {
    const auto scalar = qsvt_solve_direction(ctx, rhs[k]);
    ASSERT_EQ(batch[k].direction.size(), scalar.direction.size());
    for (std::size_t i = 0; i < scalar.direction.size(); ++i) {
      EXPECT_NEAR(batch[k].direction[i], scalar.direction[i], 1e-10)
          << "rhs " << k << " component " << i;
    }
    EXPECT_NEAR(batch[k].success_probability, scalar.success_probability, 1e-12);
    EXPECT_EQ(batch[k].be_calls, scalar.be_calls);
    EXPECT_EQ(batch[k].circuit_gates, scalar.circuit_gates);
  }
}

TEST(QsvtSolve, PanelBatchSinglePrecision) {
  Xoshiro256 rng(36);
  const auto A = linalg::random_with_cond(rng, 4, 4.0);
  std::vector<linalg::Vector<double>> rhs;
  for (int k = 0; k < 3; ++k) rhs.push_back(linalg::random_unit_vector(rng, 4));
  QsvtOptions opts;
  opts.backend = Backend::kGateLevel;
  opts.precision = QpuPrecision::kSingle;
  opts.eps_l = 1e-3;
  const auto ctx = prepare_qsvt_solver(A, opts);

  PanelExecStats stats;
  const auto batch =
      qsvt_solve_directions(ctx, std::span<const linalg::Vector<double>>(rhs), &stats);
  EXPECT_EQ(stats.panels, 1u);
  EXPECT_EQ(stats.lanes, 3u);
  for (std::size_t k = 0; k < rhs.size(); ++k) {
    const auto scalar = qsvt_solve_direction(ctx, rhs[k]);
    for (std::size_t i = 0; i < scalar.direction.size(); ++i) {
      EXPECT_NEAR(batch[k].direction[i], scalar.direction[i], 1e-4)
          << "rhs " << k << " component " << i;
    }
  }
}

TEST(QsvtSolve, PanelBatchFallsBackForMatrixBackendAndSingletons) {
  Xoshiro256 rng(37);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  std::vector<linalg::Vector<double>> rhs;
  for (int k = 0; k < 3; ++k) rhs.push_back(linalg::random_unit_vector(rng, 8));

  QsvtOptions opts;
  opts.backend = Backend::kMatrixFunction;
  opts.eps_l = 1e-4;
  const auto ctx = prepare_qsvt_solver(A, opts);
  PanelExecStats stats;
  const auto batch =
      qsvt_solve_directions(ctx, std::span<const linalg::Vector<double>>(rhs), &stats);
  EXPECT_EQ(stats.panels, 0u);  // scalar fallback: no panel sweeps
  EXPECT_EQ(stats.lanes, 0u);
  for (std::size_t k = 0; k < rhs.size(); ++k) {
    const auto scalar = qsvt_solve_direction(ctx, rhs[k]);
    for (std::size_t i = 0; i < scalar.direction.size(); ++i) {
      EXPECT_EQ(batch[k].direction[i], scalar.direction[i]);  // same code path: bitwise
    }
  }

  QsvtOptions gate_opts;
  gate_opts.backend = Backend::kGateLevel;
  gate_opts.eps_l = 1e-3;
  const auto gate_ctx = prepare_qsvt_solver(A, gate_opts);
  PanelExecStats gate_stats;
  const auto single = qsvt_solve_directions(
      gate_ctx, std::span<const linalg::Vector<double>>(rhs.data(), 1), &gate_stats);
  EXPECT_EQ(gate_stats.panels, 0u);  // one lane: scalar path
  const auto scalar = qsvt_solve_direction(gate_ctx, rhs[0]);
  for (std::size_t i = 0; i < scalar.direction.size(); ++i) {
    EXPECT_EQ(single[0].direction[i], scalar.direction[i]);
  }
}

TEST(Denormalize, BrentMatchesClosedForm) {
  Xoshiro256 rng(27);
  const auto A = linalg::random_with_cond(rng, 8, 10.0);
  const auto b = linalg::random_unit_vector(rng, 8);
  const auto eta = linalg::random_unit_vector(rng, 8);
  const auto brent = fit_step_brent(A, {}, eta, b);
  const auto closed = fit_step_closed_form(A, {}, eta, b);
  // Brent minimizes the (exactly quadratic) objective to x-resolution
  // ~sqrt(machine eps): agreement beyond ~1e-8 on mu is not achievable by a
  // function-value-only minimizer. The residual norms agree much tighter
  // because the objective is flat at the minimum.
  EXPECT_NEAR(brent.mu, closed.mu, 1e-7);
  EXPECT_NEAR(brent.residual_norm, closed.residual_norm, 1e-9);
}

TEST(Denormalize, RecoversExactNorm) {
  // If eta is the exact solution direction, mu recovers ||x|| and the
  // residual drops to ~0.
  Xoshiro256 rng(28);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  const auto x = linalg::random_unit_vector(rng, 8);
  linalg::Vector<double> x_scaled = x;
  for (auto& v : x_scaled) v *= 3.7;
  const auto b = linalg::matvec(A, x_scaled);
  const auto fit = fit_step_brent(A, {}, x, b);
  EXPECT_NEAR(fit.mu, 3.7, 1e-8);
  EXPECT_LT(fit.residual_norm, 1e-8);
}

TEST(Denormalize, WithBaseVectorMinimizesStep) {
  Xoshiro256 rng(29);
  const auto A = linalg::random_with_cond(rng, 4, 5.0);
  const auto b = linalg::random_unit_vector(rng, 4);
  const auto x0 = linalg::random_unit_vector(rng, 4);
  const auto eta = linalg::random_unit_vector(rng, 4);
  const auto fit = fit_step_brent(A, x0, eta, b);
  // Perturbing mu must not decrease the residual.
  for (double d : {-1e-3, 1e-3}) {
    linalg::Vector<double> x = x0;
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += (fit.mu + d) * eta[i];
    EXPECT_GE(linalg::nrm2(linalg::residual(A, x, b)), fit.residual_norm - 1e-12);
  }
}

}  // namespace
}  // namespace mpqls::qsvt
