// Tests of Algorithm 2 — the paper's central claims: geometric residual
// contraction at rate eps_l * kappa (Theorem III.1), iteration counts at
// or below the bound, and convergence to eps far beyond the QSVT's own
// accuracy.
#include "solver/qsvt_ir.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/theory.hpp"

namespace mpqls::solver {
namespace {

QsvtIrOptions make_options(double eps, double eps_l,
                           qsvt::Backend backend = qsvt::Backend::kGateLevel) {
  QsvtIrOptions o;
  o.eps = eps;
  o.qsvt.eps_l = eps_l;
  o.qsvt.backend = backend;
  return o;
}

TEST(QsvtIr, ConvergesFarBeyondQsvtAccuracy) {
  Xoshiro256 rng(41);
  const auto A = linalg::random_with_cond(rng, 16, 10.0);
  const auto b = linalg::random_unit_vector(rng, 16);
  const auto rep = solve_qsvt_ir(A, b, make_options(1e-11, 1e-3));
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.scaled_residuals.back(), 1e-11);
  // The first solve alone is ~1e-3-accurate: refinement must have run.
  EXPECT_GE(rep.iterations, 2);
  // And the solution matches LU to the target accuracy.
  const auto x_lu = linalg::lu_solve(A, b);
  double err = 0.0;
  for (std::size_t i = 0; i < 16; ++i) err = std::fmax(err, std::fabs(rep.x[i] - x_lu[i]));
  EXPECT_LT(err, 1e-9);
}

TEST(QsvtIr, ResidualContractsAtTheoreticalRate) {
  Xoshiro256 rng(42);
  const auto A = linalg::random_with_cond(rng, 16, 10.0);
  const auto b = linalg::random_unit_vector(rng, 16);
  const auto rep = solve_qsvt_ir(A, b, make_options(1e-11, 1e-3));
  // eps_l_effective is the measured sup |2k P - 1/x| = the contraction
  // factor (eps_l * kappa in the paper's notation).
  const double rho = rep.eps_l_effective;
  ASSERT_LT(rho, 1.0);
  for (std::size_t i = 0; i + 1 < rep.scaled_residuals.size(); ++i) {
    if (rep.scaled_residuals[i + 1] > 1e-13) {  // above the u floor
      EXPECT_LE(rep.scaled_residuals[i + 1], rho * rep.scaled_residuals[i] * 10.0)
          << "step " << i;
    }
  }
}

TEST(QsvtIr, IterationCountWithinTheoremBound) {
  Xoshiro256 rng(43);
  const auto A = linalg::random_with_cond(rng, 16, 10.0);
  const auto b = linalg::random_unit_vector(rng, 16);
  const auto rep = solve_qsvt_ir(A, b, make_options(1e-11, 1e-2));
  EXPECT_TRUE(rep.converged);
  ASSERT_GT(rep.theoretical_iteration_bound, 0u);
  EXPECT_LE(static_cast<std::uint64_t>(rep.iterations), rep.theoretical_iteration_bound);
}

TEST(QsvtIr, MatrixBackendHandlesLargerKappa) {
  Xoshiro256 rng(44);
  const auto A = linalg::random_with_cond(rng, 16, 100.0);
  const auto b = linalg::random_unit_vector(rng, 16);
  auto opts = make_options(1e-10, 5e-3, qsvt::Backend::kMatrixFunction);
  const auto rep = solve_qsvt_ir(A, b, opts);
  EXPECT_TRUE(rep.converged) << rep.scaled_residuals.back();
  EXPECT_LE(rep.scaled_residuals.back(), 1e-10);
}

TEST(QsvtIr, SinglePrecisionQpuFloorsAboveDouble) {
  Xoshiro256 rng(45);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  const auto b = linalg::random_unit_vector(rng, 8);
  auto opts = make_options(1e-6, 1e-2);
  opts.qsvt.precision = qsvt::QpuPrecision::kSingle;
  const auto rep = solve_qsvt_ir(A, b, opts);
  // Single-precision QPU still reaches 1e-6 easily: the refinement is in
  // double on the CPU (the limiting accuracy depends on u, not u_l).
  EXPECT_TRUE(rep.converged);
}

TEST(QsvtIr, CommLogFollowsFigureOne) {
  Xoshiro256 rng(46);
  const auto A = linalg::random_with_cond(rng, 8, 10.0);
  const auto b = linalg::random_unit_vector(rng, 8);
  const auto rep = solve_qsvt_ir(A, b, make_options(1e-10, 1e-2));
  const auto& events = rep.comm.events();
  ASSERT_GE(events.size(), 4u);
  // Setup: BE(A^T), Phi, SP(b) from CPU to QPU.
  EXPECT_EQ(events[0].payload, "BE(A^T)");
  EXPECT_EQ(events[1].payload, "Phi");
  EXPECT_EQ(events[2].payload, "SP(b)");
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(events[k].direction, hybrid::Direction::kCpuToQpu);
    EXPECT_LT(events[k].iteration, 0);
  }
  // Then alternating SP(r_i) / x_{i+1} pairs.
  EXPECT_EQ(events[3].payload, "x_0");
  if (rep.iterations >= 1) {
    EXPECT_EQ(events[4].payload, "SP(r_0)");
    EXPECT_EQ(events[4].direction, hybrid::Direction::kCpuToQpu);
    EXPECT_EQ(events[5].payload, "x_1");
    EXPECT_EQ(events[5].direction, hybrid::Direction::kQpuToCpu);
  }
  // The BE transfer happens exactly once.
  int be_transfers = 0;
  for (const auto& e : events) be_transfers += (e.payload == "BE(A^T)");
  EXPECT_EQ(be_transfers, 1);
}

TEST(QsvtIr, BatchLockstepMatchesScalarRefinement) {
  // One lockstep batch over 5 right-hand sides (panel sweeps under the
  // hood) must reproduce the 5 scalar refinement runs: same iteration
  // counts, comm timelines and — up to the panel kernels' rounding — the
  // same solutions and residual histories.
  Xoshiro256 rng(48);
  const auto A = linalg::random_with_cond(rng, 16, 10.0);
  std::vector<linalg::Vector<double>> bs;
  for (int k = 0; k < 5; ++k) bs.push_back(linalg::random_unit_vector(rng, 16));
  const auto options = make_options(1e-10, 1e-2);
  const auto ctx = qsvt::prepare_qsvt_solver(A, options.qsvt);

  BatchSolveStats stats;
  const auto batch = solve_qsvt_ir_batch(
      ctx, std::span<const linalg::Vector<double>>(bs), options, &stats);
  ASSERT_EQ(batch.size(), bs.size());
  EXPECT_GE(stats.panels_executed, 1u);
  EXPECT_GE(stats.panel_lanes_total, bs.size());  // round 0 carries all lanes

  for (std::size_t k = 0; k < bs.size(); ++k) {
    const auto want = solve_qsvt_ir(ctx, bs[k], options);
    const auto& got = batch[k];
    EXPECT_TRUE(got.converged);
    EXPECT_EQ(got.converged, want.converged) << "lane " << k;
    EXPECT_EQ(got.iterations, want.iterations) << "lane " << k;
    EXPECT_EQ(got.solves.size(), want.solves.size()) << "lane " << k;
    EXPECT_EQ(got.total_be_calls, want.total_be_calls) << "lane " << k;
    ASSERT_EQ(got.x.size(), want.x.size());
    for (std::size_t i = 0; i < want.x.size(); ++i) {
      EXPECT_NEAR(got.x[i], want.x[i], 1e-9) << "lane " << k << " component " << i;
    }
    ASSERT_EQ(got.scaled_residuals.size(), want.scaled_residuals.size());
    ASSERT_EQ(got.comm.events().size(), want.comm.events().size());
    for (std::size_t e = 0; e < want.comm.events().size(); ++e) {
      EXPECT_EQ(got.comm.events()[e].payload, want.comm.events()[e].payload)
          << "lane " << k << " event " << e;
    }
  }
}

TEST(QsvtIr, TotalBeCallsAccumulateAcrossSolves)
{
  Xoshiro256 rng(47);
  const auto A = linalg::random_with_cond(rng, 8, 10.0);
  const auto b = linalg::random_unit_vector(rng, 8);
  const auto rep = solve_qsvt_ir(A, b, make_options(1e-10, 1e-2));
  std::uint64_t sum = 0;
  for (const auto& s : rep.solves) sum += s.be_calls;
  EXPECT_EQ(sum, rep.total_be_calls);
  EXPECT_EQ(rep.solves.size(), static_cast<std::size_t>(rep.iterations) + 1);
}

TEST(QsvtIr, DoubleDoubleResidualMatchesDouble) {
  Xoshiro256 rng(48);
  const auto A = linalg::random_with_cond(rng, 8, 10.0);
  const auto b = linalg::random_unit_vector(rng, 8);
  auto opts = make_options(1e-11, 1e-2);
  opts.residual_precision = ResidualPrecision::kDoubleDouble;
  const auto rep = solve_qsvt_ir(A, b, opts);
  EXPECT_TRUE(rep.converged);
}

TEST(QsvtIr, ClosedFormDenormalizationEquivalent) {
  Xoshiro256 rng(49);
  const auto A = linalg::random_with_cond(rng, 8, 10.0);
  const auto b = linalg::random_unit_vector(rng, 8);
  auto brent_opts = make_options(1e-10, 1e-2);
  auto closed_opts = brent_opts;
  closed_opts.use_brent = false;
  const auto rep_b = solve_qsvt_ir(A, b, brent_opts);
  const auto rep_c = solve_qsvt_ir(A, b, closed_opts);
  EXPECT_EQ(rep_b.iterations, rep_c.iterations);
  for (std::size_t i = 0; i < rep_b.x.size(); ++i) {
    EXPECT_NEAR(rep_b.x[i], rep_c.x[i], 1e-8);
  }
}

TEST(QsvtIr, ZeroNoiseMatchesCleanRun) {
  Xoshiro256 rng(50);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  const auto b = linalg::random_unit_vector(rng, 8);
  auto opts = make_options(1e-10, 1e-2);
  const auto clean = solve_qsvt_ir(A, b, opts);
  opts.qsvt.noise = qsim::NoiseModel{};  // explicit zero model
  const auto zero = solve_qsvt_ir(A, b, opts);
  ASSERT_EQ(clean.scaled_residuals.size(), zero.scaled_residuals.size());
  for (std::size_t i = 0; i < clean.scaled_residuals.size(); ++i) {
    EXPECT_DOUBLE_EQ(clean.scaled_residuals[i], zero.scaled_residuals[i]);
  }
}

TEST(QsvtIr, StrongNoiseStallsRefinement) {
  Xoshiro256 rng(51);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  const auto b = linalg::random_unit_vector(rng, 8);
  auto opts = make_options(1e-10, 1e-2);
  opts.max_iterations = 10;
  opts.qsvt.noise.depolarizing_per_gate = 1e-2;
  const auto rep = solve_qsvt_ir(A, b, opts);
  // Refinement cannot push the residual to the fault-tolerant target.
  EXPECT_FALSE(rep.converged);
  EXPECT_GT(rep.scaled_residuals.back(), 1e-10);
}

// --- adaptive precision escalation ----------------------------------------

TEST(QsvtIrAdaptive, MatchesFixedDoubleAccuracyWellConditioned) {
  Xoshiro256 rng(60);
  const auto A = linalg::random_with_cond(rng, 16, 10.0);
  const auto b = linalg::random_unit_vector(rng, 16);
  auto opts = make_options(1e-11, 1e-2);
  const auto fixed = solve_qsvt_ir(A, b, opts);
  opts.qsvt.precision = qsvt::QpuPrecision::kAdaptive;
  const auto adaptive = solve_qsvt_ir(A, b, opts);

  ASSERT_TRUE(fixed.converged);
  ASSERT_TRUE(adaptive.converged);
  // Equal final accuracy: within 2x of fixed-double (or below target).
  EXPECT_LE(adaptive.scaled_residuals.back(),
            2.0 * std::fmax(fixed.scaled_residuals.back(), opts.eps));
  // The schedule actually ran tiered: it started below double and
  // escalated at least once, and the final residual was dd128-verified.
  EXPECT_GT(adaptive.tier_solves[kTierHalf], 0u);
  EXPECT_GE(adaptive.precision_switches, 1u);
  EXPECT_TRUE(adaptive.dd128_verified);
  EXPECT_LE(adaptive.dd128_final_residual, 2.0 * opts.eps);
  // Tier accounting covers every solve exactly once.
  EXPECT_EQ(adaptive.tier_solves[kTierHalf] + adaptive.tier_solves[kTierSingle] +
                adaptive.tier_solves[kTierDouble],
            adaptive.solves.size());
  // Fixed-precision runs land entirely in their one tier and skip dd128.
  EXPECT_EQ(fixed.tier_solves[kTierDouble], fixed.solves.size());
  EXPECT_EQ(fixed.precision_switches, 0u);
  EXPECT_FALSE(fixed.dd128_verified);
}

TEST(QsvtIrAdaptive, MatchesFixedDoubleAccuracyIllConditioned) {
  Xoshiro256 rng(61);
  const auto A = linalg::random_with_cond(rng, 16, 30.0);
  const auto b = linalg::random_unit_vector(rng, 16);
  auto opts = make_options(1e-11, 1e-2);
  const auto fixed = solve_qsvt_ir(A, b, opts);
  opts.qsvt.precision = qsvt::QpuPrecision::kAdaptive;
  const auto adaptive = solve_qsvt_ir(A, b, opts);
  ASSERT_TRUE(fixed.converged);
  ASSERT_TRUE(adaptive.converged);
  EXPECT_LE(adaptive.scaled_residuals.back(),
            2.0 * std::fmax(fixed.scaled_residuals.back(), opts.eps));
  EXPECT_TRUE(adaptive.dd128_verified);
}

TEST(QsvtIrAdaptive, PolicyFloorsDriveTheSchedule) {
  Xoshiro256 rng(62);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  const auto b = linalg::random_unit_vector(rng, 8);
  auto opts = make_options(1e-11, 1e-2);
  opts.qsvt.precision = qsvt::QpuPrecision::kAdaptive;

  // A floor above any residual escalates straight through to double after
  // the first solve: one half solve, no single solves, two switches.
  opts.escalation.half_floor = 1e300;
  opts.escalation.single_floor = 1e300;
  const auto eager = solve_qsvt_ir(A, b, opts);
  EXPECT_TRUE(eager.converged);
  EXPECT_EQ(eager.tier_solves[kTierHalf], 1u);
  EXPECT_EQ(eager.tier_solves[kTierSingle], 0u);
  EXPECT_GT(eager.tier_solves[kTierDouble], 0u);
  EXPECT_EQ(eager.precision_switches, 2u);

  // Floors at zero and a stall ratio nothing exceeds pin the lane to the
  // half tier: the proactive and stall triggers must both stay silent, so
  // every solve runs on the half program. (At this tiny, well-conditioned
  // system the half tier's roundoff is benign enough to keep contracting —
  // whether it converges is the system's business; the policy's is that
  // no escalation ever fires.)
  opts.escalation.half_floor = 0.0;
  opts.escalation.single_floor = 0.0;
  opts.escalation.stall_ratio = 1e300;
  opts.max_iterations = 6;
  const auto pinned = solve_qsvt_ir(A, b, opts);
  EXPECT_EQ(pinned.precision_switches, 0u);
  EXPECT_EQ(pinned.tier_solves[kTierSingle], 0u);
  EXPECT_EQ(pinned.tier_solves[kTierDouble], 0u);
  EXPECT_EQ(pinned.tier_solves[kTierHalf], pinned.solves.size());
  if (pinned.converged) EXPECT_TRUE(pinned.dd128_verified);
}

TEST(QsvtIrAdaptive, BatchLanesEscalateIndependently) {
  // Lockstep adaptive batch: every lane runs its own escalation state
  // (tier, switches, dd128 check) while sharing panel sweeps with the
  // lanes currently at the same tier.
  Xoshiro256 rng(63);
  const auto A = linalg::random_with_cond(rng, 16, 10.0);
  std::vector<linalg::Vector<double>> bs;
  for (int k = 0; k < 6; ++k) bs.push_back(linalg::random_unit_vector(rng, 16));
  auto options = make_options(1e-11, 1e-2);
  options.qsvt.precision = qsvt::QpuPrecision::kAdaptive;
  const auto ctx = qsvt::prepare_qsvt_solver(A, options.qsvt);

  BatchSolveStats stats;
  const auto batch = solve_qsvt_ir_batch(
      ctx, std::span<const linalg::Vector<double>>(bs), options, &stats);
  ASSERT_EQ(batch.size(), bs.size());
  EXPECT_GE(stats.panels_executed, 1u);
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const auto& rep = batch[k];
    EXPECT_TRUE(rep.converged) << "lane " << k;
    EXPECT_LE(rep.scaled_residuals.back(), options.eps) << "lane " << k;
    EXPECT_TRUE(rep.dd128_verified) << "lane " << k;
    EXPECT_GE(rep.precision_switches, 1u) << "lane " << k;
    EXPECT_EQ(rep.tier_solves[kTierHalf] + rep.tier_solves[kTierSingle] +
                  rep.tier_solves[kTierDouble],
              rep.solves.size())
        << "lane " << k;
    EXPECT_EQ(rep.tier_iterations[kTierHalf] + rep.tier_iterations[kTierSingle] +
                  rep.tier_iterations[kTierDouble],
              static_cast<std::uint64_t>(rep.iterations))
        << "lane " << k;
  }
  // The scalar adaptive run agrees on the solution (panel kernels round
  // differently, so compare to tolerance, not bitwise).
  for (std::size_t k = 0; k < bs.size(); ++k) {
    const auto want = solve_qsvt_ir(ctx, bs[k], options);
    ASSERT_EQ(batch[k].x.size(), want.x.size());
    for (std::size_t i = 0; i < want.x.size(); ++i) {
      EXPECT_NEAR(batch[k].x[i], want.x[i], 1e-9) << "lane " << k << " component " << i;
    }
  }
}

TEST(QsvtIrAdaptive, ContextSpecializesLazilyAndOnce) {
  Xoshiro256 rng(64);
  const auto A = linalg::random_with_cond(rng, 16, 10.0);
  const auto b = linalg::random_unit_vector(rng, 16);
  auto options = make_options(1e-11, 1e-2);
  options.qsvt.precision = qsvt::QpuPrecision::kAdaptive;
  const auto ctx = qsvt::prepare_qsvt_solver(A, options.qsvt);
  ASSERT_NE(ctx.programs, nullptr);
  // Adaptive preparation compiles the shared IR but specializes nothing
  // until a tier actually executes.
  EXPECT_EQ(ctx.programs->specializations(), 0u);

  const auto first = solve_qsvt_ir(ctx, b, options);
  EXPECT_TRUE(first.converged);
  const auto after_first = ctx.programs->specializations();
  EXPECT_GE(after_first, 2u);  // at least the half and single tiers ran
  EXPECT_LE(after_first, 3u);

  // Re-solving against the same context — same or different tier mix —
  // reuses the cached specializations: the counter must not move.
  const auto second = solve_qsvt_ir(ctx, b, options);
  EXPECT_TRUE(second.converged);
  EXPECT_EQ(ctx.programs->specializations(), after_first);

  // Forcing the remaining tier explicitly compiles it exactly once.
  ctx.programs->get<double>();
  ctx.programs->get<double>();
  ctx.programs->get<float>();
  ctx.programs->get<qsim::exec::f16>();
  EXPECT_EQ(ctx.programs->specializations(), 3u);
}

TEST(Theory, IterationBoundFormula) {
  // eps = 1e-12, rho = 1e-2 -> exactly 6 solves.
  EXPECT_EQ(iteration_bound(1e-12, 1e-3, 10.0), 6u);
  EXPECT_EQ(iteration_bound(1e-11, 1e-2, 10.0), 11u);
  EXPECT_THROW(iteration_bound(1e-11, 0.2, 10.0), contract_violation);
}

TEST(Theory, IrBeatsPlainQsvtForSmallEps) {
  // Table I: with eps << eps_l the sample term 1/eps^2 dominates the plain
  // QSVT cost; IR wins by orders of magnitude.
  const double B = 100.0, kappa = 2.0, eps_l = 0.4;
  const auto plain = qsvt_only_cost(B, kappa, 1e-10);
  const auto ir = qsvt_ir_cost(B, kappa, 1e-10, eps_l);
  EXPECT_GT(plain.total / ir.total, 1e6);
  // At eps = eps_l the per-solve cost terms coincide (Fig. 5's meeting
  // point: in the experiments a single solve reaches eps_l, so the
  // measured totals match; the Theorem III.1 *bound* on #solves is
  // pessimistic there, which is why we compare per-solve cost).
  const auto plain_same = qsvt_only_cost(B, kappa, eps_l);
  const auto ir_same = qsvt_ir_cost(B, kappa, eps_l, eps_l);
  EXPECT_NEAR(plain_same.c_qsvt, ir_same.c_qsvt, 1e-9);
  EXPECT_NEAR(plain_same.samples, ir_same.samples, 1e-9);
}

// Property sweep over kappa, eps_l, backends: Theorem III.1 end to end.
class QsvtIrSweep
    : public ::testing::TestWithParam<std::tuple<double, double, qsvt::Backend>> {};

TEST_P(QsvtIrSweep, ConvergesWithinBound) {
  const auto [kappa, eps_l, backend] = GetParam();
  Xoshiro256 rng(1000 + static_cast<std::uint64_t>(kappa));
  const auto A = linalg::random_with_cond(rng, 16, kappa);
  const auto b = linalg::random_unit_vector(rng, 16);
  const auto rep = solve_qsvt_ir(A, b, make_options(1e-10, eps_l, backend));
  EXPECT_TRUE(rep.converged) << "kappa=" << kappa << " eps_l=" << eps_l;
  if (rep.theoretical_iteration_bound > 0) {
    EXPECT_LE(static_cast<std::uint64_t>(rep.iterations), rep.theoretical_iteration_bound);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QsvtIrSweep,
    ::testing::Values(std::make_tuple(5.0, 1e-2, qsvt::Backend::kGateLevel),
                      std::make_tuple(10.0, 1e-2, qsvt::Backend::kGateLevel),
                      std::make_tuple(10.0, 1e-3, qsvt::Backend::kGateLevel),
                      std::make_tuple(20.0, 1e-3, qsvt::Backend::kGateLevel),
                      std::make_tuple(50.0, 1e-3, qsvt::Backend::kMatrixFunction),
                      std::make_tuple(100.0, 1e-3, qsvt::Backend::kMatrixFunction)));

}  // namespace
}  // namespace mpqls::solver
