// Distributed shard-group solves through the full Algorithm 2 refinement
// loop: W ranks each run solve_qsvt_ir_batch against the shared context
// with a DistSolveSession wired in, exchanging amplitudes over a
// LocalPeerGroup. Every rank must produce the identical report (the
// lockstep contract the adaptive schedule relies on), 2- and 4-shard
// results must agree bitwise with each other (both reduce to the same
// one-lane replay arithmetic), and all must match the single-node solver
// within the panel-vs-scalar rounding tolerance.
#include "solver/qsvt_ir.hpp"

#include <gtest/gtest.h>

#include <exception>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/random_matrix.hpp"
#include "qsim/exec/dist/peer_channel.hpp"
#include "qsvt/dist_solve.hpp"

namespace mpqls::solver {
namespace {

QsvtIrOptions base_options() {
  QsvtIrOptions o;
  o.eps = 1e-11;
  o.qsvt.eps_l = 1e-2;
  return o;
}

/// Run the batch on W ranks over a LocalPeerGroup; returns every rank's
/// reports (outer index = rank).
std::vector<std::vector<QsvtIrReport>> solve_distributed(
    const qsvt::QsvtSolverContext& ctx, const std::vector<linalg::Vector<double>>& bs,
    const QsvtIrOptions& options, std::uint32_t world_log2) {
  const std::uint32_t world = 1u << world_log2;
  qsim::exec::dist::LocalPeerGroup group(world);
  std::vector<std::vector<QsvtIrReport>> per_rank(world);
  std::vector<std::exception_ptr> errors(world);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      try {
        QsvtIrOptions opts = options;
        opts.dist = std::make_shared<qsvt::dist::DistSolveSession>(
            qsvt::dist::DistConfig{r, world_log2, group.channel(r)});
        per_rank[r] = solve_qsvt_ir_batch(
            ctx, std::span<const linalg::Vector<double>>(bs), opts);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t r = 0; r < world; ++r) {
    if (errors[r]) std::rethrow_exception(errors[r]);
  }
  return per_rank;
}

void expect_reports_identical(const QsvtIrReport& a, const QsvtIrReport& b, const char* what) {
  EXPECT_EQ(a.converged, b.converged) << what;
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.precision_switches, b.precision_switches) << what;
  EXPECT_EQ(a.tier_solves, b.tier_solves) << what;
  ASSERT_EQ(a.x.size(), b.x.size()) << what;
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_EQ(a.x[i], b.x[i]) << what << " component " << i;
  }
  ASSERT_EQ(a.scaled_residuals.size(), b.scaled_residuals.size()) << what;
  for (std::size_t i = 0; i < a.scaled_residuals.size(); ++i) {
    EXPECT_EQ(a.scaled_residuals[i], b.scaled_residuals[i]) << what << " residual " << i;
  }
}

TEST(DistSolve, DoubleTierShardsAgreeBitwiseAcrossWorldSizes) {
  Xoshiro256 rng(70);
  const auto A = linalg::random_with_cond(rng, 16, 10.0);
  std::vector<linalg::Vector<double>> bs = {linalg::random_unit_vector(rng, 16)};
  const auto options = base_options();
  const auto ctx = qsvt::prepare_qsvt_solver(A, options.qsvt);

  const auto two = solve_distributed(ctx, bs, options, 1);
  const auto four = solve_distributed(ctx, bs, options, 2);

  // Lockstep: every rank of a group returns the identical report.
  for (std::uint32_t r = 1; r < two.size(); ++r) {
    expect_reports_identical(two[0][0], two[r][0], "W=2 rank vs rank");
  }
  for (std::uint32_t r = 1; r < four.size(); ++r) {
    expect_reports_identical(four[0][0], four[r][0], "W=4 rank vs rank");
  }
  // The postselected subspace fixes the partition qubits, so both world
  // sizes reduce to the same one-lane replay arithmetic: bit-identical
  // double-path results.
  expect_reports_identical(two[0][0], four[0][0], "W=2 vs W=4");

  EXPECT_TRUE(two[0][0].converged);
  EXPECT_LE(two[0][0].scaled_residuals.back(), options.eps);

  // And the single-node solver agrees within the panel-vs-scalar rounding.
  const auto want = solve_qsvt_ir(ctx, bs[0], options);
  EXPECT_EQ(two[0][0].converged, want.converged);
  EXPECT_EQ(two[0][0].iterations, want.iterations);
  for (std::size_t i = 0; i < want.x.size(); ++i) {
    EXPECT_NEAR(two[0][0].x[i], want.x[i], 1e-9) << "component " << i;
  }
}

TEST(DistSolve, AdaptiveRefinementRunsLockstepAcrossShards) {
  Xoshiro256 rng(71);
  const auto A = linalg::random_with_cond(rng, 16, 10.0);
  std::vector<linalg::Vector<double>> bs;
  for (int k = 0; k < 2; ++k) bs.push_back(linalg::random_unit_vector(rng, 16));
  auto options = base_options();
  options.qsvt.precision = qsvt::QpuPrecision::kAdaptive;
  const auto ctx = qsvt::prepare_qsvt_solver(A, options.qsvt);

  const auto per_rank = solve_distributed(ctx, bs, options, 1);
  for (std::uint32_t r = 1; r < per_rank.size(); ++r) {
    for (std::size_t l = 0; l < bs.size(); ++l) {
      expect_reports_identical(per_rank[0][l], per_rank[r][l], "adaptive rank vs rank");
    }
  }
  for (std::size_t l = 0; l < bs.size(); ++l) {
    const auto& rep = per_rank[0][l];
    EXPECT_TRUE(rep.converged) << "lane " << l;
    EXPECT_LE(rep.scaled_residuals.back(), options.eps) << "lane " << l;
    // The schedule really ran tiered on the shards: half solves happened
    // and at least one escalation fired, exactly like single-node.
    EXPECT_GT(rep.tier_solves[kTierHalf], 0u) << "lane " << l;
    EXPECT_GE(rep.precision_switches, 1u) << "lane " << l;
    EXPECT_TRUE(rep.dd128_verified) << "lane " << l;
  }

  // Single-node adaptive agrees on the solution within tier tolerance.
  for (std::size_t l = 0; l < bs.size(); ++l) {
    const auto want = solve_qsvt_ir(ctx, bs[l], options);
    ASSERT_EQ(per_rank[0][l].x.size(), want.x.size());
    for (std::size_t i = 0; i < want.x.size(); ++i) {
      EXPECT_NEAR(per_rank[0][l].x[i], want.x[i], 1e-9) << "lane " << l << " component " << i;
    }
  }
}

TEST(DistSolve, SessionStatsCountExchangesAndScheduleWin) {
  Xoshiro256 rng(72);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  std::vector<linalg::Vector<double>> bs = {linalg::random_unit_vector(rng, 8)};
  const auto options = base_options();
  const auto ctx = qsvt::prepare_qsvt_solver(A, options.qsvt);

  qsim::exec::dist::LocalPeerGroup group(2);
  std::vector<std::shared_ptr<qsvt::dist::DistSolveSession>> sessions(2);
  std::vector<std::exception_ptr> errors(2);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < 2; ++r) {
    sessions[r] = std::make_shared<qsvt::dist::DistSolveSession>(
        qsvt::dist::DistConfig{r, 1, group.channel(r)});
    threads.emplace_back([&, r] {
      try {
        QsvtIrOptions opts = options;
        opts.dist = sessions[r];
        (void)solve_qsvt_ir_batch(ctx, std::span<const linalg::Vector<double>>(bs), opts);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  for (std::uint32_t r = 0; r < 2; ++r) {
    const auto& s = sessions[r]->stats();
    EXPECT_GT(s.solves, 0u) << "rank " << r;
    EXPECT_GT(s.exchange_rounds, 0u) << "rank " << r;
    EXPECT_GT(s.bytes_moved, 0u) << "rank " << r;
    // The scheduling pass must beat the classification-blind baseline on
    // the production QSVT program.
    EXPECT_LT(s.plan_scheduled_rounds, s.plan_naive_rounds) << "rank " << r;
  }
}

/// A session outlives one batch: refinement iterations across batches keep
/// the sequence counter strictly increasing, so a follow-up solve against
/// the same context just works.
TEST(DistSolve, SessionServesSequentialBatches) {
  Xoshiro256 rng(73);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  std::vector<linalg::Vector<double>> first = {linalg::random_unit_vector(rng, 8)};
  std::vector<linalg::Vector<double>> second = {linalg::random_unit_vector(rng, 8)};
  const auto options = base_options();
  const auto ctx = qsvt::prepare_qsvt_solver(A, options.qsvt);

  qsim::exec::dist::LocalPeerGroup group(2);
  std::vector<std::exception_ptr> errors(2);
  std::vector<linalg::Vector<double>> results(2);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      try {
        QsvtIrOptions opts = options;
        opts.dist = std::make_shared<qsvt::dist::DistSolveSession>(
            qsvt::dist::DistConfig{r, 1, group.channel(r)});
        (void)solve_qsvt_ir_batch(ctx, std::span<const linalg::Vector<double>>(first), opts);
        auto reps =
            solve_qsvt_ir_batch(ctx, std::span<const linalg::Vector<double>>(second), opts);
        results[r] = std::move(reps[0].x);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  ASSERT_EQ(results[0].size(), results[1].size());
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_EQ(results[0][i], results[1][i]) << "component " << i;
  }
}

}  // namespace
}  // namespace mpqls::solver
