#include "qsp/symmetric_qsp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "poly/chebyshev.hpp"
#include "poly/inverse_poly.hpp"

namespace mpqls::qsp {
namespace {

TEST(QspResponse, TrivialPhasesEncodeChebyshev) {
  // Phi = (pi/4, 0, ..., 0, pi/4) encodes Im<0|U|0> = T_d(x).
  for (int d : {1, 2, 5, 8}) {
    std::vector<double> phases(d + 1, 0.0);
    phases.front() = M_PI / 4;
    phases.back() += M_PI / 4;
    for (double x : {-0.9, -0.2, 0.4, 1.0}) {
      EXPECT_NEAR(qsp_response(phases, x), poly::chebyshev_t(d, x), 1e-13)
          << "d=" << d << " x=" << x;
    }
  }
}

TEST(QspResponse, UnitaryIsUnitary) {
  Xoshiro256 rng(7);
  std::vector<double> phases(6);
  for (auto& p : phases) p = rng.uniform(-1.0, 1.0);
  for (double x : {-0.5, 0.2, 0.8}) {
    const auto u = qsp_unitary(phases, x);
    const double row0 = std::norm(u.u00) + std::norm(u.u01);
    const double row1 = std::norm(u.u10) + std::norm(u.u11);
    EXPECT_NEAR(row0, 1.0, 1e-13);
    EXPECT_NEAR(row1, 1.0, 1e-13);
  }
}

TEST(QspResponse, ChebCoeffsMatchSampledResponse) {
  Xoshiro256 rng(8);
  const int d = 7;
  std::vector<double> phases(d + 1);
  for (std::size_t j = 0; j <= static_cast<std::size_t>(d) / 2; ++j) {
    phases[j] = phases[d - j] = rng.uniform(-0.3, 0.3);
  }
  const auto coeffs = response_cheb_coeffs(phases, d);
  poly::ChebSeries series(coeffs);
  for (double x : {-0.7, 0.1, 0.6}) {
    EXPECT_NEAR(series.evaluate(x), qsp_response(phases, x), 1e-12) << x;
  }
}

TEST(QspResponse, SymmetricPhasesGiveDefiniteParity) {
  Xoshiro256 rng(9);
  for (int d : {4, 7}) {
    std::vector<double> phases(d + 1);
    for (int j = 0; j <= d / 2; ++j) phases[j] = phases[d - j] = rng.uniform(-0.4, 0.4);
    const auto coeffs = response_cheb_coeffs(phases, d);
    for (int k = 0; k <= d; ++k) {
      if ((k % 2) != (d % 2)) {
        EXPECT_NEAR(coeffs[k], 0.0, 1e-12) << "d=" << d << " k=" << k;
      }
    }
  }
}

TEST(SymmetricQsp, RecoversSimpleLinearTarget) {
  // f(x) = 0.5 x = 0.5 T_1.
  poly::ChebSeries target({0.0, 0.5});
  const auto res = solve_symmetric_qsp(target);
  EXPECT_TRUE(res.converged) << res.residual;
  for (double x : {-1.0, -0.4, 0.0, 0.3, 0.9}) {
    EXPECT_NEAR(qsp_response(res.phases, x), 0.5 * x, 1e-10) << x;
  }
}

TEST(SymmetricQsp, RecoversChebyshevMixture) {
  poly::ChebSeries target({0.0, 0.4, 0.0, -0.25, 0.0, 0.1});  // odd, ||f|| < 1
  const auto res = solve_symmetric_qsp(target);
  EXPECT_TRUE(res.converged) << res.residual;
  for (double x = -1.0; x <= 1.0; x += 0.125) {
    EXPECT_NEAR(qsp_response(res.phases, x), target.evaluate(x), 1e-9) << x;
  }
}

TEST(SymmetricQsp, RecoversEvenTarget) {
  poly::ChebSeries target({0.1, 0.0, 0.35, 0.0, -0.2});  // even
  const auto res = solve_symmetric_qsp(target);
  EXPECT_TRUE(res.converged) << res.residual;
  for (double x = -1.0; x <= 1.0; x += 0.2) {
    EXPECT_NEAR(qsp_response(res.phases, x), target.evaluate(x), 1e-9) << x;
  }
}

TEST(SymmetricQsp, PhasesAreSymmetric) {
  poly::ChebSeries target({0.0, 0.3, 0.0, 0.2});
  const auto res = solve_symmetric_qsp(target);
  for (std::size_t j = 0; j < res.phases.size(); ++j) {
    EXPECT_NEAR(res.phases[j], res.phases[res.phases.size() - 1 - j], 1e-12);
  }
}

TEST(SymmetricQsp, RoundTripFromRandomPhases) {
  // Generate a response from known symmetric phases, then re-solve and
  // compare responses (phases themselves need not be unique).
  Xoshiro256 rng(10);
  const int d = 9;
  std::vector<double> phases(d + 1);
  for (int j = 0; j <= d / 2; ++j) phases[j] = phases[d - j] = rng.uniform(-0.2, 0.2);
  poly::ChebSeries target(response_cheb_coeffs(phases, d));
  target = target.parity_projected(poly::Parity::kOdd).truncated(1e-14);
  const auto res = solve_symmetric_qsp(target);
  EXPECT_TRUE(res.converged) << res.residual;
  for (double x = -0.95; x <= 1.0; x += 0.15) {
    EXPECT_NEAR(qsp_response(res.phases, x), qsp_response(phases, x), 1e-9) << x;
  }
}

TEST(SymmetricQsp, SolvesInversePolynomialKappa10) {
  // The actual workload: the windowed/scaled inverse target for kappa=10.
  const double kappa = 10.0;
  auto inv = poly::inverse_poly_interpolated(kappa, 1e-4);
  // Rescale so max |P| <= 0.9 (solver requirement; the linear-solver
  // pipeline tracks this scale).
  const double scale = 0.9 / inv.max_abs;
  const auto target = inv.series.scaled(scale);
  const auto res = solve_symmetric_qsp(target);
  EXPECT_TRUE(res.converged) << "residual=" << res.residual << " method=" << res.method;
  for (double x : {0.1, 0.3, 0.55, 0.8, 1.0}) {
    EXPECT_NEAR(qsp_response(res.phases, x), target.evaluate(x), 1e-8) << x;
  }
}

TEST(SymmetricQsp, RejectsMixedParity) {
  poly::ChebSeries bad({0.1, 0.3});
  EXPECT_THROW(solve_symmetric_qsp(bad), contract_violation);
}

TEST(SymmetricQsp, RejectsUnboundedTarget) {
  poly::ChebSeries bad({0.0, 1.2});
  EXPECT_THROW(solve_symmetric_qsp(bad), contract_violation);
}

class SymQspDegreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SymQspDegreeSweep, ConvergesAcrossDegrees) {
  const int d = GetParam();
  // Target: scaled Chebyshev mixture of the right parity.
  std::vector<double> coeffs(d + 1, 0.0);
  coeffs[d] = 0.4;
  if (d >= 3) coeffs[d - 2] = 0.3;
  if (d >= 5) coeffs[d - 4] = -0.15;
  poly::ChebSeries target(coeffs);
  const auto res = solve_symmetric_qsp(target);
  EXPECT_TRUE(res.converged) << "d=" << d << " residual=" << res.residual;
  for (double x = -1.0; x <= 1.0; x += 0.25) {
    EXPECT_NEAR(qsp_response(res.phases, x), target.evaluate(x), 1e-8) << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, SymQspDegreeSweep, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 40));

}  // namespace
}  // namespace mpqls::qsp
