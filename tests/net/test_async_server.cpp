// The deferred-response path of HttpServer (AsyncHandler +
// ResponseHandle): completion from foreign threads, request-order
// responses under pipelining (reads pause while a response is
// outstanding), one-shot semantics, handler exceptions, and late
// responds after connection/server teardown staying safe — the contract
// the cluster coordinator's proxy pool is built on.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.hpp"
#include "net/http_server.hpp"
#include "net/socket.hpp"

namespace mpqls::net {
namespace {

using namespace std::chrono_literals;

HttpServer::Options loopback_options() {
  HttpServer::Options o;
  o.port = 0;
  return o;
}

TEST(AsyncHttpServer, RespondsFromAForeignThread) {
  std::vector<std::thread> responders;
  HttpServer server(loopback_options(),
                    HttpServer::AsyncHandler(
                        [&responders](const HttpRequest& request, HttpServer::ResponseHandle h) {
                          responders.emplace_back([target = request.target, h] {
                            std::this_thread::sleep_for(10ms);
                            HttpResponse r;
                            r.body = "deferred:" + target;
                            h.respond(std::move(r));
                          });
                        }));
  server.start();

  HttpClient client("127.0.0.1", server.port());
  const auto response = client.get("/a");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "deferred:/a");
  // Keep-alive survives a deferred response: same connection, second hit.
  const auto again = client.get("/b");
  EXPECT_EQ(again.body, "deferred:/b");

  for (auto& t : responders) t.join();
  server.stop();
}

TEST(AsyncHttpServer, PipelinedRequestsAnswerInRequestOrder) {
  // Complete out of order on purpose: the server must still answer in
  // request order, because request 2 is not even parsed until response 1
  // went out (reads pause while awaiting).
  std::vector<std::thread> responders;
  HttpServer server(
      loopback_options(),
      HttpServer::AsyncHandler([&responders](const HttpRequest& request,
                                             HttpServer::ResponseHandle h) {
        const auto delay = request.target == "/first" ? 30ms : 0ms;
        responders.emplace_back([delay, target = request.target, h] {
          std::this_thread::sleep_for(delay);
          HttpResponse r;
          r.body = target;
          h.respond(std::move(r));
        });
      }));
  server.start();

  Socket sock = connect_tcp("127.0.0.1", server.port());
  const std::string wire =
      to_wire_request("GET", "/first", "t", "", "application/json", true) +
      to_wire_request("GET", "/second", "t", "", "application/json", true);
  ASSERT_EQ(::send(sock.fd(), wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));

  std::vector<std::string> bodies;
  ResponseParser parser;
  char buf[4096];
  while (bodies.size() < 2) {
    const ssize_t got = ::read(sock.fd(), buf, sizeof buf);
    ASSERT_GT(got, 0) << "server closed before both responses arrived";
    std::string_view data(buf, static_cast<std::size_t>(got));
    while (!data.empty()) {
      data.remove_prefix(parser.consume(data));
      ASSERT_NE(parser.state(), ParseState::kError) << parser.error_message();
      if (parser.state() == ParseState::kComplete) {
        bodies.push_back(parser.body());
        parser.reset();
      }
    }
  }
  EXPECT_EQ(bodies[0], "/first");
  EXPECT_EQ(bodies[1], "/second");

  for (auto& t : responders) t.join();
  server.stop();
}

TEST(AsyncHttpServer, LargePipelinedSecondRequestSurvivesParking) {
  // The second request's body spans several 16 KiB reads that arrive in
  // the SAME EPOLLIN batch that parked the first request — the server
  // must stop reading at the park point (kernel-buffering the rest), not
  // feed the parked parser. A regression here fabricates a garbage
  // request from the parser's moved-from state and corrupts the stash.
  std::vector<std::thread> responders;
  HttpServer server(
      loopback_options(),
      HttpServer::AsyncHandler([&responders](const HttpRequest& request,
                                             HttpServer::ResponseHandle h) {
        const auto delay = request.target == "/slow" ? 50ms : 0ms;
        responders.emplace_back([delay, size = request.body.size(),
                                 target = request.target, h] {
          std::this_thread::sleep_for(delay);
          HttpResponse r;
          r.body = target + ":" + std::to_string(size);
          h.respond(std::move(r));
        });
      }));
  server.start();

  const std::string big_body(40 * 1024, 'b');
  const std::string wire =
      to_wire_request("POST", "/slow", "t", "x", "application/json", true) +
      to_wire_request("POST", "/big", "t", big_body, "application/json", true);
  Socket sock = connect_tcp("127.0.0.1", server.port());
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(sock.fd(), wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }

  std::vector<std::string> bodies;
  ResponseParser parser;
  char buf[4096];
  while (bodies.size() < 2) {
    const ssize_t got = ::read(sock.fd(), buf, sizeof buf);
    ASSERT_GT(got, 0) << "server closed before both responses arrived";
    std::string_view data(buf, static_cast<std::size_t>(got));
    while (!data.empty()) {
      data.remove_prefix(parser.consume(data));
      ASSERT_NE(parser.state(), ParseState::kError) << parser.error_message();
      if (parser.state() == ParseState::kComplete) {
        bodies.push_back(parser.body());
        parser.reset();
      }
    }
  }
  EXPECT_EQ(bodies[0], "/slow:1");
  EXPECT_EQ(bodies[1], "/big:" + std::to_string(big_body.size()));

  for (auto& t : responders) t.join();
  server.stop();
}

TEST(AsyncHttpServer, HandleIsOneShotAcrossCopies) {
  HttpServer server(loopback_options(),
                    HttpServer::AsyncHandler([](const HttpRequest&, HttpServer::ResponseHandle h) {
                      const HttpServer::ResponseHandle copy = h;
                      HttpResponse first;
                      first.body = "first";
                      copy.respond(std::move(first));
                      EXPECT_TRUE(h.responded());
                      HttpResponse second;
                      second.body = "second";
                      h.respond(std::move(second));  // dropped
                    }));
  server.start();
  HttpClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/").body, "first");
  server.stop();
}

TEST(AsyncHttpServer, ThrowingHandlerAnswers500) {
  HttpServer server(loopback_options(),
                    HttpServer::AsyncHandler([](const HttpRequest&, HttpServer::ResponseHandle) {
                      throw std::runtime_error("proxy exploded");
                    }));
  server.start();
  HttpClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/").status, 500);
  server.stop();
}

TEST(AsyncHttpServer, LateRespondAfterStopIsDroppedSafely) {
  HttpServer::ResponseHandle parked;
  std::atomic<bool> captured{false};
  HttpServer server(loopback_options(),
                    HttpServer::AsyncHandler(
                        [&parked, &captured](const HttpRequest&, HttpServer::ResponseHandle h) {
                          parked = h;  // never completed while the server lives
                          captured.store(true);
                        }));
  server.start();

  // Fire a request whose response will never come, from a throwaway
  // client thread (the blocking client would otherwise wait out its full
  // read deadline).
  std::thread orphan([port = server.port()] {
    try {
      Deadlines d;
      d.read = std::chrono::milliseconds(200);
      HttpClient client("127.0.0.1", port, d);
      (void)client.get("/");
    } catch (const HttpError&) {
      // timeout or teardown — both expected
    }
  });
  while (!captured.load()) std::this_thread::sleep_for(1ms);
  orphan.join();
  server.stop();

  HttpResponse r;
  r.body = "too late";
  parked.respond(std::move(r));  // must not crash or write anywhere
  SUCCEED();
}

}  // namespace
}  // namespace mpqls::net
