// Distributed shard-group solves across REAL daemons: two (and four)
// SolverDaemon processes-worth of HTTP stacks on loopback, each rank's
// job submitted as JSON with a "shard" block naming the group and the
// peer endpoints, amplitudes exchanged through POST /v1/shard/exchange
// kShardExchange frames. Ranks must render identical solutions, the
// dist telemetry must surface in the result JSON, /v1/healthz and
// /v1/metrics, and the memory-wall contract must hold over HTTP: a
// qubit-capped daemon answers 413 for a too-wide single-node job yet
// completes the same job as a member of a 4-worker shard group.
#include "net/daemon.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "net/http_client.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace mpqls::net {
namespace {

using namespace std::chrono_literals;

DaemonOptions worker_options(std::size_t qubit_cap = 0) {
  DaemonOptions o;
  o.port = 0;  // ephemeral
  o.service.cache_capacity = 4;
  o.service.solve_threads = 1;
  o.service.job_threads = 2;
  o.service.panel_width = 1;
  o.service.max_statevector_qubits = qubit_cap;
  return o;
}

/// The rank-r job body for a W-member group over `ports`.
std::string shard_job(std::size_t n, std::uint32_t rank,
                      const std::vector<std::uint16_t>& ports) {
  Json shard = Json::object();
  shard["group"] = std::string("00000000deadbeef");
  shard["rank"] = static_cast<std::uint64_t>(rank);
  shard["world"] = static_cast<std::uint64_t>(ports.size());
  Json peers = Json::array();
  for (const auto port : ports) peers.push_back("127.0.0.1:" + std::to_string(port));
  shard["peers"] = std::move(peers);

  Json j = Json::object();
  j["id"] = "dist-rank-" + std::to_string(rank);
  Json matrix = Json::object();
  matrix["scenario"] = std::string("random");
  matrix["n"] = static_cast<std::uint64_t>(n);
  matrix["kappa"] = 10.0;
  matrix["seed"] = static_cast<std::uint64_t>(77);
  j["matrix"] = std::move(matrix);
  Json rhs = Json::object();
  rhs["kind"] = std::string("random");
  rhs["count"] = static_cast<std::uint64_t>(1);
  rhs["seed"] = static_cast<std::uint64_t>(78);
  j["rhs"] = std::move(rhs);
  Json qsvt = Json::object();
  qsvt["backend"] = std::string("gate");
  qsvt["eps_l"] = 1e-2;
  Json options = Json::object();
  options["eps"] = 1e-10;
  options["qsvt"] = std::move(qsvt);
  j["options"] = std::move(options);
  j["shard"] = std::move(shard);
  return j.dump();
}

Json poll_done(HttpClient& client, const std::string& job_id,
               std::chrono::seconds timeout = 120s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto response = client.get("/v1/jobs/" + job_id);
    EXPECT_EQ(response.status, 200) << response.body;
    Json status = Json::parse(response.body);
    const std::string state = status.at("state").as_string();
    if (state != "queued" && state != "running") return status;
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "timed out polling " << job_id;
      return status;
    }
    std::this_thread::sleep_for(5ms);
  }
}

/// Submit rank r's job to daemon r for every rank, then poll all to done.
std::vector<Json> run_shard_group(std::vector<std::unique_ptr<SolverDaemon>>& daemons,
                                  std::size_t n) {
  std::vector<std::uint16_t> ports;
  for (const auto& d : daemons) ports.push_back(d->port());
  const std::uint32_t world = static_cast<std::uint32_t>(daemons.size());

  std::vector<std::string> ids(world);
  for (std::uint32_t r = 0; r < world; ++r) {
    HttpClient client("127.0.0.1", ports[r]);
    const auto response = client.post("/v1/jobs", shard_job(n, r, ports));
    EXPECT_EQ(response.status, 202) << response.body;
    ids[r] = Json::parse(response.body).at("job_id").as_string();
  }
  std::vector<Json> statuses(world);
  for (std::uint32_t r = 0; r < world; ++r) {
    HttpClient client("127.0.0.1", ports[r]);
    statuses[r] = poll_done(client, ids[r]);
    EXPECT_EQ(statuses[r].at("state").as_string(), "done") << statuses[r].dump();
  }
  return statuses;
}

TEST(DistDaemon, TwoWorkerGroupSolvesOverLoopbackHttp) {
  std::vector<std::unique_ptr<SolverDaemon>> daemons;
  for (int i = 0; i < 2; ++i) {
    daemons.push_back(std::make_unique<SolverDaemon>(worker_options()));
    daemons.back()->start();
  }
  const auto statuses = run_shard_group(daemons, 8);

  // Both ranks rendered the identical solution (lockstep double path).
  const auto& x0 =
      statuses[0].at("result").at("solves").as_array()[0].at("report").at("x").as_array();
  const auto& x1 =
      statuses[1].at("result").at("solves").as_array()[0].at("report").at("x").as_array();
  ASSERT_EQ(x0.size(), x1.size());
  ASSERT_GT(x0.size(), 0u);
  for (std::size_t i = 0; i < x0.size(); ++i) {
    EXPECT_EQ(x0[i].as_number(), x1[i].as_number()) << "component " << i;
  }

  // The result JSON carries the dist telemetry block per rank.
  for (std::uint32_t r = 0; r < 2; ++r) {
    const Json& dist = statuses[r].at("result").at("dist");
    EXPECT_EQ(dist.at("shard_rank").as_uint(), r);
    EXPECT_EQ(dist.at("shard_world").as_uint(), 2u);
    EXPECT_GT(dist.at("exchange_rounds").as_uint(), 0u);
    EXPECT_GT(dist.at("bytes_moved").as_uint(), 0u);
    EXPECT_LE(dist.at("plan_scheduled_rounds").as_uint(),
              dist.at("plan_naive_rounds").as_uint());
  }

  // healthz reports the dist posture; the finished group is unregistered.
  HttpClient client("127.0.0.1", daemons[0]->port());
  const Json health = Json::parse(client.get("/v1/healthz").body);
  ASSERT_TRUE(health.contains("dist"));
  EXPECT_EQ(health.at("dist").at("max_statevector_qubits").as_uint(), 0u);
  EXPECT_EQ(health.at("dist").at("active_groups").as_array().size(), 0u);

  // And the mpqls_dist_* series moved on both ranks.
  for (const auto& daemon : daemons) {
    const std::string text = daemon->metrics_text();
    EXPECT_NE(text.find("mpqls_dist_jobs_total 1"), std::string::npos) << text;
    EXPECT_EQ(text.find("mpqls_dist_exchange_rounds_total 0\n"), std::string::npos);
  }
  for (auto& daemon : daemons) daemon->drain(5000ms);
}

TEST(DistDaemon, QubitCapAnswers413UntilTheGroupIsLargeEnough) {
  // Four daemons capped at 5 local qubits. The n = 16 job embeds as 7
  // circuit qubits: a single-node submit must die at admission with 413,
  // while the same job sharded over W = 4 (7 - 2 = 5 local qubits per
  // rank) completes end to end.
  std::vector<std::unique_ptr<SolverDaemon>> daemons;
  for (int i = 0; i < 4; ++i) {
    daemons.push_back(std::make_unique<SolverDaemon>(worker_options(/*qubit_cap=*/5)));
    daemons.back()->start();
  }

  {
    // The same job WITHOUT a shard block: a single-node submit.
    Json body = Json::parse(shard_job(16, 0, {daemons[0]->port(), daemons[0]->port()}));
    body.as_object().erase("shard");
    HttpClient client("127.0.0.1", daemons[0]->port());
    const auto single = client.post("/v1/jobs", body.dump());
    EXPECT_EQ(single.status, 413) << single.body;
    const Json err = Json::parse(single.body);
    EXPECT_EQ(err.at("estimated_qubits").as_uint(), 7u);
    EXPECT_EQ(err.at("local_qubits").as_uint(), 7u);
    EXPECT_EQ(err.at("max_statevector_qubits").as_uint(), 5u);
  }

  const auto statuses = run_shard_group(daemons, 16);
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_TRUE(statuses[r].at("result").at("all_converged").as_bool()) << "rank " << r;
    EXPECT_EQ(statuses[r].at("result").at("dist").at("shard_world").as_uint(), 4u);
  }
  for (auto& daemon : daemons) daemon->drain(5000ms);
}

TEST(DistDaemon, ShardExchangeRouteValidatesItsInput) {
  SolverDaemon daemon(worker_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  // JSON bodies are refused — the route is frame-only.
  const auto not_frame = client.post("/v1/shard/exchange", "{}", "application/json");
  EXPECT_EQ(not_frame.status, 415);

  // A malformed frame dies with the wire error, not a deposit.
  const auto garbage =
      client.post("/v1/shard/exchange", "not-a-frame", wire::kContentType);
  EXPECT_EQ(garbage.status, 400);

  // A well-formed frame is parked for the (future) awaiting job: 200.
  const std::string frame = wire::encode_shard_exchange(0x42, 1, 0, "payload-bytes");
  const auto ok = client.post("/v1/shard/exchange", frame, wire::kContentType);
  EXPECT_EQ(ok.status, 200) << ok.body;
  EXPECT_TRUE(Json::parse(ok.body).at("ok").as_bool());

  daemon.drain(5000ms);
}

}  // namespace
}  // namespace mpqls::net
