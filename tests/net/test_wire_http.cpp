// Loopback tests for the daemon's binary protocol + matrix store surface:
// dual-encoding submits that solve to identical solutions, the
// upload/by-ref/404-miss/re-upload self-heal loop, content negotiation on
// the result route, 415 for unknown media types, binary-safe 400s (no
// payload bytes echoed), and the mpqls_store_*/mpqls_wire_* metric
// families.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "linalg/random_matrix.hpp"
#include "net/daemon.hpp"
#include "net/http_client.hpp"
#include "service/json_io.hpp"
#include "service/limits.hpp"
#include "wire/codec.hpp"

namespace mpqls::net {
namespace {

using namespace std::chrono_literals;

DaemonOptions loopback_options() {
  DaemonOptions o;
  o.port = 0;  // ephemeral
  o.service.cache_capacity = 4;
  o.service.solve_threads = 2;
  o.service.job_threads = 2;
  return o;
}

/// A small dense job with explicit matrix and right-hand sides — the only
/// request shape the binary codec ships, so both encodings describe the
/// exact same solve.
service::SolveRequest dense_request(const std::string& id) {
  Xoshiro256 rng(31);
  service::SolveRequest req;
  req.id = id;
  req.A = linalg::random_with_cond(rng, 8, 6.0);
  req.rhs.push_back(linalg::random_unit_vector(rng, 8));
  req.rhs.push_back(linalg::random_unit_vector(rng, 8));
  req.options.eps = 1e-10;
  req.options.qsvt.eps_l = 1e-2;
  return req;
}

std::string submit_expect_202(HttpClient& client, const std::string& body,
                              const std::string& content_type) {
  const auto response = client.post("/v1/jobs", body, content_type);
  EXPECT_EQ(response.status, 202) << response.body;
  return Json::parse(response.body).at("job_id").as_string();
}

Json poll_until_terminal(HttpClient& client, const std::string& job_id,
                         std::chrono::seconds timeout = 60s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto response = client.get("/v1/jobs/" + job_id);
    EXPECT_EQ(response.status, 200) << response.body;
    Json status = Json::parse(response.body);
    const std::string state = status.at("state").as_string();
    if (state == "done" || state == "failed" || state == "cancelled") return status;
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "timed out polling " << job_id;
      return status;
    }
    std::this_thread::sleep_for(5ms);
  }
}

/// Fetch the finished result through the binary route.
service::SolveResult binary_result(HttpClient& client, const std::string& job_id) {
  const auto response =
      client.get("/v1/jobs/" + job_id + "/result", {{"Accept", wire::kContentType}});
  EXPECT_EQ(response.status, 200);
  const std::string* ctype = find_header(response.headers, "Content-Type");
  EXPECT_TRUE(ctype != nullptr && wire::is_frame_content_type(*ctype));
  return wire::decode_result(response.body);
}

TEST(WireHttp, BinaryAndJsonSubmissionsSolveIdentically) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  const auto req = dense_request("parity");
  const std::string json_id =
      submit_expect_202(client, service::to_json(req).dump(), "application/json");
  const std::string wire_id =
      submit_expect_202(client, wire::encode_request(req), wire::kContentType);

  const Json json_status = poll_until_terminal(client, json_id);
  const Json wire_status = poll_until_terminal(client, wire_id);
  ASSERT_EQ(json_status.at("state").as_string(), "done") << json_status.dump();
  ASSERT_EQ(wire_status.at("state").as_string(), "done") << wire_status.dump();

  // Same job, same deterministic solver: solutions agree bitwise across
  // encodings — fetched through the JSON splice and the binary route.
  const auto via_wire = binary_result(client, wire_id);
  const Json json_result = json_status.at("result");
  EXPECT_TRUE(via_wire.all_converged);
  EXPECT_TRUE(json_result.at("all_converged").as_bool());
  const auto& json_solves = json_result.at("solves").as_array();
  ASSERT_EQ(via_wire.solves.size(), json_solves.size());
  for (std::size_t k = 0; k < via_wire.solves.size(); ++k) {
    const auto& x_json = json_solves[k].at("report").at("x").as_array();
    const auto& x_wire = via_wire.solves[k].report.x;
    ASSERT_EQ(x_wire.size(), x_json.size());
    for (std::size_t i = 0; i < x_wire.size(); ++i) {
      EXPECT_EQ(x_wire[i], x_json[i].as_number()) << "solve " << k << " x[" << i << "]";
    }
  }
  daemon.drain(5000ms);
}

TEST(WireHttp, UploadByRefSolveAndStoreProbe) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  auto req = dense_request("by-ref");
  const auto uploaded =
      client.put("/v1/matrices", wire::encode_matrix(req.A), wire::kContentType);
  ASSERT_EQ(uploaded.status, 201) << uploaded.body;
  const Json up = Json::parse(uploaded.body);
  EXPECT_TRUE(up.at("created").as_bool());
  EXPECT_EQ(up.at("rows").as_uint(), 8u);
  const std::string ref_hex = up.at("matrix_ref").as_string();
  req.matrix_ref = service::u64_from_hex(ref_hex);

  // Idempotent re-upload: 200, created=false.
  const auto again =
      client.put("/v1/matrices", wire::encode_matrix(req.A), wire::kContentType);
  EXPECT_EQ(again.status, 200);
  EXPECT_FALSE(Json::parse(again.body).at("created").as_bool());

  // The probe route sees it; an unknown ref is a 404.
  EXPECT_EQ(client.get("/v1/matrices/" + ref_hex).status, 200);
  EXPECT_EQ(client.get("/v1/matrices/00000000deadbeef").status, 404);
  EXPECT_EQ(client.get("/v1/matrices/not-hex").status, 400);

  // By-ref submits through BOTH encodings; neither body carries the matrix.
  const std::string wire_body = wire::encode_request(req);
  EXPECT_LT(wire_body.size(), 1024u);
  Json json_body = service::to_json(req);
  ASSERT_TRUE(json_body.contains("matrix_ref"));
  const std::string wire_id = submit_expect_202(client, wire_body, wire::kContentType);
  const std::string json_id =
      submit_expect_202(client, json_body.dump(), "application/json");

  EXPECT_EQ(poll_until_terminal(client, wire_id).at("state").as_string(), "done");
  EXPECT_EQ(poll_until_terminal(client, json_id).at("state").as_string(), "done");
  EXPECT_TRUE(binary_result(client, wire_id).all_converged);
  daemon.drain(5000ms);
}

TEST(WireHttp, ColdRefAnswers404AndReUploadHeals) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  auto req = dense_request("self-heal");
  req.matrix_ref = service::hash_matrix(req.A);  // never uploaded

  // Both encodings get the synchronous 404 carrying the ref.
  for (const auto& [body, ctype] :
       std::vector<std::pair<std::string, std::string>>{
           {wire::encode_request(req), wire::kContentType},
           {service::to_json(req).dump(), "application/json"}}) {
    const auto response = client.post("/v1/jobs", body, ctype);
    EXPECT_EQ(response.status, 404) << response.body;
    const Json error = Json::parse(response.body);
    EXPECT_EQ(error.at("error").as_string(), "unknown matrix_ref");
    EXPECT_EQ(service::u64_from_hex(error.at("matrix_ref").as_string()), req.matrix_ref);
  }

  // The client-side healing loop: upload, resubmit the SAME bytes, done.
  ASSERT_EQ(client.put("/v1/matrices", wire::encode_matrix(req.A), wire::kContentType).status,
            201);
  const std::string id =
      submit_expect_202(client, wire::encode_request(req), wire::kContentType);
  EXPECT_EQ(poll_until_terminal(client, id).at("state").as_string(), "done");
  daemon.drain(5000ms);
}

TEST(WireHttp, UnknownMediaTypesAndBinaryJunkAreRejectedSafely) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  // Unknown Content-Type on both upload and submit: 415.
  EXPECT_EQ(client.post("/v1/jobs", "{}", "application/xml").status, 415);
  EXPECT_EQ(client.put("/v1/matrices", "{}", "text/csv").status, 415);

  // Binary junk under the frame content type: a 400 whose body is pure
  // printable JSON — no payload byte ever echoed back.
  std::string junk = "\x01\x02\x7f garbage \xff\xfe";
  for (const char* target : {"/v1/jobs", "/v1/matrices"}) {
    const auto response = target == std::string("/v1/jobs")
                              ? client.post(target, junk, wire::kContentType)
                              : client.put(target, junk, wire::kContentType);
    EXPECT_EQ(response.status, 400) << target;
    for (const unsigned char c : response.body) {
      EXPECT_TRUE(c == '\n' || (c >= 0x20 && c < 0x7f))
          << "non-printable byte in 400 body for " << target;
    }
    EXPECT_NO_THROW(Json::parse(response.body));
  }

  // A valid matrix frame on the job route is the wrong tag: still a clean 400.
  const auto wrong_tag =
      client.post("/v1/jobs", wire::encode_matrix(linalg::Matrix<double>(2, 2)),
                  wire::kContentType);
  EXPECT_EQ(wrong_tag.status, 400);

  // Non-square JSON upload: rejected with the constraint, not a crash.
  const auto nonsquare = client.put(
      "/v1/matrices", R"({"scenario": "dense", "rows": [[1, 2, 3], [4, 5, 6]]})",
      "application/json");
  EXPECT_EQ(nonsquare.status, 400);
  EXPECT_NE(nonsquare.body.find("square"), std::string::npos);
  daemon.drain(5000ms);
}

TEST(WireHttp, ResultRouteNegotiatesEncodingAndGuardsStates) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  // Unknown id.
  EXPECT_EQ(client.get("/v1/jobs/nope/result").status, 404);

  // A job that fails at materialization has no result: 409 with the state.
  const std::string failed_id = submit_expect_202(
      client, R"({"id": "ragged", "matrix": {"scenario": "dense", "rows": [[1, 2], [3]]},
                  "rhs": {"kind": "random", "count": 1, "seed": 1}, "options": {}})",
      "application/json");
  EXPECT_EQ(poll_until_terminal(client, failed_id).at("state").as_string(), "failed");
  const auto conflict = client.get("/v1/jobs/" + failed_id + "/result");
  EXPECT_EQ(conflict.status, 409);
  EXPECT_EQ(Json::parse(conflict.body).at("state").as_string(), "failed");

  // A finished job serves both encodings of the same result.
  const auto req = dense_request("negotiate");
  const std::string id =
      submit_expect_202(client, service::to_json(req).dump(), "application/json");
  ASSERT_EQ(poll_until_terminal(client, id).at("state").as_string(), "done");

  const auto as_json = client.get("/v1/jobs/" + id + "/result");
  EXPECT_EQ(as_json.status, 200);
  const Json parsed = Json::parse(as_json.body);
  const auto as_frame = binary_result(client, id);
  EXPECT_EQ(as_frame.id, parsed.at("id").as_string());
  EXPECT_EQ(as_frame.all_converged, parsed.at("all_converged").as_bool());
  daemon.drain(5000ms);
}

TEST(WireHttp, MetricsExposeStoreAndPerEncodingWireFamilies) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  const auto req = dense_request("metrics");
  const auto uploaded =
      client.put("/v1/matrices", wire::encode_matrix(req.A), wire::kContentType);
  ASSERT_EQ(uploaded.status, 201);
  auto by_ref = req;
  by_ref.matrix_ref =
      service::u64_from_hex(Json::parse(uploaded.body).at("matrix_ref").as_string());
  const std::string wire_id =
      submit_expect_202(client, wire::encode_request(by_ref), wire::kContentType);
  const std::string json_id =
      submit_expect_202(client, service::to_json(req).dump(), "application/json");
  poll_until_terminal(client, wire_id);
  poll_until_terminal(client, json_id);

  const auto metrics = client.get("/v1/metrics");
  ASSERT_EQ(metrics.status, 200);
  const std::string& text = metrics.body;
  for (const char* family :
       {"mpqls_store_entries", "mpqls_store_bytes", "mpqls_store_capacity_bytes",
        "mpqls_store_hits_total", "mpqls_store_misses_total", "mpqls_store_puts_total",
        "mpqls_store_evictions_total"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
  // One labeled sample per encoding on every wire family.
  for (const char* family :
       {"mpqls_wire_requests_total", "mpqls_wire_request_bytes_total",
        "mpqls_wire_responses_total", "mpqls_wire_response_bytes_total"}) {
    EXPECT_NE(text.find(std::string(family) + "{encoding=\"json\"}"), std::string::npos)
        << family;
    EXPECT_NE(text.find(std::string(family) + "{encoding=\"binary\"}"), std::string::npos)
        << family;
  }
  daemon.drain(5000ms);
}

}  // namespace
}  // namespace mpqls::net
