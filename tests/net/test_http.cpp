// HTTP layer fundamentals: incremental request parsing (byte-at-a-time
// and pipelined), the request-size/header hardening codes (400, 413, 431,
// 501, 505), response wire format round trips, and router dispatch with
// captures, 404 and 405.
#include "net/http.hpp"

#include <gtest/gtest.h>

#include <string>

#include "net/router.hpp"

namespace mpqls::net {
namespace {

RequestParser parse_all(std::string_view wire, ParseLimits limits = {}) {
  RequestParser parser(limits);
  const std::size_t used = parser.consume(wire);
  EXPECT_LE(used, wire.size());
  return parser;
}

TEST(RequestParser, SimpleGet) {
  auto p = parse_all("GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(p.state(), ParseState::kComplete);
  const auto& req = p.request();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/v1/healthz");
  EXPECT_EQ(req.query, "");
  EXPECT_TRUE(req.keep_alive);
  ASSERT_NE(req.header("host"), nullptr);  // case-insensitive lookup
  EXPECT_EQ(*req.header("HOST"), "x");
}

TEST(RequestParser, PostBodyByteAtATime) {
  const std::string wire =
      "POST /v1/jobs HTTP/1.1\r\nContent-Length: 11\r\nContent-Type: application/json\r\n\r\n"
      "{\"id\": \"x\"}";
  RequestParser parser;
  for (char c : wire) {
    ASSERT_NE(parser.state(), ParseState::kError);
    EXPECT_EQ(parser.consume(std::string_view(&c, 1)), 1u);
  }
  ASSERT_EQ(parser.state(), ParseState::kComplete);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "{\"id\": \"x\"}");
}

TEST(RequestParser, PipelinedRequestsLeaveTheRemainder) {
  const std::string wire =
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\n\r\n";
  RequestParser parser;
  const std::size_t used = parser.consume(wire);
  ASSERT_EQ(parser.state(), ParseState::kComplete);
  EXPECT_EQ(parser.request().path, "/a");
  EXPECT_LT(used, wire.size());  // the second request was not consumed

  parser.reset();
  parser.consume(std::string_view(wire).substr(used));
  ASSERT_EQ(parser.state(), ParseState::kComplete);
  EXPECT_EQ(parser.request().path, "/b");
}

TEST(RequestParser, LfTerminatedHeadWithCrlfCrlfInsideTheBody) {
  // The earliest terminator frames the head: a CRLFCRLF sequence inside
  // the body bytes of the same read must not override the bare-LF blank
  // line that actually ended an LF-tolerated head.
  const std::string wire =
      "POST /v1/jobs HTTP/1.0\nContent-Length: 10\n\n"
      "ab\r\n\r\ncdef";
  RequestParser parser;
  const std::size_t used = parser.consume(wire);
  ASSERT_EQ(parser.state(), ParseState::kComplete);
  EXPECT_EQ(used, wire.size());
  EXPECT_EQ(parser.request().body, "ab\r\n\r\ncdef");
}

TEST(RequestParser, QueryStringSplits) {
  auto p = parse_all("GET /v1/jobs?limit=3&offset=2 HTTP/1.1\r\n\r\n");
  ASSERT_EQ(p.state(), ParseState::kComplete);
  EXPECT_EQ(p.request().path, "/v1/jobs");
  EXPECT_EQ(p.request().query, "limit=3&offset=2");
}

TEST(RequestParser, Http10DefaultsToClose) {
  auto p = parse_all("GET / HTTP/1.0\r\n\r\n");
  ASSERT_EQ(p.state(), ParseState::kComplete);
  EXPECT_FALSE(p.request().keep_alive);

  auto p2 = parse_all("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  ASSERT_EQ(p2.state(), ParseState::kComplete);
  EXPECT_TRUE(p2.request().keep_alive);

  auto p3 = parse_all("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_EQ(p3.state(), ParseState::kComplete);
  EXPECT_FALSE(p3.request().keep_alive);
}

TEST(RequestParser, MalformedRequestLineIs400) {
  for (const char* wire : {
           "GET\r\n\r\n",                        // no target
           "GET /x\r\n\r\n",                     // no version
           "G@T /x HTTP/1.1\r\n\r\n",            // bad method token
           "GET x HTTP/1.1\r\n\r\n",             // target not origin-form
           "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",  // bad header line
           "GET /x HTTP/1.1\r\nContent-Length: 9q\r\n\r\n",  // bad length
           "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n",
       }) {
    auto p = parse_all(wire);
    ASSERT_EQ(p.state(), ParseState::kError) << wire;
    EXPECT_EQ(p.error_status(), 400) << wire;
  }
}

TEST(RequestParser, UnsupportedVersionIs505) {
  auto p = parse_all("GET / HTTP/2.0\r\n\r\n");
  ASSERT_EQ(p.state(), ParseState::kError);
  EXPECT_EQ(p.error_status(), 505);
}

TEST(RequestParser, ChunkedUploadIs501) {
  auto p = parse_all("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_EQ(p.state(), ParseState::kError);
  EXPECT_EQ(p.error_status(), 501);
}

TEST(RequestParser, OversizedBodyIs413BeforeAnyBodyByte) {
  ParseLimits limits;
  limits.max_body_bytes = 16;
  auto p = parse_all("POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n", limits);
  ASSERT_EQ(p.state(), ParseState::kError);
  EXPECT_EQ(p.error_status(), 413);
}

TEST(RequestParser, OversizedHeadIs431) {
  ParseLimits limits;
  limits.max_head_bytes = 64;
  const std::string wire =
      "GET / HTTP/1.1\r\nX-Padding: " + std::string(100, 'a') + "\r\n\r\n";
  auto p = parse_all(wire, limits);
  ASSERT_EQ(p.state(), ParseState::kError);
  EXPECT_EQ(p.error_status(), 431);
}

TEST(RequestParser, TooManyHeadersIs431) {
  ParseLimits limits;
  limits.max_headers = 4;
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) wire += "H" + std::to_string(i) + ": v\r\n";
  wire += "\r\n";
  auto p = parse_all(wire, limits);
  ASSERT_EQ(p.state(), ParseState::kError);
  EXPECT_EQ(p.error_status(), 431);
}

TEST(RequestParser, HeadFloodWithoutTerminatorErrorsInsteadOfBuffering) {
  ParseLimits limits;
  limits.max_head_bytes = 128;
  RequestParser parser(limits);
  // Never sends the blank line; the parser must give up by itself.
  std::string flood = "GET / HTTP/1.1\r\n";
  flood += "A: " + std::string(1000, 'x');
  parser.consume(flood);
  ASSERT_EQ(parser.state(), ParseState::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(ResponseWire, RoundTripsThroughResponseParser) {
  HttpResponse response;
  response.status = 202;
  response.body = "{\"job_id\": \"job-1\"}\n";
  response.headers.emplace_back("Retry-After", "1");
  const std::string wire = to_wire(response);

  ResponseParser parser;
  // Split the wire mid-head and mid-body to exercise incremental feeding.
  const std::size_t cut = wire.size() / 2;
  parser.consume(std::string_view(wire).substr(0, cut));
  parser.consume(std::string_view(wire).substr(cut));
  ASSERT_EQ(parser.state(), ParseState::kComplete);
  EXPECT_EQ(parser.status(), 202);
  EXPECT_EQ(parser.body(), response.body);
  ASSERT_NE(find_header(parser.headers(), "retry-after"), nullptr);
  EXPECT_TRUE(parser.keep_alive());
}

TEST(ResponseWire, RequestWireParsesBack) {
  const std::string wire =
      to_wire_request("POST", "/v1/jobs", "127.0.0.1", "{\"id\":1}", "application/json", true);
  RequestParser parser;
  parser.consume(wire);
  ASSERT_EQ(parser.state(), ParseState::kComplete);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "{\"id\":1}");
  ASSERT_NE(parser.request().header("Host"), nullptr);
}

TEST(Router, DispatchesWithCaptures) {
  Router router;
  router.add("GET", "/v1/jobs/{id}", [](const HttpRequest&, const PathParams& params) {
    HttpResponse r;
    r.body = params.get("id");
    return r;
  });
  router.add("POST", "/v1/jobs", [](const HttpRequest&, const PathParams&) {
    HttpResponse r;
    r.status = 202;
    return r;
  });

  auto p = parse_all("GET /v1/jobs/job-17 HTTP/1.1\r\n\r\n");
  ASSERT_EQ(p.state(), ParseState::kComplete);
  const auto response = router.dispatch(p.request());
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "job-17");
}

TEST(Router, UnknownPathIs404AndWrongMethodIs405) {
  Router router;
  router.add("POST", "/v1/jobs", [](const HttpRequest&, const PathParams&) {
    return HttpResponse{};
  });

  auto missing = parse_all("GET /v1/nope HTTP/1.1\r\n\r\n");
  EXPECT_EQ(router.dispatch(missing.request()).status, 404);

  auto wrong_method = parse_all("GET /v1/jobs HTTP/1.1\r\n\r\n");
  const auto response = router.dispatch(wrong_method.request());
  EXPECT_EQ(response.status, 405);
  ASSERT_NE(find_header(response.headers, "Allow"), nullptr);
  EXPECT_EQ(*find_header(response.headers, "Allow"), "POST");
}

// --- Edge cases the cluster coordinator's proxying relies on -------------

TEST(RequestParser, DuplicateHeadersAreAllKeptAndLookupFindsTheFirst) {
  auto p = parse_all(
      "GET / HTTP/1.1\r\nX-Trace: one\r\nX-Trace: two\r\nHost: h\r\n\r\n");
  ASSERT_EQ(p.state(), ParseState::kComplete);
  std::size_t count = 0;
  for (const auto& [k, v] : p.request().headers) {
    if (k == "X-Trace") ++count;
  }
  EXPECT_EQ(count, 2u);  // nothing silently dropped
  ASSERT_NE(p.request().header("X-Trace"), nullptr);
  EXPECT_EQ(*p.request().header("X-Trace"), "one");
}

TEST(RequestParser, DuplicateContentLengthAgreeingIsAcceptedConflictingIs400) {
  auto agree = parse_all(
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok");
  EXPECT_EQ(agree.state(), ParseState::kComplete);
  EXPECT_EQ(agree.request().body, "ok");

  // Conflicting lengths are the classic request-smuggling vector: the
  // proxy and the worker must never disagree about where the body ends.
  auto conflict = parse_all(
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 9\r\n\r\nok");
  ASSERT_EQ(conflict.state(), ParseState::kError);
  EXPECT_EQ(conflict.error_status(), 400);
}

TEST(RequestParser, ChunkedIs501EvenWithAContentLengthAlongside) {
  auto p = parse_all(
      "POST / HTTP/1.1\r\nContent-Length: 4\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_EQ(p.state(), ParseState::kError);
  EXPECT_EQ(p.error_status(), 501);
}

TEST(Router, OversizedJobIdCaptureIsReturnedIntactNotTruncated) {
  Router router;
  router.add("GET", "/v1/jobs/{id}", [](const HttpRequest&, const PathParams& params) {
    HttpResponse r;
    r.body = params.get("id");
    return r;
  });
  // A hostile id as long as the head cap allows must come back byte-for-
  // byte (the daemon answers 404 from the registry; nothing may truncate
  // or crash en route).
  const std::string huge_id(4096, 'a');
  auto p = parse_all("GET /v1/jobs/" + huge_id + " HTTP/1.1\r\n\r\n",
                     ParseLimits{.max_head_bytes = 8192});
  ASSERT_EQ(p.state(), ParseState::kComplete);
  const auto response = router.dispatch(p.request());
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, huge_id);
}

TEST(Router, ClusterIdWithEmbeddedSlashIsA404NotAMisroute) {
  Router router;
  router.add("GET", "/v1/jobs/{id}", [](const HttpRequest&, const PathParams&) {
    return HttpResponse{};
  });
  // "w0-job-1/../../etc" adds path segments, so the 2-segment pattern
  // must NOT match — the capture never swallows a '/'.
  auto p = parse_all("GET /v1/jobs/w0-job-1/extra HTTP/1.1\r\n\r\n");
  ASSERT_EQ(p.state(), ParseState::kComplete);
  EXPECT_EQ(router.dispatch(p.request()).status, 404);
}

}  // namespace
}  // namespace mpqls::net
