// Loopback integration tests for the networked solver daemon: concurrent
// keep-alive submissions whose results match the synchronous
// SolverService path bit-for-bit, live Prometheus metrics, 429
// backpressure when the bounded queue saturates, 503 + drain semantics on
// shutdown, and precise HTTP error codes for hostile input.
#include "net/daemon.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/trace.hpp"
#include "net/http_client.hpp"
#include "service/json_io.hpp"

namespace mpqls::net {
namespace {

using namespace std::chrono_literals;

constexpr const char* kPoissonJob = R"({
  "id": "poisson1d-multi-rhs",
  "matrix": {"scenario": "poisson1d", "n": 8},
  "rhs": {"kind": "random", "count": 3, "seed": 21},
  "options": {"eps": 1e-10, "qsvt": {"backend": "matrix", "eps_l": 1e-2}}
})";

constexpr const char* kTridiagJob = R"({
  "id": "tridiag",
  "matrix": {"scenario": "tridiagonal", "n": 8},
  "rhs": {"kind": "random", "count": 2, "seed": 22},
  "options": {"eps": 1e-9, "qsvt": {"backend": "matrix", "eps_l": 2e-2}}
})";

DaemonOptions loopback_options() {
  DaemonOptions o;
  o.port = 0;  // ephemeral
  o.service.cache_capacity = 4;
  o.service.solve_threads = 2;
  o.service.job_threads = 2;
  return o;
}

/// POST a job and return its assigned id (asserts 202).
std::string submit(HttpClient& client, const std::string& body) {
  const auto response = client.post("/v1/jobs", body);
  EXPECT_EQ(response.status, 202) << response.body;
  return Json::parse(response.body).at("job_id").as_string();
}

Json poll_until_terminal(HttpClient& client, const std::string& job_id,
                         std::chrono::seconds timeout = 60s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto response = client.get("/v1/jobs/" + job_id);
    EXPECT_EQ(response.status, 200) << response.body;
    Json status = Json::parse(response.body);
    const std::string state = status.at("state").as_string();
    if (state == "done" || state == "failed" || state == "cancelled") return status;
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "timed out polling " << job_id;
      return status;
    }
    std::this_thread::sleep_for(5ms);
  }
}

/// Value of a (label-free) sample line in Prometheus exposition text.
double metric_value(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const auto pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos) << "metric " << name << " missing";
  if (pos == std::string::npos) return -1.0;
  return std::stod(text.substr(pos + needle.size()));
}

/// Value of a sample line carrying a single precision="..." label.
double tier_metric_value(const std::string& text, const std::string& name,
                         const std::string& tier) {
  const std::string needle = "\n" + name + "{precision=\"" + tier + "\"} ";
  const auto pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos) << "metric " << name << "{" << tier << "} missing";
  if (pos == std::string::npos) return -1.0;
  return std::stod(text.substr(pos + needle.size()));
}

TEST(SolverDaemon, HealthzAnswersOnEphemeralPort) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  ASSERT_NE(daemon.port(), 0);

  HttpClient client("127.0.0.1", daemon.port());
  const auto response = client.get("/v1/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(Json::parse(response.body).at("status").as_string(), "ok");
  daemon.drain(5000ms);
}

TEST(SolverDaemon, ConcurrentJobsMatchSynchronousPathBitwise) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  const std::uint16_t port = daemon.port();

  // Two clients submit concurrently over their own keep-alive connections;
  // the first also re-submits the poisson job so the context cache gets a
  // same-matrix hit.
  auto run_client = [port](std::vector<std::string> bodies) {
    HttpClient client("127.0.0.1", port);
    std::vector<Json> results;
    std::vector<std::string> ids;
    for (const auto& body : bodies) ids.push_back(submit(client, body));
    for (const auto& id : ids) {
      Json status = poll_until_terminal(client, id);
      EXPECT_EQ(status.at("state").as_string(), "done") << status.dump();
      results.push_back(status);
    }
    return results;
  };
  auto poisson_future = std::async(std::launch::async, run_client,
                                   std::vector<std::string>{kPoissonJob, kPoissonJob});
  auto tridiag_future =
      std::async(std::launch::async, run_client, std::vector<std::string>{kTridiagJob});
  const auto poisson_statuses = poisson_future.get();
  const auto tridiag_statuses = tridiag_future.get();

  // Reference: the same requests through the synchronous in-process path
  // on a fresh service. Results must agree bit-for-bit.
  service::SolverService reference({.cache_capacity = 4, .solve_threads = 1, .job_threads = 1});
  const auto check_bitwise = [&reference](const Json& status, const char* job_text) {
    const auto request = service::request_from_json(Json::parse(job_text));
    const auto want = reference.solve(request);
    const auto& got_solves = status.at("result").at("solves").as_array();
    ASSERT_EQ(got_solves.size(), want.solves.size());
    EXPECT_TRUE(status.at("result").at("all_converged").as_bool());
    for (std::size_t k = 0; k < want.solves.size(); ++k) {
      const auto& got_x = got_solves[k].at("report").at("x").as_array();
      const auto& want_x = want.solves[k].report.x;
      ASSERT_EQ(got_x.size(), want_x.size());
      for (std::size_t i = 0; i < want_x.size(); ++i) {
        // JSON numbers round-trip losslessly, so bitwise comparison of the
        // doubles is exact.
        EXPECT_EQ(got_x[i].as_number(), want_x[i]) << "solve " << k << " component " << i;
      }
    }
  };
  check_bitwise(poisson_statuses[0], kPoissonJob);
  check_bitwise(poisson_statuses[1], kPoissonJob);
  check_bitwise(tridiag_statuses[0], kTridiagJob);

  // Metrics reflect what just happened: 3 accepted jobs, 2 distinct
  // matrices prepared, 1 cache hit from the repeated poisson job, and an
  // empty queue now that everything is terminal.
  HttpClient client("127.0.0.1", port);
  const auto metrics = client.get("/v1/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.size(), 0u);
  const std::string& text = metrics.body;
  EXPECT_EQ(metric_value(text, "mpqls_jobs_accepted_total"), 3.0);
  EXPECT_EQ(metric_value(text, "mpqls_jobs_done_total"), 3.0);
  EXPECT_EQ(metric_value(text, "mpqls_cache_misses_total"), 2.0);
  EXPECT_EQ(metric_value(text, "mpqls_cache_hits_total"), 1.0);
  EXPECT_EQ(metric_value(text, "mpqls_queue_depth"), 0.0);
  EXPECT_EQ(metric_value(text, "mpqls_jobs_running"), 0.0);
  EXPECT_EQ(metric_value(text, "mpqls_rhs_solved_total"), 8.0);  // 3 + 3 + 2
  // Fixed-precision jobs attribute every replay to the double tier: at
  // least the 8 initial solves, plus however many refinement rounds.
  EXPECT_GE(tier_metric_value(text, "mpqls_precision_solves_total", "double"), 8.0);
  EXPECT_EQ(tier_metric_value(text, "mpqls_precision_solves_total", "half"), 0.0);
  EXPECT_EQ(metric_value(text, "mpqls_precision_switches_total"), 0.0);
  EXPECT_GT(metric_value(text, "mpqls_solve_seconds_total"), 0.0);
  EXPECT_GE(metric_value(text, "mpqls_http_requests_total"), 7.0);  // 3 posts + polls

  EXPECT_TRUE(daemon.drain(5000ms));
}

TEST(SolverDaemon, AdaptiveJobExportsPrecisionTierMetrics) {
  // A gate-level adaptive job reached purely through the HTTP front door
  // (the JSON knob, not C++ options) must run the escalation schedule and
  // surface it in /v1/metrics as the labeled mpqls_precision_* families.
  // Matrix/seed match the service-level adaptive test, where the schedule
  // provably visits the half and single tiers before converging.
  constexpr const char* kAdaptiveGateJob = R"({
    "id": "adaptive-gate",
    "matrix": {"scenario": "random", "n": 16, "kappa": 10, "seed": 601},
    "rhs": {"kind": "random", "count": 2, "seed": 24},
    "options": {"eps": 1e-10,
                "qsvt": {"backend": "gate", "eps_l": 1e-2, "precision": "adaptive"}}
  })";

  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  const auto status = poll_until_terminal(client, submit(client, kAdaptiveGateJob));
  ASSERT_EQ(status.at("state").as_string(), "done") << status.dump();
  EXPECT_TRUE(status.at("result").at("all_converged").as_bool());

  const std::string text = client.get("/v1/metrics").body;
  // Every tier label renders on both per-tier families, even idle ones.
  for (const char* tier : {"half", "single", "double"}) {
    EXPECT_GE(tier_metric_value(text, "mpqls_precision_solves_total", tier), 0.0);
    EXPECT_GE(tier_metric_value(text, "mpqls_precision_iterations_total", tier), 0.0);
  }
  // The schedule started low and escalated: cheap tiers did real work
  // (half handles the initial solve, single the refinement rounds) and at
  // least one switch per solve was counted.
  EXPECT_GT(tier_metric_value(text, "mpqls_precision_solves_total", "half"), 0.0);
  EXPECT_GT(tier_metric_value(text, "mpqls_precision_solves_total", "single"), 0.0);
  EXPECT_GT(tier_metric_value(text, "mpqls_precision_iterations_total", "single"), 0.0);
  EXPECT_GE(metric_value(text, "mpqls_precision_switches_total"), 2.0);  // 2 RHS

  daemon.drain(5000ms);
}

TEST(SolverDaemon, SaturatedQueueAnswers429InsteadOfGrowing) {
  auto options = loopback_options();
  options.service.job_threads = 1;
  options.service.max_pending_jobs = 2;
  SolverDaemon daemon(options);
  daemon.start();

  // Occupy the single job worker so accepted jobs deterministically stay
  // queued while we probe the admission bound.
  std::promise<void> release;
  auto blocker = daemon.service().run_on_job_pool(
      [gate = release.get_future().share()] { gate.wait(); });

  HttpClient client("127.0.0.1", daemon.port());
  const std::string id1 = submit(client, kPoissonJob);
  const std::string id2 = submit(client, kTridiagJob);

  const auto rejected = client.post("/v1/jobs", kPoissonJob);
  EXPECT_EQ(rejected.status, 429);
  ASSERT_NE(find_header(rejected.headers, "Retry-After"), nullptr);

  // The bound is observable before it resolves: depth 2, rejection counted.
  const auto before = client.get("/v1/metrics").body;
  EXPECT_EQ(metric_value(before, "mpqls_queue_depth"), 2.0);
  EXPECT_EQ(metric_value(before, "mpqls_jobs_rejected_total"), 1.0);
  EXPECT_EQ(metric_value(before, "mpqls_queue_capacity"), 2.0);

  release.set_value();
  blocker.get();
  EXPECT_EQ(poll_until_terminal(client, id1).at("state").as_string(), "done");
  EXPECT_EQ(poll_until_terminal(client, id2).at("state").as_string(), "done");

  // Capacity freed: the retry is admitted.
  const std::string id3 = submit(client, kPoissonJob);
  EXPECT_EQ(poll_until_terminal(client, id3).at("state").as_string(), "done");
  EXPECT_TRUE(daemon.drain(5000ms));
}

TEST(SolverDaemon, DrainFinishesInFlightJobsAndRefusesNewOnes) {
  auto options = loopback_options();
  options.service.job_threads = 1;
  SolverDaemon daemon(options);
  daemon.start();
  const std::uint16_t port = daemon.port();

  std::promise<void> release;
  auto blocker = daemon.service().run_on_job_pool(
      [gate = release.get_future().share()] { gate.wait(); });

  HttpClient client("127.0.0.1", port);
  const std::string in_flight = submit(client, kPoissonJob);

  // Drain on another thread: it must wait for the queued job, serving
  // polls meanwhile.
  auto drained = std::async(std::launch::async, [&daemon] { return daemon.drain(30000ms); });
  while (!daemon.draining()) std::this_thread::sleep_for(1ms);

  // Admission is closed during the drain; polling still works.
  const auto refused = client.post("/v1/jobs", kTridiagJob);
  EXPECT_EQ(refused.status, 503);
  const auto mid_drain = client.get("/v1/jobs/" + in_flight);
  EXPECT_EQ(mid_drain.status, 200);

  release.set_value();
  blocker.get();
  EXPECT_TRUE(drained.get());  // in-flight job completed inside the grace window

  // The job really finished (registry outlives the HTTP server) and the
  // server is gone: new connections fail.
  const auto status = daemon.service().job_status(in_flight);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, service::JobState::kDone);
  ASSERT_NE(status->result, nullptr);
  EXPECT_TRUE(status->result->all_converged);
  HttpClient dead("127.0.0.1", port);
  EXPECT_THROW(dead.get("/v1/healthz"), std::exception);
}

TEST(SolverDaemon, HostileInputGetsPreciseStatusCodes) {
  auto options = loopback_options();
  options.limits.max_body_bytes = 512;
  SolverDaemon daemon(options);
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  // Malformed JSON: 400 with the byte offset from JsonParseError.
  const auto bad_json = client.post("/v1/jobs", "{\"id\": }");
  EXPECT_EQ(bad_json.status, 400);
  EXPECT_NE(bad_json.body.find("at byte"), std::string::npos) << bad_json.body;

  // Well-formed JSON with a bad schema is admitted (validation runs on
  // the worker, never the event loop) and fails with the message.
  const auto bad_schema =
      Json::parse(client.post("/v1/jobs", R"({"matrix": {"scenario": "warp"}})").body);
  const auto failed = poll_until_terminal(client, bad_schema.at("job_id").as_string());
  EXPECT_EQ(failed.at("state").as_string(), "failed");
  EXPECT_NE(failed.at("error").as_string().find("unknown matrix scenario"), std::string::npos);

  // A tiny body demanding a huge scenario matrix is bounded the same way:
  // admission, then a failed job — the event loop and memory stay safe.
  const auto huge_n = Json::parse(
      client
          .post("/v1/jobs",
                R"({"matrix": {"scenario": "poisson1d", "n": 200000},
                    "rhs": {"kind": "point", "index": 0}})")
          .body);
  const auto failed_n = poll_until_terminal(client, huge_n.at("job_id").as_string());
  EXPECT_EQ(failed_n.at("state").as_string(), "failed");
  EXPECT_NE(failed_n.at("error").as_string().find("dimension out of range"), std::string::npos);

  // Unknown job id: 404. Unknown route: 404. Wrong method: 405.
  EXPECT_EQ(client.get("/v1/jobs/job-999").status, 404);
  EXPECT_EQ(client.get("/v1/frobnicate").status, 404);
  EXPECT_EQ(client.post("/v1/healthz", "{}").status, 405);

  // Body over the daemon's cap: 413 decided from the header alone.
  const auto huge = client.post("/v1/jobs", std::string(600, ' '));
  EXPECT_EQ(huge.status, 413);

  daemon.drain(5000ms);
}

TEST(SolverDaemon, KeepAliveSurvives4xxAndOversizedJobIds) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  // Router-level 4xx responses (404/405/409) keep the connection open —
  // only parser-level errors close it. A polling client that hits an
  // unknown id must not pay a reconnect per poll.
  EXPECT_EQ(client.get("/v1/jobs/job-42").status, 404);
  EXPECT_EQ(client.post("/v1/healthz", "{}").status, 405);
  // An id as long as the head cap allows round-trips to a clean 404.
  EXPECT_EQ(client.get("/v1/jobs/" + std::string(4096, 'z')).status, 404);
  EXPECT_EQ(client.get("/v1/healthz").status, 200);

  // All of it parsed cleanly on ONE TCP connection: router 4xx is not a
  // parse error and must not cost the keep-alive.
  const auto metrics = client.get("/v1/metrics").body;
  EXPECT_EQ(metric_value(metrics, "mpqls_http_parse_errors_total"), 0.0);
  EXPECT_EQ(metric_value(metrics, "mpqls_http_connections_accepted_total"), 1.0);
  daemon.drain(5000ms);
}

TEST(SolverDaemon, CancelEndpointCancelsQueuedJobsOnly) {
  auto options = loopback_options();
  options.service.job_threads = 1;
  SolverDaemon daemon(options);
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  // Hold the single job worker so submissions stay queued.
  std::promise<void> release;
  auto blocker = daemon.service().run_on_job_pool(
      [gate = release.get_future().share()] { gate.wait(); });

  const std::string doomed = submit(client, kPoissonJob);
  const std::string kept = submit(client, kTridiagJob);

  const auto cancelled = client.del("/v1/jobs/" + doomed);
  EXPECT_EQ(cancelled.status, 200) << cancelled.body;
  EXPECT_EQ(Json::parse(cancelled.body).at("state").as_string(), "cancelled");
  EXPECT_EQ(client.del("/v1/jobs/" + doomed).status, 409);  // already terminal
  EXPECT_EQ(client.del("/v1/jobs/job-987654").status, 404);

  release.set_value();
  blocker.get();

  EXPECT_EQ(poll_until_terminal(client, doomed).at("state").as_string(), "cancelled");
  EXPECT_EQ(poll_until_terminal(client, kept).at("state").as_string(), "done");
  const auto metrics = client.get("/v1/metrics").body;
  EXPECT_EQ(metric_value(metrics, "mpqls_jobs_cancelled_total"), 1.0);
  EXPECT_EQ(metric_value(metrics, "mpqls_jobs_done_total"), 1.0);
  daemon.drain(5000ms);
}

TEST(SolverDaemon, TraceHeaderIsAdoptedAndSpansCoverTheLifecycle) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  // A client-minted id in x-mpqls-trace must be adopted, not replaced —
  // this is the propagation contract the coordinator relies on.
  const std::string want_trace = trace::mint_trace_id().hex();
  const auto accepted =
      client.post("/v1/jobs", kPoissonJob, "application/json", {{"x-mpqls-trace", want_trace}});
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const Json ack = Json::parse(accepted.body);
  EXPECT_EQ(ack.at("trace_id").as_string(), want_trace);
  const std::string job_id = ack.at("job_id").as_string();

  const Json status = poll_until_terminal(client, job_id);
  ASSERT_EQ(status.at("state").as_string(), "done") << status.dump();
  EXPECT_EQ(status.at("trace_id").as_string(), want_trace);

  // The trace endpoint returns the finished span tree for the whole job
  // lifecycle: front-door admission, queue wait, the run umbrella and the
  // prepare/render stages under it.
  const auto response = client.get("/v1/jobs/" + job_id + "/trace");
  ASSERT_EQ(response.status, 200) << response.body;
  const Json trace = Json::parse(response.body);
  EXPECT_EQ(trace.at("trace_id").as_string(), want_trace);
  EXPECT_EQ(trace.at("job_id").as_string(), job_id);
  EXPECT_EQ(trace.at("state").as_string(), "done");
  EXPECT_EQ(trace.at("spans_dropped").as_number(), 0.0);

  std::set<std::string> names;
  double run_id = 0.0;
  for (const auto& span : trace.at("spans").as_array()) {
    names.insert(span.at("name").as_string());
    EXPECT_FALSE(span.contains("running")) << span.dump();  // all finished
    EXPECT_GE(span.at("duration_us").as_number(), 0.0);
    if (span.at("name").as_string() == "run") run_id = span.at("id").as_number();
  }
  for (const char* want : {"admission", "queue", "run", "prepare", "render"}) {
    EXPECT_EQ(names.count(want), 1u) << "missing span " << want;
  }
  // Stage spans hang off the run umbrella, not the root.
  for (const auto& span : trace.at("spans").as_array()) {
    if (span.at("name").as_string() == "render") {
      EXPECT_EQ(span.at("parent").as_number(), run_id);
    }
  }

  // Unknown job: 404, same as the status route.
  EXPECT_EQ(client.get("/v1/jobs/job-999/trace").status, 404);

  // The per-stage latency histograms saw the job...
  const std::string metrics = client.get("/v1/metrics").body;
  for (const char* stage : {"admission", "queue", "prepare", "solve", "render", "total"}) {
    const std::string needle =
        "mpqls_latency_seconds_bucket{stage=\"" + std::string(stage) + "\",le=\"+Inf\"} ";
    const auto pos = metrics.find(needle);
    ASSERT_NE(pos, std::string::npos) << "missing histogram stage " << stage;
    EXPECT_GE(std::stod(metrics.substr(pos + needle.size())), 1.0) << stage;
  }

  // ...and the flight recorder retained it (every job ranks among the
  // 8 slowest of a 1-job run), trace attached.
  const Json slow = Json::parse(client.get("/v1/debug/slow").body);
  ASSERT_GE(slow.at("count").as_number(), 1.0);
  const auto& worst = slow.at("slow_jobs").as_array()[0];
  EXPECT_EQ(worst.at("job_id").as_string(), job_id);
  EXPECT_EQ(worst.at("state").as_string(), "done");
  EXPECT_GT(worst.at("total_seconds").as_number(), 0.0);
  EXPECT_EQ(worst.at("trace").at("trace_id").as_string(), want_trace);

  daemon.drain(5000ms);
}

TEST(SolverDaemon, BodyTraceIdIsAdoptedWhenNoHeaderIsPresent) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  // JSON bodies can carry the id inline (parity with the wire-v3 trailing
  // field); the header still wins when both are present.
  const std::string body_trace = trace::mint_trace_id().hex();
  Json job = Json::parse(kPoissonJob);
  job["trace_id"] = body_trace;
  const auto from_body = Json::parse(client.post("/v1/jobs", job.dump()).body);
  EXPECT_EQ(from_body.at("trace_id").as_string(), body_trace);

  const std::string header_trace = trace::mint_trace_id().hex();
  const auto from_header = Json::parse(
      client.post("/v1/jobs", job.dump(), "application/json", {{"x-mpqls-trace", header_trace}})
          .body);
  EXPECT_EQ(from_header.at("trace_id").as_string(), header_trace);

  // No id anywhere: the front door mints one, and it is well-formed.
  const auto minted = Json::parse(client.post("/v1/jobs", kPoissonJob).body);
  trace::TraceId parsed;
  EXPECT_TRUE(trace::TraceId::parse(minted.at("trace_id").as_string(), parsed));
  EXPECT_FALSE(parsed.zero());

  // A malformed header is ignored, not an error: the job is admitted
  // under a fresh id.
  const auto garbled =
      client.post("/v1/jobs", kPoissonJob, "application/json", {{"x-mpqls-trace", "not-hex"}});
  EXPECT_EQ(garbled.status, 202);
  EXPECT_NE(Json::parse(garbled.body).at("trace_id").as_string(), "not-hex");

  for (const auto* ack : {&from_body, &from_header, &minted}) {
    poll_until_terminal(client, ack->at("job_id").as_string());
  }
  daemon.drain(5000ms);
}

TEST(SolverDaemon, ListingIsBoundedNewestFirstWithQueryLimit) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(submit(client, kPoissonJob));
  for (const auto& id : ids) poll_until_terminal(client, id);

  const auto all = Json::parse(client.get("/v1/jobs").body);
  ASSERT_EQ(all.at("count").as_number(), 3.0);
  EXPECT_EQ(all.at("jobs").as_array()[0].at("job_id").as_string(), ids[2]);

  const auto limited = Json::parse(client.get("/v1/jobs?limit=2").body);
  ASSERT_EQ(limited.at("count").as_number(), 2.0);
  EXPECT_EQ(limited.at("jobs").as_array()[0].at("job_id").as_string(), ids[2]);
  EXPECT_EQ(limited.at("jobs").as_array()[1].at("job_id").as_string(), ids[1]);

  EXPECT_EQ(client.get("/v1/jobs?limit=bogus").status, 400);
  daemon.drain(5000ms);
}

TEST(SolverDaemon, HealthzAdvertisesBackendCapabilities) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  const auto health = Json::parse(client.get("/v1/healthz").body);
  EXPECT_EQ(health.at("default_backend").as_string(), "reference");
  const auto& backends = health.at("backends").as_array();
  std::set<std::string> names;
  for (const auto& b : backends) {
    names.insert(b.at("name").as_string());
    // Every advertised backend carries a full capability descriptor.
    EXPECT_FALSE(b.at("precisions").as_array().empty()) << b.at("name").as_string();
    EXPECT_FALSE(b.at("panel_widths").as_array().empty()) << b.at("name").as_string();
    EXPECT_GT(b.at("max_qubits").as_number(), 0.0);
  }
  EXPECT_TRUE(names.count("reference")) << "built-in reference backend missing";
  EXPECT_TRUE(names.count("blocked")) << "built-in blocked backend missing";
  daemon.drain(5000ms);
}

TEST(SolverDaemon, UnknownBackendIsRejectedSynchronouslyWith400) {
  SolverDaemon daemon(loopback_options());
  daemon.start();
  HttpClient client("127.0.0.1", daemon.port());

  // Top-level short-form override.
  constexpr const char* kUnknownBackend = R"({
    "id": "bad-backend",
    "backend": "imaginary-gpu",
    "matrix": {"scenario": "poisson1d", "n": 8},
    "rhs": {"kind": "random", "count": 1, "seed": 3},
    "options": {"eps": 1e-9, "qsvt": {"backend": "matrix", "eps_l": 1e-2}}
  })";
  auto response = client.post("/v1/jobs", kUnknownBackend);
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("unknown execution backend"), std::string::npos)
      << response.body;

  // Long-form options.qsvt.exec_backend takes the same admission path.
  constexpr const char* kUnknownExecBackend = R"({
    "id": "bad-exec-backend",
    "matrix": {"scenario": "poisson1d", "n": 8},
    "rhs": {"kind": "random", "count": 1, "seed": 3},
    "options": {"eps": 1e-9,
                "qsvt": {"backend": "gate", "eps_l": 1e-2,
                         "exec_backend": "imaginary-gpu"}}
  })";
  response = client.post("/v1/jobs", kUnknownExecBackend);
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("unknown execution backend"), std::string::npos)
      << response.body;

  // A known backend sails through admission, runs the job on the blocked
  // executor, and the per-backend metric families pick it up.
  constexpr const char* kBlockedJob = R"({
    "id": "blocked-backend",
    "backend": "blocked",
    "matrix": {"scenario": "poisson1d", "n": 8},
    "rhs": {"kind": "random", "count": 1, "seed": 3},
    "options": {"eps": 1e-9, "qsvt": {"backend": "gate", "eps_l": 1e-2}}
  })";
  const auto status = poll_until_terminal(client, submit(client, kBlockedJob));
  EXPECT_EQ(status.at("state").as_string(), "done") << status.dump();

  const std::string metrics = client.get("/v1/metrics").body;
  EXPECT_NE(metrics.find("mpqls_backend_jobs_total{backend=\"blocked\"} 1"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("mpqls_backend_default_info{backend=\"reference\"} 1"),
            std::string::npos);
  daemon.drain(5000ms);
}

}  // namespace
}  // namespace mpqls::net
