// Loopback integration tests for the sharded solver cluster: affinity
// routing warming exactly one worker's cache, failover mid-stream losing
// no accepted jobs (results bit-for-bit against the single-node sync
// path), breaker behaviour against a killed worker, proxied
// poll/cancel/listing, and the aggregated metrics endpoint.
#include "cluster/test_cluster.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/trace.hpp"
#include "net/http_client.hpp"
#include "service/json_io.hpp"
#include "service/solver_service.hpp"

namespace mpqls::cluster {
namespace {

using namespace std::chrono_literals;

std::string job_json(int matrix_seed, const std::string& label) {
  Json j = Json::object();
  j["id"] = label;
  Json m = Json::object();
  m["scenario"] = "random";
  m["n"] = 8;
  m["kappa"] = 8.0;
  m["seed"] = static_cast<std::uint64_t>(matrix_seed);
  j["matrix"] = std::move(m);
  Json rhs = Json::object();
  rhs["kind"] = "random";
  rhs["count"] = 2;
  rhs["seed"] = static_cast<std::uint64_t>(5);
  j["rhs"] = std::move(rhs);
  Json opt = Json::object();
  opt["eps"] = 1e-9;
  Json qsvt = Json::object();
  qsvt["backend"] = "matrix";
  qsvt["eps_l"] = 1e-2;
  opt["qsvt"] = std::move(qsvt);
  j["options"] = std::move(opt);
  return j.dump();
}

TestClusterOptions small_cluster(std::size_t workers) {
  TestClusterOptions o;
  o.workers = workers;
  o.worker.service.cache_capacity = 4;
  o.worker.service.solve_threads = 1;
  o.worker.service.job_threads = 1;
  o.coordinator.probe_interval = 100ms;
  return o;
}

std::string submit_ok(net::HttpClient& client, const std::string& body) {
  const auto response = client.post("/v1/jobs", body);
  EXPECT_EQ(response.status, 202) << response.body;
  return Json::parse(response.body).at("job_id").as_string();
}

Json poll_until_terminal(net::HttpClient& client, const std::string& job_id,
                         std::chrono::seconds timeout = 60s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto response = client.get("/v1/jobs/" + job_id);
    if (response.status == 200) {
      Json status = Json::parse(response.body);
      const std::string state = status.at("state").as_string();
      if (state == "done" || state == "failed" || state == "cancelled") return status;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "timed out polling " << job_id;
      return Json::object();
    }
    std::this_thread::sleep_for(5ms);
  }
}

/// Bitwise comparison against the synchronous single-node path — the
/// cluster must be a pure routing layer, never a numerics layer.
void expect_bitwise_match(const Json& status, const std::string& job_text) {
  service::SolverService reference(
      {.cache_capacity = 2, .solve_threads = 1, .job_threads = 1});
  const auto want = reference.solve(service::request_from_json(Json::parse(job_text)));
  const auto& got_solves = status.at("result").at("solves").as_array();
  ASSERT_EQ(got_solves.size(), want.solves.size());
  for (std::size_t k = 0; k < want.solves.size(); ++k) {
    const auto& got_x = got_solves[k].at("report").at("x").as_array();
    ASSERT_EQ(got_x.size(), want.solves[k].report.x.size());
    for (std::size_t i = 0; i < got_x.size(); ++i) {
      EXPECT_EQ(got_x[i].as_number(), want.solves[k].report.x[i])
          << "solve " << k << " component " << i;
    }
  }
}

TEST(Cluster, AffinityRoutingKeepsARepeatedMatrixOnOneWarmWorker) {
  TestCluster cluster(small_cluster(3));
  net::HttpClient client("127.0.0.1", cluster.port());

  std::vector<std::string> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(submit_ok(client, job_json(42, "rep-" + std::to_string(i))));
  for (const auto& id : ids) {
    EXPECT_EQ(poll_until_terminal(client, id).at("state").as_string(), "done");
  }

  // Exactly one worker saw the matrix: one miss, five hits, and the other
  // workers' caches never even missed.
  std::size_t workers_touched = 0;
  std::uint64_t hits = 0, misses = 0;
  for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
    const auto stats = cluster.worker(w).service().cache_stats();
    if (stats.hits + stats.misses > 0) ++workers_touched;
    hits += stats.hits;
    misses += stats.misses;
  }
  EXPECT_EQ(workers_touched, 1u);
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(hits, 5u);

  const auto routing = cluster.coordinator().routing_stats();
  EXPECT_EQ(routing.submits_accepted, 6u);
  EXPECT_EQ(routing.affinity_hits, 6u);
  EXPECT_EQ(routing.spillovers, 0u);
  cluster.stop();
}

TEST(Cluster, FailoverMidStreamLosesNoAcceptedJobsAndMatchesSyncBitwise) {
  TestCluster cluster(small_cluster(3));
  net::HttpClient client("127.0.0.1", cluster.port());
  const std::string body = job_json(7, "failover");

  // Find the matrix's home worker, then drain it mid-stream: admission
  // closes (503) while its accepted jobs finish and polls keep working.
  const std::string first = submit_ok(client, body);
  ASSERT_EQ(first[0], 'w');
  const std::size_t home = static_cast<std::size_t>(first[1] - '0');
  ASSERT_LT(home, cluster.worker_count());

  std::vector<std::string> ids = {first};
  for (int i = 0; i < 2; ++i) ids.push_back(submit_ok(client, body));

  // "Breaker-open" the home worker mid-stream: admission closes (503)
  // while its already-accepted jobs keep solving and polls keep serving.
  cluster.worker(home).close_admission();

  // Submits keep being accepted — they spill to ring neighbours with the
  // closed worker excluded. Nothing is lost, nothing 5xxes.
  std::vector<std::string> after;
  for (int i = 0; i < 3; ++i) after.push_back(submit_ok(client, body));
  for (const auto& id : after) {
    EXPECT_NE(static_cast<std::size_t>(id[1] - '0'), home)
        << "spilled submit landed on the drained worker";
  }

  // Every job accepted before AND after the drain reaches done with
  // results identical to the single-node synchronous path.
  ids.insert(ids.end(), after.begin(), after.end());
  for (const auto& id : ids) {
    const Json status = poll_until_terminal(client, id);
    ASSERT_EQ(status.at("state").as_string(), "done") << status.dump();
    expect_bitwise_match(status, body);
  }

  const auto routing = cluster.coordinator().routing_stats();
  EXPECT_EQ(routing.submits_accepted, 6u);
  EXPECT_GE(routing.spillovers, 3u);
  EXPECT_GE(routing.retries, 3u);  // each post-drain submit skipped the 503 home
  cluster.stop();
}

TEST(Cluster, KilledWorkerTripsTheBreakerAndSubmitsKeepFlowing) {
  auto options = small_cluster(2);
  options.coordinator.breaker.failure_threshold = 1;
  options.coordinator.breaker.open_duration = 60000ms;  // stays open for the test
  options.coordinator.probe_interval = 50ms;
  options.coordinator.worker_deadlines.connect = 500ms;
  TestCluster cluster(options);
  net::HttpClient client("127.0.0.1", cluster.port());

  // Kill worker 0 outright (drain stops its HTTP server too).
  cluster.worker(0).drain(5000ms);

  // Every matrix still gets solved by the survivor; the dead worker's
  // breaker opens after its first refused connect.
  std::vector<std::string> ids;
  for (int seed = 0; seed < 4; ++seed) {
    ids.push_back(submit_ok(client, job_json(seed + 100, "k-" + std::to_string(seed))));
  }
  for (const auto& id : ids) {
    EXPECT_EQ(id.rfind("w1-", 0), 0u) << id;
    EXPECT_EQ(poll_until_terminal(client, id).at("state").as_string(), "done");
  }

  const auto workers = cluster.coordinator().workers();
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_EQ(workers[0].breaker, BreakerState::kOpen);
  EXPECT_GE(workers[0].breaker_trips, 1u);
  EXPECT_GE(workers[0].transport_failures, 1u);
  EXPECT_EQ(workers[1].breaker, BreakerState::kClosed);

  // healthz reports the degraded-but-serving cluster without blocking.
  const auto health = client.get("/v1/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(Json::parse(health.body).at("workers_healthy").as_number(), 1.0);
  cluster.stop();
}

TEST(Cluster, ProxiesCancelAndListingWithClusterIds) {
  auto options = small_cluster(2);
  TestCluster cluster(options);
  net::HttpClient client("127.0.0.1", cluster.port());

  // Block both workers' single job thread so submitted jobs stay queued
  // and are deterministically cancellable.
  std::promise<void> release;
  auto gate = release.get_future().share();
  std::vector<std::future<void>> blockers;
  for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
    blockers.push_back(cluster.worker(w).service().run_on_job_pool([gate] { gate.wait(); }));
  }

  const std::string queued = submit_ok(client, job_json(11, "to-cancel"));
  const std::string kept = submit_ok(client, job_json(12, "to-keep"));

  // The merged listing shows both ids in cluster form ("w<k>-job-<n>").
  const auto listing = client.get("/v1/jobs?limit=10");
  EXPECT_EQ(listing.status, 200);
  const Json listed = Json::parse(listing.body);
  EXPECT_GE(listed.at("count").as_number(), 2.0);
  bool saw_queued = false, saw_kept = false;
  for (const auto& entry : listed.at("jobs").as_array()) {
    const std::string id = entry.at("job_id").as_string();
    saw_queued = saw_queued || id == queued;
    saw_kept = saw_kept || id == kept;
    EXPECT_EQ(id[0], 'w');
  }
  EXPECT_TRUE(saw_queued);
  EXPECT_TRUE(saw_kept);

  // Cancel through the coordinator; the poll then reports cancelled with
  // the CLUSTER id (the coordinator rewrites the worker's own id).
  const auto cancelled = client.del("/v1/jobs/" + queued);
  EXPECT_EQ(cancelled.status, 200) << cancelled.body;
  EXPECT_EQ(Json::parse(cancelled.body).at("job_id").as_string(), queued);

  release.set_value();
  for (auto& blocker : blockers) blocker.get();

  EXPECT_EQ(poll_until_terminal(client, queued).at("state").as_string(), "cancelled");
  const Json kept_status = poll_until_terminal(client, kept);
  EXPECT_EQ(kept_status.at("state").as_string(), "done");
  EXPECT_EQ(kept_status.at("job_id").as_string(), kept);

  // Cancelling a terminal job is a 409 (proxied verbatim); unknown ids
  // and ids pointing past the worker count are 404.
  EXPECT_EQ(client.del("/v1/jobs/" + kept).status, 409);
  EXPECT_EQ(client.get("/v1/jobs/w9-job-1").status, 404);
  EXPECT_EQ(client.get("/v1/jobs/garbage").status, 404);

  const auto routing = cluster.coordinator().routing_stats();
  EXPECT_GE(routing.proxied_cancels, 2u);
  EXPECT_GE(routing.proxied_polls, 2u);
  cluster.stop();
}

TEST(Cluster, TracePropagatesToTheWorkerAndStitchesUnderTheProxySpan) {
  TestCluster cluster(small_cluster(2));
  net::HttpClient client("127.0.0.1", cluster.port());

  // The client's trace id must survive two hops: coordinator adoption,
  // then header propagation to whichever worker won the route.
  const std::string want_trace = trace::mint_trace_id().hex();
  const auto accepted = client.post("/v1/jobs", job_json(17, "stitched"), "application/json",
                                    {{"x-mpqls-trace", want_trace}});
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const Json ack = Json::parse(accepted.body);
  EXPECT_EQ(ack.at("trace_id").as_string(), want_trace);
  const std::string job_id = ack.at("job_id").as_string();
  ASSERT_EQ(poll_until_terminal(client, job_id).at("state").as_string(), "done");

  // The stitched tree: the coordinator's own proxy span at the root, the
  // worker's spans re-parented beneath it with collision-proofed ids.
  const auto response = client.get("/v1/jobs/" + job_id + "/trace");
  ASSERT_EQ(response.status, 200) << response.body;
  const Json trace = Json::parse(response.body);
  EXPECT_EQ(trace.at("trace_id").as_string(), want_trace);
  EXPECT_EQ(trace.at("job_id").as_string(), job_id);
  EXPECT_EQ(trace.at("state").as_string(), "done");

  constexpr double kWorkerSpanBase = static_cast<double>(1u << 20);
  double proxy_id = 0.0;
  for (const auto& span : trace.at("spans").as_array()) {
    if (span.at("name").as_string() == "proxy") {
      proxy_id = span.at("id").as_number();
      EXPECT_EQ(span.at("parent").as_number(), 0.0);
      EXPECT_EQ(span.at("attrs").at("worker").as_string(), job_id.substr(0, 2));
      EXPECT_EQ(span.at("attrs").at("attempts").as_string(), "1");
    }
  }
  ASSERT_NE(proxy_id, 0.0) << "coordinator proxy span missing";

  bool saw_worker_root = false, saw_nested = false;
  for (const auto& span : trace.at("spans").as_array()) {
    if (span.at("id").as_number() < kWorkerSpanBase) continue;  // coordinator's own
    const double parent = span.at("parent").as_number();
    if (parent == proxy_id) {
      saw_worker_root = true;  // worker top-level (admission/queue/run)
    } else {
      // Nested worker spans keep their (shifted) worker-side parent.
      EXPECT_GE(parent, kWorkerSpanBase) << span.dump();
      saw_nested = true;
    }
    EXPECT_FALSE(span.contains("running")) << span.dump();
  }
  EXPECT_TRUE(saw_worker_root);
  EXPECT_TRUE(saw_nested);

  // The coordinator's own routing latency rides the shared family name.
  const std::string metrics = client.get("/v1/metrics").body;
  EXPECT_NE(metrics.find("mpqls_latency_seconds_bucket{stage=\"route\",le=\"+Inf\"} 1"),
            std::string::npos);
  cluster.stop();
}

TEST(Cluster, MetricsAggregateWorkerFamiliesAndRoutingGauges) {
  TestCluster cluster(small_cluster(2));
  net::HttpClient client("127.0.0.1", cluster.port());

  const std::string id = submit_ok(client, job_json(3, "metrics"));
  EXPECT_EQ(poll_until_terminal(client, id).at("state").as_string(), "done");

  const auto response = client.get("/v1/metrics");
  EXPECT_EQ(response.status, 200);
  const std::string& text = response.body;

  // Coordinator's own counters.
  EXPECT_NE(text.find("mpqls_cluster_submits_total 1"), std::string::npos) << text;
  EXPECT_NE(text.find("mpqls_cluster_workers 2"), std::string::npos);
  // Per-worker routing gauges, labeled.
  EXPECT_NE(text.find("mpqls_cluster_worker_breaker_state{worker=\"w0\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("mpqls_cluster_worker_breaker_state{worker=\"w1\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("mpqls_cluster_worker_affinity_hit_ratio{worker=\"w"),
            std::string::npos);
  // Worker families relabeled and merged: both workers' series present,
  // each family preamble exactly once.
  EXPECT_NE(text.find("mpqls_jobs_accepted_total{worker=\"w0\"}"), std::string::npos);
  EXPECT_NE(text.find("mpqls_jobs_accepted_total{worker=\"w1\"}"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE mpqls_jobs_accepted_total"),
            text.rfind("# TYPE mpqls_jobs_accepted_total"));
  cluster.stop();
}

/// A job that names an execution backend (gate-level so the backend
/// actually replays programs).
std::string backend_job_json(const std::string& label, const std::string& backend) {
  Json j = Json::parse(job_json(7, label));
  j["backend"] = backend;
  j["options"]["qsvt"]["backend"] = "gate";
  return j.dump();
}

/// Poll the coordinator's healthz until every worker's probed backend
/// list is non-empty (capability routing only filters on workers whose
/// last probe reported capabilities).
void wait_for_backend_probes(net::HttpClient& client, std::size_t workers,
                             std::chrono::seconds timeout = 30s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto health = Json::parse(client.get("/v1/healthz").body);
    if (health.contains("worker_backends")) {
      const auto& per_worker = health.at("worker_backends").as_object();
      std::size_t probed = 0;
      for (const auto& [id, names] : per_worker) {
        if (!names.as_array().empty()) ++probed;
      }
      if (probed == workers) return;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "timed out waiting for backend probes";
      return;
    }
    std::this_thread::sleep_for(20ms);
  }
}

TEST(Cluster, BackendRoutingExcludesWorkersLackingTheCapability) {
  auto options = small_cluster(2);
  // Worker 0 disables the blocked backend; worker 1 runs everything.
  options.worker_backends = {{"reference"}, {}};
  TestCluster cluster(options);
  net::HttpClient client("127.0.0.1", cluster.port());
  wait_for_backend_probes(client, cluster.worker_count());

  // Every blocked-backend job must land on worker 1, regardless of where
  // rendezvous affinity would have put it.
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(submit_ok(client, backend_job_json("blk-" + std::to_string(i), "blocked")));
  }
  for (const auto& id : ids) {
    EXPECT_EQ(poll_until_terminal(client, id).at("state").as_string(), "done");
  }
  const auto w0 = cluster.worker(0).service().cache_stats();
  const auto w1 = cluster.worker(1).service().cache_stats();
  EXPECT_EQ(w0.hits + w0.misses, 0u) << "incapable worker saw a blocked-backend job";
  EXPECT_GT(w1.hits + w1.misses, 0u);
  cluster.stop();
}

TEST(Cluster, AllWorkersLackingTheBackendAnswer503) {
  auto options = small_cluster(2);
  options.worker_backends = {{"reference"}, {"reference"}};
  TestCluster cluster(options);
  net::HttpClient client("127.0.0.1", cluster.port());
  wait_for_backend_probes(client, cluster.worker_count());

  const auto response = client.post("/v1/jobs", backend_job_json("nowhere", "blocked"));
  EXPECT_EQ(response.status, 503) << response.body;
  EXPECT_NE(response.body.find("blocked"), std::string::npos) << response.body;

  // The same job without the backend override still routes fine.
  const auto id = submit_ok(client, job_json(7, "default-ok"));
  EXPECT_EQ(poll_until_terminal(client, id).at("state").as_string(), "done");
  cluster.stop();
}

/// A gate-backend job body carrying "dist_workers": the coordinator must
/// expand it into a shard group rather than routing it whole.
std::string dist_job_json(std::size_t dist_workers, const std::string& label) {
  Json j = Json::object();
  j["id"] = label;
  Json m = Json::object();
  m["scenario"] = "random";
  m["n"] = 8;
  m["kappa"] = 10.0;
  m["seed"] = static_cast<std::uint64_t>(21);
  j["matrix"] = std::move(m);
  Json rhs = Json::object();
  rhs["kind"] = "random";
  rhs["count"] = 1;
  rhs["seed"] = static_cast<std::uint64_t>(9);
  j["rhs"] = std::move(rhs);
  Json opt = Json::object();
  opt["eps"] = 1e-10;
  Json qsvt = Json::object();
  qsvt["backend"] = "gate";
  qsvt["eps_l"] = 1e-2;
  opt["qsvt"] = std::move(qsvt);
  j["options"] = std::move(opt);
  j["dist_workers"] = static_cast<std::uint64_t>(dist_workers);
  return j.dump();
}

TEST(Cluster, DistSubmitFansOutAShardGroupAndEveryRankFinishes) {
  auto options = small_cluster(2);
  options.worker.service.job_threads = 2;  // rank job + exchange headroom
  TestCluster cluster(options);
  net::HttpClient client("127.0.0.1", cluster.port());

  const auto accepted = client.post("/v1/jobs", dist_job_json(2, "dist-smoke"));
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const Json ack = Json::parse(accepted.body);
  EXPECT_EQ(ack.at("shard_world").as_uint(), 2u);
  const auto& shard_jobs = ack.at("shard_jobs").as_array();
  ASSERT_EQ(shard_jobs.size(), 2u);
  EXPECT_EQ(ack.at("job_id").as_string(), shard_jobs[0].as_string());

  // Each rank landed on a distinct worker and every rank reaches done
  // through the coordinator's proxied poll (the routing table remembers
  // every rank's cluster id, not just rank 0's).
  EXPECT_NE(shard_jobs[0].as_string()[1], shard_jobs[1].as_string()[1]);
  std::vector<Json> statuses;
  for (const auto& id : shard_jobs) {
    statuses.push_back(poll_until_terminal(client, id.as_string()));
    ASSERT_EQ(statuses.back().at("state").as_string(), "done") << statuses.back().dump();
  }

  // Lockstep: both ranks rendered the identical solution, and the dist
  // telemetry block names each rank's place in the group.
  const auto& x0 =
      statuses[0].at("result").at("solves").as_array()[0].at("report").at("x").as_array();
  const auto& x1 =
      statuses[1].at("result").at("solves").as_array()[0].at("report").at("x").as_array();
  ASSERT_EQ(x0.size(), x1.size());
  ASSERT_GT(x0.size(), 0u);
  for (std::size_t i = 0; i < x0.size(); ++i) {
    EXPECT_EQ(x0[i].as_number(), x1[i].as_number()) << "component " << i;
  }
  for (std::uint32_t r = 0; r < 2; ++r) {
    const Json& dist = statuses[r].at("result").at("dist");
    EXPECT_EQ(dist.at("shard_rank").as_uint(), r);
    EXPECT_EQ(dist.at("shard_world").as_uint(), 2u);
    EXPECT_GT(dist.at("exchange_rounds").as_uint(), 0u);
  }

  const auto routing = cluster.coordinator().routing_stats();
  EXPECT_EQ(routing.dist_submits, 1u);
  EXPECT_EQ(routing.submits_accepted, 2u);  // one per rank

  const std::string metrics = client.get("/v1/metrics").body;
  EXPECT_NE(metrics.find("mpqls_cluster_dist_submits_total 1"), std::string::npos);
  cluster.stop();
}

TEST(Cluster, DistSubmitValidatesWorldAndRefusesUndersizedClusters) {
  TestCluster cluster(small_cluster(2));
  net::HttpClient client("127.0.0.1", cluster.port());

  // Non-power-of-two world sizes are a client error, not a routing miss.
  const auto odd = client.post("/v1/jobs", dist_job_json(3, "dist-odd"));
  EXPECT_EQ(odd.status, 400) << odd.body;

  // A 4-member group cannot form on a 2-worker cluster: 503, and the
  // reject is counted (no rank was admitted anywhere).
  const auto wide = client.post("/v1/jobs", dist_job_json(4, "dist-wide"));
  EXPECT_EQ(wide.status, 503) << wide.body;
  EXPECT_NE(wide.body.find("shard group incomplete"), std::string::npos) << wide.body;

  const auto routing = cluster.coordinator().routing_stats();
  EXPECT_EQ(routing.dist_rejects, 1u);
  EXPECT_EQ(routing.submits_accepted, 0u);
  cluster.stop();
}

}  // namespace
}  // namespace mpqls::cluster
