// Unit coverage for the cluster building blocks: rendezvous-ring
// determinism, balance, and minimal-disruption on worker loss; the
// circuit-breaker state machine (clock-injected, no sleeping); endpoint
// parsing; and the Prometheus merge/relabel used by the aggregated
// metrics endpoint.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "cluster/breaker.hpp"
#include "cluster/metrics_aggregate.hpp"
#include "cluster/ring.hpp"
#include "cluster/worker_client.hpp"

namespace mpqls::cluster {
namespace {

using namespace std::chrono_literals;

std::vector<std::string> worker_ids(std::size_t n, int base_port = 9000) {
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back("127.0.0.1:" + std::to_string(base_port + static_cast<int>(i)));
  }
  return ids;
}

TEST(WorkerRing, SameKeyAlwaysGetsTheSameCandidateOrder) {
  const WorkerRing ring(worker_ids(5));
  for (std::uint64_t key : {0ull, 1ull, 0xDEADBEEFull, ~0ull}) {
    const auto a = ring.candidates(key);
    const auto b = ring.candidates(key);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 5u);
    EXPECT_EQ(a[0], ring.home(key));
  }
}

TEST(WorkerRing, KeysSpreadRoughlyEvenly) {
  const WorkerRing ring(worker_ids(4));
  std::map<std::size_t, int> owned;
  const int keys = 4000;
  for (int k = 0; k < keys; ++k) owned[ring.home(static_cast<std::uint64_t>(k) * 2654435761u)]++;
  for (const auto& [worker, count] : owned) {
    // Within 25% of the fair share — catches the correlated-score failure
    // mode where one worker wins most keys (seen with raw FNV mixing).
    EXPECT_GT(count, keys / 4 * 3 / 4) << "worker " << worker << " starved";
    EXPECT_LT(count, keys / 4 * 5 / 4) << "worker " << worker << " dominates";
  }
}

TEST(WorkerRing, SequentialEphemeralPortsStillSpreadASmallKeySet) {
  // The exact shape of the scaling bench: 4 workers on consecutive ports,
  // 8 distinct matrices, per-worker cache of 4 — no worker may own more
  // keys than the cache holds, else affinity routing thrashes by design.
  for (int base : {35001, 40123, 51234}) {
    const WorkerRing ring(worker_ids(4, base));
    std::map<std::size_t, int> owned;
    for (int k = 0; k < 8; ++k) {
      owned[ring.home(0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(k + 1))]++;
    }
    for (const auto& [worker, count] : owned) {
      EXPECT_LE(count, 4) << "worker " << worker << " owns too many of 8 keys (base " << base
                          << ")";
    }
  }
}

TEST(WorkerRing, RemovingAWorkerOnlyRehomesItsOwnKeys) {
  const auto ids = worker_ids(4);
  const WorkerRing full(ids);
  // Survivors' ring with worker 2 removed.
  std::vector<std::string> surviving = {ids[0], ids[1], ids[3]};
  const WorkerRing reduced(surviving);
  const auto reduced_index = [&](std::size_t full_index) {
    return full_index < 2 ? full_index : full_index - 1;  // 3 -> 2
  };

  for (std::uint64_t k = 0; k < 500; ++k) {
    const std::uint64_t key = k * 0x9E3779B97F4A7C15ull;
    const std::size_t before = full.home(key);
    if (before != 2) {
      // Keys not homed on the lost worker keep their home — exactly the
      // property that makes failover spillover cache-friendly.
      EXPECT_EQ(reduced.home(key), reduced_index(before)) << "key " << k << " re-homed";
    } else {
      // The lost worker's keys land on their old SECOND choice.
      const auto order = full.candidates(key);
      EXPECT_EQ(reduced.home(key), reduced_index(order[1])) << "key " << k;
    }
  }
}

TEST(CircuitBreaker, OpensAfterThresholdAndRecoversThroughHalfOpen) {
  CircuitBreaker breaker(BreakerOptions{.failure_threshold = 3, .open_duration = 1000ms});
  auto t = std::chrono::steady_clock::time_point{} + 1h;

  EXPECT_TRUE(breaker.allow(t));
  breaker.record_failure(t);
  breaker.record_failure(t);
  EXPECT_EQ(breaker.state(t), BreakerState::kClosed);  // below threshold
  EXPECT_TRUE(breaker.allow(t));
  breaker.record_failure(t);
  EXPECT_EQ(breaker.state(t), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow(t));
  EXPECT_FALSE(breaker.allow(t + 999ms));

  // Cool-off elapsed: half-open, exactly one trial at a time.
  t += 1001ms;
  EXPECT_EQ(breaker.state(t), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow(t));
  EXPECT_FALSE(breaker.allow(t)) << "second concurrent trial must wait";
  breaker.record_success();
  EXPECT_EQ(breaker.state(t), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(t));
}

TEST(CircuitBreaker, FailedTrialReopensImmediately) {
  CircuitBreaker breaker(BreakerOptions{.failure_threshold = 1, .open_duration = 500ms});
  auto t = std::chrono::steady_clock::time_point{} + 1h;
  breaker.record_failure(t);
  EXPECT_EQ(breaker.state(t), BreakerState::kOpen);
  t += 501ms;
  EXPECT_TRUE(breaker.allow(t));  // the trial
  breaker.record_failure(t);
  EXPECT_EQ(breaker.state(t), BreakerState::kOpen) << "failed trial re-arms the cool-off";
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.allow(t + 499ms));
  EXPECT_TRUE(breaker.allow(t + 501ms));
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveFailureRun) {
  CircuitBreaker breaker(BreakerOptions{.failure_threshold = 2, .open_duration = 500ms});
  auto t = std::chrono::steady_clock::time_point{} + 1h;
  breaker.record_failure(t);
  breaker.record_success();
  breaker.record_failure(t);
  EXPECT_EQ(breaker.state(t), BreakerState::kClosed) << "run was broken by the success";
  breaker.record_failure(t);
  EXPECT_EQ(breaker.state(t), BreakerState::kOpen);
}

TEST(ParseEndpoint, AcceptsHostPortAndHttpUrls) {
  const auto plain = parse_endpoint("10.1.2.3:8080");
  EXPECT_EQ(plain.host, "10.1.2.3");
  EXPECT_EQ(plain.port, 8080);
  EXPECT_EQ(plain.id, "10.1.2.3:8080");

  const auto url = parse_endpoint("http://worker-a:9000/");
  EXPECT_EQ(url.host, "worker-a");
  EXPECT_EQ(url.port, 9000);

  EXPECT_THROW(parse_endpoint("no-port"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:99999"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint(":8080"), std::invalid_argument);
}

TEST(MergeWorkerMetrics, RelabelsAndRegroupsFamilies) {
  const std::string w0 =
      "# HELP mpqls_up 1 while serving.\n# TYPE mpqls_up gauge\nmpqls_up 1\n"
      "# HELP mpqls_cache_hits_total Hits.\n# TYPE mpqls_cache_hits_total counter\n"
      "mpqls_cache_hits_total 5\n";
  const std::string w1 =
      "# HELP mpqls_up 1 while serving.\n# TYPE mpqls_up gauge\nmpqls_up 1\n"
      "# HELP mpqls_cache_hits_total Hits.\n# TYPE mpqls_cache_hits_total counter\n"
      "mpqls_cache_hits_total 7\n";
  const std::string merged = merge_worker_metrics({{"w0", w0}, {"w1", w1}});

  // One preamble per family, all labeled series consecutive.
  EXPECT_EQ(merged.find("# HELP mpqls_up"), merged.rfind("# HELP mpqls_up"));
  EXPECT_NE(merged.find("mpqls_up{worker=\"w0\"} 1"), std::string::npos);
  EXPECT_NE(merged.find("mpqls_up{worker=\"w1\"} 1"), std::string::npos);
  EXPECT_NE(merged.find("mpqls_cache_hits_total{worker=\"w1\"} 7"), std::string::npos);
  const auto f0 = merged.find("mpqls_cache_hits_total{worker=\"w0\"}");
  const auto f1 = merged.find("mpqls_cache_hits_total{worker=\"w1\"}");
  const auto up1 = merged.find("mpqls_up{worker=\"w1\"}");
  ASSERT_NE(f0, std::string::npos);
  EXPECT_LT(up1, f0) << "family series must be grouped, not interleaved by worker";
  EXPECT_LT(f0, f1);
}

TEST(MergeWorkerMetrics, InjectsIntoExistingLabelSets) {
  const std::string body = "mpqls_thing{kind=\"a\"} 3\nmpqls_thing{kind=\"b\"} 4\n";
  const std::string merged = merge_worker_metrics({{"w2", body}});
  EXPECT_NE(merged.find("mpqls_thing{worker=\"w2\",kind=\"a\"} 3"), std::string::npos);
  EXPECT_NE(merged.find("mpqls_thing{worker=\"w2\",kind=\"b\"} 4"), std::string::npos);
}

}  // namespace
}  // namespace mpqls::cluster
