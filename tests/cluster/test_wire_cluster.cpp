// Cluster-level tests for the binary protocol + content-addressed store:
// a by-ref submit against a cluster that has never seen the matrix gets
// the worker's 404 mirrored back with the ref, one PUT through the
// coordinator broadcast-heals every reachable worker, and the same bytes
// resubmitted then solve to done — the self-healing re-upload contract
// from src/wire/DESIGN.md, exercised end to end through the routing
// layer. Also covers binary result proxying and the aggregated
// store/wire metric families.
#include "cluster/test_cluster.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "linalg/random_matrix.hpp"
#include "net/http_client.hpp"
#include "service/fingerprint.hpp"
#include "service/json_io.hpp"
#include "service/limits.hpp"
#include "wire/codec.hpp"

namespace mpqls::cluster {
namespace {

using namespace std::chrono_literals;

TestClusterOptions wire_cluster(std::size_t workers) {
  TestClusterOptions o;
  o.workers = workers;
  o.worker.service.cache_capacity = 4;
  o.worker.service.solve_threads = 1;
  o.worker.service.job_threads = 1;
  o.coordinator.probe_interval = 100ms;
  return o;
}

/// A small dense by-ref request: the matrix is known to the client (and
/// hashed locally), but never inlined in the submit body.
service::SolveRequest dense_request(const std::string& id) {
  Xoshiro256 rng(77);
  service::SolveRequest req;
  req.id = id;
  req.A = linalg::random_with_cond(rng, 8, 6.0);
  req.rhs.push_back(linalg::random_unit_vector(rng, 8));
  req.rhs.push_back(linalg::random_unit_vector(rng, 8));
  req.options.eps = 1e-10;
  req.options.qsvt.eps_l = 1e-2;
  req.matrix_ref = service::hash_matrix(req.A);
  return req;
}

Json poll_until_terminal(net::HttpClient& client, const std::string& job_id,
                         std::chrono::seconds timeout = 60s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto response = client.get("/v1/jobs/" + job_id);
    EXPECT_EQ(response.status, 200) << response.body;
    Json status = Json::parse(response.body);
    const std::string state = status.at("state").as_string();
    if (state == "done" || state == "failed" || state == "cancelled") return status;
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "timed out polling " << job_id;
      return status;
    }
    std::this_thread::sleep_for(5ms);
  }
}

TEST(WireCluster, ColdRefAnswersMirrored404AndOneUploadHealsTheCluster) {
  TestCluster cluster(wire_cluster(2));
  net::HttpClient client("127.0.0.1", cluster.port());

  service::SolveRequest req = dense_request("cold-ref");
  const std::string ref_hex = service::u64_hex(req.matrix_ref);
  const std::string frame_body = wire::encode_request(req);
  const std::string json_body = service::to_json(req).dump();
  ASSERT_NE(json_body.find(ref_hex), std::string::npos)
      << "by-ref JSON must carry the ref, not the matrix";

  // Every worker is cold: the coordinator routes the by-ref submit to the
  // ring home, the worker answers 404 carrying the ref, and the
  // coordinator mirrors it verbatim — for both encodings.
  for (const auto& [body, ctype] :
       {std::pair{frame_body, std::string(wire::kContentType)},
        std::pair{json_body, std::string("application/json")}}) {
    const auto miss = client.post("/v1/jobs", body, ctype);
    EXPECT_EQ(miss.status, 404) << miss.body;
    Json parsed = Json::parse(miss.body);
    EXPECT_EQ(parsed.at("error").as_string(), "unknown matrix_ref");
    EXPECT_EQ(parsed.at("matrix_ref").as_string(), ref_hex);
  }

  // One binary upload through the coordinator. It broadcasts to every
  // reachable worker, so the ref is warm cluster-wide afterwards.
  const auto created = client.put("/v1/matrices", wire::encode_matrix(req.A),
                                  wire::kContentType);
  ASSERT_EQ(created.status, 201) << created.body;
  EXPECT_EQ(Json::parse(created.body).at("matrix_ref").as_string(), ref_hex);
  for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
    net::HttpClient direct("127.0.0.1", cluster.worker(w).port());
    EXPECT_EQ(direct.get("/v1/matrices/" + ref_hex).status, 200)
        << "worker " << w << " missed the broadcast";
  }

  // The exact bytes that 404ed now sail through — the client-side heal is
  // literally "PUT once, resend the same buffer".
  const auto accepted = client.post("/v1/jobs", frame_body, wire::kContentType);
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const std::string binary_id = Json::parse(accepted.body).at("job_id").as_string();
  const auto json_accepted = client.post("/v1/jobs", json_body, "application/json");
  ASSERT_EQ(json_accepted.status, 202) << json_accepted.body;
  const std::string json_id = Json::parse(json_accepted.body).at("job_id").as_string();

  EXPECT_EQ(poll_until_terminal(client, binary_id).at("state").as_string(), "done");
  EXPECT_EQ(poll_until_terminal(client, json_id).at("state").as_string(), "done");

  // Binary result negotiation proxies through the coordinator unchanged.
  const auto result = client.get("/v1/jobs/" + binary_id + "/result",
                                 {{"Accept", wire::kContentType}});
  ASSERT_EQ(result.status, 200);
  const std::string* ctype = net::find_header(result.headers, "Content-Type");
  ASSERT_TRUE(ctype != nullptr && wire::is_frame_content_type(*ctype));
  const service::SolveResult decoded = wire::decode_result(result.body);
  EXPECT_EQ(decoded.id, "cold-ref");
  EXPECT_TRUE(decoded.all_converged);

  EXPECT_GE(cluster.coordinator().routing_stats().proxied_uploads, 1u);

  // The aggregated /metrics endpoint re-exports the workers' store and
  // per-encoding wire families.
  const auto metrics = client.get("/v1/metrics");
  ASSERT_EQ(metrics.status, 200);
  for (const char* family :
       {"mpqls_store_puts_total", "mpqls_store_hits_total",
        "mpqls_wire_requests_total"}) {
    EXPECT_NE(metrics.body.find(family), std::string::npos) << family;
  }
  cluster.stop();
}

TEST(WireCluster, UploadSkipsADeadWorkerAndTheSurvivorStaysWarm) {
  auto options = wire_cluster(2);
  options.coordinator.breaker.failure_threshold = 1;
  options.coordinator.worker_deadlines.connect = 500ms;
  TestCluster cluster(options);
  net::HttpClient client("127.0.0.1", cluster.port());

  // Kill one worker outright: the broadcast must still succeed via the
  // survivor instead of failing the whole upload.
  cluster.worker(0).drain(5000ms);

  service::SolveRequest req = dense_request("half-warm");
  const auto created = client.put("/v1/matrices", wire::encode_matrix(req.A),
                                  wire::kContentType);
  ASSERT_EQ(created.status, 201) << created.body;

  net::HttpClient survivor("127.0.0.1", cluster.worker(1).port());
  EXPECT_EQ(survivor.get("/v1/matrices/" + service::u64_hex(req.matrix_ref)).status,
            200);

  // And the by-ref solve completes on what's left of the cluster.
  const auto accepted =
      client.post("/v1/jobs", wire::encode_request(req), wire::kContentType);
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const std::string id = Json::parse(accepted.body).at("job_id").as_string();
  EXPECT_EQ(poll_until_terminal(client, id).at("state").as_string(), "done");
  cluster.stop();
}

}  // namespace
}  // namespace mpqls::cluster
