#include "hhl/hhl.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/random_matrix.hpp"

namespace mpqls::hhl {
namespace {

double direction_error(const linalg::Vector<double>& got, const linalg::Vector<double>& want) {
  linalg::Vector<double> w = want;
  const double n = linalg::nrm2(w);
  for (auto& v : w) v /= n;
  double plus = 0.0, minus = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    plus = std::fmax(plus, std::fabs(got[i] - w[i]));
    minus = std::fmax(minus, std::fabs(got[i] + w[i]));
  }
  return std::fmin(plus, minus);
}

TEST(Hhl, ExactWhenEigenvaluesOnClockGrid) {
  // Eigenvalues at exact multiples of the clock resolution: QPE is exact
  // and HHL recovers the solution to near machine precision.
  const std::uint32_t m = 4;
  const double t = 2.0 * M_PI / 16.0;  // bin size 1 in lambda units
  linalg::Matrix<double> A{{3.0, 1.0}, {1.0, 3.0}};  // eigenvalues 2 and 4
  linalg::Vector<double> b{1.0, 0.5};
  HhlOptions opts;
  opts.clock_qubits = m;
  opts.evolution_time = t;
  const auto res = hhl_solve(A, b, opts);
  const auto x_true = linalg::lu_solve(A, b);
  EXPECT_LT(direction_error(res.direction, x_true), 1e-10);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_NEAR(res.x[i], x_true[i], 1e-9);
  EXPECT_GT(res.success_probability, 0.01);
}

TEST(Hhl, NegativeEigenvaluesHandled) {
  // Indefinite matrix: eigenvalues -1 and 3 on the grid.
  linalg::Matrix<double> A{{1.0, 2.0}, {2.0, 1.0}};
  linalg::Vector<double> b{0.8, -0.6};
  HhlOptions opts;
  opts.clock_qubits = 5;
  opts.evolution_time = 2.0 * M_PI / 32.0;
  const auto res = hhl_solve(A, b, opts);
  const auto x_true = linalg::lu_solve(A, b);
  EXPECT_LT(direction_error(res.direction, x_true), 1e-9);
}

TEST(Hhl, AccuracyImprovesWithClockQubits) {
  Xoshiro256 rng(61);
  // Generic symmetric matrix: off-grid eigenvalues, so accuracy is set by
  // the clock resolution.
  linalg::Matrix<double> A{{2.1, 0.4}, {0.4, 1.3}};
  linalg::Vector<double> b{0.7, 0.3};
  const auto x_true = linalg::lu_solve(A, b);
  double prev_err = 1e9;
  for (std::uint32_t m : {4u, 6u, 8u}) {
    HhlOptions opts;
    opts.clock_qubits = m;
    const auto res = hhl_solve(A, b, opts);
    const double err = direction_error(res.direction, x_true);
    EXPECT_LT(err, prev_err * 1.5) << "m=" << m;  // no blow-up
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.05);
}

TEST(Hhl, GeneralMatrixViaDilation) {
  linalg::Matrix<double> A{{1.0, 0.5}, {-0.2, 0.8}};  // non-symmetric
  linalg::Vector<double> b{0.6, 0.4};
  HhlOptions opts;
  opts.clock_qubits = 8;
  const auto res = hhl_solve_general(A, b, opts);
  const auto x_true = linalg::lu_solve(A, b);
  EXPECT_LT(direction_error(res.direction, x_true), 0.05);
}

TEST(Hhl, RejectsSingularAndNonSymmetric) {
  linalg::Matrix<double> S{{1.0, 1.0}, {1.0, 1.0}};  // singular
  linalg::Vector<double> b{1.0, 0.0};
  EXPECT_THROW(hhl_solve(S, b), contract_violation);
  linalg::Matrix<double> NS{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW(hhl_solve(NS, b), contract_violation);
}

TEST(Hhl, FourByFourSystem) {
  Xoshiro256 rng(62);
  // Symmetric PSD 4x4 with moderate conditioning.
  auto G = linalg::random_gaussian(rng, 4, 4);
  auto A = linalg::gemm(G, linalg::transpose(G));
  for (std::size_t i = 0; i < 4; ++i) A(i, i) += 2.0;
  const auto b = linalg::random_unit_vector(rng, 4);
  HhlOptions opts;
  opts.clock_qubits = 9;
  const auto res = hhl_solve(A, b, opts);
  const auto x_true = linalg::lu_solve(A, b);
  EXPECT_LT(direction_error(res.direction, x_true), 0.03);
}

}  // namespace
}  // namespace mpqls::hhl
