// Machine-readable benchmark output: a perf_* bench builds a BenchReport
// alongside its stdout table and writes BENCH_<name>.json so CI jobs and
// plotting scripts consume the numbers without scraping text. The file
// lands in $MPQLS_BENCH_DIR when set (CI points it at the artifact
// directory), otherwise the current working directory.
//
// Shape, by convention:
//
//   {
//     "bench":   "wire_store",
//     "pass":    true,                 // acceptance verdict (absent in smoke)
//     "labels":  {"mode": "full"},    // free-form strings
//     "metrics": {"speedup": 7.31}    // every number the table printed
//   }
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "common/json.hpp"

namespace mpqls::bench {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    doc_ = Json::object();
    doc_["bench"] = name_;
    doc_["labels"] = Json::object();
    doc_["metrics"] = Json::object();
  }

  void metric(const std::string& key, double value) { doc_["metrics"][key] = value; }
  void label(const std::string& key, const std::string& value) { doc_["labels"][key] = value; }
  void pass(bool ok) { doc_["pass"] = ok; }

  /// Serialize to BENCH_<name>.json and print a one-line pointer. Write
  /// failures warn and return empty — a bench never fails because the
  /// artifact directory is missing.
  std::string write() const {
    std::string dir = ".";
    if (const char* env = std::getenv("MPQLS_BENCH_DIR"); env && *env) dir = env;
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench_io: cannot write %s\n", path.c_str());
      return {};
    }
    out << doc_.dump(2) << "\n";
    std::printf("wrote %s\n", path.c_str());
    return path;
  }

 private:
  std::string name_;
  Json doc_;
};

}  // namespace mpqls::bench
