// Cache-blocked gate-batching executor ("blocked") vs the gate-at-a-time
// reference backend — the acceptance benchmark for the execution-backend
// subsystem. Both backends come out of the process registry and replay
// the SAME compiled program; the blocked backend partitions the register
// into L2-sized tiles and applies runs of fused ops per tile per pass, so
// a deep program touches each cache line once per run instead of once
// per op.
//
//   build/bench/perf_backend_blocked            # full run + acceptance
//   build/bench/perf_backend_blocked --smoke    # one tiny rep, no acceptance
//
// Workload: a deep gate-level QSVT replay over the tridiagonal block
// encoding at n_data = 7 — an 18-qubit register (2^18 amplitudes, a 4 MB
// double statevector, well past L2) once the encoding ancillas, signal
// and real-part qubits are added. The circuit is constructed DIRECTLY —
// fabricated QSP phases, since phase values are irrelevant for replay
// cost — so the bench never runs the O(n^3) SVD that prepare_qsvt_solver
// would. Acceptance: register >= 2^12 amplitudes, >= 500 fused ops, and
// blocked >= 1.15x reference on at least one leg (scalar double, scalar
// float, 8-lane double panel), with final statevectors agreeing within
// tolerance.
//
// The blocked backend's margin comes from two places: tile-resident L2
// reuse across a run of ops, and one OpenMP region per *run* instead of
// per op (the reference replay forks/joins once per fused op). Both
// effects grow with core count and with state size relative to the LLC;
// on a single-core container whose LLC holds the whole register the
// honest margin shrinks to a few percent and this gate rides the noise
// floor — CI evaluates it on multi-core runners in both OpenMP matrix
// legs, requiring a pass in at least one.
//
// Emits BENCH_backend_blocked.json (see bench_io.hpp).
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_io.hpp"
#include "blockenc/tridiagonal.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "qsim/exec/backend/backend.hpp"
#include "qsim/exec/compile.hpp"
#include "qsim/exec/panel.hpp"
#include "qsim/statevector.hpp"
#include "qsvt/qsvt_circuit.hpp"

namespace {

using namespace mpqls;
using qsim::exec::ExecBackend;

struct Workload {
  qsim::exec::Program<double> program_d;
  qsim::exec::Program<float> program_f;
  std::uint32_t register_qubits = 0;
};

Workload build_workload(std::uint32_t n_data, std::size_t degree) {
  const auto be = blockenc::tridiagonal_block_encoding(n_data);
  // Fabricated phases: the replay cost depends only on the program shape
  // (one BE application + phase gadget per degree step), never on the
  // polynomial the phases encode.
  std::vector<double> qsp_phases(degree + 1);
  for (std::size_t k = 0; k < qsp_phases.size(); ++k) {
    qsp_phases[k] = 0.2 * std::sin(0.7 * static_cast<double>(k) + 0.3);
  }
  const auto qc = qsvt::build_qsvt_circuit(be, qsp_phases);
  const auto ir = qsim::exec::lower_and_fuse(qc.circuit);
  Workload w;
  w.program_d = qsim::exec::specialize<double>(ir);
  w.program_f = qsim::exec::specialize<float>(ir);
  w.register_qubits = qc.circuit.num_qubits();
  return w;
}

template <typename T>
void randomize_state(Xoshiro256& rng, qsim::Statevector<T>& sv) {
  double norm = 0.0;
  for (std::size_t i = 0; i < sv.dim(); ++i) {
    const double re = rng.uniform() - 0.5;
    const double im = rng.uniform() - 0.5;
    sv[i] = {static_cast<T>(re), static_cast<T>(im)};
    norm += re * re + im * im;
  }
  const T scale = static_cast<T>(1.0 / std::sqrt(norm));
  for (std::size_t i = 0; i < sv.dim(); ++i) sv[i] *= scale;
}

struct LegResult {
  double reference_seconds = 0.0;  ///< per replay
  double blocked_seconds = 0.0;    ///< per replay
  double max_diff = 0.0;           ///< final-state disagreement
};

/// One scalar leg: the same seeded state replayed `reps` times through
/// each backend; the final states must agree.
template <typename T>
LegResult run_scalar_leg(const qsim::exec::Program<T>& program, std::uint32_t qubits,
                         int reps) {
  const ExecBackend* reference = qsim::exec::find_backend("reference");
  const ExecBackend* blocked = qsim::exec::find_backend("blocked");
  LegResult leg;

  qsim::Statevector<T> sv_ref(qubits);
  qsim::Statevector<T> sv_blk(qubits);
  {
    Xoshiro256 rng(99);
    randomize_state(rng, sv_ref);
  }
  {
    Xoshiro256 rng(99);
    randomize_state(rng, sv_blk);
  }

  // Interleaved best-of-rounds: machine noise (CPU steal on shared hosts)
  // comes in windows long enough to depress a whole back-to-back batch, so
  // timing all reference reps then all blocked reps would let one backend
  // eat the interference alone. Alternating per round and keeping each
  // side's minimum makes the gate compare two quiet-window measurements.
  const auto ref_handle = reference->create_handle();
  const auto blk_handle = blocked->create_handle();
  // Warm replay outside the clock so plan construction (once per program
  // per handle) is not billed to the steady state; mirrored on the
  // reference state so both see identical op sequences for the parity
  // check below.
  reference->apply_program(*ref_handle, program, sv_ref);
  blocked->apply_program(*blk_handle, program, sv_blk);
  leg.reference_seconds = 1e300;
  leg.blocked_seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    {
      Timer t;
      reference->apply_program(*ref_handle, program, sv_ref);
      leg.reference_seconds = std::fmin(leg.reference_seconds, t.seconds());
    }
    {
      Timer t;
      blocked->apply_program(*blk_handle, program, sv_blk);
      leg.blocked_seconds = std::fmin(leg.blocked_seconds, t.seconds());
    }
  }
  for (std::size_t i = 0; i < sv_ref.dim(); ++i) {
    leg.max_diff = std::fmax(leg.max_diff, std::abs(std::complex<double>(sv_ref[i]) -
                                                    std::complex<double>(sv_blk[i])));
  }
  return leg;
}

/// The 8-lane double panel leg (the shape service panel jobs replay).
LegResult run_panel_leg(const qsim::exec::Program<double>& program, std::uint32_t qubits,
                        std::size_t lanes, int reps) {
  const ExecBackend* reference = qsim::exec::find_backend("reference");
  const ExecBackend* blocked = qsim::exec::find_backend("blocked");
  LegResult leg;

  const std::size_t dim = std::size_t{1} << qubits;
  qsim::exec::StatePanel<double> panel_ref(qubits, lanes);
  qsim::exec::StatePanel<double> panel_blk(qubits, lanes);
  Xoshiro256 rng(7);
  for (std::size_t l = 0; l < lanes; ++l) {
    double norm = 0.0;
    std::vector<std::complex<double>> amps(dim);
    for (auto& a : amps) {
      a = {rng.uniform() - 0.5, rng.uniform() - 0.5};
      norm += std::norm(a);
    }
    const double scale = 1.0 / std::sqrt(norm);
    for (std::size_t i = 0; i < dim; ++i) {
      panel_ref.set_amp(i, l, amps[i] * scale);
      panel_blk.set_amp(i, l, amps[i] * scale);
    }
  }

  // Same interleaved best-of-rounds discipline as the scalar legs.
  const auto ref_handle = reference->create_handle();
  const auto blk_handle = blocked->create_handle();
  reference->apply_program_panel(*ref_handle, program, panel_ref);  // mirror warm-up
  blocked->apply_program_panel(*blk_handle, program, panel_blk);    // plan warm-up
  leg.reference_seconds = 1e300;
  leg.blocked_seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    {
      Timer t;
      reference->apply_program_panel(*ref_handle, program, panel_ref);
      leg.reference_seconds = std::fmin(leg.reference_seconds, t.seconds());
    }
    {
      Timer t;
      blocked->apply_program_panel(*blk_handle, program, panel_blk);
      leg.blocked_seconds = std::fmin(leg.blocked_seconds, t.seconds());
    }
  }
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t l = 0; l < lanes; ++l) {
      leg.max_diff =
          std::fmax(leg.max_diff, std::abs(panel_ref.amp(i, l) - panel_blk.amp(i, l)));
    }
  }
  return leg;
}

int run(bool smoke) {
  const std::uint32_t n_data = smoke ? 4 : 7;
  const std::size_t degree = smoke ? 8 : 14;
  const int reps = smoke ? 1 : 7;
  const int panel_reps = smoke ? 1 : 3;  // lanes already multiply the per-replay work
  const std::size_t panel_lanes = 8;

  const Workload w = build_workload(n_data, degree);
  const std::size_t ops = w.program_d.ops.size();

#ifdef _OPENMP
  const int threads = omp_get_max_threads();
#else
  const int threads = 1;
#endif
  std::printf(
      "blocked vs reference backend: register %u qubits (2^%u amps), %zu fused ops, "
      "%d thread%s\n\n",
      w.register_qubits, w.register_qubits, ops, threads, threads == 1 ? "" : "s");

  struct Row {
    const char* name;
    LegResult leg;
    double tolerance;
  };
  std::vector<Row> rows;
  rows.push_back({"scalar double", run_scalar_leg(w.program_d, w.register_qubits, reps), 1e-10});
  rows.push_back({"scalar float", run_scalar_leg(w.program_f, w.register_qubits, reps), 1e-4});
  rows.push_back({"panel double@8",
                  run_panel_leg(w.program_d, w.register_qubits, panel_lanes, panel_reps), 1e-10});

  TextTable table({"leg", "reference (ms)", "blocked (ms)", "speedup", "max |diff|"});
  bool exact = true;
  double best_speedup = 0.0;
  for (const auto& row : rows) {
    const double speedup = row.leg.reference_seconds / row.leg.blocked_seconds;
    best_speedup = std::fmax(best_speedup, speedup);
    exact = exact && row.leg.max_diff < row.tolerance;
    table.add_row({row.name, fmt_fix(row.leg.reference_seconds * 1e3, 2),
                   fmt_fix(row.leg.blocked_seconds * 1e3, 2), fmt_fix(speedup, 2) + "x",
                   fmt_sci(row.leg.max_diff)});
  }
  table.print(std::cout);
  std::printf("\n");

  bench::BenchReport report("backend_blocked");
  report.label("mode", smoke ? "smoke" : "full");
  report.metric("register_qubits", static_cast<double>(w.register_qubits));
  report.metric("program_ops", static_cast<double>(ops));
  report.metric("exact", exact ? 1.0 : 0.0);
  report.metric("speedup_scalar_double", rows[0].leg.reference_seconds / rows[0].leg.blocked_seconds);
  report.metric("speedup_scalar_float", rows[1].leg.reference_seconds / rows[1].leg.blocked_seconds);
  report.metric("speedup_panel8_double", rows[2].leg.reference_seconds / rows[2].leg.blocked_seconds);

  if (smoke) {
    std::printf("smoke mode: backends exercised, acceptance not evaluated (diff %s)\n",
                exact ? "ok" : "ABOVE TOLERANCE");
    report.write();
    return exact ? 0 : 1;
  }

  const bool deep_enough = ops >= 500 && w.register_qubits >= 12;
  const bool pass = exact && deep_enough && best_speedup >= 1.15;
  std::printf("acceptance: parity within tolerance, register >= 2^12 (2^%u), >= 500 fused "
              "ops (%zu), and blocked >= 1.15x reference on at least one leg\n",
              w.register_qubits, ops);
  std::printf("  best leg: %.2fx -> %s\n", best_speedup, pass ? "PASS" : "FAIL");
  if (!exact) std::printf("WARNING: statevector disagreement above tolerance\n");
  report.pass(pass);
  report.write();
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  return run(smoke);
}
