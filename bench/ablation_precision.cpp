// Ablation: floating-point precision of the QPU simulation (the
// "mixed precision native" axis). Runs the same gate-level solve with a
// float and a double statevector and compares residual trajectories; also
// shows the classical Algorithm 1 analogue across half/float LU.
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/half.hpp"
#include "linalg/iterative_refinement.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  Xoshiro256 rng(71);
  const double kappa = 5.0;
  const auto A = linalg::random_with_cond(rng, 16, kappa);
  const auto b = linalg::random_unit_vector(rng, 16);

  std::printf("=== Ablation: QPU statevector precision (kappa = 5, eps_l = 1e-2) ===\n\n");
  std::vector<solver::QsvtIrReport> runs;
  for (auto precision : {qsvt::QpuPrecision::kDouble, qsvt::QpuPrecision::kSingle}) {
    solver::QsvtIrOptions opt;
    opt.eps = 1e-12;
    opt.qsvt.eps_l = 1e-2;
    opt.qsvt.backend = qsvt::Backend::kGateLevel;
    opt.qsvt.precision = precision;
    runs.push_back(solver::solve_qsvt_ir(A, b, opt));
  }
  TextTable table({"solve", "double statevector", "float statevector"});
  const std::size_t rows =
      std::max(runs[0].scaled_residuals.size(), runs[1].scaled_residuals.size());
  for (std::size_t i = 0; i < rows; ++i) {
    auto cell = [&](std::size_t k) {
      return i < runs[k].scaled_residuals.size() ? fmt_sci(runs[k].scaled_residuals[i])
                                                 : std::string("-");
    };
    table.add_row({i == 0 ? "first" : std::to_string(i), cell(0), cell(1)});
  }
  table.print(std::cout);
  std::printf("\nBoth reach the CPU-precision target: the float QPU's roundoff (~1e-7 per\n"
              "solve) is absorbed exactly like the algorithmic eps_l — the limiting\n"
              "accuracy depends only on the high precision u (paper Section II-B).\n\n");

  std::printf("=== Classical analogue: Algorithm 1 with fp16/fp32 factorization ===\n\n");
  linalg::ClassicalIrOptions copts;
  copts.target_scaled_residual = 1e-12;
  const auto rhalf = linalg::classical_iterative_refinement<double, linalg::half>(A, b, copts);
  const auto rfloat = linalg::classical_iterative_refinement<double, float>(A, b, copts);
  TextTable ctable({"solve", "LU fp16", "LU fp32"});
  const std::size_t crows =
      std::max(rhalf.scaled_residuals.size(), rfloat.scaled_residuals.size());
  for (std::size_t i = 0; i < crows; ++i) {
    auto cell = [&](const std::vector<double>& v) {
      return i < v.size() ? fmt_sci(v[i]) : std::string("-");
    };
    ctable.add_row({i == 0 ? "first" : std::to_string(i), cell(rhalf.scaled_residuals),
                    cell(rfloat.scaled_residuals)});
  }
  ctable.print(std::cout);
  return 0;
}
