// Compiled execution engine vs the gate-by-gate interpreter on the
// workload it was built for: one prepared gate-level QSVT context serving
// many right-hand sides. The interpreter path re-walks the cached circuit
// per solve, re-deriving every gate matrix; the compiled path replays the
// context's fused, precision-specialized program. Acceptance: >= 2x
// wall-clock with amplitudes agreeing within precision tolerance.
//
// Emits BENCH_compiled_exec.json (see bench_io.hpp).
//
//   build/bench/perf_compiled_exec
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_io.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/random_matrix.hpp"
#include "qsim/exec/compile.hpp"
#include "qsim/exec/executor.hpp"
#include "qsim/statevector.hpp"
#include "qsvt/solve.hpp"
#include "stateprep/kp_tree.hpp"

namespace {

using namespace mpqls;

struct Scenario {
  const char* name;
  linalg::Matrix<double> A;
  qsvt::QsvtOptions options;
  int reps;
};

struct Measurement {
  double interpreted_seconds = 0.0;
  double compiled_seconds = 0.0;
  double worst_amp_diff = 0.0;
  qsim::exec::ProgramStats stats;
};

Measurement run_scenario(const Scenario& sc) {
  const auto ctx = qsvt::prepare_qsvt_solver(sc.A, sc.options);
  const qsvt::QsvtCircuit& qc = *ctx.circuit;
  const std::uint32_t width = qc.circuit.num_qubits();
  const std::size_t N = sc.A.rows();

  Xoshiro256 rng(123);
  std::vector<linalg::Vector<double>> rhs;
  for (int k = 0; k < 8; ++k) rhs.push_back(linalg::random_unit_vector(rng, N));

  auto zeros = qc.zero_postselect();
  zeros.push_back(qc.realpart_qubit);
  qsim::Circuit flip(width);
  flip.x(qc.realpart_qubit);

  Measurement m;
  m.stats = *qsvt::compiled_program_stats(ctx);

  // Gate-by-gate interpreter: the per-RHS hot path before this engine.
  std::vector<std::vector<double>> interpreted(rhs.size());
  {
    Timer t;
    for (int rep = 0; rep < sc.reps; ++rep) {
      for (std::size_t r = 0; r < rhs.size(); ++r) {
        const auto sp = stateprep::kp_state_preparation(rhs[r]);
        qsim::Statevector<double> sv(width);
        sv.apply(sp.circuit);
        sv.apply(qc.circuit);
        sv.apply(flip);
        sv.postselect_zero(zeros);
        interpreted[r].resize(N);
        for (std::size_t i = 0; i < N; ++i) interpreted[r][i] = sv[i].real();
      }
    }
    m.interpreted_seconds = t.seconds();
  }

  // Compiled replay: the context's cached program plus a per-RHS compiled
  // state-preparation program (exactly what run_gate_level does now).
  std::vector<std::vector<double>> compiled(rhs.size());
  {
    const qsim::exec::Executor<double> executor;
    Timer t;
    for (int rep = 0; rep < sc.reps; ++rep) {
      for (std::size_t r = 0; r < rhs.size(); ++r) {
        const auto sp = stateprep::kp_state_preparation(rhs[r]);
        qsim::Statevector<double> sv(width);
        executor.run(qsim::exec::compile<double>(sp.circuit), sv);
        executor.run(ctx.programs->get<double>(), sv);
        sv.apply(flip);
        sv.postselect_zero(zeros);
        compiled[r].resize(N);
        for (std::size_t i = 0; i < N; ++i) compiled[r][i] = sv[i].real();
      }
    }
    m.compiled_seconds = t.seconds();
  }

  for (std::size_t r = 0; r < rhs.size(); ++r) {
    for (std::size_t i = 0; i < N; ++i) {
      m.worst_amp_diff = std::fmax(m.worst_amp_diff, std::fabs(interpreted[r][i] - compiled[r][i]));
    }
  }
  return m;
}

}  // namespace

int main() {
  Xoshiro256 rng(7);

  qsvt::QsvtOptions tridiag;
  tridiag.encoding = qsvt::EncodingKind::kTridiagonal;
  tridiag.eps_l = 5e-2;

  qsvt::QsvtOptions lcu;
  lcu.encoding = qsvt::EncodingKind::kLcuPauli;
  lcu.eps_l = 1e-2;

  qsvt::QsvtOptions dense;
  dense.eps_l = 1e-2;

  Scenario scenarios[] = {
      {"tridiag-8-banded", linalg::dirichlet_laplacian(8), tridiag, 2},
      {"random-8-lcu", linalg::random_with_cond(rng, 8, 10.0), lcu, 2},
      {"random-16-dense-be", linalg::random_with_cond(rng, 16, 10.0), dense, 4},
  };

  std::printf("compiled executor vs gate-by-gate interpreter: 8 rhs per context\n\n");
  TextTable table({"scenario", "gates", "ops", "depth", "compile (ms)", "interp (ms)",
                   "compiled (ms)", "speedup", "max |d amp|"});
  bool exact = true;
  bench::BenchReport report("compiled_exec");
  // The acceptance workload is the first scenario (repeated right-hand
  // sides against one cached gate-level QSVT circuit, the banded
  // encoding): compiled must win by >= 2x there. The remaining scenarios
  // guard against regressions on other circuit shapes (>= 1.2x) — the
  // LCU select circuits in particular sit closer to the interpreter
  // because their cost is dominated by unfusable full-register sweeps.
  double acceptance = 0.0;
  double guard = 1e300;
  for (const auto& sc : scenarios) {
    const auto m = run_scenario(sc);
    const double speedup = m.interpreted_seconds / m.compiled_seconds;
    table.add_row({sc.name, std::to_string(m.stats.source_gates), std::to_string(m.stats.ops),
                   std::to_string(m.stats.depth), fmt_fix(m.stats.compile_seconds * 1e3, 1),
                   fmt_fix(m.interpreted_seconds * 1e3, 1), fmt_fix(m.compiled_seconds * 1e3, 1),
                   fmt_fix(speedup, 2) + "x", fmt_sci(m.worst_amp_diff)});
    exact = exact && m.worst_amp_diff < 1e-9;
    report.metric(std::string("speedup_") + sc.name, speedup);
    report.metric(std::string("compiled_ms_") + sc.name, m.compiled_seconds * 1e3);
    if (&sc == &scenarios[0]) {
      acceptance = speedup;
    } else {
      guard = std::fmin(guard, speedup);
    }
  }
  table.print(std::cout);

  std::printf("\nacceptance: compiled >= 2x interpreter on the repeated-RHS QSVT workload: "
              "%.2fx -> %s\n",
              acceptance, acceptance >= 2.0 ? "PASS" : "FAIL");
  std::printf("regression guard: >= 1.2x on the remaining scenarios: %.2fx -> %s\n", guard,
              guard >= 1.2 ? "PASS" : "FAIL");
  if (!exact) std::printf("WARNING: amplitude mismatch above 1e-9\n");
  const bool pass = exact && acceptance >= 2.0 && guard >= 1.2;
  report.metric("exact", exact ? 1.0 : 0.0);
  report.metric("acceptance_speedup", acceptance);
  report.metric("guard_speedup", guard);
  report.pass(pass);
  report.write();
  return pass ? 0 : 1;
}
