// Ablation: finite-sampling readout. The paper's experiments read exact
// amplitudes (its 1e-11 residuals would otherwise need ~1e22 shots); the
// complexity analysis nevertheless charges O(1/eps_l^2) samples per solve.
// This bench runs the solver under the multinomial shot model and shows
// (a) the per-solve accuracy floor ~ 1/sqrt(shots), and (b) that the
// refinement loop keeps contracting through fresh noise.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  Xoshiro256 rng(31);
  const double kappa = 10.0;
  const auto A = linalg::random_with_cond(rng, 16, kappa);
  const auto b = linalg::random_unit_vector(rng, 16);

  std::printf("=== Ablation: shot-based readout (kappa = 10, eps = 1e-6) ===\n\n");
  TextTable table({"shots", "first-solve residual", "iterations", "final residual",
                   "converged"});
  for (std::uint64_t shots : {std::uint64_t{0}, std::uint64_t{10'000}, std::uint64_t{100'000},
                              std::uint64_t{1'000'000}, std::uint64_t{10'000'000}}) {
    solver::QsvtIrOptions opt;
    opt.eps = 1e-6;
    opt.max_iterations = 40;
    opt.qsvt.eps_l = 1e-3;
    opt.qsvt.backend = qsvt::Backend::kMatrixFunction;
    opt.qsvt.shots = shots;
    opt.qsvt.seed = 123;
    const auto rep = solver::solve_qsvt_ir(A, b, opt);
    table.add_row({shots == 0 ? "exact" : fmt_int(shots),
                   fmt_sci(rep.scaled_residuals.front()), std::to_string(rep.iterations),
                   fmt_sci(rep.scaled_residuals.back()), rep.converged ? "yes" : "no"});
  }
  table.print(std::cout);
  std::printf("\nThe first-solve residual floors at ~kappa/sqrt(shots); refinement still\n"
              "contracts because every iteration draws fresh samples. The exact-readout\n"
              "row reproduces the paper's simulator setting.\n");
  return 0;
}
