// Microbenchmarks of the statevector simulator kernels (google-benchmark):
// single-qubit layers, CNOT ladders, dense two-qubit payloads and the
// dense block-encoding application that dominates QSVT runs, in float and
// double precision.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "linalg/random_matrix.hpp"
#include "qsim/statevector.hpp"

namespace {

using namespace mpqls;

template <typename T>
void BM_HadamardLayer(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  qsim::Statevector<T> sv(n);
  qsim::Circuit layer(n);
  for (std::uint32_t q = 0; q < n; ++q) layer.h(q);
  for (auto _ : state) {
    sv.apply(layer);
    benchmark::DoNotOptimize(sv[0]);
  }
  state.SetItemsProcessed(state.iterations() * n * (std::int64_t{1} << n));
}
BENCHMARK_TEMPLATE(BM_HadamardLayer, double)->Arg(10)->Arg(16)->Arg(20);
BENCHMARK_TEMPLATE(BM_HadamardLayer, float)->Arg(10)->Arg(16)->Arg(20);

template <typename T>
void BM_CnotLadder(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  qsim::Statevector<T> sv(n);
  qsim::Circuit ladder(n);
  for (std::uint32_t q = 0; q + 1 < n; ++q) ladder.cx(q, q + 1);
  for (auto _ : state) {
    sv.apply(ladder);
    benchmark::DoNotOptimize(sv[0]);
  }
  state.SetItemsProcessed(state.iterations() * (n - 1) * (std::int64_t{1} << n));
}
BENCHMARK_TEMPLATE(BM_CnotLadder, double)->Arg(10)->Arg(16)->Arg(20);

void BM_DenseBlockEncodingApply(benchmark::State& state) {
  // A 2^5-dimensional dense payload on the low 5 qubits of an n-qubit
  // register: the exact shape of one block-encoding call in the solver.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Xoshiro256 rng(5);
  const auto Q = linalg::haar_orthogonal(rng, 32);
  linalg::Matrix<qsim::c64> U(32, 32);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) U(i, j) = Q(i, j);
  }
  qsim::Circuit c(n);
  c.unitary({0, 1, 2, 3, 4}, std::move(U));
  qsim::Statevector<double> sv(n);
  for (auto _ : state) {
    sv.apply(c);
    benchmark::DoNotOptimize(sv[0]);
  }
  state.SetItemsProcessed(state.iterations() * 32 * (std::int64_t{1} << n));
}
BENCHMARK(BM_DenseBlockEncodingApply)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_RotationLayer(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  qsim::Statevector<double> sv(n);
  qsim::Circuit layer(n);
  for (std::uint32_t q = 0; q < n; ++q) layer.ry(q, 0.1 + q);
  for (auto _ : state) {
    sv.apply(layer);
    benchmark::DoNotOptimize(sv[0]);
  }
  state.SetItemsProcessed(state.iterations() * n * (std::int64_t{1} << n));
}
BENCHMARK(BM_RotationLayer)->Arg(10)->Arg(16)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
