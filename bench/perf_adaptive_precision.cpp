// Adaptive-precision escalation vs fixed-double refinement — the
// acceptance benchmark for the precision-escalation schedule: the same
// batch of right-hand sides solved end-to-end (Algorithm 2, lockstep
// panels) once with every QSVT replay in double and once under the
// adaptive schedule (first solve on the half program, the single program
// carrying the middle of the trajectory, double only on stall, dd128
// verification of the final residual). The half and single replays cost
// roughly half a double replay and — per the paper's Remark 2 — the
// normalized residual solves contract at the double tier's rate, so the
// schedule wins end-to-end wall clock at equal final accuracy.
// Acceptance: >= 1.3x on the primary workload in BOTH serial and OpenMP
// modes, with the adaptive residual within 2x of fixed-double's (or below
// eps), every lane converged and dd128-verified.
//
//   build/bench/perf_adaptive_precision            # full run + acceptance
//   build/bench/perf_adaptive_precision --smoke    # tiny system, no acceptance
//
// Emits BENCH_adaptive_precision.json (see bench_io.hpp).
//
// This bench replaced the descriptive ablation_precision table: the
// residual-trajectory comparison it printed (float statevector reaching
// the double-precision target) is now an acceptance-checked property of
// the adaptive schedule itself.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_io.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"

namespace {

using namespace mpqls;

struct Scenario {
  const char* name;
  linalg::Matrix<double> A;
  std::vector<linalg::Vector<double>> rhs;
};

struct Outcome {
  double seconds = 0.0;
  double worst_residual = 0.0;
  bool all_converged = true;
  bool dd128_all_verified = true;  ///< meaningful for adaptive runs only
  std::uint64_t tier_solves[3] = {};
  std::uint64_t switches = 0;
};

Outcome run_one(const Scenario& sc, qsvt::QpuPrecision precision) {
  solver::QsvtIrOptions opt;
  opt.eps = 1e-11;
  opt.qsvt.eps_l = 5e-2;
  opt.qsvt.precision = precision;
  const auto ctx = qsvt::prepare_qsvt_solver(sc.A, opt.qsvt);

  // Warm-up batch: materializes every program specialization the schedule
  // will touch, so the timed run measures the steady state the service
  // sees (one compile per cached context, replays thereafter).
  (void)solver::solve_qsvt_ir_batch(ctx, sc.rhs, opt);

  Timer t;
  const auto reports = solver::solve_qsvt_ir_batch(ctx, sc.rhs, opt);
  Outcome out;
  out.seconds = t.seconds();
  for (const auto& r : reports) {
    out.worst_residual = std::fmax(out.worst_residual, r.scaled_residuals.back());
    out.all_converged = out.all_converged && r.converged;
    out.dd128_all_verified = out.dd128_all_verified && r.dd128_verified;
    for (int k = 0; k < 3; ++k) out.tier_solves[k] += r.tier_solves[k];
    out.switches += r.precision_switches;
  }
  return out;
}

int run(bool smoke) {
  Xoshiro256 rng(7);

  const std::size_t n_rhs = smoke ? 4 : 16;
  auto make = [&rng, n_rhs](const char* name, std::size_t n, double cond) {
    Scenario sc{name, linalg::random_with_cond(rng, n, cond), {}};
    for (std::size_t k = 0; k < n_rhs; ++k) {
      sc.rhs.push_back(linalg::random_unit_vector(rng, sc.A.rows()));
    }
    return sc;
  };

  std::vector<Scenario> scenarios;
  if (smoke) {
    scenarios.push_back(make("random-16", 16, 10.0));
  } else {
    scenarios.push_back(make("random-128", 128, 30.0));  // acceptance workload
    scenarios.push_back(make("random-64", 64, 20.0));    // regression guard
  }

#ifdef _OPENMP
  const int max_threads = omp_get_max_threads();
#else
  const int max_threads = 1;
#endif

  std::printf("adaptive precision schedule vs fixed-double refinement: "
              "%zu rhs per batch, eps = 1e-11\n\n",
              n_rhs);

  bench::BenchReport report("adaptive_precision");
  report.label("mode", smoke ? "smoke" : "full");
  report.metric("n_rhs", static_cast<double>(n_rhs));

  bool converged = true;
  bool verified = true;
  bool accuracy = true;
  double acceptance_serial = 0.0, acceptance_omp = 0.0;
  double guard = 1e300;
  for (const char* mode : {"serial", "openmp"}) {
    const bool serial = std::strcmp(mode, "serial") == 0;
#ifdef _OPENMP
    omp_set_num_threads(serial ? 1 : max_threads);
#else
    if (!serial) continue;  // no OpenMP runtime: the serial table is everything
#endif
    std::printf("--- %s (%d thread%s) ---\n", mode, serial ? 1 : max_threads,
                (serial || max_threads == 1) ? "" : "s");
    TextTable table({"scenario", "double (s)", "adaptive (s)", "speedup", "resid dbl",
                     "resid adpt", "solves h/s/d", "escalations"});
    for (const auto& sc : scenarios) {
      const Outcome fixed = run_one(sc, qsvt::QpuPrecision::kDouble);
      const Outcome adaptive = run_one(sc, qsvt::QpuPrecision::kAdaptive);
      const double speedup = fixed.seconds / adaptive.seconds;
      table.add_row({sc.name, fmt_fix(fixed.seconds, 3), fmt_fix(adaptive.seconds, 3),
                     fmt_fix(speedup, 2) + "x", fmt_sci(fixed.worst_residual),
                     fmt_sci(adaptive.worst_residual),
                     std::to_string(adaptive.tier_solves[solver::kTierHalf]) + "/" +
                         std::to_string(adaptive.tier_solves[solver::kTierSingle]) + "/" +
                         std::to_string(adaptive.tier_solves[solver::kTierDouble]),
                     std::to_string(adaptive.switches)});
      converged = converged && fixed.all_converged && adaptive.all_converged;
      verified = verified && adaptive.dd128_all_verified;
      // Equal final accuracy: the adaptive run may not give up more than
      // 2x of fixed-double's final scaled residual (anything below the
      // target eps counts as equal — both stopped where they were asked).
      accuracy = accuracy &&
                 adaptive.worst_residual <= 2.0 * std::fmax(fixed.worst_residual, 1e-11);
      if (&sc == &scenarios[0]) {
        (serial ? acceptance_serial : acceptance_omp) = speedup;
        report.metric(std::string(mode) + "_speedup", speedup);
        report.metric(std::string(mode) + "_double_seconds", fixed.seconds);
        report.metric(std::string(mode) + "_adaptive_seconds", adaptive.seconds);
        report.metric(std::string(mode) + "_double_residual", fixed.worst_residual);
        report.metric(std::string(mode) + "_adaptive_residual", adaptive.worst_residual);
      } else {
        guard = std::fmin(guard, speedup);
      }
    }
    table.print(std::cout);
    std::printf("\n");
#ifndef _OPENMP
    break;
#endif
  }
#ifdef _OPENMP
  omp_set_num_threads(max_threads);
#else
  acceptance_omp = acceptance_serial;  // one runtime: serial numbers stand for both
#endif

  report.metric("all_converged", converged ? 1.0 : 0.0);
  report.metric("dd128_verified", verified ? 1.0 : 0.0);
  report.metric("accuracy_parity", accuracy ? 1.0 : 0.0);

  if (smoke) {
    const bool ok = converged && verified && accuracy;
    std::printf("smoke mode: schedule exercised, acceptance not evaluated "
                "(converged %s, dd128 %s, accuracy %s)\n",
                converged ? "ok" : "FAIL", verified ? "ok" : "FAIL",
                accuracy ? "ok" : "FAIL");
    report.write();
    return ok ? 0 : 1;
  }

  std::printf("acceptance: adaptive >= 1.3x fixed-double end-to-end at equal accuracy\n");
  std::printf("  serial: %.2fx -> %s\n", acceptance_serial,
              acceptance_serial >= 1.3 ? "PASS" : "FAIL");
  std::printf("  openmp: %.2fx -> %s\n", acceptance_omp,
              acceptance_omp >= 1.3 ? "PASS" : "FAIL");
  std::printf("regression guard: >= 1.1x on the remaining scenarios: %.2fx -> %s\n", guard,
              guard >= 1.1 ? "PASS" : "FAIL");
  if (!converged) std::printf("WARNING: a lane failed to converge\n");
  if (!verified) std::printf("WARNING: a dd128 verification disagreed with double\n");
  if (!accuracy) std::printf("WARNING: adaptive residual above 2x fixed-double\n");
  const bool pass = converged && verified && accuracy && acceptance_serial >= 1.3 &&
                    acceptance_omp >= 1.3 && guard >= 1.1;
  report.metric("guard_speedup", guard);
  report.pass(pass);
  report.write();
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  return run(smoke);
}
