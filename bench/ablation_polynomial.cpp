// Ablation: polynomial construction choices. Compares the paper's
// analytic Eq. (4) expansion against numeric interpolation + truncation
// (degree and achieved accuracy), and the rectangle-window route against
// plain rescaling for enforcing |P| <= 1 (DESIGN.md's design-choice note).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "poly/inverse_poly.hpp"

int main() {
  using namespace mpqls;
  using namespace mpqls::poly;

  std::printf("=== Ablation: inverse-polynomial construction ===\n\n");
  TextTable table({"kappa", "eps", "analytic degree", "interp degree", "analytic err",
                   "interp err", "interp time (ms)"});
  for (double kappa : {2.0, 10.0, 50.0, 200.0}) {
    for (double eps : {1e-2, 1e-4}) {
      Timer t;
      const auto pa = inverse_poly_analytic(kappa, eps);
      const auto pi = inverse_poly_interpolated(kappa, eps);
      const double ms = t.milliseconds();
      table.add_row({fmt_fix(kappa, 0), fmt_sci(eps, 0), std::to_string(pa.series.degree()),
                     std::to_string(pi.series.degree()), fmt_sci(pa.achieved_error, 2),
                     fmt_sci(pi.achieved_error, 2), fmt_fix(ms, 1)});
    }
  }
  table.print(std::cout);
  std::printf("\nInterpolation + tail truncation reaches the same accuracy at a fraction\n"
              "of the Eq. (4) degree bound — this is what keeps large-kappa instances\n"
              "tractable (the paper reaches for the [32] estimation pipeline instead).\n\n");

  std::printf("=== Ablation: |P| <= 1 enforcement: window vs rescale ===\n\n");
  TextTable wtable({"kappa", "raw max|P|", "windowed max|P|", "window degree overhead",
                    "windowed err at 1/kappa", "rescale err at 1/kappa"});
  for (double kappa : {20.0, 50.0, 100.0}) {
    const double eps = 1e-3;
    const auto p = inverse_poly_interpolated(kappa, eps);
    const auto w = rect_window(1.0 / kappa, eps * 0.1);
    const auto windowed = (p.series * w).truncated(1e-14);
    const double x0 = 1.0 / kappa;
    const double target = 1.0 / (2.0 * kappa * x0);
    const double win_err = std::fabs(windowed.evaluate(x0) - target) * 2.0 * kappa;
    // Rescaled polynomial: scale drops out after un-scaling -> the error is
    // just the raw polynomial's.
    const double scale_err = std::fabs(p.series.evaluate(x0) - target) * 2.0 * kappa;
    wtable.add_row({fmt_fix(kappa, 0), fmt_fix(p.max_abs, 3),
                    fmt_fix(windowed.max_abs_on(-1.0, 1.0), 3),
                    std::to_string(windowed.degree() - p.series.degree()),
                    fmt_sci(win_err, 2), fmt_sci(scale_err, 2)});
  }
  wtable.print(std::cout);
  std::printf("\nThe window pays extra degree and loses accuracy right at the domain edge\n"
              "(its transition band abuts 1/kappa); rescaling costs only success\n"
              "probability. The solver uses rescaling (see qsvt/solve.cpp).\n");
  return 0;
}
