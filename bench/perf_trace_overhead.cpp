// Tracing overhead on the cached-service workload — the acceptance gate
// that keeps always-on tracing honest: the same warm-cache batch (16
// right-hand sides against one 64x64 matrix, the perf_service_batch
// steady state) solved through the service with a live span buffer per
// job must cost no more than 2% over the identical run with tracing off
// (a null TraceContext, which every instrumentation site no-ops on after
// one pointer test).
//
//   build/bench/perf_trace_overhead            # full run + acceptance
//   build/bench/perf_trace_overhead --smoke    # tiny system, no acceptance
//
// Methodology: the two arms interleave solve-by-solve inside each round
// (so frequency scaling and cache state drift hit both equally) and the
// verdict compares best-of-rounds — min is the standard noise filter for
// a ratio gate this tight. A small absolute floor (50 us per solve)
// keeps the gate meaningful on machines where the whole batch runs in
// hundreds of microseconds and 2% is below timer jitter.
//
// Emits BENCH_trace_overhead.json (see bench_io.hpp).
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench_io.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "linalg/random_matrix.hpp"
#include "service/solver_service.hpp"

namespace {

using namespace mpqls;

int run(bool smoke) {
  const std::size_t n = smoke ? 16 : 64;
  const std::size_t n_rhs = smoke ? 4 : 16;
  const int reps = smoke ? 2 : 12;
  const int rounds = smoke ? 1 : 5;

  Xoshiro256 rng(7);
  const auto A = linalg::random_with_cond(rng, n, 10.0);

  service::SolveRequest req;
  req.id = "trace-overhead";
  req.A = A;
  for (std::size_t k = 0; k < n_rhs; ++k) {
    req.rhs.push_back(linalg::random_unit_vector(rng, n));
  }
  req.options.eps = 1e-10;
  req.options.qsvt.eps_l = 1e-2;
  req.options.qsvt.backend = qsvt::Backend::kMatrixFunction;

  // One solve thread: the gate measures instrumentation cost, not
  // scheduler noise, and the span writes happen on whatever thread runs
  // the solve either way.
  service::SolverService svc({.cache_capacity = 4, .solve_threads = 1, .job_threads = 1});

  // Warm the context cache; both arms then replay the same compiled
  // program (the serving steady state the 2% gate is defined on).
  (void)svc.solve(req);
  (void)svc.solve(req);

  double best_on = 1e300;
  double best_off = 1e300;
  std::size_t spans_recorded = 0;
  bool converged = true;
  for (int round = 0; round < rounds; ++round) {
    double t_on = 0.0;
    double t_off = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      {
        req.options.trace = nullptr;
        Timer t;
        const auto result = svc.solve(req);
        t_off += t.seconds();
        converged = converged && result.all_converged;
      }
      {
        auto tr = trace::make_trace();
        req.options.trace = tr;
        Timer t;
        const auto result = svc.solve(req);
        t_on += t.seconds();
        converged = converged && result.all_converged;
        spans_recorded += tr->snapshot().size();
      }
    }
    best_on = std::min(best_on, t_on);
    best_off = std::min(best_off, t_off);
  }
  req.options.trace = nullptr;

  const double ratio = best_on / best_off;
  const double per_solve_delta = (best_on - best_off) / reps;

  std::printf("tracing overhead on the cached-service workload: %zux%zu, %zu rhs, "
              "%d reps x %d rounds (interleaved, best-of)\n\n",
              n, n, n_rhs, reps, rounds);
  std::printf("  tracing off: %8.3f ms/round\n", best_off * 1e3);
  std::printf("  tracing on:  %8.3f ms/round  (%zu spans recorded)\n", best_on * 1e3,
              spans_recorded);
  std::printf("  ratio: %.4fx  (delta %+.1f us/solve)\n", ratio, per_solve_delta * 1e6);

  bench::BenchReport report("trace_overhead");
  report.label("mode", smoke ? "smoke" : "full");
  report.metric("n", static_cast<double>(n));
  report.metric("n_rhs", static_cast<double>(n_rhs));
  report.metric("off_seconds", best_off);
  report.metric("on_seconds", best_on);
  report.metric("overhead_ratio", ratio);
  report.metric("spans_recorded", static_cast<double>(spans_recorded));

  // Sanity: the traced arm must actually have traced something, or the
  // "overhead" measured nothing.
  const bool traced = spans_recorded > 0;
  if (!traced) std::printf("WARNING: traced arm recorded no spans\n");
  if (!converged) std::printf("WARNING: some solves did not converge\n");

  if (smoke) {
    std::printf("\nsmoke mode: instrumentation exercised, acceptance not evaluated\n");
    report.write();
    return (traced && converged) ? 0 : 1;
  }

  const bool pass = traced && converged && (ratio <= 1.02 || per_solve_delta <= 50e-6);
  std::printf("\nacceptance: tracing on <= 1.02x tracing off (or < 50 us/solve): %.4fx -> %s\n",
              ratio, pass ? "PASS" : "FAIL");
  report.pass(pass);
  report.write();
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  return run(smoke);
}
