// Table II of the paper: classical and quantum complexity breakdown for
// solving the 1-D Poisson equation with the mixed-precision solver,
// itemized by subroutine (state preparation, block-encoding, QSVT,
// solution/de-normalization) for the first solve and for each refinement
// iteration. Classical cost is measured in flops (via the flop ledger);
// quantum cost in logical T gates (via the resource models).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "blockenc/tridiagonal.hpp"
#include "common/table.hpp"
#include "linalg/blas.hpp"
#include "linalg/flops.hpp"
#include "linalg/random_matrix.hpp"
#include "poly/inverse_poly.hpp"
#include "qsvt/denormalize.hpp"
#include "resources/surface_code.hpp"
#include "resources/tcount.hpp"
#include "solver/qsvt_ir.hpp"
#include "stateprep/kp_tree.hpp"

int main() {
  using namespace mpqls;

  std::printf("=== Table II: Poisson-equation complexity breakdown ===\n\n");

  for (std::uint32_t n : {4u, 5u, 6u}) {
    const std::size_t N = std::size_t{1} << n;
    const double kappa = linalg::dirichlet_laplacian_cond(N);
    const double eps_l = 5e-2;

    // Quantum pieces: SP circuit, tridiagonal BE, QSVT phase gadgets.
    linalg::Vector<double> b(N, 1.0 / std::sqrt(static_cast<double>(N)));
    const auto sp = stateprep::kp_state_preparation(b);
    const auto sp_t = resources::circuit_tcount(sp.circuit);

    const auto be = blockenc::tridiagonal_block_encoding(n);
    const auto be_t = resources::circuit_tcount(be.circuit);

    // Degree of the inversion polynomial at this kappa (the number of BE
    // calls per QSVT solve).
    const auto poly = poly::inverse_poly_interpolated(kappa * 1.05, eps_l);
    const auto degree = static_cast<std::uint64_t>(poly.series.degree());
    // Projector phase gadget: 2 multi-controlled X on the BE ancillas + 1
    // rotation, per BE call.
    const auto gadget_t = 2 * resources::tcount_mcx(be.n_anc, resources::McxModel::kConditionallyClean) +
                          resources::tcount_rotation(1e-10);

    // Classical pieces, measured: SP tree flops; residual + Brent fit.
    const auto T = linalg::dirichlet_laplacian(N);
    std::uint64_t solution_flops = 0;
    {
      Xoshiro256 rng(7);
      const auto eta = linalg::random_unit_vector(rng, N);
      linalg::FlopScope scope;
      (void)qsvt::fit_step_brent(T, {}, eta, b);
      (void)linalg::residual(T, eta, b);
      solution_flops = scope.count();
    }

    std::printf("N = %zu (n = %u qubits), kappa = %.0f, eps_l = %.0e, poly degree d = %llu\n",
                N, n, kappa, eps_l, static_cast<unsigned long long>(degree));
    TextTable table({"phase", "subroutine", "classical flops", "quantum T gates"});
    table.add_row({"First", "SP(b) [23]", fmt_int(sp.classical_flops), fmt_int(sp_t.t_gates)});
    table.add_row({"First", "BE(T) x d [37-style]", "0 (analytic circuit)",
                   fmt_int(be_t.t_gates * degree)});
    table.add_row({"First", "QSVT (Phi, U_Phi) [15][32]", "O(kappa) phase solve",
                   fmt_int(gadget_t * degree)});
    table.add_row({"First", "Solution (Brent + residual)", fmt_int(solution_flops), "0"});
    table.add_row({"Iter", "SP(r_i)", fmt_int(sp.classical_flops), fmt_int(sp_t.t_gates)});
    table.add_row({"Iter", "BE(T) x d (reused circuit)", "0", fmt_int(be_t.t_gates * degree)});
    table.add_row({"Iter", "QSVT (phases reused)", "0", fmt_int(gadget_t * degree)});
    table.add_row({"Iter", "Solution (Brent + residual)", fmt_int(solution_flops), "0"});
    table.print(std::cout);
    std::printf("  per-BE-call T count: %llu (linear in n: carry adders), SP rotations: %llu\n\n",
                static_cast<unsigned long long>(be_t.t_gates),
                static_cast<unsigned long long>(sp.rotation_count));
  }

  // Fault-tolerant footprint of one refinement solve at N = 16 (the paper
  // counts T gates "because the depth of the circuit requires ... a
  // fault-tolerant quantum computer", citing lattice surgery [21]).
  {
    const auto be = blockenc::tridiagonal_block_encoding(4);
    const auto be_t = resources::circuit_tcount(be.circuit);
    const auto poly = poly::inverse_poly_interpolated(
        linalg::dirichlet_laplacian_cond(16) * 1.05, 5e-2);
    const auto d = static_cast<std::uint64_t>(poly.series.degree());
    const std::uint64_t t_per_solve = be_t.t_gates * d + 300 * d;  // BE + gadgets
    const std::uint32_t logical = 4 + be.n_anc + 2;
    std::printf("Surface-code footprint of one solve (N = 16, ~%llu T gates, %u logical "
                "qubits):\n",
                static_cast<unsigned long long>(t_per_solve), logical);
    TextTable sc({"physical error rate", "code distance", "physical qubits",
                  "runtime (s)"});
    for (double p : {1e-3, 1e-4}) {
      resources::SurfaceCodeAssumptions assume;
      assume.physical_error_rate = p;
      const auto est = resources::surface_code_estimate(t_per_solve, logical, 1e-2, assume);
      sc.add_row({fmt_sci(p, 0), std::to_string(est.code_distance),
                  fmt_int(est.physical_qubits), fmt_fix(est.runtime_seconds, 3)});
    }
    sc.print(std::cout);
    std::printf("\n");
  }

  std::printf("Scaling checks (paper's asymptotics):\n"
              "  SP classical = O(N) flops and O(N) rotations;\n"
              "  BE quantum = O(n) T per call, O(n kappa log(kappa/eps_l)) per solve;\n"
              "  Solution classical = O(N^2) flops (residual matvec) + O(log 1/eps) Brent;\n"
              "  kappa itself grows as O(N^2) (no preconditioning), which is what makes\n"
              "  large Poisson systems expensive for QSVT — the paper's closing remark.\n");
  return 0;
}
