// Ablation: gate noise. The paper works "in an LSQ context and not NISQ
// due to the excessive depth of quantum circuits for the QSVT algorithm";
// this bench quantifies that: with depolarizing noise per gate, the
// refinement loop's contraction stalls at a residual floor set by the
// per-solve infidelity ~ (gate count) x (noise rate), and above a critical
// rate the solver stops converging at all.
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  Xoshiro256 rng(51);
  const auto A = linalg::random_with_cond(rng, 8, 5.0);
  const auto b = linalg::random_unit_vector(rng, 8);

  std::printf("=== Ablation: depolarizing gate noise (kappa = 5, eps = 1e-8) ===\n\n");
  // Note on rates: the dense block-encoding is a single oracle-level gate,
  // so the circuit has ~4e2 gates where a compiled version would have ~1e6
  // — per-gate rates here correspond to ~1e3x smaller physical rates.
  TextTable table({"noise / gate", "circuit gates", "first residual", "best residual",
                   "iterations", "converged"});
  for (double p : {0.0, 1e-4, 1e-3, 3e-3, 1e-2}) {
    solver::QsvtIrOptions opt;
    opt.eps = 1e-8;
    opt.max_iterations = 25;
    opt.qsvt.eps_l = 1e-2;
    opt.qsvt.backend = qsvt::Backend::kGateLevel;
    opt.qsvt.noise.depolarizing_per_gate = p;
    opt.qsvt.seed = 9;
    const auto rep = solver::solve_qsvt_ir(A, b, opt);
    double best = rep.scaled_residuals.front();
    for (double w : rep.scaled_residuals) best = std::min(best, w);
    table.add_row({p == 0.0 ? "0 (fault-tolerant)" : fmt_sci(p, 0),
                   fmt_int(rep.solves.front().circuit_gates),
                   fmt_sci(rep.scaled_residuals.front()), fmt_sci(best),
                   std::to_string(rep.iterations), rep.converged ? "yes" : "no"});
  }
  table.print(std::cout);
  std::printf("\nThe breakdown is sharp: one expected Pauli event per solve (~3e-3/gate\n"
              "here) already stalls refinement at ~1e-6, and a few events destroy\n"
              "convergence outright — noise acts like an eps_l that no amount of\n"
              "refinement can push below. On compiled circuits (~1e6 physical gates per\n"
              "solve) the same arithmetic demands fault-tolerant error rates: the\n"
              "quantitative version of the paper's LSQ-not-NISQ remark.\n");
  return 0;
}
