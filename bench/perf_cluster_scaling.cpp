// Cluster scaling acceptance benchmark: the same repeated-matrix workload
// through one worker versus four, over real loopback HTTP via the
// coordinator.
//
// The workload is cache-bound — 8 distinct matrices cycled 8 times, with
// each worker's ContextCache capped at 4 contexts. One worker thrashes
// (cyclic access over 8 keys is LRU's worst case: every job pays the full
// QSVT prepare), while 4 affinity-sharded workers hold their 2-matrix
// shards resident and pay 8 preparations total. That is the paper's
// amortization argument turned into horizontal scaling: sharding
// multiplies the effective cache, so throughput scales even on one core.
//
// Acceptance (exit 1 on failure):
//   - >= 2.5x job throughput with 4 in-process workers vs 1
//   - affinity routing beats random routing's aggregate cache hit rate
//
// Emits BENCH_cluster_scaling.json (see bench_io.hpp).
//
//   build/bench/perf_cluster_scaling
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_io.hpp"
#include "cluster/test_cluster.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "net/http_client.hpp"

namespace {

using namespace mpqls;

constexpr std::size_t kDistinctMatrices = 8;
constexpr std::size_t kJobs = 64;
constexpr std::size_t kWorkerCacheCapacity = 4;

std::string job_body(std::size_t index) {
  // 8 distinct systems (different seeds => different matrices, so
  // distinct fingerprints), cycled so every matrix repeats 8 times.
  const std::size_t matrix = index % kDistinctMatrices;
  Json j = Json::object();
  j["id"] = "scale-" + std::to_string(index);
  Json m = Json::object();
  m["scenario"] = "random";
  m["n"] = 16;
  m["kappa"] = 10.0;
  m["seed"] = static_cast<std::uint64_t>(100 + matrix);
  j["matrix"] = std::move(m);
  Json rhs = Json::object();
  rhs["kind"] = "random";
  rhs["count"] = 2;
  rhs["seed"] = static_cast<std::uint64_t>(7);  // same rhs per matrix: results comparable
  j["rhs"] = std::move(rhs);
  Json opt = Json::object();
  opt["eps"] = 1e-8;
  Json qsvt = Json::object();
  qsvt["backend"] = "matrix";
  qsvt["eps_l"] = 1e-2;
  opt["qsvt"] = std::move(qsvt);
  j["options"] = std::move(opt);
  return j.dump();
}

struct RunResult {
  double seconds = 0.0;
  double jobs_per_second = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t affinity_hits = 0;
  std::uint64_t spillovers = 0;
  bool all_done = true;

  double hit_rate() const {
    const auto total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
};

RunResult run_workload(std::size_t workers, bool affinity) {
  cluster::TestClusterOptions options;
  options.workers = workers;
  options.worker.service.cache_capacity = kWorkerCacheCapacity;
  options.worker.service.solve_threads = 1;
  options.worker.service.job_threads = 1;
  options.worker.service.max_pending_jobs = kJobs + 8;  // keep 429 noise out of timing
  options.coordinator.affinity_routing = affinity;
  cluster::TestCluster cluster(options);

  net::HttpClient client("127.0.0.1", cluster.port());

  Timer wall;
  std::vector<std::string> ids;
  ids.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    const auto response = client.post("/v1/jobs", job_body(i));
    if (response.status != 202) {
      std::fprintf(stderr, "submit %zu refused (%d): %s\n", i, response.status,
                   response.body.c_str());
      continue;
    }
    ids.push_back(Json::parse(response.body).at("job_id").as_string());
  }

  RunResult result;
  result.all_done = ids.size() == kJobs;
  for (const auto& id : ids) {
    for (;;) {
      const auto response = client.get("/v1/jobs/" + id);
      if (response.status != 200) {
        result.all_done = false;
        break;
      }
      const std::string state = Json::parse(response.body).at("state").as_string();
      if (state == "done") break;
      if (state == "failed" || state == "cancelled") {
        result.all_done = false;
        break;
      }
      // Poll gently: on a small machine a hot poll loop would steal CPU
      // from the very solves being timed.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  result.seconds = wall.seconds();
  result.jobs_per_second = static_cast<double>(kJobs) / result.seconds;

  for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
    const auto stats = cluster.worker(w).service().cache_stats();
    result.cache_hits += stats.hits;
    result.cache_misses += stats.misses;
  }
  const auto routing = cluster.coordinator().routing_stats();
  result.affinity_hits = routing.affinity_hits;
  result.spillovers = routing.spillovers;

  cluster.stop();
  return result;
}

}  // namespace

int main() {
  std::printf("cluster scaling: %zu jobs over %zu distinct matrices, per-worker cache %zu\n\n",
              kJobs, kDistinctMatrices, kWorkerCacheCapacity);

  const RunResult one = run_workload(1, /*affinity=*/true);
  const RunResult four = run_workload(4, /*affinity=*/true);
  const RunResult random4 = run_workload(4, /*affinity=*/false);

  TextTable table({"configuration", "wall (s)", "jobs/s", "cache hits", "misses", "hit rate",
                   "affinity", "spill"});
  const auto add = [&table](const char* name, const RunResult& r) {
    table.add_row({name, fmt_fix(r.seconds, 2), fmt_fix(r.jobs_per_second, 1),
                   std::to_string(r.cache_hits), std::to_string(r.cache_misses),
                   fmt_fix(r.hit_rate() * 100.0, 1) + "%", std::to_string(r.affinity_hits),
                   std::to_string(r.spillovers)});
  };
  add("1 worker, affinity", one);
  add("4 workers, affinity", four);
  add("4 workers, random", random4);
  table.print(std::cout);

  const double speedup = one.seconds / four.seconds;
  std::printf("\n4-worker speedup: %.2fx (acceptance: >= 2.5x)\n", speedup);
  std::printf("hit rate, affinity vs random: %.1f%% vs %.1f%% (acceptance: strictly higher)\n",
              four.hit_rate() * 100.0, random4.hit_rate() * 100.0);

  bool ok = one.all_done && four.all_done && random4.all_done;
  if (!ok) std::printf("FAIL: not every job completed\n");
  if (speedup < 2.5) {
    std::printf("FAIL: speedup %.2fx below 2.5x\n", speedup);
    ok = false;
  }
  if (four.hit_rate() <= random4.hit_rate()) {
    std::printf("FAIL: affinity hit rate did not beat random routing\n");
    ok = false;
  }

  bench::BenchReport report("cluster_scaling");
  report.metric("jobs", static_cast<double>(kJobs));
  report.metric("speedup_4workers", speedup);
  report.metric("jobs_per_second_1", one.jobs_per_second);
  report.metric("jobs_per_second_4", four.jobs_per_second);
  report.metric("hit_rate_affinity", four.hit_rate());
  report.metric("hit_rate_random", random4.hit_rate());
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
