// Ablation: classical mixed-precision iterative refinement (Algorithm 1)
// across precision combinations and condition numbers — the baseline whose
// theory (contraction u_l * kappa, limiting accuracy set by u) the paper
// transplants to the CPU/QPU setting.
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/dd128.hpp"
#include "linalg/half.hpp"
#include "linalg/iterative_refinement.hpp"
#include "linalg/random_matrix.hpp"

int main() {
  using namespace mpqls;
  using namespace mpqls::linalg;

  std::printf("=== Ablation: classical Algorithm 1 across precisions ===\n\n");
  TextTable table({"kappa", "u_l (factor)", "u (residual)", "iters", "final omega",
                   "converged"});

  Xoshiro256 rng(81);
  for (double kappa : {10.0, 100.0, 1000.0}) {
    const auto A = random_with_cond(rng, 32, kappa);
    const auto b = random_unit_vector(rng, 32);
    ClassicalIrOptions opts;
    opts.target_scaled_residual = 1e-13;
    opts.max_iterations = 80;

    const auto r16 = classical_iterative_refinement<double, half>(A, b, opts);
    table.add_row({fmt_fix(kappa, 0), "fp16", "fp64", std::to_string(r16.iterations),
                   fmt_sci(r16.scaled_residuals.back()), r16.converged ? "yes" : "no"});
    const auto r32 = classical_iterative_refinement<double, float>(A, b, opts);
    table.add_row({fmt_fix(kappa, 0), "fp32", "fp64", std::to_string(r32.iterations),
                   fmt_sci(r32.scaled_residuals.back()), r32.converged ? "yes" : "no"});
    const auto r3p = classical_iterative_refinement<double, float, dd128>(A, b, opts);
    table.add_row({fmt_fix(kappa, 0), "fp32", "dd128 (3-precision)",
                   std::to_string(r3p.iterations), fmt_sci(r3p.scaled_residuals.back()),
                   r3p.converged ? "yes" : "no"});
  }
  table.print(std::cout);
  std::printf("\nfp16 factorization needs u_l * kappa < 1, so it degrades as kappa grows\n"
              "(and fails near kappa ~ 1/u_l ~ 1000), while fp32 sails through —\n"
              "the same eps_l * kappa < 1 frontier Theorem III.1 imposes on the QSVT.\n");
  return 0;
}
