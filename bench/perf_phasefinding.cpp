// Microbenchmarks of the symmetric-QSP phase solver (google-benchmark):
// cost versus polynomial degree, using the actual inversion targets the
// linear solver generates. This is the classical "compilation" cost the
// paper's Section III-C2 assigns to the CPU.
#include <benchmark/benchmark.h>

#include "poly/inverse_poly.hpp"
#include "qsp/symmetric_qsp.hpp"

namespace {

using namespace mpqls;

void BM_PhaseFindingInverseTarget(benchmark::State& state) {
  const double kappa = static_cast<double>(state.range(0));
  const auto inv = poly::inverse_poly_interpolated(kappa, 1e-2);
  const double scale = (inv.max_abs > 0.9) ? 0.9 / inv.max_abs : 1.0;
  const auto target = inv.series.scaled(scale).parity_projected(poly::Parity::kOdd);
  for (auto _ : state) {
    const auto res = qsp::solve_symmetric_qsp(target);
    benchmark::DoNotOptimize(res.residual);
  }
  state.counters["degree"] = target.degree();
}
BENCHMARK(BM_PhaseFindingInverseTarget)->Arg(2)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_ResponseEvaluation(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  std::vector<double> phases(d + 1, 0.01);
  phases.front() = phases.back() = M_PI / 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qsp::qsp_response(phases, 0.5));
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_ResponseEvaluation)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ChebCoefficientExtraction(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  std::vector<double> phases(d + 1, 0.01);
  phases.front() = phases.back() = M_PI / 4;
  for (auto _ : state) {
    const auto coeffs = qsp::response_cheb_coeffs(phases, d);
    benchmark::DoNotOptimize(coeffs[0]);
  }
}
BENCHMARK(BM_ChebCoefficientExtraction)->Arg(100)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
