// Figure 3 of the paper: evolution of the scaled residual per refinement
// iteration for kappa = 10, target accuracy eps = 1e-11, and several QSVT
// accuracies eps_l — gate-level simulation on N = 16 random matrices,
// exactly the paper's setup (Section IV-A). Also reruns one configuration
// on the tridiagonal Poisson matrix, which the paper reports as "similar
// in terms of convergence".
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  const double kappa = 10.0;
  const double eps = 1e-11;
  Xoshiro256 rng(161);
  const auto A = linalg::random_with_cond(rng, 16, kappa);
  const auto b = linalg::random_unit_vector(rng, 16);

  std::printf("=== Fig. 3: scaled residual until convergence ===\n");
  std::printf("N = 16 random matrix, kappa = %.0f, eps = %.0e, gate-level QSVT\n\n", kappa,
              eps);

  std::vector<solver::QsvtIrReport> runs;
  const std::vector<double> eps_ls = {1e-2, 1e-4, 1e-6};
  for (double eps_l : eps_ls) {
    solver::QsvtIrOptions opt;
    opt.eps = eps;
    opt.qsvt.eps_l = eps_l;
    opt.qsvt.backend = qsvt::Backend::kGateLevel;
    runs.push_back(solver::solve_qsvt_ir(A, b, opt));
  }

  TextTable table({"solve", "eps_l=1e-2", "eps_l=1e-4", "eps_l=1e-6"});
  std::size_t rows = 0;
  for (const auto& r : runs) rows = std::max(rows, r.scaled_residuals.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{i == 0 ? "first" : ("iter " + std::to_string(i))};
    for (const auto& r : runs) {
      row.push_back(i < r.scaled_residuals.size() ? fmt_sci(r.scaled_residuals[i])
                                                  : std::string("-"));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  TextTable summary({"eps_l", "poly degree", "contraction (measured eps_l*kappa)",
                     "iterations", "Thm III.1 bound"});
  for (std::size_t k = 0; k < runs.size(); ++k) {
    summary.add_row({fmt_sci(eps_ls[k], 0), std::to_string(runs[k].poly_degree),
                     fmt_sci(runs[k].eps_l_effective, 2), std::to_string(runs[k].iterations),
                     std::to_string(runs[k].theoretical_iteration_bound)});
  }
  std::printf("\n");
  summary.print(std::cout);

  // The Section IV-A remark: the tridiagonal system behaves the same.
  const auto T = linalg::dirichlet_laplacian(8);  // kappa ~ 32
  linalg::Vector<double> bt(8, 0.0);
  for (std::size_t j = 0; j < 8; ++j) bt[j] = 1.0 / 3.0;
  solver::QsvtIrOptions opt;
  opt.eps = eps;
  opt.qsvt.eps_l = 1e-2;
  opt.qsvt.backend = qsvt::Backend::kGateLevel;
  const auto tri = solver::solve_qsvt_ir(T, bt, opt);
  std::printf("\nTridiagonal cross-check (N = 8, kappa = %.1f, eps_l = 1e-2): converged = %s "
              "in %d iterations (bound %llu)\n",
              linalg::dirichlet_laplacian_cond(8), tri.converged ? "yes" : "no",
              tri.iterations, static_cast<unsigned long long>(tri.theoretical_iteration_bound));
  std::printf("\nPaper shape check: geometric contraction at rate ~eps_l*kappa per\n"
              "iteration, iteration counts at or below the Theorem III.1 bound, and\n"
              "smaller eps_l => fewer (but individually costlier) iterations.\n");
  return 0;
}
