// Table I of the paper: quantum cost of the QSVT-based linear solve with
// and without mixed-precision iterative refinement. Prints the symbolic
// rows, evaluates them on a parameter grid, and validates the #solves
// entry against a measured run.
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"
#include "solver/theory.hpp"

int main() {
  using namespace mpqls;

  std::printf("=== Table I: quantum cost with and without iterative refinement ===\n\n");
  std::printf("Symbolic (B = block-encoding cost):\n");
  TextTable sym({"", "QSVT only", "QSVT + iterative refinement"});
  sym.add_row({"# solves", "1", "ceil( log(eps) / log(kappa eps_l) )"});
  sym.add_row({"C_QSVT", "O(B kappa log(kappa/eps))", "O(B kappa log(kappa/eps_l))"});
  sym.add_row({"# samples", "O(1/eps^2)", "O(1/eps_l^2)"});
  sym.add_row({"Total", "product of the above", "product of the above"});
  sym.print(std::cout);

  std::printf("\nEvaluated at B = 1:\n");
  TextTable num({"kappa", "eps", "eps_l", "plain total", "IR total", "IR advantage"});
  for (double kappa : {2.0, 10.0, 100.0}) {
    for (double eps : {1e-6, 1e-11}) {
      const double eps_l = 0.1 / kappa;  // keeps eps_l * kappa = 0.1
      const auto plain = solver::qsvt_only_cost(1.0, kappa, eps);
      const auto ir = solver::qsvt_ir_cost(1.0, kappa, eps, eps_l);
      num.add_row({fmt_fix(kappa, 0), fmt_sci(eps, 0), fmt_sci(eps_l, 1),
                   fmt_sci(plain.total, 2), fmt_sci(ir.total, 2),
                   fmt_sci(plain.total / ir.total, 1)});
    }
  }
  num.print(std::cout);

  // Measured sanity check of the "# solves" row.
  Xoshiro256 rng(99);
  const auto A = linalg::random_with_cond(rng, 16, 10.0);
  const auto b = linalg::random_unit_vector(rng, 16);
  solver::QsvtIrOptions opt;
  opt.eps = 1e-11;
  opt.qsvt.eps_l = 1e-2;
  opt.qsvt.backend = qsvt::Backend::kGateLevel;
  const auto rep = solver::solve_qsvt_ir(A, b, opt);
  std::printf("\nMeasured check (kappa = 10, eps = 1e-11, eps_l = 1e-2):\n"
              "  solves used = %d (first + %d refinements), Theorem III.1 bound = %llu\n"
              "  per-solve BE calls = %llu (degree of the inversion polynomial)\n",
              rep.iterations + 1, rep.iterations,
              static_cast<unsigned long long>(rep.theoretical_iteration_bound),
              static_cast<unsigned long long>(rep.solves.front().be_calls));
  return 0;
}
