// Ablation: VQLS baseline (the third quantum-linear-solver family from
// the paper's introduction) against the QSVT pipeline on the same
// problems: solution quality, cost-function evaluations (each of which is
// a batch of Hadamard-test circuits on hardware) and scaling behaviour.
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"
#include "vqls/vqls.hpp"

int main() {
  using namespace mpqls;

  std::printf("=== Ablation: VQLS baseline vs QSVT(+IR) ===\n\n");
  TextTable table({"problem", "method", "rel. error", "cost evals / BE calls",
                   "time (ms)"});

  Xoshiro256 rng(61);
  for (double kappa : {3.0, 10.0}) {
    const auto A = linalg::random_with_cond(rng, 4, kappa);
    const auto b = linalg::random_unit_vector(rng, 4);
    const auto x_true = linalg::lu_solve(A, b);
    const double x_norm = linalg::nrm2(x_true);
    auto rel_err = [&](const linalg::Vector<double>& x) {
      double e = 0.0;
      for (std::size_t i = 0; i < 4; ++i) e += (x[i] - x_true[i]) * (x[i] - x_true[i]);
      return std::sqrt(e) / x_norm;
    };
    const std::string tag = "4x4, kappa=" + std::to_string(static_cast<int>(kappa));

    {
      Timer t;
      vqls::VqlsOptions vopt;
      vopt.layers = 3;
      vopt.restarts = 4;
      const auto res = vqls::vqls_solve(A, b, vopt);
      table.add_row({tag, "VQLS (3 layers)", fmt_sci(rel_err(res.x), 2),
                     fmt_int(static_cast<unsigned long long>(res.evaluations)),
                     fmt_fix(t.milliseconds(), 1)});
    }
    {
      Timer t;
      solver::QsvtIrOptions opt;
      opt.eps = 1e-10;
      opt.qsvt.eps_l = 1e-2;
      opt.qsvt.backend = qsvt::Backend::kGateLevel;
      const auto rep = solver::solve_qsvt_ir(A, b, opt);
      table.add_row({tag, "QSVT + IR", fmt_sci(rel_err(rep.x), 2),
                     fmt_int(rep.total_be_calls), fmt_fix(t.milliseconds(), 1)});
    }
  }
  table.print(std::cout);
  std::printf("\nVQLS has no accuracy knob: reaching a target error means retraining a\n"
              "deeper ansatz against a flattening cost landscape, and every cost\n"
              "evaluation is a fresh batch of circuits. The QSVT+IR pipeline instead\n"
              "buys accuracy with classical iterations at a fixed, analyzable quantum\n"
              "cost — the paper's motivation for building on QSVT.\n");
  return 0;
}
