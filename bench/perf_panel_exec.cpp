// Multi-RHS panel executor vs sequential compiled replay — the acceptance
// benchmark for the panel subsystem: one prepared gate-level QSVT context
// serving a batch of right-hand sides. The sequential path replays the
// cached program once per RHS (the scalar hot path `qsvt_solve_direction`);
// the panel path loads the batch into StatePanel lanes and replays the
// program once per panel (`qsvt_solve_directions`). Acceptance: >= 2x
// per-RHS throughput at panel width >= 8 on the banded workload, with the
// per-RHS directions agreeing within tolerance. OpenMP and serial numbers
// are both reported (the panel's lane loop vectorizes with or without an
// OpenMP runtime).
//
//   build/bench/perf_panel_exec            # full run + acceptance check
//   build/bench/perf_panel_exec --smoke    # one tiny rep, no acceptance
//
// Emits BENCH_panel_exec.json (see bench_io.hpp) next to the tables.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_io.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/random_matrix.hpp"
#include "qsvt/solve.hpp"

namespace {

using namespace mpqls;

struct Scenario {
  const char* name;
  linalg::Matrix<double> A;
  qsvt::QsvtOptions options;
  int reps;
};

struct Measurement {
  double sequential_seconds = 0.0;              ///< per-RHS, scalar replay
  std::vector<double> panel_seconds;            ///< per-RHS, one entry per width
  double worst_diff = 0.0;                      ///< panel vs scalar directions
};

Measurement run_scenario(const Scenario& sc, const std::vector<std::size_t>& widths,
                         std::size_t n_rhs) {
  const auto ctx = qsvt::prepare_qsvt_solver(sc.A, sc.options);
  const std::size_t N = sc.A.rows();

  Xoshiro256 rng(123);
  std::vector<linalg::Vector<double>> rhs;
  for (std::size_t k = 0; k < n_rhs; ++k) rhs.push_back(linalg::random_unit_vector(rng, N));

  Measurement m;

  // Sequential baseline: the scalar hot path, one full program replay per
  // right-hand side.
  std::vector<linalg::Vector<double>> reference(n_rhs);
  {
    Timer t;
    for (int rep = 0; rep < sc.reps; ++rep) {
      for (std::size_t k = 0; k < n_rhs; ++k) {
        reference[k] = qsvt_solve_direction(ctx, rhs[k]).direction;
      }
    }
    m.sequential_seconds = t.seconds() / static_cast<double>(sc.reps * n_rhs);
  }

  for (const std::size_t width : widths) {
    Timer t;
    for (int rep = 0; rep < sc.reps; ++rep) {
      for (std::size_t begin = 0; begin < n_rhs; begin += width) {
        const std::size_t count = std::min(width, n_rhs - begin);
        const auto outcomes = qsvt_solve_directions(
            ctx, std::span<const linalg::Vector<double>>(rhs.data() + begin, count));
        if (rep == 0) {
          for (std::size_t k = 0; k < count; ++k) {
            for (std::size_t i = 0; i < N; ++i) {
              m.worst_diff = std::fmax(
                  m.worst_diff,
                  std::fabs(outcomes[k].direction[i] - reference[begin + k][i]));
            }
          }
        }
      }
    }
    m.panel_seconds.push_back(t.seconds() / static_cast<double>(sc.reps * n_rhs));
  }
  return m;
}

int run(bool smoke) {
  Xoshiro256 rng(7);

  qsvt::QsvtOptions tridiag;
  tridiag.encoding = qsvt::EncodingKind::kTridiagonal;
  tridiag.eps_l = 5e-2;

  qsvt::QsvtOptions dense;
  dense.eps_l = 1e-2;

  const int reps = smoke ? 1 : 6;
  const std::size_t n_rhs = smoke ? 8 : 16;
  const std::vector<std::size_t> widths = smoke ? std::vector<std::size_t>{4}
                                                : std::vector<std::size_t>{2, 4, 8, 16};

  Scenario scenarios[] = {
      {"tridiag-8-banded", linalg::dirichlet_laplacian(8), tridiag, reps},
      {"random-64-dense-be", linalg::random_with_cond(rng, 64, 10.0), dense,
       std::max(1, reps / 2)},
  };

#ifdef _OPENMP
  const int max_threads = omp_get_max_threads();
#else
  const int max_threads = 1;
#endif

  std::printf("panel executor vs sequential compiled replay: %zu rhs per context\n\n",
              n_rhs);

  bool exact = true;
  double acceptance_serial = 0.0, acceptance_omp = 0.0;
  // Serial first, then the full OpenMP thread count: the acceptance
  // criterion must hold for the kernels themselves, not only for the
  // parallel runtime.
  for (const char* mode : {"serial", "openmp"}) {
    const bool serial = std::strcmp(mode, "serial") == 0;
#ifdef _OPENMP
    omp_set_num_threads(serial ? 1 : max_threads);
#else
    if (!serial) continue;  // no OpenMP runtime: the serial table is everything
#endif
    std::printf("--- %s (%d thread%s) ---\n", mode, serial ? 1 : max_threads,
                (serial || max_threads == 1) ? "" : "s");
    std::vector<std::string> header = {"scenario", "seq (ms/rhs)"};
    for (const auto w : widths) header.push_back("panel@" + std::to_string(w));
    header.push_back("max |d dir|");
    TextTable table(header);
    for (const auto& sc : scenarios) {
      const auto m = run_scenario(sc, widths, n_rhs);
      std::vector<std::string> row = {sc.name, fmt_fix(m.sequential_seconds * 1e3, 2)};
      for (std::size_t wi = 0; wi < widths.size(); ++wi) {
        const double speedup = m.sequential_seconds / m.panel_seconds[wi];
        row.push_back(fmt_fix(m.panel_seconds[wi] * 1e3, 2) + " (" + fmt_fix(speedup, 2) +
                      "x)");
        if (&sc == &scenarios[0] && widths[wi] == 8) {
          (serial ? acceptance_serial : acceptance_omp) = speedup;
        }
      }
      row.push_back(fmt_sci(m.worst_diff));
      table.add_row(row);
      exact = exact && m.worst_diff < 1e-9;
    }
    table.print(std::cout);
    std::printf("\n");
#ifndef _OPENMP
    break;
#endif
  }
#ifdef _OPENMP
  omp_set_num_threads(max_threads);
#else
  acceptance_omp = acceptance_serial;  // one runtime: the serial numbers stand for both
#endif

  bench::BenchReport report("panel_exec");
  report.label("mode", smoke ? "smoke" : "full");
  report.metric("n_rhs", static_cast<double>(n_rhs));
  report.metric("exact", exact ? 1.0 : 0.0);

  if (smoke) {
    std::printf("smoke mode: kernels exercised, acceptance not evaluated (diff %s)\n",
                exact ? "ok" : "ABOVE TOLERANCE");
    report.write();
    return exact ? 0 : 1;
  }

  std::printf("acceptance: panel width 8 >= 2x sequential replay on the banded workload\n");
  std::printf("  serial: %.2fx -> %s\n", acceptance_serial,
              acceptance_serial >= 2.0 ? "PASS" : "FAIL");
  std::printf("  openmp: %.2fx -> %s\n", acceptance_omp,
              acceptance_omp >= 2.0 ? "PASS" : "FAIL");
  if (!exact) std::printf("WARNING: direction mismatch above 1e-9\n");
  const bool pass = exact && acceptance_serial >= 2.0 && acceptance_omp >= 2.0;
  report.metric("serial_speedup_w8", acceptance_serial);
  report.metric("openmp_speedup_w8", acceptance_omp);
  report.pass(pass);
  report.write();
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  return run(smoke);
}
