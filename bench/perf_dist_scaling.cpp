// Distributed statevector scaling: the W-shard exchange executor vs a
// one-lane panel replay of the same compiled program, and — the point of
// the exchange *planner* — the scheduled communication plan vs the
// classification-blind naive plan on an exchange-heavy circuit.
//
//   build/bench/perf_dist_scaling            # full run + acceptance
//   build/bench/perf_dist_scaling --smoke    # tiny rep, no acceptance
//
// Workload: the unfused QSVT gadget stream (H on the real-part qubit, d
// rounds of block-encoding + CPiX · Rz · CRz · CPiX phase gadget, closing
// H), with the signal and real-part qubits on the partition side. Unfused,
// every gadget references partition qubits, so a naive schedule pays an
// exchange round per gadget op while the planner's X-conjugation and
// diagonal-demotion passes leave only the two H rounds. Shards run as
// threads over a LocalPeerGroup — same exchange plan, same wire framing
// discipline, loopback memcpy transport — so the round counts and bytes
// are exactly what W real daemons would ship.
//
// Acceptance (exit 1 on failure):
//   - scheduled plan executes strictly fewer exchange rounds than the
//     naive plan at W = 4 (both gadget qubits partitioned) and never more
//     at W = 2 (where classification alone already localizes the gadget)
//   - every replay (panel, naive, scheduled, both world sizes) agrees on
//     the final state within 1e-10
//
// Emits BENCH_dist_scaling.json (see bench_io.hpp).
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_io.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "qsim/circuit.hpp"
#include "qsim/exec/compile.hpp"
#include "qsim/exec/dist/dist_executor.hpp"
#include "qsim/exec/dist/dist_state.hpp"
#include "qsim/exec/dist/exchange_plan.hpp"
#include "qsim/exec/dist/peer_channel.hpp"
#include "qsim/exec/panel.hpp"
#include "qsim/exec/panel_executor.hpp"

namespace {

using namespace mpqls;
using namespace mpqls::qsim::exec;
using c64 = qsim::c64;

/// The QSVT gadget stream at width n: dense block-encoding stand-in on
/// {0,1,2}, signal = n-2 and realpart = n-1 so the gadget lives on the
/// partition qubits at W = 2 (realpart high) and W = 4 (both high).
qsim::Circuit gadget_stream(Xoshiro256& rng, std::uint32_t n, std::size_t d) {
  qsim::Circuit c(n);
  const std::uint32_t signal = n - 2;
  const std::uint32_t realpart = n - 1;

  linalg::Matrix<c64> be(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) be(i, j) = c64(rng.normal(), rng.normal());
  }
  for (std::size_t col = 0; col < 8; ++col) {  // Gram-Schmidt -> unitary stand-in
    for (std::size_t p = 0; p < col; ++p) {
      c64 overlap{};
      for (std::size_t r = 0; r < 8; ++r) overlap += std::conj(be(r, p)) * be(r, col);
      for (std::size_t r = 0; r < 8; ++r) be(r, col) -= overlap * be(r, p);
    }
    double nrm = 0.0;
    for (std::size_t r = 0; r < 8; ++r) nrm += std::norm(be(r, col));
    nrm = std::sqrt(nrm);
    for (std::size_t r = 0; r < 8; ++r) be(r, col) /= nrm;
  }

  c.h(realpart);
  for (std::size_t k = 0; k < d; ++k) {
    c.unitary({0, 1, 2}, be);
    const double phi = 0.3 + 0.1 * static_cast<double>(k);
    qsim::Gate cpix;
    cpix.kind = qsim::GateKind::kX;
    cpix.targets = {signal};
    cpix.neg_controls = {2};
    c.push(cpix);
    c.rz(signal, 2.0 * phi);
    c.crz(realpart, signal, -4.0 * phi);
    c.push(cpix);
  }
  c.h(realpart);
  c.global_phase(-M_PI / 2.0);
  return c;
}

std::vector<std::complex<double>> random_state(Xoshiro256& rng, std::uint32_t n) {
  std::vector<std::complex<double>> amps(std::size_t{1} << n);
  double nrm = 0.0;
  for (auto& a : amps) {
    a = {rng.normal(), rng.normal()};
    nrm += std::norm(a);
  }
  nrm = std::sqrt(nrm);
  for (auto& a : amps) a /= nrm;
  return amps;
}

struct DistRun {
  double seconds = 0.0;         ///< best-of-reps wall clock for one replay
  std::uint64_t rounds = 0;     ///< exchange rounds one rank executed
  std::uint64_t bytes = 0;      ///< bytes one rank shipped
  double exchange_seconds = 0;  ///< rank-0 time inside exchanges (best rep)
  double max_diff = 0.0;        ///< vs the panel reference state
};

/// Replay `plan` on W shard threads `reps` times from the same initial
/// state; keep the fastest replay and compare the final state to `want`.
DistRun run_dist(const dist::ExchangePlan& plan, std::uint32_t world_log2,
                 const std::vector<std::complex<double>>& init,
                 const std::vector<std::complex<double>>& want, int reps) {
  const std::uint32_t world = 1u << world_log2;
  const auto n = static_cast<std::uint32_t>(plan.local_qubits + world_log2);
  DistRun out;
  out.seconds = 1e300;
  out.exchange_seconds = 1e300;

  std::vector<dist::RankProgram<double>> programs;
  for (std::uint32_t r = 0; r < world; ++r) {
    programs.push_back(dist::specialize_rank<double>(plan, r));
  }

  std::vector<dist::DistState<double>> shards;
  for (std::uint32_t r = 0; r < world; ++r) shards.emplace_back(n, world_log2, r);

  for (int rep = 0; rep < reps; ++rep) {
    for (auto& st : shards) {
      const std::uint64_t base = st.base_index();
      for (std::size_t i = 0; i < st.dim(); ++i) {
        st.re()[i] = init[base + i].real();
        st.im()[i] = init[base + i].imag();
      }
    }
    dist::LocalPeerGroup group(world);
    std::vector<dist::DistRunMetrics> metrics(world);
    std::vector<std::exception_ptr> errors(world);
    std::vector<std::thread> threads;
    Timer t;
    for (std::uint32_t r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        try {
          auto channel = group.channel(r);
          std::uint64_t seq = 0;
          dist::run_rank_program<double>(programs[r], shards[r], *channel, seq, &metrics[r]);
        } catch (...) {
          errors[r] = std::current_exception();
        }
      });
    }
    for (auto& th : threads) th.join();
    const double secs = t.seconds();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    if (secs < out.seconds) {
      out.seconds = secs;
      out.exchange_seconds = metrics[0].exchange_seconds;
    }
    out.rounds = metrics[0].exchange_rounds;
    out.bytes = metrics[0].bytes_moved;
  }

  for (std::uint64_t g = 0; g < (std::uint64_t{1} << n); ++g) {
    const auto got = shards[g >> plan.local_qubits].amp_global(g);
    out.max_diff = std::fmax(out.max_diff, std::abs(got - want[g]));
  }
  return out;
}

int run(bool smoke) {
  const std::uint32_t n = smoke ? 6 : 16;
  const std::size_t d = smoke ? 2 : 10;
  const int reps = smoke ? 1 : 5;

  Xoshiro256 rng(31);
  const auto circuit = gadget_stream(rng, n, d);
  const auto ir = lower_and_fuse(circuit, {.fuse = false});
  const auto init = random_state(rng, n);

  // One-lane panel replay: the single-node reference both for the final
  // state and for the wall clock the shard threads are scaling against.
  std::vector<std::complex<double>> want(init.size());
  double panel_seconds = 1e300;
  {
    const auto program = specialize<double>(ir);
    for (int rep = 0; rep < reps; ++rep) {
      StatePanel<double> panel(n, 1);
      for (std::size_t i = 0; i < init.size(); ++i) panel.set_amp(i, 0, init[i]);
      Timer t;
      PanelExecutor<double>().run(program, panel);
      panel_seconds = std::fmin(panel_seconds, t.seconds());
      for (std::size_t i = 0; i < want.size(); ++i) want[i] = panel.amp(i, 0);
    }
  }

  std::printf("distributed statevector scaling: %u qubits (2^%u amps), %zu-gadget "
              "unfused QSVT stream, %zu fused ops\n\n",
              n, n, d, ir.ops.size());

  TextTable table({"configuration", "wall (ms)", "exch (ms)", "rounds", "MiB moved/rank",
                   "vs panel", "max |diff|"});
  table.add_row({"panel 1-lane", fmt_fix(panel_seconds * 1e3, 2), "-", "0", "0", "1.00x",
                 "0"});

  bench::BenchReport report("dist_scaling");
  report.label("mode", smoke ? "smoke" : "full");
  report.metric("qubits", static_cast<double>(n));
  report.metric("gadgets", static_cast<double>(d));
  report.metric("panel_ms", panel_seconds * 1e3);

  bool exact = true;
  bool schedule_wins = true;
  for (const std::uint32_t wl : {1u, 2u}) {
    const std::uint32_t world = 1u << wl;
    const auto naive_plan = dist::build_exchange_plan(ir, wl, {.schedule = false});
    const auto sched_plan = dist::build_exchange_plan(ir, wl);

    const auto naive = run_dist(naive_plan, wl, init, want, reps);
    const auto sched = run_dist(sched_plan, wl, init, want, reps);
    exact = exact && naive.max_diff < 1e-10 && sched.max_diff < 1e-10;
    // W=4 puts both gadget qubits on the partition side: the strict win
    // (X-conjugation cancels every CPiX round). At W=2 the gadget is
    // already local by classification, so the bar is "never worse".
    schedule_wins = schedule_wins &&
                    (world == 4 ? sched.rounds < naive.rounds : sched.rounds <= naive.rounds);

    const auto add = [&](const char* kind, const DistRun& r) {
      table.add_row({"W=" + std::to_string(world) + " " + kind, fmt_fix(r.seconds * 1e3, 2),
                     fmt_fix(r.exchange_seconds * 1e3, 2), std::to_string(r.rounds),
                     fmt_fix(static_cast<double>(r.bytes) / (1024.0 * 1024.0), 2),
                     fmt_fix(panel_seconds / r.seconds, 2) + "x", fmt_sci(r.max_diff)});
    };
    add("naive", naive);
    add("scheduled", sched);

    const std::string w = std::to_string(world);
    report.metric("naive_rounds_w" + w, static_cast<double>(naive.rounds));
    report.metric("scheduled_rounds_w" + w, static_cast<double>(sched.rounds));
    report.metric("plan_naive_rounds_w" + w,
                  static_cast<double>(sched_plan.stats.naive_rounds));
    report.metric("naive_ms_w" + w, naive.seconds * 1e3);
    report.metric("scheduled_ms_w" + w, sched.seconds * 1e3);
    report.metric("scheduled_bytes_per_rank_w" + w, static_cast<double>(sched.bytes));
    report.metric("eliminated_exchanges_w" + w,
                  static_cast<double>(sched_plan.stats.eliminated_exchanges));
  }
  table.print(std::cout);
  std::printf("\n");

  if (smoke) {
    std::printf("smoke mode: shards exercised, acceptance not evaluated (diff %s)\n",
                exact ? "ok" : "ABOVE TOLERANCE");
    report.write();
    return exact ? 0 : 1;
  }

  const bool pass = exact && schedule_wins;
  std::printf("acceptance: scheduled plan executes strictly fewer exchange rounds than "
              "naive at W=4 (and never more at W=2), all replays within 1e-10 of the "
              "panel -> %s\n",
              pass ? "PASS" : "FAIL");
  if (!schedule_wins) std::printf("FAIL: scheduling did not reduce exchange rounds\n");
  if (!exact) std::printf("FAIL: replay disagreement above tolerance\n");
  report.pass(pass);
  report.write();
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  return run(smoke);
}
