// Figure 5 of the paper: block-encoding-call complexity of the linear
// solve at kappa = 2, comparing plain QSVT (extrapolated from the Table I
// formulas — running it would require intractably deep polynomials, same
// reason as the paper) against QSVT + mixed-precision iterative refinement
// (measured, gate-level, eps_l ~ 1/kappa). Reported with and without the
// O(1/eps^2) sampling repetitions.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/random_matrix.hpp"
#include "poly/inverse_poly.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  const double kappa = 2.0;
  const double eps_l = 0.45;  // ~ 1/kappa, the paper's choice
  Xoshiro256 rng(55);
  const auto A = linalg::random_with_cond(rng, 16, kappa);
  const auto b = linalg::random_unit_vector(rng, 16);

  std::printf("=== Fig. 5: complexity in calls to the block-encoding, kappa = 2 ===\n");
  std::printf("IR measured at eps_l = %.2f (gate level); plain QSVT extrapolated from\n"
              "the polynomial degree the target accuracy would require.\n\n",
              eps_l);

  // Reuse one solver context across the eps sweep (BE + phases compiled once).
  qsvt::QsvtOptions qopt;
  qopt.eps_l = eps_l;
  qopt.backend = qsvt::Backend::kGateLevel;
  const auto ctx = qsvt::prepare_qsvt_solver(A, qopt);

  TextTable table({"eps", "QSVT-only BE calls", "IR BE calls (measured)",
                   "QSVT-only x samples", "IR x samples", "advantage (x samples)"});
  for (int p = 2; p <= 12; ++p) {
    const double eps = std::pow(10.0, -p);
    // Plain QSVT: one solve at polynomial accuracy eps -> degree d(eps).
    const auto poly_full = poly::inverse_poly_interpolated(kappa * 1.05, eps);
    const double qsvt_only = poly_full.series.degree();
    const double qsvt_only_sampled = qsvt_only / (eps * eps);

    solver::QsvtIrOptions opt;
    opt.eps = eps;
    opt.qsvt = qopt;
    opt.max_iterations = 200;
    const auto rep = solver::solve_qsvt_ir(ctx, b, opt);
    const double ir_calls = static_cast<double>(rep.total_be_calls);
    const double ir_sampled = ir_calls / (eps_l * eps_l);

    table.add_row({fmt_sci(eps, 0), fmt_fix(qsvt_only, 0), fmt_fix(ir_calls, 0),
                   fmt_sci(qsvt_only_sampled, 2), fmt_sci(ir_sampled, 2),
                   fmt_sci(qsvt_only_sampled / ir_sampled, 1)});
  }
  table.print(std::cout);

  std::printf("\nPaper shape check: the curves meet near eps = eps_l and diverge as eps\n"
              "shrinks — the 1/eps^2 sampling term makes full-accuracy QSVT blow up\n"
              "while IR keeps paying only 1/eps_l^2 per (cheap) solve. Larger kappa\n"
              "widens the gap (Table I).\n");
  return 0;
}
