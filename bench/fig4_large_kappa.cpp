// Figure 4 of the paper: scaled residual until convergence for larger
// condition numbers kappa = 100, 200, 300 (N = 16 random matrices). The
// paper computes QSVT angles with the estimation pipeline of Novikau &
// Joseph [32] (which auto-selects eps_l); we run the matrix-function QSVT
// backend with the same inversion polynomial instead — the convergence
// behaviour depends only on the polynomial's accuracy, not on how the
// phases were produced (DESIGN.md substitution #2).
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  const double eps = 1e-11;
  std::printf("=== Fig. 4: scaled residual until convergence, large kappa ===\n");
  std::printf("N = 16 random matrices, eps = %.0e, matrix-function QSVT backend\n", eps);
  std::printf("(eps_l fixed at 5e-2 across kappa, standing in for the auto-selected\n"
              " accuracy of the [32] angle pipeline)\n\n");

  std::vector<double> kappas = {100.0, 200.0, 300.0};
  std::vector<solver::QsvtIrReport> runs;
  for (double kappa : kappas) {
    Xoshiro256 rng(400 + static_cast<std::uint64_t>(kappa));
    const auto A = linalg::random_with_cond(rng, 16, kappa);
    const auto b = linalg::random_unit_vector(rng, 16);
    solver::QsvtIrOptions opt;
    opt.eps = eps;
    opt.qsvt.eps_l = 5e-2;
    opt.qsvt.backend = qsvt::Backend::kMatrixFunction;
    opt.max_iterations = 80;
    runs.push_back(solver::solve_qsvt_ir(A, b, opt));
  }

  TextTable table({"solve", "kappa=100", "kappa=200", "kappa=300"});
  std::size_t rows = 0;
  for (const auto& r : runs) rows = std::max(rows, r.scaled_residuals.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{i == 0 ? "first" : ("iter " + std::to_string(i))};
    for (const auto& r : runs) {
      row.push_back(i < r.scaled_residuals.size() ? fmt_sci(r.scaled_residuals[i])
                                                  : std::string("-"));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  TextTable summary({"kappa", "poly degree", "measured contraction", "iterations",
                     "Thm III.1 bound", "converged"});
  for (std::size_t k = 0; k < runs.size(); ++k) {
    summary.add_row({fmt_fix(kappas[k], 0), std::to_string(runs[k].poly_degree),
                     fmt_sci(runs[k].eps_l_effective, 2), std::to_string(runs[k].iterations),
                     std::to_string(runs[k].theoretical_iteration_bound),
                     runs[k].converged ? "yes" : "no"});
  }
  std::printf("\n");
  summary.print(std::cout);
  std::printf("\nPaper shape check: convergence to eps for every kappa with iteration\n"
              "counts below the Theorem III.1 bound (the paper reports the same for\n"
              "its [32]-based runs).\n");
  return 0;
}
