// Ablation: HHL baseline vs the QSVT solver on the same systems. HHL's
// accuracy is set by the clock-register resolution (exponential qubit cost
// per digit), while QSVT+IR buys digits with cheap classical iterations —
// the motivation for the paper's choice of QSVT as the quantum kernel.
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "hhl/hhl.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  // Symmetric positive-definite 4x4 test system.
  Xoshiro256 rng(91);
  auto G = linalg::random_gaussian(rng, 4, 4);
  auto A = linalg::gemm(G, linalg::transpose(G));
  for (std::size_t i = 0; i < 4; ++i) A(i, i) += 2.0;
  const auto b = linalg::random_unit_vector(rng, 4);
  const auto x_true = linalg::lu_solve(A, b);
  const double x_norm = linalg::nrm2(x_true);

  auto rel_err = [&](const linalg::Vector<double>& x) {
    double e = 0.0;
    for (std::size_t i = 0; i < 4; ++i) e += (x[i] - x_true[i]) * (x[i] - x_true[i]);
    return std::sqrt(e) / x_norm;
  };

  std::printf("=== Ablation: HHL baseline vs QSVT (+IR) ===\n\n");
  TextTable table({"method", "qubits", "rel. error", "success prob", "notes"});
  for (std::uint32_t m : {4u, 6u, 8u, 10u}) {
    hhl::HhlOptions opts;
    opts.clock_qubits = m;
    const auto res = hhl::hhl_solve(A, b, opts);
    table.add_row({"HHL, m=" + std::to_string(m) + " clock", std::to_string(res.total_qubits),
                   fmt_sci(rel_err(res.x), 2), fmt_sci(res.success_probability, 2),
                   "accuracy ~ 2^-m"});
  }
  {
    solver::QsvtIrOptions opt;
    opt.eps = 1e-4;
    opt.qsvt.eps_l = 1e-2;
    opt.qsvt.backend = qsvt::Backend::kGateLevel;
    const auto rep = solver::solve_qsvt_ir(A, b, opt);
    table.add_row({"QSVT single solve", "5", fmt_sci(rep.scaled_residuals.front(), 2),
                   fmt_sci(rep.solves.front().success_probability, 2),
                   "degree " + std::to_string(rep.poly_degree)});
    table.add_row({"QSVT + IR (eps 1e-4)", "5", fmt_sci(rep.scaled_residuals.back(), 2), "-",
                   std::to_string(rep.iterations) + " refinement iterations"});
  }
  {
    solver::QsvtIrOptions opt;
    opt.eps = 1e-11;
    opt.qsvt.eps_l = 1e-2;
    opt.qsvt.backend = qsvt::Backend::kGateLevel;
    const auto rep = solver::solve_qsvt_ir(A, b, opt);
    table.add_row({"QSVT + IR (eps 1e-11)", "5", fmt_sci(rep.scaled_residuals.back(), 2), "-",
                   std::to_string(rep.iterations) + " refinement iterations"});
  }
  table.print(std::cout);
  std::printf("\nEach extra digit costs HHL ~3.3 clock qubits (and deeper QPE), while the\n"
              "hybrid solver adds cheap classical iterations at fixed quantum width —\n"
              "the paper's argument for QSVT + mixed-precision refinement.\n");
  return 0;
}
