// Throughput of the batched solver service versus cold per-request
// synthesis — the acceptance benchmark for the service subsystem: 16
// right-hand sides against one 64x64 matrix must run >= 5x faster through
// the cached context than 16 cold solve_qsvt_ir calls (each of which
// re-runs the SVD, block-encoding, polynomial and phase synthesis the
// paper amortizes).
//
//   build/bench/perf_service_batch
//
// Emits BENCH_service_batch.json (see bench_io.hpp) next to the table.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_io.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/random_matrix.hpp"
#include "service/solver_service.hpp"

namespace {

using namespace mpqls;

struct Scenario {
  const char* name;
  qsvt::Backend backend;
  double eps_l;
  double eps;
};

struct Measurement {
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;   ///< one batch through the service (first = miss)
  double hot_seconds = 0.0;    ///< second batch: pure cache hit
  bool converged = true;
};

Measurement run_scenario(const Scenario& sc, const linalg::Matrix<double>& A,
                         const std::vector<linalg::Vector<double>>& rhs) {
  solver::QsvtIrOptions options;
  options.eps = sc.eps;
  options.qsvt.backend = sc.backend;
  options.qsvt.eps_l = sc.eps_l;

  Measurement m;

  // Cold path: every request pays full circuit synthesis.
  {
    Timer t;
    for (const auto& b : rhs) {
      const auto ctx = qsvt::prepare_qsvt_solver(A, options.qsvt);
      const auto rep = solver::solve_qsvt_ir(ctx, b, options);
      m.converged = m.converged && rep.converged;
    }
    m.cold_seconds = t.seconds();
  }

  // Service path: one prepared context, 16 right-hand sides.
  {
    service::SolverService svc({.cache_capacity = 4, .solve_threads = 0, .job_threads = 1});
    service::SolveRequest req;
    req.id = sc.name;
    req.A = A;
    req.rhs = rhs;
    req.options = options;

    Timer warm;
    const auto first = svc.solve(req);
    m.warm_seconds = warm.seconds();
    m.converged = m.converged && first.all_converged;

    Timer hot;
    const auto second = svc.solve(req);
    m.hot_seconds = hot.seconds();
    m.converged = m.converged && second.all_converged && second.cache_hit;
  }
  return m;
}

}  // namespace

int main() {
  const std::size_t n = 64;
  const std::size_t n_rhs = 16;
  Xoshiro256 rng(7);
  const auto A = linalg::random_with_cond(rng, n, 10.0);
  std::vector<linalg::Vector<double>> rhs;
  for (std::size_t k = 0; k < n_rhs; ++k) rhs.push_back(linalg::random_unit_vector(rng, n));

  const Scenario scenarios[] = {
      {"matrix-function", qsvt::Backend::kMatrixFunction, 1e-2, 1e-10},
      {"gate-level", qsvt::Backend::kGateLevel, 1e-2, 1e-10},
  };

  std::printf("batched service vs cold synthesis: %zux%zu, kappa 10, %zu rhs\n\n", n, n, n_rhs);
  TextTable table({"backend", "cold 16x (ms)", "service (ms)", "cached (ms)", "speedup",
                   "cached speedup"});
  bench::BenchReport report("service_batch");
  report.metric("n", static_cast<double>(n));
  report.metric("n_rhs", static_cast<double>(n_rhs));
  bool ok = true;
  double acceptance_ratio = 0.0;
  for (const auto& sc : scenarios) {
    const auto m = run_scenario(sc, A, rhs);
    const double speedup = m.cold_seconds / m.warm_seconds;
    const double hot_speedup = m.cold_seconds / m.hot_seconds;
    table.add_row({sc.name, fmt_fix(m.cold_seconds * 1e3, 1), fmt_fix(m.warm_seconds * 1e3, 1),
                   fmt_fix(m.hot_seconds * 1e3, 1), fmt_fix(speedup, 2) + "x",
                   fmt_fix(hot_speedup, 2) + "x"});
    const std::string prefix(sc.name);
    report.metric(prefix + "_cold_ms", m.cold_seconds * 1e3);
    report.metric(prefix + "_service_ms", m.warm_seconds * 1e3);
    report.metric(prefix + "_cached_ms", m.hot_seconds * 1e3);
    report.metric(prefix + "_speedup", speedup);
    ok = ok && m.converged;
    // The acceptance criterion is judged on the paper's matrix-function
    // configuration, where per-solve cost is small against synthesis; the
    // gate-level row shows the same amortization with simulator-dominated
    // solves.
    if (sc.backend == qsvt::Backend::kMatrixFunction) acceptance_ratio = speedup;
  }
  table.print(std::cout);

  std::printf("\nacceptance: service batch >= 5x over cold calls: %.2fx -> %s\n",
              acceptance_ratio, acceptance_ratio >= 5.0 ? "PASS" : "FAIL");
  if (!ok) std::printf("WARNING: some solves did not converge\n");
  const bool pass = ok && acceptance_ratio >= 5.0;
  report.metric("acceptance_speedup", acceptance_ratio);
  report.pass(pass);
  report.write();
  return pass ? 0 : 1;
}
