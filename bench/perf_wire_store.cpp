// Submit-path throughput of the binary wire protocol + content-addressed
// matrix store versus inline-JSON bodies — the acceptance benchmark for
// the transport subsystem: with the matrix warm in the store, binary
// by-ref submits (a few hundred bytes on the wire, no JSON parse, no
// matrix copy) must sustain >= 5x the jobs/sec of inline dense-JSON
// submits at n >= 1024.
//
// This measures ADMISSION, not solves. The daemon's single job worker is
// parked on a latch (run_on_job_pool), so every accepted job stays
// kQueued and is cancelled after each burst; admission control is
// disabled (max_pending_jobs = 0) so no burst hits 429. What remains is
// exactly what the wire/store subsystem changes — body transport,
// parse/decode, and matrix materialization — while solver time (identical
// on both paths) never runs.
//
//   build/bench/perf_wire_store            # full run + acceptance check
//   build/bench/perf_wire_store --smoke    # tiny dims, no acceptance
//
// Emits BENCH_wire.json (see bench_io.hpp) next to the stdout table.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_io.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/random_matrix.hpp"
#include "net/daemon.hpp"
#include "net/http_client.hpp"
#include "service/json_io.hpp"
#include "service/limits.hpp"
#include "wire/codec.hpp"

namespace {

using namespace mpqls;

struct Series {
  double jobs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t body_bytes = 0;
  bool ok = true;
};

double percentile(std::vector<double> sorted_seconds, double q) {
  std::sort(sorted_seconds.begin(), sorted_seconds.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted_seconds.size() - 1));
  return sorted_seconds[idx] * 1e3;
}

/// One burst of `count` identical submits; every accepted job is
/// cancelled afterwards so the next burst starts from an empty queue.
Series run_burst(net::HttpClient& client, const std::string& body, const char* content_type,
                 std::size_t count) {
  Series s;
  s.body_bytes = body.size();
  std::vector<double> latencies;
  latencies.reserve(count);
  std::vector<std::string> ids;
  ids.reserve(count);

  Timer total;
  for (std::size_t k = 0; k < count; ++k) {
    Timer t;
    const auto response = client.post("/v1/jobs", body, content_type);
    latencies.push_back(t.seconds());
    if (response.status != 202) {
      std::fprintf(stderr, "submit refused (%d): %s\n", response.status, response.body.c_str());
      s.ok = false;
      break;
    }
    ids.push_back(Json::parse(response.body).at("job_id").as_string());
  }
  const double wall = total.seconds();

  for (const auto& id : ids) client.del("/v1/jobs/" + id);

  if (!latencies.empty() && wall > 0.0) {
    s.jobs_per_sec = static_cast<double>(latencies.size()) / wall;
    s.p50_ms = percentile(latencies, 0.50);
    s.p99_ms = percentile(latencies, 0.99);
  }
  return s;
}

int run(bool smoke) {
  const std::size_t n = smoke ? 96 : 1024;
  const std::size_t json_jobs = smoke ? 4 : 24;
  const std::size_t binary_jobs = smoke ? 16 : 200;

  net::DaemonOptions options;
  options.port = 0;  // ephemeral
  // A 1024x1024 dense matrix is ~25 MB as JSON text; lift the body cap
  // well past it so the inline path is bounded by parsing, not refused.
  options.limits.max_body_bytes = 256u << 20;
  options.service.solve_threads = 1;
  options.service.job_threads = 1;
  options.service.max_pending_jobs = 0;  // unbounded: bursts never see 429
  options.service.cache_capacity = 2;
  net::SolverDaemon daemon(options);
  daemon.start();

  // Park the single job worker: admitted jobs stay kQueued (cancellable),
  // so bursts measure the admission path only.
  std::promise<void> release;
  std::shared_future<void> released(release.get_future().share());
  auto parked = daemon.service().run_on_job_pool([released] { released.wait(); });

  Xoshiro256 rng(7);
  service::SolveRequest req;
  req.id = "wire-bench";
  req.A = linalg::random_with_cond(rng, n, 10.0);
  req.rhs.push_back(linalg::random_unit_vector(rng, n));

  const std::string json_body = service::to_json(req).dump();

  net::HttpClient client("127.0.0.1", daemon.port());

  // Warm the store once; from then on by-ref submits carry 8 bytes of
  // matrix identity instead of n^2 doubles.
  const auto uploaded =
      client.put("/v1/matrices", wire::encode_matrix(req.A), wire::kContentType);
  if (uploaded.status != 201 && uploaded.status != 200) {
    std::fprintf(stderr, "matrix upload failed (%d): %s\n", uploaded.status,
                 uploaded.body.c_str());
    release.set_value();
    return 1;
  }
  req.matrix_ref = service::u64_from_hex(Json::parse(uploaded.body).at("matrix_ref").as_string());
  const std::string frame_body = wire::encode_request(req);

  std::printf("wire+store submit path: n=%zu, inline JSON %zu jobs vs binary by-ref %zu jobs\n\n",
              n, json_jobs, binary_jobs);

  const Series json_series = run_burst(client, json_body, "application/json", json_jobs);
  const Series frame_series = run_burst(client, frame_body, wire::kContentType, binary_jobs);

  release.set_value();  // unpark; the queue is already drained by cancels
  parked.get();

  TextTable table({"path", "body (bytes)", "jobs/s", "p50 (ms)", "p99 (ms)"});
  table.add_row({"inline JSON", std::to_string(json_series.body_bytes),
                 fmt_fix(json_series.jobs_per_sec, 1), fmt_fix(json_series.p50_ms, 2),
                 fmt_fix(json_series.p99_ms, 2)});
  table.add_row({"binary + matrix_ref", std::to_string(frame_series.body_bytes),
                 fmt_fix(frame_series.jobs_per_sec, 1), fmt_fix(frame_series.p50_ms, 2),
                 fmt_fix(frame_series.p99_ms, 2)});
  table.print(std::cout);

  const bool ok = json_series.ok && frame_series.ok;
  const double speedup =
      json_series.jobs_per_sec > 0.0 ? frame_series.jobs_per_sec / json_series.jobs_per_sec : 0.0;

  bench::BenchReport report("wire");
  report.label("mode", smoke ? "smoke" : "full");
  report.metric("n", static_cast<double>(n));
  report.metric("json_jobs_per_sec", json_series.jobs_per_sec);
  report.metric("json_p50_ms", json_series.p50_ms);
  report.metric("json_p99_ms", json_series.p99_ms);
  report.metric("json_body_bytes", static_cast<double>(json_series.body_bytes));
  report.metric("binary_jobs_per_sec", frame_series.jobs_per_sec);
  report.metric("binary_p50_ms", frame_series.p50_ms);
  report.metric("binary_p99_ms", frame_series.p99_ms);
  report.metric("binary_body_bytes", static_cast<double>(frame_series.body_bytes));
  report.metric("speedup", speedup);

  if (smoke) {
    std::printf("\nsmoke mode: both submit paths exercised, acceptance not evaluated "
                "(speedup %.2fx)\n", speedup);
    report.write();
    return ok ? 0 : 1;
  }

  const bool pass = ok && speedup >= 5.0;
  std::printf("\nacceptance: binary+ref submit throughput >= 5x inline JSON at n>=1024: "
              "%.2fx -> %s\n", speedup, pass ? "PASS" : "FAIL");
  report.pass(pass);
  report.write();
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  return run(smoke);
}
