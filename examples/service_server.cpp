// The batched solver service end to end: read a JSON job file of mixed
// scenarios (Poisson 1D/2D, tridiagonal with the banded encoding, random
// systems across eps/eps_l/precision/backends, shot-based readout), queue
// every job on the service, and print per-job telemetry — cache behaviour,
// prepare vs solve wall clock, residuals and comm volumes.
//
//   build/examples/service_server [jobs.json] [--trace out.json]
//   build/examples/service_server --emit-jobs examples/jobs/mixed.json
//
// Without a job file the embedded default workload runs; --emit-jobs
// writes that workload out (it is the source examples/jobs/mixed.json is
// generated from, so the two cannot drift). Jobs that share a matrix and
// QSVT configuration hit the context cache: circuit synthesis happens
// once.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "service/json_io.hpp"
#include "service/solver_service.hpp"

namespace {

constexpr const char* kDefaultJobs = R"JSON({
  "jobs": [
    {
      "id": "poisson1d-16-gate",
      "matrix": {"scenario": "poisson1d", "n": 16},
      "rhs": {"kind": "random", "count": 2, "seed": 11},
      "options": {"eps": 1e-9, "qsvt": {"backend": "gate", "eps_l": 2e-2}}
    },
    {
      "id": "poisson1d-16-gate-again",
      "matrix": {"scenario": "poisson1d", "n": 16},
      "rhs": {"kind": "point", "index": 7},
      "options": {"eps": 1e-9, "qsvt": {"backend": "gate", "eps_l": 2e-2}}
    },
    {
      "id": "poisson2d-8x8-matrix",
      "matrix": {"scenario": "poisson2d", "nx": 8, "ny": 8},
      "rhs": {"kind": "point", "index": 28},
      "options": {"eps": 1e-10, "qsvt": {"backend": "matrix", "eps_l": 2e-2}}
    },
    {
      "id": "tridiag-8-banded-encoding",
      "matrix": {"scenario": "tridiagonal", "n": 8},
      "rhs": {"kind": "random", "count": 2, "seed": 12},
      "options": {"eps": 1e-8, "qsvt": {"backend": "gate", "encoding": "tridiagonal", "eps_l": 5e-2}}
    },
    {
      "id": "random-16-k10-single-precision",
      "matrix": {"scenario": "random", "n": 16, "kappa": 10.0, "seed": 3},
      "rhs": {"kind": "random", "count": 3, "seed": 13},
      "options": {"eps": 1e-6, "qsvt": {"backend": "gate", "precision": "single", "eps_l": 1e-2}}
    },
    {
      "id": "random-16-k10-double-precision",
      "matrix": {"scenario": "random", "n": 16, "kappa": 10.0, "seed": 3},
      "rhs": {"kind": "random", "count": 3, "seed": 14},
      "options": {"eps": 1e-11, "qsvt": {"backend": "gate", "precision": "double", "eps_l": 1e-2}}
    },
    {
      "id": "random-16-k100-matrix",
      "matrix": {"scenario": "random", "n": 16, "kappa": 100.0, "seed": 4},
      "rhs": {"kind": "random", "count": 2, "seed": 15},
      "options": {"eps": 1e-10, "qsvt": {"backend": "matrix", "eps_l": 1e-3}}
    },
    {
      "id": "random-16-k10-shot-readout",
      "matrix": {"scenario": "random", "n": 16, "kappa": 10.0, "seed": 5},
      "rhs": {"kind": "random", "count": 1, "seed": 16},
      "options": {"eps": 1e-2, "max_iterations": 25,
                  "qsvt": {"backend": "matrix", "eps_l": 1e-2, "shots": 1000000, "seed": 99}}
    }
  ]
})JSON";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open job file: %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace mpqls;

  std::string jobs_text = kDefaultJobs;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--emit-jobs" && i + 1 < argc) {
      const char* path = argv[++i];
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write job file: %s\n", path);
        return 2;
      }
      // Normalized through the parser so the emitted file is valid JSON.
      out << Json::parse(kDefaultJobs).dump(2) << "\n";
      std::printf("default jobs written to %s\n", path);
      return 0;
    } else {
      jobs_text = read_file(arg);
    }
  }

  const auto jobs = service::jobs_from_json(Json::parse(jobs_text));
  std::printf("service_server: %zu jobs\n\n", jobs.size());

  service::SolverService svc({.cache_capacity = 8, .solve_threads = 0, .job_threads = 2});

  Timer wall;
  std::vector<std::future<service::SolveResult>> pending;
  pending.reserve(jobs.size());
  for (const auto& job : jobs) pending.push_back(svc.submit(job));

  Json trace = Json::array();
  TextTable table({"job", "n", "rhs", "cache", "prep (ms)", "program", "compile (ms)",
                   "solve (ms)", "residual", "ok"});
  bool all_ok = true;
  for (std::size_t j = 0; j < pending.size(); ++j) {
    const auto result = pending[j].get();
    double solve_ms = 0.0, worst_residual = 0.0;
    for (const auto& s : result.solves) {
      solve_ms += s.solve_seconds * 1e3;
      worst_residual = std::max(worst_residual, s.report.scaled_residuals.back());
    }
    // Compiled-program telemetry is per context, so any solve reports it.
    const auto& rep0 = result.solves.front().report;
    const std::string program =
        rep0.program_ops == 0 ? "-"
                              : std::to_string(rep0.program_source_gates) + "->" +
                                    std::to_string(rep0.program_ops) + " ops";
    table.add_row({result.id, std::to_string(jobs[j].A.rows()),
                   std::to_string(result.solves.size()), result.cache_hit ? "hit" : "miss",
                   fmt_fix(result.prepare_seconds * 1e3, 1), program,
                   rep0.program_ops == 0 ? "-" : fmt_fix(rep0.program_compile_seconds * 1e3, 1),
                   fmt_fix(solve_ms, 1), fmt_sci(worst_residual),
                   result.all_converged ? "yes" : "NO"});
    all_ok = all_ok && result.all_converged;
    trace.push_back(service::to_json(result));
  }
  table.print(std::cout);

  const auto cache = svc.cache_stats();
  const auto stats = svc.stats();
  std::printf("\n%llu jobs, %llu right-hand sides in %.1f ms wall\n",
              static_cast<unsigned long long>(stats.jobs),
              static_cast<unsigned long long>(stats.rhs_solved), wall.milliseconds());
  std::printf("context cache: %llu hits, %llu misses, %llu evictions, %zu resident\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions), cache.size);

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write trace file: %s\n", trace_path.c_str());
      return 2;
    }
    out << trace.dump(2) << "\n";
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  return all_ok ? 0 : 1;
} catch (const std::exception& e) {
  // Bad job files and failed preparations (e.g. singular matrices) land
  // here; report cleanly instead of std::terminate.
  std::fprintf(stderr, "service_server: %s\n", e.what());
  return 2;
}
