// Entrypoint for the solver service, in two modes.
//
// Daemon mode — the networked front-end (src/net/):
//
//   build/examples/service_server serve [--port 8080] [--bind 127.0.0.1]
//       [--solve-threads N] [--job-threads N] [--queue-depth N]
//       [--cache-capacity N] [--retained-jobs N] [--max-body-mb N]
//       [--panel-width N] [--store-mb N] [--retained-slow K]
//       [--backend NAME]
//
// --backend NAME sets the default execution backend jobs run on when
// they do not name one themselves ("reference" unless overridden; see
// GET /v1/healthz for the registered capability list). Cluster mode
// accepts the same flag for its in-process workers.
//
// --panel-width N sets how many right-hand sides share one compiled-
// program sweep (the multi-RHS panel executor; default 8, small powers
// of two vectorize best). 0 or 1 forces the scalar per-RHS path.
// --store-mb N sets the byte budget of the content-addressed matrix
// store behind PUT /v1/matrices (default 512; clamped up so one
// max-dimension matrix always fits).
//
// serves POST /v1/jobs (JSON or binary application/x-mpqls-frame),
// GET /v1/jobs/{id}[/result], PUT /v1/matrices, /v1/healthz and
// /v1/metrics until SIGINT/SIGTERM, then drains: admission closes (503),
// in-flight jobs finish while clients keep polling, and the server stops.
// `--port 0` picks an ephemeral port (printed on stdout).
//
// Cluster mode — a coordinator sharding jobs across worker daemons by
// matrix-fingerprint affinity (src/cluster/):
//
//   build/examples/service_server cluster --workers 3 [--port 8080]
//   build/examples/service_server cluster --worker-url 10.0.0.2:8080
//       --worker-url 10.0.0.3:8080 [--port 8080] [--random-routing]
//
// --workers N spins up N in-process worker daemons on ephemeral ports
// (the single-binary demo); --worker-url fronts externally started
// `service_server serve` daemons. The coordinator serves the same job
// API plus aggregated metrics, and drains on SIGINT/SIGTERM.
//
// Batch mode — run a JSON job file in-process and exit:
//
//   build/examples/service_server [jobs.json] [--trace out.json]
//   build/examples/service_server --emit-jobs examples/jobs/mixed.json
//
// Without a job file the embedded default workload runs; --emit-jobs
// writes that workload out (it is the source examples/jobs/mixed.json is
// generated from, so the two cannot drift). Jobs that share a matrix and
// QSVT configuration hit the context cache: circuit synthesis happens
// once.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/coordinator.hpp"
#include "cluster/test_cluster.hpp"
#include "common/io.hpp"
#include "qsim/exec/backend/backend.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "net/daemon.hpp"
#include "service/json_io.hpp"
#include "service/solver_service.hpp"

namespace {

constexpr const char* kDefaultJobs = R"JSON({
  "jobs": [
    {
      "id": "poisson1d-16-gate",
      "matrix": {"scenario": "poisson1d", "n": 16},
      "rhs": {"kind": "random", "count": 2, "seed": 11},
      "options": {"eps": 1e-9, "qsvt": {"backend": "gate", "eps_l": 2e-2}}
    },
    {
      "id": "poisson1d-16-gate-again",
      "matrix": {"scenario": "poisson1d", "n": 16},
      "rhs": {"kind": "point", "index": 7},
      "options": {"eps": 1e-9, "qsvt": {"backend": "gate", "eps_l": 2e-2}}
    },
    {
      "id": "poisson2d-8x8-matrix",
      "matrix": {"scenario": "poisson2d", "nx": 8, "ny": 8},
      "rhs": {"kind": "point", "index": 28},
      "options": {"eps": 1e-10, "qsvt": {"backend": "matrix", "eps_l": 2e-2}}
    },
    {
      "id": "tridiag-8-banded-encoding",
      "matrix": {"scenario": "tridiagonal", "n": 8},
      "rhs": {"kind": "random", "count": 2, "seed": 12},
      "options": {"eps": 1e-8, "qsvt": {"backend": "gate", "encoding": "tridiagonal", "eps_l": 5e-2}}
    },
    {
      "id": "random-16-k10-single-precision",
      "matrix": {"scenario": "random", "n": 16, "kappa": 10.0, "seed": 3},
      "rhs": {"kind": "random", "count": 3, "seed": 13},
      "options": {"eps": 1e-6, "qsvt": {"backend": "gate", "precision": "single", "eps_l": 1e-2}}
    },
    {
      "id": "random-16-k10-double-precision",
      "matrix": {"scenario": "random", "n": 16, "kappa": 10.0, "seed": 3},
      "rhs": {"kind": "random", "count": 3, "seed": 14},
      "options": {"eps": 1e-11, "qsvt": {"backend": "gate", "precision": "double", "eps_l": 1e-2}}
    },
    {
      "id": "random-16-k100-matrix",
      "matrix": {"scenario": "random", "n": 16, "kappa": 100.0, "seed": 4},
      "rhs": {"kind": "random", "count": 2, "seed": 15},
      "options": {"eps": 1e-10, "qsvt": {"backend": "matrix", "eps_l": 1e-3}}
    },
    {
      "id": "random-16-k10-shot-readout",
      "matrix": {"scenario": "random", "n": 16, "kappa": 10.0, "seed": 5},
      "rhs": {"kind": "random", "count": 1, "seed": 16},
      "options": {"eps": 1e-2, "max_iterations": 25,
                  "qsvt": {"backend": "matrix", "eps_l": 1e-2, "shots": 1000000, "seed": 99}}
    }
  ]
})JSON";

/// `--flag value` parser for the serve subcommand; exits on bad usage —
/// a typo must not silently become 0 (for --queue-depth that would mean
/// "admission control off").
std::size_t flag_value(int argc, char** argv, int* i, const char* flag) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", flag);
    std::exit(2);
  }
  const char* text = argv[++*i];
  char* end = nullptr;
  errno = 0;
  // Digits only up front: strtoull would silently wrap "-64" to ~2^64.
  const unsigned long long v =
      (text[0] >= '0' && text[0] <= '9') ? std::strtoull(text, &end, 10) : 0;
  if (end == nullptr || end == text || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s: not a number: %s\n", flag, text);
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

/// Block SIGINT/SIGTERM so the caller can take them synchronously with
/// sigwait(&mask) — call before starting any daemon (spawned threads
/// inherit the mask). Returns false if the mask could not be installed.
bool block_shutdown_signals(sigset_t* mask) {
  sigemptyset(mask);
  sigaddset(mask, SIGINT);
  sigaddset(mask, SIGTERM);
  return pthread_sigmask(SIG_BLOCK, mask, nullptr) == 0;
}

int run_daemon(int argc, char** argv) {
  using namespace mpqls;

  net::DaemonOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") {
      const std::size_t port = flag_value(argc, argv, &i, "--port");
      if (port > 65535) {
        std::fprintf(stderr, "--port: out of range: %zu\n", port);
        return 2;
      }
      options.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--bind") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--bind needs an address\n");
        return 2;
      }
      options.bind_address = argv[++i];
    } else if (arg == "--solve-threads") {
      options.service.solve_threads = flag_value(argc, argv, &i, "--solve-threads");
    } else if (arg == "--job-threads") {
      options.service.job_threads = flag_value(argc, argv, &i, "--job-threads");
    } else if (arg == "--queue-depth") {
      options.service.max_pending_jobs = flag_value(argc, argv, &i, "--queue-depth");
    } else if (arg == "--cache-capacity") {
      options.service.cache_capacity = flag_value(argc, argv, &i, "--cache-capacity");
    } else if (arg == "--retained-jobs") {
      options.service.retained_jobs = flag_value(argc, argv, &i, "--retained-jobs");
    } else if (arg == "--retained-slow") {
      options.service.slow_jobs_retained = flag_value(argc, argv, &i, "--retained-slow");
    } else if (arg == "--panel-width") {
      options.service.panel_width = flag_value(argc, argv, &i, "--panel-width");
    } else if (arg == "--backend") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--backend needs a name\n");
        return 2;
      }
      options.service.default_backend = argv[++i];
      if (qsim::exec::find_backend(options.service.default_backend) == nullptr) {
        std::fprintf(stderr, "--backend: unknown execution backend: %s (registered:",
                     options.service.default_backend.c_str());
        for (const auto& name : qsim::exec::backend_registry().names()) {
          std::fprintf(stderr, " %s", name.c_str());
        }
        std::fprintf(stderr, ")\n");
        return 2;
      }
    } else if (arg == "--store-mb") {
      options.service.matrix_store_bytes = flag_value(argc, argv, &i, "--store-mb") << 20;
    } else if (arg == "--max-body-mb") {
      options.limits.max_body_bytes = flag_value(argc, argv, &i, "--max-body-mb") << 20;
    } else {
      std::fprintf(stderr, "unknown serve flag: %s\n", arg.c_str());
      return 2;
    }
  }

  // Block the shutdown signals before the daemon spawns threads (they
  // inherit the mask), then take them synchronously with sigwait: the
  // drain runs on the main thread with no async-signal-safety caveats.
  sigset_t mask;
  if (!block_shutdown_signals(&mask)) {
    std::fprintf(stderr, "pthread_sigmask failed\n");
    return 2;
  }

  net::SolverDaemon daemon(options);
  daemon.start();
  std::printf("solver daemon listening on %s:%u\n", options.bind_address.c_str(),
              static_cast<unsigned>(daemon.port()));
  std::printf(
      "  POST /v1/jobs | GET /v1/jobs/{id}[/result|/trace] | PUT /v1/matrices | "
      "GET /v1/debug/slow | GET /v1/healthz | GET /v1/metrics\n");
  std::fflush(stdout);

  int sig = 0;
  if (sigwait(&mask, &sig) != 0) {
    std::fprintf(stderr, "sigwait failed\n");
    return 2;
  }
  std::printf("received %s, draining (in-flight jobs finish, polls keep working)...\n",
              sig == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);

  const bool drained = daemon.drain();
  const auto queue = daemon.service().queue_stats();
  std::printf("drained %s: %llu done, %llu failed, %llu rejected\n",
              drained ? "cleanly" : "with timeout",
              static_cast<unsigned long long>(queue.done),
              static_cast<unsigned long long>(queue.failed),
              static_cast<unsigned long long>(queue.rejected));
  if (!drained) {
    // Past the grace window the timeout must mean something: returning
    // normally would run ~ThreadPool, which drains every remaining queued
    // job to completion (and further signals stay blocked) — exit hard
    // instead and let the OS reclaim.
    std::fflush(stdout);
    std::_Exit(1);
  }
  return 0;
}

int run_cluster(int argc, char** argv) {
  using namespace mpqls;

  std::size_t inprocess_workers = 0;
  cluster::CoordinatorOptions coordinator;
  coordinator.port = 8080;
  net::DaemonOptions worker;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") {
      const std::size_t port = flag_value(argc, argv, &i, "--port");
      if (port > 65535) {
        std::fprintf(stderr, "--port: out of range: %zu\n", port);
        return 2;
      }
      coordinator.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--bind") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--bind needs an address\n");
        return 2;
      }
      coordinator.bind_address = argv[++i];
    } else if (arg == "--workers") {
      inprocess_workers = flag_value(argc, argv, &i, "--workers");
    } else if (arg == "--worker-url") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--worker-url needs host:port\n");
        return 2;
      }
      coordinator.worker_urls.push_back(argv[++i]);
    } else if (arg == "--random-routing") {
      coordinator.affinity_routing = false;
    } else if (arg == "--proxy-threads") {
      coordinator.proxy_threads = flag_value(argc, argv, &i, "--proxy-threads");
    } else if (arg == "--solve-threads") {
      worker.service.solve_threads = flag_value(argc, argv, &i, "--solve-threads");
    } else if (arg == "--job-threads") {
      worker.service.job_threads = flag_value(argc, argv, &i, "--job-threads");
    } else if (arg == "--queue-depth") {
      worker.service.max_pending_jobs = flag_value(argc, argv, &i, "--queue-depth");
    } else if (arg == "--cache-capacity") {
      worker.service.cache_capacity = flag_value(argc, argv, &i, "--cache-capacity");
    } else if (arg == "--retained-jobs") {
      worker.service.retained_jobs = flag_value(argc, argv, &i, "--retained-jobs");
    } else if (arg == "--retained-slow") {
      worker.service.slow_jobs_retained = flag_value(argc, argv, &i, "--retained-slow");
    } else if (arg == "--panel-width") {
      worker.service.panel_width = flag_value(argc, argv, &i, "--panel-width");
    } else if (arg == "--backend") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--backend needs a name\n");
        return 2;
      }
      worker.service.default_backend = argv[++i];
      if (qsim::exec::find_backend(worker.service.default_backend) == nullptr) {
        std::fprintf(stderr, "--backend: unknown execution backend: %s\n",
                     worker.service.default_backend.c_str());
        return 2;
      }
    } else if (arg == "--store-mb") {
      worker.service.matrix_store_bytes = flag_value(argc, argv, &i, "--store-mb") << 20;
    } else if (arg == "--max-body-mb") {
      worker.limits.max_body_bytes = flag_value(argc, argv, &i, "--max-body-mb") << 20;
      coordinator.limits.max_body_bytes = worker.limits.max_body_bytes;
    } else {
      std::fprintf(stderr, "unknown cluster flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if ((inprocess_workers > 0) == !coordinator.worker_urls.empty()) {
    std::fprintf(stderr, "cluster mode needs exactly one of --workers N or --worker-url ...\n");
    return 2;
  }

  sigset_t mask;
  if (!block_shutdown_signals(&mask)) {
    std::fprintf(stderr, "pthread_sigmask failed\n");
    return 2;
  }

  const auto banner = [](const cluster::Coordinator& c, const char* kind) {
    std::printf("cluster coordinator (%s, %zu workers) listening on port %u\n", kind,
                c.worker_count(), static_cast<unsigned>(c.port()));
    std::printf("  POST /v1/jobs | GET /v1/jobs[/{id}[/result]] | DELETE /v1/jobs/{id} | "
                "PUT /v1/matrices | /v1/healthz | /v1/metrics\n");
    std::fflush(stdout);
  };
  const auto summary = [](const cluster::Coordinator& c) {
    const auto stats = c.routing_stats();
    std::printf("routing: %llu accepted (%llu affinity, %llu spillover), %llu retries\n",
                static_cast<unsigned long long>(stats.submits_accepted),
                static_cast<unsigned long long>(stats.affinity_hits),
                static_cast<unsigned long long>(stats.spillovers),
                static_cast<unsigned long long>(stats.retries));
  };

  int sig = 0;
  if (inprocess_workers > 0) {
    cluster::TestClusterOptions options;
    options.workers = inprocess_workers;
    options.worker = worker;
    options.coordinator = coordinator;
    cluster::TestCluster clusterd(options);
    banner(clusterd.coordinator(), "in-process workers");
    if (sigwait(&mask, &sig) != 0) return 2;
    std::printf("received %s, stopping coordinator and draining workers...\n",
                sig == SIGTERM ? "SIGTERM" : "SIGINT");
    std::fflush(stdout);
    summary(clusterd.coordinator());
    clusterd.stop();
  } else {
    cluster::Coordinator coordinatord(coordinator);
    coordinatord.start();
    banner(coordinatord, "external workers");
    if (sigwait(&mask, &sig) != 0) return 2;
    std::printf("received %s, stopping coordinator (workers keep running)...\n",
                sig == SIGTERM ? "SIGTERM" : "SIGINT");
    std::fflush(stdout);
    summary(coordinatord);
    coordinatord.stop();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace mpqls;

  if (argc >= 2 && std::string(argv[1]) == "serve") return run_daemon(argc, argv);
  if (argc >= 2 && std::string(argv[1]) == "cluster") return run_cluster(argc, argv);

  std::string jobs_text = kDefaultJobs;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--emit-jobs" && i + 1 < argc) {
      const char* path = argv[++i];
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write job file: %s\n", path);
        return 2;
      }
      // Normalized through the parser so the emitted file is valid JSON.
      out << Json::parse(kDefaultJobs).dump(2) << "\n";
      std::printf("default jobs written to %s\n", path);
      return 0;
    } else {
      auto text = read_text_file(arg);
      if (!text) {
        std::fprintf(stderr, "cannot open job file: %s\n", arg.c_str());
        return 2;
      }
      jobs_text = *std::move(text);
    }
  }

  const auto jobs = service::jobs_from_json(Json::parse(jobs_text));
  std::printf("service_server: %zu jobs\n\n", jobs.size());

  service::SolverService svc({.cache_capacity = 8, .solve_threads = 0, .job_threads = 2});

  Timer wall;
  std::vector<std::future<service::SolveResult>> pending;
  pending.reserve(jobs.size());
  for (const auto& job : jobs) pending.push_back(svc.submit(job));

  Json trace = Json::array();
  TextTable table({"job", "n", "rhs", "cache", "prep (ms)", "program", "compile (ms)",
                   "solve (ms)", "residual", "ok"});
  bool all_ok = true;
  for (std::size_t j = 0; j < pending.size(); ++j) {
    const auto result = pending[j].get();
    double solve_ms = 0.0, worst_residual = 0.0;
    for (const auto& s : result.solves) {
      solve_ms += s.solve_seconds * 1e3;
      worst_residual = std::max(worst_residual, s.report.scaled_residuals.back());
    }
    // Compiled-program telemetry is per context, so any solve reports it.
    const auto& rep0 = result.solves.front().report;
    const std::string program =
        rep0.program_ops == 0 ? "-"
                              : std::to_string(rep0.program_source_gates) + "->" +
                                    std::to_string(rep0.program_ops) + " ops";
    table.add_row({result.id, std::to_string(jobs[j].A.rows()),
                   std::to_string(result.solves.size()), result.cache_hit ? "hit" : "miss",
                   fmt_fix(result.prepare_seconds * 1e3, 1), program,
                   rep0.program_ops == 0 ? "-" : fmt_fix(rep0.program_compile_seconds * 1e3, 1),
                   fmt_fix(solve_ms, 1), fmt_sci(worst_residual),
                   result.all_converged ? "yes" : "NO"});
    all_ok = all_ok && result.all_converged;
    trace.push_back(service::to_json(result));
  }
  table.print(std::cout);

  const auto cache = svc.cache_stats();
  const auto stats = svc.stats();
  std::printf("\n%llu jobs, %llu right-hand sides in %.1f ms wall\n",
              static_cast<unsigned long long>(stats.jobs),
              static_cast<unsigned long long>(stats.rhs_solved), wall.milliseconds());
  std::printf("context cache: %llu hits, %llu misses, %llu evictions, %zu resident\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions), cache.size);
  if (stats.panels_executed > 0) {
    std::printf("panel executor: %llu panels, %llu lanes (%.1f lanes/panel)\n",
                static_cast<unsigned long long>(stats.panels_executed),
                static_cast<unsigned long long>(stats.panel_lanes_total),
                static_cast<double>(stats.panel_lanes_total) /
                    static_cast<double>(stats.panels_executed));
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write trace file: %s\n", trace_path.c_str());
      return 2;
    }
    out << trace.dump(2) << "\n";
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  return all_ok ? 0 : 1;
} catch (const std::exception& e) {
  // Bad job files and failed preparations (e.g. singular matrices) land
  // here; report cleanly instead of std::terminate.
  std::fprintf(stderr, "service_server: %s\n", e.what());
  return 2;
}
