// Visualize the CPU/QPU communication pattern of Fig. 1: the one-off
// transfers (BE(A^T), the phase vector Phi, SP(b)) versus the light
// per-iteration traffic (SP(r_i) down, sampled x_{i+1} up).
//
//   build/examples/hybrid_pipeline
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  Xoshiro256 rng(17);
  const auto A = linalg::random_with_cond(rng, 16, 10.0);
  const auto b = linalg::random_unit_vector(rng, 16);

  solver::QsvtIrOptions options;
  options.eps = 1e-10;
  options.qsvt.eps_l = 1e-2;
  options.qsvt.backend = qsvt::Backend::kGateLevel;
  const auto rep = solver::solve_qsvt_ir(A, b, options);

  std::printf("CPU-QPU transfer timeline (Fig. 1 of the paper):\n\n");
  TextTable table({"#", "direction", "payload", "bytes", "phase"});
  int idx = 0;
  for (const auto& e : rep.comm.events()) {
    table.add_row({std::to_string(idx++),
                   e.direction == hybrid::Direction::kCpuToQpu ? "CPU -> QPU" : "QPU -> CPU",
                   e.payload, fmt_int(e.bytes),
                   e.iteration < 0 ? "setup/first solve"
                                   : ("iteration " + std::to_string(e.iteration))});
  }
  table.print(std::cout);

  const auto setup = rep.comm.setup_bytes();
  const auto down = rep.comm.total_bytes(hybrid::Direction::kCpuToQpu);
  const auto up = rep.comm.total_bytes(hybrid::Direction::kQpuToCpu);
  std::printf("\nsetup bytes (incl. first solve): %s\n", fmt_int(setup).c_str());
  std::printf("total CPU->QPU: %s, QPU->CPU: %s\n", fmt_int(down).c_str(),
              fmt_int(up).c_str());
  std::printf("\nThe block-encoding circuit dominates the setup transfer and is sent\n"
              "exactly once; each refinement iteration only ships a state-preparation\n"
              "for r_i and reads back N amplitudes — the paper's Section III-C3 point.\n");
  return 0;
}
