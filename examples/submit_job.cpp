// Remote job submission against a running solver daemon:
//
//   build/examples/service_server serve --port 8080 &
//   build/examples/submit_job --port 8080 examples/jobs/mixed.json
//
// Reads a job file ({"jobs": [...]} or a single request object), POSTs
// every job to /v1/jobs over one keep-alive connection, then polls
// /v1/jobs/{id} until each is terminal and prints a summary table.
// Backpressure is handled the way a well-behaved client should: 429
// waits and resubmits, 503 (draining) gives up on the remaining jobs.
//
// Transport flags exercise the binary protocol (src/wire) and the
// content-addressed matrix store:
//
//   --binary  encode requests as application/x-mpqls-frame frames and
//             fetch results through GET /v1/jobs/{id}/result with the
//             frame Accept header (JSON stays the default).
//   --upload  PUT each job's matrix to /v1/matrices first and submit
//             by matrix_ref. A 404 on submit (worker restarted or the
//             store evicted the entry) re-uploads and retries — the
//             self-healing client loop the protocol is designed around.
//
// Works against a single daemon or a cluster coordinator transparently;
// against a coordinator the status output additionally renders the
// per-worker routing gauges (breaker state, in-flight, affinity hit
// ratio) scraped from /v1/metrics. `--cancel JOB_ID` instead issues
// DELETE /v1/jobs/JOB_ID and exits; `--trace JOB_ID` fetches
// GET /v1/jobs/JOB_ID/trace and pretty-prints the span tree (indented by
// parentage, with durations, percent-of-parent, and span attributes such
// as precision tier and panel lanes). Jobs that ran as shard-group
// members get their dist telemetry (rank/world, exchange rounds, bytes
// moved) rendered under the summary table, and the daemon's distributed
// posture (qubit cap, active shard groups with peers) is scraped from
// /v1/healthz after the run.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/io.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "net/http_client.hpp"
#include "service/json_io.hpp"
#include "service/limits.hpp"
#include "wire/codec.hpp"

namespace {

/// Value of `name{worker="<worker>"} v` in Prometheus exposition text;
/// NaN when the series is absent.
double labeled_metric(const std::string& text, const std::string& name,
                      const std::string& worker) {
  const std::string needle = name + "{worker=\"" + worker + "\"} ";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return std::nan("");
  return std::stod(text.substr(pos + needle.size()));
}

/// Value of an unlabeled `name v` sample line; NaN when absent. Anchored
/// to a line start so `mpqls_panel_lanes_total` cannot match inside a
/// longer family name.
double scalar_metric(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return std::nan("");
  return std::stod(text.substr(pos + needle.size()));
}

/// Panel-executor stats scraped from /v1/metrics — the server-side
/// counterpart of the table above: how many compiled-program sweeps were
/// shared across RHS lanes and how full they ran. A plain daemon exports
/// the unlabeled family; a cluster coordinator relabels each worker's
/// families with worker="wk", so those series are summed instead.
void print_panel_status(const std::string& metrics_text) {
  double panels = scalar_metric(metrics_text, "mpqls_panels_executed_total");
  double lanes = scalar_metric(metrics_text, "mpqls_panel_lanes_total");
  double width = scalar_metric(metrics_text, "mpqls_panel_width");
  if (std::isnan(panels)) {
    panels = lanes = 0.0;
    width = std::nan("");
    bool any = false;
    for (int w = 0;; ++w) {
      const std::string label = "w" + std::to_string(w);
      const double p = labeled_metric(metrics_text, "mpqls_panels_executed_total", label);
      if (std::isnan(p)) break;
      any = true;
      panels += p;
      const double l = labeled_metric(metrics_text, "mpqls_panel_lanes_total", label);
      if (!std::isnan(l)) lanes += l;
      if (std::isnan(width)) {
        width = labeled_metric(metrics_text, "mpqls_panel_width", label);
      }
    }
    if (!any) return;
  }
  if (panels <= 0.0) return;
  std::printf("\npanel executor: width %.0f, %.0f panels, %.0f lanes", width, panels, lanes);
  if (width > 0.0) std::printf(", mean occupancy %.2f", lanes / (panels * width));
  std::printf("\n");
}

/// Sum of every sample line of one family whose label set contains
/// `label_filter` (empty = all samples). Covers the plain daemon
/// (unlabeled or encoding-labeled) and the cluster merge (worker-
/// relabeled, label order unspecified) with one scan. NaN when no
/// sample matched.
double family_sum(const std::string& text, const std::string& name,
                  const std::string& label_filter = {}) {
  double sum = 0.0;
  bool any = false;
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    // Anchor to a line start and require '{' or ' ' next, so a family
    // cannot match inside a longer name or a HELP/TYPE line.
    const std::size_t start = pos;
    const std::size_t after = pos + name.size();
    pos = after;
    if (start != 0 && text[start - 1] != '\n') continue;
    if (after >= text.size() || (text[after] != '{' && text[after] != ' ')) continue;
    std::size_t eol = text.find('\n', after);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(start, eol - start);
    if (!label_filter.empty() && line.find(label_filter) == std::string::npos) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    try {
      sum += std::stod(line.substr(space + 1));
      any = true;
    } catch (const std::exception&) {
    }
  }
  return any ? sum : std::nan("");
}

/// Matrix-store occupancy and wire traffic split, scraped from
/// /v1/metrics (summed across workers against a cluster coordinator).
/// Prints nothing against a daemon predating the store.
void print_store_status(const std::string& text) {
  const double entries = family_sum(text, "mpqls_store_entries");
  if (std::isnan(entries)) return;
  std::printf("\nmatrix store: %.0f entries, %.1f MiB resident, %.0f hits / %.0f misses, "
              "%.0f evictions\n",
              entries, family_sum(text, "mpqls_store_bytes") / (1024.0 * 1024.0),
              family_sum(text, "mpqls_store_hits_total"),
              family_sum(text, "mpqls_store_misses_total"),
              family_sum(text, "mpqls_store_evictions_total"));
  const auto encoded = [&text](const char* name, const char* encoding) {
    const double v = family_sum(text, name, std::string("encoding=\"") + encoding + "\"");
    return std::isnan(v) ? 0.0 : v;
  };
  std::printf("wire traffic: json %.0f req / %.0f B in, binary %.0f req / %.0f B in\n",
              encoded("mpqls_wire_requests_total", "json"),
              encoded("mpqls_wire_request_bytes_total", "json"),
              encoded("mpqls_wire_requests_total", "binary"),
              encoded("mpqls_wire_request_bytes_total", "binary"));
}

/// Per-precision-tier execution split scraped from /v1/metrics (summed
/// across workers against a cluster coordinator). Prints nothing against
/// a daemon predating adaptive precision, and stays quiet when no tiered
/// work has run yet.
void print_precision_status(const std::string& text) {
  const auto tier = [&text](const char* name, const char* precision) {
    const double v =
        family_sum(text, name, std::string("precision=\"") + precision + "\"");
    return std::isnan(v) ? 0.0 : v;
  };
  const double switches = family_sum(text, "mpqls_precision_switches_total");
  if (std::isnan(switches)) return;
  const double half = tier("mpqls_precision_solves_total", "half");
  const double single = tier("mpqls_precision_solves_total", "single");
  const double dbl = tier("mpqls_precision_solves_total", "double");
  if (half + single + dbl == 0.0) return;
  std::printf("precision tiers: %.0f half / %.0f single / %.0f double solves, "
              "%.0f escalations\n",
              half, single, dbl, switches);
}

/// Distinct values of one label across a family's sample lines, in first-
/// appearance order — discovers the backend split without hardcoding the
/// server's registry.
std::vector<std::string> label_values(const std::string& text, const std::string& name,
                                      const std::string& label) {
  std::vector<std::string> values;
  const std::string needle = label + "=\"";
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const std::size_t start = pos;
    const std::size_t after = pos + name.size();
    pos = after;
    if (start != 0 && text[start - 1] != '\n') continue;
    if (after >= text.size() || text[after] != '{') continue;
    std::size_t eol = text.find('\n', after);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(start, eol - start);
    const std::size_t lp = line.find(needle);
    if (lp == std::string::npos) continue;
    const std::size_t vstart = lp + needle.size();
    const std::size_t vend = line.find('"', vstart);
    if (vend == std::string::npos) continue;
    const std::string value = line.substr(vstart, vend - vstart);
    if (std::find(values.begin(), values.end(), value) == values.end()) {
      values.push_back(value);
    }
  }
  return values;
}

/// Per-execution-backend load split (mpqls_backend_* families, summed
/// across workers against a cluster coordinator). Prints nothing against
/// a daemon predating execution backends or before any job ran.
void print_backend_status(const std::string& text) {
  const auto backends = label_values(text, "mpqls_backend_jobs_total", "backend");
  if (backends.empty()) return;
  const auto defaults = label_values(text, "mpqls_backend_default_info", "backend");
  std::printf("backends:");
  for (std::size_t i = 0; i < backends.size(); ++i) {
    const auto pick = [&](const char* name) {
      const double v = family_sum(text, name, std::string("backend=\"") + backends[i] + "\"");
      return std::isnan(v) ? 0.0 : v;
    };
    const bool is_default =
        std::find(defaults.begin(), defaults.end(), backends[i]) != defaults.end();
    std::printf("%s %s%s %.0f jobs / %.0f rhs / %.0f replays / %.0f panels",
                i == 0 ? "" : " |", backends[i].c_str(), is_default ? "*" : "",
                pick("mpqls_backend_jobs_total"), pick("mpqls_backend_rhs_solved_total"),
                pick("mpqls_backend_replays_total"), pick("mpqls_backend_panels_total"));
  }
  std::printf("%s\n", defaults.empty() ? "" : "  (* = server default)");
}

/// Recursive indented rendering of one span and its children. Spans
/// arrive as a flat list with parent ids; children print in start order.
void print_span_tree(const std::vector<mpqls::Json>& spans, std::uint64_t parent_id,
                     double parent_us, int depth) {
  for (const auto& span : spans) {
    if (span.uint_or("parent", 0) != parent_id) continue;
    const double us = span.number_or("duration_us", 0.0);
    std::printf("%*s%-*s %9.3f ms", depth * 2, "", 24 - depth * 2,
                span.string_or("name", "?").c_str(), us / 1e3);
    if (parent_us > 0.0) {
      std::printf("  %5.1f%%", 100.0 * us / parent_us);
    } else {
      std::printf("        ");
    }
    if (span.bool_or("running", false)) std::printf("  [running]");
    if (span.contains("attrs") && !span.at("attrs").as_object().empty()) {
      std::printf("  ");
      bool first = true;
      for (const auto& [key, value] : span.at("attrs").as_object()) {
        std::printf("%s%s=%s", first ? "" : " ", key.c_str(),
                    value.is_string() ? value.as_string().c_str() : value.dump().c_str());
        first = false;
      }
    }
    std::printf("\n");
    print_span_tree(spans, span.uint_or("id", 0), us, depth + 1);
  }
}

/// `--trace JOB_ID`: fetch and render the span tree of one job.
int print_trace(mpqls::net::HttpClient& client, const std::string& job_id) {
  const auto response = client.get("/v1/jobs/" + job_id + "/trace");
  if (response.status != 200) {
    std::fprintf(stderr, "trace fetch failed (%d): %s", response.status, response.body.c_str());
    return 1;
  }
  const mpqls::Json body = mpqls::Json::parse(response.body);
  std::printf("trace %s  job %s  state %s\n", body.string_or("trace_id", "?").c_str(),
              body.string_or("job_id", job_id).c_str(), body.string_or("state", "?").c_str());
  const auto dropped = body.uint_or("spans_dropped", 0);
  if (dropped > 0) std::printf("(%llu spans dropped: buffer full)\n",
                               static_cast<unsigned long long>(dropped));
  if (!body.contains("spans")) {
    std::printf("(no spans recorded)\n");
    return 0;
  }
  std::vector<mpqls::Json> spans;
  for (const auto& span : body.at("spans").as_array()) spans.push_back(span);
  // Orphans (parent span dropped or still unpublished) would vanish from
  // a strict tree walk; promote them to top level so nothing is hidden.
  std::vector<mpqls::Json> roots_fixed = spans;
  for (auto& span : roots_fixed) {
    const std::uint64_t parent = span.uint_or("parent", 0);
    if (parent == 0) continue;
    bool found = false;
    for (const auto& other : spans) {
      if (other.uint_or("id", 0) == parent) {
        found = true;
        break;
      }
    }
    if (!found) span["parent"] = std::uint64_t{0};
  }
  print_span_tree(roots_fixed, 0, 0.0, 0);
  return 0;
}

/// Scrape /v1/metrics once for the status renderings below; empty on any
/// failure (status rendering is best-effort; results already printed).
std::string fetch_metrics(mpqls::net::HttpClient& client) {
  try {
    const auto response = client.get("/v1/metrics");
    if (response.status != 200) return {};
    return response.body;
  } catch (const std::exception&) {
    return {};
  }
}

/// When the daemon is a cluster coordinator, print its per-worker routing
/// gauges; against a plain worker daemon this finds no cluster series and
/// prints nothing.
void print_cluster_status(const std::string& text) {
  if (text.find("mpqls_cluster_worker_breaker_state") == std::string::npos) return;
  mpqls::TextTable table({"worker", "breaker", "in-flight", "affinity hit ratio"});
  for (int w = 0;; ++w) {
    const std::string label = "w" + std::to_string(w);
    const double breaker = labeled_metric(text, "mpqls_cluster_worker_breaker_state", label);
    if (std::isnan(breaker)) break;
    const double in_flight = labeled_metric(text, "mpqls_cluster_worker_in_flight", label);
    const double ratio = labeled_metric(text, "mpqls_cluster_worker_affinity_hit_ratio", label);
    const char* state = breaker == 0.0 ? "closed" : (breaker == 1.0 ? "half-open" : "OPEN");
    table.add_row({label, state, mpqls::fmt_fix(in_flight, 0), mpqls::fmt_fix(ratio, 2)});
  }
  std::printf("\ncluster worker status:\n");
  table.print(std::cout);
}

/// Distributed-execution posture scraped from /v1/healthz: the worker's
/// statevector qubit cap and every shard group it is currently a member
/// of (role, group size, peer endpoints). Prints nothing against a daemon
/// predating distributed execution or with no dist block to report.
void print_dist_status(mpqls::net::HttpClient& client) {
  using mpqls::Json;
  std::string body;
  try {
    const auto response = client.get("/v1/healthz");
    if (response.status != 200) return;
    body = response.body;
  } catch (const std::exception&) {
    return;
  }
  Json health;
  try {
    health = Json::parse(body);
  } catch (const std::exception&) {
    return;
  }
  if (!health.contains("dist")) return;
  const Json& dist = health.at("dist");
  const auto cap = dist.uint_or("max_statevector_qubits", 0);
  const auto& groups = dist.at("active_groups").as_array();
  if (cap == 0 && groups.empty()) return;

  std::printf("\ndistributed execution:");
  if (cap > 0) {
    std::printf(" local cap %llu qubits", static_cast<unsigned long long>(cap));
  } else {
    std::printf(" no local qubit cap");
  }
  std::printf(", %zu active shard group%s\n", groups.size(), groups.size() == 1 ? "" : "s");
  for (const auto& group : groups) {
    std::printf("  group %s: rank %llu of %llu, peers [",
                group.string_or("group", "?").c_str(),
                static_cast<unsigned long long>(group.uint_or("rank", 0)),
                static_cast<unsigned long long>(group.uint_or("world", 0)));
    bool first = true;
    for (const auto& peer : group.at("peers").as_array()) {
      std::printf("%s%s", first ? "" : ", ", peer.as_string().c_str());
      first = false;
    }
    std::printf("]\n");
  }
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace mpqls;

  std::string host = "127.0.0.1";
  std::uint16_t port = 8080;
  int poll_ms = 100;
  int timeout_s = 600;
  bool use_binary = false;
  bool use_upload = false;
  std::string jobs_path;
  std::string cancel_id;
  std::string trace_id;
  std::string backend_override;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::stoi(argv[++i]));
    } else if (arg == "--poll-ms" && i + 1 < argc) {
      poll_ms = std::stoi(argv[++i]);
    } else if (arg == "--timeout-s" && i + 1 < argc) {
      timeout_s = std::stoi(argv[++i]);
    } else if (arg == "--binary") {
      use_binary = true;
    } else if (arg == "--upload") {
      use_upload = true;
    } else if (arg == "--cancel" && i + 1 < argc) {
      cancel_id = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_id = argv[++i];
    } else if (arg == "--backend" && i + 1 < argc) {
      backend_override = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      jobs_path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: submit_job [--host H] [--port P] [--poll-ms N] [--timeout-s N] "
                   "[--binary] [--upload] [--backend NAME] "
                   "(jobs.json | --cancel JOB_ID | --trace JOB_ID)\n");
      return 2;
    }
  }
  if (!cancel_id.empty()) {
    net::HttpClient client(host, port);
    const auto response = client.del("/v1/jobs/" + cancel_id);
    std::printf("%d %s", response.status, response.body.c_str());
    return response.status == 200 ? 0 : 1;
  }
  if (!trace_id.empty()) {
    net::HttpClient client(host, port);
    return print_trace(client, trace_id);
  }
  if (jobs_path.empty()) {
    std::fprintf(stderr, "submit_job: no job file given\n");
    return 2;
  }

  const auto jobs_text = read_text_file(jobs_path);
  if (!jobs_text) {
    std::fprintf(stderr, "cannot open job file: %s\n", jobs_path.c_str());
    return 2;
  }
  const Json doc = Json::parse(*jobs_text);
  std::vector<Json> jobs;
  if (doc.contains("jobs")) {
    for (const auto& j : doc.at("jobs").as_array()) jobs.push_back(j);
  } else {
    jobs.push_back(doc);
  }
  if (!backend_override.empty()) {
    // Per-job execution-backend override: the top-level "backend" field
    // wins over anything the job file specified. The server answers 400
    // for names it does not have enabled — visible in the refusal path
    // below. Binary frames carry no backend field, so under --binary the
    // override cannot travel; say so instead of silently dropping it.
    if (use_binary) {
      std::fprintf(stderr, "--backend is JSON-only; binary frames run the server default\n");
      return 2;
    }
    for (auto& job : jobs) job["backend"] = backend_override;
  }

  net::HttpClient client(host, port);
  std::printf("submitting %zu jobs to %s:%u%s%s\n", jobs.size(), host.c_str(),
              static_cast<unsigned>(port), use_binary ? " [binary frames]" : "",
              use_upload ? " [by matrix_ref]" : "");

  // One deadline bounds the whole run — 429 retries included, so a
  // permanently saturated daemon cannot hang the client.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(timeout_s);

  // PUT a kMatrix frame and return the server-assigned content hash.
  const auto upload_matrix = [&client](const std::string& frame) {
    const auto response = client.put("/v1/matrices", frame, wire::kContentType);
    if (response.status != 200 && response.status != 201) {
      throw std::runtime_error("matrix upload failed (" + std::to_string(response.status) +
                               "): " + response.body);
    }
    return service::u64_from_hex(Json::parse(response.body).at("matrix_ref").as_string());
  };

  // Materialize each job's transport body once. Under --binary/--upload
  // the job JSON is parsed into a SolveRequest first (scenario generators
  // run client-side; the frame codec ships explicit matrices only).
  struct Prepared {
    std::string label;
    std::string body;
    std::string matrix_frame;  ///< nonempty under --upload: the re-upload payload
  };
  std::vector<Prepared> prepared;
  prepared.reserve(jobs.size());
  const std::string content_type = use_binary ? wire::kContentType : "application/json";
  for (const auto& job : jobs) {
    Prepared p;
    p.label = job.string_or("id", "(unnamed)");
    if (use_binary || use_upload) {
      service::SolveRequest req = service::request_from_json(job);
      if (use_upload) {
        p.matrix_frame = wire::encode_matrix(req.matrix());
        req.matrix_ref = upload_matrix(p.matrix_frame);
      }
      // With matrix_ref set both encoders emit the by-ref form; the dense
      // matrix bytes never travel with the job again.
      p.body = use_binary ? wire::encode_request(req) : service::to_json(req).dump();
    } else {
      p.body = job.dump();
    }
    prepared.push_back(std::move(p));
  }

  struct Submitted {
    std::string label;
    std::string job_id;
  };
  std::vector<Submitted> submitted;
  std::vector<std::string> dist_notes;
  for (const auto& p : prepared) {
    const std::string& label = p.label;
    for (;;) {
      const auto response = client.post("/v1/jobs", p.body, content_type);
      if (response.status == 202) {
        const auto body = Json::parse(response.body);
        submitted.push_back({label, body.at("job_id").as_string()});
        break;
      }
      if (response.status == 429) {  // queue full: wait one beat and retry
        if (std::chrono::steady_clock::now() > deadline) {
          std::fprintf(stderr, "timed out waiting for queue capacity for '%s'\n", label.c_str());
          return 4;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
        continue;
      }
      if (response.status == 404 && !p.matrix_frame.empty()) {
        // Store miss — the worker restarted or evicted our entry. The ref
        // is a content hash, so re-uploading the same frame restores it
        // and the already-encoded body stays valid: re-upload and retry.
        if (std::chrono::steady_clock::now() > deadline) {
          std::fprintf(stderr, "timed out re-uploading matrix for '%s'\n", label.c_str());
          return 4;
        }
        std::fprintf(stderr, "job '%s': matrix_ref unknown to server, re-uploading\n",
                     label.c_str());
        upload_matrix(p.matrix_frame);
        continue;
      }
      std::fprintf(stderr, "job '%s' refused (%d): %s", label.c_str(), response.status,
                   response.body.c_str());
      if (response.status == 503) return 3;  // daemon draining; stop submitting
      break;                                 // 400 etc.: skip this job, keep going
    }
  }

  TextTable table({"job", "job id", "state", "queue (ms)", "run (ms)", "converged"});
  // Refused jobs (400 etc.) already failed the run even though we keep
  // polling the ones that were admitted.
  bool all_ok = submitted.size() == jobs.size();
  for (const auto& s : submitted) {
    Json status;
    for (;;) {
      const auto response = client.get("/v1/jobs/" + s.job_id);
      if (response.status != 200) {
        std::fprintf(stderr, "poll %s failed (%d)\n", s.job_id.c_str(), response.status);
        all_ok = false;
        break;
      }
      status = Json::parse(response.body);
      const std::string state = status.at("state").as_string();
      if (state == "done" || state == "failed") break;
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "timed out waiting for %s\n", s.job_id.c_str());
        return 4;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
    if (!status.is_object()) continue;
    const std::string state = status.at("state").as_string();
    bool converged = false;
    if (state == "done") {
      if (use_binary) {
        // Pull the result through the binary route — a kSolveResult frame
        // instead of the JSON splice the status poll carries.
        const auto response =
            client.get("/v1/jobs/" + s.job_id + "/result", {{"Accept", wire::kContentType}});
        if (response.status != 200) {
          std::fprintf(stderr, "result fetch %s failed (%d)\n", s.job_id.c_str(),
                       response.status);
          all_ok = false;
        } else {
          converged = wire::decode_result(response.body).all_converged;
        }
      } else {
        converged = status.at("result").at("all_converged").as_bool();
      }
    }
    all_ok = all_ok && (state == "done" && converged);
    table.add_row({s.label, s.job_id, state,
                   fmt_fix(status.at("queue_seconds").as_number() * 1e3, 1),
                   fmt_fix(status.at("run_seconds").as_number() * 1e3, 1),
                   state == "failed" ? status.string_or("error", "?") : (converged ? "yes" : "NO")});
    // Jobs that ran as a shard-group member carry a dist telemetry block:
    // render the rank's place in the group and what the exchanges cost.
    if (status.contains("result") && status.at("result").contains("dist")) {
      const Json& dist = status.at("result").at("dist");
      dist_notes.push_back(
          s.label + ": shard rank " + std::to_string(dist.uint_or("shard_rank", 0)) + "/" +
          std::to_string(dist.uint_or("shard_world", 0)) + ", " +
          std::to_string(dist.uint_or("exchange_rounds", 0)) + " exchange rounds (" +
          std::to_string(dist.uint_or("plan_naive_rounds", 0)) + " naive), " +
          fmt_fix(static_cast<double>(dist.uint_or("bytes_moved", 0)) / (1024.0 * 1024.0), 1) +
          " MiB moved");
    }
  }
  table.print(std::cout);
  if (!dist_notes.empty()) {
    std::printf("\ndistributed solves:\n");
    for (const auto& note : dist_notes) std::printf("  %s\n", note.c_str());
  }
  const std::string metrics_text = fetch_metrics(client);
  print_panel_status(metrics_text);
  print_precision_status(metrics_text);
  print_backend_status(metrics_text);
  print_store_status(metrics_text);
  print_cluster_status(metrics_text);
  print_dist_status(client);
  return all_ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "submit_job: %s\n", e.what());
  return 2;
}
