// Remote job submission against a running solver daemon:
//
//   build/examples/service_server serve --port 8080 &
//   build/examples/submit_job --port 8080 examples/jobs/mixed.json
//
// Reads a job file ({"jobs": [...]} or a single request object), POSTs
// every job to /v1/jobs over one keep-alive connection, then polls
// /v1/jobs/{id} until each is terminal and prints a summary table.
// Backpressure is handled the way a well-behaved client should: 429
// waits and resubmits, 503 (draining) gives up on the remaining jobs.
//
// Works against a single daemon or a cluster coordinator transparently;
// against a coordinator the status output additionally renders the
// per-worker routing gauges (breaker state, in-flight, affinity hit
// ratio) scraped from /v1/metrics. `--cancel JOB_ID` instead issues
// DELETE /v1/jobs/JOB_ID and exits.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/io.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "net/http_client.hpp"

namespace {

/// Value of `name{worker="<worker>"} v` in Prometheus exposition text;
/// NaN when the series is absent.
double labeled_metric(const std::string& text, const std::string& name,
                      const std::string& worker) {
  const std::string needle = name + "{worker=\"" + worker + "\"} ";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return std::nan("");
  return std::stod(text.substr(pos + needle.size()));
}

/// Value of an unlabeled `name v` sample line; NaN when absent. Anchored
/// to a line start so `mpqls_panel_lanes_total` cannot match inside a
/// longer family name.
double scalar_metric(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return std::nan("");
  return std::stod(text.substr(pos + needle.size()));
}

/// Panel-executor stats scraped from /v1/metrics — the server-side
/// counterpart of the table above: how many compiled-program sweeps were
/// shared across RHS lanes and how full they ran. A plain daemon exports
/// the unlabeled family; a cluster coordinator relabels each worker's
/// families with worker="wk", so those series are summed instead.
void print_panel_status(const std::string& metrics_text) {
  double panels = scalar_metric(metrics_text, "mpqls_panels_executed_total");
  double lanes = scalar_metric(metrics_text, "mpqls_panel_lanes_total");
  double width = scalar_metric(metrics_text, "mpqls_panel_width");
  if (std::isnan(panels)) {
    panels = lanes = 0.0;
    width = std::nan("");
    bool any = false;
    for (int w = 0;; ++w) {
      const std::string label = "w" + std::to_string(w);
      const double p = labeled_metric(metrics_text, "mpqls_panels_executed_total", label);
      if (std::isnan(p)) break;
      any = true;
      panels += p;
      const double l = labeled_metric(metrics_text, "mpqls_panel_lanes_total", label);
      if (!std::isnan(l)) lanes += l;
      if (std::isnan(width)) {
        width = labeled_metric(metrics_text, "mpqls_panel_width", label);
      }
    }
    if (!any) return;
  }
  if (panels <= 0.0) return;
  std::printf("\npanel executor: width %.0f, %.0f panels, %.0f lanes", width, panels, lanes);
  if (width > 0.0) std::printf(", mean occupancy %.2f", lanes / (panels * width));
  std::printf("\n");
}

/// Scrape /v1/metrics once for the status renderings below; empty on any
/// failure (status rendering is best-effort; results already printed).
std::string fetch_metrics(mpqls::net::HttpClient& client) {
  try {
    const auto response = client.get("/v1/metrics");
    if (response.status != 200) return {};
    return response.body;
  } catch (const std::exception&) {
    return {};
  }
}

/// When the daemon is a cluster coordinator, print its per-worker routing
/// gauges; against a plain worker daemon this finds no cluster series and
/// prints nothing.
void print_cluster_status(const std::string& text) {
  if (text.find("mpqls_cluster_worker_breaker_state") == std::string::npos) return;
  mpqls::TextTable table({"worker", "breaker", "in-flight", "affinity hit ratio"});
  for (int w = 0;; ++w) {
    const std::string label = "w" + std::to_string(w);
    const double breaker = labeled_metric(text, "mpqls_cluster_worker_breaker_state", label);
    if (std::isnan(breaker)) break;
    const double in_flight = labeled_metric(text, "mpqls_cluster_worker_in_flight", label);
    const double ratio = labeled_metric(text, "mpqls_cluster_worker_affinity_hit_ratio", label);
    const char* state = breaker == 0.0 ? "closed" : (breaker == 1.0 ? "half-open" : "OPEN");
    table.add_row({label, state, mpqls::fmt_fix(in_flight, 0), mpqls::fmt_fix(ratio, 2)});
  }
  std::printf("\ncluster worker status:\n");
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace mpqls;

  std::string host = "127.0.0.1";
  std::uint16_t port = 8080;
  int poll_ms = 100;
  int timeout_s = 600;
  std::string jobs_path;
  std::string cancel_id;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::stoi(argv[++i]));
    } else if (arg == "--poll-ms" && i + 1 < argc) {
      poll_ms = std::stoi(argv[++i]);
    } else if (arg == "--timeout-s" && i + 1 < argc) {
      timeout_s = std::stoi(argv[++i]);
    } else if (arg == "--cancel" && i + 1 < argc) {
      cancel_id = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      jobs_path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: submit_job [--host H] [--port P] [--poll-ms N] [--timeout-s N] "
                   "(jobs.json | --cancel JOB_ID)\n");
      return 2;
    }
  }
  if (!cancel_id.empty()) {
    net::HttpClient client(host, port);
    const auto response = client.del("/v1/jobs/" + cancel_id);
    std::printf("%d %s", response.status, response.body.c_str());
    return response.status == 200 ? 0 : 1;
  }
  if (jobs_path.empty()) {
    std::fprintf(stderr, "submit_job: no job file given\n");
    return 2;
  }

  const auto jobs_text = read_text_file(jobs_path);
  if (!jobs_text) {
    std::fprintf(stderr, "cannot open job file: %s\n", jobs_path.c_str());
    return 2;
  }
  const Json doc = Json::parse(*jobs_text);
  std::vector<Json> jobs;
  if (doc.contains("jobs")) {
    for (const auto& j : doc.at("jobs").as_array()) jobs.push_back(j);
  } else {
    jobs.push_back(doc);
  }

  net::HttpClient client(host, port);
  std::printf("submitting %zu jobs to %s:%u\n", jobs.size(), host.c_str(),
              static_cast<unsigned>(port));

  // One deadline bounds the whole run — 429 retries included, so a
  // permanently saturated daemon cannot hang the client.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(timeout_s);

  struct Submitted {
    std::string label;
    std::string job_id;
  };
  std::vector<Submitted> submitted;
  for (const auto& job : jobs) {
    const std::string label = job.string_or("id", "(unnamed)");
    for (;;) {
      const auto response = client.post("/v1/jobs", job.dump());
      if (response.status == 202) {
        const auto body = Json::parse(response.body);
        submitted.push_back({label, body.at("job_id").as_string()});
        break;
      }
      if (response.status == 429) {  // queue full: wait one beat and retry
        if (std::chrono::steady_clock::now() > deadline) {
          std::fprintf(stderr, "timed out waiting for queue capacity for '%s'\n", label.c_str());
          return 4;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
        continue;
      }
      std::fprintf(stderr, "job '%s' refused (%d): %s", label.c_str(), response.status,
                   response.body.c_str());
      if (response.status == 503) return 3;  // daemon draining; stop submitting
      break;                                 // 400 etc.: skip this job, keep going
    }
  }

  TextTable table({"job", "job id", "state", "queue (ms)", "run (ms)", "converged"});
  // Refused jobs (400 etc.) already failed the run even though we keep
  // polling the ones that were admitted.
  bool all_ok = submitted.size() == jobs.size();
  for (const auto& s : submitted) {
    Json status;
    for (;;) {
      const auto response = client.get("/v1/jobs/" + s.job_id);
      if (response.status != 200) {
        std::fprintf(stderr, "poll %s failed (%d)\n", s.job_id.c_str(), response.status);
        all_ok = false;
        break;
      }
      status = Json::parse(response.body);
      const std::string state = status.at("state").as_string();
      if (state == "done" || state == "failed") break;
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "timed out waiting for %s\n", s.job_id.c_str());
        return 4;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
    if (!status.is_object()) continue;
    const std::string state = status.at("state").as_string();
    const bool converged =
        state == "done" && status.at("result").at("all_converged").as_bool();
    all_ok = all_ok && converged;
    table.add_row({s.label, s.job_id, state,
                   fmt_fix(status.at("queue_seconds").as_number() * 1e3, 1),
                   fmt_fix(status.at("run_seconds").as_number() * 1e3, 1),
                   state == "failed" ? status.string_or("error", "?") : (converged ? "yes" : "NO")});
  }
  table.print(std::cout);
  const std::string metrics_text = fetch_metrics(client);
  print_panel_status(metrics_text);
  print_cluster_status(metrics_text);
  return all_ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "submit_job: %s\n", e.what());
  return 2;
}
