// 2-D Poisson on an 8x8 interior grid (N = 64): the sparse classical path
// (CSR + conjugate gradients, O(nnz) per iteration) next to the hybrid
// QSVT + refinement solver — the comparison behind the paper's closing
// caveat that classical solvers already handle Poisson systems in O(N)
// while kappa = O(N^2) makes them expensive for QSVT.
//
//   build/examples/poisson2d
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/blas.hpp"
#include "linalg/jacobi_svd.hpp"
#include "linalg/sparse.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  const std::size_t nx = 8, ny = 8, N = nx * ny;
  const auto A_csr = linalg::CsrMatrix::dirichlet_laplacian_2d(nx, ny);
  const auto A = A_csr.to_dense();

  // Right-hand side: a point source in the grid interior.
  linalg::Vector<double> b(N, 0.0);
  b[3 * nx + 4] = 1.0;

  const double kappa = linalg::cond2(A);
  std::printf("2-D Poisson, %zux%zu grid (N = %zu), nnz = %zu, kappa = %.1f\n\n", nx, ny, N,
              A_csr.nonzeros(), kappa);

  // Classical sparse path.
  Timer t_cg;
  const auto cg = linalg::cg_solve(A_csr, b);
  const double cg_ms = t_cg.milliseconds();

  // Hybrid path (matrix-function backend; the gate-level register would
  // need 6 data qubits + ancillas, also fine but slower).
  Timer t_q;
  solver::QsvtIrOptions opt;
  opt.eps = 1e-10;
  opt.qsvt.eps_l = 2e-2;
  opt.qsvt.backend = qsvt::Backend::kMatrixFunction;
  const auto rep = solver::solve_qsvt_ir(A, b, opt);
  const double q_ms = t_q.milliseconds();

  double max_diff = 0.0;
  for (std::size_t i = 0; i < N; ++i) {
    max_diff = std::fmax(max_diff, std::fabs(cg.x[i] - rep.x[i]));
  }

  TextTable table({"solver", "iterations", "residual", "time (ms)"});
  table.add_row({"CG (sparse, classical)", std::to_string(cg.iterations),
                 fmt_sci(cg.relative_residual), fmt_fix(cg_ms, 1)});
  table.add_row({"QSVT + IR (poly degree " + std::to_string(rep.poly_degree) + ")",
                 std::to_string(rep.iterations), fmt_sci(rep.scaled_residuals.back()),
                 fmt_fix(q_ms, 1)});
  table.print(std::cout);
  std::printf("\nsolutions agree to %.2e\n", max_diff);
  std::printf("\nCG needs ~sqrt(kappa) ~ %.0f matvecs of %zu flops each; the QSVT pays a\n"
              "polynomial of degree ~kappa log kappa per solve. With kappa = O(N^2) and\n"
              "no preconditioning, Poisson is classical solvers' home turf — the paper\n"
              "flags exactly this in Section III-C4.\n",
              std::sqrt(kappa), 2 * A_csr.nonzeros());
  return rep.converged && cg.converged ? 0 : 1;
}
