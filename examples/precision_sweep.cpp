// Sweep the QSVT accuracy eps_l and watch the trade-off the paper's
// Table I formalizes: cruder (cheaper) QSVT solves need more refinement
// iterations but each costs far fewer block-encoding calls — and the
// quantum cost including the O(1/eps_l^2) sampling factor tilts strongly
// toward crude solves.
//
//   build/examples/precision_sweep
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  Xoshiro256 rng(7);
  const double kappa = 10.0;
  const auto A = linalg::random_with_cond(rng, 16, kappa);
  const auto b = linalg::random_unit_vector(rng, 16);

  std::printf("kappa = %.0f, target eps = 1e-11; sweeping eps_l\n\n", kappa);
  TextTable table({"eps_l", "poly degree", "iters", "bound", "BE calls (total)",
                   "BE calls x samples"});

  for (double eps_l : {3e-2, 1e-2, 1e-3, 1e-4, 1e-5}) {
    solver::QsvtIrOptions options;
    options.eps = 1e-11;
    options.qsvt.eps_l = eps_l;
    options.qsvt.backend = qsvt::Backend::kGateLevel;
    const auto rep = solver::solve_qsvt_ir(A, b, options);
    const double with_sampling =
        static_cast<double>(rep.total_be_calls) / (eps_l * eps_l);
    table.add_row({fmt_sci(eps_l, 0), std::to_string(rep.poly_degree),
                   std::to_string(rep.iterations),
                   std::to_string(rep.theoretical_iteration_bound),
                   fmt_int(rep.total_be_calls), fmt_sci(with_sampling, 2)});
  }
  table.print(std::cout);
  std::printf("\nReading guide: per-solve degree shrinks with eps_l like "
              "kappa*log(kappa/eps_l);\niterations grow like "
              "log(eps)/log(eps_l*kappa); the sampling-inclusive cost\n"
              "(last column) is minimized at crude eps_l — the paper's core "
              "argument.\n");
  return 0;
}
