// Beyond inversion: the same QSVT machinery applies any bounded-parity
// polynomial to a block-encoded matrix (the "grand unification" view of
// Martyn et al. that the paper builds on). This example uses the library's
// pipeline to implement a smooth sign function of a Hermitian matrix —
// i.e. spectral projection — at gate level, and checks it against the
// eigendecomposition.
//
//   build/examples/qsvt_matrix_functions
#include <cmath>
#include <cstdio>
#include <iostream>

#include "blockenc/dense_embedding.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/blas.hpp"
#include "linalg/jacobi_eig.hpp"
#include "linalg/jacobi_svd.hpp"
#include "linalg/random_matrix.hpp"
#include "poly/chebyshev.hpp"
#include "qsim/statevector.hpp"
#include "qsp/symmetric_qsp.hpp"
#include "qsvt/qsvt_circuit.hpp"

int main() {
  using namespace mpqls;

  // A symmetric matrix with eigenvalues on both sides of zero, scaled
  // inside the unit disk so alpha = 1 block-encodes it directly.
  Xoshiro256 rng(12);
  auto G = linalg::random_gaussian(rng, 8, 8);
  linalg::Matrix<double> S(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) S(i, j) = 0.5 * (G(i, j) + G(j, i));
  }
  const double s_norm = linalg::norm2(S);
  linalg::Matrix<double> A(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) A(i, j) = 0.8 * S(i, j) / s_norm;
  }
  const auto eig = linalg::jacobi_eigensymmetric(A);
  std::printf("eigenvalues:");
  for (double l : eig.values) std::printf(" %.3f", l);
  std::printf("\n\n");

  // Odd polynomial ~ 0.9*sign(x) away from a gap around 0 (erf smoothing).
  const double sharpness = 18.0;
  auto target_fn = [sharpness](double x) { return 0.9 * std::erf(sharpness * x); };
  auto target = poly::cheb_interpolate(target_fn, 121)
                    .parity_projected(poly::Parity::kOdd)
                    .truncated(1e-12);
  std::printf("sign-polynomial degree: %d, max|P| = %.3f\n", target.degree(),
              target.max_abs_on(-1.0, 1.0));

  const auto phases = qsp::solve_symmetric_qsp(target);
  std::printf("QSP phases: %zu, residual %.2e (%s)\n\n", phases.phases.size(),
              phases.residual, phases.method.c_str());

  // Gate-level QSVT of sign(A) applied to a test vector.
  const auto be = blockenc::dense_embedding(A, 1.0);
  const auto qc = qsvt::build_qsvt_circuit(be, phases.phases);
  const auto v = linalg::random_unit_vector(rng, 8);

  qsim::Statevector<double> sv(qc.circuit.num_qubits());
  for (std::size_t i = 0; i < 8; ++i) sv[i] = v[i];
  sv[0] = v[0];
  sv.apply(qc.circuit);
  // Read the block amplitudes: r = 1, signal/ancilla = 0.
  linalg::Vector<double> result(8);
  const std::size_t r_bit = std::size_t{1} << qc.realpart_qubit;
  for (std::size_t i = 0; i < 8; ++i) {
    result[i] = sv[i | r_bit].real();
  }

  // Reference: 0.9 * sign(A) v via the eigendecomposition (the smooth sign
  // equals +-0.9 on eigenvalues outside the erf transition).
  linalg::Vector<double> expected(8, 0.0);
  for (std::size_t k = 0; k < 8; ++k) {
    double proj = 0.0;
    for (std::size_t i = 0; i < 8; ++i) proj += eig.vectors(i, k) * v[i];
    const double s = target_fn(eig.values[k]);
    for (std::size_t i = 0; i < 8; ++i) expected[i] += s * proj * eig.vectors(i, k);
  }

  TextTable table({"i", "QSVT [0.9 sign(A) v]_i", "eigendecomposition"});
  double max_err = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    table.add_row({std::to_string(i), fmt_fix(result[i], 6), fmt_fix(expected[i], 6)});
    max_err = std::fmax(max_err, std::fabs(result[i] - expected[i]));
  }
  table.print(std::cout);
  std::printf("\nmax deviation: %.2e — the identical phase/gadget pipeline that solves\n"
              "linear systems implements any other singular-value transform; only the\n"
              "Chebyshev target changes.\n",
              max_err);
  return max_err < 1e-6 ? 0 : 1;
}
