// Side-by-side: classical mixed-precision iterative refinement
// (Algorithm 1: LU in float/half, refinement in double — the CPU/GPU
// pattern) against the hybrid CPU/QPU variant (Algorithm 2: QSVT solves at
// accuracy eps_l). Both display the same geometric residual contraction;
// the contraction rate is u_l*kappa classically and eps_l*kappa
// quantumly — the exact correspondence the paper builds on.
//
//   build/examples/classical_vs_quantum_ir
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/half.hpp"
#include "linalg/iterative_refinement.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  Xoshiro256 rng(3);
  const double kappa = 10.0;
  const auto A = linalg::random_with_cond(rng, 16, kappa);
  const auto b = linalg::random_unit_vector(rng, 16);

  // Classical: LU in half (u_l ~ 9.8e-4) and single (u_l ~ 6e-8).
  linalg::ClassicalIrOptions copts;
  copts.target_scaled_residual = 1e-11;
  const auto half_run = linalg::classical_iterative_refinement<double, linalg::half>(A, b, copts);
  const auto single_run = linalg::classical_iterative_refinement<double, float>(A, b, copts);

  // Quantum: QSVT at eps_l = 1e-3.
  solver::QsvtIrOptions qopts;
  qopts.eps = 1e-11;
  qopts.qsvt.eps_l = 1e-3;
  qopts.qsvt.backend = qsvt::Backend::kGateLevel;
  const auto quantum_run = solver::solve_qsvt_ir(A, b, qopts);

  std::printf("Scaled residual per refinement iteration (kappa = %.0f):\n\n", kappa);
  TextTable table({"solve", "LU fp16 (u_l~1e-3)", "LU fp32 (u_l~6e-8)", "QSVT eps_l=1e-3"});
  const std::size_t rows = std::max({half_run.scaled_residuals.size(),
                                     single_run.scaled_residuals.size(),
                                     quantum_run.scaled_residuals.size()});
  auto cell = [](const std::vector<double>& v, std::size_t i) {
    return i < v.size() ? fmt_sci(v[i]) : std::string("-");
  };
  for (std::size_t i = 0; i < rows; ++i) {
    table.add_row({i == 0 ? "first" : std::to_string(i), cell(half_run.scaled_residuals, i),
                   cell(single_run.scaled_residuals, i),
                   cell(quantum_run.scaled_residuals, i)});
  }
  table.print(std::cout);

  std::printf("\nBoth the fp16 LU and the eps_l=1e-3 QSVT contract at ~1e-2 per step\n"
              "(u_l*kappa resp. eps_l*kappa); fp32 LU contracts much faster. The\n"
              "limiting accuracy is set by the double-precision residual (u), not by\n"
              "the low-precision solver — Section II-B of the paper.\n");
  return 0;
}
