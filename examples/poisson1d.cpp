// The paper's practical example (Section III-C4): solve the 1-D Poisson
// equation -u''(x) = f(x), u(0) = u(1) = 0, discretized by finite
// differences, using the gate-level tridiagonal block-encoding and the
// mixed-precision QSVT solver. Compares against the analytic solution for
// f(x) = pi^2 sin(pi x), whose exact solution is u(x) = sin(pi x).
//
//   build/examples/poisson1d
#include <cmath>
#include <cstdio>
#include <iostream>

#include "blockenc/tridiagonal.hpp"
#include "common/table.hpp"
#include "linalg/blas.hpp"
#include "linalg/random_matrix.hpp"
#include "resources/tcount.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  const std::size_t N = 16;  // interior grid points (n = 4 qubits)
  const double h = 1.0 / static_cast<double>(N + 1);

  // Right-hand side f(x) = pi^2 sin(pi x); exact solution u = sin(pi x).
  linalg::Vector<double> f(N), u_exact(N);
  for (std::size_t j = 0; j < N; ++j) {
    const double x = (j + 1) * h;
    f[j] = M_PI * M_PI * std::sin(M_PI * x);
    u_exact[j] = std::sin(M_PI * x);
  }

  // We solve the normalized system T u = h^2 f with T = tridiag(-1,2,-1);
  // the 1/h^2 is classical rescaling (exactly what the paper's
  // block-encoding of Section III-C4 does).
  const auto T = linalg::dirichlet_laplacian(N);
  linalg::Vector<double> rhs = f;
  for (auto& v : rhs) v *= h * h;

  std::printf("1-D Poisson, N = %zu interior points, kappa(T) = %.1f\n\n", N,
              linalg::dirichlet_laplacian_cond(N));

  solver::QsvtIrOptions options;
  options.eps = 1e-8;
  options.qsvt.eps_l = 2e-3;
  options.qsvt.backend = qsvt::Backend::kMatrixFunction;
  // Finite sampling (Remark 3 / the O(1/eps^2) sample term of Table I):
  // each solve reads the state from 2e6 shots, so a single QSVT solve is
  // noise-limited to ~1e-3 and the refinement loop must do the rest.
  options.qsvt.shots = 2'000'000;
  const auto report = solver::solve_qsvt_ir(T, rhs, options);

  TextTable conv({"solve", "scaled residual"});
  for (std::size_t i = 0; i < report.scaled_residuals.size(); ++i) {
    conv.add_row({i == 0 ? "first" : ("iter " + std::to_string(i)),
                  fmt_sci(report.scaled_residuals[i])});
  }
  conv.print(std::cout);
  std::printf("\nconverged: %s in %d iterations (bound %llu)\n", report.converged ? "yes" : "no",
              report.iterations,
              static_cast<unsigned long long>(report.theoretical_iteration_bound));

  // Discretization error vs the analytic solution (O(h^2)).
  double disc_err = 0.0;
  for (std::size_t j = 0; j < N; ++j) {
    disc_err = std::max(disc_err, std::fabs(report.x[j] - u_exact[j]));
  }
  std::printf("max |u_h - u_exact| = %.2e (finite-difference error, O(h^2) = %.1e)\n\n",
              disc_err, h * h);

  // Gate-level resources of the tridiagonal block-encoding (what one QSVT
  // iteration would cost on a fault-tolerant machine).
  const auto be = blockenc::tridiagonal_block_encoding(4);
  const auto tc = resources::circuit_tcount(be.circuit);
  std::printf("tridiagonal block-encoding: %u data + %u ancilla qubits, alpha = %.0f\n",
              be.n_data, be.n_anc, be.alpha);
  std::printf("  gates: %zu, T-count per application: %llu\n", be.circuit.size(),
              static_cast<unsigned long long>(tc.t_gates));
  std::printf("  per QSVT solve (degree %d): ~%llu T gates in block-encodings\n",
              report.poly_degree,
              static_cast<unsigned long long>(tc.t_gates * report.total_be_calls /
                                              std::max(1, report.iterations + 1)));
  return report.converged ? 0 : 1;
}
