// Quickstart: solve a random linear system with the mixed-precision
// QSVT + iterative-refinement solver (Algorithm 2 of the paper) and print
// the per-iteration scaled residuals next to the Theorem III.1 bound.
//
//   build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/random_matrix.hpp"
#include "solver/qsvt_ir.hpp"

int main() {
  using namespace mpqls;

  // A 16 x 16 random system with condition number 10 (the paper's Fig. 3
  // setting), solved to scaled residual 1e-11 using a QSVT that is only
  // ~1e-3 accurate per solve.
  Xoshiro256 rng(2025);
  const std::size_t n = 16;
  const double kappa = 10.0;
  const auto A = linalg::random_with_cond(rng, n, kappa);
  const auto b = linalg::random_unit_vector(rng, n);

  solver::QsvtIrOptions options;
  options.eps = 1e-11;
  options.qsvt.eps_l = 1e-3;
  options.qsvt.backend = qsvt::Backend::kGateLevel;

  std::printf("Solving a %zux%zu system, kappa = %.0f, with QSVT accuracy "
              "eps_l = %.0e and target eps = %.0e\n\n",
              n, n, kappa, options.qsvt.eps_l, options.eps);
  const auto report = solver::solve_qsvt_ir(A, b, options);

  TextTable table({"solve", "scaled residual", "mu", "success prob", "BE calls"});
  for (std::size_t i = 0; i < report.scaled_residuals.size(); ++i) {
    table.add_row({i == 0 ? "first" : ("iter " + std::to_string(i)),
                   fmt_sci(report.scaled_residuals[i]),
                   fmt_sci(report.solves[i].mu, 2),
                   fmt_fix(report.solves[i].success_probability, 4),
                   fmt_int(report.solves[i].be_calls)});
  }
  table.print(std::cout);

  std::printf("\nconverged:        %s after %d refinement iterations\n",
              report.converged ? "yes" : "no", report.iterations);
  std::printf("Theorem III.1:    <= %llu iterations (contraction eps_l*kappa = %.3g)\n",
              static_cast<unsigned long long>(report.theoretical_iteration_bound),
              report.eps_l_effective);
  std::printf("polynomial:       degree %d, measured accuracy %.2e\n", report.poly_degree,
              report.eps_l_effective);
  std::printf("total BE calls:   %llu\n",
              static_cast<unsigned long long>(report.total_be_calls));

  // Cross-check against a classical LU solve.
  const auto x_lu = linalg::lu_solve(A, b);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) err = std::max(err, std::fabs(report.x[i] - x_lu[i]));
  std::printf("max |x - x_LU|:   %.2e\n", err);
  return report.converged ? 0 : 1;
}
