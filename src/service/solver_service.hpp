// The batched solver service (the deployment shape of the paper's
// amortization argument): circuit synthesis — SVD, block-encoding,
// inversion polynomial, QSP phases — happens once per distinct matrix and
// is cached; every right-hand side after that pays only the per-solve
// cost. Independent solves run concurrently on a worker pool; whole jobs
// can be submitted asynchronously.
//
// Thread-safety: all public methods may be called from any thread. Cached
// contexts are shared immutably (see QsvtSolverContext), and every solve
// report carries its own CommLog, so concurrent jobs never interleave
// telemetry.
#pragma once

#include <cstdint>
#include <future>
#include <mutex>

#include "common/thread_pool.hpp"
#include "service/context_cache.hpp"
#include "service/request.hpp"

namespace mpqls::service {

struct ServiceOptions {
  std::size_t cache_capacity = 8;  ///< max resident prepared contexts
  /// Workers for per-RHS solves; 0 = hardware concurrency.
  std::size_t solve_threads = 0;
  /// Workers for submitted jobs (they orchestrate and wait on RHS solves,
  /// which run on the solve pool — two pools keep that wait deadlock-free).
  std::size_t job_threads = 2;
};

class SolverService {
 public:
  explicit SolverService(ServiceOptions options = {});

  /// Execute a job synchronously: prepare-or-fetch the context, then fan
  /// the right-hand sides out to the solve pool. Results are ordered like
  /// `request.rhs` and bitwise-deterministic for a fixed seed regardless
  /// of scheduling.
  SolveResult solve(const SolveRequest& request);

  /// Queue a whole job; returns immediately.
  std::future<SolveResult> submit(SolveRequest request);

  ContextCache::Stats cache_stats() const { return cache_.stats(); }

  struct Stats {
    std::uint64_t jobs = 0;
    std::uint64_t rhs_solved = 0;
    double solve_seconds_total = 0.0;  ///< summed per-RHS wall clock
  };
  Stats stats() const;

 private:
  ServiceOptions options_;
  ContextCache cache_;
  // The pools are declared last so they are destroyed FIRST (reverse
  // declaration order): ~ThreadPool drains queued jobs, which still touch
  // the cache and stats members above — those must outlive the pools.
  mutable std::mutex stats_mutex_;
  Stats stats_{};
  ThreadPool solve_pool_;
  ThreadPool job_pool_;
};

}  // namespace mpqls::service
