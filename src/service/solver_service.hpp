// The batched solver service (the deployment shape of the paper's
// amortization argument): circuit synthesis — SVD, block-encoding,
// inversion polynomial, QSP phases — happens once per distinct matrix and
// is cached; every right-hand side after that pays only the per-solve
// cost. Independent solves run concurrently on a worker pool; whole jobs
// can be submitted asynchronously, either as a future (submit) or through
// the admission-controlled job registry (submit_job) the network daemon
// polls.
//
// Thread-safety: all public methods may be called from any thread. Cached
// contexts are shared immutably (see QsvtSolverContext), and every solve
// report carries its own CommLog, so concurrent jobs never interleave
// telemetry.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "qsim/exec/dist/peer_channel.hpp"
#include "service/context_cache.hpp"
#include "service/request.hpp"
#include "store/matrix_store.hpp"

namespace mpqls::service {

struct ServiceOptions {
  std::size_t cache_capacity = 8;  ///< max resident prepared contexts
  /// Workers for per-RHS solves; 0 = hardware concurrency.
  std::size_t solve_threads = 0;
  /// Workers for submitted jobs (they orchestrate and wait on RHS solves,
  /// which run on the solve pool — two pools keep that wait deadlock-free).
  std::size_t job_threads = 2;
  /// Admission bound for submit_job: queued + running jobs beyond this are
  /// rejected (the daemon answers 429). 0 disables admission control.
  std::size_t max_pending_jobs = 64;
  /// Terminal job records kept for polling; the oldest finished records
  /// are dropped beyond this (a poll then sees 404, like any registry
  /// with finite memory).
  std::size_t retained_jobs = 1024;
  /// RHS lanes per execution panel: a job's right-hand sides are grouped
  /// into panels of this many lanes, each replaying the cached compiled
  /// program in ONE sweep (see qsim/exec/panel.hpp). Small powers of two
  /// vectorize best. Values < 2 disable panel execution; singleton,
  /// noisy and shot-seeded jobs always fall back to the scalar path.
  std::size_t panel_width = 8;
  /// Byte budget of the content-addressed matrix store (uploads via
  /// PUT /v1/matrices that jobs reference as {"matrix_ref": ...}). The
  /// store clamps this up so at least one max-dimension matrix fits.
  std::size_t matrix_store_bytes = 512u << 20;
  /// Slow-job flight recorder: full traces of the K worst finished jobs
  /// by total (queue + run) latency are retained for GET /v1/debug/slow.
  /// 0 disables the recorder.
  std::size_t slow_jobs_retained = 8;
  /// Execution backend for jobs that do not name one (top-level "backend"
  /// in the job JSON / QsvtOptions::exec_backend): a name registered in
  /// qsim::exec::backend_registry(). Must itself be in the enabled set.
  std::string default_backend = "reference";
  /// Backends this instance admits and advertises through /v1/healthz.
  /// Empty = every backend in the process registry. Jobs naming a backend
  /// outside this set are rejected (the daemon answers 400) — also the
  /// knob cluster tests use to give workers heterogeneous capabilities.
  std::vector<std::string> enabled_backends;
  /// Hard cap on the LOCAL statevector width (qubits) a gate-level job may
  /// allocate here — the single-node memory wall a shard group breaks: a
  /// W = 2^k group stores k of the circuit's qubits in the rank index, so
  /// each worker allocates width - k qubits. Jobs over the cap are
  /// rejected (the daemon answers 413 at admission, the service throws at
  /// solve time). 0 = unlimited.
  std::size_t max_statevector_qubits = 0;
  /// Transport factory for distributed jobs: maps the request's ShardSpec
  /// to this rank's PeerChannel. The daemon installs an HTTP channel
  /// (POSTs to each peer's /v1/shard/exchange); tests inject
  /// LocalPeerGroup endpoints. Unset = distributed jobs are rejected.
  std::function<std::shared_ptr<qsim::exec::dist::PeerChannel>(const ShardSpec&)> shard_channel;
};

/// Lifecycle of a registry job. Terminal states are kDone, kFailed and
/// kCancelled (only queued jobs can be cancelled — a running solve is
/// never interrupted mid-refinement).
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* to_string(JobState state);

/// Outcome of cancel_job. kNotCancellable covers running and terminal
/// jobs alike: in both cases the job's work can no longer be unspent.
enum class CancelOutcome { kCancelled, kNotFound, kNotCancellable };

/// Point-in-time snapshot of a submitted job. `result` is set iff kDone;
/// `error` is non-empty iff kFailed.
struct JobStatus {
  std::string job_id;
  JobState state = JobState::kQueued;
  std::string error;
  std::shared_ptr<const SolveResult> result;
  /// Output of the submit-time `render` callback (run once, on the job
  /// worker). Lets a front-end serve a terminal result repeatedly without
  /// re-serializing it per poll. Null when no renderer was given.
  std::shared_ptr<const std::string> rendered;
  double queue_seconds = 0.0;  ///< submit -> worker pickup (live while queued)
  double run_seconds = 0.0;    ///< worker pickup -> terminal (0 until then)
  /// The job's span buffer (every registry job has one — minted at
  /// submission when the caller supplied none). Readable while the job
  /// runs; GET /v1/jobs/{id}/trace serves it.
  trace::TraceContext trace;
};

class SolverService {
 public:
  explicit SolverService(ServiceOptions options = {});

  /// Execute a job synchronously: prepare-or-fetch the context, then fan
  /// the right-hand sides out to the solve pool. Results are ordered like
  /// `request.rhs` and bitwise-deterministic for a fixed seed regardless
  /// of scheduling.
  SolveResult solve(const SolveRequest& request);

  /// Queue a whole job; returns immediately.
  std::future<SolveResult> submit(SolveRequest request);

  /// Admission-controlled asynchronous submission: registers the job,
  /// queues it on the job pool, and returns its registry id — or nullopt
  /// when queued + running jobs have reached max_pending_jobs (the
  /// backpressure signal; nothing was enqueued). Never blocks on a solve.
  std::optional<std::string> submit_job(SolveRequest request,
                                        trace::TraceContext trace = {});

  /// Deferred-construction variant: `make_request` runs on the job
  /// worker, so expensive request materialization (scenario matrix
  /// generation from a network body) never runs on the caller's thread.
  /// If it throws, the job lands in kFailed with the exception message —
  /// the same place solve failures land. `render`, when given, runs once
  /// on the worker after a successful solve; its output is snapshotted as
  /// JobStatus::rendered (e.g. the serialized result a poll endpoint
  /// serves verbatim). `trace` is the job's span buffer — the daemon
  /// passes the one it minted (or adopted) at the front door; when null,
  /// the service mints its own so every job is traceable.
  std::optional<std::string> submit_job(
      std::function<SolveRequest()> make_request,
      std::function<std::string(const SolveResult&)> render = {},
      trace::TraceContext trace = {});

  /// Snapshot of a submitted job; nullopt for ids never issued or already
  /// pruned from the retained-results window.
  std::optional<JobStatus> job_status(const std::string& job_id) const;

  /// Cancel a still-queued job: it transitions to kCancelled and the
  /// worker skips it on pickup. Running and terminal jobs are not
  /// cancellable; unknown/pruned ids report kNotFound.
  CancelOutcome cancel_job(const std::string& job_id);

  /// Snapshots of the most recently submitted jobs (newest first), capped
  /// at `limit` — the bounded listing GET /v1/jobs serves.
  std::vector<JobStatus> list_jobs(std::size_t limit) const;

  /// Block until every submit_job()-accepted job reached a terminal
  /// state, or the timeout expired. Returns true when idle — the drain
  /// barrier the daemon uses on SIGTERM.
  bool wait_idle(std::chrono::milliseconds timeout) const;

  /// Run an arbitrary task on the job pool (the same workers submit_job
  /// uses). Deterministic way for tests and maintenance hooks to occupy
  /// workers: registry jobs submitted afterwards stay kQueued behind it.
  std::future<void> run_on_job_pool(std::function<void()> fn);

  ContextCache::Stats cache_stats() const { return cache_.stats(); }

  /// The content-addressed matrix store by-ref submissions resolve
  /// against (uploads, admission-time lookups, metrics).
  store::MatrixStore& matrix_store() { return matrix_store_; }
  const store::MatrixStore& matrix_store() const { return matrix_store_; }

  struct Stats {
    std::uint64_t jobs = 0;
    std::uint64_t rhs_solved = 0;
    double solve_seconds_total = 0.0;    ///< summed per-RHS wall clock
    double prepare_seconds_total = 0.0;  ///< summed get_or_prepare wall clock
    /// Compiled-program telemetry, accumulated on cache misses (one
    /// compile per prepared context; hits replay without recompiling).
    double program_compile_seconds_total = 0.0;
    std::uint64_t program_ops_total = 0;
    /// Panel-execution telemetry: program sweeps that carried a panel of
    /// RHS lanes, and how many lanes in total. Mean lane occupancy is
    /// panel_lanes_total / (panels_executed * panel_width).
    std::uint64_t panels_executed = 0;
    std::uint64_t panel_lanes_total = 0;
    /// Precision-tier telemetry, summed over every solved RHS report
    /// (indexed by solver::kTierHalf/kTierSingle/kTierDouble). Fixed-
    /// precision jobs land entirely in their one tier; adaptive jobs
    /// spread across the escalation schedule.
    std::array<std::uint64_t, 3> tier_solves_total{};
    std::array<std::uint64_t, 3> tier_iterations_total{};
    std::uint64_t precision_switches_total = 0;
    /// Per-execution-backend telemetry, keyed by the RESOLVED backend name
    /// (an empty request name lands under the configured default).
    /// `replays` counts compiled-program applications: one per QSVT solve
    /// in every RHS report, so refinement iterations and adaptive
    /// escalations all show up in the per-backend load picture.
    struct BackendStats {
      std::uint64_t jobs = 0;
      std::uint64_t rhs_solved = 0;
      std::uint64_t replays = 0;
      std::uint64_t panels = 0;  ///< panel sweeps executed on this backend
    };
    std::map<std::string, BackendStats> backends;
    /// Distributed shard-group telemetry (the mpqls_dist_* series),
    /// accumulated from each dist job's session stats.
    struct DistStats {
      std::uint64_t jobs = 0;             ///< dist jobs this rank served
      std::uint64_t solves = 0;           ///< QSVT replays across dist jobs
      std::uint64_t exchange_rounds = 0;  ///< pairwise exchange rounds paid
      std::uint64_t bytes_moved = 0;      ///< amplitude bytes shipped
      double exchange_seconds = 0.0;
      double local_seconds = 0.0;
      std::uint64_t plan_naive_rounds = 0;      ///< rounds before scheduling
      std::uint64_t plan_scheduled_rounds = 0;  ///< rounds as executed
    };
    DistStats dist;
  };
  Stats stats() const;

  /// The backend names this instance admits, in process-registry order:
  /// the intersection of the registry with options.enabled_backends (the
  /// whole registry when that list is empty). What /v1/healthz advertises.
  std::vector<std::string> enabled_backends() const;

  /// Resolve a job's requested backend (empty = configured default)
  /// against the enabled set. Throws ContractError for names that are
  /// unknown to the registry or disabled here — the daemon calls this at
  /// admission so such jobs die with a 400 instead of a failed job.
  std::string resolve_backend(const std::string& requested) const;

  /// Registry accounting for the async path (all counters cumulative,
  /// depths instantaneous).
  struct QueueStats {
    std::size_t queued = 0;
    std::size_t running = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;  ///< admission-control refusals
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;  ///< queued jobs cancelled before pickup
    std::size_t max_pending = 0;  ///< 0 = unbounded
  };
  QueueStats queue_stats() const;

  /// Per-stage latency histograms, all rendered under one
  /// `mpqls_latency_seconds{stage=...}` family by the daemon. `queue`,
  /// `render` and `total` are observed on the submit_job path only;
  /// `prepare` and `solve` cover every solve() including synchronous
  /// callers.
  struct StageLatency {
    Histogram queue;    ///< submit -> worker pickup
    Histogram prepare;  ///< get_or_prepare (context fetch or compile)
    Histogram solve;    ///< summed per-RHS refinement wall clock per job
    Histogram render;   ///< result serialization on the job worker
    Histogram total;    ///< submit -> terminal (queue + run)
  };
  const StageLatency& stage_latency() const { return stage_latency_; }

  /// The K-worst-jobs-by-latency recorder GET /v1/debug/slow serves.
  const trace::FlightRecorder& flight_recorder() const { return flight_recorder_; }

 private:
  struct JobRecord;

  void finish_job(const std::shared_ptr<JobRecord>& record, JobState final_state,
                  std::shared_ptr<const SolveResult> result,
                  std::shared_ptr<const std::string> rendered, std::string error);
  void prune_terminal_locked();
  JobStatus snapshot_locked(const JobRecord& record) const;

  ServiceOptions options_;
  ContextCache cache_;
  store::MatrixStore matrix_store_;
  // The pools are declared last so they are destroyed FIRST (reverse
  // declaration order): ~ThreadPool drains queued jobs, which still touch
  // the cache and stats members above — those must outlive the pools.
  mutable std::mutex stats_mutex_;
  Stats stats_{};
  StageLatency stage_latency_{};
  trace::FlightRecorder flight_recorder_;

  mutable std::mutex registry_mutex_;
  mutable std::condition_variable registry_cv_;  ///< signalled on terminal transitions
  std::unordered_map<std::string, std::shared_ptr<JobRecord>> registry_;
  std::deque<std::string> terminal_order_;  ///< finished ids, oldest first (pruning)
  QueueStats queue_stats_{};
  std::uint64_t next_job_number_ = 1;

  ThreadPool solve_pool_;
  ThreadPool job_pool_;
};

}  // namespace mpqls::service
