#include "service/context_cache.hpp"

#include <optional>

namespace mpqls::service {

ContextCache::ContextCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

ContextCache::ContextPtr ContextCache::get_or_prepare(const linalg::Matrix<double>& A,
                                                      const qsvt::QsvtOptions& options,
                                                      bool* cache_hit) {
  return get_or_prepare(fingerprint(A, options), A, options, cache_hit);
}

ContextCache::ContextPtr ContextCache::get_or_prepare(const Fingerprint& fp,
                                                      const linalg::Matrix<double>& A,
                                                      const qsvt::QsvtOptions& options,
                                                      bool* cache_hit) {
  std::promise<ContextPtr> promise;
  std::uint64_t my_id = 0;
  std::optional<Future> existing;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(fp);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      existing = it->second->future;
    } else {
      ++misses_;
      my_id = next_entry_id_++;
      Entry e;
      e.fp = fp;
      e.id = my_id;
      e.future = promise.get_future().share();
      lru_.push_front(std::move(e));
      index_[fp] = lru_.begin();
      while (index_.size() > capacity_) {
        index_.erase(lru_.back().fp);
        lru_.pop_back();
        ++evictions_;
      }
    }
  }
  if (cache_hit != nullptr) *cache_hit = existing.has_value();

  // Joining an existing entry: block outside the lock — the preparation
  // may still be in flight on another thread. A failed preparation
  // rethrows here too.
  if (existing) return existing->get();

  // We own the preparation; run it outside the lock so other keys stay
  // serviceable meanwhile.
  try {
    auto ctx = qsvt::prepare_qsvt_solver_shared(A, options);
    promise.set_value(ctx);
    return ctx;
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      // Drop the poisoned entry (matched by id — after an eviction a
      // concurrent request may have inserted a fresh entry for the same
      // key) so later requests re-prepare; waiters already holding the
      // future see the exception.
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = index_.find(fp);
      if (it != index_.end() && it->second->id == my_id) {
        lru_.erase(it->second);
        index_.erase(it);
      }
    }
    throw;
  }
}

ContextCache::Stats ContextCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {hits_, misses_, evictions_, index_.size(), capacity_};
}

bool ContextCache::contains(const Fingerprint& fp) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.count(fp) > 0;
}

void ContextCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace mpqls::service
