// Cache key for prepared QSVT solver contexts: a content hash of the
// matrix entries plus a hash of every QsvtOptions field that influences
// preparation. Two requests share a cached context exactly when both
// hashes agree — differing eps_l, backend, encoding, shots or noise all
// fingerprint differently.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "linalg/matrix.hpp"
#include "qsvt/solve.hpp"

namespace mpqls::service {

struct Fingerprint {
  std::uint64_t matrix_hash = 0;
  std::uint64_t options_hash = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// 64-bit FNV-1a over the matrix dimensions and row-major entries.
std::uint64_t hash_matrix(const linalg::Matrix<double>& A);

/// Hash of all preparation-relevant QsvtOptions fields.
std::uint64_t hash_options(const qsvt::QsvtOptions& options);

Fingerprint fingerprint(const linalg::Matrix<double>& A, const qsvt::QsvtOptions& options);

/// "mtx:0123abcd.../opt:89ef..." — for logs and JSON traces.
std::string to_string(const Fingerprint& fp);

/// For unordered_map keys.
struct FingerprintHasher {
  std::size_t operator()(const Fingerprint& fp) const {
    return static_cast<std::size_t>(fp.matrix_hash ^ (fp.options_hash * 0x9E3779B97F4A7C15ull));
  }
};

}  // namespace mpqls::service
