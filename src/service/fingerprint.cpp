#include "service/fingerprint.hpp"

#include <cstdio>

#include "common/hash.hpp"

namespace mpqls::service {

std::uint64_t hash_matrix(const linalg::Matrix<double>& A) {
  Fnv1a h;
  h.u64(A.rows()).u64(A.cols());
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (std::size_t j = 0; j < A.cols(); ++j) h.f64(A(i, j));
  }
  return h.digest();
}

std::uint64_t hash_options(const qsvt::QsvtOptions& options) {
  Fnv1a h;
  h.u64(static_cast<std::uint64_t>(options.backend));
  h.u64(static_cast<std::uint64_t>(options.precision));
  h.u64(static_cast<std::uint64_t>(options.poly_method));
  h.u64(static_cast<std::uint64_t>(options.encoding));
  h.f64(options.eps_l);
  h.f64(options.kappa);
  h.f64(options.kappa_margin);
  h.u64(options.shots);
  h.u64(options.seed);
  h.f64(options.noise.depolarizing_per_gate);
  h.f64(options.noise.damping_per_gate);
  h.i64(options.qsp_options.max_fpi_iterations);
  h.i64(options.qsp_options.max_newton_iterations);
  h.f64(options.qsp_options.tolerance);
  h.u64(options.qsp_options.enable_newton ? 1 : 0);
  h.u64(options.qsp_options.enable_lbfgs ? 1 : 0);
  h.f64(options.qsp_options.lbfgs_threshold);
  h.i64(options.qsp_options.max_lbfgs_iterations);
  // The execution backend is part of the context identity: the prepared
  // context holds a backend handle (and its per-program plans), so jobs on
  // different backends must not share one. The service resolves an empty
  // name to its configured default BEFORE hashing, keeping "default" and
  // an explicit request for the same name on one cached context.
  h.str(options.exec_backend);
  return h.digest();
}

Fingerprint fingerprint(const linalg::Matrix<double>& A, const qsvt::QsvtOptions& options) {
  return {hash_matrix(A), hash_options(options)};
}

std::string to_string(const Fingerprint& fp) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "mtx:%016llx/opt:%016llx",
                static_cast<unsigned long long>(fp.matrix_hash),
                static_cast<unsigned long long>(fp.options_hash));
  return buf;
}

}  // namespace mpqls::service
