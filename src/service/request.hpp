// Typed job descriptions for the solver service: one request = one matrix
// plus any number of right-hand sides solved against the same prepared
// (and cached) QSVT context. Results carry the full per-RHS QsvtIrReport
// with its own CommLog, plus service-level telemetry: cache behaviour and
// wall-clock per phase.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "service/fingerprint.hpp"
#include "solver/qsvt_ir.hpp"

namespace mpqls::service {

struct SolveRequest {
  std::string id;                           ///< caller-chosen job label
  linalg::Matrix<double> A;                 ///< square system matrix
  std::vector<linalg::Vector<double>> rhs;  ///< >= 1 right-hand sides
  solver::QsvtIrOptions options;            ///< eps, refinement + QSVT knobs
};

/// Outcome for one right-hand side of a request.
struct RhsResult {
  solver::QsvtIrReport report;  ///< includes this solve's own CommLog
  double solve_seconds = 0.0;   ///< wall clock of the refinement loop
};

struct SolveResult {
  std::string id;
  Fingerprint fp;
  bool cache_hit = false;         ///< context served from the cache
  double prepare_seconds = 0.0;   ///< time spent in get_or_prepare (~0 on a hit)
  double total_seconds = 0.0;     ///< whole-job wall clock
  std::vector<RhsResult> solves;  ///< one per request rhs, same order
  bool all_converged = false;
  /// Panel-execution telemetry (0/0 when the job ran the scalar path):
  /// compiled-program panel sweeps and the RHS lanes they carried.
  std::uint64_t panels_executed = 0;
  std::uint64_t panel_lanes = 0;
};

}  // namespace mpqls::service
