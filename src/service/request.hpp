// Typed job descriptions for the solver service: one request = one matrix
// plus any number of right-hand sides solved against the same prepared
// (and cached) QSVT context. Results carry the full per-RHS QsvtIrReport
// with its own CommLog, plus service-level telemetry: cache behaviour and
// wall-clock per phase.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "service/fingerprint.hpp"
#include "solver/qsvt_ir.hpp"

namespace mpqls::service {

/// Looks up a matrix by content hash (see store::MatrixStore). Returns
/// nullptr on a miss, or throws a caller-specific miss exception the
/// deserializers propagate unchanged (the daemon maps it to a 404).
using MatrixResolver =
    std::function<std::shared_ptr<const linalg::Matrix<double>>(std::uint64_t)>;

struct SolveRequest {
  std::string id;                           ///< caller-chosen job label
  linalg::Matrix<double> A;                 ///< square system matrix (inline form)
  std::vector<linalg::Vector<double>> rhs;  ///< >= 1 right-hand sides
  solver::QsvtIrOptions options;            ///< eps, refinement + QSVT knobs

  /// Client-supplied trace id (zero = none): the body-level twin of the
  /// `x-mpqls-trace` header, carried by wire-v3 frames and the optional
  /// JSON "trace_id" field so a binary submit keeps its distributed
  /// trace identity without HTTP header plumbing. The runtime span sink
  /// travels separately, in `options.trace`.
  trace::TraceId trace_id{};

  /// By-reference form: the content hash (service::hash_matrix) of a
  /// matrix uploaded to the daemon's store. Nonzero means `A` is empty
  /// and the matrix travels as `shared_A` once resolved — a store entry
  /// shared with the cache instead of a per-job 128 MiB copy.
  std::uint64_t matrix_ref = 0;
  std::shared_ptr<const linalg::Matrix<double>> shared_A;

  /// The system matrix regardless of how it arrived.
  const linalg::Matrix<double>& matrix() const { return shared_A ? *shared_A : A; }
};

/// Outcome for one right-hand side of a request.
struct RhsResult {
  solver::QsvtIrReport report;  ///< includes this solve's own CommLog
  double solve_seconds = 0.0;   ///< wall clock of the refinement loop
};

struct SolveResult {
  std::string id;
  Fingerprint fp;
  bool cache_hit = false;         ///< context served from the cache
  double prepare_seconds = 0.0;   ///< time spent in get_or_prepare (~0 on a hit)
  double total_seconds = 0.0;     ///< whole-job wall clock
  std::vector<RhsResult> solves;  ///< one per request rhs, same order
  bool all_converged = false;
  /// Panel-execution telemetry (0/0 when the job ran the scalar path):
  /// compiled-program panel sweeps and the RHS lanes they carried.
  std::uint64_t panels_executed = 0;
  std::uint64_t panel_lanes = 0;
  /// The execution backend the job actually ran on — the resolved name,
  /// never empty on a fresh result (a request's empty exec_backend becomes
  /// the service's configured default here).
  std::string backend;
};

}  // namespace mpqls::service
