// Typed job descriptions for the solver service: one request = one matrix
// plus any number of right-hand sides solved against the same prepared
// (and cached) QSVT context. Results carry the full per-RHS QsvtIrReport
// with its own CommLog, plus service-level telemetry: cache behaviour and
// wall-clock per phase.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "service/fingerprint.hpp"
#include "solver/qsvt_ir.hpp"

namespace mpqls::service {

/// Looks up a matrix by content hash (see store::MatrixStore). Returns
/// nullptr on a miss, or throws a caller-specific miss exception the
/// deserializers propagate unchanged (the daemon maps it to a 404).
using MatrixResolver =
    std::function<std::shared_ptr<const linalg::Matrix<double>>(std::uint64_t)>;

/// One rank's place in a distributed shard-group solve: the coordinator
/// fans a dist job out to W = 2^k workers, giving each the same group id
/// and peer list but its own rank. world == 1 (the default) means a
/// plain single-node job. Carried in the JSON body only — binary-frame
/// submits stay single-node (the coordinator rejects frame dist submits
/// with a 400 rather than re-encoding per rank).
struct ShardSpec {
  std::uint64_t group = 0;         ///< coordinator-minted shard-group id
  std::uint32_t rank = 0;          ///< this worker's rank, < world
  std::uint32_t world = 1;         ///< group size, a power of two
  std::vector<std::string> peers;  ///< "host:port" per rank, size == world

  bool distributed() const { return world > 1; }
};

struct SolveRequest {
  std::string id;                           ///< caller-chosen job label
  linalg::Matrix<double> A;                 ///< square system matrix (inline form)
  std::vector<linalg::Vector<double>> rhs;  ///< >= 1 right-hand sides
  solver::QsvtIrOptions options;            ///< eps, refinement + QSVT knobs
  ShardSpec shard;                          ///< distributed placement (default: single-node)

  /// Client-supplied trace id (zero = none): the body-level twin of the
  /// `x-mpqls-trace` header, carried by wire-v3 frames and the optional
  /// JSON "trace_id" field so a binary submit keeps its distributed
  /// trace identity without HTTP header plumbing. The runtime span sink
  /// travels separately, in `options.trace`.
  trace::TraceId trace_id{};

  /// By-reference form: the content hash (service::hash_matrix) of a
  /// matrix uploaded to the daemon's store. Nonzero means `A` is empty
  /// and the matrix travels as `shared_A` once resolved — a store entry
  /// shared with the cache instead of a per-job 128 MiB copy.
  std::uint64_t matrix_ref = 0;
  std::shared_ptr<const linalg::Matrix<double>> shared_A;

  /// The system matrix regardless of how it arrived.
  const linalg::Matrix<double>& matrix() const { return shared_A ? *shared_A : A; }
};

/// Outcome for one right-hand side of a request.
struct RhsResult {
  solver::QsvtIrReport report;  ///< includes this solve's own CommLog
  double solve_seconds = 0.0;   ///< wall clock of the refinement loop
};

struct SolveResult {
  std::string id;
  Fingerprint fp;
  bool cache_hit = false;         ///< context served from the cache
  double prepare_seconds = 0.0;   ///< time spent in get_or_prepare (~0 on a hit)
  double total_seconds = 0.0;     ///< whole-job wall clock
  std::vector<RhsResult> solves;  ///< one per request rhs, same order
  bool all_converged = false;
  /// Panel-execution telemetry (0/0 when the job ran the scalar path):
  /// compiled-program panel sweeps and the RHS lanes they carried.
  std::uint64_t panels_executed = 0;
  std::uint64_t panel_lanes = 0;
  /// The execution backend the job actually ran on — the resolved name,
  /// never empty on a fresh result (a request's empty exec_backend becomes
  /// the service's configured default here).
  std::string backend;
  /// Distributed-execution telemetry, all zero for single-node jobs:
  /// this rank's shard placement and what the job's exchange plan cost.
  /// JSON-only (emitted when shard_world > 1); the binary result codec
  /// does not carry it because frame submits are single-node.
  std::uint32_t shard_rank = 0;
  std::uint32_t shard_world = 0;
  std::uint64_t dist_exchange_rounds = 0;
  std::uint64_t dist_bytes_moved = 0;
  std::uint64_t dist_plan_naive_rounds = 0;
  std::uint64_t dist_plan_scheduled_rounds = 0;
};

}  // namespace mpqls::service
