// LRU cache of prepared QSVT solver contexts, keyed by matrix/options
// fingerprint. Concurrency-aware: when two threads request the same
// uncached matrix, only one runs prepare_qsvt_solver — the other blocks on
// the in-flight preparation and shares its result. Entries are
// shared_ptr<const Context>, so an eviction never invalidates a context a
// running solve still holds.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "linalg/matrix.hpp"
#include "qsvt/solve.hpp"
#include "service/fingerprint.hpp"

namespace mpqls::service {

class ContextCache {
 public:
  using ContextPtr = std::shared_ptr<const qsvt::QsvtSolverContext>;

  /// `capacity` = max resident contexts (clamped to at least 1).
  explicit ContextCache(std::size_t capacity);

  /// Return the cached context for (A, options), preparing it on a miss.
  /// `cache_hit` (optional) reports whether preparation was skipped —
  /// joining an in-flight preparation started by another thread counts as
  /// a hit. Throws whatever prepare_qsvt_solver throws; a failed
  /// preparation is not cached.
  ContextPtr get_or_prepare(const linalg::Matrix<double>& A, const qsvt::QsvtOptions& options,
                            bool* cache_hit = nullptr);

  /// Variant for callers that already computed the fingerprint (the hash
  /// is an O(n^2) pass over the matrix — no need to pay it twice).
  ContextPtr get_or_prepare(const Fingerprint& fp, const linalg::Matrix<double>& A,
                            const qsvt::QsvtOptions& options, bool* cache_hit = nullptr);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };
  Stats stats() const;

  bool contains(const Fingerprint& fp) const;
  void clear();

 private:
  using Future = std::shared_future<ContextPtr>;

  struct Entry {
    Fingerprint fp;
    std::uint64_t id = 0;  ///< distinguishes re-inserted entries for the same key
    Future future;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Fingerprint, std::list<Entry>::iterator, FingerprintHasher> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t next_entry_id_ = 1;
};

}  // namespace mpqls::service
