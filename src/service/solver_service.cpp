#include "service/solver_service.hpp"

#include <algorithm>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "qsim/exec/backend/backend.hpp"
#include "qsvt/dist_solve.hpp"

namespace mpqls::service {

namespace {

std::size_t default_solve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : hw;
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    default: return "failed";
  }
}

/// Registry entry. Mutable fields are guarded by registry_mutex_; workers
/// hold a shared_ptr so pruning a record never races a running job.
struct SolverService::JobRecord {
  std::string job_id;
  std::uint64_t seq = 0;  ///< submission order, for newest-first listing
  JobState state = JobState::kQueued;
  std::string error;
  std::shared_ptr<const SolveResult> result;
  std::shared_ptr<const std::string> rendered;
  Timer since_submit;   ///< running clock, read while queued
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  Timer since_start;    ///< re-armed when the worker picks the job up
  trace::TraceContext trace;      ///< span buffer, never null once registered
  std::uint64_t queue_span = 0;   ///< open "queue" span, ended at pickup/cancel
};

SolverService::SolverService(ServiceOptions options)
    : options_(options),
      cache_(options.cache_capacity),
      matrix_store_(options.matrix_store_bytes),
      flight_recorder_(options.slow_jobs_retained),
      solve_pool_(default_solve_threads(options.solve_threads)),
      job_pool_(options.job_threads) {
  queue_stats_.max_pending = options.max_pending_jobs;
}

SolveResult SolverService::solve(const SolveRequest& request) {
  expects(!request.rhs.empty(), "service: request needs at least one right-hand side");

  // By-ref requests that reached us unresolved (direct service callers —
  // the daemon resolves at admission so it can answer 404 synchronously)
  // are looked up here; a cold ref fails the job with the miss message.
  SolveRequest resolved;
  const SolveRequest* req = &request;
  if (request.matrix_ref != 0 && !request.shared_A) {
    resolved = request;
    resolved.shared_A = matrix_store_.get(request.matrix_ref);
    if (!resolved.shared_A) throw store::MatrixRefMiss(request.matrix_ref);
    req = &resolved;
  }
  const linalg::Matrix<double>& A = req->matrix();
  expects(A.rows() == A.cols(), "service: square matrix required");
  for (const auto& b : req->rhs) {
    expects(b.size() == A.rows(), "service: rhs dimension mismatch");
  }

  // Resolve the execution backend BEFORE fingerprinting: an empty name
  // becomes the configured default here, so default-routed jobs and jobs
  // that name the default explicitly share one cached context. Unknown or
  // disabled names throw (the daemon pre-validates at admission and
  // answers 400; direct callers get the same contract message).
  solver::QsvtIrOptions options = req->options;
  options.qsvt.exec_backend = resolve_backend(options.qsvt.exec_backend);

  Timer total;
  SolveResult result;
  result.id = request.id;
  result.backend = options.qsvt.exec_backend;
  // A by-ref submit skips the O(n^2) matrix hash: the ref IS that hash.
  result.fp.matrix_hash = req->matrix_ref != 0 ? req->matrix_ref : hash_matrix(A);
  result.fp.options_hash = hash_options(options.qsvt);

  Timer prep;
  bool hit = false;
  const auto ctx = [&] {
    MPQLS_TRACE_SPAN(prep_span, options.trace, "prepare", options.trace_span);
    auto prepared = cache_.get_or_prepare(result.fp, A, options.qsvt, &hit);
    prep_span.attr("cache", hit ? "hit" : "miss");
    return prepared;
  }();
  result.cache_hit = hit;
  result.prepare_seconds = prep.seconds();
  stage_latency_.prepare.observe(result.prepare_seconds);

  // The single-node memory wall: a gate-level job allocates a 2^width
  // statevector, of which a W = 2^k shard group stores only width - k
  // qubits per rank. The exact compiled width is known here; the daemon
  // additionally estimates it at admission so an over-cap submit dies
  // with a 413 instead of a failed job.
  if (options_.max_statevector_qubits != 0 &&
      options.qsvt.backend == qsvt::Backend::kGateLevel && ctx->circuit.has_value()) {
    std::size_t local_width = ctx->circuit->circuit.num_qubits();
    for (std::uint32_t w = req->shard.world; w > 1 && local_width > 0; w >>= 1) --local_width;
    expects(local_width <= options_.max_statevector_qubits,
            "service: statevector exceeds this worker's qubit cap "
            "(submit to a larger shard group)");
  }

  // Panel-eligible jobs group their right-hand sides into panels of
  // `panel_width` lanes: each group replays the cached program in one
  // sweep (lockstep refinement, see solve_qsvt_ir_batch). Singleton jobs
  // gain nothing from a one-lane panel; noise trajectories need per-gate
  // injection the panel kernels cannot do; and shot-seeded readouts keep
  // the scalar path so their per-solve RNG consumption stays identical to
  // historical results. Those all fan out one task per RHS as before.
  const auto& qsvt_opts = options.qsvt;
  const bool noisy = qsvt_opts.noise.depolarizing_per_gate > 0.0 ||
                     qsvt_opts.noise.damping_per_gate > 0.0;
  // Adaptive-precision jobs run most of their sweeps on the half/single
  // tiers, whose lanes cost roughly half a double lane, so their panels
  // carry twice the configured width at the same per-sweep footprint.
  const std::size_t panel_width = qsvt_opts.precision == qsvt::QpuPrecision::kAdaptive
                                      ? options_.panel_width * 2
                                      : options_.panel_width;
  const bool panelize = panel_width >= 2 && req->rhs.size() >= 2 &&
                        qsvt_opts.backend == qsvt::Backend::kGateLevel && !noisy &&
                        qsvt_opts.shots == 0;

  struct GroupOutcome {
    std::vector<RhsResult> results;
    solver::BatchSolveStats stats;
  };
  const SolveRequest& active = *req;  ///< what the queued tasks reference
  std::vector<std::future<GroupOutcome>> pending;
  std::shared_ptr<qsvt::dist::DistSolveSession> dist_session;
  if (active.shard.distributed()) {
    // Distributed shard-group job: every rank of the group must issue the
    // identical sequence of exchanges, so the whole RHS batch runs as ONE
    // lockstep solve_qsvt_ir_batch on this thread — no panel chunking, no
    // solve-pool fan-out (either would let rank-local scheduling reorder
    // exchanges and deadlock the group). The adaptive refinement loop
    // inside stays in lockstep for free: every rank sees the identical
    // allreduced outcomes and takes the identical tier decisions.
    expects(static_cast<bool>(options_.shard_channel),
            "service: no shard transport configured on this instance");
    expects(qsvt_opts.backend == qsvt::Backend::kGateLevel,
            "service: distributed jobs are gate-level only");
    expects(!noisy, "service: noise trajectories are single-node only");
    expects(qsvt_opts.shots == 0, "service: shot sampling is single-node only");
    std::uint32_t world_log2 = 0;
    while ((1u << world_log2) < active.shard.world) ++world_log2;
    dist_session = std::make_shared<qsvt::dist::DistSolveSession>(qsvt::dist::DistConfig{
        active.shard.rank, world_log2, options_.shard_channel(active.shard)});

    std::promise<GroupOutcome> ready;
    pending.push_back(ready.get_future());
    try {
      Timer t;
      GroupOutcome out;
      MPQLS_TRACE_SPAN(dist_span, options.trace, "dist_batch", options.trace_span);
      dist_span.attr("rank", static_cast<std::uint64_t>(active.shard.rank));
      dist_span.attr("world", static_cast<std::uint64_t>(active.shard.world));
      solver::QsvtIrOptions opts = options;
      opts.dist = dist_session;
      if (dist_span) opts.trace_span = dist_span.id();
      auto reports = solver::solve_qsvt_ir_batch(
          *ctx, std::span<const linalg::Vector<double>>(active.rhs), opts, &out.stats);
      const double per_rhs_seconds = t.seconds() / static_cast<double>(reports.size());
      out.results.reserve(reports.size());
      for (auto& rep : reports) out.results.push_back({std::move(rep), per_rhs_seconds});
      ready.set_value(std::move(out));
    } catch (...) {
      ready.set_exception(std::current_exception());
    }
  } else if (panelize) {
    for (std::size_t begin = 0; begin < active.rhs.size(); begin += panel_width) {
      const std::size_t count = std::min(panel_width, active.rhs.size() - begin);
      pending.push_back(solve_pool_.submit([ctx, &active, &options, begin, count] {
        Timer t;
        GroupOutcome out;
        // Each panel group gets its own span; the replay rounds recorded
        // inside solve_qsvt_ir_batch nest under it via the options copy.
        MPQLS_TRACE_SPAN(panel_span, options.trace, "panel", options.trace_span);
        panel_span.attr("lanes", static_cast<std::uint64_t>(count));
        panel_span.attr("rhs_begin", static_cast<std::uint64_t>(begin));
        solver::QsvtIrOptions opts = options;
        if (panel_span) opts.trace_span = panel_span.id();
        auto reports = solver::solve_qsvt_ir_batch(
            *ctx,
            std::span<const linalg::Vector<double>>(active.rhs.data() + begin, count),
            opts, &out.stats);
        // The panel's wall clock is shared work; report it amortized so
        // per-RHS and job-level timings stay additive.
        const double per_rhs_seconds = t.seconds() / static_cast<double>(count);
        out.results.reserve(reports.size());
        for (auto& rep : reports) out.results.push_back({std::move(rep), per_rhs_seconds});
        return out;
      }));
    }
  } else {
    for (const auto& b : request.rhs) {
      pending.push_back(solve_pool_.submit([ctx, &b, &options] {
        Timer t;
        GroupOutcome out;
        MPQLS_TRACE_SPAN(rhs_span, options.trace, "rhs_solve", options.trace_span);
        solver::QsvtIrOptions opts = options;
        if (rhs_span) opts.trace_span = rhs_span.id();
        RhsResult r;
        r.report = solver::solve_qsvt_ir(*ctx, b, opts);
        r.solve_seconds = t.seconds();
        out.results.push_back(std::move(r));
        return out;
      }));
    }
  }

  result.all_converged = true;
  result.solves.reserve(request.rhs.size());
  double solve_seconds = 0.0;
  // Drain every future even if one throws: the queued tasks hold
  // references into `request`, so none may outlive this frame.
  std::exception_ptr first_error;
  for (auto& f : pending) {
    try {
      GroupOutcome group = f.get();
      result.panels_executed += group.stats.panels_executed;
      result.panel_lanes += group.stats.panel_lanes_total;
      for (auto& r : group.results) {
        result.all_converged = result.all_converged && r.report.converged;
        solve_seconds += r.solve_seconds;
        result.solves.push_back(std::move(r));
      }
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  result.total_seconds = total.seconds();
  stage_latency_.solve.observe(solve_seconds);
  if (dist_session) {
    const auto& ds = dist_session->stats();
    result.shard_rank = active.shard.rank;
    result.shard_world = active.shard.world;
    result.dist_exchange_rounds = ds.exchange_rounds;
    result.dist_bytes_moved = ds.bytes_moved;
    result.dist_plan_naive_rounds = ds.plan_naive_rounds;
    result.dist_plan_scheduled_rounds = ds.plan_scheduled_rounds;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.jobs;
    stats_.rhs_solved += result.solves.size();
    stats_.solve_seconds_total += solve_seconds;
    stats_.prepare_seconds_total += result.prepare_seconds;
    stats_.panels_executed += result.panels_executed;
    stats_.panel_lanes_total += result.panel_lanes;
    for (const auto& s : result.solves) {
      for (int t = 0; t < 3; ++t) {
        stats_.tier_solves_total[t] += s.report.tier_solves[t];
        stats_.tier_iterations_total[t] += s.report.tier_iterations[t];
      }
      stats_.precision_switches_total += s.report.precision_switches;
    }
    if (!result.cache_hit && !result.solves.empty()) {
      // Program telemetry is per prepared context; count it once, on the
      // preparation that actually compiled it.
      const auto& rep0 = result.solves.front().report;
      stats_.program_compile_seconds_total += rep0.program_compile_seconds;
      stats_.program_ops_total += rep0.program_ops;
    }
    auto& backend_stats = stats_.backends[result.backend];
    ++backend_stats.jobs;
    backend_stats.rhs_solved += result.solves.size();
    backend_stats.panels += result.panels_executed;
    for (const auto& s : result.solves) backend_stats.replays += s.report.solves.size();
    if (dist_session) {
      const auto& ds = dist_session->stats();
      ++stats_.dist.jobs;
      stats_.dist.solves += ds.solves;
      stats_.dist.exchange_rounds += ds.exchange_rounds;
      stats_.dist.bytes_moved += ds.bytes_moved;
      stats_.dist.exchange_seconds += ds.exchange_seconds;
      stats_.dist.local_seconds += ds.local_seconds;
      stats_.dist.plan_naive_rounds += ds.plan_naive_rounds;
      stats_.dist.plan_scheduled_rounds += ds.plan_scheduled_rounds;
    }
  }
  return result;
}

std::future<SolveResult> SolverService::submit(SolveRequest request) {
  return job_pool_.submit(
      [this, request = std::move(request)] { return solve(request); });
}

std::optional<std::string> SolverService::submit_job(SolveRequest request,
                                                     trace::TraceContext trace) {
  return submit_job(std::function<SolveRequest()>(
                        [request = std::move(request)]() mutable { return std::move(request); }),
                    {}, std::move(trace));
}

std::optional<std::string> SolverService::submit_job(
    std::function<SolveRequest()> make_request,
    std::function<std::string(const SolveResult&)> render, trace::TraceContext trace) {
  auto record = std::make_shared<JobRecord>();
  // Every registry job carries a trace: callers that minted one at the
  // front door (the daemon) hand it in, everyone else gets a fresh one
  // here — the flight recorder depends on traces existing unconditionally.
  record->trace = trace ? std::move(trace) : trace::make_trace();
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    if (options_.max_pending_jobs != 0 &&
        queue_stats_.queued + queue_stats_.running >= options_.max_pending_jobs) {
      ++queue_stats_.rejected;
      return std::nullopt;
    }
    record->seq = next_job_number_;
    record->job_id = "job-" + std::to_string(next_job_number_++);
    registry_[record->job_id] = record;
    ++queue_stats_.accepted;
    ++queue_stats_.queued;
  }
  record->queue_span = record->trace->begin_span("queue");

  job_pool_.submit(
      [this, record, make = std::move(make_request), render = std::move(render)]() mutable {
        {
          std::lock_guard<std::mutex> lock(registry_mutex_);
          // Cancelled while queued: the record is already terminal and its
          // queue accounting settled — skip the work entirely.
          if (record->state == JobState::kCancelled) return;
          record->state = JobState::kRunning;
          record->queue_seconds = record->since_submit.seconds();
          record->since_start = Timer();
          --queue_stats_.queued;
          ++queue_stats_.running;
        }
        // The kRunning transition above settles the cancel race: from here
        // this worker is the only writer of the queue span.
        record->trace->end_span(record->queue_span);
        record->queue_span = 0;
        stage_latency_.queue.observe(record->queue_seconds);
        trace::ScopedSpan run_span(record->trace, "run");
        try {
          SolveRequest request;
          {
            MPQLS_TRACE_SPAN(mat_span, record->trace, "materialize", run_span.id());
            request = make();
          }
          request.options.trace = record->trace;
          request.options.trace_span = run_span.id();
          auto result = std::make_shared<SolveResult>(solve(request));
          // Render here, outside any lock: serialization of a large
          // result is exactly the work the caller wants off its threads.
          std::shared_ptr<const std::string> rendered;
          if (render) {
            Timer render_timer;
            MPQLS_TRACE_SPAN(render_span, record->trace, "render", run_span.id());
            rendered = std::make_shared<const std::string>(render(*result));
            render_span.finish();
            stage_latency_.render.observe(render_timer.seconds());
          }
          run_span.finish();
          finish_job(record, JobState::kDone, std::move(result), std::move(rendered), "");
        } catch (const std::exception& e) {
          run_span.finish();
          finish_job(record, JobState::kFailed, nullptr, nullptr, e.what());
        } catch (...) {
          run_span.finish();
          finish_job(record, JobState::kFailed, nullptr, nullptr, "unknown error");
        }
      });
  return record->job_id;
}

void SolverService::finish_job(const std::shared_ptr<JobRecord>& record, JobState final_state,
                               std::shared_ptr<const SolveResult> result,
                               std::shared_ptr<const std::string> rendered, std::string error) {
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    record->state = final_state;
    record->result = std::move(result);
    record->rendered = std::move(rendered);
    record->error = std::move(error);
    record->run_seconds = record->since_start.seconds();
    --queue_stats_.running;
    if (final_state == JobState::kDone) {
      ++queue_stats_.done;
    } else {
      ++queue_stats_.failed;
    }
    terminal_order_.push_back(record->job_id);
    prune_terminal_locked();
  }
  registry_cv_.notify_all();
  // The record is terminal: queue/run_seconds have their final values and
  // no other thread writes them again.
  const double total_seconds = record->queue_seconds + record->run_seconds;
  stage_latency_.total.observe(total_seconds);
  trace::FlightRecord flight;
  flight.job_id = record->job_id;
  flight.state = to_string(final_state);
  flight.total_seconds = total_seconds;
  flight.queue_seconds = record->queue_seconds;
  flight.run_seconds = record->run_seconds;
  flight.trace = record->trace;
  flight_recorder_.record(std::move(flight));
}

void SolverService::prune_terminal_locked() {
  const std::size_t keep = options_.retained_jobs == 0 ? 1 : options_.retained_jobs;
  while (terminal_order_.size() > keep) {
    registry_.erase(terminal_order_.front());
    terminal_order_.pop_front();
  }
}

JobStatus SolverService::snapshot_locked(const JobRecord& r) const {
  JobStatus status;
  status.job_id = r.job_id;
  status.state = r.state;
  status.error = r.error;
  status.result = r.result;
  status.rendered = r.rendered;
  status.queue_seconds = r.state == JobState::kQueued ? r.since_submit.seconds() : r.queue_seconds;
  status.run_seconds = r.state == JobState::kRunning ? r.since_start.seconds() : r.run_seconds;
  status.trace = r.trace;
  return status;
}

std::optional<JobStatus> SolverService::job_status(const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = registry_.find(job_id);
  if (it == registry_.end()) return std::nullopt;
  return snapshot_locked(*it->second);
}

CancelOutcome SolverService::cancel_job(const std::string& job_id) {
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = registry_.find(job_id);
    if (it == registry_.end()) return CancelOutcome::kNotFound;
    JobRecord& r = *it->second;
    if (r.state != JobState::kQueued) return CancelOutcome::kNotCancellable;
    r.state = JobState::kCancelled;
    r.queue_seconds = r.since_submit.seconds();
    // Close the open queue span: the worker will skip this job on pickup
    // (the kQueued check above settles the race — only one of cancel and
    // pickup transitions the state).
    if (r.trace) r.trace->end_span(r.queue_span, "cancelled=1");
    r.queue_span = 0;
    --queue_stats_.queued;
    ++queue_stats_.cancelled;
    terminal_order_.push_back(r.job_id);
    prune_terminal_locked();
  }
  // Cancellation frees queue capacity, which wait_idle watchers count.
  registry_cv_.notify_all();
  return CancelOutcome::kCancelled;
}

std::vector<JobStatus> SolverService::list_jobs(std::size_t limit) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<const JobRecord*> records;
  records.reserve(registry_.size());
  for (const auto& [id, record] : registry_) records.push_back(record.get());
  std::sort(records.begin(), records.end(),
            [](const JobRecord* a, const JobRecord* b) { return a->seq > b->seq; });
  if (records.size() > limit) records.resize(limit);
  std::vector<JobStatus> out;
  out.reserve(records.size());
  for (const JobRecord* r : records) out.push_back(snapshot_locked(*r));
  return out;
}

bool SolverService::wait_idle(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(registry_mutex_);
  return registry_cv_.wait_for(lock, timeout, [this] {
    return queue_stats_.queued == 0 && queue_stats_.running == 0;
  });
}

std::future<void> SolverService::run_on_job_pool(std::function<void()> fn) {
  return job_pool_.submit(std::move(fn));
}

SolverService::Stats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

SolverService::QueueStats SolverService::queue_stats() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return queue_stats_;
}

std::vector<std::string> SolverService::enabled_backends() const {
  std::vector<std::string> names;
  for (const auto& name : qsim::exec::backend_registry().names()) {
    if (options_.enabled_backends.empty() ||
        std::find(options_.enabled_backends.begin(), options_.enabled_backends.end(), name) !=
            options_.enabled_backends.end()) {
      names.push_back(name);
    }
  }
  return names;
}

std::string SolverService::resolve_backend(const std::string& requested) const {
  const std::string& name = requested.empty() ? options_.default_backend : requested;
  expects(qsim::exec::find_backend(name) != nullptr,
          "service: unknown execution backend");
  if (!options_.enabled_backends.empty()) {
    expects(std::find(options_.enabled_backends.begin(), options_.enabled_backends.end(), name) !=
                options_.enabled_backends.end(),
            "service: execution backend disabled on this instance");
  }
  return name;
}

}  // namespace mpqls::service
