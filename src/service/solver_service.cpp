#include "service/solver_service.hpp"

#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/timer.hpp"

namespace mpqls::service {

namespace {

std::size_t default_solve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : hw;
}

}  // namespace

SolverService::SolverService(ServiceOptions options)
    : options_(options),
      cache_(options.cache_capacity),
      solve_pool_(default_solve_threads(options.solve_threads)),
      job_pool_(options.job_threads) {}

SolveResult SolverService::solve(const SolveRequest& request) {
  expects(!request.rhs.empty(), "service: request needs at least one right-hand side");
  expects(request.A.rows() == request.A.cols(), "service: square matrix required");

  Timer total;
  SolveResult result;
  result.id = request.id;
  result.fp = fingerprint(request.A, request.options.qsvt);

  Timer prep;
  bool hit = false;
  auto ctx = cache_.get_or_prepare(result.fp, request.A, request.options.qsvt, &hit);
  result.cache_hit = hit;
  result.prepare_seconds = prep.seconds();

  // Fan the right-hand sides out; each solve shares the immutable context.
  std::vector<std::future<RhsResult>> pending;
  pending.reserve(request.rhs.size());
  for (const auto& b : request.rhs) {
    pending.push_back(solve_pool_.submit([ctx, &b, &options = request.options] {
      Timer t;
      RhsResult r;
      r.report = solver::solve_qsvt_ir(*ctx, b, options);
      r.solve_seconds = t.seconds();
      return r;
    }));
  }

  result.all_converged = true;
  result.solves.reserve(pending.size());
  double solve_seconds = 0.0;
  // Drain every future even if one throws: the queued tasks hold
  // references into `request`, so none may outlive this frame.
  std::exception_ptr first_error;
  for (auto& f : pending) {
    try {
      result.solves.push_back(f.get());
      result.all_converged = result.all_converged && result.solves.back().report.converged;
      solve_seconds += result.solves.back().solve_seconds;
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  result.total_seconds = total.seconds();

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.jobs;
    stats_.rhs_solved += result.solves.size();
    stats_.solve_seconds_total += solve_seconds;
  }
  return result;
}

std::future<SolveResult> SolverService::submit(SolveRequest request) {
  return job_pool_.submit(
      [this, request = std::move(request)] { return solve(request); });
}

SolverService::Stats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace mpqls::service
