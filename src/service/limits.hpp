// Bounds on attacker-controlled request parameters, shared by every
// deserializer that admits work from the network (JSON in json_io, binary
// frames in wire/codec). Both front doors must enforce the same caps or
// the cheaper encoding becomes the bigger attack surface: a 70-byte body
// must not be able to demand a dense 200000^2 matrix (~320 GB), a million
// right-hand sides, or a shot count that wedges a worker for days.
// 4096^2 doubles = 128 MiB is the most a single job may materialize.
//
// Also hosts the u64 <-> hex helpers: 64-bit content hashes do not fit a
// JSON double losslessly, so every textual surface (fingerprints,
// matrix_ref) ships them as 16-digit hex.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/contracts.hpp"

namespace mpqls::service {

constexpr std::size_t kMaxDimension = 4096;
constexpr std::size_t kMaxRhsCount = 1024;
constexpr std::int64_t kMaxIterations = 100000;  ///< refinement + QSP loops
constexpr std::uint64_t kMaxShots = 1000000000;  ///< 1e9 readout shots

inline std::size_t checked_dimension(std::size_t n) {
  expects(n >= 1 && n <= kMaxDimension, "request: matrix dimension out of range");
  return n;
}

inline std::int64_t checked_iterations(std::int64_t v) {
  expects(v >= 1 && v <= kMaxIterations, "request: iteration count out of range");
  return v;
}

inline std::string u64_hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

inline std::uint64_t u64_from_hex(const std::string& s) {
  // Strict: hex digits only (strtoull alone would accept "-1" or "0x..").
  expects(!s.empty() && s.size() <= 16, "request: bad hex hash length");
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint64_t>(c - 'A' + 10);
    else expects(false, "request: bad hex hash");
  }
  return v;
}

}  // namespace mpqls::service
