#include "service/json_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/sparse.hpp"
#include "service/limits.hpp"

namespace mpqls::service {

namespace {

Json vector_to_json(const linalg::Vector<double>& v) {
  Json a = Json::array();
  for (double x : v) a.push_back(x);
  return a;
}

linalg::Vector<double> vector_from_json(const Json& j) {
  linalg::Vector<double> v;
  v.reserve(j.as_array().size());
  for (const auto& x : j.as_array()) v.push_back(x.as_number());
  return v;
}

const char* backend_name(qsvt::Backend b) {
  return b == qsvt::Backend::kGateLevel ? "gate" : "matrix";
}
qsvt::Backend backend_from(const std::string& s) {
  if (s == "gate") return qsvt::Backend::kGateLevel;
  expects(s == "matrix", "json: unknown backend");
  return qsvt::Backend::kMatrixFunction;
}

const char* precision_name(qsvt::QpuPrecision p) {
  switch (p) {
    case qsvt::QpuPrecision::kSingle: return "single";
    case qsvt::QpuPrecision::kHalf: return "half";
    case qsvt::QpuPrecision::kAdaptive: return "adaptive";
    default: return "double";
  }
}
qsvt::QpuPrecision precision_from(const std::string& s) {
  if (s == "single") return qsvt::QpuPrecision::kSingle;
  if (s == "half") return qsvt::QpuPrecision::kHalf;
  if (s == "adaptive") return qsvt::QpuPrecision::kAdaptive;
  expects(s == "double", "json: unknown precision");
  return qsvt::QpuPrecision::kDouble;
}

const char* poly_method_name(qsvt::PolyMethod m) {
  return m == qsvt::PolyMethod::kAnalytic ? "analytic" : "interpolated";
}
qsvt::PolyMethod poly_method_from(const std::string& s) {
  if (s == "analytic") return qsvt::PolyMethod::kAnalytic;
  expects(s == "interpolated", "json: unknown poly method");
  return qsvt::PolyMethod::kInterpolated;
}

const char* encoding_name(qsvt::EncodingKind e) {
  switch (e) {
    case qsvt::EncodingKind::kLcuPauli: return "lcu";
    case qsvt::EncodingKind::kTridiagonal: return "tridiagonal";
    default: return "dense";
  }
}
qsvt::EncodingKind encoding_from(const std::string& s) {
  if (s == "lcu") return qsvt::EncodingKind::kLcuPauli;
  if (s == "tridiagonal") return qsvt::EncodingKind::kTridiagonal;
  expects(s == "dense", "json: unknown encoding");
  return qsvt::EncodingKind::kDenseEmbedding;
}

const char* residual_precision_name(solver::ResidualPrecision p) {
  return p == solver::ResidualPrecision::kDoubleDouble ? "double-double" : "double";
}
solver::ResidualPrecision residual_precision_from(const std::string& s) {
  if (s == "double-double") return solver::ResidualPrecision::kDoubleDouble;
  expects(s == "double", "json: unknown residual precision");
  return solver::ResidualPrecision::kDouble;
}

Json options_to_json(const solver::QsvtIrOptions& o) {
  Json q = Json::object();
  q["backend"] = backend_name(o.qsvt.backend);
  q["precision"] = precision_name(o.qsvt.precision);
  q["poly_method"] = poly_method_name(o.qsvt.poly_method);
  q["encoding"] = encoding_name(o.qsvt.encoding);
  // The execution backend (registry name, e.g. "reference"/"blocked");
  // omitted while empty so default-routed requests stay byte-stable.
  if (!o.qsvt.exec_backend.empty()) q["exec_backend"] = o.qsvt.exec_backend;
  q["eps_l"] = o.qsvt.eps_l;
  q["kappa"] = o.qsvt.kappa;
  q["kappa_margin"] = o.qsvt.kappa_margin;
  q["shots"] = o.qsvt.shots;
  q["seed"] = o.qsvt.seed;
  Json noise = Json::object();
  noise["depolarizing"] = o.qsvt.noise.depolarizing_per_gate;
  noise["damping"] = o.qsvt.noise.damping_per_gate;
  q["noise"] = std::move(noise);
  // qsp_options are part of the context fingerprint, so a request only
  // round-trips losslessly if they travel too.
  Json qsp = Json::object();
  qsp["max_fpi_iterations"] = o.qsvt.qsp_options.max_fpi_iterations;
  qsp["max_newton_iterations"] = o.qsvt.qsp_options.max_newton_iterations;
  qsp["tolerance"] = o.qsvt.qsp_options.tolerance;
  qsp["enable_newton"] = o.qsvt.qsp_options.enable_newton;
  qsp["enable_lbfgs"] = o.qsvt.qsp_options.enable_lbfgs;
  qsp["lbfgs_threshold"] = o.qsvt.qsp_options.lbfgs_threshold;
  qsp["max_lbfgs_iterations"] = o.qsvt.qsp_options.max_lbfgs_iterations;
  q["qsp"] = std::move(qsp);

  Json j = Json::object();
  j["eps"] = o.eps;
  j["max_iterations"] = o.max_iterations;
  j["use_brent"] = o.use_brent;
  j["residual_precision"] = residual_precision_name(o.residual_precision);
  Json esc = Json::object();
  esc["stall_ratio"] = o.escalation.stall_ratio;
  esc["half_floor"] = o.escalation.half_floor;
  esc["single_floor"] = o.escalation.single_floor;
  j["escalation"] = std::move(esc);
  j["qsvt"] = std::move(q);
  return j;
}

solver::QsvtIrOptions options_from_json(const Json& j) {
  solver::QsvtIrOptions o;
  o.eps = j.number_or("eps", o.eps);
  o.max_iterations =
      static_cast<int>(checked_iterations(j.int_or("max_iterations", o.max_iterations)));
  o.use_brent = j.bool_or("use_brent", o.use_brent);
  o.residual_precision = residual_precision_from(
      j.string_or("residual_precision", residual_precision_name(o.residual_precision)));
  if (j.contains("escalation")) {
    const Json& esc = j.at("escalation");
    o.escalation.stall_ratio = esc.number_or("stall_ratio", o.escalation.stall_ratio);
    o.escalation.half_floor = esc.number_or("half_floor", o.escalation.half_floor);
    o.escalation.single_floor = esc.number_or("single_floor", o.escalation.single_floor);
  }
  if (j.contains("qsvt")) {
    const Json& q = j.at("qsvt");
    o.qsvt.backend = backend_from(q.string_or("backend", backend_name(o.qsvt.backend)));
    o.qsvt.precision =
        precision_from(q.string_or("precision", precision_name(o.qsvt.precision)));
    o.qsvt.poly_method =
        poly_method_from(q.string_or("poly_method", poly_method_name(o.qsvt.poly_method)));
    o.qsvt.encoding = encoding_from(q.string_or("encoding", encoding_name(o.qsvt.encoding)));
    o.qsvt.exec_backend = q.string_or("exec_backend", o.qsvt.exec_backend);
    o.qsvt.eps_l = q.number_or("eps_l", o.qsvt.eps_l);
    o.qsvt.kappa = q.number_or("kappa", o.qsvt.kappa);
    o.qsvt.kappa_margin = q.number_or("kappa_margin", o.qsvt.kappa_margin);
    o.qsvt.shots = q.uint_or("shots", 0);
    expects(o.qsvt.shots <= kMaxShots, "json: shots out of range");
    o.qsvt.seed = q.uint_or("seed", o.qsvt.seed);
    if (q.contains("noise")) {
      o.qsvt.noise.depolarizing_per_gate = q.at("noise").number_or("depolarizing", 0.0);
      o.qsvt.noise.damping_per_gate = q.at("noise").number_or("damping", 0.0);
    }
    if (q.contains("qsp")) {
      const Json& qsp = q.at("qsp");
      auto& s = o.qsvt.qsp_options;
      s.max_fpi_iterations = static_cast<int>(
          checked_iterations(qsp.int_or("max_fpi_iterations", s.max_fpi_iterations)));
      s.max_newton_iterations = static_cast<int>(
          checked_iterations(qsp.int_or("max_newton_iterations", s.max_newton_iterations)));
      s.tolerance = qsp.number_or("tolerance", s.tolerance);
      s.enable_newton = qsp.bool_or("enable_newton", s.enable_newton);
      s.enable_lbfgs = qsp.bool_or("enable_lbfgs", s.enable_lbfgs);
      s.lbfgs_threshold = qsp.number_or("lbfgs_threshold", s.lbfgs_threshold);
      s.max_lbfgs_iterations = static_cast<int>(
          checked_iterations(qsp.int_or("max_lbfgs_iterations", s.max_lbfgs_iterations)));
    }
  }
  return o;
}

Json comm_to_json(const hybrid::CommLog& log) {
  const auto summary = hybrid::summarize(log);
  Json s = Json::object();
  s["cpu_to_qpu_bytes"] = summary.cpu_to_qpu_bytes;
  s["qpu_to_cpu_bytes"] = summary.qpu_to_cpu_bytes;
  s["setup_bytes"] = summary.setup_bytes;

  Json events = Json::array();
  for (const auto& e : log.events()) {
    Json ev = Json::object();
    ev["dir"] = (e.direction == hybrid::Direction::kCpuToQpu) ? "cpu->qpu" : "qpu->cpu";
    ev["payload"] = e.payload;
    ev["bytes"] = e.bytes;
    ev["iteration"] = static_cast<std::int64_t>(e.iteration);
    events.push_back(std::move(ev));
  }
  Json j = Json::object();
  j["summary"] = std::move(s);
  j["events"] = std::move(events);
  return j;
}

hybrid::CommLog comm_from_json(const Json& j) {
  hybrid::CommLog log;
  for (const auto& ev : j.at("events").as_array()) {
    const auto dir = ev.at("dir").as_string() == "cpu->qpu" ? hybrid::Direction::kCpuToQpu
                                                            : hybrid::Direction::kQpuToCpu;
    log.record(dir, ev.at("payload").as_string(), ev.at("bytes").as_uint(),
               static_cast<int>(ev.at("iteration").as_int()));
  }
  return log;
}

Json report_to_json(const solver::QsvtIrReport& r) {
  Json j = Json::object();
  j["x"] = vector_to_json(r.x);
  Json residuals = Json::array();
  for (double w : r.scaled_residuals) residuals.push_back(w);
  j["scaled_residuals"] = std::move(residuals);
  j["iterations"] = r.iterations;
  j["converged"] = r.converged;
  j["kappa"] = r.kappa;
  j["eps_l_requested"] = r.eps_l_requested;
  j["eps_l_effective"] = r.eps_l_effective;
  j["poly_degree"] = r.poly_degree;
  j["poly_scale"] = r.poly_scale;
  j["theoretical_iteration_bound"] = r.theoretical_iteration_bound;
  j["total_be_calls"] = r.total_be_calls;
  // Execution-engine telemetry: how the cached circuit compiled (zeros for
  // the matrix-function backend).
  Json program = Json::object();
  program["source_gates"] = r.program_source_gates;
  program["ops"] = r.program_ops;
  program["depth"] = r.program_depth;
  program["compile_seconds"] = r.program_compile_seconds;
  j["program"] = std::move(program);
  // Adaptive-precision schedule telemetry: which tier ran what.
  Json tiers = Json::object();
  tiers["half_solves"] = r.tier_solves[solver::kTierHalf];
  tiers["single_solves"] = r.tier_solves[solver::kTierSingle];
  tiers["double_solves"] = r.tier_solves[solver::kTierDouble];
  tiers["half_iterations"] = r.tier_iterations[solver::kTierHalf];
  tiers["single_iterations"] = r.tier_iterations[solver::kTierSingle];
  tiers["double_iterations"] = r.tier_iterations[solver::kTierDouble];
  j["precision_tiers"] = std::move(tiers);
  j["precision_switches"] = r.precision_switches;
  j["dd128_verified"] = r.dd128_verified;
  j["dd128_final_residual"] = r.dd128_final_residual;
  Json solves = Json::array();
  for (const auto& s : r.solves) {
    Json sj = Json::object();
    sj["mu"] = s.mu;
    sj["success_probability"] = s.success_probability;
    sj["be_calls"] = s.be_calls;
    sj["circuit_gates"] = s.circuit_gates;
    solves.push_back(std::move(sj));
  }
  j["solves"] = std::move(solves);
  j["comm"] = comm_to_json(r.comm);
  return j;
}

solver::QsvtIrReport report_from_json(const Json& j) {
  solver::QsvtIrReport r;
  r.x = vector_from_json(j.at("x"));
  for (const auto& w : j.at("scaled_residuals").as_array()) {
    r.scaled_residuals.push_back(w.as_number());
  }
  r.iterations = static_cast<int>(j.at("iterations").as_int());
  r.converged = j.at("converged").as_bool();
  r.kappa = j.at("kappa").as_number();
  r.eps_l_requested = j.at("eps_l_requested").as_number();
  r.eps_l_effective = j.at("eps_l_effective").as_number();
  r.poly_degree = static_cast<int>(j.at("poly_degree").as_int());
  r.poly_scale = j.at("poly_scale").as_number();
  r.theoretical_iteration_bound = j.at("theoretical_iteration_bound").as_uint();
  r.total_be_calls = j.at("total_be_calls").as_uint();
  if (j.contains("program")) {  // absent in pre-exec-engine traces
    const Json& program = j.at("program");
    r.program_source_gates = program.uint_or("source_gates", 0);
    r.program_ops = program.uint_or("ops", 0);
    r.program_depth = program.uint_or("depth", 0);
    r.program_compile_seconds = program.number_or("compile_seconds", 0.0);
  }
  if (j.contains("precision_tiers")) {  // absent in pre-adaptive traces
    const Json& tiers = j.at("precision_tiers");
    r.tier_solves[solver::kTierHalf] = tiers.uint_or("half_solves", 0);
    r.tier_solves[solver::kTierSingle] = tiers.uint_or("single_solves", 0);
    r.tier_solves[solver::kTierDouble] = tiers.uint_or("double_solves", 0);
    r.tier_iterations[solver::kTierHalf] = tiers.uint_or("half_iterations", 0);
    r.tier_iterations[solver::kTierSingle] = tiers.uint_or("single_iterations", 0);
    r.tier_iterations[solver::kTierDouble] = tiers.uint_or("double_iterations", 0);
  }
  if (j.contains("precision_switches")) r.precision_switches = j.at("precision_switches").as_uint();
  if (j.contains("dd128_verified")) r.dd128_verified = j.at("dd128_verified").as_bool();
  if (j.contains("dd128_final_residual")) {
    r.dd128_final_residual = j.at("dd128_final_residual").as_number();
  }
  for (const auto& sj : j.at("solves").as_array()) {
    solver::SolveTelemetry s;
    s.mu = sj.at("mu").as_number();
    s.success_probability = sj.at("success_probability").as_number();
    s.be_calls = sj.at("be_calls").as_uint();
    s.circuit_gates = sj.at("circuit_gates").as_uint();
    r.solves.push_back(s);
  }
  r.comm = comm_from_json(j.at("comm"));
  return r;
}

}  // namespace

Json to_json(const SolveResult& result) {
  Json j = Json::object();
  j["id"] = result.id;
  Json fp = Json::object();
  fp["matrix"] = u64_hex(result.fp.matrix_hash);
  fp["options"] = u64_hex(result.fp.options_hash);
  j["fingerprint"] = std::move(fp);
  j["cache_hit"] = result.cache_hit;
  j["prepare_seconds"] = result.prepare_seconds;
  j["total_seconds"] = result.total_seconds;
  j["all_converged"] = result.all_converged;
  if (!result.backend.empty()) j["backend"] = result.backend;
  j["panels_executed"] = static_cast<double>(result.panels_executed);
  j["panel_lanes"] = static_cast<double>(result.panel_lanes);
  if (result.shard_world > 1) {
    Json d = Json::object();
    d["shard_rank"] = static_cast<double>(result.shard_rank);
    d["shard_world"] = static_cast<double>(result.shard_world);
    d["exchange_rounds"] = static_cast<double>(result.dist_exchange_rounds);
    d["bytes_moved"] = static_cast<double>(result.dist_bytes_moved);
    d["plan_naive_rounds"] = static_cast<double>(result.dist_plan_naive_rounds);
    d["plan_scheduled_rounds"] = static_cast<double>(result.dist_plan_scheduled_rounds);
    j["dist"] = std::move(d);
  }
  Json solves = Json::array();
  for (const auto& s : result.solves) {
    Json sj = Json::object();
    sj["solve_seconds"] = s.solve_seconds;
    sj["report"] = report_to_json(s.report);
    solves.push_back(std::move(sj));
  }
  j["solves"] = std::move(solves);
  return j;
}

SolveResult result_from_json(const Json& j) {
  SolveResult r;
  r.id = j.at("id").as_string();
  r.fp.matrix_hash = u64_from_hex(j.at("fingerprint").at("matrix").as_string());
  r.fp.options_hash = u64_from_hex(j.at("fingerprint").at("options").as_string());
  r.cache_hit = j.at("cache_hit").as_bool();
  r.prepare_seconds = j.at("prepare_seconds").as_number();
  r.total_seconds = j.at("total_seconds").as_number();
  r.all_converged = j.at("all_converged").as_bool();
  if (j.contains("backend")) r.backend = j.at("backend").as_string();
  // Panel telemetry arrived after the trace format; old traces omit it.
  if (j.contains("panels_executed")) r.panels_executed = j.at("panels_executed").as_uint();
  if (j.contains("panel_lanes")) r.panel_lanes = j.at("panel_lanes").as_uint();
  if (j.contains("dist")) {
    const Json& d = j.at("dist");
    r.shard_rank = static_cast<std::uint32_t>(d.uint_or("shard_rank", 0));
    r.shard_world = static_cast<std::uint32_t>(d.uint_or("shard_world", 0));
    r.dist_exchange_rounds = d.uint_or("exchange_rounds", 0);
    r.dist_bytes_moved = d.uint_or("bytes_moved", 0);
    r.dist_plan_naive_rounds = d.uint_or("plan_naive_rounds", 0);
    r.dist_plan_scheduled_rounds = d.uint_or("plan_scheduled_rounds", 0);
  }
  for (const auto& sj : j.at("solves").as_array()) {
    RhsResult s;
    s.solve_seconds = sj.at("solve_seconds").as_number();
    s.report = report_from_json(sj.at("report"));
    r.solves.push_back(std::move(s));
  }
  return r;
}

Json to_json(const SolveRequest& request) {
  Json j = Json::object();
  j["id"] = request.id;
  if (request.matrix_ref != 0) {
    // By-reference form: the 16-char hash replaces the matrix object.
    j["matrix_ref"] = u64_hex(request.matrix_ref);
  } else {
    Json m = Json::object();
    m["scenario"] = "dense";
    Json rows = Json::array();
    for (std::size_t i = 0; i < request.A.rows(); ++i) {
      Json row = Json::array();
      for (std::size_t c = 0; c < request.A.cols(); ++c) row.push_back(request.A(i, c));
      rows.push_back(std::move(row));
    }
    m["rows"] = std::move(rows);
    j["matrix"] = std::move(m);
  }
  Json rhs = Json::object();
  Json vectors = Json::array();
  for (const auto& b : request.rhs) vectors.push_back(vector_to_json(b));
  rhs["vectors"] = std::move(vectors);
  j["rhs"] = std::move(rhs);
  j["options"] = options_to_json(request.options);
  // Optional body-level trace id — parity with the wire-v3 trailing
  // field (zero = absent in both codecs).
  if (!request.trace_id.zero()) j["trace_id"] = request.trace_id.hex();
  if (request.shard.distributed()) {
    Json s = Json::object();
    s["group"] = u64_hex(request.shard.group);
    s["rank"] = static_cast<double>(request.shard.rank);
    s["world"] = static_cast<double>(request.shard.world);
    Json peers = Json::array();
    for (const auto& p : request.shard.peers) peers.push_back(p);
    s["peers"] = std::move(peers);
    j["shard"] = std::move(s);
  }
  return j;
}

linalg::Matrix<double> matrix_from_json(const Json& m) {
  linalg::Matrix<double> A;
  const std::string scenario = m.string_or("scenario", "dense");
  if (scenario == "dense") {
    const auto& rows = m.at("rows").as_array();
    const std::size_t n = checked_dimension(rows.size());
    A = linalg::Matrix<double>(n, checked_dimension(rows[0].as_array().size()));
    for (std::size_t i = 0; i < n; ++i) {
      const auto& row = rows[i].as_array();
      expects(row.size() == A.cols(), "json: ragged matrix");
      for (std::size_t c = 0; c < row.size(); ++c) A(i, c) = row[c].as_number();
    }
  } else if (scenario == "poisson1d") {
    A = linalg::poisson1d(checked_dimension(m.at("n").as_uint()));
  } else if (scenario == "poisson2d") {
    const auto nx = static_cast<std::size_t>(m.at("nx").as_uint());
    const auto ny = static_cast<std::size_t>(m.at("ny").as_uint());
    expects(nx >= 1 && ny >= 1 && nx <= kMaxDimension && ny <= kMaxDimension &&
                nx * ny <= kMaxDimension,
            "json: matrix dimension out of range");
    A = linalg::CsrMatrix::dirichlet_laplacian_2d(nx, ny).to_dense();
  } else if (scenario == "tridiagonal") {
    A = linalg::dirichlet_laplacian(checked_dimension(m.at("n").as_uint()));
  } else if (scenario == "random") {
    Xoshiro256 rng(m.uint_or("seed", 1));
    A = linalg::random_with_cond(rng, checked_dimension(m.at("n").as_uint()),
                                 m.number_or("kappa", 10.0));
  } else {
    expects(false, "json: unknown matrix scenario");
  }
  return A;
}

SolveRequest request_from_json(const Json& j, const MatrixResolver& resolve) {
  SolveRequest req;
  req.id = j.string_or("id", "");

  if (j.contains("matrix_ref")) {
    // By-reference request: the matrix was uploaded ahead of time
    // (PUT /v1/matrices) and travels as its content hash. Resolution needs
    // a store behind the resolver; a miss is the resolver's to signal
    // (MatrixRefMiss -> 404 at the daemon). Without a resolver the ref is
    // parsed but left unresolved — rhs generators that need dimensions
    // will then reject the request.
    req.matrix_ref = u64_from_hex(j.at("matrix_ref").as_string());
    expects(req.matrix_ref != 0, "json: matrix_ref must be nonzero");
    if (resolve) {
      req.shared_A = resolve(req.matrix_ref);
      expects(req.shared_A != nullptr, "json: unknown matrix_ref");
    }
  } else {
    req.A = matrix_from_json(j.at("matrix"));
  }

  // 0 only for an unresolved matrix_ref; explicit rhs vectors then check
  // mutual consistency here and against the store entry at solve time.
  const std::size_t n = req.matrix().rows();
  const Json& rhs = j.at("rhs");
  if (rhs.contains("vectors")) {
    expects(rhs.at("vectors").as_array().size() <= kMaxRhsCount, "json: too many right-hand sides");
    for (const auto& v : rhs.at("vectors").as_array()) {
      req.rhs.push_back(vector_from_json(v));
      const std::size_t want = n != 0 ? n : req.rhs.front().size();
      expects(!req.rhs.back().empty() && req.rhs.back().size() <= kMaxDimension &&
                  req.rhs.back().size() == want,
              "json: rhs dimension mismatch");
    }
  } else {
    expects(n != 0, "json: generated rhs needs a resolvable matrix");
    const std::string kind = rhs.at("kind").as_string();
    if (kind == "random") {
      Xoshiro256 rng(rhs.uint_or("seed", 7));
      const auto count = static_cast<std::size_t>(rhs.uint_or("count", 1));
      expects(count <= kMaxRhsCount, "json: too many right-hand sides");
      for (std::size_t k = 0; k < count; ++k) {
        req.rhs.push_back(linalg::random_unit_vector(rng, n));
      }
    } else if (kind == "point") {
      const auto idx = static_cast<std::size_t>(rhs.at("index").as_uint());
      expects(idx < n, "json: point rhs index out of range");
      linalg::Vector<double> b(n, 0.0);
      b[idx] = 1.0;
      req.rhs.push_back(std::move(b));
    } else {
      expects(false, "json: unknown rhs kind");
    }
  }
  expects(!req.rhs.empty(), "json: request needs at least one rhs");

  if (j.contains("options")) req.options = options_from_json(j.at("options"));
  // Top-level per-job execution-backend override — the ergonomic spelling
  // clients and the coordinator's capability router both read. Wins over
  // options.qsvt.exec_backend when both are present.
  if (j.contains("backend")) req.options.qsvt.exec_backend = j.at("backend").as_string();
  if (j.contains("trace_id")) {
    expects(trace::TraceId::parse(j.at("trace_id").as_string(), req.trace_id),
            "json: trace_id must be 32 hex chars");
  }
  if (j.contains("shard")) {
    // Distributed placement, normally injected per rank by the
    // coordinator's shard-group fan-out (a hand-written block works the
    // same — the daemon only needs peers it can reach).
    const Json& s = j.at("shard");
    req.shard.group = u64_from_hex(s.at("group").as_string());
    req.shard.rank = static_cast<std::uint32_t>(s.at("rank").as_uint());
    req.shard.world = static_cast<std::uint32_t>(s.at("world").as_uint());
    expects(req.shard.world >= 2 && req.shard.world <= 64 &&
                (req.shard.world & (req.shard.world - 1)) == 0,
            "json: shard world must be a power of two in [2, 64]");
    expects(req.shard.rank < req.shard.world, "json: shard rank out of range");
    for (const auto& p : s.at("peers").as_array()) {
      req.shard.peers.push_back(p.as_string());
    }
    expects(req.shard.peers.size() == req.shard.world,
            "json: shard peers must list one endpoint per rank");
  }
  return req;
}

std::vector<SolveRequest> jobs_from_json(const Json& j) {
  std::vector<SolveRequest> jobs;
  for (const auto& job : j.at("jobs").as_array()) jobs.push_back(request_from_json(job));
  return jobs;
}

std::string requested_backend(const Json& job_body) {
  if (!job_body.is_object()) return {};
  if (job_body.contains("backend") && job_body.at("backend").is_string()) {
    return job_body.at("backend").as_string();
  }
  if (job_body.contains("options") && job_body.at("options").is_object()) {
    const Json& options = job_body.at("options");
    if (options.contains("qsvt") && options.at("qsvt").is_object()) {
      const Json& qsvt = options.at("qsvt");
      if (qsvt.contains("exec_backend") && qsvt.at("exec_backend").is_string()) {
        return qsvt.at("exec_backend").as_string();
      }
    }
  }
  return {};
}

Json trace_to_json(const trace::Trace& trace) {
  Json j = Json::object();
  j["trace_id"] = trace.id().hex();
  j["spans_dropped"] = trace.dropped();
  Json spans = Json::array();
  for (const auto& span : trace.snapshot()) {
    Json s = Json::object();
    s["id"] = span.id;
    s["parent"] = span.parent;
    s["name"] = span.name;
    // Microseconds as doubles: lossless for any span a service job can
    // record, and directly human-scaled for latency work.
    s["start_us"] = static_cast<double>(span.start_ns) / 1e3;
    s["duration_us"] = static_cast<double>(span.duration_ns) / 1e3;
    if (span.running) s["running"] = true;
    if (!span.attrs.empty()) {
      // Split the recorder's compact "k=v,k=v" form into an object.
      Json attrs = Json::object();
      std::string_view rest = span.attrs;
      while (!rest.empty()) {
        const auto comma = rest.find(',');
        const std::string_view pair = rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
        const auto eq = pair.find('=');
        if (eq == std::string_view::npos) continue;
        attrs[std::string(pair.substr(0, eq))] = std::string(pair.substr(eq + 1));
      }
      s["attrs"] = std::move(attrs);
    }
    spans.push_back(std::move(s));
  }
  j["spans"] = std::move(spans);
  return j;
}

}  // namespace mpqls::service
