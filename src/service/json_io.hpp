// JSON (de)serialization for the service's job API. Requests can carry a
// dense matrix inline or name a scenario generator (poisson1d, poisson2d,
// tridiagonal, random) — the mixed workloads examples/service_server
// executes. Results serialize losslessly (solution vectors, residual
// history, per-solve telemetry and the full comm-event log), so traces can
// be archived and re-loaded.
#pragma once

#include "common/json.hpp"
#include "service/request.hpp"

namespace mpqls::service {

// --- results ---------------------------------------------------------------

Json to_json(const SolveResult& result);
SolveResult result_from_json(const Json& j);

// --- requests --------------------------------------------------------------

/// Serialize with the matrix and right-hand sides inline (dense).
Json to_json(const SolveRequest& request);

/// Build a matrix from a request's "matrix" object (any scenario listed
/// under request_from_json). Also the body PUT /v1/matrices accepts.
linalg::Matrix<double> matrix_from_json(const Json& m);

/// Build a request from JSON. The "matrix" object is either
///   {"scenario": "dense", "rows": [[...], ...]}
///   {"scenario": "poisson1d", "n": 16}
///   {"scenario": "poisson2d", "nx": 8, "ny": 8}
///   {"scenario": "tridiagonal", "n": 16}          (unscaled tridiag(-1,2,-1))
///   {"scenario": "random", "n": 16, "kappa": 10.0, "seed": 1}
/// or, for a matrix uploaded to the daemon's store beforehand, a top-level
///   "matrix_ref": "<16-char content hash>"
/// resolved through `resolve` (see MatrixResolver; the daemon passes a
/// store lookup that throws store::MatrixRefMiss on a cold ref).
/// "rhs" is either {"vectors": [[...], ...]},
/// {"kind": "random", "count": 4, "seed": 7}, or
/// {"kind": "point", "index": 3}. "options" mirrors QsvtIrOptions.
SolveRequest request_from_json(const Json& j, const MatrixResolver& resolve = {});

/// Parse a job file: {"jobs": [<request>, ...]}.
std::vector<SolveRequest> jobs_from_json(const Json& j);

/// The execution backend a job body requests: the top-level "backend"
/// override wins, else the long-form options.qsvt.exec_backend, else ""
/// (= the server's configured default). Pure peek — never throws on a
/// malformed shape. The daemon validates the name at admission (400) and
/// the coordinator routes on it without materializing the request.
std::string requested_backend(const Json& job_body);

// --- traces ----------------------------------------------------------------

/// Flat span-list rendering of a trace — the body of
/// GET /v1/jobs/{id}/trace and each /v1/debug/slow entry:
///   {"trace_id": "<32 hex>", "spans_dropped": N, "spans": [
///     {"id": 1, "parent": 0, "name": "run", "start_us": 12.5,
///      "duration_us": 830.1, "attrs": {"tier": "half", ...}},
///     ...]}
/// Parents reference span ids (0 = top level); clients build the tree.
/// Still-running spans carry "running": true and a live duration.
Json trace_to_json(const trace::Trace& trace);

}  // namespace mpqls::service
