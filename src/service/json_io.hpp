// JSON (de)serialization for the service's job API. Requests can carry a
// dense matrix inline or name a scenario generator (poisson1d, poisson2d,
// tridiagonal, random) — the mixed workloads examples/service_server
// executes. Results serialize losslessly (solution vectors, residual
// history, per-solve telemetry and the full comm-event log), so traces can
// be archived and re-loaded.
#pragma once

#include "common/json.hpp"
#include "service/request.hpp"

namespace mpqls::service {

// --- results ---------------------------------------------------------------

Json to_json(const SolveResult& result);
SolveResult result_from_json(const Json& j);

// --- requests --------------------------------------------------------------

/// Serialize with the matrix and right-hand sides inline (dense).
Json to_json(const SolveRequest& request);

/// Build a request from JSON. The "matrix" object is either
///   {"scenario": "dense", "rows": [[...], ...]}
///   {"scenario": "poisson1d", "n": 16}
///   {"scenario": "poisson2d", "nx": 8, "ny": 8}
///   {"scenario": "tridiagonal", "n": 16}          (unscaled tridiag(-1,2,-1))
///   {"scenario": "random", "n": 16, "kappa": 10.0, "seed": 1}
/// and "rhs" is either {"vectors": [[...], ...]},
/// {"kind": "random", "count": 4, "seed": 7}, or
/// {"kind": "point", "index": 3}. "options" mirrors QsvtIrOptions.
SolveRequest request_from_json(const Json& j);

/// Parse a job file: {"jobs": [<request>, ...]}.
std::vector<SolveRequest> jobs_from_json(const Json& j);

}  // namespace mpqls::service
