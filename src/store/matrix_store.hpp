// Content-addressed LRU store of decoded matrices, sitting in front of
// the service's ContextCache: a client uploads a matrix once
// (PUT /v1/matrices), gets back its content hash (service::hash_matrix —
// the same value the context cache keys on), and every later job submits
// the 8-byte reference instead of re-shipping ~128 MiB of matrix text.
//
// Entries are shared_ptr<const Matrix>, so an eviction never invalidates
// a matrix a queued or running job still holds — the same ownership rule
// ContextCache uses for prepared contexts. Eviction is by resident bytes
// (matrices dominate; bookkeeping is ignored), least recently *referenced*
// first: both put() of an existing hash and get() refresh recency.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "linalg/matrix.hpp"
#include "service/limits.hpp"

namespace mpqls::store {

/// Thrown where a matrix_ref names nothing resident — the daemon maps it
/// to 404 so the client re-uploads (the self-heal half of the protocol).
class MatrixRefMiss : public std::runtime_error {
 public:
  explicit MatrixRefMiss(std::uint64_t ref)
      : std::runtime_error("store: unknown matrix_ref " + service::u64_hex(ref)), ref_(ref) {}

  std::uint64_t ref() const { return ref_; }

 private:
  std::uint64_t ref_;
};

class MatrixStore {
 public:
  using MatrixPtr = std::shared_ptr<const linalg::Matrix<double>>;

  /// `capacity_bytes` = max resident matrix bytes (clamped so at least one
  /// kMaxDimension^2 matrix always fits — a store that cannot hold what
  /// the request caps admit would evict every upload immediately).
  explicit MatrixStore(std::size_t capacity_bytes);

  /// Insert (or refresh) a matrix; returns its content hash. Idempotent:
  /// re-uploading resident content only touches recency.
  std::uint64_t put(linalg::Matrix<double> A);

  /// Variant for callers that already hashed the matrix.
  std::uint64_t put(std::uint64_t hash, linalg::Matrix<double> A);

  /// The entry for `hash`, refreshing recency; nullptr on a miss.
  MatrixPtr get(std::uint64_t hash);

  /// Presence check; counts neither as hit nor miss and leaves recency
  /// untouched (metrics probes must not distort the LRU order).
  bool contains(std::uint64_t hash) const;

  struct Stats {
    std::uint64_t hits = 0;        ///< get() found the entry
    std::uint64_t misses = 0;      ///< get() found nothing
    std::uint64_t puts = 0;        ///< uploads, including re-uploads
    std::uint64_t evictions = 0;   ///< entries dropped by byte pressure
    std::size_t entries = 0;       ///< resident matrices
    std::size_t bytes = 0;         ///< resident matrix bytes
    std::size_t capacity_bytes = 0;
  };
  Stats stats() const;

  void clear();

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::size_t bytes = 0;
    MatrixPtr matrix;
  };

  void evict_over_capacity_locked();

  std::size_t capacity_bytes_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t puts_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mpqls::store
