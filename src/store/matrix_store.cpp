#include "store/matrix_store.hpp"

#include <algorithm>
#include <utility>

#include "service/fingerprint.hpp"

namespace mpqls::store {

namespace {

std::size_t matrix_bytes(const linalg::Matrix<double>& A) {
  return A.rows() * A.cols() * sizeof(double);
}

// The request caps admit one kMaxDimension^2 matrix = 128 MiB; any
// smaller floor would make the largest legal upload evict itself.
constexpr std::size_t kMinCapacityBytes =
    service::kMaxDimension * service::kMaxDimension * sizeof(double);

}  // namespace

MatrixStore::MatrixStore(std::size_t capacity_bytes)
    : capacity_bytes_(std::max(capacity_bytes, kMinCapacityBytes)) {}

std::uint64_t MatrixStore::put(linalg::Matrix<double> A) {
  const std::uint64_t hash = service::hash_matrix(A);
  return put(hash, std::move(A));
}

std::uint64_t MatrixStore::put(std::uint64_t hash, linalg::Matrix<double> A) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++puts_;
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency only
    return hash;
  }
  Entry entry;
  entry.hash = hash;
  entry.bytes = matrix_bytes(A);
  entry.matrix = std::make_shared<const linalg::Matrix<double>>(std::move(A));
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[hash] = lru_.begin();
  evict_over_capacity_locked();
  return hash;
}

MatrixStore::MatrixPtr MatrixStore::get(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(hash);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->matrix;
}

bool MatrixStore::contains(std::uint64_t hash) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.count(hash) != 0;
}

MatrixStore::Stats MatrixStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.puts = puts_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.capacity_bytes = capacity_bytes_;
  return s;
}

void MatrixStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void MatrixStore::evict_over_capacity_locked() {
  // The newest entry is never evicted (size() > 1): an oversized upload
  // stays resident until something newer arrives, which is strictly more
  // useful than admitting it and dropping it in the same call.
  while (bytes_ > capacity_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.hash);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace mpqls::store
