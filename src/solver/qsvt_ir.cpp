#include "solver/qsvt_ir.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/dd128.hpp"
#include "qsvt/denormalize.hpp"
#include "solver/theory.hpp"

namespace mpqls::solver {

namespace {

// Residual in the configured high precision u; the result is rounded back
// to double (the CPU working vector), which is exactly the Algorithm 2
// "compute r_i = b - A x_i at precision u" step.
linalg::Vector<double> residual_high_precision(const linalg::Matrix<double>& A,
                                               const linalg::Vector<double>& x,
                                               const linalg::Vector<double>& b,
                                               ResidualPrecision precision) {
  if (precision == ResidualPrecision::kDouble) {
    return linalg::residual(A, x, b);
  }
  using linalg::dd128;
  const std::size_t n = b.size();
  linalg::Vector<double> r(n);
  for (std::size_t i = 0; i < n; ++i) {
    dd128 acc(b[i]);
    for (std::size_t j = 0; j < n; ++j) {
      acc -= dd128(A(i, j)) * dd128(x[j]);
    }
    r[i] = acc.hi();
  }
  return r;
}

/// Static per-solve report header: context telemetry plus the Theorem
/// III.1 iteration bound — identical for every right-hand side served
/// from one context, shared by the scalar and batched loops.
QsvtIrReport init_report(const qsvt::QsvtSolverContext& ctx, const QsvtIrOptions& options) {
  QsvtIrReport rep;
  rep.kappa = ctx.kappa_effective;
  rep.eps_l_requested = ctx.options.eps_l;
  rep.eps_l_effective = ctx.eps_l_effective;
  rep.poly_degree = ctx.target.degree();
  rep.poly_scale = ctx.poly_scale;
  if (const auto* program = qsvt::compiled_program_stats(ctx)) {
    rep.program_source_gates = program->source_gates;
    rep.program_ops = program->ops;
    rep.program_depth = program->depth;
    rep.program_compile_seconds = program->compile_seconds;
  }
  // The measured polynomial error sup |2k P(x) - 1/x| bounds the residual
  // contraction per iteration directly: in the paper's notation this
  // quantity IS eps_l * kappa (their eps_l is the solution relative error
  // ~ eps'/kappa; see Section III-A).
  const double rho = rep.eps_l_effective;
  rep.theoretical_iteration_bound =
      (rho > 0.0 && rho < 1.0)
          ? iteration_bound(options.eps, rho / rep.kappa, rep.kappa)
          : 0;
  return rep;
}

/// Setup transfers (Fig. 1): BE(A^T), the phase vector, SP(b).
void record_setup_comm(const qsvt::QsvtSolverContext& ctx, std::size_t n, hybrid::CommLog& comm) {
  const std::uint64_t be_gates = std::max<std::uint64_t>(ctx.be.circuit.size(), 1);
  comm.record(hybrid::Direction::kCpuToQpu, "BE(A^T)", hybrid::circuit_wire_bytes(be_gates), -1);
  comm.record(hybrid::Direction::kCpuToQpu, "Phi",
              hybrid::vector_wire_bytes(ctx.phases.phases.size()), -1);
  comm.record(hybrid::Direction::kCpuToQpu, "SP(b)", hybrid::vector_wire_bytes(n), -1);
}

}  // namespace

QsvtIrReport solve_qsvt_ir(const qsvt::QsvtSolverContext& ctx, const linalg::Vector<double>& b,
                           const QsvtIrOptions& options) {
  // One-lane batch: Algorithm 2 lives once, in solve_qsvt_ir_batch. A
  // singleton batch takes the scalar QSVT path inside
  // qsvt_solve_directions, so this performs the historical scalar loop's
  // arithmetic in the same order (bitwise — the service determinism
  // tests pin it).
  return std::move(
      solve_qsvt_ir_batch(ctx, std::span<const linalg::Vector<double>>(&b, 1), options)[0]);
}

QsvtIrReport solve_qsvt_ir(const linalg::Matrix<double>& A, const linalg::Vector<double>& b,
                           const QsvtIrOptions& options) {
  const auto ctx = qsvt::prepare_qsvt_solver(A, options.qsvt);
  return solve_qsvt_ir(ctx, b, options);
}

std::vector<QsvtIrReport> solve_qsvt_ir_batch(const qsvt::QsvtSolverContext& ctx,
                                              std::span<const linalg::Vector<double>> bs,
                                              const QsvtIrOptions& options,
                                              BatchSolveStats* stats) {
  const auto& A = ctx.A;
  const std::size_t n = A.rows();
  expects(!bs.empty(), "solve_qsvt_ir_batch: at least one right-hand side");

  // Per-lane refinement state: each lane runs exactly the scalar loop's
  // decisions (de-normalization, convergence and stagnation checks, comm
  // records); only the QSVT calls are batched across lanes.
  struct Lane {
    const linalg::Vector<double>* b = nullptr;
    QsvtIrReport rep;
    linalg::Vector<double> r;    ///< current residual (the next lane RHS)
    double norm_b = 0.0;
    double omega = 0.0;          ///< last accepted scaled residual
    int it = 0;                  ///< refinement iterations completed
    bool active = true;
  };
  std::vector<Lane> lanes(bs.size());
  for (std::size_t l = 0; l < bs.size(); ++l) {
    Lane& lane = lanes[l];
    lane.b = &bs[l];
    expects(lane.b->size() == n, "solve_qsvt_ir_batch: dimension mismatch");
    lane.rep = init_report(ctx, options);
    lane.norm_b = linalg::nrm2(*lane.b);
    expects(lane.norm_b > 0.0, "solve_qsvt_ir_batch: zero right-hand side");
    record_setup_comm(ctx, n, lane.rep.comm);
  }

  auto lane_fit = [&](const Lane& lane, const linalg::Vector<double>& x_base,
                      const linalg::Vector<double>& eta) {
    return options.use_brent ? qsvt::fit_step_brent(A, x_base, eta, *lane.b)
                             : qsvt::fit_step_closed_form(A, x_base, eta, *lane.b);
  };
  auto scaled_residual = [&](Lane& lane) {
    lane.r = residual_high_precision(A, lane.rep.x, *lane.b, options.residual_precision);
    return linalg::nrm2(lane.r) / lane.norm_b;
  };

  qsvt::PanelExecStats pstats;

  // --- First solve on every lane: x_0 = mu_0 * eta_0, one panel sweep ---
  {
    std::vector<const linalg::Vector<double>*> batch;
    batch.reserve(lanes.size());
    for (const Lane& lane : lanes) batch.push_back(lane.b);
    const auto outcomes = qsvt::qsvt_solve_directions(ctx, batch, &pstats);
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      Lane& lane = lanes[l];
      const auto& outcome = outcomes[l];
      lane.rep.comm.record(hybrid::Direction::kQpuToCpu, "x_0", hybrid::vector_wire_bytes(n), -1);
      const auto fit = lane_fit(lane, {}, outcome.direction);
      lane.rep.x.assign(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) lane.rep.x[i] = fit.mu * outcome.direction[i];
      lane.rep.solves.push_back({fit.mu, outcome.success_probability, outcome.be_calls,
                                 outcome.circuit_gates});
      lane.rep.total_be_calls += outcome.be_calls;
      lane.omega = scaled_residual(lane);
      lane.rep.scaled_residuals.push_back(lane.omega);
    }
  }

  // --- Lockstep refinement: active lanes advance one iteration per round,
  // their residuals sharing one panel sweep. Converged and stagnated
  // lanes drop out, so occupancy may shrink round over round. ---
  for (;;) {
    std::vector<std::size_t> roster;
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      Lane& lane = lanes[l];
      if (!lane.active) continue;
      if (lane.omega <= options.eps) {
        lane.rep.converged = true;
        lane.active = false;
        continue;
      }
      if (lane.it >= options.max_iterations) {
        lane.active = false;
        continue;
      }
      roster.push_back(l);
    }
    if (roster.empty()) break;

    std::vector<const linalg::Vector<double>*> batch;
    batch.reserve(roster.size());
    for (const std::size_t l : roster) {
      Lane& lane = lanes[l];
      // SP(r_i) is the only CPU->QPU transfer per iteration (Fig. 1).
      lane.rep.comm.record(hybrid::Direction::kCpuToQpu, "SP(r_" + std::to_string(lane.it) + ")",
                           hybrid::vector_wire_bytes(n), lane.it);
      batch.push_back(&lane.r);
    }
    const auto outcomes = qsvt::qsvt_solve_directions(ctx, batch, &pstats);
    for (std::size_t k = 0; k < roster.size(); ++k) {
      Lane& lane = lanes[roster[k]];
      const auto& outcome = outcomes[k];
      const int it = lane.it;
      lane.rep.comm.record(hybrid::Direction::kQpuToCpu, "x_" + std::to_string(it + 1),
                           hybrid::vector_wire_bytes(n), it);

      // De-normalize: e_i = mu * eta minimizing ||A(x + mu eta) - b||.
      const auto fit = lane_fit(lane, lane.rep.x, outcome.direction);
      for (std::size_t i = 0; i < n; ++i) lane.rep.x[i] += fit.mu * outcome.direction[i];
      lane.rep.solves.push_back({fit.mu, outcome.success_probability, outcome.be_calls,
                                 outcome.circuit_gates});
      lane.rep.total_be_calls += outcome.be_calls;
      lane.rep.iterations = it + 1;
      lane.it = it + 1;

      const double omega_new = scaled_residual(lane);
      lane.rep.scaled_residuals.push_back(omega_new);
      if (omega_new >= lane.omega && omega_new > options.eps) {
        // Stagnation: the QSVT accuracy floor or u has been reached.
        lane.active = false;
      } else {
        lane.omega = omega_new;
      }
    }
  }

  std::vector<QsvtIrReport> reports;
  reports.reserve(lanes.size());
  for (Lane& lane : lanes) {
    lane.rep.converged = lane.rep.converged || lane.omega <= options.eps;
    reports.push_back(std::move(lane.rep));
  }
  if (stats) {
    stats->panels_executed += pstats.panels;
    stats->panel_lanes_total += pstats.lanes;
  }
  return reports;
}

}  // namespace mpqls::solver
