#include "solver/qsvt_ir.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/dd128.hpp"
#include "qsvt/denormalize.hpp"
#include "solver/theory.hpp"

namespace mpqls::solver {

namespace {

// Residual in the configured high precision u; the result is rounded back
// to double (the CPU working vector), which is exactly the Algorithm 2
// "compute r_i = b - A x_i at precision u" step.
linalg::Vector<double> residual_high_precision(const linalg::Matrix<double>& A,
                                               const linalg::Vector<double>& x,
                                               const linalg::Vector<double>& b,
                                               ResidualPrecision precision) {
  if (precision == ResidualPrecision::kDouble) {
    return linalg::residual(A, x, b);
  }
  using linalg::dd128;
  const std::size_t n = b.size();
  linalg::Vector<double> r(n);
  for (std::size_t i = 0; i < n; ++i) {
    dd128 acc(b[i]);
    for (std::size_t j = 0; j < n; ++j) {
      acc -= dd128(A(i, j)) * dd128(x[j]);
    }
    r[i] = acc.hi();
  }
  return r;
}

}  // namespace

QsvtIrReport solve_qsvt_ir(const qsvt::QsvtSolverContext& ctx, const linalg::Vector<double>& b,
                           const QsvtIrOptions& options) {
  const auto& A = ctx.A;
  const std::size_t n = b.size();
  expects(A.rows() == n, "solve_qsvt_ir: dimension mismatch");

  QsvtIrReport rep;
  rep.kappa = ctx.kappa_effective;
  rep.eps_l_requested = ctx.options.eps_l;
  rep.eps_l_effective = ctx.eps_l_effective;
  rep.poly_degree = ctx.target.degree();
  rep.poly_scale = ctx.poly_scale;
  if (const auto* program = qsvt::compiled_program_stats(ctx)) {
    rep.program_source_gates = program->source_gates;
    rep.program_ops = program->ops;
    rep.program_depth = program->depth;
    rep.program_compile_seconds = program->compile_seconds;
  }
  // The measured polynomial error sup |2k P(x) - 1/x| bounds the residual
  // contraction per iteration directly: in the paper's notation this
  // quantity IS eps_l * kappa (their eps_l is the solution relative error
  // ~ eps'/kappa; see Section III-A).
  const double rho = rep.eps_l_effective;
  rep.theoretical_iteration_bound =
      (rho > 0.0 && rho < 1.0)
          ? iteration_bound(options.eps, rho / rep.kappa, rep.kappa)
          : 0;

  const double norm_b = linalg::nrm2(b);
  expects(norm_b > 0.0, "solve_qsvt_ir: zero right-hand side");

  // Setup transfers (Fig. 1): BE(A^T), the phase vector, SP(b).
  const std::uint64_t be_gates = std::max<std::uint64_t>(ctx.be.circuit.size(), 1);
  rep.comm.record(hybrid::Direction::kCpuToQpu, "BE(A^T)",
                  hybrid::circuit_wire_bytes(be_gates), -1);
  rep.comm.record(hybrid::Direction::kCpuToQpu, "Phi",
                  hybrid::vector_wire_bytes(ctx.phases.phases.size()), -1);
  rep.comm.record(hybrid::Direction::kCpuToQpu, "SP(b)", hybrid::vector_wire_bytes(n), -1);

  auto fit_step = [&](const linalg::Vector<double>& x_base,
                      const linalg::Vector<double>& eta) {
    return options.use_brent ? qsvt::fit_step_brent(A, x_base, eta, b)
                             : qsvt::fit_step_closed_form(A, x_base, eta, b);
  };

  // --- First solve: x_0 = mu_0 * eta_0 ------------------------------------
  {
    const auto outcome = qsvt_solve_direction(ctx, b);
    rep.comm.record(hybrid::Direction::kQpuToCpu, "x_0", hybrid::vector_wire_bytes(n), -1);
    const auto fit = fit_step({}, outcome.direction);
    rep.x.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) rep.x[i] = fit.mu * outcome.direction[i];
    rep.solves.push_back({fit.mu, outcome.success_probability, outcome.be_calls,
                          outcome.circuit_gates});
    rep.total_be_calls += outcome.be_calls;
  }

  auto scaled_residual = [&](const linalg::Vector<double>& x, linalg::Vector<double>& r) {
    r = residual_high_precision(A, x, b, options.residual_precision);
    return linalg::nrm2(r) / norm_b;
  };

  linalg::Vector<double> r(n);
  double omega = scaled_residual(rep.x, r);
  rep.scaled_residuals.push_back(omega);

  // --- Refinement loop ------------------------------------------------------
  for (int it = 0; it < options.max_iterations; ++it) {
    if (omega <= options.eps) {
      rep.converged = true;
      break;
    }
    // SP(r_i) is the only CPU->QPU transfer per iteration (Fig. 1).
    rep.comm.record(hybrid::Direction::kCpuToQpu, "SP(r_" + std::to_string(it) + ")",
                    hybrid::vector_wire_bytes(n), it);
    const auto outcome = qsvt_solve_direction(ctx, r);  // normalizes internally
    rep.comm.record(hybrid::Direction::kQpuToCpu, "x_" + std::to_string(it + 1),
                    hybrid::vector_wire_bytes(n), it);

    // De-normalize: e_i = mu * eta minimizing ||A(x + mu eta) - b||.
    const auto fit = fit_step(rep.x, outcome.direction);
    for (std::size_t i = 0; i < n; ++i) rep.x[i] += fit.mu * outcome.direction[i];
    rep.solves.push_back({fit.mu, outcome.success_probability, outcome.be_calls,
                          outcome.circuit_gates});
    rep.total_be_calls += outcome.be_calls;
    rep.iterations = it + 1;

    const double omega_new = scaled_residual(rep.x, r);
    rep.scaled_residuals.push_back(omega_new);
    if (omega_new >= omega && omega_new > options.eps) {
      // Stagnation: the QSVT accuracy floor or u has been reached.
      break;
    }
    omega = omega_new;
  }
  rep.converged = rep.converged || omega <= options.eps;
  return rep;
}

QsvtIrReport solve_qsvt_ir(const linalg::Matrix<double>& A, const linalg::Vector<double>& b,
                           const QsvtIrOptions& options) {
  const auto ctx = qsvt::prepare_qsvt_solver(A, options.qsvt);
  return solve_qsvt_ir(ctx, b, options);
}

}  // namespace mpqls::solver
