#include "solver/qsvt_ir.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/dd128.hpp"
#include "qsvt/denormalize.hpp"
#include "qsvt/dist_solve.hpp"
#include "solver/theory.hpp"

namespace mpqls::solver {

namespace {

// Residual in the configured high precision u; the result is rounded back
// to double (the CPU working vector), which is exactly the Algorithm 2
// "compute r_i = b - A x_i at precision u" step.
linalg::Vector<double> residual_high_precision(const linalg::Matrix<double>& A,
                                               const linalg::Vector<double>& x,
                                               const linalg::Vector<double>& b,
                                               ResidualPrecision precision) {
  if (precision == ResidualPrecision::kDouble) {
    return linalg::residual(A, x, b);
  }
  using linalg::dd128;
  const std::size_t n = b.size();
  linalg::Vector<double> r(n);
  for (std::size_t i = 0; i < n; ++i) {
    dd128 acc(b[i]);
    for (std::size_t j = 0; j < n; ++j) {
      acc -= dd128(A(i, j)) * dd128(x[j]);
    }
    r[i] = acc.hi();
  }
  return r;
}

/// Static per-solve report header: context telemetry plus the Theorem
/// III.1 iteration bound — identical for every right-hand side served
/// from one context, shared by the scalar and batched loops.
QsvtIrReport init_report(const qsvt::QsvtSolverContext& ctx, const QsvtIrOptions& options) {
  QsvtIrReport rep;
  rep.kappa = ctx.kappa_effective;
  rep.eps_l_requested = ctx.options.eps_l;
  rep.eps_l_effective = ctx.eps_l_effective;
  rep.poly_degree = ctx.target.degree();
  rep.poly_scale = ctx.poly_scale;
  if (const auto* program = qsvt::compiled_program_stats(ctx)) {
    rep.program_source_gates = program->source_gates;
    rep.program_ops = program->ops;
    rep.program_depth = program->depth;
    rep.program_compile_seconds = program->compile_seconds;
  }
  // The measured polynomial error sup |2k P(x) - 1/x| bounds the residual
  // contraction per iteration directly: in the paper's notation this
  // quantity IS eps_l * kappa (their eps_l is the solution relative error
  // ~ eps'/kappa; see Section III-A).
  const double rho = rep.eps_l_effective;
  rep.theoretical_iteration_bound =
      (rho > 0.0 && rho < 1.0)
          ? iteration_bound(options.eps, rho / rep.kappa, rep.kappa)
          : 0;
  return rep;
}

/// Setup transfers (Fig. 1): BE(A^T), the phase vector, SP(b).
void record_setup_comm(const qsvt::QsvtSolverContext& ctx, std::size_t n, hybrid::CommLog& comm) {
  const std::uint64_t be_gates = std::max<std::uint64_t>(ctx.be.circuit.size(), 1);
  comm.record(hybrid::Direction::kCpuToQpu, "BE(A^T)", hybrid::circuit_wire_bytes(be_gates), -1);
  comm.record(hybrid::Direction::kCpuToQpu, "Phi",
              hybrid::vector_wire_bytes(ctx.phases.phases.size()), -1);
  comm.record(hybrid::Direction::kCpuToQpu, "SP(b)", hybrid::vector_wire_bytes(n), -1);
}

}  // namespace

QsvtIrReport solve_qsvt_ir(const qsvt::QsvtSolverContext& ctx, const linalg::Vector<double>& b,
                           const QsvtIrOptions& options) {
  // One-lane batch: Algorithm 2 lives once, in solve_qsvt_ir_batch. A
  // singleton batch takes the scalar QSVT path inside
  // qsvt_solve_directions, so this performs the historical scalar loop's
  // arithmetic in the same order (bitwise — the service determinism
  // tests pin it).
  return std::move(
      solve_qsvt_ir_batch(ctx, std::span<const linalg::Vector<double>>(&b, 1), options)[0]);
}

QsvtIrReport solve_qsvt_ir(const linalg::Matrix<double>& A, const linalg::Vector<double>& b,
                           const QsvtIrOptions& options) {
  const auto ctx = qsvt::prepare_qsvt_solver(A, options.qsvt);
  return solve_qsvt_ir(ctx, b, options);
}

std::vector<QsvtIrReport> solve_qsvt_ir_batch(const qsvt::QsvtSolverContext& ctx,
                                              std::span<const linalg::Vector<double>> bs,
                                              const QsvtIrOptions& options,
                                              BatchSolveStats* stats) {
  const auto& A = ctx.A;
  const std::size_t n = A.rows();
  expects(!bs.empty(), "solve_qsvt_ir_batch: at least one right-hand side");

  const bool adaptive = ctx.options.precision == qsvt::QpuPrecision::kAdaptive;
  const auto tier_precision = [](int tier) {
    return tier == kTierHalf     ? qsvt::QpuPrecision::kHalf
           : tier == kTierSingle ? qsvt::QpuPrecision::kSingle
                                 : qsvt::QpuPrecision::kDouble;
  };
  const auto tier_name = [](int tier) -> std::string_view {
    return tier == kTierHalf ? "half" : tier == kTierSingle ? "single" : "double";
  };
  const auto tier_floor = [&](int tier) {
    return tier == kTierHalf     ? options.escalation.half_floor
           : tier == kTierSingle ? options.escalation.single_floor
                                 : 0.0;
  };
  // Where the schedule starts. Fixed-precision contexts pin their tier for
  // the whole run (telemetry lands on it, no escalation). Adaptive starts
  // at half on the clean compiled gate path; noise trajectories run on the
  // interpreter, which has no fp16 register, so they start at single; the
  // matrix-function backend does all arithmetic in double regardless, so
  // adaptive is a no-op there.
  int initial_tier = kTierDouble;
  if (adaptive) {
    const bool noisy = ctx.options.noise.depolarizing_per_gate > 0.0 ||
                       ctx.options.noise.damping_per_gate > 0.0;
    if (ctx.options.backend != qsvt::Backend::kGateLevel) {
      initial_tier = kTierDouble;
    } else if (noisy || !ctx.programs) {
      initial_tier = kTierSingle;
    } else {
      initial_tier = kTierHalf;
    }
  } else {
    switch (ctx.options.precision) {
      case qsvt::QpuPrecision::kHalf: initial_tier = kTierHalf; break;
      case qsvt::QpuPrecision::kSingle: initial_tier = kTierSingle; break;
      default: initial_tier = kTierDouble; break;
    }
  }

  // Per-lane refinement state: each lane runs exactly the scalar loop's
  // decisions (de-normalization, convergence and stagnation checks, comm
  // records); only the QSVT calls are batched across lanes.
  struct Lane {
    const linalg::Vector<double>* b = nullptr;
    QsvtIrReport rep;
    linalg::Vector<double> r;    ///< current residual (the next lane RHS)
    double norm_b = 0.0;
    double omega = 0.0;          ///< last accepted scaled residual
    int it = 0;                  ///< refinement iterations completed
    int tier = kTierDouble;      ///< current precision tier of this lane
    bool dd_checked = false;     ///< dd128 verification already recorded
    bool active = true;
  };
  std::vector<Lane> lanes(bs.size());
  for (std::size_t l = 0; l < bs.size(); ++l) {
    Lane& lane = lanes[l];
    lane.b = &bs[l];
    expects(lane.b->size() == n, "solve_qsvt_ir_batch: dimension mismatch");
    lane.rep = init_report(ctx, options);
    lane.norm_b = linalg::nrm2(*lane.b);
    expects(lane.norm_b > 0.0, "solve_qsvt_ir_batch: zero right-hand side");
    lane.tier = initial_tier;
    record_setup_comm(ctx, n, lane.rep.comm);
  }

  auto lane_fit = [&](const Lane& lane, const linalg::Vector<double>& x_base,
                      const linalg::Vector<double>& eta) {
    return options.use_brent ? qsvt::fit_step_brent(A, x_base, eta, *lane.b)
                             : qsvt::fit_step_closed_form(A, x_base, eta, *lane.b);
  };
  auto scaled_residual = [&](Lane& lane) {
    lane.r = residual_high_precision(A, lane.rep.x, *lane.b, options.residual_precision);
    return linalg::nrm2(lane.r) / lane.norm_b;
  };
  // The one place dd128 enters the adaptive schedule: recompute the final
  // residual at u ~ 2^-104 to verify the double-precision convergence
  // signal is not a rounding artifact. The factor-2 guard matches the
  // bench's equal-accuracy window (‖r‖/‖b‖ within 2× counts as equal).
  auto dd128_scaled_residual = [&](const Lane& lane) {
    MPQLS_TRACE_SPAN(dd_span, options.trace, "dd128_verify", options.trace_span);
    const auto r =
        residual_high_precision(A, lane.rep.x, *lane.b, ResidualPrecision::kDoubleDouble);
    return linalg::nrm2(r) / lane.norm_b;
  };
  auto escalate = [](Lane& lane, int to_tier) {
    lane.tier = to_tier;
    ++lane.rep.precision_switches;
  };

  qsvt::PanelExecStats pstats;

  // --- First solve on every lane: x_0 = mu_0 * eta_0, one panel sweep ---
  // All lanes share the initial tier, so this is a single tier group.
  {
    MPQLS_TRACE_SPAN(replay_span, options.trace, "replay", options.trace_span);
    replay_span.attr("round", std::uint64_t{0});
    replay_span.attr("tier", tier_name(initial_tier));
    replay_span.attr("lanes", static_cast<std::uint64_t>(lanes.size()));
    std::vector<const linalg::Vector<double>*> batch;
    batch.reserve(lanes.size());
    for (const Lane& lane : lanes) batch.push_back(lane.b);
    const auto outcomes =
        options.dist
            ? options.dist->solve_directions(ctx, batch, tier_precision(initial_tier))
            : qsvt::qsvt_solve_directions(ctx, batch, &pstats, tier_precision(initial_tier));
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      Lane& lane = lanes[l];
      const auto& outcome = outcomes[l];
      lane.rep.comm.record(hybrid::Direction::kQpuToCpu, "x_0", hybrid::vector_wire_bytes(n), -1);
      const auto fit = lane_fit(lane, {}, outcome.direction);
      lane.rep.x.assign(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) lane.rep.x[i] = fit.mu * outcome.direction[i];
      lane.rep.solves.push_back({fit.mu, outcome.success_probability, outcome.be_calls,
                                 outcome.circuit_gates});
      lane.rep.total_be_calls += outcome.be_calls;
      ++lane.rep.tier_solves[static_cast<std::size_t>(lane.tier)];
      lane.omega = scaled_residual(lane);
      lane.rep.scaled_residuals.push_back(lane.omega);
    }
  }

  // --- Lockstep refinement: active lanes advance one iteration per round,
  // their residuals sharing one panel sweep per precision tier. Converged
  // and stagnated lanes drop out, so occupancy may shrink round over
  // round; adaptive lanes escalate tiers independently, so a round may
  // split into up to three tier-group sweeps. ---
  int round = 0;
  for (;;) {
    ++round;
    std::vector<std::size_t> roster;
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      Lane& lane = lanes[l];
      if (!lane.active) continue;
      if (lane.omega <= options.eps) {
        if (adaptive && !lane.dd_checked) {
          // Final verification: confirm convergence at u ~ 2^-104 before
          // trusting a residual produced by a cheap-tier schedule. A
          // failed check keeps the lane refining on the double tier.
          const double dd = dd128_scaled_residual(lane);
          lane.dd_checked = true;
          lane.rep.dd128_final_residual = dd;
          if (dd > 2.0 * options.eps && lane.tier < kTierDouble) {
            escalate(lane, kTierDouble);
          } else {
            lane.rep.dd128_verified = dd <= 2.0 * options.eps;
            lane.rep.converged = true;
            lane.active = false;
            continue;
          }
        } else {
          lane.rep.converged = true;
          lane.active = false;
          continue;
        }
      }
      if (lane.it >= options.max_iterations) {
        lane.active = false;
        continue;
      }
      if (adaptive) {
        // Proactive floors: below a tier's floor its roundoff stops the
        // contraction, so the next iteration runs one tier up.
        while (lane.tier < kTierDouble && lane.omega <= tier_floor(lane.tier)) {
          escalate(lane, lane.tier + 1);
        }
      }
      roster.push_back(l);
    }
    if (roster.empty()) break;

    // Snapshot the tier groups before any solve: a lane that escalates
    // after its group's sweep must not be swept again by a higher tier's
    // group in the same round.
    std::array<std::vector<std::size_t>, 3> groups;
    for (const std::size_t l : roster) {
      groups[static_cast<std::size_t>(lanes[l].tier)].push_back(l);
    }
    const auto group_switches = [&](const std::vector<std::size_t>& group) {
      std::uint64_t total = 0;
      for (const std::size_t l : group) total += lanes[l].rep.precision_switches;
      return total;
    };
    for (int tier = kTierHalf; tier <= kTierDouble; ++tier) {
      const auto& group = groups[static_cast<std::size_t>(tier)];
      if (group.empty()) continue;

      MPQLS_TRACE_SPAN(replay_span, options.trace, "replay", options.trace_span);
      replay_span.attr("round", static_cast<std::uint64_t>(round));
      replay_span.attr("tier", tier_name(tier));
      replay_span.attr("lanes", static_cast<std::uint64_t>(group.size()));
      const std::uint64_t switches_before = replay_span ? group_switches(group) : 0;

      std::vector<const linalg::Vector<double>*> batch;
      batch.reserve(group.size());
      for (const std::size_t l : group) {
        Lane& lane = lanes[l];
        // SP(r_i) is the only CPU->QPU transfer per iteration (Fig. 1).
        lane.rep.comm.record(hybrid::Direction::kCpuToQpu,
                             "SP(r_" + std::to_string(lane.it) + ")",
                             hybrid::vector_wire_bytes(n), lane.it);
        batch.push_back(&lane.r);
      }
      const auto outcomes =
          options.dist
              ? options.dist->solve_directions(ctx, batch, tier_precision(tier))
              : qsvt::qsvt_solve_directions(ctx, batch, &pstats, tier_precision(tier));
      for (std::size_t k = 0; k < group.size(); ++k) {
        Lane& lane = lanes[group[k]];
        const auto& outcome = outcomes[k];
        const int it = lane.it;
        lane.rep.comm.record(hybrid::Direction::kQpuToCpu, "x_" + std::to_string(it + 1),
                             hybrid::vector_wire_bytes(n), it);

        // De-normalize: e_i = mu * eta minimizing ||A(x + mu eta) - b||.
        const auto fit = lane_fit(lane, lane.rep.x, outcome.direction);
        for (std::size_t i = 0; i < n; ++i) lane.rep.x[i] += fit.mu * outcome.direction[i];
        lane.rep.solves.push_back({fit.mu, outcome.success_probability, outcome.be_calls,
                                   outcome.circuit_gates});
        lane.rep.total_be_calls += outcome.be_calls;
        ++lane.rep.tier_solves[static_cast<std::size_t>(tier)];
        ++lane.rep.tier_iterations[static_cast<std::size_t>(tier)];
        lane.rep.iterations = it + 1;
        lane.it = it + 1;

        const double prev = lane.omega;
        const double omega_new = scaled_residual(lane);
        lane.rep.scaled_residuals.push_back(omega_new);
        if (adaptive) {
          // The fit minimizes over mu (mu = 0 allowed), so accepting the
          // update never worsens the residual; "stall" means insufficient
          // contraction, answered by escalating rather than giving up.
          if (omega_new < lane.omega) lane.omega = omega_new;
          if (omega_new > options.eps &&
              omega_new > options.escalation.stall_ratio * prev) {
            if (lane.tier < kTierDouble) {
              escalate(lane, lane.tier + 1);
            } else if (omega_new >= prev) {
              // Double-tier stagnation: the precision-u floor is reached.
              lane.active = false;
            }
          }
        } else if (omega_new >= lane.omega && omega_new > options.eps) {
          // Stagnation: the QSVT accuracy floor or u has been reached.
          lane.active = false;
        } else {
          lane.omega = omega_new;
        }
      }
      if (replay_span) {
        const std::uint64_t escalated = group_switches(group) - switches_before;
        if (escalated != 0) replay_span.attr("escalations", escalated);
      }
    }
  }

  std::vector<QsvtIrReport> reports;
  reports.reserve(lanes.size());
  for (Lane& lane : lanes) {
    if (!lane.rep.converged && lane.omega <= options.eps) {
      // Lanes that hit eps on their very last permitted iteration exit the
      // round loop before the roster sees them; give adaptive lanes the
      // same final dd128 verification they would have received there.
      if (adaptive && !lane.dd_checked) {
        const double dd = dd128_scaled_residual(lane);
        lane.dd_checked = true;
        lane.rep.dd128_final_residual = dd;
        lane.rep.dd128_verified = dd <= 2.0 * options.eps;
      }
      lane.rep.converged = true;
    }
    reports.push_back(std::move(lane.rep));
  }
  if (stats) {
    stats->panels_executed += pstats.panels;
    stats->panel_lanes_total += pstats.lanes;
  }
  return reports;
}

}  // namespace mpqls::solver
