#include "solver/theory.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace mpqls::solver {

std::uint64_t iteration_bound(double eps, double eps_l, double kappa) {
  expects(eps > 0.0 && eps < 1.0, "iteration_bound: eps in (0,1)");
  const double rho = eps_l * kappa;
  expects(rho > 0.0 && rho < 1.0, "iteration_bound: requires eps_l * kappa < 1");
  // The tiny slack keeps exact-boundary ratios (e.g. log 1e-11 / log 1e-1
  // = 11 + 2 ulp) from ticking the ceil up a full iteration.
  return static_cast<std::uint64_t>(std::ceil(std::log(eps) / std::log(rho) - 1e-9));
}

double contraction_factor(double eps_l, double kappa) { return eps_l * kappa; }

QuantumCost qsvt_only_cost(double be_cost, double kappa, double eps) {
  QuantumCost c;
  c.solves = 1.0;
  c.c_qsvt = be_cost * kappa * std::log(kappa / eps);
  c.samples = 1.0 / (eps * eps);
  c.total = c.solves * c.c_qsvt * c.samples;
  return c;
}

QuantumCost qsvt_ir_cost(double be_cost, double kappa, double eps, double eps_l) {
  QuantumCost c;
  c.solves = static_cast<double>(iteration_bound(eps, eps_l, kappa));
  c.c_qsvt = be_cost * kappa * std::log(kappa / eps_l);
  c.samples = 1.0 / (eps_l * eps_l);
  c.total = c.solves * c.c_qsvt * c.samples;
  return c;
}

}  // namespace mpqls::solver
