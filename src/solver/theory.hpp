// Closed-form cost/convergence expressions from the paper: Theorem III.1's
// iteration bound and the Table I quantum-cost comparison between plain
// QSVT and QSVT + mixed-precision iterative refinement.
#pragma once

#include <cstdint>

namespace mpqls::solver {

/// Theorem III.1: ceil(log(eps) / log(eps_l * kappa)) refinement solves
/// reach scaled residual eps, provided eps_l * kappa < 1.
std::uint64_t iteration_bound(double eps, double eps_l, double kappa);

/// Contraction factor of the scaled residual per iteration (= eps_l*kappa).
double contraction_factor(double eps_l, double kappa);

/// One row of Table I.
struct QuantumCost {
  double solves = 0.0;       ///< number of calls to the QSVT solver
  double c_qsvt = 0.0;       ///< cost of one QSVT (block-encoding calls)
  double samples = 0.0;      ///< measurement repetitions
  double total = 0.0;        ///< product of the three
};

/// Plain QSVT at full accuracy eps: 1 solve, C = B kappa log(kappa/eps),
/// 1/eps^2 samples.
QuantumCost qsvt_only_cost(double be_cost, double kappa, double eps);

/// QSVT with iterative refinement at low accuracy eps_l: the bound above
/// times C = B kappa log(kappa/eps_l) times 1/eps_l^2 samples.
QuantumCost qsvt_ir_cost(double be_cost, double kappa, double eps, double eps_l);

}  // namespace mpqls::solver
