// Algorithm 2 of the paper: mixed-precision iterative refinement around
// the QSVT linear solver. The QPU computes low-accuracy solution
// directions (accuracy eps_l, optionally in single-precision arithmetic);
// the CPU computes residuals and updates in high precision u, normalizes
// each right-hand side before shipping it (Remark 2), de-normalizes the
// returned direction with Brent's method, and stops on the scaled
// residual omega = ||b - A x|| / ||b|| <= eps.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hybrid/comm.hpp"
#include "linalg/matrix.hpp"
#include "qsvt/solve.hpp"

namespace mpqls::solver {

enum class ResidualPrecision {
  kDouble,       ///< u = 2^-53 (the paper's setting with eps = 1e-11)
  kDoubleDouble  ///< u ~ 2^-104 via dd128 (headroom ablation)
};

struct QsvtIrOptions {
  double eps = 1e-11;    ///< target scaled residual
  int max_iterations = 60;
  bool use_brent = true;  ///< Brent de-normalization (paper) vs closed form
  ResidualPrecision residual_precision = ResidualPrecision::kDouble;
  qsvt::QsvtOptions qsvt = {};  ///< eps_l, backend, precision, shots, ...
};

struct SolveTelemetry {
  double mu = 0.0;                  ///< de-normalization step length
  double success_probability = 0.0;
  std::uint64_t be_calls = 0;
  std::uint64_t circuit_gates = 0;
};

struct QsvtIrReport {
  linalg::Vector<double> x;
  std::vector<double> scaled_residuals;  ///< omega after each solve (0 = first)
  int iterations = 0;                    ///< refinement iterations
  bool converged = false;

  double kappa = 0.0;                  ///< condition estimate used
  double eps_l_requested = 0.0;
  double eps_l_effective = 0.0;        ///< measured polynomial accuracy
  int poly_degree = 0;
  double poly_scale = 1.0;
  std::uint64_t theoretical_iteration_bound = 0;  ///< Theorem III.1
  std::uint64_t total_be_calls = 0;

  /// Compiled-program telemetry (gate backend; all zero for the
  /// matrix-function backend): how the execution engine lowered the cached
  /// QSVT circuit, and what the one-off compilation cost.
  std::uint64_t program_source_gates = 0;  ///< gates before fusion
  std::uint64_t program_ops = 0;           ///< executable ops after fusion
  std::uint64_t program_depth = 0;         ///< greedy depth of the program
  double program_compile_seconds = 0.0;

  std::vector<SolveTelemetry> solves;  ///< per QSVT call (first + iterations)
  hybrid::CommLog comm;                ///< Fig. 1 transfer timeline
};

/// Solve A x = b with Algorithm 2.
QsvtIrReport solve_qsvt_ir(const linalg::Matrix<double>& A, const linalg::Vector<double>& b,
                           const QsvtIrOptions& options = {});

/// Variant reusing an existing solver context (the paper's point that
/// BE(A^T) and the phases are compiled once and reused; also what the
/// benchmarks use to sweep right-hand sides).
QsvtIrReport solve_qsvt_ir(const qsvt::QsvtSolverContext& ctx, const linalg::Vector<double>& b,
                           const QsvtIrOptions& options);

/// Panel accounting of a batched refinement run (see solve_qsvt_ir_batch):
/// cumulative sweep and lane counts, the numbers the service exports as
/// its panel-occupancy telemetry.
struct BatchSolveStats {
  std::uint64_t panels_executed = 0;   ///< compiled-program panel sweeps
  std::uint64_t panel_lanes_total = 0; ///< RHS lanes those sweeps carried
};

/// Algorithm 2 over a batch of right-hand sides in lockstep: every
/// refinement round batches the still-active lanes' residuals into ONE
/// panel replay of the context's compiled program (qsvt_solve_directions),
/// then de-normalizes, updates and checks convergence per lane exactly as
/// the scalar loop does. Lanes drop out as they converge or stagnate, so
/// later panels may run below full occupancy. Reports are ordered like
/// `bs` and agree with per-RHS solve_qsvt_ir up to the panel kernels'
/// vectorization-dependent rounding (bitwise on the scalar fallback).
std::vector<QsvtIrReport> solve_qsvt_ir_batch(const qsvt::QsvtSolverContext& ctx,
                                              std::span<const linalg::Vector<double>> bs,
                                              const QsvtIrOptions& options,
                                              BatchSolveStats* stats = nullptr);

}  // namespace mpqls::solver
