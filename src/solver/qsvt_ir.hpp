// Algorithm 2 of the paper: mixed-precision iterative refinement around
// the QSVT linear solver. The QPU computes low-accuracy solution
// directions (accuracy eps_l, optionally in single-precision arithmetic);
// the CPU computes residuals and updates in high precision u, normalizes
// each right-hand side before shipping it (Remark 2), de-normalizes the
// returned direction with Brent's method, and stops on the scaled
// residual omega = ||b - A x|| / ||b|| <= eps.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/trace.hpp"
#include "hybrid/comm.hpp"
#include "linalg/matrix.hpp"
#include "qsvt/solve.hpp"

namespace mpqls::qsvt::dist {
class DistSolveSession;
}

namespace mpqls::solver {

enum class ResidualPrecision {
  kDouble,       ///< u = 2^-53 (the paper's setting with eps = 1e-11)
  kDoubleDouble  ///< u ~ 2^-104 via dd128 (headroom ablation)
};

/// When `qsvt.precision == kAdaptive`, how the refinement loop escalates a
/// lane's tier (half -> single -> double). Two triggers, both per lane:
///  * proactive floors — once the residual drops to a tier's floor the next
///    iteration runs one tier up (the cheap tier has done all the work its
///    roundoff lets it contribute; Remark 2 normalization is what makes the
///    cheap iterations contract at full rate above the floor);
///  * stall — an iteration that contracts by less than `stall_ratio`
///    escalates immediately (catches whatever the static floors miss).
/// Escalation is monotone; the double tier keeps the fixed-precision
/// stagnation rule (deactivate when the residual stops improving).
/// Default floors come from the measured tier behavior: the half tier's
/// ~2^-11 amplitude rounding caps its contraction near 1e-2 per iteration,
/// so it only pays for the large-residual solves (floor 3e-2 ≈ first solve
/// plus change); the single tier contracts at the double tier's full rate
/// arbitrarily deep — normalized residuals absorb its roundoff exactly as
/// Remark 2 argues — so its floor sits below any practical eps and the
/// stall trigger alone decides when double is really needed.
struct EscalationPolicy {
  double stall_ratio = 0.5;   ///< escalate when omega_new > stall_ratio * omega
  double half_floor = 3e-2;   ///< leave the half tier at this scaled residual
  double single_floor = 1e-12;  ///< leave the single tier at this scaled residual
};

struct QsvtIrOptions {
  double eps = 1e-11;    ///< target scaled residual
  int max_iterations = 60;
  bool use_brent = true;  ///< Brent de-normalization (paper) vs closed form
  ResidualPrecision residual_precision = ResidualPrecision::kDouble;
  EscalationPolicy escalation = {};  ///< adaptive-precision schedule knobs
  qsvt::QsvtOptions qsvt = {};  ///< eps_l, backend, precision, shots, ...

  /// Runtime-only span sink (never hashed into fingerprints, never wire
  /// encoded): when set, the refinement loop records one "replay" span
  /// per tier-group sweep (attrs: round, tier, lanes, escalations) and a
  /// "dd128_verify" span per final verification, parented under
  /// `trace_span`. Null = no recording.
  trace::TraceContext trace = {};
  std::uint64_t trace_span = 0;

  /// Runtime-only distributed-execution session (like `trace`, never
  /// hashed into fingerprints, never wire encoded): when set, every QSVT
  /// replay runs this rank's shard of the statevector through the
  /// session instead of the local panel path. The classical refinement
  /// loop is untouched — each rank receives identical allreduced
  /// outcomes, takes identical tier decisions, and stays in lockstep
  /// with its peers without extra synchronization. Null = single-node.
  std::shared_ptr<qsvt::dist::DistSolveSession> dist;
};

struct SolveTelemetry {
  double mu = 0.0;                  ///< de-normalization step length
  double success_probability = 0.0;
  std::uint64_t be_calls = 0;
  std::uint64_t circuit_gates = 0;
};

struct QsvtIrReport {
  linalg::Vector<double> x;
  std::vector<double> scaled_residuals;  ///< omega after each solve (0 = first)
  int iterations = 0;                    ///< refinement iterations
  bool converged = false;

  double kappa = 0.0;                  ///< condition estimate used
  double eps_l_requested = 0.0;
  double eps_l_effective = 0.0;        ///< measured polynomial accuracy
  int poly_degree = 0;
  double poly_scale = 1.0;
  std::uint64_t theoretical_iteration_bound = 0;  ///< Theorem III.1
  std::uint64_t total_be_calls = 0;

  /// Compiled-program telemetry (gate backend; all zero for the
  /// matrix-function backend): how the execution engine lowered the cached
  /// QSVT circuit, and what the one-off compilation cost.
  std::uint64_t program_source_gates = 0;  ///< gates before fusion
  std::uint64_t program_ops = 0;           ///< executable ops after fusion
  std::uint64_t program_depth = 0;         ///< greedy depth of the program
  double program_compile_seconds = 0.0;

  /// Per-precision-tier execution telemetry, indexed half/single/double
  /// (kTierHalf..kTierDouble). Fixed-precision runs report everything
  /// under their single tier; adaptive runs spread across the schedule.
  std::array<std::uint64_t, 3> tier_solves{};      ///< QSVT replays per tier
  std::array<std::uint64_t, 3> tier_iterations{};  ///< refinement iterations per tier
  std::uint64_t precision_switches = 0;            ///< tier escalations taken
  /// Adaptive runs re-verify the final double-precision residual in dd128
  /// before declaring convergence (the only place dd128 enters the
  /// adaptive schedule). False for fixed-precision runs and for the rare
  /// adaptive run whose dd128 residual disagreed with double's.
  bool dd128_verified = false;
  double dd128_final_residual = 0.0;  ///< the dd128-recomputed scaled residual

  std::vector<SolveTelemetry> solves;  ///< per QSVT call (first + iterations)
  hybrid::CommLog comm;                ///< Fig. 1 transfer timeline
};

/// Tier indices of the per-precision telemetry arrays.
inline constexpr int kTierHalf = 0;
inline constexpr int kTierSingle = 1;
inline constexpr int kTierDouble = 2;

/// Solve A x = b with Algorithm 2.
QsvtIrReport solve_qsvt_ir(const linalg::Matrix<double>& A, const linalg::Vector<double>& b,
                           const QsvtIrOptions& options = {});

/// Variant reusing an existing solver context (the paper's point that
/// BE(A^T) and the phases are compiled once and reused; also what the
/// benchmarks use to sweep right-hand sides).
QsvtIrReport solve_qsvt_ir(const qsvt::QsvtSolverContext& ctx, const linalg::Vector<double>& b,
                           const QsvtIrOptions& options);

/// Panel accounting of a batched refinement run (see solve_qsvt_ir_batch):
/// cumulative sweep and lane counts, the numbers the service exports as
/// its panel-occupancy telemetry.
struct BatchSolveStats {
  std::uint64_t panels_executed = 0;   ///< compiled-program panel sweeps
  std::uint64_t panel_lanes_total = 0; ///< RHS lanes those sweeps carried
};

/// Algorithm 2 over a batch of right-hand sides in lockstep: every
/// refinement round batches the still-active lanes' residuals into ONE
/// panel replay of the context's compiled program (qsvt_solve_directions),
/// then de-normalizes, updates and checks convergence per lane exactly as
/// the scalar loop does. Lanes drop out as they converge or stagnate, so
/// later panels may run below full occupancy. Reports are ordered like
/// `bs` and agree with per-RHS solve_qsvt_ir up to the panel kernels'
/// vectorization-dependent rounding (bitwise on the scalar fallback).
std::vector<QsvtIrReport> solve_qsvt_ir_batch(const qsvt::QsvtSolverContext& ctx,
                                              std::span<const linalg::Vector<double>> bs,
                                              const QsvtIrOptions& options,
                                              BatchSolveStats* stats = nullptr);

}  // namespace mpqls::solver
