// Polynomial approximations of the inverse function for QSVT matrix
// inversion (Section II-A4 of the paper). Two construction paths:
//
//  1. `inverse_poly_analytic` — the closed form of Eq. (4): the Chebyshev
//     expansion of f_{eps,kappa}(x) = (1 - (1 - x^2)^b) / x with
//     b = ceil(kappa^2 log(kappa/eps)), truncated at degree
//     2 D(eps,kappa) + 1 (Gilyen et al. 2019; Martyn et al. 2021). The
//     binomial-tail coefficients are evaluated with the regularized
//     incomplete beta function so large b stays stable.
//
//  2. `inverse_poly_interpolated` — numerical Chebyshev interpolation of
//     the same target followed by adaptive tail truncation. Produces the
//     same polynomial family at (often much) lower degree than the
//     analytic bound — this is the practical path for large kappa, where
//     the paper switches to the estimation pipeline of Novikau-Joseph [32].
//
// Both return an odd series approximating 1/(2 kappa x) on
// [-1, -1/kappa] u [1/kappa, 1], i.e. the target whose QSVT implements
// A^{-1} / (2 kappa) on the well-conditioned subspace.
#pragma once

#include <cstdint>

#include "poly/chebyshev.hpp"

namespace mpqls::poly {

/// b(eps, kappa) = ceil(kappa^2 * log(kappa / eps))  [Gilyen et al.]
std::uint64_t inverse_b_parameter(double kappa, double eps);

/// D(eps, kappa) = ceil(sqrt(b * log(4 b / eps)))  [Martyn et al.]
/// The resulting polynomial degree is 2D + 1.
std::uint64_t inverse_degree_parameter(std::uint64_t b, double eps);

/// The smooth inverse target f_{eps,kappa}(x) = (1 - (1 - x^2)^b)/x,
/// evaluated stably (expm1/log1p) including x == 0.
double smooth_inverse_target(double x, std::uint64_t b);

struct InversePoly {
  ChebSeries series;     ///< odd polynomial ~ 1/(2 kappa x) on the domain
  double kappa = 1.0;
  double eps = 0.0;      ///< requested approximation accuracy (of 1/(2k x))
  std::uint64_t b = 0;   ///< smoothing parameter used
  double max_abs = 0.0;  ///< max |P| on [-1, 1] (before any rescaling)
  double achieved_error = 0.0;  ///< measured max |P(x) - 1/(2 kappa x)| on the domain
};

/// Eq. (4) of the paper: analytic Chebyshev coefficients, scaled by
/// 1/(2 kappa) to make the target 1/(2 kappa x).
InversePoly inverse_poly_analytic(double kappa, double eps);

/// Numerically interpolated + truncated variant of the same target.
/// `degree_margin` multiplies the truncation degree estimate (>= 1.0).
InversePoly inverse_poly_interpolated(double kappa, double eps);

/// Even polynomial window that is ~0 on |x| < gap/2 and ~1 on |x| > gap
/// (erf-pair construction, Low-Chuang style smoothing), interpolated to
/// accuracy ~eps. Multiplying an inverse approximation by this window
/// enforces the |P| <= 1 QSVT constraint near the origin (Section II-A4's
/// "rectangle" polynomial).
ChebSeries rect_window(double gap, double eps);

}  // namespace mpqls::poly
