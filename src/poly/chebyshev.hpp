// Chebyshev series machinery. The QSVT consumes polynomials expressed in
// the Chebyshev basis (Eq. (4) of the paper is given there directly), which
// sidesteps Runge's phenomenon at the high degrees matrix inversion needs.
#pragma once

#include <functional>
#include <vector>

namespace mpqls::poly {

enum class Parity { kEven, kOdd, kNone };

/// Polynomial in the Chebyshev basis: p(x) = sum_k coeffs[k] * T_k(x).
class ChebSeries {
 public:
  ChebSeries() = default;
  explicit ChebSeries(std::vector<double> coeffs) : coeffs_(std::move(coeffs)) {}

  const std::vector<double>& coeffs() const { return coeffs_; }
  std::vector<double>& coeffs() { return coeffs_; }
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  bool empty() const { return coeffs_.empty(); }

  /// Evaluate with the Clenshaw recurrence (numerically stable on [-1,1]).
  double evaluate(double x) const;

  /// Evaluate at many points.
  std::vector<double> evaluate(const std::vector<double>& xs) const;

  /// Parity of the series: kOdd/kEven if all non-matching coefficients are
  /// below `tol` in magnitude, else kNone.
  Parity parity(double tol = 1e-12) const;

  /// Drop trailing coefficients smaller than `tol` (in absolute value).
  ChebSeries truncated(double tol) const;

  /// Zero all coefficients of the wrong parity (used to clean numerically
  /// interpolated odd/even targets).
  ChebSeries parity_projected(Parity p) const;

  /// max |p(x)| over a uniform grid of `samples` points on [lo, hi].
  double max_abs_on(double lo, double hi, int samples = 2001) const;

  ChebSeries scaled(double factor) const;
  ChebSeries operator+(const ChebSeries& other) const;
  ChebSeries operator-(const ChebSeries& other) const;

  /// Product using T_m T_n = (T_{m+n} + T_{|m-n|}) / 2.
  ChebSeries operator*(const ChebSeries& other) const;

 private:
  std::vector<double> coeffs_;
};

/// Chebyshev interpolation: coefficients of the degree-`degree` interpolant
/// of f through the Chebyshev-Gauss nodes x_j = cos(pi (j + 1/2) / (degree+1)).
/// For f analytic the coefficients decay geometrically, so pairing this
/// with ChebSeries::truncated gives near-minimal degrees.
ChebSeries cheb_interpolate(const std::function<double(double)>& f, int degree);

/// T_k(x) for a single k (hypot-stable for |x| <= 1 and beyond).
double chebyshev_t(int k, double x);

}  // namespace mpqls::poly
