#include "poly/inverse_poly.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/special.hpp"

namespace mpqls::poly {

std::uint64_t inverse_b_parameter(double kappa, double eps) {
  expects(kappa >= 1.0, "inverse_b_parameter: kappa >= 1 required");
  expects(eps > 0.0 && eps < 1.0, "inverse_b_parameter: eps in (0,1) required");
  return static_cast<std::uint64_t>(std::ceil(kappa * kappa * std::log(kappa / eps)));
}

std::uint64_t inverse_degree_parameter(std::uint64_t b, double eps) {
  expects(b >= 1, "inverse_degree_parameter: b >= 1 required");
  const double bd = static_cast<double>(b);
  return static_cast<std::uint64_t>(std::ceil(std::sqrt(bd * std::log(4.0 * bd / eps))));
}

double smooth_inverse_target(double x, std::uint64_t b) {
  if (x == 0.0) return 0.0;  // odd function, removable zero
  // 1 - (1-x^2)^b = -expm1(b * log1p(-x^2)), stable for x^2 << 1.
  const double x2 = x * x;
  if (x2 >= 1.0) return 1.0 / x;
  return -std::expm1(static_cast<double>(b) * std::log1p(-x2)) / x;
}

namespace {

// Measure max_{x in [1/kappa, 1]} |2 kappa| * |P(x) - 1/(2 kappa x)|, the
// error relative to the inverse target (log-spaced samples resolve the
// boundary layer near 1/kappa).
double measure_error(const ChebSeries& p, double kappa, int samples = 4001) {
  double worst = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / (samples - 1);
    const double x = std::pow(kappa, -(1.0 - t));  // 1/kappa .. 1
    const double err = std::fabs(p.evaluate(x) - 1.0 / (2.0 * kappa * x));
    worst = std::fmax(worst, 2.0 * kappa * err);
  }
  return worst;
}

InversePoly finalize(ChebSeries series, double kappa, double eps, std::uint64_t b) {
  InversePoly out;
  out.kappa = kappa;
  out.eps = eps;
  out.b = b;
  out.max_abs = series.max_abs_on(-1.0, 1.0, 4001);
  out.achieved_error = measure_error(series, kappa);
  out.series = std::move(series);
  return out;
}

}  // namespace

InversePoly inverse_poly_analytic(double kappa, double eps) {
  const std::uint64_t b = inverse_b_parameter(kappa, eps / 2.0);
  const std::uint64_t D = inverse_degree_parameter(b, eps / 2.0);
  // Eq. (4): coefficient of T_{2j+1} is 4 (-1)^j P[X >= b+j+1],
  // X ~ Binomial(2b, 1/2); overall scale 1/(2 kappa) retargets 1/x to
  // 1/(2 kappa x).
  std::vector<double> coeffs(2 * D + 2, 0.0);
  for (std::uint64_t j = 0; j <= D; ++j) {
    const double tail = binomial_tail_half(2 * b, static_cast<std::int64_t>(b + j + 1));
    const double sign = (j % 2 == 0) ? 1.0 : -1.0;
    coeffs[2 * j + 1] = 4.0 * sign * tail / (2.0 * kappa);
  }
  return finalize(ChebSeries(std::move(coeffs)), kappa, eps, b);
}

InversePoly inverse_poly_interpolated(double kappa, double eps) {
  const std::uint64_t b = inverse_b_parameter(kappa, eps / 2.0);
  const std::uint64_t D = inverse_degree_parameter(b, eps / 2.0);
  const int paper_degree = static_cast<int>(2 * D + 1);

  const auto target = [kappa, b](double x) {
    return smooth_inverse_target(x, b) / (2.0 * kappa);
  };
  // Interpolate at the analytic (provably sufficient) degree, then let the
  // geometric tail decay tell us the degree actually required.
  ChebSeries dense = cheb_interpolate(target, paper_degree).parity_projected(Parity::kOdd);
  const double tail_tol = eps / (2.0 * kappa) * 1e-2;
  ChebSeries series = dense.truncated(tail_tol);
  auto result = finalize(std::move(series), kappa, eps, b);

  // If truncation was too aggressive (rare), fall back to the dense series.
  if (result.achieved_error > eps && dense.degree() > result.series.degree()) {
    result = finalize(std::move(dense), kappa, eps, b);
  }
  return result;
}

ChebSeries rect_window(double gap, double eps) {
  expects(gap > 0.0 && gap < 1.0, "rect_window: gap in (0,1) required");
  expects(eps > 0.0 && eps < 0.5, "rect_window: eps in (0,0.5) required");
  // Smooth step centered at gap*3/4 with the erf transition fitting inside
  // [gap/2, gap]: w(x) = 1 - 0.5*(erf(s(x+t)) - erf(s(x-t))), even in x.
  const double t = 0.75 * gap;
  const double erfc_inv = std::sqrt(std::log(2.0 / (M_PI * eps * eps)));
  const double s = erfc_inv / (0.25 * gap);
  const auto w = [s, t](double x) {
    return 1.0 - 0.5 * (std::erf(s * (x + t)) - std::erf(s * (x - t)));
  };
  // Chebyshev nodes are sparse near x = 0 where the transition sits, so
  // accept on measured function error (transition-focused grid), not on
  // coefficient decay.
  auto max_error = [&](const ChebSeries& p) {
    double worst = 0.0;
    for (int i = 0; i <= 400; ++i) {  // dense inside the transition band
      const double x = 2.0 * gap * i / 400.0;
      worst = std::fmax(worst, std::fabs(p.evaluate(x) - w(x)));
    }
    for (int i = 0; i <= 400; ++i) {  // coarse across the rest of [0, 1]
      const double x = 2.0 * gap + (1.0 - 2.0 * gap) * i / 400.0;
      worst = std::fmax(worst, std::fabs(p.evaluate(x) - w(x)));
    }
    return worst;
  };
  int degree = std::max(64, static_cast<int>(2.0 * s));
  for (;;) {
    ChebSeries series =
        cheb_interpolate(w, degree).parity_projected(Parity::kEven).truncated(eps * 1e-2);
    if (max_error(series) <= eps || degree >= (1 << 16)) return series;
    degree *= 2;
  }
}

}  // namespace mpqls::poly
