#include "poly/chebyshev.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/contracts.hpp"

namespace mpqls::poly {

double ChebSeries::evaluate(double x) const {
  if (coeffs_.empty()) return 0.0;
  // Clenshaw recurrence.
  double b1 = 0.0, b2 = 0.0;
  for (std::size_t k = coeffs_.size(); k-- > 1;) {
    const double b0 = coeffs_[k] + 2.0 * x * b1 - b2;
    b2 = b1;
    b1 = b0;
  }
  return coeffs_[0] + x * b1 - b2;
}

std::vector<double> ChebSeries::evaluate(const std::vector<double>& xs) const {
  std::vector<double> out(xs.size());
  const std::int64_t n = static_cast<std::int64_t>(xs.size());
#pragma omp parallel for if (n >= 1024)
  for (std::int64_t i = 0; i < n; ++i) out[i] = evaluate(xs[i]);
  return out;
}

Parity ChebSeries::parity(double tol) const {
  bool has_even = false, has_odd = false;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (std::fabs(coeffs_[k]) > tol) {
      (k % 2 == 0 ? has_even : has_odd) = true;
    }
  }
  if (has_even && has_odd) return Parity::kNone;
  if (has_odd) return Parity::kOdd;
  return Parity::kEven;  // includes the zero polynomial
}

ChebSeries ChebSeries::truncated(double tol) const {
  std::size_t last = 0;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (std::fabs(coeffs_[k]) > tol) last = k;
  }
  return ChebSeries(std::vector<double>(coeffs_.begin(), coeffs_.begin() + last + 1));
}

ChebSeries ChebSeries::parity_projected(Parity p) const {
  expects(p != Parity::kNone, "parity_projected needs a definite parity");
  std::vector<double> out = coeffs_;
  const std::size_t want = (p == Parity::kOdd) ? 1 : 0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    if (k % 2 != want) out[k] = 0.0;
  }
  return ChebSeries(std::move(out));
}

double ChebSeries::max_abs_on(double lo, double hi, int samples) const {
  expects(samples >= 2, "max_abs_on needs at least 2 samples");
  double m = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double x = lo + (hi - lo) * i / (samples - 1);
    m = std::fmax(m, std::fabs(evaluate(x)));
  }
  return m;
}

ChebSeries ChebSeries::scaled(double factor) const {
  std::vector<double> out = coeffs_;
  for (auto& c : out) c *= factor;
  return ChebSeries(std::move(out));
}

ChebSeries ChebSeries::operator+(const ChebSeries& other) const {
  std::vector<double> out(std::max(coeffs_.size(), other.coeffs_.size()), 0.0);
  for (std::size_t k = 0; k < coeffs_.size(); ++k) out[k] += coeffs_[k];
  for (std::size_t k = 0; k < other.coeffs_.size(); ++k) out[k] += other.coeffs_[k];
  return ChebSeries(std::move(out));
}

ChebSeries ChebSeries::operator-(const ChebSeries& other) const {
  return *this + other.scaled(-1.0);
}

ChebSeries ChebSeries::operator*(const ChebSeries& other) const {
  if (coeffs_.empty() || other.coeffs_.empty()) return ChebSeries();
  std::vector<double> out(coeffs_.size() + other.coeffs_.size() - 1, 0.0);
  for (std::size_t m = 0; m < coeffs_.size(); ++m) {
    if (coeffs_[m] == 0.0) continue;
    for (std::size_t n = 0; n < other.coeffs_.size(); ++n) {
      const double c = 0.5 * coeffs_[m] * other.coeffs_[n];
      out[m + n] += c;
      out[static_cast<std::size_t>(std::abs(static_cast<long long>(m) -
                                            static_cast<long long>(n)))] += c;
    }
  }
  return ChebSeries(std::move(out));
}

ChebSeries cheb_interpolate(const std::function<double(double)>& f, int degree) {
  expects(degree >= 0, "cheb_interpolate: degree must be >= 0");
  const int n = degree + 1;
  std::vector<double> fx(n);
  for (int j = 0; j < n; ++j) {
    const double x = std::cos(M_PI * (j + 0.5) / n);
    fx[j] = f(x);
  }
  std::vector<double> coeffs(n);
  const std::int64_t nn = n;
#pragma omp parallel for if (nn >= 512)
  for (std::int64_t k = 0; k < nn; ++k) {
    double s = 0.0;
    for (int j = 0; j < n; ++j) {
      s += fx[j] * std::cos(M_PI * k * (j + 0.5) / n);
    }
    coeffs[static_cast<std::size_t>(k)] = (k == 0 ? 1.0 : 2.0) * s / n;
  }
  return ChebSeries(std::move(coeffs));
}

double chebyshev_t(int k, double x) {
  if (std::fabs(x) <= 1.0) return std::cos(k * std::acos(x));
  const double t = std::fabs(x) + std::sqrt(x * x - 1.0);
  const double v = 0.5 * (std::pow(t, k) + std::pow(t, -k));
  return (x < 0.0 && (k % 2 == 1)) ? -v : v;
}

}  // namespace mpqls::poly
