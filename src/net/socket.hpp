// Thin RAII layer over POSIX TCP sockets — everything the event loop and
// the blocking client need, nothing more (no external networking
// dependency). All helpers throw std::system_error with the failing call
// in the message; EINTR is retried internally.
//
// Deadline support: wait_fd() + the timeout overload of connect_tcp() are
// the one shared implementation of I/O deadlines — HttpClient and the
// cluster coordinator's outbound worker pool both bound their connects,
// sends and reads through them, so "how long do we wait for a dead peer"
// has a single answer.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

namespace mpqls::net {

/// Move-only owner of a file descriptor; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  ~Socket() { close(); }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Release ownership without closing.
  int release() { return std::exchange(fd_, -1); }

  void close();

 private:
  int fd_ = -1;
};

/// Bind + listen on `bind_address:port` (port 0 = kernel-assigned
/// ephemeral port). SO_REUSEADDR is set; the socket is blocking — callers
/// that want edge-driven accept make it non-blocking themselves.
Socket listen_tcp(const std::string& bind_address, std::uint16_t port, int backlog = 128);

/// The port a bound socket actually listens on (resolves port 0).
std::uint16_t local_port(const Socket& socket);

/// Blocking connect to `host:port` (numeric IPv4 or a resolvable name).
Socket connect_tcp(const std::string& host, std::uint16_t port);

/// Deadline-bounded connect: the socket is non-blocking from birth, the
/// three-way handshake gets at most `timeout` (per resolved address), and
/// the returned socket STAYS non-blocking — callers pair every read/write
/// with wait_fd(). Throws std::system_error; a timeout surfaces as
/// ETIMEDOUT.
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds timeout);

/// Wait until `fd` is ready for `events` (POLLIN and/or POLLOUT) or the
/// deadline passes. Returns true when ready, false on timeout; EINTR
/// re-waits with the remaining budget. Throws std::system_error on poll
/// failure. A peer hangup/error counts as "ready" — the following I/O
/// call reports the real error.
bool wait_fd(int fd, short events, std::chrono::steady_clock::time_point deadline);

void set_nonblocking(int fd);
void set_nodelay(int fd);

}  // namespace mpqls::net
