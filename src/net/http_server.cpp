#include "net/http_server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <vector>

#include "common/json.hpp"

namespace mpqls::net {

namespace {

HttpResponse error_response(int status, const std::string& message) {
  HttpResponse r;
  r.status = status;
  // Through Json so the message is escaped — parser errors may echo
  // request bytes one day, and the body must stay valid JSON regardless.
  Json j = Json::object();
  j["error"] = message;
  r.body = j.dump() + "\n";
  r.keep_alive = false;
  return r;
}

}  // namespace

/// Completion mailbox shared between the server loop and every
/// outstanding ResponseHandle. wake_fd belongs to the server and is
/// invalidated (under the mutex) before the server closes it, so a late
/// respond() can never write into a recycled file descriptor.
struct HttpServer::ResponseHandle::DeferredQueue {
  std::mutex mutex;
  std::vector<std::pair<std::uint64_t, HttpResponse>> completed;
  int wake_fd = -1;
};

HttpServer::ResponseHandle::ResponseHandle(std::shared_ptr<DeferredQueue> queue,
                                           std::uint64_t conn_id)
    : queue_(std::move(queue)),
      conn_id_(conn_id),
      used_(std::make_shared<std::atomic<bool>>(false)) {}

void HttpServer::ResponseHandle::respond(HttpResponse response) const {
  if (!queue_ || !used_ || used_->exchange(true)) return;
  std::lock_guard<std::mutex> lock(queue_->mutex);
  if (queue_->wake_fd < 0) return;  // server already shut down
  queue_->completed.emplace_back(conn_id_, std::move(response));
  const std::uint64_t one = 1;
  [[maybe_unused]] auto r = ::write(queue_->wake_fd, &one, sizeof one);
}

bool HttpServer::ResponseHandle::responded() const { return used_ && used_->load(); }

struct HttpServer::Connection {
  explicit Connection(Socket s, ParseLimits limits, std::uint64_t id_)
      : sock(std::move(s)), parser(limits), id(id_) {}

  Socket sock;
  RequestParser parser;
  std::uint64_t id = 0;      ///< generation id (never reused, unlike the fd)
  bool awaiting = false;     ///< async response outstanding; reads paused
  bool deferred_keep_alive = true;  ///< the deferred request's keep-alive wish
  std::string stash;         ///< pipelined bytes parked while awaiting
  std::string out;           ///< serialized responses awaiting write
  std::size_t out_off = 0;   ///< bytes of `out` already written
  bool want_close = false;   ///< close once `out` is flushed
  bool peer_eof = false;     ///< peer shut down its write side
  bool lingering = false;    ///< response flushed + FIN sent; draining reads
  bool want_write = false;   ///< EPOLLOUT currently registered
  bool want_read = true;     ///< EPOLLIN currently registered
  std::chrono::steady_clock::time_point last_active = std::chrono::steady_clock::now();
  /// Hard close time once want_close is set: bounds both a peer that
  /// never reads its responses and the post-error linger drain.
  std::chrono::steady_clock::time_point close_deadline{};

  bool flushed() const { return out_off == out.size(); }
};

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::HttpServer(Options options, AsyncHandler handler)
    : options_(std::move(options)),
      async_handler_(std::move(handler)),
      deferred_(std::make_shared<ResponseHandle::DeferredQueue>()) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (running_.load()) return;
  listener_ = listen_tcp(options_.bind_address, options_.port);
  set_nonblocking(listener_.fd());
  port_ = local_port(listener_);

  epoll_ = Socket(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) throw std::system_error(errno, std::generic_category(), "epoll_create1");
  wake_ = Socket(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_.valid()) throw std::system_error(errno, std::generic_category(), "eventfd");
  if (deferred_) {
    std::lock_guard<std::mutex> lock(deferred_->mutex);
    deferred_->wake_fd = wake_.fd();
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl(listener)");
  }
  ev.data.fd = wake_.fd();
  if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_ADD, wake_.fd(), &ev) != 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl(wake)");
  }

  stop_requested_.store(false);
  running_.store(true);
  loop_thread_ = std::thread([this] { run_loop(); });
}

void HttpServer::stop() {
  if (!loop_thread_.joinable()) return;
  stop_requested_.store(true);
  {
    const std::uint64_t one = 1;
    [[maybe_unused]] auto r = ::write(wake_.fd(), &one, sizeof one);
  }
  loop_thread_.join();
  connections_.clear();
  awaiting_.clear();
  connections_open_.store(0);
  listener_.close();
  epoll_.close();
  if (deferred_) {
    // Invalidate the wake fd before closing it: a straggling respond()
    // must find -1, not a recycled descriptor.
    std::lock_guard<std::mutex> lock(deferred_->mutex);
    deferred_->wake_fd = -1;
    deferred_->completed.clear();
  }
  wake_.close();
  running_.store(false);
}

HttpServer::Stats HttpServer::stats() const {
  Stats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_rejected = connections_rejected_.load();
  s.requests = requests_.load();
  s.parse_errors = parse_errors_.load();
  s.connections_open = connections_open_.load();
  return s;
}

void HttpServer::run_loop() {
  bool listener_open = true;
  std::chrono::steady_clock::time_point stop_deadline{};
  std::vector<epoll_event> events(64);

  for (;;) {
    const int n = ::epoll_wait(epoll_.fd(), events.data(), static_cast<int>(events.size()), 250);
    if (n < 0 && errno != EINTR) break;  // unrecoverable epoll failure

    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_.fd()) {
        std::uint64_t drained = 0;
        [[maybe_unused]] auto r = ::read(wake_.fd(), &drained, sizeof drained);
      } else if (fd == listener_.fd() && listener_open) {
        accept_ready();
      } else {
        connection_io(fd, events[i].events);
      }
    }

    if (deferred_) drain_deferred();

    if (stop_requested_.load() && listener_open) {
      ::epoll_ctl(epoll_.fd(), EPOLL_CTL_DEL, listener_.fd(), nullptr);
      listener_.close();
      listener_open = false;
    }

    if (stop_requested_.load()) {
      if (stop_deadline == std::chrono::steady_clock::time_point{}) {
        stop_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
      }
      // Let queued responses flush; past the deadline, cut connections.
      std::vector<int> closable;
      const bool force = std::chrono::steady_clock::now() >= stop_deadline;
      for (const auto& [fd, conn] : connections_) {
        if (force || conn->flushed()) closable.push_back(fd);
      }
      for (int fd : closable) close_connection(fd);
      if (connections_.empty()) break;
    } else {
      sweep_idle();
    }
  }
}

void HttpServer::accept_ready() {
  for (;;) {
    Socket client(::accept4(listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (!client.valid()) {
      // EAGAIN: accepted everything pending. Other errors (ECONNABORTED,
      // EMFILE, ...) are per-connection; keep serving.
      return;
    }
    if (connections_.size() >= options_.max_connections) {
      ++connections_rejected_;
      const std::string wire = to_wire(error_response(503, "connection limit reached"));
      [[maybe_unused]] auto r = ::send(client.fd(), wire.data(), wire.size(), MSG_NOSIGNAL);
      continue;  // client closes on scope exit
    }
    set_nodelay(client.fd());
    const int fd = client.fd();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_ADD, fd, &ev) != 0) continue;
    connections_.emplace(
        fd, std::make_unique<Connection>(std::move(client), options_.limits, next_conn_id_++));
    ++connections_accepted_;
    connections_open_.store(connections_.size());
  }
}

void HttpServer::connection_io(int fd, std::uint32_t io_events) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;  // already closed this iteration
  Connection& conn = *it->second;
  conn.last_active = std::chrono::steady_clock::now();

  if (io_events & (EPOLLHUP | EPOLLERR)) {
    close_connection(fd);
    return;
  }

  if (io_events & EPOLLIN) {
    char buf[16384];
    for (;;) {
      const ssize_t got = ::read(conn.sock.fd(), buf, sizeof buf);
      if (got > 0) {
        // While lingering (or closing), keep reading but discard: leaving
        // unread bytes in the receive queue would turn our close into a
        // RST that can destroy the error response before the peer reads it.
        if (!conn.lingering && !conn.want_close) {
          feed(conn, std::string_view(buf, static_cast<std::size_t>(got)));
        }
        // Parked on a deferred response: stop reading NOW — the epoll
        // re-arm only protects future iterations, not this loop, and
        // feeding a parked parser would fabricate a second request from
        // its moved-from state. Unread bytes wait in the kernel buffer
        // until the completion re-arms EPOLLIN (level-triggered, so the
        // event re-fires immediately).
        if (conn.awaiting) break;
        continue;
      }
      if (got == 0) {  // peer shut down its write side; nothing left to drain
        conn.peer_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(fd);
      return;
    }
  }

  if (io_events & EPOLLOUT) flush(conn);
  if (conn.peer_eof) {
    // EOF read means the receive queue is drained: once our response is
    // out (or undeliverable), a plain close sends FIN, not RST.
    if (conn.flushed()) {
      close_connection(fd);
      return;
    }
    mark_want_close(conn);
  }
  if (conn.want_close && conn.flushed()) begin_linger(conn);
  update_interest(conn);
}

void HttpServer::feed(Connection& conn, std::string_view data) {
  // Defense in depth: a parked connection's parser must not be consulted
  // (state is still kComplete with the request moved out). Callers
  // already stop feeding while awaiting; if bytes arrive here anyway they
  // join the stash rather than corrupting the stream.
  if (conn.awaiting) {
    conn.stash.append(data);
    return;
  }
  while (!data.empty() && !conn.want_close && !conn.awaiting) {
    const std::size_t used = conn.parser.consume(data);
    data.remove_prefix(used);

    if (conn.parser.state() == ParseState::kComplete) {
      ++requests_;
      const HttpRequest request = conn.parser.take_request();
      if (async_handler_) {
        // Park the connection until the handle completes: reads pause
        // (update_interest drops EPOLLIN) and already-received pipelined
        // bytes wait in the stash, so responses stay in request order.
        conn.awaiting = true;
        conn.deferred_keep_alive = request.keep_alive;
        conn.stash.assign(data.data(), data.size());
        awaiting_[conn.id] = conn.sock.fd();
        ResponseHandle handle(deferred_, conn.id);
        try {
          async_handler_(request, handle);
        } catch (...) {
          handle.respond(error_response(500, "internal error"));
        }
        break;
      }
      HttpResponse response;
      try {
        response = handler_(request);
      } catch (...) {
        response = error_response(500, "internal error");
      }
      complete_request(conn, std::move(response), request.keep_alive);
    } else if (conn.parser.state() == ParseState::kError) {
      ++parse_errors_;
      enqueue_response(conn,
                       error_response(conn.parser.error_status(), conn.parser.error_message()));
      mark_want_close(conn);
    } else {
      break;  // kHead/kBody consumed everything and needs more bytes
    }
  }
  flush(conn);
  update_interest(conn);
}

/// Queue one handler response, applying keep-alive and write-backpressure
/// policy (shared by the sync path and deferred completions).
void HttpServer::complete_request(Connection& conn, HttpResponse response,
                                  bool request_keep_alive) {
  response.keep_alive = response.keep_alive && request_keep_alive;
  // Backpressure on the write side: the backlog is measured BEFORE
  // appending this response, so a single large reply never trips it —
  // only a peer that pipelines requests without reading what it
  // already got, which gets cut off instead of growing `out`.
  const std::size_t backlog = conn.out.size() - conn.out_off;
  enqueue_response(conn, response);
  if (!response.keep_alive || backlog > options_.max_write_buffer) {
    mark_want_close(conn);  // pipelined leftovers are dropped by design
  } else {
    conn.parser.reset();
  }
}

void HttpServer::drain_deferred() {
  std::vector<std::pair<std::uint64_t, HttpResponse>> done;
  {
    std::lock_guard<std::mutex> lock(deferred_->mutex);
    done.swap(deferred_->completed);
  }
  for (auto& [conn_id, response] : done) {
    const auto where = awaiting_.find(conn_id);
    if (where == awaiting_.end()) continue;  // connection closed meanwhile
    const auto it = connections_.find(where->second);
    awaiting_.erase(where);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    conn.awaiting = false;
    conn.last_active = std::chrono::steady_clock::now();
    complete_request(conn, std::move(response), conn.deferred_keep_alive);
    if (!conn.want_close && !conn.stash.empty()) {
      const std::string stash = std::move(conn.stash);
      conn.stash.clear();
      feed(conn, stash);  // may re-enter awaiting for the next request
    } else if (conn.want_close) {
      conn.stash.clear();  // closing: pipelined leftovers are dropped by design
    }
    flush(conn);
    if (conn.want_close && conn.flushed()) begin_linger(conn);
    update_interest(conn);
  }
}

void HttpServer::enqueue_response(Connection& conn, const HttpResponse& response) {
  // Compact the buffer before it grows: everything before out_off is sent.
  if (conn.out_off > 0 && conn.flushed()) {
    conn.out.clear();
    conn.out_off = 0;
  }
  conn.out += to_wire(response);
}

void HttpServer::flush(Connection& conn) {
  while (!conn.flushed()) {
    const ssize_t sent = ::send(conn.sock.fd(), conn.out.data() + conn.out_off,
                                conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (sent > 0) {
      conn.out_off += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (sent < 0 && errno == EINTR) continue;
    // Peer vanished mid-write; drop what's left so the close path runs.
    conn.out_off = conn.out.size();
    conn.want_close = true;
    return;
  }
}

void HttpServer::update_interest(Connection& conn) {
  const bool want_write = !conn.flushed();
  // Reads pause while a deferred response is outstanding: with
  // level-triggered epoll, leaving EPOLLIN armed on unread bytes would
  // spin the loop; the stash already holds what arrived with the request.
  const bool want_read = !conn.awaiting;
  if (want_write == conn.want_write && want_read == conn.want_read) return;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn.sock.fd();
  if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_MOD, conn.sock.fd(), &ev) == 0) {
    conn.want_write = want_write;
    conn.want_read = want_read;
  }
}

void HttpServer::mark_want_close(Connection& conn) {
  if (conn.want_close) return;
  conn.want_close = true;
  // Bound the endgame: if the peer neither reads our response nor closes,
  // the sweep cuts the connection at the deadline.
  conn.close_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
}

void HttpServer::begin_linger(Connection& conn) {
  if (conn.lingering) return;
  conn.lingering = true;
  // Everything we owe the peer is flushed; announce it with a FIN while
  // keeping the read side open to drain whatever is still in flight (a
  // close with unread data would RST the response away). The peer's own
  // EOF — or a short deadline — finishes the close.
  ::shutdown(conn.sock.fd(), SHUT_WR);
  conn.close_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(1);
}

void HttpServer::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  awaiting_.erase(it->second->id);  // a late respond() now finds nobody
  ::epoll_ctl(epoll_.fd(), EPOLL_CTL_DEL, fd, nullptr);
  connections_.erase(it);
  connections_open_.store(connections_.size());
}

void HttpServer::sweep_idle() {
  if (connections_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> expired;
  for (const auto& [fd, conn] : connections_) {
    // Unflushed bytes don't protect an idle connection: a peer that
    // stopped reading mid-response would otherwise pin its slot forever.
    // An outstanding deferred response DOES protect it — reaping the
    // connection mid-await would discard a response the handler is still
    // producing (the async handler owns bounding that work; the
    // coordinator's proxy calls are all deadline-bounded).
    const bool idle =
        !conn->awaiting && now - conn->last_active > options_.idle_timeout;
    const bool overdue = conn->want_close && now >= conn->close_deadline;
    if (idle || overdue) expired.push_back(fd);
  }
  for (int fd : expired) close_connection(fd);
}

}  // namespace mpqls::net
