#include "net/http_client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

namespace mpqls::net {

namespace {

/// A reused keep-alive connection turned out to be dead before a single
/// response byte arrived — the one failure that is always safe to retry,
/// because the server cannot have processed the request.
struct StaleConnection : std::runtime_error {
  StaleConnection() : std::runtime_error("HttpClient: stale keep-alive connection") {}
};

}  // namespace

HttpClient::Response HttpClient::request(const std::string& method, const std::string& target,
                                         std::string body, std::string content_type) {
  const std::string wire = to_wire_request(method, target, host_, body, content_type,
                                           /*keep_alive=*/true);
  const bool reused = sock_.valid();
  if (!reused) sock_ = connect_tcp(host_, port_);
  try {
    return round_trip(wire);
  } catch (const StaleConnection&) {
    sock_.close();
    if (!reused) throw;
    sock_ = connect_tcp(host_, port_);
    return round_trip(wire);
  }
}

HttpClient::Response HttpClient::round_trip(const std::string& wire) {
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(sock_.fd(), wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) throw StaleConnection{};
      throw std::runtime_error("HttpClient: send failed");
    }
    sent += static_cast<std::size_t>(n);
  }

  ResponseParser parser;
  char buf[16384];
  std::size_t received = 0;
  while (parser.state() != ParseState::kComplete) {
    const ssize_t got = ::read(sock_.fd(), buf, sizeof buf);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("HttpClient: read failed");
    }
    if (got == 0) {
      if (received == 0) throw StaleConnection{};  // server never saw the request
      throw std::runtime_error("HttpClient: connection closed mid-response");
    }
    received += static_cast<std::size_t>(got);
    parser.consume(std::string_view(buf, static_cast<std::size_t>(got)));
    if (parser.state() == ParseState::kError) {
      throw std::runtime_error("HttpClient: bad response: " + parser.error_message());
    }
  }

  Response response;
  response.status = parser.status();
  response.headers = parser.headers();
  response.body = parser.body();
  if (!parser.keep_alive()) sock_.close();
  return response;
}

}  // namespace mpqls::net
