#include "net/http_client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace mpqls::net {

namespace {

/// A reused keep-alive connection turned out to be dead before a single
/// response byte arrived — the one failure that is always safe to retry,
/// because the server cannot have processed the request.
struct StaleConnection : std::runtime_error {
  StaleConnection() : std::runtime_error("HttpClient: stale keep-alive connection") {}
};

}  // namespace

const char* to_string(HttpErrorCategory category) {
  switch (category) {
    case HttpErrorCategory::kConnect: return "connect";
    case HttpErrorCategory::kTimeout: return "timeout";
    case HttpErrorCategory::kClosed: return "closed";
    default: return "protocol";
  }
}

HttpClient::Response HttpClient::request(const std::string& method, const std::string& target,
                                         std::string body, std::string content_type,
                                         const HeaderList& extra_headers) {
  const std::string wire = to_wire_request(method, target, host_, body, content_type,
                                           /*keep_alive=*/true, extra_headers);
  const bool reused = sock_.valid();
  if (!reused) {
    try {
      sock_ = connect_tcp(host_, port_, deadlines_.connect);
    } catch (const std::system_error& e) {
      throw HttpError(e.code().value() == ETIMEDOUT ? HttpErrorCategory::kTimeout
                                                    : HttpErrorCategory::kConnect,
                      e.what());
    }
  }
  try {
    return round_trip(wire);
  } catch (const StaleConnection&) {
    sock_.close();
    if (!reused) throw HttpError(HttpErrorCategory::kClosed, "connection closed before response");
    try {
      sock_ = connect_tcp(host_, port_, deadlines_.connect);
    } catch (const std::system_error& e) {
      throw HttpError(e.code().value() == ETIMEDOUT ? HttpErrorCategory::kTimeout
                                                    : HttpErrorCategory::kConnect,
                      e.what());
    }
    try {
      return round_trip(wire);
    } catch (const StaleConnection&) {
      sock_.close();
      throw HttpError(HttpErrorCategory::kClosed, "connection closed before response");
    } catch (const HttpError&) {
      // Thrown inside this StaleConnection handler, so the sibling
      // catch below never sees it — close here too, or the poisoned
      // half-finished exchange would be reused by the next request.
      sock_.close();
      throw;
    }
  } catch (const HttpError&) {
    // The connection's state is unknown after any mid-exchange failure;
    // never reuse it.
    sock_.close();
    throw;
  }
}

HttpClient::Response HttpClient::round_trip(const std::string& wire) {
  const auto write_deadline = std::chrono::steady_clock::now() + deadlines_.write;
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(sock_.fd(), wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!wait_fd(sock_.fd(), POLLOUT, write_deadline)) {
          throw HttpError(HttpErrorCategory::kTimeout, "send timed out to " + host_);
        }
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) throw StaleConnection{};
      throw HttpError(HttpErrorCategory::kClosed, "send failed");
    }
    sent += static_cast<std::size_t>(n);
  }

  // One budget for the whole response, armed once the request is out.
  const auto read_deadline = std::chrono::steady_clock::now() + deadlines_.read;
  ResponseParser parser;
  char buf[16384];
  std::size_t received = 0;
  while (parser.state() != ParseState::kComplete) {
    const ssize_t got = ::read(sock_.fd(), buf, sizeof buf);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!wait_fd(sock_.fd(), POLLIN, read_deadline)) {
          throw HttpError(HttpErrorCategory::kTimeout,
                          "response timed out after " +
                              std::to_string(deadlines_.read.count()) + " ms from " + host_);
        }
        continue;
      }
      throw HttpError(HttpErrorCategory::kClosed, "read failed");
    }
    if (got == 0) {
      if (received == 0) throw StaleConnection{};  // server never saw the request
      throw HttpError(HttpErrorCategory::kClosed, "connection closed mid-response");
    }
    received += static_cast<std::size_t>(got);
    parser.consume(std::string_view(buf, static_cast<std::size_t>(got)));
    if (parser.state() == ParseState::kError) {
      throw HttpError(HttpErrorCategory::kProtocol, "bad response: " + parser.error_message());
    }
  }

  Response response;
  response.status = parser.status();
  response.headers = parser.headers();
  response.body = parser.body();
  if (!parser.keep_alive()) sock_.close();
  return response;
}

}  // namespace mpqls::net
