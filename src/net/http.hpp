// HTTP/1.1 message model and incremental parsers, dependency-free. The
// server feeds whatever bytes arrived from the socket; the parser consumes
// exactly one message and leaves pipelined leftovers to the caller.
// Untrusted-input hardening is built in: request-line/header-section and
// body size caps, header-count cap, strict Content-Length validation —
// violations surface as a ready-to-send status code (400/413/431/501/505)
// instead of unbounded buffering.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mpqls::net {

using HeaderList = std::vector<std::pair<std::string, std::string>>;

/// Case-insensitive header lookup; nullptr when absent.
const std::string* find_header(const HeaderList& headers, std::string_view name);

/// Parse `limit=N` from a query string ("limit=5", "a=b&limit=5"). The
/// key match is anchored per '&'-separated parameter, so "unlimit=9" is
/// ignored. On success *out is min(N, cap); a present-but-malformed
/// limit returns false (callers answer 400); an absent limit leaves *out
/// untouched and returns true. Shared by the daemon's listing endpoint
/// and the cluster coordinator's merged listing so the two contracts
/// cannot drift.
bool parse_limit_param(std::string_view query, std::size_t cap, std::size_t* out);

struct HttpRequest {
  std::string method;  ///< uppercase token, e.g. "GET"
  std::string target;  ///< raw request target ("/v1/jobs?limit=2")
  std::string path;    ///< target before '?'
  std::string query;   ///< target after '?' (no '?'; empty if none)
  int version_minor = 1;
  HeaderList headers;
  std::string body;
  bool keep_alive = true;

  const std::string* header(std::string_view name) const {
    return find_header(headers, name);
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  HeaderList headers;  ///< extra headers; Content-Length/Connection are added on serialize
  std::string body;
  bool keep_alive = true;
};

const char* status_reason(int status);

/// Wire form of a response (adds Content-Length, Content-Type, Connection).
std::string to_wire(const HttpResponse& response);

/// Wire form of a client request (adds Host, Content-Length, Connection).
/// `extra` headers (e.g. Accept) are emitted verbatim after Host.
std::string to_wire_request(const std::string& method, const std::string& target,
                            const std::string& host, const std::string& body,
                            const std::string& content_type, bool keep_alive,
                            const HeaderList& extra = {});

enum class ParseState {
  kHead,      ///< accumulating request/status line + headers
  kBody,      ///< head done, reading Content-Length bytes
  kComplete,  ///< one full message parsed; leftover bytes belong to the next
  kError,     ///< malformed or over-limit; see error_status()/error_message()
};

struct ParseLimits {
  std::size_t max_head_bytes = 8192;          ///< request line + all headers
  std::size_t max_headers = 64;               ///< header count
  std::size_t max_body_bytes = 8u << 20;      ///< Content-Length cap (8 MiB)
};

/// Incremental HTTP/1.x request parser. Call consume() with whatever
/// arrived; it returns how many bytes it ate (the rest belongs to the next
/// pipelined request once state()==kComplete). On kError, error_status()
/// is the response code the connection should answer before closing.
class RequestParser {
 public:
  explicit RequestParser(ParseLimits limits = {}) : limits_(limits) {}

  std::size_t consume(std::string_view data);

  ParseState state() const { return state_; }
  const HttpRequest& request() const { return request_; }
  HttpRequest take_request() { return std::move(request_); }
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// Recycle for the next request on a keep-alive connection.
  void reset();

 private:
  void fail(int status, std::string message);
  void parse_head();

  ParseLimits limits_;
  ParseState state_ = ParseState::kHead;
  std::string head_;
  std::size_t body_expected_ = 0;
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_message_;
};

/// Incremental HTTP/1.x response parser for the blocking client. Bodies
/// are delimited by Content-Length (the daemon always sends one); 204/304
/// and HEAD-style bodiless responses parse with an implicit length of 0.
class ResponseParser {
 public:
  explicit ResponseParser(ParseLimits limits = {}) : limits_(limits) {}

  std::size_t consume(std::string_view data);

  ParseState state() const { return state_; }
  int status() const { return status_code_; }
  const HeaderList& headers() const { return headers_; }
  const std::string& body() const { return body_; }
  bool keep_alive() const { return keep_alive_; }
  const std::string& error_message() const { return error_message_; }

  void reset();

 private:
  void fail(std::string message);
  void parse_head();

  ParseLimits limits_;
  ParseState state_ = ParseState::kHead;
  std::string head_;
  std::size_t body_expected_ = 0;
  int status_code_ = 0;
  HeaderList headers_;
  std::string body_;
  bool keep_alive_ = true;
  std::string error_message_;
};

}  // namespace mpqls::net
