// Single-threaded epoll event loop serving HTTP/1.1 with keep-alive and
// pipelining. Two handler shapes:
//
//  - Handler (sync): runs on the loop thread, so it must be fast and
//    non-blocking — the solver daemon only ever enqueues jobs or snapshots
//    registry/cache state there; solves run on the SolverService pools.
//  - AsyncHandler (deferred): receives a ResponseHandle and may complete
//    it later from ANY thread — the cluster coordinator hands the request
//    to its proxy pool and the loop thread moves on immediately. While a
//    connection's response is outstanding its reads are paused (pipelined
//    bytes are stashed), so responses always go out in request order.
//
// Lifecycle: start() binds and spawns the loop thread; stop() flushes
// pending responses (bounded by a short deadline), closes every
// connection, and joins. ResponseHandles may outlive the server: a late
// respond() is dropped safely. During a daemon drain the listener
// deliberately stays open — clients reconnecting to poll must still get
// in; admission is refused at the application layer (503) instead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/http.hpp"
#include "net/socket.hpp"

namespace mpqls::net {

class HttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral, see port()
    ParseLimits limits;
    std::size_t max_connections = 256;  ///< beyond this, accepts get 503+close
    std::chrono::seconds idle_timeout{60};
    /// Cap on buffered-but-unsent response bytes per connection: a client
    /// that pipelines requests without reading responses gets closed
    /// instead of growing server memory.
    std::size_t max_write_buffer = 1u << 20;
  };

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0;  ///< over max_connections
    std::uint64_t requests = 0;              ///< fully parsed requests
    std::uint64_t parse_errors = 0;          ///< 4xx/5xx answered by the parser
    std::size_t connections_open = 0;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// One-shot completion token for a deferred response. Copyable (copies
  /// share the one-shot latch); respond() may be called from any thread,
  /// at most once across all copies — later calls and calls after the
  /// connection or server went away are silently dropped.
  class ResponseHandle {
   public:
    ResponseHandle() = default;
    void respond(HttpResponse response) const;
    bool responded() const;

   private:
    friend class HttpServer;
    struct DeferredQueue;
    ResponseHandle(std::shared_ptr<DeferredQueue> queue, std::uint64_t conn_id);
    std::shared_ptr<DeferredQueue> queue_;
    std::uint64_t conn_id_ = 0;
    std::shared_ptr<std::atomic<bool>> used_;
  };

  using AsyncHandler = std::function<void(const HttpRequest&, ResponseHandle)>;

  HttpServer(Options options, Handler handler);
  HttpServer(Options options, AsyncHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind, listen, and spawn the event-loop thread.
  void start();

  /// Flush pending writes (up to ~2 s), close all connections, join the
  /// loop thread. Idempotent.
  void stop();

  bool running() const { return running_.load(); }

  /// The bound port (resolves an ephemeral request); valid after start().
  std::uint16_t port() const { return port_; }

  Stats stats() const;

 private:
  struct Connection;

  void run_loop();
  void accept_ready();
  void connection_io(int fd, std::uint32_t events);
  void feed(Connection& conn, std::string_view data);
  void drain_deferred();
  void complete_request(Connection& conn, HttpResponse response, bool request_keep_alive);
  void enqueue_response(Connection& conn, const HttpResponse& response);
  void flush(Connection& conn);
  void update_interest(Connection& conn);
  void mark_want_close(Connection& conn);
  void begin_linger(Connection& conn);
  void close_connection(int fd);
  void sweep_idle();

  Options options_;
  Handler handler_;             ///< exactly one of handler_ / async_handler_ is set
  AsyncHandler async_handler_;
  std::shared_ptr<ResponseHandle::DeferredQueue> deferred_;  ///< null in sync mode

  Socket listener_;
  Socket epoll_;
  Socket wake_;  ///< eventfd: kicks epoll_wait out of its sleep on stop()
  std::uint16_t port_ = 0;

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;  ///< loop thread only
  /// Deferred bookkeeping (loop thread only): connections awaiting an
  /// async response, keyed by their generation id — fds get reused, ids
  /// never do, so a late respond() can never hit the wrong connection.
  std::unordered_map<std::uint64_t, int> awaiting_;
  std::uint64_t next_conn_id_ = 1;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::size_t> connections_open_{0};
};

}  // namespace mpqls::net
