// Single-threaded epoll event loop serving HTTP/1.1 with keep-alive and
// pipelining. The handler runs on the loop thread, so it must be fast and
// non-blocking — the solver daemon only ever enqueues jobs or snapshots
// registry/cache state there; solves run on the SolverService pools.
//
// Lifecycle: start() binds and spawns the loop thread; stop() flushes
// pending responses (bounded by a short deadline), closes every
// connection, and joins. During a daemon drain the listener deliberately
// stays open — clients reconnecting to poll must still get in; admission
// is refused at the application layer (503) instead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/http.hpp"
#include "net/socket.hpp"

namespace mpqls::net {

class HttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral, see port()
    ParseLimits limits;
    std::size_t max_connections = 256;  ///< beyond this, accepts get 503+close
    std::chrono::seconds idle_timeout{60};
    /// Cap on buffered-but-unsent response bytes per connection: a client
    /// that pipelines requests without reading responses gets closed
    /// instead of growing server memory.
    std::size_t max_write_buffer = 1u << 20;
  };

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0;  ///< over max_connections
    std::uint64_t requests = 0;              ///< fully parsed requests
    std::uint64_t parse_errors = 0;          ///< 4xx/5xx answered by the parser
    std::size_t connections_open = 0;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Options options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind, listen, and spawn the event-loop thread.
  void start();

  /// Flush pending writes (up to ~2 s), close all connections, join the
  /// loop thread. Idempotent.
  void stop();

  bool running() const { return running_.load(); }

  /// The bound port (resolves an ephemeral request); valid after start().
  std::uint16_t port() const { return port_; }

  Stats stats() const;

 private:
  struct Connection;

  void run_loop();
  void accept_ready();
  void connection_io(int fd, std::uint32_t events);
  void feed(Connection& conn, std::string_view data);
  void enqueue_response(Connection& conn, const HttpResponse& response);
  void flush(Connection& conn);
  void update_interest(Connection& conn);
  void mark_want_close(Connection& conn);
  void begin_linger(Connection& conn);
  void close_connection(int fd);
  void sweep_idle();

  Options options_;
  Handler handler_;

  Socket listener_;
  Socket epoll_;
  Socket wake_;  ///< eventfd: kicks epoll_wait out of its sleep on stop()
  std::uint16_t port_ = 0;

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;  ///< loop thread only

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::size_t> connections_open_{0};
};

}  // namespace mpqls::net
