#include "net/shard_exchange.hpp"

#include <string>
#include <string_view>

#include "common/contracts.hpp"
#include "wire/codec.hpp"

namespace mpqls::net {

namespace dist = qsim::exec::dist;

HttpPeerChannel::HttpPeerChannel(service::ShardSpec shard, dist::ShardHub& hub,
                                 Deadlines deadlines, std::chrono::milliseconds await_timeout)
    : shard_(std::move(shard)),
      hub_(hub),
      deadlines_(deadlines),
      await_timeout_(await_timeout),
      clients_(shard_.peers.size()) {
  expects(shard_.distributed(), "shard exchange: group of one needs no transport");
  expects(shard_.peers.size() == shard_.world, "shard exchange: one endpoint per rank");
  hub_.register_group({shard_.group, shard_.rank, shard_.world, shard_.peers});
}

HttpPeerChannel::~HttpPeerChannel() {
  hub_.clear_group(shard_.group);
  hub_.unregister_group(shard_.group);
}

HttpClient& HttpPeerChannel::client_for(std::uint32_t peer) {
  if (!clients_[peer]) {
    const std::string& endpoint = shard_.peers[peer];
    const auto colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon + 1 == endpoint.size()) {
      throw dist::DistTransportError("bad peer endpoint for rank " + std::to_string(peer));
    }
    const int port = std::stoi(endpoint.substr(colon + 1));
    if (port < 1 || port > 65535) {
      throw dist::DistTransportError("bad peer port for rank " + std::to_string(peer));
    }
    clients_[peer] = std::make_unique<HttpClient>(
        endpoint.substr(0, colon), static_cast<std::uint16_t>(port), deadlines_);
  }
  return *clients_[peer];
}

void HttpPeerChannel::exchange(std::uint32_t peer, std::uint64_t seq, const void* send,
                               void* recv, std::size_t bytes) {
  if (peer >= shard_.world || peer == shard_.rank) {
    throw dist::DistTransportError("exchange peer rank out of range");
  }
  // Ship first, await second: the peer does the same, so both frames are
  // in flight before either side blocks on its hub.
  std::string frame = wire::encode_shard_exchange(
      shard_.group, shard_.rank, seq,
      std::string_view(static_cast<const char*>(send), bytes));
  try {
    const auto response =
        client_for(peer).post("/v1/shard/exchange", std::move(frame), wire::kContentType);
    if (response.status < 200 || response.status >= 300) {
      throw dist::DistTransportError("peer rank " + std::to_string(peer) +
                                     " refused exchange with status " +
                                     std::to_string(response.status));
    }
  } catch (const HttpError& e) {
    throw dist::DistTransportError("exchange with rank " + std::to_string(peer) + " failed: " +
                                   e.what());
  }
  hub_.await(shard_.group, peer, seq, recv, bytes, await_timeout_);
}

}  // namespace mpqls::net
