// The networked front-end of the solver service: routes
//
//   POST   /v1/jobs            enqueue a job          -> 202 {job_id}
//                              (JSON body by default; Content-Type:
//                              application/x-mpqls-frame selects the
//                              binary codec in src/wire)
//                              queue full             -> 429 (+Retry-After)
//                              draining               -> 503
//                              malformed body         -> 400 (byte offset,
//                              never payload bytes)
//                              unknown Content-Type   -> 415
//                              cold matrix_ref        -> 404 (re-upload, retry)
//   GET    /v1/jobs            bounded listing        -> 200 (?limit=N)
//   GET    /v1/jobs/{id}       poll status/result     -> 200 / 404
//   GET    /v1/jobs/{id}/result  finished result only -> 200 / 404 / 409;
//                              Accept: application/x-mpqls-frame returns
//                              the binary encoding
//   GET    /v1/jobs/{id}/trace span-list trace JSON   -> 200 / 404
//                              (admission -> queue -> run -> prepare ->
//                              panel/rhs_solve -> replay rounds -> render)
//   GET    /v1/debug/slow      K worst-latency traces -> 200 (flight
//                              recorder; bounded by slow_jobs_retained)
//   DELETE /v1/jobs/{id}       cancel a queued job    -> 200 / 404 / 409
//   PUT    /v1/matrices        content-addressed upload -> 201/200
//                              {matrix_ref} (binary kMatrix frame or JSON
//                              matrix object; idempotent by content hash)
//   GET    /v1/matrices/{ref}  store probe            -> 200 / 404
//   POST   /v1/shard/exchange  peer amplitude frame in a distributed
//                              shard-group solve (kShardExchange) -> 200;
//                              malformed -> 400; buffer full -> 503
//   GET    /v1/healthz         liveness               -> 200 (includes the
//                              dist block: qubit cap, active shard groups)
//   GET    /v1/metrics         Prometheus text        -> 200
//
// onto SolverService. Handlers run on the HTTP event-loop thread and only
// parse (byte-capped), enqueue, or snapshot — request materialization
// (scenario matrices are O(n^3) to generate) and every solve happen on
// the service's pools, so the loop never blocks. Binary admission goes one
// step further: only the frame prefix (id + matrix kind/ref) is examined
// on the loop; full payload decode happens on the job worker. Consequence:
// schema defects in a well-formed body are admitted and surface as
// state=failed with the validation message, not as a 400. The exception is
// a cold matrix_ref, which IS checked at admission (a store lookup is one
// hash-map probe) so the client gets the 404 re-upload signal
// synchronously instead of a failed job.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics.hpp"
#include "common/timer.hpp"
#include "net/http_server.hpp"
#include "net/router.hpp"
#include "service/solver_service.hpp"

namespace mpqls::net {

struct DaemonOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 8080;  ///< 0 = ephemeral (tests); see port()
  service::ServiceOptions service;
  ParseLimits limits;  ///< request caps; bodies default to 8 MiB
  std::size_t max_connections = 256;
  std::chrono::seconds idle_timeout{60};
};

class SolverDaemon {
 public:
  explicit SolverDaemon(DaemonOptions options = {});

  /// Bind and serve; returns once the listener is up.
  void start();

  /// Maintenance mode: close job admission (POST answers 503) while the
  /// server keeps serving polls, listings and metrics — what a cluster
  /// coordinator sees as a saturated-forever worker and routes around.
  /// drain() later completes the shutdown.
  void close_admission() { draining_.store(true); }

  /// Graceful shutdown (the SIGINT/SIGTERM path): stop admitting jobs
  /// (POST answers 503), keep serving polls until every accepted job is
  /// terminal or `grace` expires, then stop the HTTP server. Returns true
  /// when the drain completed inside the grace window. Idempotent.
  bool drain(std::chrono::milliseconds grace = std::chrono::milliseconds(30000));

  std::uint16_t port() const { return server_.port(); }
  bool draining() const { return draining_.load(); }
  service::SolverService& service() { return service_; }

  /// The /v1/metrics payload (exposed for tests and CLI dumps).
  std::string metrics_text() const;

 private:
  HttpResponse handle(const HttpRequest& request);
  HttpResponse submit_job(const HttpRequest& request);
  HttpResponse shard_exchange(const HttpRequest& request);
  HttpResponse job_status(const PathParams& params);
  HttpResponse job_result(const HttpRequest& request, const PathParams& params);
  HttpResponse job_trace(const PathParams& params);
  HttpResponse debug_slow();
  HttpResponse cancel_job(const PathParams& params);
  HttpResponse list_jobs(const HttpRequest& request);
  HttpResponse upload_matrix(const HttpRequest& request);
  HttpResponse matrix_info(const PathParams& params);
  HttpResponse healthz() const;

  /// Traffic accounting for one body encoding (the mpqls_wire_* metric
  /// families, labeled encoding="json"/"binary"). Requests count job
  /// submissions and matrix uploads; responses count result payloads
  /// served. Atomics: handlers run on the event loop but metrics_text()
  /// may be called from any thread.
  struct EncodingCounters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> request_bytes{0};
    std::atomic<std::uint64_t> responses{0};
    std::atomic<std::uint64_t> response_bytes{0};
  };

  DaemonOptions options_;
  /// Rendezvous for distributed shard-group exchanges: POST
  /// /v1/shard/exchange deposits here; the job's HttpPeerChannel awaits.
  /// Declared before service_ so it outlives the pools (a draining job's
  /// channel may still be blocked on it during service destruction).
  qsim::exec::dist::ShardHub shard_hub_;
  service::SolverService service_;
  Router router_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  Timer uptime_;
  EncodingCounters wire_json_;
  EncodingCounters wire_binary_;
  /// Wall clock of the submit handler itself (parse + admission on the
  /// event loop) — the stage="admission" series of mpqls_latency_seconds.
  /// The service owns the other stages (queue/prepare/solve/render/total).
  Histogram admission_latency_;
  // Declared last so it is destroyed FIRST: ~HttpServer joins the event
  // loop, which may still be dispatching into handle() — every member it
  // touches must outlive it (same pattern as SolverService's pools).
  HttpServer server_;
};

}  // namespace mpqls::net
