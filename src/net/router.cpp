#include "net/router.hpp"

#include <utility>

namespace mpqls::net {

const std::string& PathParams::get(std::string_view name) const {
  static const std::string empty;
  for (const auto& [k, v] : params_) {
    if (k == name) return v;
  }
  return empty;
}

void Router::add(std::string method, std::string pattern, Handler handler) {
  routes_.push_back(Route{std::move(method), split_path(pattern), std::move(handler)});
}

std::vector<std::string> Router::split_path(std::string_view path) {
  std::vector<std::string> segments;
  std::size_t start = 0;
  while (start < path.size()) {
    if (path[start] == '/') {
      ++start;
      continue;
    }
    std::size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    segments.emplace_back(path.substr(start, end - start));
    start = end;
  }
  return segments;
}

bool Router::match(const Route& route, const std::vector<std::string>& segments,
                   PathParams* params) {
  if (route.segments.size() != segments.size()) return false;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string& pat = route.segments[i];
    const bool capture = pat.size() >= 2 && pat.front() == '{' && pat.back() == '}';
    if (capture) {
      params->add(pat.substr(1, pat.size() - 2), segments[i]);
    } else if (pat != segments[i]) {
      return false;
    }
  }
  return true;
}

HttpResponse Router::dispatch(const HttpRequest& request) const {
  const auto segments = split_path(request.path);
  std::string allowed;  // populated when the path matches under other methods
  for (const auto& route : routes_) {
    PathParams params;
    if (!match(route, segments, &params)) continue;
    if (route.method == request.method) return route.handler(request, params);
    if (!allowed.empty()) allowed += ", ";
    allowed += route.method;
  }

  HttpResponse response;  // keep-alive semantics are owned by HttpServer
  if (!allowed.empty()) {
    response.status = 405;
    response.headers.emplace_back("Allow", allowed);
    response.body = R"({"error": "method not allowed"})";
  } else {
    response.status = 404;
    response.body = R"({"error": "not found"})";
  }
  response.body += "\n";
  return response;
}

}  // namespace mpqls::net
