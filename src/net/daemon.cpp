#include "net/daemon.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <string_view>
#include <utility>

#include "common/contracts.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "net/shard_exchange.hpp"
#include "qsim/exec/backend/backend.hpp"
#include "service/fingerprint.hpp"
#include "service/json_io.hpp"
#include "service/limits.hpp"
#include "solver/qsvt_ir.hpp"
#include "wire/codec.hpp"

namespace mpqls::net {

namespace {

/// Replace bytes that would corrupt a terminal or log when an error
/// message is echoed into a response body. Parser messages carry byte
/// offsets, never payload bytes, by design — this is defense in depth so
/// a binary request body can NEVER leak control bytes through a 4xx/5xx,
/// whatever the message source.
std::string printable(std::string_view message) {
  std::string out;
  out.reserve(message.size());
  for (const char c : message) {
    const auto u = static_cast<unsigned char>(c);
    out += (u >= 0x20 && u != 0x7f) ? c : '.';
  }
  return out;
}

HttpResponse json_response(int status, Json body) {
  HttpResponse r;
  r.status = status;
  r.body = body.dump() + "\n";
  return r;
}

HttpResponse error_json(int status, const std::string& message) {
  Json j = Json::object();
  j["error"] = printable(message);
  return json_response(status, std::move(j));
}

/// The cold-ref signal of the re-upload protocol (see wire/DESIGN.md):
/// the client PUTs the matrix to /v1/matrices and resubmits.
HttpResponse matrix_miss_json(std::uint64_t ref) {
  Json j = Json::object();
  j["error"] = "unknown matrix_ref";
  j["matrix_ref"] = service::u64_hex(ref);
  return json_response(404, std::move(j));
}

enum class BodyEncoding { kJson, kFrame, kUnknown };

/// No Content-Type keeps the historical JSON default; anything naming
/// "json" is JSON; the frame media type selects the binary codec;
/// everything else is a 415.
BodyEncoding body_encoding(const HttpRequest& request) {
  const std::string* ct = request.header("Content-Type");
  if (ct == nullptr || ct->empty()) return BodyEncoding::kJson;
  if (wire::is_frame_content_type(*ct)) return BodyEncoding::kFrame;
  std::string lower(*ct);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower.find("json") != std::string::npos) return BodyEncoding::kJson;
  // `curl -d` stamps this without being asked; every documented walkthrough
  // uses it with a JSON body, so it keeps the historical JSON default.
  if (lower.find("application/x-www-form-urlencoded") != std::string::npos) {
    return BodyEncoding::kJson;
  }
  return BodyEncoding::kUnknown;
}

HttpResponse unsupported_media_type() {
  return error_json(415, std::string("unsupported Content-Type; use application/json or ") +
                             wire::kContentType);
}

/// Best-effort gate-level circuit width for the admission-time capacity
/// check: the dense embedding solves an n-dim system on ceil_log2(n)
/// data qubits plus BE ancilla, signal, and real-part qubits. Returns 0
/// (no check) when the body does not cheaply reveal the dimension or
/// would not run that circuit (matrix-function backend, non-dense
/// encoding) — the service re-checks the exact compiled width at solve
/// time either way; this only upgrades the failure to a synchronous 413.
std::size_t estimate_circuit_qubits(const Json& body, std::size_t resolved_rows) {
  try {
    if (body.contains("options") && body.at("options").is_object()) {
      const Json& o = body.at("options");
      if (o.contains("qsvt") && o.at("qsvt").is_object()) {
        const Json& q = o.at("qsvt");
        if (q.string_or("backend", "gate") != "gate") return 0;
        if (q.string_or("encoding", "dense") != "dense") return 0;
      }
    }
    std::size_t n = resolved_rows;
    if (n == 0 && body.contains("matrix") && body.at("matrix").is_object()) {
      const Json& m = body.at("matrix");
      const std::string scenario = m.string_or("scenario", "dense");
      if (scenario == "dense" && m.contains("rows") && m.at("rows").is_array()) {
        n = m.at("rows").as_array().size();
      } else if (scenario == "poisson2d") {
        n = static_cast<std::size_t>(m.uint_or("nx", 0)) *
            static_cast<std::size_t>(m.uint_or("ny", 0));
      } else if (m.contains("n")) {
        n = static_cast<std::size_t>(m.at("n").as_uint());
      }
    }
    if (n < 2) return 0;
    std::size_t data = 0;
    while ((std::size_t{1} << data) < n) ++data;
    return data + 3;
  } catch (const std::exception&) {
    return 0;  // schema defects surface as a failed job, as before
  }
}

}  // namespace

SolverDaemon::SolverDaemon(DaemonOptions options)
    : options_(options),
      service_([this] {
        // Distributed jobs need a transport; unless the embedder injected
        // one (tests wire LocalPeerGroup endpoints), install the HTTP
        // channel that exchanges through this daemon's shard hub.
        service::ServiceOptions s = options_.service;
        if (!s.shard_channel) {
          s.shard_channel = [this](const service::ShardSpec& shard) {
            return std::static_pointer_cast<qsim::exec::dist::PeerChannel>(
                std::make_shared<HttpPeerChannel>(shard, shard_hub_));
          };
        }
        return s;
      }()),
      server_(
          HttpServer::Options{options.bind_address, options.port, options.limits,
                              options.max_connections, options.idle_timeout},
          [this](const HttpRequest& request) { return handle(request); }) {
  router_.add("POST", "/v1/jobs",
              [this](const HttpRequest& request, const PathParams&) { return submit_job(request); });
  router_.add("GET", "/v1/jobs",
              [this](const HttpRequest& request, const PathParams&) { return list_jobs(request); });
  router_.add("GET", "/v1/jobs/{id}",
              [this](const HttpRequest&, const PathParams& params) { return job_status(params); });
  router_.add("GET", "/v1/jobs/{id}/result", [this](const HttpRequest& request,
                                                    const PathParams& params) {
    return job_result(request, params);
  });
  router_.add("GET", "/v1/jobs/{id}/trace",
              [this](const HttpRequest&, const PathParams& params) { return job_trace(params); });
  router_.add("GET", "/v1/debug/slow",
              [this](const HttpRequest&, const PathParams&) { return debug_slow(); });
  router_.add("DELETE", "/v1/jobs/{id}",
              [this](const HttpRequest&, const PathParams& params) { return cancel_job(params); });
  router_.add("PUT", "/v1/matrices", [this](const HttpRequest& request, const PathParams&) {
    return upload_matrix(request);
  });
  router_.add("GET", "/v1/matrices/{ref}",
              [this](const HttpRequest&, const PathParams& params) { return matrix_info(params); });
  router_.add("POST", "/v1/shard/exchange", [this](const HttpRequest& request, const PathParams&) {
    return shard_exchange(request);
  });
  router_.add("GET", "/v1/healthz",
              [this](const HttpRequest&, const PathParams&) { return healthz(); });
  router_.add("GET", "/v1/metrics", [this](const HttpRequest&, const PathParams&) {
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = metrics_text();
    return r;
  });
}

void SolverDaemon::start() { server_.start(); }

bool SolverDaemon::drain(std::chrono::milliseconds grace) {
  draining_.store(true);
  const bool idle = service_.wait_idle(grace);
  if (!stopped_.exchange(true)) server_.stop();
  return idle;
}

// HttpServer owns keep-alive semantics (it combines every handler
// response with the request's wishes), so dispatch is all that's left.
HttpResponse SolverDaemon::handle(const HttpRequest& request) { return router_.dispatch(request); }

HttpResponse SolverDaemon::submit_job(const HttpRequest& request) {
  const Timer admission_timer;
  if (draining_.load()) return error_json(503, "daemon is draining; job admission closed");

  const BodyEncoding encoding = body_encoding(request);
  if (encoding == BodyEncoding::kUnknown) return unsupported_media_type();
  EncodingCounters& counters = encoding == BodyEncoding::kFrame ? wire_binary_ : wire_json_;
  counters.requests.fetch_add(1, std::memory_order_relaxed);
  counters.request_bytes.fetch_add(request.body.size(), std::memory_order_relaxed);

  // Trace adoption (see net/DESIGN.md): an `x-mpqls-trace` header wins —
  // that is the coordinator's propagation path — else the body-level id
  // (wire-v3 trailer / JSON "trace_id"), else a fresh mint below.
  // Malformed ids parse to zero and fall through to the mint.
  trace::TraceId trace_id{};
  if (const std::string* th = request.header("x-mpqls-trace")) {
    trace::TraceId::parse(*th, trace_id);
  }

  // Only cheap admission work runs here on the loop thread: a byte-capped
  // JSON parse, or for frames just a header + matrix-ref peek. Full
  // materialization — payload decode, O(n^3) scenario generation — is
  // deferred to the job worker, so a heavy or semantically bogus body can
  // never stall the event loop: schema defects surface as state=failed
  // with the validation message when the job is polled. A by-ref request
  // IS resolved now (one hash-map probe) so a cold ref answers 404
  // synchronously — the client's signal to re-upload and retry — and the
  // resolved matrix rides into the worker closure as a shared_ptr, immune
  // to store eviction between admission and pickup.
  std::function<service::SolveRequest()> make_request;
  if (encoding == BodyEncoding::kFrame) {
    std::optional<std::uint64_t> ref;
    try {
      ref = wire::peek_request_matrix_ref(request.body);
      if (trace_id.zero()) trace_id = wire::peek_request_trace(request.body);
    } catch (const wire::WireError& e) {
      return error_json(400, e.what());
    }
    std::shared_ptr<const linalg::Matrix<double>> resolved;
    if (ref) {
      resolved = service_.matrix_store().get(*ref);
      if (!resolved) return matrix_miss_json(*ref);
    }
    make_request = [body = request.body, resolved = std::move(resolved)] {
      service::MatrixResolver resolve;
      if (resolved) resolve = [&resolved](std::uint64_t) { return resolved; };
      return wire::decode_request(body, resolve);
    };
  } else {
    Json body;
    try {
      body = Json::parse(request.body);
    } catch (const JsonParseError& e) {
      return error_json(400, e.what());
    }
    if (trace_id.zero() && body.is_object() && body.contains("trace_id") &&
        body.at("trace_id").is_string()) {
      trace::TraceId::parse(body.at("trace_id").as_string(), trace_id);
    }
    std::shared_ptr<const linalg::Matrix<double>> resolved;
    if (body.contains("matrix_ref")) {
      std::uint64_t ref = 0;
      try {
        ref = service::u64_from_hex(body.at("matrix_ref").as_string());
      } catch (const std::exception& e) {
        return error_json(400, e.what());
      }
      resolved = service_.matrix_store().get(ref);
      if (!resolved) return matrix_miss_json(ref);
    }
    // Execution-backend admission: an unknown or disabled backend is a
    // schema defect the client hears about synchronously (400 with the
    // contract message), not a failed job discovered on poll. Binary
    // frames carry no backend field and always run the service default.
    try {
      service_.resolve_backend(service::requested_backend(body));
    } catch (const contract_violation& e) {
      return error_json(400, e.what());
    }
    // Capacity admission: when this worker enforces a statevector qubit
    // cap, an obviously-too-wide gate-level job answers 413 here instead
    // of a failed job on poll. Sharding across W workers strips log2(W)
    // qubits from the local statevector, so a job the single node rejects
    // can still be admitted as part of a large enough shard group. The
    // estimate is best-effort (0 = no opinion); the service re-checks the
    // exact compiled width at solve time.
    if (const std::size_t cap = options_.service.max_statevector_qubits; cap != 0) {
      const std::size_t width =
          estimate_circuit_qubits(body, resolved ? resolved->rows() : 0);
      std::size_t world = 1;
      if (body.contains("shard") && body.at("shard").is_object()) {
        world = static_cast<std::size_t>(body.at("shard").uint_or("world", 1));
      }
      std::size_t local = width;
      for (std::size_t w = world; w > 1 && local > 0; w >>= 1) --local;
      if (width != 0 && local > cap) {
        Json j = Json::object();
        j["error"] =
            "statevector exceeds this worker's qubit cap; submit to a larger shard group";
        j["estimated_qubits"] = static_cast<std::uint64_t>(width);
        j["local_qubits"] = static_cast<std::uint64_t>(local);
        j["max_statevector_qubits"] = static_cast<std::uint64_t>(cap);
        return json_response(413, std::move(j));
      }
    }
    make_request = [body = std::move(body), resolved = std::move(resolved)] {
      service::MatrixResolver resolve;
      if (resolved) resolve = [&resolved](std::uint64_t) { return resolved; };
      return service::request_from_json(body, resolve);
    };
  }

  // The job's span buffer, minted (or adopted) here at the front door so
  // the admission span is the first entry every trace shares. The parse
  // and store-probe work above is cheap enough that folding it into the
  // span would not change its shape; the admission HISTOGRAM does cover
  // it (admission_timer spans the whole handler).
  auto trace_ctx = trace::make_trace(trace_id);
  {
    trace::ScopedSpan admission_span(trace_ctx, "admission");
    admission_span.attr("encoding", encoding == BodyEncoding::kFrame ? "binary" : "json");
  }

  // The render callback also runs on the worker, so a terminal result is
  // serialized exactly once no matter how often it is polled.
  const auto job_id = service_.submit_job(
      std::move(make_request),
      [](const service::SolveResult& result) { return service::to_json(result).dump(); },
      trace_ctx);
  if (!job_id) {
    HttpResponse r = error_json(429, "job queue full; retry later");
    r.headers.emplace_back("Retry-After", "1");
    return r;
  }
  admission_latency_.observe(admission_timer.seconds());

  Json j = Json::object();
  j["job_id"] = *job_id;
  j["state"] = "queued";
  j["status_url"] = "/v1/jobs/" + *job_id;
  j["trace_id"] = trace_ctx->id().hex();
  return json_response(202, std::move(j));
}

// The receive half of a pairwise shard exchange: the sending rank's
// HttpPeerChannel POSTs its amplitude block here; depositing it in the
// hub wakes the local job's matching await. Runs entirely on the event
// loop — one decode plus one map insert, no solving work. A deposit the
// hub refuses (pending-byte budget exhausted) answers 503 so the sender
// fails fast instead of deadlocking its group.
HttpResponse SolverDaemon::shard_exchange(const HttpRequest& request) {
  if (body_encoding(request) != BodyEncoding::kFrame) {
    return error_json(415, std::string("shard exchange requires ") + wire::kContentType);
  }
  wire_binary_.requests.fetch_add(1, std::memory_order_relaxed);
  wire_binary_.request_bytes.fetch_add(request.body.size(), std::memory_order_relaxed);
  wire::ShardExchange ex;
  try {
    ex = wire::decode_shard_exchange(request.body);
  } catch (const wire::WireError& e) {
    return error_json(400, e.what());
  }
  if (!shard_hub_.deposit(ex.group, ex.from, ex.seq, std::move(ex.payload))) {
    return error_json(503, "shard exchange buffer full; peer retries or fails the solve");
  }
  Json j = Json::object();
  j["ok"] = true;
  return json_response(200, std::move(j));
}

HttpResponse SolverDaemon::job_status(const PathParams& params) {
  const auto status = service_.job_status(params.get("id"));
  if (!status) return error_json(404, "unknown job id");

  Json j = Json::object();
  j["job_id"] = status->job_id;
  j["state"] = service::to_string(status->state);
  j["queue_seconds"] = status->queue_seconds;
  j["run_seconds"] = status->run_seconds;
  if (status->trace) j["trace_id"] = status->trace->id().hex();
  if (!status->error.empty()) j["error"] = status->error;

  HttpResponse response;
  response.body = j.dump();
  if (status->rendered) {
    // Splice the worker-rendered result in verbatim instead of
    // re-serializing a potentially multi-MB SolveResult on the event-loop
    // thread for every poll. The envelope dump is a non-empty object, so
    // inserting before its closing '}' keeps the body valid JSON.
    response.body.insert(response.body.size() - 1, ",\"result\":" + *status->rendered);
    wire_json_.responses.fetch_add(1, std::memory_order_relaxed);
    wire_json_.response_bytes.fetch_add(status->rendered->size(), std::memory_order_relaxed);
  }
  response.body += "\n";
  return response;
}

HttpResponse SolverDaemon::job_result(const HttpRequest& request, const PathParams& params) {
  const auto status = service_.job_status(params.get("id"));
  if (!status) return error_json(404, "unknown job id");
  if (status->state != service::JobState::kDone || !status->result) {
    Json j = Json::object();
    j["error"] = "job has no result";
    j["state"] = service::to_string(status->state);
    if (!status->error.empty()) j["detail"] = printable(status->error);
    return json_response(409, std::move(j));
  }

  const std::string* accept = request.header("Accept");
  if (accept != nullptr && wire::is_frame_content_type(*accept)) {
    HttpResponse r;
    r.content_type = wire::kContentType;
    r.body = wire::encode_result(*status->result);
    wire_binary_.responses.fetch_add(1, std::memory_order_relaxed);
    wire_binary_.response_bytes.fetch_add(r.body.size(), std::memory_order_relaxed);
    return r;
  }
  HttpResponse r;
  r.body = status->rendered ? *status->rendered : service::to_json(*status->result).dump();
  wire_json_.responses.fetch_add(1, std::memory_order_relaxed);
  wire_json_.response_bytes.fetch_add(r.body.size(), std::memory_order_relaxed);
  r.body += "\n";
  return r;
}

HttpResponse SolverDaemon::job_trace(const PathParams& params) {
  const auto status = service_.job_status(params.get("id"));
  if (!status) return error_json(404, "unknown job id");

  // Every registry job has a trace (minted at admission when the client
  // supplied none), but records from before the tracing rollout — or a
  // cancel that raced submission — may lack one; serve an empty span
  // list rather than a confusing 404 for a job that clearly exists.
  Json j = status->trace ? service::trace_to_json(*status->trace) : Json::object();
  j["job_id"] = status->job_id;
  j["state"] = service::to_string(status->state);
  return json_response(200, std::move(j));
}

HttpResponse SolverDaemon::debug_slow() {
  Json entries = Json::array();
  for (const auto& rec : service_.flight_recorder().snapshot()) {
    Json j = Json::object();
    j["job_id"] = rec.job_id;
    j["state"] = rec.state;
    j["total_seconds"] = rec.total_seconds;
    j["queue_seconds"] = rec.queue_seconds;
    j["run_seconds"] = rec.run_seconds;
    if (rec.trace) j["trace"] = service::trace_to_json(*rec.trace);
    entries.push_back(std::move(j));
  }
  Json body = Json::object();
  body["count"] = static_cast<double>(entries.as_array().size());
  body["capacity"] = static_cast<double>(service_.flight_recorder().capacity());
  body["slow_jobs"] = std::move(entries);
  return json_response(200, std::move(body));
}

HttpResponse SolverDaemon::upload_matrix(const HttpRequest& request) {
  const BodyEncoding encoding = body_encoding(request);
  if (encoding == BodyEncoding::kUnknown) return unsupported_media_type();
  EncodingCounters& counters = encoding == BodyEncoding::kFrame ? wire_binary_ : wire_json_;
  counters.requests.fetch_add(1, std::memory_order_relaxed);
  counters.request_bytes.fetch_add(request.body.size(), std::memory_order_relaxed);

  // Decoding runs on the loop thread: a kMatrix frame decodes as one
  // bounds check plus a memcpy, and uploads are rare next to submits.
  linalg::Matrix<double> A;
  try {
    if (encoding == BodyEncoding::kFrame) {
      A = wire::decode_matrix(request.body);
    } else {
      const Json body = Json::parse(request.body);
      A = service::matrix_from_json(body.contains("matrix") ? body.at("matrix") : body);
    }
  } catch (const std::exception& e) {  // WireError / JsonParseError / validation
    return error_json(400, e.what());
  }
  if (A.rows() != A.cols()) return error_json(400, "store: square matrix required");

  const std::uint64_t hash = service::hash_matrix(A);
  const std::size_t rows = A.rows();
  const bool created = !service_.matrix_store().contains(hash);
  service_.matrix_store().put(hash, std::move(A));

  Json j = Json::object();
  j["matrix_ref"] = service::u64_hex(hash);
  j["rows"] = static_cast<double>(rows);
  j["cols"] = static_cast<double>(rows);
  j["bytes"] = static_cast<double>(rows * rows * sizeof(double));
  j["created"] = created;
  return json_response(created ? 201 : 200, std::move(j));
}

HttpResponse SolverDaemon::matrix_info(const PathParams& params) {
  std::uint64_t ref = 0;
  try {
    ref = service::u64_from_hex(params.get("ref"));
  } catch (const std::exception& e) {
    return error_json(400, e.what());
  }
  // get(), not contains(): a probe refreshes recency (a client checking
  // before a burst of by-ref submits keeps the entry warm) and shows up
  // in the hit/miss counters like any other resolution.
  const auto m = service_.matrix_store().get(ref);
  if (!m) return matrix_miss_json(ref);

  Json j = Json::object();
  j["matrix_ref"] = service::u64_hex(ref);
  j["rows"] = static_cast<double>(m->rows());
  j["cols"] = static_cast<double>(m->cols());
  j["bytes"] = static_cast<double>(m->rows() * m->cols() * sizeof(double));
  return json_response(200, std::move(j));
}

HttpResponse SolverDaemon::cancel_job(const PathParams& params) {
  const std::string& id = params.get("id");
  switch (service_.cancel_job(id)) {
    case service::CancelOutcome::kNotFound: return error_json(404, "unknown job id");
    case service::CancelOutcome::kNotCancellable:
      return error_json(409, "job is running or already terminal");
    case service::CancelOutcome::kCancelled: break;
  }
  Json j = Json::object();
  j["job_id"] = id;
  j["state"] = "cancelled";
  return json_response(200, std::move(j));
}

HttpResponse SolverDaemon::list_jobs(const HttpRequest& request) {
  // ?limit=N caps the answer; the default and ceiling keep a registry of
  // thousands of retained jobs from turning a poll into a megabyte dump.
  std::size_t limit = 100;
  if (!parse_limit_param(request.query, 1000, &limit)) {
    return error_json(400, "limit must be a non-negative integer");
  }

  Json jobs = Json::array();
  for (const auto& status : service_.list_jobs(limit)) {
    Json j = Json::object();
    j["job_id"] = status.job_id;
    j["state"] = service::to_string(status.state);
    j["queue_seconds"] = status.queue_seconds;
    j["run_seconds"] = status.run_seconds;
    if (!status.error.empty()) j["error"] = status.error;
    jobs.push_back(std::move(j));
  }
  Json body = Json::object();
  body["count"] = static_cast<double>(jobs.as_array().size());
  body["jobs"] = std::move(jobs);
  return json_response(200, std::move(body));
}

HttpResponse SolverDaemon::healthz() const {
  Json j = Json::object();
  j["status"] = draining_.load() ? "draining" : "ok";
  j["uptime_seconds"] = uptime_.seconds();
  // Execution-backend capabilities: what this instance can run and what
  // it runs by default. The coordinator's prober consumes this for
  // capability-aware routing; clients render it to pick a backend.
  j["default_backend"] = options_.service.default_backend;
  Json backends = Json::array();
  for (const auto& name : service_.enabled_backends()) {
    const auto* backend = qsim::exec::find_backend(name);
    if (backend == nullptr) continue;
    const auto& caps = backend->capabilities();
    Json b = Json::object();
    b["name"] = caps.name;
    b["description"] = caps.description;
    Json precisions = Json::array();
    for (const auto& p : caps.precisions) precisions.push_back(p);
    b["precisions"] = std::move(precisions);
    b["max_qubits"] = static_cast<std::uint64_t>(caps.max_qubits);
    Json widths = Json::array();
    for (const auto w : caps.panel_widths) widths.push_back(static_cast<std::uint64_t>(w));
    b["panel_widths"] = std::move(widths);
    backends.push_back(std::move(b));
  }
  j["backends"] = std::move(backends);
  // Distributed-execution posture: the qubit cap that makes this worker
  // reject too-wide jobs (0 = unlimited) and the shard groups currently
  // rendezvousing through this daemon's hub. Coordinators consume the cap
  // for shard-group sizing; operators read active_groups to see which
  // distributed solves are in flight on this rank.
  Json dist = Json::object();
  dist["max_statevector_qubits"] =
      static_cast<std::uint64_t>(options_.service.max_statevector_qubits);
  Json groups = Json::array();
  for (const auto& info : shard_hub_.active_groups()) {
    Json g = Json::object();
    g["group"] = service::u64_hex(info.group);
    g["rank"] = static_cast<std::uint64_t>(info.rank);
    g["world"] = static_cast<std::uint64_t>(info.world);
    Json peers = Json::array();
    for (const auto& p : info.peers) peers.push_back(p);
    g["peers"] = std::move(peers);
    groups.push_back(std::move(g));
  }
  dist["active_groups"] = std::move(groups);
  j["dist"] = std::move(dist);
  return json_response(200, std::move(j));
}

std::string SolverDaemon::metrics_text() const {
  const auto cache = service_.cache_stats();
  const auto stats = service_.stats();
  const auto queue = service_.queue_stats();
  const auto http = server_.stats();

  MetricsWriter m;
  m.gauge("mpqls_up", "1 while the daemon is serving.", std::uint64_t{1});
  m.gauge("mpqls_draining", "1 once SIGTERM/SIGINT started the drain.",
          std::uint64_t{draining_.load() ? 1u : 0u});
  m.counter("mpqls_uptime_seconds", "Wall-clock seconds since daemon construction.",
            uptime_.seconds());

  m.counter("mpqls_jobs_completed_total", "Jobs fully solved (sync and async paths).",
            stats.jobs);
  m.counter("mpqls_rhs_solved_total", "Right-hand sides solved across all jobs.",
            stats.rhs_solved);
  m.counter("mpqls_solve_seconds_total", "Summed per-RHS refinement wall clock.",
            stats.solve_seconds_total);
  m.counter("mpqls_prepare_seconds_total",
            "Summed context-preparation wall clock (cache hits cost ~0).",
            stats.prepare_seconds_total);
  m.counter("mpqls_program_compile_seconds_total",
            "Summed circuit->program compile wall clock (one per prepared context).",
            stats.program_compile_seconds_total);
  m.counter("mpqls_program_ops_total", "Fused executor ops across compiled programs.",
            stats.program_ops_total);

  m.gauge("mpqls_panel_width", "Configured RHS lanes per execution panel (<2 = scalar path).",
          static_cast<std::uint64_t>(options_.service.panel_width));
  m.counter("mpqls_panels_executed_total",
            "Compiled-program sweeps that carried a panel of RHS lanes.",
            stats.panels_executed);
  m.counter("mpqls_panel_lanes_total", "RHS lanes carried by executed panels.",
            stats.panel_lanes_total);
  m.gauge("mpqls_panel_mean_lane_occupancy",
          "Mean fraction of the configured panel width occupied per sweep.",
          (stats.panels_executed > 0 && options_.service.panel_width > 0)
              ? static_cast<double>(stats.panel_lanes_total) /
                    (static_cast<double>(stats.panels_executed) *
                     static_cast<double>(options_.service.panel_width))
              : 0.0);

  // Per-precision-tier execution telemetry (the adaptive-precision
  // schedule's footprint; fixed-precision jobs land entirely in one tier).
  const auto tier_family = [&m](const char* name, const char* help,
                                        const std::array<std::uint64_t, 3>& values) {
    m.counter(name, help, values[solver::kTierHalf], {{"precision", "half"}});
    m.counter(name, help, values[solver::kTierSingle], {{"precision", "single"}});
    m.counter(name, help, values[solver::kTierDouble], {{"precision", "double"}});
  };
  tier_family("mpqls_precision_solves_total", "QSVT replays executed, by precision tier.",
              stats.tier_solves_total);
  tier_family("mpqls_precision_iterations_total",
              "Refinement iterations executed, by precision tier.",
              stats.tier_iterations_total);
  m.counter("mpqls_precision_switches_total",
            "Tier escalations taken by adaptive-precision solves.",
            stats.precision_switches_total);

  // Per-execution-backend load: which kernel implementation ran what.
  // Labels are RESOLVED registry names (default-routed jobs land under
  // the configured default), so series appear once a backend first runs.
  m.gauge("mpqls_backend_default_info", "1 for the configured default execution backend.",
          std::uint64_t{1}, {{"backend", options_.service.default_backend}});
  const auto backend_family = [&m, &stats](const char* name, const char* help, auto pick) {
    for (const auto& [backend, b] : stats.backends) {
      m.counter(name, help, pick(b), {{"backend", backend}});
    }
  };
  backend_family("mpqls_backend_jobs_total", "Jobs executed, by execution backend.",
                 [](const auto& b) { return b.jobs; });
  backend_family("mpqls_backend_rhs_solved_total",
                 "Right-hand sides solved, by execution backend.",
                 [](const auto& b) { return b.rhs_solved; });
  backend_family("mpqls_backend_replays_total",
                 "Compiled-program applications (one per QSVT solve), by execution backend.",
                 [](const auto& b) { return b.replays; });
  backend_family("mpqls_backend_panels_total",
                 "Panel sweeps executed, by execution backend.",
                 [](const auto& b) { return b.panels; });

  m.counter("mpqls_cache_hits_total", "Context-cache hits (includes in-flight joins).",
            cache.hits);
  m.counter("mpqls_cache_misses_total", "Context-cache misses (each runs a preparation).",
            cache.misses);
  m.counter("mpqls_cache_evictions_total", "Contexts evicted by LRU pressure.",
            cache.evictions);
  m.gauge("mpqls_cache_resident", "Prepared contexts currently cached.", cache.size);
  m.gauge("mpqls_cache_capacity", "Context-cache capacity.", cache.capacity);

  m.gauge("mpqls_queue_depth", "Jobs accepted but not yet picked up by a worker.",
          queue.queued);
  m.gauge("mpqls_jobs_running", "Jobs a worker is currently solving.", queue.running);
  m.gauge("mpqls_jobs_in_flight", "Queued plus running jobs (admission-control load).",
          queue.queued + queue.running);
  m.gauge("mpqls_queue_capacity", "Admission bound for in-flight jobs (0 = unbounded).",
          queue.max_pending);
  m.counter("mpqls_jobs_accepted_total", "Jobs admitted by POST /v1/jobs.", queue.accepted);
  m.counter("mpqls_jobs_rejected_total", "Jobs refused with 429 (queue full).",
            queue.rejected);
  m.counter("mpqls_jobs_done_total", "Async jobs that reached state done.", queue.done);
  m.counter("mpqls_jobs_failed_total", "Async jobs that reached state failed.", queue.failed);
  m.counter("mpqls_jobs_cancelled_total", "Queued jobs cancelled via DELETE before pickup.",
            queue.cancelled);

  // One histogram family, stage-labelled; consecutive calls share the
  // HELP/TYPE preamble and every series has identical `le` buckets (the
  // shared Histogram::kBounds), so PromQL can aggregate across stages.
  const auto& lat = service_.stage_latency();
  const char* lat_name = "mpqls_latency_seconds";
  const char* lat_help =
      "Per-stage job latency: admission (HTTP parse+admit), queue (submit->pickup), "
      "prepare (context fetch/compile), solve (summed per-RHS refinement), render "
      "(result serialization), total (submit->terminal).";
  m.histogram(lat_name, lat_help, admission_latency_, {{"stage", "admission"}});
  m.histogram(lat_name, lat_help, lat.queue, {{"stage", "queue"}});
  m.histogram(lat_name, lat_help, lat.prepare, {{"stage", "prepare"}});
  m.histogram(lat_name, lat_help, lat.solve, {{"stage", "solve"}});
  m.histogram(lat_name, lat_help, lat.render, {{"stage", "render"}});
  m.histogram(lat_name, lat_help, lat.total, {{"stage", "total"}});

  const auto store = service_.matrix_store().stats();
  m.gauge("mpqls_store_entries", "Matrices resident in the content-addressed store.",
          static_cast<std::uint64_t>(store.entries));
  m.gauge("mpqls_store_bytes", "Bytes resident in the content-addressed store.",
          static_cast<std::uint64_t>(store.bytes));
  m.gauge("mpqls_store_capacity_bytes", "Byte budget of the content-addressed store.",
          static_cast<std::uint64_t>(store.capacity_bytes));
  m.counter("mpqls_store_hits_total", "matrix_ref resolutions served from the store.",
            store.hits);
  m.counter("mpqls_store_misses_total",
            "matrix_ref resolutions that missed (each answers 404: re-upload and retry).",
            store.misses);
  m.counter("mpqls_store_puts_total",
            "Matrix uploads accepted (idempotent re-puts of a resident hash included).",
            store.puts);
  m.counter("mpqls_store_evictions_total", "Matrices evicted by LRU byte pressure.",
            store.evictions);

  const auto wire_family = [&m](const char* name, const char* help, std::uint64_t json_value,
                                std::uint64_t binary_value) {
    m.counter(name, help, json_value, {{"encoding", "json"}});
    m.counter(name, help, binary_value, {{"encoding", "binary"}});
  };
  wire_family("mpqls_wire_requests_total",
              "Job submissions and matrix uploads received, by body encoding.",
              wire_json_.requests.load(), wire_binary_.requests.load());
  wire_family("mpqls_wire_request_bytes_total",
              "Body bytes received by submits and uploads, by encoding.",
              wire_json_.request_bytes.load(), wire_binary_.request_bytes.load());
  wire_family("mpqls_wire_responses_total", "Result payloads served, by encoding.",
              wire_json_.responses.load(), wire_binary_.responses.load());
  wire_family("mpqls_wire_response_bytes_total", "Result payload bytes served, by encoding.",
              wire_json_.response_bytes.load(), wire_binary_.response_bytes.load());

  // Distributed shard-group telemetry: zero on single-node workers, so
  // the series only move once distributed jobs run here.
  m.counter("mpqls_dist_jobs_total", "Jobs this rank solved as part of a shard group.",
            stats.dist.jobs);
  m.counter("mpqls_dist_solves_total", "Per-RHS distributed solves executed on this rank.",
            stats.dist.solves);
  m.counter("mpqls_dist_exchange_rounds_total",
            "Pairwise amplitude exchanges performed by this rank.",
            stats.dist.exchange_rounds);
  m.counter("mpqls_dist_bytes_moved_total",
            "Amplitude bytes this rank shipped to peers during exchanges.",
            stats.dist.bytes_moved);
  m.counter("mpqls_dist_exchange_seconds_total",
            "Wall clock this rank spent blocked in peer exchanges.",
            stats.dist.exchange_seconds);
  m.counter("mpqls_dist_local_seconds_total",
            "Wall clock this rank spent applying local shard ops.",
            stats.dist.local_seconds);
  m.counter("mpqls_dist_plan_naive_rounds_total",
            "Exchange rounds an unscheduled plan would have executed.",
            stats.dist.plan_naive_rounds);
  m.counter("mpqls_dist_plan_scheduled_rounds_total",
            "Exchange rounds the scheduled plans actually executed.",
            stats.dist.plan_scheduled_rounds);
  m.gauge("mpqls_dist_active_groups",
          "Shard groups currently registered with this daemon's exchange hub.",
          static_cast<std::uint64_t>(shard_hub_.active_groups().size()));

  m.counter("mpqls_http_requests_total", "Fully parsed HTTP requests.", http.requests);
  m.counter("mpqls_http_parse_errors_total",
            "Requests rejected by the parser (400/413/431/501/505).", http.parse_errors);
  m.counter("mpqls_http_connections_accepted_total", "TCP connections accepted.",
            http.connections_accepted);
  m.counter("mpqls_http_connections_rejected_total",
            "TCP connections refused over the connection limit.", http.connections_rejected);
  m.gauge("mpqls_http_connections_open", "Currently open TCP connections.",
          http.connections_open);
  return m.str();
}

}  // namespace mpqls::net
