#include "net/daemon.hpp"

#include <algorithm>
#include <charconv>
#include <string_view>
#include <utility>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "service/json_io.hpp"

namespace mpqls::net {

namespace {

HttpResponse json_response(int status, Json body) {
  HttpResponse r;
  r.status = status;
  r.body = body.dump() + "\n";
  return r;
}

HttpResponse error_json(int status, const std::string& message) {
  Json j = Json::object();
  j["error"] = message;
  return json_response(status, std::move(j));
}

}  // namespace

SolverDaemon::SolverDaemon(DaemonOptions options)
    : options_(options),
      service_(options.service),
      server_(
          HttpServer::Options{options.bind_address, options.port, options.limits,
                              options.max_connections, options.idle_timeout},
          [this](const HttpRequest& request) { return handle(request); }) {
  router_.add("POST", "/v1/jobs",
              [this](const HttpRequest& request, const PathParams&) { return submit_job(request); });
  router_.add("GET", "/v1/jobs",
              [this](const HttpRequest& request, const PathParams&) { return list_jobs(request); });
  router_.add("GET", "/v1/jobs/{id}",
              [this](const HttpRequest&, const PathParams& params) { return job_status(params); });
  router_.add("DELETE", "/v1/jobs/{id}",
              [this](const HttpRequest&, const PathParams& params) { return cancel_job(params); });
  router_.add("GET", "/v1/healthz",
              [this](const HttpRequest&, const PathParams&) { return healthz(); });
  router_.add("GET", "/v1/metrics", [this](const HttpRequest&, const PathParams&) {
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = metrics_text();
    return r;
  });
}

void SolverDaemon::start() { server_.start(); }

bool SolverDaemon::drain(std::chrono::milliseconds grace) {
  draining_.store(true);
  const bool idle = service_.wait_idle(grace);
  if (!stopped_.exchange(true)) server_.stop();
  return idle;
}

// HttpServer owns keep-alive semantics (it combines every handler
// response with the request's wishes), so dispatch is all that's left.
HttpResponse SolverDaemon::handle(const HttpRequest& request) { return router_.dispatch(request); }

HttpResponse SolverDaemon::submit_job(const HttpRequest& request) {
  if (draining_.load()) return error_json(503, "daemon is draining; job admission closed");

  // Only the (byte-capped) JSON parse runs here on the loop thread.
  // Materializing the request — scenario matrices can be O(n^3) to
  // generate — is deferred to the job worker, so a heavy or semantically
  // bogus body can never stall the event loop: schema defects surface as
  // state=failed with the validation message when the job is polled.
  Json body;
  try {
    body = Json::parse(request.body);
  } catch (const JsonParseError& e) {
    return error_json(400, e.what());
  }

  // The render callback also runs on the worker, so a terminal result is
  // serialized exactly once no matter how often it is polled.
  const auto job_id = service_.submit_job(
      std::function<service::SolveRequest()>(
          [body = std::move(body)] { return service::request_from_json(body); }),
      [](const service::SolveResult& result) { return service::to_json(result).dump(); });
  if (!job_id) {
    HttpResponse r = error_json(429, "job queue full; retry later");
    r.headers.emplace_back("Retry-After", "1");
    return r;
  }

  Json j = Json::object();
  j["job_id"] = *job_id;
  j["state"] = "queued";
  j["status_url"] = "/v1/jobs/" + *job_id;
  return json_response(202, std::move(j));
}

HttpResponse SolverDaemon::job_status(const PathParams& params) {
  const auto status = service_.job_status(params.get("id"));
  if (!status) return error_json(404, "unknown job id");

  Json j = Json::object();
  j["job_id"] = status->job_id;
  j["state"] = service::to_string(status->state);
  j["queue_seconds"] = status->queue_seconds;
  j["run_seconds"] = status->run_seconds;
  if (!status->error.empty()) j["error"] = status->error;

  HttpResponse response;
  response.body = j.dump();
  if (status->rendered) {
    // Splice the worker-rendered result in verbatim instead of
    // re-serializing a potentially multi-MB SolveResult on the event-loop
    // thread for every poll. The envelope dump is a non-empty object, so
    // inserting before its closing '}' keeps the body valid JSON.
    response.body.insert(response.body.size() - 1, ",\"result\":" + *status->rendered);
  }
  response.body += "\n";
  return response;
}

HttpResponse SolverDaemon::cancel_job(const PathParams& params) {
  const std::string& id = params.get("id");
  switch (service_.cancel_job(id)) {
    case service::CancelOutcome::kNotFound: return error_json(404, "unknown job id");
    case service::CancelOutcome::kNotCancellable:
      return error_json(409, "job is running or already terminal");
    case service::CancelOutcome::kCancelled: break;
  }
  Json j = Json::object();
  j["job_id"] = id;
  j["state"] = "cancelled";
  return json_response(200, std::move(j));
}

HttpResponse SolverDaemon::list_jobs(const HttpRequest& request) {
  // ?limit=N caps the answer; the default and ceiling keep a registry of
  // thousands of retained jobs from turning a poll into a megabyte dump.
  std::size_t limit = 100;
  if (!parse_limit_param(request.query, 1000, &limit)) {
    return error_json(400, "limit must be a non-negative integer");
  }

  Json jobs = Json::array();
  for (const auto& status : service_.list_jobs(limit)) {
    Json j = Json::object();
    j["job_id"] = status.job_id;
    j["state"] = service::to_string(status.state);
    j["queue_seconds"] = status.queue_seconds;
    j["run_seconds"] = status.run_seconds;
    if (!status.error.empty()) j["error"] = status.error;
    jobs.push_back(std::move(j));
  }
  Json body = Json::object();
  body["count"] = static_cast<double>(jobs.as_array().size());
  body["jobs"] = std::move(jobs);
  return json_response(200, std::move(body));
}

HttpResponse SolverDaemon::healthz() const {
  Json j = Json::object();
  j["status"] = draining_.load() ? "draining" : "ok";
  j["uptime_seconds"] = uptime_.seconds();
  return json_response(200, std::move(j));
}

std::string SolverDaemon::metrics_text() const {
  const auto cache = service_.cache_stats();
  const auto stats = service_.stats();
  const auto queue = service_.queue_stats();
  const auto http = server_.stats();

  MetricsWriter m;
  m.gauge("mpqls_up", "1 while the daemon is serving.", std::uint64_t{1});
  m.gauge("mpqls_draining", "1 once SIGTERM/SIGINT started the drain.",
          std::uint64_t{draining_.load() ? 1u : 0u});
  m.counter("mpqls_uptime_seconds", "Wall-clock seconds since daemon construction.",
            uptime_.seconds());

  m.counter("mpqls_jobs_completed_total", "Jobs fully solved (sync and async paths).",
            stats.jobs);
  m.counter("mpqls_rhs_solved_total", "Right-hand sides solved across all jobs.",
            stats.rhs_solved);
  m.counter("mpqls_solve_seconds_total", "Summed per-RHS refinement wall clock.",
            stats.solve_seconds_total);
  m.counter("mpqls_prepare_seconds_total",
            "Summed context-preparation wall clock (cache hits cost ~0).",
            stats.prepare_seconds_total);
  m.counter("mpqls_program_compile_seconds_total",
            "Summed circuit->program compile wall clock (one per prepared context).",
            stats.program_compile_seconds_total);
  m.counter("mpqls_program_ops_total", "Fused executor ops across compiled programs.",
            stats.program_ops_total);

  m.gauge("mpqls_panel_width", "Configured RHS lanes per execution panel (<2 = scalar path).",
          static_cast<std::uint64_t>(options_.service.panel_width));
  m.counter("mpqls_panels_executed_total",
            "Compiled-program sweeps that carried a panel of RHS lanes.",
            stats.panels_executed);
  m.counter("mpqls_panel_lanes_total", "RHS lanes carried by executed panels.",
            stats.panel_lanes_total);
  m.gauge("mpqls_panel_mean_lane_occupancy",
          "Mean fraction of the configured panel width occupied per sweep.",
          (stats.panels_executed > 0 && options_.service.panel_width > 0)
              ? static_cast<double>(stats.panel_lanes_total) /
                    (static_cast<double>(stats.panels_executed) *
                     static_cast<double>(options_.service.panel_width))
              : 0.0);

  m.counter("mpqls_cache_hits_total", "Context-cache hits (includes in-flight joins).",
            cache.hits);
  m.counter("mpqls_cache_misses_total", "Context-cache misses (each runs a preparation).",
            cache.misses);
  m.counter("mpqls_cache_evictions_total", "Contexts evicted by LRU pressure.",
            cache.evictions);
  m.gauge("mpqls_cache_resident", "Prepared contexts currently cached.", cache.size);
  m.gauge("mpqls_cache_capacity", "Context-cache capacity.", cache.capacity);

  m.gauge("mpqls_queue_depth", "Jobs accepted but not yet picked up by a worker.",
          queue.queued);
  m.gauge("mpqls_jobs_running", "Jobs a worker is currently solving.", queue.running);
  m.gauge("mpqls_jobs_in_flight", "Queued plus running jobs (admission-control load).",
          queue.queued + queue.running);
  m.gauge("mpqls_queue_capacity", "Admission bound for in-flight jobs (0 = unbounded).",
          queue.max_pending);
  m.counter("mpqls_jobs_accepted_total", "Jobs admitted by POST /v1/jobs.", queue.accepted);
  m.counter("mpqls_jobs_rejected_total", "Jobs refused with 429 (queue full).",
            queue.rejected);
  m.counter("mpqls_jobs_done_total", "Async jobs that reached state done.", queue.done);
  m.counter("mpqls_jobs_failed_total", "Async jobs that reached state failed.", queue.failed);
  m.counter("mpqls_jobs_cancelled_total", "Queued jobs cancelled via DELETE before pickup.",
            queue.cancelled);

  m.counter("mpqls_http_requests_total", "Fully parsed HTTP requests.", http.requests);
  m.counter("mpqls_http_parse_errors_total",
            "Requests rejected by the parser (400/413/431/501/505).", http.parse_errors);
  m.counter("mpqls_http_connections_accepted_total", "TCP connections accepted.",
            http.connections_accepted);
  m.counter("mpqls_http_connections_rejected_total",
            "TCP connections refused over the connection limit.", http.connections_rejected);
  m.gauge("mpqls_http_connections_open", "Currently open TCP connections.",
          http.connections_open);
  return m.str();
}

}  // namespace mpqls::net
