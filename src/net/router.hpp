// Method + path-pattern dispatch for the daemon's handful of endpoints.
// Patterns are literal segments with `{name}` captures ("/v1/jobs/{id}").
// Dispatch answers 404 for unknown paths and 405 (with Allow) when the
// path exists under a different method — the distinction clients need to
// fix their request.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/http.hpp"

namespace mpqls::net {

/// Captured `{name}` segments for one match, in pattern order.
class PathParams {
 public:
  void add(std::string name, std::string value) {
    params_.emplace_back(std::move(name), std::move(value));
  }
  /// Value for a capture; empty string when absent.
  const std::string& get(std::string_view name) const;
  std::size_t size() const { return params_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> params_;
};

class Router {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&, const PathParams&)>;

  void add(std::string method, std::string pattern, Handler handler);

  /// Route a parsed request; never throws past handler exceptions.
  HttpResponse dispatch(const HttpRequest& request) const;

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;  ///< "{x}" entries capture
    Handler handler;
  };

  static std::vector<std::string> split_path(std::string_view path);
  static bool match(const Route& route, const std::vector<std::string>& segments,
                    PathParams* params);

  std::vector<Route> routes_;
};

}  // namespace mpqls::net
