// The networked PeerChannel behind distributed shard-group solves: each
// pairwise exchange POSTs this rank's amplitude block to the peer
// daemon's /v1/shard/exchange as a kShardExchange frame, then blocks on
// the local ShardHub until the peer's mirrored POST lands (the daemon's
// route handler deposits it). The send side and the receive side are
// independent HTTP requests, so both ranks of a pair can post
// concurrently and neither end ever holds a connection open waiting.
//
// One channel serves one job on one rank: construction registers the
// shard group with the hub (what /v1/healthz reports), destruction
// clears any parked payloads and unregisters it. Like every
// PeerChannel, it is driven by the single solving thread — per-peer
// HttpClients are reused across exchanges without locking.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/http_client.hpp"
#include "qsim/exec/dist/peer_channel.hpp"
#include "service/request.hpp"

namespace mpqls::net {

class HttpPeerChannel : public qsim::exec::dist::PeerChannel {
 public:
  /// `shard` names this rank's place in the group; `hub` must outlive the
  /// channel (the daemon owns both). `await_timeout` bounds how long an
  /// exchange waits for the peer's mirrored frame.
  HttpPeerChannel(service::ShardSpec shard, qsim::exec::dist::ShardHub& hub,
                  Deadlines deadlines = {},
                  std::chrono::milliseconds await_timeout = std::chrono::milliseconds(60000));
  ~HttpPeerChannel() override;

  HttpPeerChannel(const HttpPeerChannel&) = delete;
  HttpPeerChannel& operator=(const HttpPeerChannel&) = delete;

  void exchange(std::uint32_t peer, std::uint64_t seq, const void* send, void* recv,
                std::size_t bytes) override;

 private:
  HttpClient& client_for(std::uint32_t peer);

  service::ShardSpec shard_;
  qsim::exec::dist::ShardHub& hub_;
  Deadlines deadlines_;
  std::chrono::milliseconds await_timeout_;
  std::vector<std::unique_ptr<HttpClient>> clients_;  ///< per peer rank, lazy
};

}  // namespace mpqls::net
