#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace mpqls::net {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

// RFC 9110 token characters (method and header names).
bool is_token(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') ||
                    std::string_view("!#$%&'*+-.^_`|~").find(c) != std::string_view::npos;
    if (!ok) return false;
  }
  return true;
}

/// Strict non-negative decimal; false on empty/overflow/non-digits — the
/// difference between 400 and treating "Content-Length: 1e9" as zero.
bool parse_decimal(std::string_view s, std::size_t* out) {
  if (s.empty() || s.size() > 19) return false;
  std::size_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = v;
  return true;
}

/// Split the head into lines; returns false on a malformed line ending.
/// Lines are CRLF-separated; a bare LF is tolerated (hand-typed clients).
std::vector<std::string_view> split_lines(std::string_view head) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start < head.size()) {
    std::size_t nl = head.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(head.substr(start));
      break;
    }
    std::size_t end = nl;
    if (end > start && head[end - 1] == '\r') --end;
    lines.push_back(head.substr(start, end - start));
    start = nl + 1;
  }
  return lines;
}

/// Shared head accumulation for both parsers: append up to the cap, find
/// the head terminator, and give back bytes consumed past it (body or
/// pipelined-next-message bytes). The EARLIEST of CRLFCRLF and the
/// tolerated bare LFLF wins — preferring one unconditionally would let a
/// later sequence inside the body bytes of the same read misframe an
/// LF-terminated head. Returns true when the head is complete; *overflow
/// reports a head larger than `max_head_bytes`.
bool accumulate_head(std::string& head, std::string_view rest, std::size_t max_head_bytes,
                     std::size_t* used, bool* overflow) {
  *overflow = false;
  const std::size_t take = std::min(rest.size(), max_head_bytes + 4 - head.size());
  const std::size_t before = head.size();
  head.append(rest.substr(0, take));
  *used += take;
  // Resume the searches a few bytes back in case a terminator straddles
  // the previous chunk boundary.
  const std::size_t crlf = head.find("\r\n\r\n", before >= 3 ? before - 3 : 0);
  const std::size_t lflf = head.find("\n\n", before >= 1 ? before - 1 : 0);
  std::size_t terminator = std::string::npos;
  std::size_t term_len = 0;
  if (crlf != std::string::npos && (lflf == std::string::npos || crlf < lflf)) {
    terminator = crlf;
    term_len = 4;
  } else if (lflf != std::string::npos) {
    terminator = lflf;
    term_len = 2;
  }
  if (terminator == std::string::npos) {
    if (head.size() > max_head_bytes) *overflow = true;
    return false;
  }
  const std::size_t head_end = terminator + term_len;
  *used -= head.size() - head_end;
  head.resize(head_end);
  if (head.size() > max_head_bytes + term_len) *overflow = true;
  return true;
}

/// Shared header-block parsing for requests and responses. Returns an
/// error message ("" on success) so each parser maps it to its own
/// failure channel.
std::string parse_header_lines(const std::vector<std::string_view>& lines, std::size_t first,
                               std::size_t max_headers, HeaderList* out) {
  for (std::size_t i = first; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (line.empty()) continue;  // trailing blank from the \r\n\r\n terminator
    if (out->size() >= max_headers) return "too many headers";
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return "header line missing ':'";
    const std::string_view name = line.substr(0, colon);
    if (!is_token(name)) return "malformed header name";
    const std::string_view value = trim_ows(line.substr(colon + 1));
    out->emplace_back(std::string(name), std::string(value));
  }
  return "";
}

}  // namespace

const std::string* find_header(const HeaderList& headers, std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return &v;
  }
  return nullptr;
}

bool parse_limit_param(std::string_view query, std::size_t cap, std::size_t* out) {
  while (!query.empty()) {
    const auto amp = query.find('&');
    const std::string_view param = query.substr(0, amp);
    query.remove_prefix(amp == std::string_view::npos ? query.size() : amp + 1);
    if (param.rfind("limit=", 0) != 0) continue;
    std::size_t parsed = 0;
    const char* begin = param.data() + 6;
    const char* end = param.data() + param.size();
    const auto [ptr, ec] = std::from_chars(begin, end, parsed);
    if (ec != std::errc() || ptr != end) return false;
    *out = std::min(parsed, cap);
  }
  return true;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 415: return "Unsupported Media Type";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string to_wire(const HttpResponse& response) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_reason(response.status);
  out += "\r\n";
  for (const auto& [k, v] : response.headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  out += "Content-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += response.keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

std::string to_wire_request(const std::string& method, const std::string& target,
                            const std::string& host, const std::string& body,
                            const std::string& content_type, bool keep_alive,
                            const HeaderList& extra) {
  std::string out;
  out.reserve(128 + body.size());
  out += method;
  out += ' ';
  out += target;
  out += " HTTP/1.1\r\nHost: ";
  out += host;
  out += "\r\n";
  for (const auto& [k, v] : extra) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  if (!body.empty()) {
    out += "Content-Type: ";
    out += content_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

// --- RequestParser ----------------------------------------------------------

void RequestParser::fail(int status, std::string message) {
  state_ = ParseState::kError;
  error_status_ = status;
  error_message_ = std::move(message);
}

void RequestParser::reset() {
  state_ = ParseState::kHead;
  head_.clear();
  body_expected_ = 0;
  request_ = HttpRequest{};
  error_status_ = 0;
  error_message_.clear();
}

std::size_t RequestParser::consume(std::string_view data) {
  std::size_t used = 0;
  while (used < data.size() && state_ != ParseState::kComplete && state_ != ParseState::kError) {
    const std::string_view rest = data.substr(used);
    if (state_ == ParseState::kHead) {
      // Accumulate until the blank line. The cap applies to the buffered
      // head, so a flood of header bytes errors out instead of growing.
      bool overflow = false;
      const bool complete =
          accumulate_head(head_, rest, limits_.max_head_bytes, &used, &overflow);
      if (overflow) {
        fail(431, "request head exceeds " + std::to_string(limits_.max_head_bytes) + " bytes");
        continue;
      }
      if (!complete) continue;
      parse_head();
    } else {  // kBody
      const std::size_t want = body_expected_ - request_.body.size();
      const std::size_t take = std::min(rest.size(), want);
      request_.body.append(rest.substr(0, take));
      used += take;
      if (request_.body.size() == body_expected_) state_ = ParseState::kComplete;
    }
  }
  return used;
}

void RequestParser::parse_head() {
  const auto lines = split_lines(head_);
  if (lines.empty() || lines[0].empty()) {
    fail(400, "empty request line");
    return;
  }

  // Request line: METHOD SP target SP HTTP/1.x
  const std::string_view line = lines[0];
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    fail(400, "malformed request line");
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!is_token(method)) {
    fail(400, "malformed method");
    return;
  }
  if (target.empty() || target[0] != '/') {
    fail(400, "request target must be origin-form");
    return;
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
  } else {
    fail(505, "unsupported HTTP version");
    return;
  }
  request_.method.assign(method);
  request_.target.assign(target);
  const std::size_t q = target.find('?');
  request_.path.assign(target.substr(0, q));
  request_.query.assign(q == std::string_view::npos ? std::string_view{} : target.substr(q + 1));

  const std::string err = parse_header_lines(lines, 1, limits_.max_headers, &request_.headers);
  if (!err.empty()) {
    fail(err == "too many headers" ? 431 : 400, err);
    return;
  }

  if (request_.header("Transfer-Encoding") != nullptr) {
    fail(501, "Transfer-Encoding is not supported; send Content-Length");
    return;
  }

  body_expected_ = 0;
  bool seen_content_length = false;
  for (const auto& [k, v] : request_.headers) {
    if (!iequals(k, "Content-Length")) continue;
    std::size_t n = 0;
    if (!parse_decimal(v, &n)) {
      fail(400, "malformed Content-Length");
      return;
    }
    if (seen_content_length && n != body_expected_) {
      fail(400, "conflicting Content-Length headers");
      return;
    }
    seen_content_length = true;
    body_expected_ = n;
  }
  if (body_expected_ > limits_.max_body_bytes) {
    fail(413, "body of " + std::to_string(body_expected_) + " bytes exceeds limit of " +
                  std::to_string(limits_.max_body_bytes));
    return;
  }

  // keep-alive: 1.1 defaults on, 1.0 defaults off; Connection overrides.
  request_.keep_alive = request_.version_minor >= 1;
  if (const std::string* conn = request_.header("Connection")) {
    if (iequals(*conn, "close")) request_.keep_alive = false;
    if (iequals(*conn, "keep-alive")) request_.keep_alive = true;
  }

  head_.clear();
  // Reserve conservatively: Content-Length is attacker-controlled, and
  // committing max_body_bytes per connection from the header alone would
  // let idle connections pin memory they never send.
  request_.body.reserve(std::min(body_expected_, std::size_t{64} << 10));
  state_ = body_expected_ == 0 ? ParseState::kComplete : ParseState::kBody;
}

// --- ResponseParser ---------------------------------------------------------

void ResponseParser::fail(std::string message) {
  state_ = ParseState::kError;
  error_message_ = std::move(message);
}

void ResponseParser::reset() {
  state_ = ParseState::kHead;
  head_.clear();
  body_expected_ = 0;
  status_code_ = 0;
  headers_.clear();
  body_.clear();
  keep_alive_ = true;
  error_message_.clear();
}

std::size_t ResponseParser::consume(std::string_view data) {
  std::size_t used = 0;
  while (used < data.size() && state_ != ParseState::kComplete && state_ != ParseState::kError) {
    const std::string_view rest = data.substr(used);
    if (state_ == ParseState::kHead) {
      bool overflow = false;
      const bool complete =
          accumulate_head(head_, rest, limits_.max_head_bytes, &used, &overflow);
      if (overflow) {
        fail("response head too large");
        continue;
      }
      if (!complete) continue;
      parse_head();
    } else {  // kBody
      const std::size_t want = body_expected_ - body_.size();
      const std::size_t take = std::min(rest.size(), want);
      body_.append(rest.substr(0, take));
      used += take;
      if (body_.size() == body_expected_) state_ = ParseState::kComplete;
    }
  }
  return used;
}

void ResponseParser::parse_head() {
  const auto lines = split_lines(head_);
  if (lines.empty()) {
    fail("empty status line");
    return;
  }
  const std::string_view line = lines[0];
  // Status line: HTTP/1.x SP 3DIGIT SP reason
  if (line.substr(0, 7) != "HTTP/1." || line.size() < 12 || line[8] != ' ') {
    fail("malformed status line");
    return;
  }
  std::size_t code = 0;
  if (!parse_decimal(line.substr(9, 3), &code) || code < 100 || code > 599) {
    fail("malformed status code");
    return;
  }
  status_code_ = static_cast<int>(code);

  const std::string err = parse_header_lines(lines, 1, limits_.max_headers, &headers_);
  if (!err.empty()) {
    fail(err);
    return;
  }

  body_expected_ = 0;
  if (const std::string* cl = find_header(headers_, "Content-Length")) {
    if (!parse_decimal(*cl, &body_expected_)) {
      fail("malformed Content-Length");
      return;
    }
    if (body_expected_ > limits_.max_body_bytes) {
      fail("response body exceeds limit");
      return;
    }
  }
  keep_alive_ = true;
  if (const std::string* conn = find_header(headers_, "Connection")) {
    if (iequals(*conn, "close")) keep_alive_ = false;
  }

  head_.clear();
  body_.reserve(std::min(body_expected_, std::size_t{64} << 10));
  state_ = body_expected_ == 0 ? ParseState::kComplete : ParseState::kBody;
}

}  // namespace mpqls::net
