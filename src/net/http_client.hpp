// Small deadline-bounded HTTP/1.1 client — what the submit_job CLI, the
// loopback integration tests, and the cluster coordinator's outbound
// worker pool all speak: keep-alive connection reuse, one in-flight
// request at a time, Content-Length bodies. Every phase is bounded —
// connect, send, and the whole response each get their own budget from
// `Deadlines` — so a dead or wedged peer costs a bounded wait instead of
// blocking forever. Failures throw `HttpError` with a machine-readable
// category (the coordinator's retry/circuit-breaker policy keys on it);
// HTTP error statuses are returned, not thrown.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/http.hpp"
#include "net/socket.hpp"

namespace mpqls::net {

/// Per-phase time budgets for one request. `read` covers the whole
/// response (first byte through last), not each read() call — a peer
/// trickling one byte per second cannot stretch it.
struct Deadlines {
  std::chrono::milliseconds connect{5000};
  std::chrono::milliseconds write{10000};
  std::chrono::milliseconds read{60000};
};

/// What failed, coarsely — the split a caller's retry policy needs.
/// kConnect: never reached the peer (always safe to try elsewhere).
/// kTimeout: a phase deadline expired (the request MAY be processing).
/// kClosed:  the connection died mid-exchange (send or response cut off).
/// kProtocol: the peer answered bytes that do not parse as HTTP.
enum class HttpErrorCategory { kConnect, kTimeout, kClosed, kProtocol };

const char* to_string(HttpErrorCategory category);

class HttpError : public std::runtime_error {
 public:
  HttpError(HttpErrorCategory category, const std::string& what)
      : std::runtime_error("HttpClient: " + what), category_(category) {}

  HttpErrorCategory category() const { return category_; }

 private:
  HttpErrorCategory category_;
};

class HttpClient {
 public:
  struct Response {
    int status = 0;
    HeaderList headers;
    std::string body;
  };

  HttpClient(std::string host, std::uint16_t port, Deadlines deadlines = {})
      : host_(std::move(host)), port_(port), deadlines_(deadlines) {}

  Response get(const std::string& target, const HeaderList& extra_headers = {}) {
    return request("GET", target, "", "application/json", extra_headers);
  }
  Response post(const std::string& target, std::string body,
                std::string content_type = "application/json",
                const HeaderList& extra_headers = {}) {
    return request("POST", target, std::move(body), std::move(content_type), extra_headers);
  }
  Response put(const std::string& target, std::string body,
               std::string content_type = "application/json",
               const HeaderList& extra_headers = {}) {
    return request("PUT", target, std::move(body), std::move(content_type), extra_headers);
  }
  Response del(const std::string& target) { return request("DELETE", target, ""); }

  /// Generic request entry point (the worker pool forwards arbitrary
  /// method/target pairs through this). `extra_headers` ride along
  /// verbatim — how callers negotiate binary responses (Accept).
  Response request(const std::string& method, const std::string& target, std::string body,
                   std::string content_type = "application/json",
                   const HeaderList& extra_headers = {});

  /// Drop the cached connection; the next request reconnects.
  void disconnect() { sock_.close(); }

  const Deadlines& deadlines() const { return deadlines_; }

 private:
  Response round_trip(const std::string& wire);

  std::string host_;
  std::uint16_t port_;
  Deadlines deadlines_;
  Socket sock_;
};

}  // namespace mpqls::net
