// Tiny blocking HTTP/1.1 client — just enough for the submit_job CLI and
// the loopback integration tests: keep-alive connection reuse, one
// in-flight request at a time, Content-Length bodies. Throws
// std::runtime_error on transport or parse failures; HTTP error statuses
// are returned, not thrown.
#pragma once

#include <cstdint>
#include <string>

#include "net/http.hpp"
#include "net/socket.hpp"

namespace mpqls::net {

class HttpClient {
 public:
  struct Response {
    int status = 0;
    HeaderList headers;
    std::string body;
  };

  HttpClient(std::string host, std::uint16_t port) : host_(std::move(host)), port_(port) {}

  Response get(const std::string& target) { return request("GET", target, ""); }
  Response post(const std::string& target, std::string body,
                std::string content_type = "application/json") {
    return request("POST", target, std::move(body), std::move(content_type));
  }

  /// Drop the cached connection; the next request reconnects.
  void disconnect() { sock_.close(); }

 private:
  Response request(const std::string& method, const std::string& target, std::string body,
                   std::string content_type = "application/json");
  Response round_trip(const std::string& wire);

  std::string host_;
  std::uint16_t port_;
  Socket sock_;
};

}  // namespace mpqls::net
