#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

namespace mpqls::net {

namespace {

[[noreturn]] void throw_errno(const char* call) {
  throw std::system_error(errno, std::generic_category(), call);
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    // EINTR on close is not retried: POSIX leaves the fd state unspecified
    // and Linux guarantees it is released either way.
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_tcp(const std::string& bind_address, std::uint16_t port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) throw_errno("socket");

  const int one = 1;
  if (::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    throw std::system_error(EINVAL, std::generic_category(),
                            "inet_pton: bad bind address '" + bind_address + "'");
  }
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind");
  }
  if (::listen(s.fd(), backlog) != 0) throw_errno("listen");
  return s;
}

std::uint16_t local_port(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Socket connect_tcp(const std::string& host, std::uint16_t port) {
  // One resolve-and-connect implementation: delegate to the deadline
  // overload with an effectively-unbounded budget, then restore blocking
  // mode (that overload leaves sockets non-blocking by contract).
  Socket s = connect_tcp(host, port, std::chrono::hours(24 * 365));
  const int flags = ::fcntl(s.fd(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(s.fd(), F_SETFL, flags & ~O_NONBLOCK) != 0) {
    throw_errno("fcntl(~O_NONBLOCK)");
  }
  return s;
}

bool wait_fd(int fd, short events, std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    // poll takes int milliseconds; clamp huge deadlines and wake at least
    // every ~49 days (re-looping is harmless).
    const int budget = static_cast<int>(
        std::min<std::chrono::milliseconds::rep>(left.count() + 1, 0x7FFFFFFF));
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, budget);
    if (rc > 0) return true;  // ready, or HUP/ERR — the I/O call reports it
    if (rc == 0) continue;    // re-check the deadline at the top
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds timeout) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &result);
  if (rc != 0) {
    throw std::system_error(EHOSTUNREACH, std::generic_category(),
                            std::string("getaddrinfo: ") + ::gai_strerror(rc));
  }

  Socket s;
  int last_errno = ECONNREFUSED;
  try {
    for (const addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
      Socket candidate(::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC | SOCK_NONBLOCK,
                                ai->ai_protocol));
      if (!candidate.valid()) {
        last_errno = errno;
        continue;
      }
      int crc;
      do {
        crc = ::connect(candidate.fd(), ai->ai_addr, ai->ai_addrlen);
      } while (crc != 0 && errno == EINTR);
      // EALREADY: a retried connect() after EINTR reports the handshake
      // is still in flight — same wait-for-writable path as EINPROGRESS.
      if (crc != 0 && (errno == EINPROGRESS || errno == EALREADY)) {
        const auto deadline = std::chrono::steady_clock::now() + timeout;
        if (!wait_fd(candidate.fd(), POLLOUT, deadline)) {
          last_errno = ETIMEDOUT;
          continue;
        }
        int err = 0;
        socklen_t len = sizeof err;
        if (::getsockopt(candidate.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) err = errno;
        if (err != 0) {
          last_errno = err;
          continue;
        }
        crc = 0;
      }
      if (crc == 0) {
        s = std::move(candidate);
        break;
      }
      last_errno = errno;
    }
  } catch (...) {
    // wait_fd can throw on poll() failure; the addrinfo chain must not
    // outlive this frame either way.
    ::freeaddrinfo(result);
    throw;
  }
  ::freeaddrinfo(result);
  if (!s.valid()) {
    throw std::system_error(last_errno, std::generic_category(),
                            "connect to " + host + ":" + std::to_string(port));
  }
  return s;  // still non-blocking: callers gate I/O through wait_fd
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) throw_errno("fcntl(O_NONBLOCK)");
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: latency tweak only, never fatal.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace mpqls::net
