// Circuit -> Program lowering. `lower_and_fuse` runs the precision-agnostic
// passes (gate -> matrix materialization, adjoint resolution, target
// sorting, single-qubit peephole fusion, <= k-qubit window fusion);
// `specialize<T>` rounds the fused matrices to the execution precision once
// and precomputes the kernel index tables. `compile<T>` is the one-call
// front door and stamps the compile time into the program stats.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <utility>

#include "common/timer.hpp"
#include "qsim/circuit.hpp"
#include "qsim/exec/program.hpp"

namespace mpqls::qsim::exec {

struct CompileOptions {
  /// Master switch for the fusion passes; off = one op per gate (the
  /// specialization and precomputed tables still apply).
  bool fuse = true;
  /// Fused dense windows cover at most this many qubits (targets and
  /// folded-in controls combined). 2^k scratch per thread, 4^k matrix.
  std::uint32_t max_fuse_qubits = 3;
};

/// Passes 1-2: lower gates to adjoint-resolved, target-sorted matrix ops
/// and fuse neighbours. Deterministic; no precision loss (all double).
FusedIr lower_and_fuse(const Circuit& circuit, const CompileOptions& options = {});

/// Pass 3: round payloads to the *storage* precision T (then hold them in
/// the compute precision — identity for float/double, binary16-round-then-
/// widen-to-float for the f16 tier) and precompute per-op tables.
template <typename T>
Program<T> specialize(const FusedIr& ir) {
  using C = exec_compute_t<T>;
  // Model the QPU storing this value at precision T.
  const auto qround = [](double v) { return static_cast<C>(static_cast<T>(v)); };
  Program<T> program;
  program.num_qubits = ir.num_qubits;
  program.stats = ir.stats;
  program.ops.reserve(ir.ops.size());
  for (const auto& op : ir.ops) {
    CompiledOp<T> c;
    c.kind = op.kind;
    c.pos_mask = op.pos_mask;
    c.neg_mask = op.neg_mask;
    c.set_mask = op.pos_mask;
    // Bits the kernel loop must skip: control bits always; target bits for
    // the pairwise/blockwise kinds (a diagonal visits targets in place).
    std::uint64_t skip = op.pos_mask | op.neg_mask;
    if (op.kind == OpKind::kApply1q || op.kind == OpKind::kDense) {
      for (auto q : op.targets) skip |= std::uint64_t{1} << q;
    }
    for (std::uint32_t q = 0; q < 64 && (skip >> q) != 0; ++q) {
      if (skip & (std::uint64_t{1} << q)) c.insert_bits.push_back(std::uint64_t{1} << q);
    }
    c.free_shift = static_cast<std::uint32_t>(c.insert_bits.size());
    switch (op.kind) {
      case OpKind::kApply1q:
        c.target_bit = std::uint64_t{1} << op.targets[0];
        c.m00 = std::complex<C>(qround(op.payload[0].real()), qround(op.payload[0].imag()));
        c.m01 = std::complex<C>(qround(op.payload[1].real()), qround(op.payload[1].imag()));
        c.m10 = std::complex<C>(qround(op.payload[2].real()), qround(op.payload[2].imag()));
        c.m11 = std::complex<C>(qround(op.payload[3].real()), qround(op.payload[3].imag()));
        break;
      case OpKind::kGlobalPhase:
        c.phase = std::complex<C>(qround(op.payload[0].real()), qround(op.payload[0].imag()));
        break;
      case OpKind::kDense:
      case OpKind::kDiagonal: {
        c.num_targets = static_cast<std::uint32_t>(op.targets.size());
        for (auto q : op.targets) {
          const std::uint64_t bit = std::uint64_t{1} << q;
          c.target_bits.push_back(bit);
          c.target_mask |= bit;
        }
        c.payload.reserve(op.payload.size());
        for (const auto& v : op.payload) {
          c.payload.emplace_back(qround(v.real()), qround(v.imag()));
        }
        if (op.kind == OpKind::kDense) {
          // Gather offsets: sub-state s lives at base | offsets[s].
          const std::size_t sub_dim = std::size_t{1} << c.num_targets;
          c.offsets.resize(sub_dim);
          for (std::size_t s = 0; s < sub_dim; ++s) {
            std::uint64_t off = 0;
            for (std::uint32_t t = 0; t < c.num_targets; ++t) {
              if (s & (std::size_t{1} << t)) off |= c.target_bits[t];
            }
            c.offsets[s] = off;
          }
          c.payload_re.reserve(c.payload.size());
          c.payload_im.reserve(c.payload.size());
          for (const auto& v : c.payload) {
            c.payload_re.push_back(v.real());
            c.payload_im.push_back(v.imag());
          }
        }
        break;
      }
    }
    program.ops.push_back(std::move(c));
  }
  return program;
}

/// Lower, fuse and specialize in one step.
template <typename T>
Program<T> compile(const Circuit& circuit, const CompileOptions& options = {}) {
  Timer timer;
  auto program = specialize<T>(lower_and_fuse(circuit, options));
  program.stats.compile_seconds = timer.seconds();
  return program;
}

/// All precision specializations of one `FusedIr`. The expensive passes
/// (lower + fuse) run exactly once, up front; each `Program<T>` is
/// specialized lazily on first request and cached for the lifetime of the
/// set, so the adaptive solver can hop between precision tiers without ever
/// recompiling. Thread-safe: `get<T>()` may race from many solve threads
/// (std::call_once per tier), which is what lets a shared-const
/// `QsvtSolverContext` hand out programs on demand.
class ProgramSet {
 public:
  explicit ProgramSet(FusedIr ir) : ir_(std::move(ir)) {}

  const FusedIr& ir() const { return ir_; }

  /// Lazily specialize (once) and return the tier-T program.
  template <typename T>
  const Program<T>& get() const {
    if constexpr (std::is_same_v<T, f16>) {
      return materialize(once_f16_, f16_);
    } else if constexpr (std::is_same_v<T, float>) {
      return materialize(once_f32_, f32_);
    } else {
      static_assert(std::is_same_v<T, double>, "unsupported program precision");
      return materialize(once_f64_, f64_);
    }
  }

  /// How many tiers have been specialized so far (test seam for the
  /// no-recompilation contract: repeated get<T>() must not move this).
  std::uint64_t specializations() const { return specializations_.load(std::memory_order_relaxed); }

 private:
  template <typename T>
  const Program<T>& materialize(std::once_flag& once, Program<T>& slot) const {
    std::call_once(once, [&] {
      Timer timer;
      slot = specialize<T>(ir_);
      slot.stats.compile_seconds = ir_.stats.compile_seconds + timer.seconds();
      specializations_.fetch_add(1, std::memory_order_relaxed);
    });
    return slot;
  }

  FusedIr ir_;
  mutable std::once_flag once_f16_, once_f32_, once_f64_;
  mutable Program<f16> f16_;
  mutable Program<float> f32_;
  mutable Program<double> f64_;
  mutable std::atomic<std::uint64_t> specializations_{0};
};

}  // namespace mpqls::qsim::exec
