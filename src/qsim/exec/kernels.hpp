// The op kernels shared by every CPU execution backend. These are the
// bodies that used to live as private statics of Executor<T> and
// PanelExecutor<T>, extracted verbatim so the "reference" backend and the
// cache-blocked backend replay *literally the same arithmetic* — the
// blocked executor reuses them on its gathered tile registers (with
// `allow_parallel = false`, because it already parallelizes over tiles and
// a nested OpenMP region per op per tile would swamp the tile work).
//
// Per-amplitude arithmetic order is identical in both modes; the
// allow_parallel flag only picks which loop drives the kernel, so results
// are reproducible across backends for a fixed thread count.
#pragma once

#include <algorithm>
#include <complex>
#include <cstdint>
#include <vector>

#include "qsim/exec/program.hpp"

namespace mpqls::qsim::exec::kernels {

/// Insert a zero at bit position `bit` (a single-bit mask) of a compacted
/// index: enumerates exactly the indices whose `bit` is 0.
inline std::uint64_t expand_at(std::uint64_t compact, std::uint64_t bit) {
  const std::uint64_t low = compact & (bit - 1);
  return ((compact ^ low) << 1) | low;
}

/// Map a compacted loop index to the amplitude index the op touches:
/// zeros inserted at every skipped bit (targets + controls, ascending),
/// then the positive-control bits set. Branch-free control handling.
template <typename T>
std::uint64_t expand_index(std::uint64_t compact, const CompiledOp<T>& op) {
  for (const auto bit : op.insert_bits) compact = expand_at(compact, bit);
  return compact | op.set_mask;
}

// Below-threshold registers skip the OpenMP region entirely: entering a
// (even one-thread) parallel region per op costs more than a whole
// small-register sweep, and the compiled hot path runs thousands of ops.
inline constexpr std::int64_t kParallelPairs = std::int64_t{1} << 13;
inline constexpr std::int64_t kParallelBlocks = std::int64_t{1} << 11;
inline constexpr std::int64_t kParallelAmps = std::int64_t{1} << 14;

// --- scalar (Statevector<T>) kernels ---------------------------------------

template <typename T>
void apply_1q(const CompiledOp<T>& op, std::complex<T>* amps, std::int64_t n,
              bool allow_parallel = true) {
  const std::uint64_t bit = op.target_bit;
  const std::int64_t pairs = n >> op.free_shift;
  // Below the lowest re-inserted bit, consecutive loop indices map to
  // consecutive amplitudes — process those runs with a vectorizable
  // split re/im inner loop. chunk is a power of two and always divides
  // `pairs` (there are at least log2(chunk) free bits below every
  // inserted bit).
  const std::int64_t chunk =
      std::min<std::int64_t>(static_cast<std::int64_t>(op.insert_bits[0]), pairs);
  const T m00r = op.m00.real(), m00i = op.m00.imag();
  const T m01r = op.m01.real(), m01i = op.m01.imag();
  const T m10r = op.m10.real(), m10i = op.m10.imag();
  const T m11r = op.m11.real(), m11i = op.m11.imag();
  auto chunk_kernel = [&](std::int64_t ii) {
    const std::uint64_t i = expand_index(static_cast<std::uint64_t>(ii), op);
    T* p0 = reinterpret_cast<T*>(amps + i);
    T* p1 = reinterpret_cast<T*>(amps + (i | bit));
#pragma omp simd
    for (std::int64_t l = 0; l < chunk; ++l) {
      const T re0 = p0[2 * l], im0 = p0[2 * l + 1];
      const T re1 = p1[2 * l], im1 = p1[2 * l + 1];
      p0[2 * l] = m00r * re0 - m00i * im0 + m01r * re1 - m01i * im1;
      p0[2 * l + 1] = m00r * im0 + m00i * re0 + m01r * im1 + m01i * re1;
      p1[2 * l] = m10r * re0 - m10i * im0 + m11r * re1 - m11i * im1;
      p1[2 * l + 1] = m10r * im0 + m10i * re0 + m11r * im1 + m11i * re1;
    }
  };
  if (allow_parallel && pairs >= kParallelPairs) {
#pragma omp parallel for
    for (std::int64_t ii = 0; ii < pairs; ii += chunk) chunk_kernel(ii);
  } else {
    for (std::int64_t ii = 0; ii < pairs; ii += chunk) chunk_kernel(ii);
  }
}

template <typename T>
void apply_dense(const CompiledOp<T>& op, std::complex<T>* amps, std::int64_t n,
                 std::vector<T>& run_scratch, bool allow_parallel = true) {
  using complex_type = std::complex<T>;
  const std::uint32_t k = op.num_targets;
  const std::size_t sub_dim = std::size_t{1} << k;
  const std::int64_t blocks = n >> op.free_shift;
  const std::uint64_t* offsets = op.offsets.data();
  const T* mre = op.payload_re.data();
  const T* mim = op.payload_im.data();
  // The sub-state and the matrix rows are processed in split
  // real/imaginary planes: the inner product below is then contiguous
  // scalar arrays, which the compiler vectorizes (the interleaved
  // complex layout would not).
  auto block_kernel = [&](std::int64_t bb, T* sre, T* sim) {
    // Expand the block index into the base index: target and control
    // bits re-inserted, positive controls set.
    const std::uint64_t base = expand_index(static_cast<std::uint64_t>(bb), op);
    for (std::size_t s = 0; s < sub_dim; ++s) {
      const complex_type a = amps[base | offsets[s]];
      sre[s] = a.real();
      sim[s] = a.imag();
    }
    for (std::size_t r = 0; r < sub_dim; ++r) {
      const T* rre = mre + r * sub_dim;
      const T* rim = mim + r * sub_dim;
      T acc_re{}, acc_im{};
#pragma omp simd reduction(+ : acc_re, acc_im)
      for (std::size_t s = 0; s < sub_dim; ++s) {
        acc_re += rre[s] * sre[s] - rim[s] * sim[s];
        acc_im += rre[s] * sim[s] + rim[s] * sre[s];
      }
      amps[base | offsets[r]] = complex_type(acc_re, acc_im);
    }
  };
  if (allow_parallel && blocks >= kParallelBlocks) {
#pragma omp parallel
    {
      std::vector<T> scratch(2 * sub_dim);
#pragma omp for
      for (std::int64_t bb = 0; bb < blocks; ++bb) {
        block_kernel(bb, scratch.data(), scratch.data() + sub_dim);
      }
    }
  } else {
    if (run_scratch.size() < 2 * sub_dim) run_scratch.resize(2 * sub_dim);
    for (std::int64_t bb = 0; bb < blocks; ++bb) {
      block_kernel(bb, run_scratch.data(), run_scratch.data() + sub_dim);
    }
  }
}

template <typename T>
void apply_diagonal(const CompiledOp<T>& op, std::complex<T>* amps, std::int64_t n,
                    bool allow_parallel = true) {
  const std::uint32_t k = op.num_targets;
  const std::int64_t count = n >> op.free_shift;  // firing amplitudes only
  const std::uint64_t* target_bits = op.target_bits.data();
  const std::complex<T>* d = op.payload.data();
  auto amp_kernel = [&](std::int64_t ii) {
    const std::uint64_t i = expand_index(static_cast<std::uint64_t>(ii), op);
    std::uint64_t sub = 0;
    for (std::uint32_t t = 0; t < k; ++t) {
      if (i & target_bits[t]) sub |= std::uint64_t{1} << t;
    }
    amps[i] *= d[sub];
  };
  if (allow_parallel && count >= kParallelAmps) {
#pragma omp parallel for
    for (std::int64_t i = 0; i < count; ++i) amp_kernel(i);
  } else {
    for (std::int64_t i = 0; i < count; ++i) amp_kernel(i);
  }
}

template <typename T>
void apply_phase(const CompiledOp<T>& op, std::complex<T>* amps, std::int64_t n,
                 bool allow_parallel = true) {
  const std::complex<T> phase = op.phase;
  if (allow_parallel && n >= kParallelAmps) {
#pragma omp parallel for
    for (std::int64_t i = 0; i < n; ++i) amps[i] *= phase;
  } else {
    for (std::int64_t i = 0; i < n; ++i) amps[i] *= phase;
  }
}

/// One op against a scalar register (the per-op body of Executor::run).
template <typename T>
void apply_op(const CompiledOp<T>& op, std::complex<T>* amps, std::int64_t n,
              std::vector<T>& dense_scratch, bool allow_parallel = true) {
  switch (op.kind) {
    case OpKind::kApply1q:
      apply_1q(op, amps, n, allow_parallel);
      break;
    case OpKind::kDense:
      apply_dense(op, amps, n, dense_scratch, allow_parallel);
      break;
    case OpKind::kDiagonal:
      apply_diagonal(op, amps, n, allow_parallel);
      break;
    case OpKind::kGlobalPhase:
      apply_phase(op, amps, n, allow_parallel);
      break;
  }
}

// --- panel (StatePanel<T>) kernels -----------------------------------------
//
// Amplitudes load/store through the storage precision T but all kernel
// arithmetic happens in the compute precision exec_compute_t<T> (float for
// the f16 tier, T itself for float/double). The lane count is a template
// parameter (kLanes == 0 means runtime width): QSVT programs are dominated
// by heavily-controlled ops with short inner loops, and a compile-time
// lane count unrolls them into straight-line SIMD.

// Same region-entry economics as the scalar kernels, divided by the lane
// count: every enumerated amplitude does `lanes` lanes of work, so a panel
// reaches the scalar thresholds at 1/B of the register size.
inline constexpr std::int64_t kParallelPairWork = std::int64_t{1} << 13;
inline constexpr std::int64_t kParallelBlockWork = std::int64_t{1} << 11;
inline constexpr std::int64_t kParallelAmpWork = std::int64_t{1} << 14;

template <int kLanes, typename T>
void panel_apply_1q(const CompiledOp<T>& op, T* re, T* im, std::int64_t n,
                    std::int64_t lanes_rt, bool allow_parallel = true) {
  using C = exec_compute_t<T>;
  const std::int64_t lanes = kLanes > 0 ? kLanes : lanes_rt;
  const std::uint64_t bit = op.target_bit;
  const std::int64_t pairs = n >> op.free_shift;
  // Same chunking as the scalar kernel: below the lowest re-inserted bit,
  // consecutive loop indices map to consecutive amplitudes — and in the
  // panel layout consecutive amplitudes are contiguous blocks of `lanes`
  // elements, so a chunk of C pairs is one flat unit-stride run of
  // C*lanes scalars per plane. One index expansion covers the whole run;
  // the batch dimension rides inside the same SIMD loop.
  const std::int64_t chunk =
      std::min<std::int64_t>(static_cast<std::int64_t>(op.insert_bits[0]), pairs);
  const std::int64_t flat = chunk * lanes;
  const C m00r = op.m00.real(), m00i = op.m00.imag();
  const C m01r = op.m01.real(), m01i = op.m01.imag();
  const C m10r = op.m10.real(), m10i = op.m10.imag();
  const C m11r = op.m11.real(), m11i = op.m11.imag();
  auto chunk_kernel = [&](std::int64_t ii) {
    const std::uint64_t i0 = expand_index(static_cast<std::uint64_t>(ii), op);
    const std::uint64_t i1 = i0 | bit;
    T* r0 = re + static_cast<std::int64_t>(i0) * lanes;
    T* q0 = im + static_cast<std::int64_t>(i0) * lanes;
    T* r1 = re + static_cast<std::int64_t>(i1) * lanes;
    T* q1 = im + static_cast<std::int64_t>(i1) * lanes;
#pragma omp simd
    for (std::int64_t j = 0; j < flat; ++j) {
      const C re0 = static_cast<C>(r0[j]), im0 = static_cast<C>(q0[j]);
      const C re1 = static_cast<C>(r1[j]), im1 = static_cast<C>(q1[j]);
      r0[j] = static_cast<T>(m00r * re0 - m00i * im0 + m01r * re1 - m01i * im1);
      q0[j] = static_cast<T>(m00r * im0 + m00i * re0 + m01r * im1 + m01i * re1);
      r1[j] = static_cast<T>(m10r * re0 - m10i * im0 + m11r * re1 - m11i * im1);
      q1[j] = static_cast<T>(m10r * im0 + m10i * re0 + m11r * im1 + m11i * re1);
    }
  };
  if (allow_parallel && pairs * lanes >= kParallelPairWork) {
#pragma omp parallel for
    for (std::int64_t ii = 0; ii < pairs; ii += chunk) chunk_kernel(ii);
  } else {
    for (std::int64_t ii = 0; ii < pairs; ii += chunk) chunk_kernel(ii);
  }
}

/// Dense block kernel for compile-time lane count AND sub-dimension:
/// the r/s loops fully unroll and the row accumulators are fixed-size
/// locals (registers, not scratch memory — a heap accumulator would
/// alias the gathered sub-panel and force a reload/spill per multiply).
template <int kLanes, int kSub, typename T>
void panel_dense_block(const CompiledOp<T>& op, T* __restrict__ re, T* __restrict__ im,
                       std::int64_t bb, exec_compute_t<T>* __restrict__ sre,
                       exec_compute_t<T>* __restrict__ sim) {
  using C = exec_compute_t<T>;
  const std::uint64_t* offsets = op.offsets.data();
  const C* __restrict__ mre = op.payload_re.data();
  const C* __restrict__ mim = op.payload_im.data();
  const std::uint64_t base = expand_index(static_cast<std::uint64_t>(bb), op);
  for (int s = 0; s < kSub; ++s) {
    const T* __restrict__ src_re = re + static_cast<std::int64_t>(base | offsets[s]) * kLanes;
    const T* __restrict__ src_im = im + static_cast<std::int64_t>(base | offsets[s]) * kLanes;
#pragma omp simd
    for (std::int64_t l = 0; l < kLanes; ++l) {
      sre[s * kLanes + l] = static_cast<C>(src_re[l]);
      sim[s * kLanes + l] = static_cast<C>(src_im[l]);
    }
  }
  for (int r = 0; r < kSub; ++r) {
    const C* __restrict__ rre = mre + r * kSub;
    const C* __restrict__ rim = mim + r * kSub;
    C acc_re[kLanes] = {};
    C acc_im[kLanes] = {};
    for (int s = 0; s < kSub; ++s) {
      const C mr = rre[s], mi = rim[s];
      const C* __restrict__ xr = sre + s * kLanes;
      const C* __restrict__ xi = sim + s * kLanes;
#pragma omp simd
      for (std::int64_t l = 0; l < kLanes; ++l) {
        acc_re[l] += mr * xr[l] - mi * xi[l];
        acc_im[l] += mr * xi[l] + mi * xr[l];
      }
    }
    T* __restrict__ dst_re = re + static_cast<std::int64_t>(base | offsets[r]) * kLanes;
    T* __restrict__ dst_im = im + static_cast<std::int64_t>(base | offsets[r]) * kLanes;
#pragma omp simd
    for (std::int64_t l = 0; l < kLanes; ++l) {
      dst_re[l] = static_cast<T>(acc_re[l]);
      dst_im[l] = static_cast<T>(acc_im[l]);
    }
  }
}

/// Generic-width dense block (runtime lane count; accumulators live at
/// the end of the scratch buffer).
template <typename T>
void panel_dense_block_generic(const CompiledOp<T>& op, T* re, T* im, std::size_t sub_dim,
                               std::int64_t lanes, std::int64_t bb, exec_compute_t<T>* scratch) {
  using C = exec_compute_t<T>;
  const std::uint64_t* offsets = op.offsets.data();
  const C* mre = op.payload_re.data();
  const C* mim = op.payload_im.data();
  C* sre = scratch;
  C* sim = scratch + sub_dim * static_cast<std::size_t>(lanes);
  C* acc_re = scratch + 2 * sub_dim * static_cast<std::size_t>(lanes);
  C* acc_im = acc_re + lanes;
  const std::uint64_t base = expand_index(static_cast<std::uint64_t>(bb), op);
  for (std::size_t s = 0; s < sub_dim; ++s) {
    const std::int64_t src = static_cast<std::int64_t>(base | offsets[s]) * lanes;
    C* row_re = sre + s * static_cast<std::size_t>(lanes);
    C* row_im = sim + s * static_cast<std::size_t>(lanes);
#pragma omp simd
    for (std::int64_t l = 0; l < lanes; ++l) {
      row_re[l] = static_cast<C>(re[src + l]);
      row_im[l] = static_cast<C>(im[src + l]);
    }
  }
  for (std::size_t r = 0; r < sub_dim; ++r) {
    const C* rre = mre + r * sub_dim;
    const C* rim = mim + r * sub_dim;
    for (std::int64_t l = 0; l < lanes; ++l) {
      acc_re[l] = C{};
      acc_im[l] = C{};
    }
    for (std::size_t s = 0; s < sub_dim; ++s) {
      const C mr = rre[s], mi = rim[s];
      const C* xr = sre + s * static_cast<std::size_t>(lanes);
      const C* xi = sim + s * static_cast<std::size_t>(lanes);
#pragma omp simd
      for (std::int64_t l = 0; l < lanes; ++l) {
        acc_re[l] += mr * xr[l] - mi * xi[l];
        acc_im[l] += mr * xi[l] + mi * xr[l];
      }
    }
    const std::int64_t dst = static_cast<std::int64_t>(base | offsets[r]) * lanes;
#pragma omp simd
    for (std::int64_t l = 0; l < lanes; ++l) {
      re[dst + l] = static_cast<T>(acc_re[l]);
      im[dst + l] = static_cast<T>(acc_im[l]);
    }
  }
}

/// Scratch length (in exec_compute_t<T> elements) one dense panel op of
/// sub-dimension `sub_dim` needs at `lanes` lanes: the gathered sub-panel
/// in split planes plus one accumulator row for the generic path.
inline std::size_t panel_dense_scratch_len(std::size_t sub_dim, std::int64_t lanes) {
  return (2 * sub_dim + 2) * static_cast<std::size_t>(lanes);
}

template <int kLanes, typename T>
void panel_apply_dense(const CompiledOp<T>& op, T* re, T* im, std::int64_t n,
                       std::int64_t lanes_rt, std::vector<exec_compute_t<T>>& run_scratch,
                       bool allow_parallel = true) {
  using C = exec_compute_t<T>;
  const std::int64_t lanes = kLanes > 0 ? kLanes : lanes_rt;
  const std::size_t sub_dim = std::size_t{1} << op.num_targets;
  const std::int64_t blocks = n >> op.free_shift;
  // Gathered sub-panel in split planes ([sub_dim][lanes] re then im);
  // the generic path also keeps one accumulator row here.
  const std::size_t scratch_len = panel_dense_scratch_len(sub_dim, lanes);
  auto block_kernel = [&](std::int64_t bb, C* scratch) {
    if constexpr (kLanes > 0) {
      C* sim = scratch + sub_dim * static_cast<std::size_t>(kLanes);
      // Fused windows are <= 3 qubits by default; wider payloads (a
      // raised max_fuse_qubits) take the generic loop.
      switch (op.num_targets) {
        case 1: panel_dense_block<kLanes, 2>(op, re, im, bb, scratch, sim); return;
        case 2: panel_dense_block<kLanes, 4>(op, re, im, bb, scratch, sim); return;
        case 3: panel_dense_block<kLanes, 8>(op, re, im, bb, scratch, sim); return;
        default: panel_dense_block_generic(op, re, im, sub_dim, lanes, bb, scratch); return;
      }
    } else {
      panel_dense_block_generic(op, re, im, sub_dim, lanes, bb, scratch);
    }
  };
  if (allow_parallel && blocks * lanes >= kParallelBlockWork) {
#pragma omp parallel
    {
      std::vector<C> scratch(scratch_len);
#pragma omp for
      for (std::int64_t bb = 0; bb < blocks; ++bb) block_kernel(bb, scratch.data());
    }
  } else {
    if (run_scratch.size() < scratch_len) run_scratch.resize(scratch_len);
    for (std::int64_t bb = 0; bb < blocks; ++bb) block_kernel(bb, run_scratch.data());
  }
}

template <int kLanes, typename T>
void panel_apply_diagonal(const CompiledOp<T>& op, T* re, T* im, std::int64_t n,
                          std::int64_t lanes_rt, bool allow_parallel = true) {
  using C = exec_compute_t<T>;
  const std::int64_t lanes = kLanes > 0 ? kLanes : lanes_rt;
  const std::uint32_t k = op.num_targets;
  const std::int64_t count = n >> op.free_shift;  // firing amplitudes only
  const std::uint64_t* target_bits = op.target_bits.data();
  const std::complex<C>* d = op.payload.data();
  auto amp_kernel = [&](std::int64_t ii) {
    const std::uint64_t i = expand_index(static_cast<std::uint64_t>(ii), op);
    std::uint64_t sub = 0;
    for (std::uint32_t t = 0; t < k; ++t) {
      if (i & target_bits[t]) sub |= std::uint64_t{1} << t;
    }
    const C dr = d[sub].real(), di = d[sub].imag();
    T* r = re + static_cast<std::int64_t>(i) * lanes;
    T* q = im + static_cast<std::int64_t>(i) * lanes;
#pragma omp simd
    for (std::int64_t l = 0; l < lanes; ++l) {
      const C ar = static_cast<C>(r[l]), ai = static_cast<C>(q[l]);
      r[l] = static_cast<T>(dr * ar - di * ai);
      q[l] = static_cast<T>(dr * ai + di * ar);
    }
  };
  if (allow_parallel && count * lanes >= kParallelAmpWork) {
#pragma omp parallel for
    for (std::int64_t i = 0; i < count; ++i) amp_kernel(i);
  } else {
    for (std::int64_t i = 0; i < count; ++i) amp_kernel(i);
  }
}

template <typename T>
void panel_apply_phase(const CompiledOp<T>& op, T* re, T* im, std::int64_t n,
                       std::int64_t lanes, bool allow_parallel = true) {
  using C = exec_compute_t<T>;
  const C pr = op.phase.real(), pi = op.phase.imag();
  const std::int64_t total = n * lanes;  // lanes are contiguous: one flat sweep
  if (allow_parallel && total >= kParallelAmpWork) {
#pragma omp parallel for
    for (std::int64_t i = 0; i < total; ++i) {
      const C ar = static_cast<C>(re[i]), ai = static_cast<C>(im[i]);
      re[i] = static_cast<T>(pr * ar - pi * ai);
      im[i] = static_cast<T>(pr * ai + pi * ar);
    }
  } else {
#pragma omp simd
    for (std::int64_t i = 0; i < total; ++i) {
      const C ar = static_cast<C>(re[i]), ai = static_cast<C>(im[i]);
      re[i] = static_cast<T>(pr * ar - pi * ai);
      im[i] = static_cast<T>(pr * ai + pi * ar);
    }
  }
}

/// One op against a panel (the per-op body of PanelExecutor::run_impl).
template <int kLanes, typename T>
void panel_apply_op(const CompiledOp<T>& op, T* re, T* im, std::int64_t n, std::int64_t lanes,
                    std::vector<exec_compute_t<T>>& dense_scratch, bool allow_parallel = true) {
  switch (op.kind) {
    case OpKind::kApply1q:
      panel_apply_1q<kLanes>(op, re, im, n, lanes, allow_parallel);
      break;
    case OpKind::kDense:
      panel_apply_dense<kLanes>(op, re, im, n, lanes, dense_scratch, allow_parallel);
      break;
    case OpKind::kDiagonal:
      panel_apply_diagonal<kLanes>(op, re, im, n, lanes, allow_parallel);
      break;
    case OpKind::kGlobalPhase:
      panel_apply_phase(op, re, im, n, lanes, allow_parallel);
      break;
  }
}

}  // namespace mpqls::qsim::exec::kernels
