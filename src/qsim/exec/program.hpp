// Executable circuit IR. A `Circuit` is an interpretable gate list; a
// `Program<T>` is what the execution engine actually runs: a flat sequence
// of precision-specialized ops whose matrices were materialized once (in
// the QPU precision T), whose control masks and gather offsets were
// precomputed, and whose neighbouring gates were fused by the compiler.
// Programs are immutable after compilation, so one compiled program can be
// replayed concurrently against many statevectors — the per-RHS hot path
// of the batched solver service.
//
// Two layers:
//  * `FusedIr` — the precision-agnostic output of the fusion pass
//    (double-precision matrices, sorted targets, controls as masks).
//  * `Program<T>` — the `FusedIr` specialized to a statevector precision,
//    with per-op kernels selected and index tables precomputed.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "linalg/half.hpp"

namespace mpqls::qsim::exec {

// Half-precision statevector storage. gcc/clang expose the native binary16
// type `_Float16` on x86-64 (F16C converts under -march=x86-64-v3); the
// software `linalg::half` is the fallback so the f16 tier always exists.
#if defined(__FLT16_MAX__)
using f16 = _Float16;
#else
using f16 = linalg::half;
#endif

/// Storage precision vs compute precision. The half tier stores amplitudes
/// in binary16 but computes in float: matrices and kernel arithmetic stay
/// fp32, only the statevector (the memory-bound side) narrows. For float
/// and double, storage == compute and nothing changes.
template <typename T>
struct ExecTraits {
  using compute = T;
};
template <>
struct ExecTraits<f16> {
  using compute = float;
};
template <typename T>
using exec_compute_t = typename ExecTraits<T>::compute;

enum class OpKind : std::uint8_t {
  kApply1q,      ///< 2x2 matrix on one target qubit
  kDense,        ///< dense 2^k x 2^k matrix on k sorted targets
  kDiagonal,     ///< diagonal payload (2^k entries) on k sorted targets
  kGlobalPhase,  ///< scalar multiplication of the whole register
};

/// One op of the precision-agnostic fused IR. Matrices are adjoint-resolved
/// and target-sorted; controls that did not fold into a fused matrix remain
/// as bit masks. `source_gates` counts the circuit gates this op absorbs.
struct FusedOp {
  OpKind kind = OpKind::kApply1q;
  std::uint64_t pos_mask = 0;  ///< fire when all these bits are 1
  std::uint64_t neg_mask = 0;  ///< fire when all these bits are 0
  std::vector<std::uint32_t> targets;  ///< sorted ascending
  /// kApply1q: 4 row-major entries; kDense: 2^k * 2^k row-major;
  /// kDiagonal: 2^k entries; kGlobalPhase: 1 entry (the scalar).
  std::vector<std::complex<double>> payload;
  std::uint64_t source_gates = 1;
};

struct ProgramStats {
  std::uint64_t source_gates = 0;  ///< gates in the compiled circuit
  std::uint64_t ops = 0;           ///< ops after fusion
  std::uint64_t fused_gates = 0;   ///< gates absorbed into another op (source - ops)
  std::uint64_t depth = 0;         ///< greedy qubit-availability depth of the ops
  std::uint64_t max_fused_span = 0;  ///< widest fused dense op (qubits)
  double compile_seconds = 0.0;
};

struct FusedIr {
  std::uint32_t num_qubits = 0;
  std::vector<FusedOp> ops;
  ProgramStats stats;
};

/// One executable op in precision T. The payload layout mirrors FusedOp;
/// everything the kernel needs per amplitude-block is precomputed here.
/// Controls are compiled away entirely: `insert_bits`/`set_mask` let the
/// kernels enumerate exactly the amplitudes an op touches (positive
/// controls set, negative controls and target bits zero), so a gate with c
/// controls costs 2^-c of an uncontrolled sweep instead of a full sweep
/// with a mask branch per index.
template <typename T>
struct CompiledOp {
  /// Payloads live in the *compute* precision. For the f16 tier the matrix
  /// entries are rounded through binary16 at specialization time (modelling
  /// the QPU's storage precision) but held widened to float so the kernels
  /// never do fp16 arithmetic.
  using C = exec_compute_t<T>;

  OpKind kind = OpKind::kApply1q;
  std::uint64_t pos_mask = 0;
  std::uint64_t neg_mask = 0;

  /// Sorted single-bit masks to re-insert as zeros when expanding a
  /// compacted loop index (target bits + control bits; control bits only
  /// for kDiagonal), then OR `set_mask` (the positive controls).
  std::vector<std::uint64_t> insert_bits;
  std::uint64_t set_mask = 0;
  std::uint32_t free_shift = 0;  ///< loop count = dim >> free_shift

  // kApply1q
  std::uint64_t target_bit = 0;
  std::complex<C> m00, m01, m10, m11;

  // kDense / kDiagonal
  std::uint32_t num_targets = 0;
  std::uint64_t target_mask = 0;
  std::vector<std::uint64_t> target_bits;  ///< sorted single-bit masks
  std::vector<std::complex<C>> payload;    ///< dense matrix or diagonal
  /// kDense: the matrix split into real/imaginary planes (row-major, same
  /// indexing as payload) so the matmul inner loop vectorizes — the
  /// interleaved complex layout defeats SIMD.
  std::vector<C> payload_re, payload_im;
  std::vector<std::uint64_t> offsets;      ///< dense: 2^k gather offsets

  // kGlobalPhase
  std::complex<C> phase;
};

template <typename T>
struct Program {
  std::uint32_t num_qubits = 0;
  std::vector<CompiledOp<T>> ops;
  ProgramStats stats;

  bool empty() const { return ops.empty(); }
};

}  // namespace mpqls::qsim::exec
