// A batch of statevectors executed as one unit. `StatePanel<T>` holds B
// register copies ("lanes") in split real/imaginary structure-of-arrays
// layout with the lane index innermost: element (amplitude i, lane l)
// lives at re[i * B + l] / im[i * B + l]. Replaying one compiled program
// over the panel turns every gate application into a small matrix-panel
// product whose innermost loop is unit-stride over the lanes — the batch
// dimension vectorizes even when the amplitude enumeration of an op is
// strided or sparse (controlled gates, high-qubit targets), which is what
// makes multi-RHS replay cheaper than B sequential sweeps.
//
// Lanes are independent states: nothing in the layout couples them, and
// every reduction (norm, postselection probability) is computed per lane
// with its own accumulator in amplitude-index order, so each lane's
// result matches what a standalone Statevector<T> of the same amplitudes
// would produce (up to the usual vectorization-dependent rounding).
#pragma once

#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace mpqls::qsim::exec {

template <typename T>
class StatePanel {
 public:
  /// B lanes of a 2^num_qubits register, every lane initialized to |0…0>.
  StatePanel(std::uint32_t num_qubits, std::size_t lanes)
      : num_qubits_(num_qubits),
        dim_(checked_dim(num_qubits)),  // validates before the planes allocate
        lanes_(lanes),
        re_(dim_ * lanes, T{}),
        im_(dim_ * lanes, T{}) {
    expects(lanes >= 1, "panel: at least one lane");
    for (std::size_t l = 0; l < lanes_; ++l) re_[l] = T{1};
  }

  std::uint32_t num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return dim_; }
  std::size_t lanes() const { return lanes_; }

  /// Raw plane storage — the contract the panel kernels run against.
  T* re() { return re_.data(); }
  T* im() { return im_.data(); }
  const T* re() const { return re_.data(); }
  const T* im() const { return im_.data(); }

  std::complex<double> amp(std::size_t index, std::size_t lane) const {
    return {static_cast<double>(re_[index * lanes_ + lane]),
            static_cast<double>(im_[index * lanes_ + lane])};
  }
  void set_amp(std::size_t index, std::size_t lane, std::complex<double> value) {
    re_[index * lanes_ + lane] = static_cast<T>(value.real());
    im_[index * lanes_ + lane] = static_cast<T>(value.imag());
  }

  /// Overwrite a lane with the embedding of a real vector: amplitude i is
  /// values[i] for i < values.size() and 0 above (the direct form of the
  /// KP-tree preparation circuit applied to |0…0>). The values are the
  /// caller's to normalize.
  void load_lane_real(std::size_t lane, const std::vector<double>& values) {
    expects(lane < lanes_, "panel: lane out of range");
    expects(values.size() <= dim_, "panel: vector wider than register");
    for (std::size_t i = 0; i < dim_; ++i) {
      re_[i * lanes_ + lane] = i < values.size() ? static_cast<T>(values[i]) : T{};
      im_[i * lanes_ + lane] = T{};
    }
  }

  /// Per-lane Euclidean norm. One coalesced pass over the panel; each
  /// lane accumulates in double in amplitude-index order (the same order
  /// Statevector<T>::norm uses below its parallel threshold).
  std::vector<double> lane_norms() const {
    std::vector<double> acc(lanes_, 0.0);
    for (std::size_t i = 0; i < dim_; ++i) {
      const T* r = re_.data() + i * lanes_;
      const T* q = im_.data() + i * lanes_;
#pragma omp simd
      for (std::size_t l = 0; l < lanes_; ++l) {
        acc[l] += static_cast<double>(r[l]) * static_cast<double>(r[l]) +
                  static_cast<double>(q[l]) * static_cast<double>(q[l]);
      }
    }
    for (auto& a : acc) a = std::sqrt(a);
    return acc;
  }

  /// Per-lane probability that every qubit in `zeros` measures 0 and
  /// every qubit in `ones` measures 1.
  std::vector<double> probability_match(const std::vector<std::uint32_t>& zeros,
                                        const std::vector<std::uint32_t>& ones) const {
    const auto [zero_mask, one_mask] = masks(zeros, ones);
    std::vector<double> p(lanes_, 0.0);
    for (std::size_t i = 0; i < dim_; ++i) {
      if ((i & zero_mask) != 0 || (i & one_mask) != one_mask) continue;
      const T* r = re_.data() + i * lanes_;
      const T* q = im_.data() + i * lanes_;
#pragma omp simd
      for (std::size_t l = 0; l < lanes_; ++l) {
        p[l] += static_cast<double>(r[l]) * static_cast<double>(r[l]) +
                static_cast<double>(q[l]) * static_cast<double>(q[l]);
      }
    }
    return p;
  }

  /// Shorthand for the all-zeros postselection probability.
  std::vector<double> probability_all_zero(const std::vector<std::uint32_t>& qubits) const {
    return probability_match(qubits, {});
  }

  /// Project every lane onto the subspace where `zeros` measure 0 and
  /// `ones` measure 1, renormalizing each lane. Returns the per-lane
  /// pre-projection probabilities. Every lane must keep nonzero mass —
  /// the clean-path contract postselect_zero also enforces.
  std::vector<double> postselect(const std::vector<std::uint32_t>& zeros,
                                 const std::vector<std::uint32_t>& ones) {
    const auto p = probability_match(zeros, ones);
    std::vector<T> inv(lanes_);
    for (std::size_t l = 0; l < lanes_; ++l) {
      expects(p[l] > 0.0, "panel postselect: zero-probability branch");
      inv[l] = static_cast<T>(1.0 / std::sqrt(p[l]));
    }
    const auto [zero_mask, one_mask] = masks(zeros, ones);
    const std::int64_t n = static_cast<std::int64_t>(dim_);
    const std::int64_t work = n * static_cast<std::int64_t>(lanes_);
#pragma omp parallel for if (work >= (std::int64_t{1} << 15))
    for (std::int64_t ii = 0; ii < n; ++ii) {
      const std::uint64_t i = static_cast<std::uint64_t>(ii);
      T* r = re_.data() + i * lanes_;
      T* q = im_.data() + i * lanes_;
      if ((i & zero_mask) == 0 && (i & one_mask) == one_mask) {
#pragma omp simd
        for (std::size_t l = 0; l < lanes_; ++l) {
          r[l] *= inv[l];
          q[l] *= inv[l];
        }
      } else {
        for (std::size_t l = 0; l < lanes_; ++l) {
          r[l] = T{};
          q[l] = T{};
        }
      }
    }
    return p;
  }

 private:
  static std::size_t checked_dim(std::uint32_t num_qubits) {
    expects(num_qubits <= 30, "panel: too many qubits");
    return std::size_t{1} << num_qubits;
  }

  static std::pair<std::uint64_t, std::uint64_t> masks(const std::vector<std::uint32_t>& zeros,
                                                       const std::vector<std::uint32_t>& ones) {
    std::uint64_t zero_mask = 0, one_mask = 0;
    for (auto qb : zeros) zero_mask |= std::uint64_t{1} << qb;
    for (auto qb : ones) one_mask |= std::uint64_t{1} << qb;
    return {zero_mask, one_mask};
  }

  std::uint32_t num_qubits_;
  std::size_t dim_;
  std::size_t lanes_;
  std::vector<T> re_, im_;
};

}  // namespace mpqls::qsim::exec
