// Replays a compiled Program<T> against a StatePanel<T>: one sweep of the
// gate stream updates every lane. The kernels mirror Executor<T>'s — same
// compacted-index enumeration, same per-amplitude arithmetic — but the
// innermost loop runs over the panel's lane dimension, which is unit
// stride by construction. That turns the memory-bound per-RHS replay into
// small matrix–panel products: each gate's matrix entries and index
// expansions are paid once per amplitude block and applied to B lanes, so
// B right-hand sides cost one traversal of the program instead of B.
//
// The lane count is a template parameter of the kernel bodies: QSVT
// programs are dominated by heavily-controlled ops that enumerate only a
// handful of amplitudes, so the inner loops are short — a runtime trip
// count leaves them as scalar loop skeletons, while a compile-time lane
// count of 2/4/8/16 unrolls them into straight-line SIMD. `run` dispatches
// on the panel's width (other widths take the generic runtime path).
//
// OpenMP parallelism splits over amplitude blocks (never over lanes — the
// lane loop is the SIMD dimension); thresholds scale with the lane count
// so a panel enters a parallel region at 1/B of the scalar executor's
// register size. Like Executor, the replayer is stateless and reentrant.
//
// The op bodies live in qsim/exec/kernels.hpp, shared with the pluggable
// execution backends (qsim/exec/backend/): this class IS the "reference"
// backend's panel path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "qsim/exec/kernels.hpp"
#include "qsim/exec/panel.hpp"
#include "qsim/exec/program.hpp"

namespace mpqls::qsim::exec {

template <typename T>
class PanelExecutor {
  /// Amplitudes load/store through the storage precision T but all kernel
  /// arithmetic happens in the compute precision C (float for the f16
  /// tier, T itself for float/double — where every cast below is a no-op
  /// and the generated code is unchanged).
  using C = exec_compute_t<T>;

 public:
  /// Apply every op of `program` to all lanes of `panel` in order. The
  /// program may be narrower than the register (mirrors Executor::run).
  void run(const Program<T>& program, StatePanel<T>& panel) const {
    expects((std::size_t{1} << program.num_qubits) <= panel.dim(),
            "panel exec: program wider than register");
    switch (panel.lanes()) {
      case 1: run_impl<1>(program, panel); break;
      case 2: run_impl<2>(program, panel); break;
      case 4: run_impl<4>(program, panel); break;
      case 8: run_impl<8>(program, panel); break;
      case 16: run_impl<16>(program, panel); break;
      default: run_impl<0>(program, panel); break;  // generic runtime width
    }
  }

 private:
  template <int kLanes>
  void run_impl(const Program<T>& program, StatePanel<T>& panel) const {
    T* re = panel.re();
    T* im = panel.im();
    const std::int64_t n = static_cast<std::int64_t>(panel.dim());
    const std::int64_t lanes = static_cast<std::int64_t>(panel.lanes());
    std::vector<C> scratch;  // shared by the serial dense ops
    for (const auto& op : program.ops) {
      kernels::panel_apply_op<kLanes>(op, re, im, n, lanes, scratch);
    }
  }
};

}  // namespace mpqls::qsim::exec
