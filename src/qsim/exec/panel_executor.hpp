// Replays a compiled Program<T> against a StatePanel<T>: one sweep of the
// gate stream updates every lane. The kernels mirror Executor<T>'s — same
// compacted-index enumeration, same per-amplitude arithmetic — but the
// innermost loop runs over the panel's lane dimension, which is unit
// stride by construction. That turns the memory-bound per-RHS replay into
// small matrix–panel products: each gate's matrix entries and index
// expansions are paid once per amplitude block and applied to B lanes, so
// B right-hand sides cost one traversal of the program instead of B.
//
// The lane count is a template parameter of the kernel bodies: QSVT
// programs are dominated by heavily-controlled ops that enumerate only a
// handful of amplitudes, so the inner loops are short — a runtime trip
// count leaves them as scalar loop skeletons, while a compile-time lane
// count of 2/4/8/16 unrolls them into straight-line SIMD. `run` dispatches
// on the panel's width (other widths take the generic runtime path).
//
// OpenMP parallelism splits over amplitude blocks (never over lanes — the
// lane loop is the SIMD dimension); thresholds scale with the lane count
// so a panel enters a parallel region at 1/B of the scalar executor's
// register size. Like Executor, the replayer is stateless and reentrant.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "qsim/exec/panel.hpp"
#include "qsim/exec/program.hpp"

namespace mpqls::qsim::exec {

template <typename T>
class PanelExecutor {
  /// Amplitudes load/store through the storage precision T but all kernel
  /// arithmetic happens in the compute precision C (float for the f16
  /// tier, T itself for float/double — where every cast below is a no-op
  /// and the generated code is unchanged).
  using C = exec_compute_t<T>;

 public:
  /// Apply every op of `program` to all lanes of `panel` in order. The
  /// program may be narrower than the register (mirrors Executor::run).
  void run(const Program<T>& program, StatePanel<T>& panel) const {
    expects((std::size_t{1} << program.num_qubits) <= panel.dim(),
            "panel exec: program wider than register");
    switch (panel.lanes()) {
      case 1: run_impl<1>(program, panel); break;
      case 2: run_impl<2>(program, panel); break;
      case 4: run_impl<4>(program, panel); break;
      case 8: run_impl<8>(program, panel); break;
      case 16: run_impl<16>(program, panel); break;
      default: run_impl<0>(program, panel); break;  // generic runtime width
    }
  }

 private:
  template <int kLanes>
  void run_impl(const Program<T>& program, StatePanel<T>& panel) const {
    T* re = panel.re();
    T* im = panel.im();
    const std::int64_t n = static_cast<std::int64_t>(panel.dim());
    const std::int64_t lanes = static_cast<std::int64_t>(panel.lanes());
    std::vector<C> scratch;  // shared by the serial dense ops
    for (const auto& op : program.ops) {
      switch (op.kind) {
        case OpKind::kApply1q:
          apply_1q<kLanes>(op, re, im, n, lanes);
          break;
        case OpKind::kDense:
          apply_dense<kLanes>(op, re, im, n, lanes, scratch);
          break;
        case OpKind::kDiagonal:
          apply_diagonal<kLanes>(op, re, im, n, lanes);
          break;
        case OpKind::kGlobalPhase:
          apply_phase(op, re, im, n, lanes);
          break;
      }
    }
  }

  static std::uint64_t expand_at(std::uint64_t compact, std::uint64_t bit) {
    const std::uint64_t low = compact & (bit - 1);
    return ((compact ^ low) << 1) | low;
  }

  static std::uint64_t expand_index(std::uint64_t compact, const CompiledOp<T>& op) {
    for (const auto bit : op.insert_bits) compact = expand_at(compact, bit);
    return compact | op.set_mask;
  }

  // Same region-entry economics as Executor, divided by the lane count:
  // every enumerated amplitude does `lanes` lanes of work, so a panel
  // reaches the scalar thresholds at 1/B of the register size.
  static constexpr std::int64_t kParallelPairWork = std::int64_t{1} << 13;
  static constexpr std::int64_t kParallelBlockWork = std::int64_t{1} << 11;
  static constexpr std::int64_t kParallelAmpWork = std::int64_t{1} << 14;

  template <int kLanes>
  static void apply_1q(const CompiledOp<T>& op, T* re, T* im, std::int64_t n,
                       std::int64_t lanes_rt) {
    const std::int64_t lanes = kLanes > 0 ? kLanes : lanes_rt;
    const std::uint64_t bit = op.target_bit;
    const std::int64_t pairs = n >> op.free_shift;
    // Same chunking as the scalar executor: below the lowest re-inserted
    // bit, consecutive loop indices map to consecutive amplitudes — and in
    // the panel layout consecutive amplitudes are contiguous blocks of
    // `lanes` elements, so a chunk of C pairs is one flat unit-stride run
    // of C*lanes scalars per plane. One index expansion covers the whole
    // run; the batch dimension rides inside the same SIMD loop.
    const std::int64_t chunk =
        std::min<std::int64_t>(static_cast<std::int64_t>(op.insert_bits[0]), pairs);
    const std::int64_t flat = chunk * lanes;
    const C m00r = op.m00.real(), m00i = op.m00.imag();
    const C m01r = op.m01.real(), m01i = op.m01.imag();
    const C m10r = op.m10.real(), m10i = op.m10.imag();
    const C m11r = op.m11.real(), m11i = op.m11.imag();
    auto chunk_kernel = [&](std::int64_t ii) {
      const std::uint64_t i0 = expand_index(static_cast<std::uint64_t>(ii), op);
      const std::uint64_t i1 = i0 | bit;
      T* r0 = re + static_cast<std::int64_t>(i0) * lanes;
      T* q0 = im + static_cast<std::int64_t>(i0) * lanes;
      T* r1 = re + static_cast<std::int64_t>(i1) * lanes;
      T* q1 = im + static_cast<std::int64_t>(i1) * lanes;
#pragma omp simd
      for (std::int64_t j = 0; j < flat; ++j) {
        const C re0 = static_cast<C>(r0[j]), im0 = static_cast<C>(q0[j]);
        const C re1 = static_cast<C>(r1[j]), im1 = static_cast<C>(q1[j]);
        r0[j] = static_cast<T>(m00r * re0 - m00i * im0 + m01r * re1 - m01i * im1);
        q0[j] = static_cast<T>(m00r * im0 + m00i * re0 + m01r * im1 + m01i * re1);
        r1[j] = static_cast<T>(m10r * re0 - m10i * im0 + m11r * re1 - m11i * im1);
        q1[j] = static_cast<T>(m10r * im0 + m10i * re0 + m11r * im1 + m11i * re1);
      }
    };
    if (pairs * lanes >= kParallelPairWork) {
#pragma omp parallel for
      for (std::int64_t ii = 0; ii < pairs; ii += chunk) chunk_kernel(ii);
    } else {
      for (std::int64_t ii = 0; ii < pairs; ii += chunk) chunk_kernel(ii);
    }
  }

  /// Dense block kernel for compile-time lane count AND sub-dimension:
  /// the r/s loops fully unroll and the row accumulators are fixed-size
  /// locals (registers, not scratch memory — a heap accumulator would
  /// alias the gathered sub-panel and force a reload/spill per multiply).
  template <int kLanes, int kSub>
  static void dense_block(const CompiledOp<T>& op, T* __restrict__ re, T* __restrict__ im,
                          std::int64_t bb, C* __restrict__ sre, C* __restrict__ sim) {
    const std::uint64_t* offsets = op.offsets.data();
    const C* __restrict__ mre = op.payload_re.data();
    const C* __restrict__ mim = op.payload_im.data();
    const std::uint64_t base = expand_index(static_cast<std::uint64_t>(bb), op);
    for (int s = 0; s < kSub; ++s) {
      const T* __restrict__ src_re = re + static_cast<std::int64_t>(base | offsets[s]) * kLanes;
      const T* __restrict__ src_im = im + static_cast<std::int64_t>(base | offsets[s]) * kLanes;
#pragma omp simd
      for (std::int64_t l = 0; l < kLanes; ++l) {
        sre[s * kLanes + l] = static_cast<C>(src_re[l]);
        sim[s * kLanes + l] = static_cast<C>(src_im[l]);
      }
    }
    for (int r = 0; r < kSub; ++r) {
      const C* __restrict__ rre = mre + r * kSub;
      const C* __restrict__ rim = mim + r * kSub;
      C acc_re[kLanes] = {};
      C acc_im[kLanes] = {};
      for (int s = 0; s < kSub; ++s) {
        const C mr = rre[s], mi = rim[s];
        const C* __restrict__ xr = sre + s * kLanes;
        const C* __restrict__ xi = sim + s * kLanes;
#pragma omp simd
        for (std::int64_t l = 0; l < kLanes; ++l) {
          acc_re[l] += mr * xr[l] - mi * xi[l];
          acc_im[l] += mr * xi[l] + mi * xr[l];
        }
      }
      T* __restrict__ dst_re = re + static_cast<std::int64_t>(base | offsets[r]) * kLanes;
      T* __restrict__ dst_im = im + static_cast<std::int64_t>(base | offsets[r]) * kLanes;
#pragma omp simd
      for (std::int64_t l = 0; l < kLanes; ++l) {
        dst_re[l] = static_cast<T>(acc_re[l]);
        dst_im[l] = static_cast<T>(acc_im[l]);
      }
    }
  }

  /// Generic-width dense block (runtime lane count; accumulators live at
  /// the end of the scratch buffer).
  static void dense_block_generic(const CompiledOp<T>& op, T* re, T* im, std::size_t sub_dim,
                                  std::int64_t lanes, std::int64_t bb, C* scratch) {
    const std::uint64_t* offsets = op.offsets.data();
    const C* mre = op.payload_re.data();
    const C* mim = op.payload_im.data();
    C* sre = scratch;
    C* sim = scratch + sub_dim * static_cast<std::size_t>(lanes);
    C* acc_re = scratch + 2 * sub_dim * static_cast<std::size_t>(lanes);
    C* acc_im = acc_re + lanes;
    const std::uint64_t base = expand_index(static_cast<std::uint64_t>(bb), op);
    for (std::size_t s = 0; s < sub_dim; ++s) {
      const std::int64_t src = static_cast<std::int64_t>(base | offsets[s]) * lanes;
      C* row_re = sre + s * static_cast<std::size_t>(lanes);
      C* row_im = sim + s * static_cast<std::size_t>(lanes);
#pragma omp simd
      for (std::int64_t l = 0; l < lanes; ++l) {
        row_re[l] = static_cast<C>(re[src + l]);
        row_im[l] = static_cast<C>(im[src + l]);
      }
    }
    for (std::size_t r = 0; r < sub_dim; ++r) {
      const C* rre = mre + r * sub_dim;
      const C* rim = mim + r * sub_dim;
      for (std::int64_t l = 0; l < lanes; ++l) {
        acc_re[l] = C{};
        acc_im[l] = C{};
      }
      for (std::size_t s = 0; s < sub_dim; ++s) {
        const C mr = rre[s], mi = rim[s];
        const C* xr = sre + s * static_cast<std::size_t>(lanes);
        const C* xi = sim + s * static_cast<std::size_t>(lanes);
#pragma omp simd
        for (std::int64_t l = 0; l < lanes; ++l) {
          acc_re[l] += mr * xr[l] - mi * xi[l];
          acc_im[l] += mr * xi[l] + mi * xr[l];
        }
      }
      const std::int64_t dst = static_cast<std::int64_t>(base | offsets[r]) * lanes;
#pragma omp simd
      for (std::int64_t l = 0; l < lanes; ++l) {
        re[dst + l] = static_cast<T>(acc_re[l]);
        im[dst + l] = static_cast<T>(acc_im[l]);
      }
    }
  }

  template <int kLanes>
  static void apply_dense(const CompiledOp<T>& op, T* re, T* im, std::int64_t n,
                          std::int64_t lanes_rt, std::vector<C>& run_scratch) {
    const std::int64_t lanes = kLanes > 0 ? kLanes : lanes_rt;
    const std::size_t sub_dim = std::size_t{1} << op.num_targets;
    const std::int64_t blocks = n >> op.free_shift;
    // Gathered sub-panel in split planes ([sub_dim][lanes] re then im);
    // the generic path also keeps one accumulator row here.
    const std::size_t scratch_len = (2 * sub_dim + 2) * static_cast<std::size_t>(lanes);
    auto block_kernel = [&](std::int64_t bb, C* scratch) {
      if constexpr (kLanes > 0) {
        C* sim = scratch + sub_dim * static_cast<std::size_t>(kLanes);
        // Fused windows are <= 3 qubits by default; wider payloads (a
        // raised max_fuse_qubits) take the generic loop.
        switch (op.num_targets) {
          case 1: dense_block<kLanes, 2>(op, re, im, bb, scratch, sim); return;
          case 2: dense_block<kLanes, 4>(op, re, im, bb, scratch, sim); return;
          case 3: dense_block<kLanes, 8>(op, re, im, bb, scratch, sim); return;
          default: dense_block_generic(op, re, im, sub_dim, lanes, bb, scratch); return;
        }
      } else {
        dense_block_generic(op, re, im, sub_dim, lanes, bb, scratch);
      }
    };
    if (blocks * lanes >= kParallelBlockWork) {
#pragma omp parallel
      {
        std::vector<C> scratch(scratch_len);
#pragma omp for
        for (std::int64_t bb = 0; bb < blocks; ++bb) block_kernel(bb, scratch.data());
      }
    } else {
      if (run_scratch.size() < scratch_len) run_scratch.resize(scratch_len);
      for (std::int64_t bb = 0; bb < blocks; ++bb) block_kernel(bb, run_scratch.data());
    }
  }

  template <int kLanes>
  static void apply_diagonal(const CompiledOp<T>& op, T* re, T* im, std::int64_t n,
                             std::int64_t lanes_rt) {
    const std::int64_t lanes = kLanes > 0 ? kLanes : lanes_rt;
    const std::uint32_t k = op.num_targets;
    const std::int64_t count = n >> op.free_shift;  // firing amplitudes only
    const std::uint64_t* target_bits = op.target_bits.data();
    const std::complex<C>* d = op.payload.data();
    auto amp_kernel = [&](std::int64_t ii) {
      const std::uint64_t i = expand_index(static_cast<std::uint64_t>(ii), op);
      std::uint64_t sub = 0;
      for (std::uint32_t t = 0; t < k; ++t) {
        if (i & target_bits[t]) sub |= std::uint64_t{1} << t;
      }
      const C dr = d[sub].real(), di = d[sub].imag();
      T* r = re + static_cast<std::int64_t>(i) * lanes;
      T* q = im + static_cast<std::int64_t>(i) * lanes;
#pragma omp simd
      for (std::int64_t l = 0; l < lanes; ++l) {
        const C ar = static_cast<C>(r[l]), ai = static_cast<C>(q[l]);
        r[l] = static_cast<T>(dr * ar - di * ai);
        q[l] = static_cast<T>(dr * ai + di * ar);
      }
    };
    if (count * lanes >= kParallelAmpWork) {
#pragma omp parallel for
      for (std::int64_t i = 0; i < count; ++i) amp_kernel(i);
    } else {
      for (std::int64_t i = 0; i < count; ++i) amp_kernel(i);
    }
  }

  static void apply_phase(const CompiledOp<T>& op, T* re, T* im, std::int64_t n,
                          std::int64_t lanes) {
    const C pr = op.phase.real(), pi = op.phase.imag();
    const std::int64_t total = n * lanes;  // lanes are contiguous: one flat sweep
    if (total >= kParallelAmpWork) {
#pragma omp parallel for
      for (std::int64_t i = 0; i < total; ++i) {
        const C ar = static_cast<C>(re[i]), ai = static_cast<C>(im[i]);
        re[i] = static_cast<T>(pr * ar - pi * ai);
        im[i] = static_cast<T>(pr * ai + pi * ar);
      }
    } else {
#pragma omp simd
      for (std::int64_t i = 0; i < total; ++i) {
        const C ar = static_cast<C>(re[i]), ai = static_cast<C>(im[i]);
        re[i] = static_cast<T>(pr * ar - pi * ai);
        im[i] = static_cast<T>(pr * ai + pi * ar);
      }
    }
  }
};

}  // namespace mpqls::qsim::exec
