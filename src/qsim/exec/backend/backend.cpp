#include "qsim/exec/backend/backend.hpp"

#include <mutex>
#include <unordered_map>

#include "common/contracts.hpp"

namespace mpqls::qsim::exec {

struct BackendRegistry::Impl {
  mutable std::mutex mutex;
  std::vector<std::shared_ptr<ExecBackend>> ordered;
  std::unordered_map<std::string, std::size_t> by_name;
  /// Replaced entries are parked here so pointers handed out before a
  /// re-registration stay valid for the process lifetime.
  std::vector<std::shared_ptr<ExecBackend>> retired;
};

BackendRegistry::BackendRegistry() : impl_(std::make_shared<Impl>()) {}

void BackendRegistry::register_backend(std::shared_ptr<ExecBackend> backend) {
  expects(backend != nullptr, "backend registry: null backend");
  const std::string name = backend->capabilities().name;
  expects(!name.empty(), "backend registry: backend must be named");
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->by_name.find(name);
  if (it != impl_->by_name.end()) {
    impl_->retired.push_back(std::move(impl_->ordered[it->second]));
    impl_->ordered[it->second] = std::move(backend);
    return;
  }
  impl_->by_name.emplace(name, impl_->ordered.size());
  impl_->ordered.push_back(std::move(backend));
}

const ExecBackend* BackendRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->by_name.find(name);
  return it == impl_->by_name.end() ? nullptr : impl_->ordered[it->second].get();
}

std::vector<const ExecBackend*> BackendRegistry::list() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<const ExecBackend*> out;
  out.reserve(impl_->ordered.size());
  for (const auto& b : impl_->ordered) out.push_back(b.get());
  return out;
}

std::vector<std::string> BackendRegistry::names() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->ordered.size());
  for (const auto& b : impl_->ordered) out.push_back(b->capabilities().name);
  return out;
}

BackendRegistry& backend_registry() {
  // Built-ins install inside the same once-guard that builds the registry,
  // so every caller observes them (no registration/lookup race at startup).
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    r->register_backend(make_reference_backend());
    r->register_backend(make_blocked_backend());
    return r;
  }();
  return *registry;
}

const ExecBackend* find_backend(const std::string& name) {
  return backend_registry().find(name);
}

const ExecBackend& default_backend() {
  const ExecBackend* ref = find_backend(kDefaultBackendName);
  ensures(ref != nullptr, "backend registry: reference backend missing");
  return *ref;
}

}  // namespace mpqls::qsim::exec
