// The "reference" backend: the pre-existing OpenMP scalar and panel
// executors, dispatched through the ExecBackend seam. Zero regression by
// construction — apply_program IS Executor<T>::run and apply_program_panel
// IS PanelExecutor<T>::run, so results are bit-identical to direct
// executor calls for a fixed thread count.
#include "qsim/exec/backend/backend.hpp"
#include "qsim/exec/executor.hpp"
#include "qsim/exec/panel_executor.hpp"

namespace mpqls::qsim::exec {

namespace {

/// The executors are stateless, so the reference handle carries nothing;
/// it exists to satisfy the handle lifecycle of the interface.
class ReferenceHandle final : public BackendHandle {};

class ReferenceBackend final : public ExecBackend {
 public:
  ReferenceBackend() {
    caps_.name = "reference";
    caps_.description = "gate-at-a-time OpenMP executor (scalar + lane-templated panel kernels)";
    caps_.precisions = {"half", "single", "double"};
    caps_.max_qubits = 30;  // the Statevector/StatePanel register cap
    caps_.panel_widths = {1, 2, 4, 8, 16, 0};
  }

  const BackendCapabilities& capabilities() const override { return caps_; }

  std::shared_ptr<BackendHandle> create_handle() const override {
    return std::make_shared<ReferenceHandle>();
  }

  std::size_t workspace_bytes(std::uint32_t /*num_qubits*/) const override {
    // Per-thread dense scratch only: two split planes of the widest fused
    // window (<= 2^3 sub-amplitudes by default compile options) in double.
    return 2 * (std::size_t{1} << 3) * sizeof(double);
  }

  void apply_program(BackendHandle&, const Program<float>& program,
                     Statevector<float>& sv) const override {
    Executor<float>{}.run(program, sv);
  }
  void apply_program(BackendHandle&, const Program<double>& program,
                     Statevector<double>& sv) const override {
    Executor<double>{}.run(program, sv);
  }

  void apply_program_panel(BackendHandle&, const Program<f16>& program,
                           StatePanel<f16>& panel) const override {
    PanelExecutor<f16>{}.run(program, panel);
  }
  void apply_program_panel(BackendHandle&, const Program<float>& program,
                           StatePanel<float>& panel) const override {
    PanelExecutor<float>{}.run(program, panel);
  }
  void apply_program_panel(BackendHandle&, const Program<double>& program,
                           StatePanel<double>& panel) const override {
    PanelExecutor<double>{}.run(program, panel);
  }

 private:
  BackendCapabilities caps_;
};

}  // namespace

std::shared_ptr<ExecBackend> make_reference_backend() {
  return std::make_shared<ReferenceBackend>();
}

}  // namespace mpqls::qsim::exec
